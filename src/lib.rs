//! # finesse
//!
//! Facade crate for the Finesse reproduction: re-exports every subsystem
//! so examples and downstream users need a single dependency.
//!
//! ```no_run
//! use finesse::core::DesignFlow;
//!
//! let acc = DesignFlow::for_curve("BN254N").build()?;
//! println!("{}", acc.report());
//! # Ok::<(), finesse::dse::DseError>(())
//! ```
//!
//! See README.md for the architecture overview and the per-crate map of
//! the workspace.

pub use finesse_compiler as compiler;
pub use finesse_core as core;
pub use finesse_curves as curves;
pub use finesse_dse as dse;
pub use finesse_ff as ff;
pub use finesse_hw as hw;
pub use finesse_ir as ir;
pub use finesse_isa as isa;
pub use finesse_pairing as pairing;
pub use finesse_parallel as parallel;
pub use finesse_poly as poly;
pub use finesse_sim as sim;

pub use finesse_core::FinesseError;
