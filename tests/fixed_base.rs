//! Differential tests for the precomputation-aware scalar-mul paths:
//! fixed-base comb multiplication on the cached generators, the JSF
//! two-term Straus kernel on non-generator bases, and the batch-affine
//! Pippenger MSM — all bit-identical to the double-and-add [`scalar_mul`]
//! reference across the seven Table 2 curves.

use finesse_curves::{all_specs, scalar_mul, to_affine, CombTable, Curve, FpOps, FqOps};
use finesse_ff::BigUint;
use std::sync::Arc;

/// The issue's edge-scalar list: identity-adjacent, r-adjacent (the
/// reduction cases), and full-width.
fn edge_scalars(c: &Arc<Curve>) -> Vec<BigUint> {
    let r = c.r();
    let one = BigUint::one();
    let full_width =
        BigUint::from_hex("e4c91a3bf3a77d9f1a4b5c6d7e8f90123456789abcdef0fedcba98765432100f")
            .expect("literal parses")
            .modpow(&BigUint::from_u64(3), r);
    vec![
        BigUint::zero(),
        one.clone(),
        r.checked_sub(&one).unwrap(),
        r.clone(),
        &r.clone() + &one,
        &(&r.clone() + &r.clone()) + &BigUint::from_u64(3), // 2r + 3
        full_width,
    ]
}

#[test]
fn comb_fixed_base_matches_reference_on_all_curves() {
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let fp_ops = FpOps(Arc::clone(c.fp()));
        let fq_ops = FqOps(c.tower());
        let g = c.g1_generator();
        let q = c.g2_generator();
        for k in edge_scalars(&c) {
            let reduced = k.rem(c.r());
            let fast = c.g1_mul(g, &k);
            let reference = to_affine(&fp_ops, &scalar_mul(&fp_ops, g, &reduced));
            assert_eq!(fast, reference, "{}: G1 comb, k = {k:?}", spec.name);
            let fast = c.g2_mul(q, &k);
            let reference = to_affine(&fq_ops, &scalar_mul(&fq_ops, q, &reduced));
            assert_eq!(fast, reference, "{}: G2 comb, k = {k:?}", spec.name);
        }
        // The generator multiplications above must have auto-registered
        // the generators in the lazy precompute caches.
        assert!(
            c.g1_precomputed(g).is_some(),
            "{}: G1 generator precompute cached",
            spec.name
        );
        assert!(
            c.g2_precomputed(q).is_some(),
            "{}: G2 generator precompute cached",
            spec.name
        );
    }
}

#[test]
fn jsf_straus_matches_reference_on_non_generator_bases() {
    // Non-generator bases route through the GLV split and its JSF
    // two-term kernel (G1) / the GLS split (G2), never the comb.
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let fp_ops = FpOps(Arc::clone(c.fp()));
        let fq_ops = FqOps(c.tower());
        let h = c.g1_mul(c.g1_generator(), &BigUint::from_u64(5));
        let hq = c.g2_mul(c.g2_generator(), &BigUint::from_u64(5));
        for k in edge_scalars(&c) {
            let reduced = k.rem(c.r());
            let fast = c.g1_mul(&h, &k);
            let reference = to_affine(&fp_ops, &scalar_mul(&fp_ops, &h, &reduced));
            assert_eq!(fast, reference, "{}: G1 JSF, k = {k:?}", spec.name);
            let fast = c.g2_mul(&hq, &k);
            let reference = to_affine(&fq_ops, &scalar_mul(&fq_ops, &hq, &reduced));
            assert_eq!(fast, reference, "{}: G2 GLS, k = {k:?}", spec.name);
        }
    }
}

#[test]
fn precompute_cache_never_used_for_unregistered_base() {
    let c = Curve::by_name("BN254N");
    let k = edge_scalars(&c).pop().unwrap();
    // Warm the generator's precompute, then check every *unregistered*
    // base both fails the cache's base match and still multiplies
    // correctly on the GLV path.
    let _ = c.g1_mul(c.g1_generator(), &k);
    let pre = c
        .g1_precomputed(c.g1_generator())
        .expect("generator mul warms the precompute cache");
    let fp_ops = FpOps(Arc::clone(c.fp()));
    for i in [2u64, 3, 7, 1009] {
        let h = c.g1_mul(c.g1_generator(), &BigUint::from_u64(i));
        assert!(
            !pre.matches_base(&h),
            "precompute for G must not match [{i}]G"
        );
        assert!(
            c.g1_precomputed(&h).is_none(),
            "plain mul must not register [{i}]G"
        );
        let reference = to_affine(&fp_ops, &scalar_mul(&fp_ops, &h, &k.rem(c.r())));
        assert_eq!(c.g1_mul(&h, &k), reference, "[{i}]G stays on the GLV path");
    }
    // Hash-derived points (the signature path's variable bases) likewise.
    let h = c.hash_to_g1(b"not the generator").unwrap();
    assert!(!pre.matches_base(&h));
    let reference = to_affine(&fp_ops, &scalar_mul(&fp_ops, &h, &k.rem(c.r())));
    assert_eq!(c.g1_mul(&h, &k), reference);
    // Registering the hash-derived base flips the route to the comb —
    // with a bit-identical result.
    let registered = c.precompute_g1(&h);
    assert!(registered.matches_base(&h));
    assert!(c.g1_precomputed(&h).is_some());
    assert_eq!(c.g1_mul(&h, &k), reference, "registered base stays exact");
}

#[test]
fn comb_table_is_per_base() {
    // Direct CombTable check: a table built for one base never matches
    // another, so a stale cache cannot be consulted for the wrong point.
    let c = Curve::by_name("BLS12-381");
    let ops = FpOps(Arc::clone(c.fp()));
    let g = c.g1_generator();
    let h = c.g1_mul(g, &BigUint::from_u64(2));
    let comb_g = CombTable::build(&ops, g, c.r().bits());
    let comb_h = CombTable::build(&ops, &h, c.r().bits());
    assert!(comb_g.matches_base(g) && !comb_g.matches_base(&h));
    assert!(comb_h.matches_base(&h) && !comb_h.matches_base(g));
    let k = BigUint::from_u64(0xDEAD_BEEF_CAFE);
    assert_eq!(to_affine(&ops, &comb_g.mul(&ops, &k)), c.g1_mul(g, &k));
    assert_eq!(to_affine(&ops, &comb_h.mul(&ops, &k)), c.g1_mul(&h, &k));
}

/// Deterministic full-width scalar stream (splitmix64-filled limbs).
fn scalar_stream(seed: u64, width_bits: usize) -> impl FnMut() -> BigUint {
    let mut state = seed;
    move || {
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        BigUint::from_limbs((0..width_bits.div_ceil(64)).map(|_| next()).collect())
    }
}

#[test]
fn batch_affine_pippenger_matches_naive_msm() {
    // The full size sweep of the issue — 257 and 512 split into ≥ 514
    // GLV terms, forcing the batch-affine Pippenger path; the small
    // sizes cover the fallback and Straus routes.
    let c = Curve::by_name("BN254N");
    let g = c.g1_generator();
    for n in [0usize, 1, 2, 33, 257, 512] {
        let mut stream = scalar_stream(0xF1DE ^ n as u64, c.r().bits());
        let points: Vec<_> = (0..n)
            .map(|i| c.g1_mul(g, &BigUint::from_u64((i * i + 3) as u64)))
            .collect();
        let mut scalars: Vec<_> = (0..n).map(|_| stream()).collect();
        if n > 2 {
            // Degenerate entries inside a real batch.
            scalars[1] = BigUint::zero();
            scalars[2] = c.r().clone(); // reduces to zero
        }
        let mut want = finesse_curves::Affine::infinity(c.fp().zero());
        for (p, k) in points.iter().zip(&scalars) {
            want = c.g1_add(&want, &c.g1_mul(p, k));
        }
        assert_eq!(c.g1_msm(&points, &scalars).unwrap(), want, "n = {n}");
    }
}
