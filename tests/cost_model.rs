//! CostModel loader tests: fixture round-trip, schema rejection, and a
//! differential check that the analytic defaults and the committed
//! measured medians rank a candidate set the same way — so swapping
//! dse/sim from embedded constants to the shared model cannot silently
//! reorder design decisions.

use finesse::core::{CostModel, CostModelError, Kernel, Provenance};
use std::path::Path;

/// A minimal but complete v5 emission: one curve row plus a
/// `batch_verify` block with the 32-check amortized cost.
const FIXTURE: &str = r#"{
  "schema": "finesse-bench-fieldops/v5",
  "harness": "median of 5 batches, ns per op",
  "commit": "abc123def456",
  "date": "2026-08-08",

  "cost_model": {
    "consumer": "finesse_ir::cost::CostModel::from_bench_json",
    "provenance": "fixture",
    "consumed_fields": ["fq_mul_ns", "pairing_ns"]
  },

  "curves": [
    {"curve": "BN254N", "p_bits": 254, "limbs": 4,
     "fp_mul_ns": 41.6, "fp_sqr_ns": 40.0, "fq_mul_ns": 820.0,
     "g1_mul_ns": 161838.0, "g1_mul_fixed_ns": 62208.0,
     "g2_mul_ns": 485000.0, "g2_mul_fixed_ns": 242000.0,
     "msm64_g1_ns": 3000000.0, "msm256_g1_ns": 9168355.0,
     "msm1024_g1_ns": 29000000.0, "msm4096_g1_ns": 108344515.0,
     "pairing_ns": 3140000.0}
  ],

  "batch_verify": {
    "note": "fixture",
    "rows": [
      {"curve": "BN254N", "n": 8, "amortized_ns_per_check": 900000.0},
      {"curve": "BN254N", "n": 32, "amortized_ns_per_check": 700000.0}
    ]
  }
}
"#;

#[test]
fn fixture_round_trip() {
    let model = CostModel::from_bench_json(FIXTURE).expect("fixture parses");
    match model.provenance() {
        Provenance::Measured {
            schema,
            commit,
            date,
        } => {
            assert_eq!(schema, "finesse-bench-fieldops/v5");
            assert_eq!(commit, "abc123def456");
            assert_eq!(date, "2026-08-08");
        }
        other => panic!("expected measured provenance, got {other:?}"),
    }
    let row = model.curve("BN254N").expect("row present");
    assert_eq!(row.p_bits, 254);
    assert_eq!(row.limbs, 4);
    assert_eq!(model.cost_ns("BN254N", Kernel::FqMul), Some(820.0));
    assert_eq!(model.cost_ns("BN254N", Kernel::Pairing), Some(3_140_000.0));
    assert_eq!(
        model.cost_ns("BN254N", Kernel::Msm4096),
        Some(108_344_515.0)
    );
    // The n=32 batch_verify row (not the n=8 one) is the amortized cost.
    assert_eq!(
        model.cost_ns("BN254N", Kernel::BatchVerifyCheck),
        Some(700_000.0)
    );
    assert_eq!(model.cost_ns("NOT-A-CURVE", Kernel::Pairing), None);
}

#[test]
fn schema_version_mismatch_is_rejected() {
    let old = FIXTURE.replace("finesse-bench-fieldops/v5", "finesse-bench-fieldops/v3");
    match CostModel::from_bench_json(&old) {
        Err(CostModelError::SchemaVersion { found }) => {
            assert_eq!(found, "finesse-bench-fieldops/v3");
        }
        other => panic!("expected SchemaVersion error, got {other:?}"),
    }
}

#[test]
fn empty_curves_is_rejected() {
    let err =
        CostModel::from_bench_json("{\"schema\": \"finesse-bench-fieldops/v5\", \"curves\": []}")
            .unwrap_err();
    assert!(matches!(err, CostModelError::NoCurves), "{err:?}");
}

#[test]
fn committed_bench_json_loads_as_measured() {
    let model =
        CostModel::load(Path::new("results/BENCH_fieldops.json")).expect("committed JSON loads");
    assert!(matches!(model.provenance(), Provenance::Measured { .. }));
    // Every Table-2 curve must be priced for every scalar kernel.
    for name in [
        "BN254N",
        "BN462",
        "BN638",
        "BLS12-381",
        "BLS12-446",
        "BLS12-638",
        "BLS24-509",
    ] {
        for k in [
            Kernel::FqMul,
            Kernel::G1Mul,
            Kernel::G1MulFixed,
            Kernel::Msm256,
            Kernel::Pairing,
        ] {
            assert!(
                model.cost_ns(name, k).is_some_and(|c| c > 0.0),
                "{name}/{k:?} missing"
            );
        }
    }
}

/// The differential gate: analytic defaults and measured medians must
/// rank the candidate set identically per kernel — the ordering dse's
/// previously-embedded constants encoded (cheaper field → cheaper
/// kernel, BLS24's k=24 tower dominating everything).
#[test]
fn analytic_and_measured_rank_candidates_consistently() {
    let analytic = CostModel::analytic();
    let measured =
        CostModel::load(Path::new("results/BENCH_fieldops.json")).expect("committed JSON loads");
    let candidates = ["BN254N", "BLS12-381", "BLS24-509"];
    for kernel in [
        Kernel::FqMul,
        Kernel::G1Mul,
        Kernel::G1MulFixed,
        Kernel::Msm256,
        Kernel::Pairing,
    ] {
        let order = |m: &CostModel| -> Vec<&str> {
            let mut v: Vec<(&str, f64)> = candidates
                .iter()
                .map(|c| (*c, m.cost_ns(c, kernel).expect("candidate priced")))
                .collect();
            v.sort_by(|a, b| a.1.total_cmp(&b.1));
            v.into_iter().map(|(c, _)| c).collect()
        };
        assert_eq!(
            order(&analytic),
            order(&measured),
            "analytic and measured models disagree on {kernel:?} ranking"
        );
    }
}
