//! The paper's validation matrix, end to end: for every Table 2 curve,
//! compile the optimal-Ate program, execute the binary on the functional
//! simulator, and require bit-exact agreement with the reference pairing
//! library. Also checks the cycle-accurate IPC band per curve.

use finesse_compiler::{compile_pairing, tower_shape, CompileOptions};
use finesse_curves::{all_specs, Curve};
use finesse_ff::BigUint;
use finesse_hw::HwModel;
use finesse_ir::convert::{fps_to_fpk, fq_to_fps};
use finesse_ir::VariantConfig;
use finesse_pairing::PairingEngine;
use finesse_sim::{run_image, simulate};

#[test]
fn compiled_binaries_match_reference_on_all_seven_curves() {
    for spec in all_specs() {
        let curve = Curve::by_name(spec.name);
        let shape = tower_shape(&curve);
        let variants = VariantConfig::all_karatsuba(&shape);
        let hw = HwModel::paper_default();
        let compiled = compile_pairing(&curve, &variants, &hw, &CompileOptions::default()).unwrap();

        let engine = PairingEngine::new(curve.clone());
        let p = curve.g1_mul(curve.g1_generator(), &BigUint::from_u64(0xABCDE));
        let q = curve.g2_mul(curve.g2_generator(), &BigUint::from_u64(0x12345));
        let expected = engine.pair(&p, &q);

        let mut inputs: Vec<BigUint> = vec![p.x.to_biguint(), p.y.to_biguint()];
        inputs.extend(fq_to_fps(&q.x).iter().map(|f| f.to_biguint()));
        inputs.extend(fq_to_fps(&q.y).iter().map(|f| f.to_biguint()));
        let out = run_image(&compiled.image, curve.fp(), &inputs)
            .unwrap_or_else(|e| panic!("{}: functional sim failed: {e}", spec.name));
        let fps: Vec<_> = out.iter().map(|v| curve.fp().from_biguint(v)).collect();
        assert_eq!(
            fps_to_fpk(curve.tower(), &fps),
            expected,
            "{}: compiled binary != reference pairing",
            spec.name
        );
    }
}

#[test]
fn scheduled_programs_reach_high_ipc_on_every_curve() {
    for spec in all_specs() {
        let curve = Curve::by_name(spec.name);
        let shape = tower_shape(&curve);
        let variants = VariantConfig::all_karatsuba(&shape);
        let hw = HwModel::paper_default();
        let compiled = compile_pairing(&curve, &variants, &hw, &CompileOptions::default()).unwrap();
        let insts = compiled.image.spec.decode(&compiled.image.words).unwrap();
        let report = simulate(&insts, &hw, None);
        assert!(
            report.ipc() > 0.70,
            "{}: IPC {:.2} below the paper's band",
            spec.name,
            report.ipc()
        );
    }
}

#[test]
fn variant_choice_does_not_change_semantics() {
    // Same curve, three variant configs, same pairing value.
    let curve = Curve::by_name("BLS12-381");
    let shape = tower_shape(&curve);
    let hw = HwModel::paper_default();
    let engine = PairingEngine::new(curve.clone());
    let p = curve.g1_mul(curve.g1_generator(), &BigUint::from_u64(5));
    let q = curve.g2_mul(curve.g2_generator(), &BigUint::from_u64(6));
    let expected = engine.pair(&p, &q);

    let mut inputs: Vec<BigUint> = vec![p.x.to_biguint(), p.y.to_biguint()];
    inputs.extend(fq_to_fps(&q.x).iter().map(|f| f.to_biguint()));
    inputs.extend(fq_to_fps(&q.y).iter().map(|f| f.to_biguint()));

    for cfg in [
        VariantConfig::all_karatsuba(&shape),
        VariantConfig::all_schoolbook(&shape),
        VariantConfig::manual(&shape),
    ] {
        let compiled = compile_pairing(&curve, &cfg, &hw, &CompileOptions::default()).unwrap();
        let out = run_image(&compiled.image, curve.fp(), &inputs).unwrap();
        let fps: Vec<_> = out.iter().map(|v| curve.fp().from_biguint(v)).collect();
        assert_eq!(fps_to_fpk(curve.tower(), &fps), expected, "variant {cfg}");
    }
}

#[test]
fn unoptimized_baseline_is_also_correct() {
    // The Table 7 "Init." program must compute the same pairing — the
    // optimisations only remove work.
    let curve = Curve::by_name("BN254N");
    let shape = tower_shape(&curve);
    let variants = VariantConfig::all_karatsuba(&shape);
    let hw = HwModel::paper_default();
    let engine = PairingEngine::new(curve.clone());
    let p = curve.g1_generator().clone();
    let q = curve.g2_generator().clone();
    let expected = engine.pair(&p, &q);

    let mut inputs: Vec<BigUint> = vec![p.x.to_biguint(), p.y.to_biguint()];
    inputs.extend(fq_to_fps(&q.x).iter().map(|f| f.to_biguint()));
    inputs.extend(fq_to_fps(&q.y).iter().map(|f| f.to_biguint()));

    let compiled = compile_pairing(&curve, &variants, &hw, &CompileOptions::baseline()).unwrap();
    let out = run_image(&compiled.image, curve.fp(), &inputs).unwrap();
    let fps: Vec<_> = out.iter().map(|v| curve.fp().from_biguint(v)).collect();
    assert_eq!(fps_to_fpk(curve.tower(), &fps), expected);
}

#[test]
fn vliw_compilation_is_correct_and_faster() {
    let curve = Curve::by_name("BN254N");
    let shape = tower_shape(&curve);
    let variants = VariantConfig::all_karatsuba(&shape);
    let engine = PairingEngine::new(curve.clone());
    let p = curve.g1_generator().clone();
    let q = curve.g2_generator().clone();
    let expected = engine.pair(&p, &q);

    let mut inputs: Vec<BigUint> = vec![p.x.to_biguint(), p.y.to_biguint()];
    inputs.extend(fq_to_fps(&q.x).iter().map(|f| f.to_biguint()));
    inputs.extend(fq_to_fps(&q.y).iter().map(|f| f.to_biguint()));

    let single = HwModel::paper_default();
    let wide = HwModel::vliw(4, 38, 8);
    let c1 = compile_pairing(&curve, &variants, &single, &CompileOptions::default()).unwrap();
    let c4 = compile_pairing(&curve, &variants, &wide, &CompileOptions::default()).unwrap();

    let out = run_image(&c4.image, curve.fp(), &inputs).unwrap();
    let fps: Vec<_> = out.iter().map(|v| curve.fp().from_biguint(v)).collect();
    assert_eq!(
        fps_to_fpk(curve.tower(), &fps),
        expected,
        "VLIW binary is correct"
    );

    let r1 = simulate(
        &c1.image.spec.decode(&c1.image.words).unwrap(),
        &single,
        None,
    );
    let r4 = simulate(&c4.image.spec.decode(&c4.image.words).unwrap(), &wide, None);
    assert!(
        r4.cycles < r1.cycles,
        "VLIW exploits ILP: {} vs {} cycles",
        r4.cycles,
        r1.cycles
    );
}
