//! Integration tests for the `finesse-poly` KZG stack: differential
//! verification against naive per-opening pairing checks on all seven
//! Table 2 curves, batched-opening soundness under targeted tampering,
//! adversarial SRS wire decoding (splitmix64 fuzz, same harness shape as
//! `tests/wire.rs`), precomputed-vs-plain scalar-mul bit-identity on
//! caller-registered bases, and the serving-layer cost contract — a
//! whole batch of openings settling in exactly two Miller loops.

use finesse_core::{PolyError, SrsError};
use finesse_curves::{all_specs, scalar_mul, to_affine, Curve, FpOps, FqOps};
use finesse_ff::BigUint;
use finesse_pairing::PairingEngine;
use finesse_poly::{BatchOpening, Claim, Kzg, Polynomial, Srs};
use std::sync::Arc;

/// Deterministic splitmix64: reproducible "random" inputs without an RNG
/// dependency. Every failure reproduces from the constant seeds below.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A full-width scalar (limbs filled to the given bit width).
    fn scalar(&mut self, width_bits: usize) -> BigUint {
        BigUint::from_limbs((0..width_bits.div_ceil(64)).map(|_| self.next()).collect())
    }
}

/// A random dense polynomial with `n` full-width coefficients.
fn random_poly(rng: &mut SplitMix64, n: usize, r: &BigUint) -> Polynomial {
    Polynomial::new((0..n).map(|_| rng.scalar(r.bits())).collect(), r)
}

/// The issue's edge-scalar list: identity-adjacent, r-adjacent (the
/// reduction cases), and full-width.
fn edge_scalars(c: &Arc<Curve>) -> Vec<BigUint> {
    let r = c.r();
    let one = BigUint::one();
    let full_width = SplitMix64(0xED6E).scalar(r.bits());
    vec![
        BigUint::zero(),
        one.clone(),
        r.checked_sub(&one).unwrap(),
        r.clone(),
        &r.clone() + &one,
        full_width,
    ]
}

#[test]
fn single_openings_match_naive_pairing_on_all_curves() {
    for spec in all_specs() {
        let curve = Curve::by_name(spec.name);
        let engine = PairingEngine::new(curve.clone());
        let srs = Srs::generate(&curve, 8, b"kzg-differential");
        let kzg = Kzg::new(&engine, &srs).unwrap();
        let r = curve.r();
        let mut rng = SplitMix64(0x1230 ^ spec.name.len() as u64);

        let poly = random_poly(&mut rng, 7, r);
        let commitment = kzg.commit(&poly).unwrap();
        let ops = FpOps(Arc::clone(curve.fp()));
        for z in [BigUint::zero(), BigUint::from_u64(5), rng.scalar(r.bits())] {
            let opening = kzg.open(&poly, &z).unwrap();
            assert_eq!(opening.y, poly.eval(&z.rem(r), r), "{}", spec.name);
            // Accumulator path.
            kzg.verify(&commitment, &opening).unwrap();
            // Naive oracle: e(C − [y]G1 + [z]W, G2) =? e(W, [τ]G2),
            // checked with two direct pairings.
            let y_g1 = curve.g1_mul(curve.g1_generator(), &opening.y);
            let z_w = curve.g1_mul(&opening.witness, &opening.z);
            let lhs = curve.g1_add(
                &curve.g1_add(&commitment, &finesse_curves::affine_neg(&ops, &y_g1)),
                &z_w,
            );
            assert!(
                engine.pairing_equation_holds(
                    &lhs,
                    curve.g2_generator(),
                    &opening.witness,
                    srs.tau_g2()
                ),
                "{}: naive pairing oracle disagrees",
                spec.name
            );
            // Perturbed claim fails both paths.
            let mut bad = opening.clone();
            bad.y = finesse_ff::scalar::mod_add(&bad.y, &BigUint::one(), r);
            assert!(matches!(
                kzg.verify(&commitment, &bad),
                Err(PolyError::OpeningRejected)
            ));
        }

        // A constant polynomial's opening witness is the identity and
        // still verifies.
        let constant = Polynomial::new(vec![BigUint::from_u64(42)], r);
        let c_const = kzg.commit(&constant).unwrap();
        let opening = kzg.open(&constant, &BigUint::from_u64(9)).unwrap();
        assert!(opening.witness.infinity, "{}", spec.name);
        kzg.verify(&c_const, &opening).unwrap();
    }
}

#[test]
fn batched_opening_rejects_every_tampered_component() {
    let curve = Curve::by_name("BN254N");
    let engine = PairingEngine::new(curve.clone());
    let srs = Srs::generate(&curve, 31, b"kzg-soundness");
    let kzg = Kzg::new(&engine, &srs).unwrap();
    let r = curve.r();
    let mut rng = SplitMix64(0x50FA);

    let poly = random_poly(&mut rng, 24, r);
    let commitment = kzg.commit(&poly).unwrap();
    let zs: Vec<BigUint> = (0..5).map(|_| rng.scalar(r.bits())).collect();
    let opening = kzg.open_batch(&poly, &commitment, &zs).unwrap();
    let claim = |op: BatchOpening| Claim::Batch {
        commitment: commitment.clone(),
        opening: op,
    };

    // The honest proof verifies.
    kzg.verify_batch(std::slice::from_ref(&claim(opening.clone())))
        .unwrap();

    // Tampered y: claim a different evaluation at one point.
    let mut bad = opening.clone();
    bad.points[2].1 = finesse_ff::scalar::mod_add(&bad.points[2].1, &BigUint::one(), r);
    assert!(matches!(
        kzg.verify_batch(&[claim(bad)]),
        Err(PolyError::BatchRejected { bad }) if bad == vec![0]
    ));

    // Tampered z: move one evaluation point.
    let mut bad = opening.clone();
    bad.points[0].0 = finesse_ff::scalar::mod_add(&bad.points[0].0, &BigUint::one(), r);
    assert!(matches!(
        kzg.verify_batch(&[claim(bad)]),
        Err(PolyError::BatchRejected { .. })
    ));

    // Tampered quotient witness W.
    let mut bad = opening.clone();
    bad.quotient = curve.g1_mul(&bad.quotient, &BigUint::from_u64(3));
    assert!(matches!(
        kzg.verify_batch(&[claim(bad)]),
        Err(PolyError::BatchRejected { .. })
    ));

    // Tampered shifted witness W′.
    let mut bad = opening.clone();
    bad.shift = curve.g1_add(&bad.shift, curve.g1_generator());
    assert!(matches!(
        kzg.verify_batch(&[claim(bad)]),
        Err(PolyError::BatchRejected { .. })
    ));

    // Wrong SRS: same claims verified under a different trusted setup.
    let other_srs = Srs::generate(&curve, 31, b"kzg-soundness-other");
    let other_kzg = Kzg::new(&engine, &other_srs).unwrap();
    assert!(matches!(
        other_kzg.verify_batch(&[claim(opening.clone())]),
        Err(PolyError::BatchRejected { .. })
    ));

    // Malformed claims are rejected with their typed validation errors
    // before any pairing work.
    let empty = BatchOpening {
        points: Vec::new(),
        quotient: opening.quotient.clone(),
        shift: opening.shift.clone(),
    };
    assert!(matches!(
        kzg.verify_batch(&[claim(empty)]),
        Err(PolyError::NoPoints)
    ));
    let mut dup = opening.clone();
    dup.points[1] = dup.points[0].clone();
    assert!(matches!(
        kzg.verify_batch(&[claim(dup)]),
        Err(PolyError::DuplicatePoint)
    ));

    // In a mixed batch, isolation names exactly the bad claim.
    let good_single = {
        let z = BigUint::from_u64(77);
        let op = kzg.open(&poly, &z).unwrap();
        Claim::Single {
            commitment: commitment.clone(),
            opening: op,
        }
    };
    let mut bad_y = opening.clone();
    bad_y.points[4].1 = BigUint::from_u64(1);
    let claims = vec![good_single, claim(bad_y), claim(opening)];
    assert!(matches!(
        kzg.verify_batch(&claims),
        Err(PolyError::BatchRejected { bad }) if bad == vec![1]
    ));
}

#[test]
fn batch_of_openings_settles_in_two_miller_loops() {
    let curve = Curve::by_name("BLS12-381");
    let engine = PairingEngine::new(curve.clone());
    let srs = Srs::generate(&curve, 15, b"kzg-two-loops");
    let kzg = Kzg::new(&engine, &srs).unwrap();
    let r = curve.r();
    let mut rng = SplitMix64(0x2137);

    let poly = random_poly(&mut rng, 16, r);
    let commitment = kzg.commit(&poly).unwrap();
    let mut claims = Vec::new();
    for _ in 0..8 {
        let z = rng.scalar(r.bits());
        claims.push(Claim::Single {
            commitment: commitment.clone(),
            opening: kzg.open(&poly, &z).unwrap(),
        });
    }
    let zs: Vec<BigUint> = (0..4).map(|_| rng.scalar(r.bits())).collect();
    claims.push(Claim::Batch {
        commitment: commitment.clone(),
        opening: kzg.open_batch(&poly, &commitment, &zs).unwrap(),
    });

    // Every claim's check is in fixed-G2 form, so the whole batch must
    // prepare exactly two G2 points: the generator and [τ]G2 — i.e. two
    // Miller loops for 9 claims.
    let (before, _) = engine.prepared_cache_stats();
    assert_eq!(before, 0, "fresh engine starts with an empty cache");
    kzg.verify_batch(&claims).unwrap();
    let (after, _) = engine.prepared_cache_stats();
    assert_eq!(after, 2, "n openings settle with exactly two Miller loops");
}

#[test]
fn srs_wire_round_trips_and_rejects_mutations() {
    let curve = Curve::by_name("BN254N");
    let srs = Srs::generate(&curve, 4, b"kzg-wire");
    let bytes = srs.to_bytes();

    let decoded = Srs::from_bytes(&curve, &bytes).unwrap();
    assert_eq!(decoded.powers_g1(), srs.powers_g1());
    assert_eq!(decoded.tau_g2(), srs.tau_g2());
    assert_eq!(decoded.to_bytes(), bytes, "canonical re-encode");

    // Every truncation is rejected, never a panic.
    for n in 0..bytes.len() {
        assert!(
            Srs::from_bytes(&curve, &bytes[..n]).is_err(),
            "truncation to {n} bytes must be rejected"
        );
    }

    // Targeted header mutations map to their typed errors.
    let mut m = bytes.clone();
    m[0] ^= 0xFF;
    assert!(matches!(
        Srs::from_bytes(&curve, &m),
        Err(SrsError::BadMagic(_))
    ));
    let mut m = bytes.clone();
    m[4] = 0x7F;
    assert!(matches!(
        Srs::from_bytes(&curve, &m),
        Err(SrsError::UnsupportedVersion(0x7F))
    ));
    let other = Curve::by_name("BLS12-381");
    assert!(matches!(
        Srs::from_bytes(&other, &bytes),
        Err(SrsError::CurveMismatch { .. })
    ));
    // Zero out the power count (header is 4 magic + 1 version + 4 name
    // length + name; count is the next 4 bytes).
    let count_at = 4 + 1 + 4 + curve.name().len();
    let mut m = bytes.clone();
    m[count_at..count_at + 4].fill(0);
    assert!(matches!(Srs::from_bytes(&curve, &m), Err(SrsError::Empty)));
    // An absurd count cannot make the decoder over-allocate or scan past
    // the buffer.
    let mut m = bytes.clone();
    m[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
    assert!(matches!(
        Srs::from_bytes(&curve, &m),
        Err(SrsError::TruncatedPoint { .. })
    ));
    // Corrupt the first record's length prefix.
    let mut m = bytes.clone();
    m[count_at + 4] ^= 0x01;
    assert!(matches!(
        Srs::from_bytes(&curve, &m),
        Err(SrsError::PointLength { index: 0, .. }) | Err(SrsError::TruncatedPoint { .. })
    ));
    // Trailing garbage after a well-formed SRS.
    let mut m = bytes.clone();
    m.push(0xAB);
    assert!(matches!(
        Srs::from_bytes(&curve, &m),
        Err(SrsError::TrailingBytes { extra: 1 })
    ));

    // Splitmix64 bit-flip fuzz over the whole encoding: decoding never
    // panics, and anything accepted re-encodes to exactly the mutated
    // bytes (unique canonical encoding).
    let mut rng = SplitMix64(0x5F5F);
    for _ in 0..256 {
        let mut m = bytes.clone();
        let at = (rng.next() as usize) % m.len();
        m[at] ^= 1 << (rng.next() % 8);
        match Srs::from_bytes(&curve, &m) {
            Err(_) => {}
            Ok(decoded) => assert_eq!(decoded.to_bytes(), m, "flip at byte {at}"),
        }
    }
}

#[test]
fn precomputed_mul_is_bit_identical_on_all_curves() {
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let fp_ops = FpOps(Arc::clone(c.fp()));
        let fq_ops = FqOps(c.tower());
        // Non-generator bases, registered explicitly by the caller —
        // the new surface the SRS and signature layers ride.
        let h = c.g1_mul(c.g1_generator(), &BigUint::from_u64(0xBA5E));
        let hq = c.g2_mul(c.g2_generator(), &BigUint::from_u64(0xBA5E));
        let pre1 = c.precompute_g1(&h);
        let pre2 = c.precompute_g2(&hq);
        assert!(pre1.matches_base(&h) && pre2.matches_base(&hq));
        for k in edge_scalars(&c) {
            let reduced = k.rem(c.r());
            let want1 = to_affine(&fp_ops, &scalar_mul(&fp_ops, &h, &reduced));
            let want2 = to_affine(&fq_ops, &scalar_mul(&fq_ops, &hq, &reduced));
            // The explicit precomputed entry points.
            assert_eq!(c.g1_mul_precomputed(&pre1, &k), want1, "{}", spec.name);
            assert_eq!(c.g2_mul_precomputed(&pre2, &k), want2, "{}", spec.name);
            // And the plain entry points, now routed through the cache
            // hit for registered bases.
            assert_eq!(c.g1_mul(&h, &k), want1, "{}", spec.name);
            assert_eq!(c.g2_mul(&hq, &k), want2, "{}", spec.name);
        }
    }
}

#[test]
fn precompute_handles_identity_base() {
    let c = Curve::by_name("BN254N");
    let g1_inf = finesse_curves::Affine::infinity(c.fp().zero());
    let pre = c.precompute_g1(&g1_inf);
    assert!(!pre.matches_base(&g1_inf), "identity base builds no comb");
    for k in edge_scalars(&c) {
        assert!(c.g1_mul_precomputed(&pre, &k).infinity);
    }
}
