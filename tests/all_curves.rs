//! Integration: every Table 2 curve constructs, validates, and pairs
//! bilinearly; a subset is additionally cross-checked against the
//! independent oracle implementation.

use finesse_curves::point::{is_identity, jac_mul};
use finesse_curves::{all_specs, Curve, FpOps, FqOps};
use finesse_ff::BigUint;
use finesse_pairing::{oracle_pair, PairingEngine};
use std::sync::Arc;

#[test]
fn table2_bit_widths_hold_for_all_seven() {
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        assert_eq!(c.p().bits(), spec.p_bits, "{}: log p", spec.name);
        assert_eq!(c.r().bits(), spec.r_bits, "{}: log r", spec.name);
        assert_eq!(c.k(), spec.family.embedding_degree(), "{}: k", spec.name);
    }
}

#[test]
fn generators_are_in_the_r_torsion_everywhere() {
    // [r]G must be checked with the non-reducing point-level ladder: the
    // curve-level muls reduce scalars mod r (so [r]G = O is vacuous there).
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        assert!(c.g1_on_curve(c.g1_generator()), "{}", spec.name);
        assert!(c.g2_on_curve(c.g2_generator()), "{}", spec.name);
        let fp_ops = FpOps(Arc::clone(c.fp()));
        assert!(
            is_identity(&fp_ops, &jac_mul(&fp_ops, c.g1_generator(), c.r())),
            "{}: [r]G1",
            spec.name
        );
        let fq_ops = FqOps(c.tower());
        assert!(
            is_identity(&fq_ops, &jac_mul(&fq_ops, c.g2_generator(), c.r())),
            "{}: [r]G2",
            spec.name
        );
    }
}

#[test]
fn psi_endomorphism_holds_everywhere() {
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let q = c.g2_generator();
        assert_eq!(c.psi(q), c.g2_mul(q, c.p()), "{}: psi(Q) = [p]Q", spec.name);
    }
}

#[test]
fn pairing_is_bilinear_on_all_seven_curves() {
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let e = PairingEngine::new(c.clone());
        let g1 = c.g1_generator();
        let g2 = c.g2_generator();
        let base = e.pair(g1, g2);
        assert!(!e.gt_is_one(&base), "{}: non-degenerate", spec.name);
        assert!(
            e.gt_is_one(&e.gt_pow(&base, c.r())),
            "{}: order r",
            spec.name
        );
        let a = BigUint::from_u64(1000 + spec.p_bits as u64);
        let lhs = e.pair(&c.g1_mul(g1, &a), g2);
        assert_eq!(lhs, e.gt_pow(&base, &a), "{}: left linearity", spec.name);
        let rhs = e.pair(g1, &c.g2_mul(g2, &a));
        assert_eq!(rhs, e.gt_pow(&base, &a), "{}: right linearity", spec.name);
    }
}

#[test]
fn engine_matches_oracle_on_representative_curves() {
    // One curve per family (the oracle is deliberately slow).
    for name in ["BN254N", "BLS12-381", "BLS24-509"] {
        let c = Curve::by_name(name);
        let e = PairingEngine::new(c.clone());
        let p = c.g1_mul(c.g1_generator(), &BigUint::from_u64(9_876_543));
        let q = c.g2_mul(c.g2_generator(), &BigUint::from_u64(1_234_567));
        assert_eq!(e.pair(&p, &q), oracle_pair(&c, &p, &q), "{name}");
    }
}

#[test]
fn final_exponentiation_chains_match_generic_exponent_everywhere() {
    use finesse_pairing::{emit_final_exponentiation, ValueFlow};
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let k = c.tower();
        let a = k.fpk_sample(2024);
        // Project into the cyclotomic subgroup via the easy part.
        let inv = k.fpk_inv(&a);
        let e1 = k.fpk_mul(&k.fpk_conj(&a), &inv);
        let j = if c.k() == 12 { 2 } else { 4 };
        let m = k.fpk_mul(&k.fpk_frob(&e1, j), &e1);

        let g1 = c.g1_generator().clone();
        let g2 = c.g2_generator().clone();
        let mut flow = ValueFlow::new(&c, &g1, &g2);
        let chain = emit_final_exponentiation(&c, &mut flow, &a);
        let mut exp = c.hard_exponent();
        if matches!(
            c.family(),
            finesse_curves::Family::Bls12 | finesse_curves::Family::Bls24
        ) {
            exp = &(&exp + &exp) + &exp; // HKT computes the 3x variant
        }
        assert_eq!(chain, k.fpk_pow(&m, &exp), "{}", spec.name);
    }
}
