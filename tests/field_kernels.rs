//! Differential tests for the fixed-limb field kernels: every hot-path
//! operation (CIOS mul, dedicated squaring, in-place add/sub/neg, Fermat
//! and batch inversion, limb-level halving) is checked against the
//! arbitrary-precision `BigUint` reference arithmetic, across the base
//! primes of all seven Table-2 curves — including the 10-limb
//! (`MAX_LIMBS`) BN638/BLS12-638 edge where the inline buffers are full.
//!
//! Cases come from the same deterministic splitmix64 stream used by
//! `tests/properties.rs` (offline build, no proptest).

use finesse_curves::all_specs;
use finesse_ff::{BigUint, Fp, FpCtx, MAX_LIMBS};
use std::sync::Arc;

/// Deterministic splitmix64 stream; every test derives its cases from this.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

const CASES: usize = 24;

/// Base-field contexts of the seven Table-2 curves (specs are validated
/// by the curve substrate's own tests; skip the Miller–Rabin rounds here).
fn table2_fields() -> Vec<(&'static str, Arc<FpCtx>)> {
    all_specs()
        .into_iter()
        .map(|s| {
            let p = s
                .family
                .prime(&s.t())
                .to_biguint()
                .expect("table-2 primes are positive");
            (s.name, Arc::new(FpCtx::new_unchecked(p)))
        })
        .collect()
}

#[test]
fn table2_widths_cover_the_max_limbs_edge() {
    let fields = table2_fields();
    let widths: Vec<usize> = fields.iter().map(|(_, c)| c.width()).collect();
    // 638-bit curves need exactly MAX_LIMBS limbs: the inline buffer is
    // exercised completely full.
    assert!(widths.contains(&MAX_LIMBS), "no curve at the 10-limb edge");
    for ((name, _), w) in fields.iter().zip(&widths) {
        assert!(*w <= MAX_LIMBS, "{name}: width {w} over MAX_LIMBS");
    }
}

#[test]
fn mul_matches_biguint_reference() {
    let mut rng = Rng::new(0xF1E1D);
    for (name, ctx) in table2_fields() {
        let p = ctx.modulus().clone();
        for _ in 0..CASES {
            let a = ctx.sample(rng.next_u64());
            let b = ctx.sample(rng.next_u64());
            let expect = (&a.to_biguint() * &b.to_biguint()).rem(&p);
            assert_eq!((&a * &b).to_biguint(), expect, "{name}: mul");
        }
    }
}

#[test]
fn sqr_kernel_matches_biguint_reference() {
    let mut rng = Rng::new(0x50_0A12);
    for (name, ctx) in table2_fields() {
        let p = ctx.modulus().clone();
        for _ in 0..CASES {
            let a = ctx.sample(rng.next_u64());
            let ai = a.to_biguint();
            let expect = (&ai * &ai).rem(&p);
            assert_eq!(a.square().to_biguint(), expect, "{name}: sqr vs BigUint");
            assert_eq!(a.square(), &a * &a, "{name}: sqr vs mul kernel");
        }
        // Boundary values where the doubling/reduction carries are maximal.
        let pm1 = ctx.from_biguint(&p.checked_sub(&BigUint::one()).unwrap());
        assert_eq!(pm1.square().to_biguint(), BigUint::one(), "{name}: (p-1)²");
        assert!(ctx.zero().square().is_zero(), "{name}: 0²");
    }
}

#[test]
fn add_sub_neg_match_biguint_reference() {
    let mut rng = Rng::new(0xADD5);
    for (name, ctx) in table2_fields() {
        let p = ctx.modulus().clone();
        for _ in 0..CASES {
            let a = ctx.sample(rng.next_u64());
            let b = ctx.sample(rng.next_u64());
            let (ai, bi) = (a.to_biguint(), b.to_biguint());
            assert_eq!((&a + &b).to_biguint(), (&ai + &bi).rem(&p), "{name}: add");
            let expect_sub = (&(&ai + &p) - &bi).rem(&p);
            assert_eq!((&a - &b).to_biguint(), expect_sub, "{name}: sub");
            let expect_neg = (&p - &ai).rem(&p);
            assert_eq!((-&a).to_biguint(), expect_neg, "{name}: neg");
            // In-place forms agree with the value forms.
            let mut x = a.clone();
            x.add_assign(&b);
            assert_eq!(x, &a + &b, "{name}: add_assign");
            x.sub_assign(&b);
            assert_eq!(x, a, "{name}: sub_assign roundtrip");
            x.neg_assign();
            assert_eq!(x, -&a, "{name}: neg_assign");
            x.mul_assign(&b);
            assert_eq!(x, &-&a * &b, "{name}: mul_assign");
        }
    }
}

#[test]
fn invert_matches_modpow_reference() {
    let mut rng = Rng::new(0x1174);
    for (name, ctx) in table2_fields() {
        let p = ctx.modulus().clone();
        let pm2 = p.checked_sub(&BigUint::from_u64(2)).unwrap();
        for _ in 0..6 {
            let a = ctx.sample(rng.next_u64() | 1);
            let inv = a.invert();
            assert!((&a * &inv).is_one(), "{name}: a·a⁻¹ = 1");
            // Independent reference: BigUint's own Montgomery modpow path.
            let expect = a.to_biguint().modpow(&pm2, &p);
            assert_eq!(inv.to_biguint(), expect, "{name}: inv vs modpow");
        }
    }
}

#[test]
fn batch_invert_matches_individual_inverts() {
    let mut rng = Rng::new(0xBA7C);
    for (name, ctx) in table2_fields() {
        let mut batch: Vec<Fp> = (0..9).map(|_| ctx.sample(rng.next_u64())).collect();
        let individual: Vec<Fp> = batch.iter().map(Fp::invert).collect();
        Fp::batch_invert(&mut batch);
        assert_eq!(batch, individual, "{name}: batch_invert");
    }
}

#[test]
fn halve_and_pow_match_reference() {
    let mut rng = Rng::new(0xA1F);
    for (name, ctx) in table2_fields() {
        let p = ctx.modulus().clone();
        let inv2 = ctx.from_u64(2).invert();
        for _ in 0..8 {
            let a = ctx.sample(rng.next_u64());
            assert_eq!(a.halve(), &a * &inv2, "{name}: halve");
            let e = BigUint::from_u64(rng.next_u64() >> 40);
            let expect = a.to_biguint().modpow(&e, &p);
            assert_eq!(a.pow(&e).to_biguint(), expect, "{name}: pow");
        }
    }
}

#[test]
fn modpow_handles_moduli_wider_than_max_limbs() {
    // The arbitrary-width Montgomery path must keep working where FpCtx
    // (capped at MAX_LIMBS) refuses: e.g. p^k-sized exponent bookkeeping.
    let spec = all_specs()[0]; // BN254N
    let p = spec.family.prime(&spec.t()).to_biguint().unwrap();
    let p4 = p.pow(4); // ~1016 bits = 16 limbs > MAX_LIMBS
    assert!(p4.limbs().len() > MAX_LIMBS);
    let base = BigUint::from_u64(3);
    // Euler: 3^φ(p⁴) ≡ 1 (mod p⁴), with φ(p⁴) = p³(p − 1).
    let phi = &p.pow(3) * &p.checked_sub(&BigUint::one()).unwrap();
    assert!(base.modpow(&phi, &p4).is_one());
    // And a small cross-check against square-and-multiply by hand.
    let e = BigUint::from_u64(5);
    let mut expect = BigUint::one();
    for _ in 0..5 {
        expect = (&expect * &base).rem(&p4);
    }
    assert_eq!(base.modpow(&e, &p4), expect);
}
