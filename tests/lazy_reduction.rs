//! Differential tests for the lazy (incomplete) reduction landed in the
//! Fp2/Fq tower hot path: every unreduced kernel — `add_noreduce`,
//! `sub_with_kp`, `mul_wide`/`sqr_wide` + `redc`, the `*_noreduce` CIOS
//! variants — and every lazy tower product (`fp2_mul` via `fq_mul`,
//! `fq_sqr`, the qdeg-4 pair-wide Karatsuba) is checked against plain
//! `BigUint` polynomial arithmetic, across all seven Table-2 curves
//! including the 10-limb BN638/BLS12-638 `MAX_LIMBS` edge, with random
//! `2p`-bounded inputs and worst-case carry patterns.

use finesse_curves::Curve;
use finesse_ff::{BigUint, Fp, FpCtx, Fq, TowerCtx};
use std::sync::Arc;

const CURVES: [&str; 7] = [
    "BN254N",
    "BN462",
    "BN638",
    "BLS12-381",
    "BLS12-446",
    "BLS12-638",
    "BLS24-509",
];

/// Deterministic splitmix64 stream (same generator as tests/properties.rs).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, limit)` as a BigUint.
    fn below(&mut self, limit: &BigUint, width: usize) -> BigUint {
        let limbs: Vec<u64> = (0..width + 1).map(|_| self.next_u64()).collect();
        BigUint::from_limbs(limbs).rem(limit)
    }
}

/// `R⁻¹ mod p` for the curve's Montgomery radix `R = 2^(64·width)`.
fn r_inv(fp: &Arc<FpCtx>) -> BigUint {
    let p = fp.modulus();
    let r = BigUint::one().shl(64 * fp.width()).rem(p);
    r.modpow(&p.checked_sub(&BigUint::from_u64(2)).unwrap(), p)
}

#[test]
fn every_curve_has_the_lazy_headroom() {
    // The k = 12 chains need 2 spare bits, the k = 24 chains 3; verify the
    // envelope and that dispatch actually engages — including at the
    // 638-in-640-bit edge where the margin is exactly two bits.
    for name in CURVES {
        let c = Curve::by_name(name);
        let h = c.fp().headroom_bits();
        assert!(h >= 2, "{name}: headroom {h} < 2");
        let (lazy2, lazy4) = c.tower().lazy_tiers();
        assert!(lazy2, "{name}: F_p2 layer not lazy");
        if c.tower().qdeg() == 4 {
            assert!(h >= 3, "{name}: qdeg-4 needs 3 spare bits");
            assert!(lazy4, "{name}: F_p4 layer not lazy");
        }
    }
    assert_eq!(
        Curve::by_name("BLS12-638").fp().headroom_bits(),
        2,
        "the 10-limb edge has exactly two spare bits"
    );
    assert_eq!(Curve::by_name("BLS24-509").fp().headroom_bits(), 3);
}

#[test]
fn unreduced_kernels_match_biguint_on_2p_bounded_inputs() {
    let mut rng = Rng(0x1A27);
    for name in CURVES {
        let c = Curve::by_name(name);
        let fp = c.fp();
        let p = fp.modulus().clone();
        let two_p = &p + &p;
        let rinv = r_inv(fp);
        for case in 0..16 {
            let (av, bv) = (rng.below(&two_p, fp.width()), rng.below(&two_p, fp.width()));
            let a = fp.unreduced_from_limbs(&av.to_fixed_limbs(fp.width()), 2);
            let b = fp.unreduced_from_limbs(&bv.to_fixed_limbs(fp.width()), 2);
            // mul_wide is the plain integer product.
            let w = fp.mul_wide(&a, &b);
            assert_eq!(
                BigUint::from_limbs(w.limbs().to_vec()),
                &av * &bv,
                "{name} case {case}: mul_wide"
            );
            // redc is Montgomery reduction to a canonical residue.
            let expect = (&(&av * &bv).rem(&p) * &rinv).rem(&p);
            assert_eq!(
                BigUint::from_limbs(fp.redc(&w).as_slice().to_vec()),
                expect,
                "{name} case {case}: redc(mul_wide)"
            );
            // sqr_wide agrees with mul_wide on the diagonal.
            let sq = fp.sqr_wide(&a);
            assert_eq!(
                BigUint::from_limbs(sq.limbs().to_vec()),
                &av * &av,
                "{name} case {case}: sqr_wide"
            );
            // The noreduce CIOS variants are < 2p and congruent.
            let m = fp.mul_noreduce(&a, &b);
            let got = BigUint::from_limbs(m.limbs().as_slice().to_vec());
            assert!(got < two_p, "{name} case {case}: mul_noreduce bound");
            assert_eq!(got.rem(&p), expect, "{name} case {case}: mul_noreduce");
            let s = fp.sqr_noreduce(&a);
            let got = BigUint::from_limbs(s.limbs().as_slice().to_vec());
            assert!(got < two_p, "{name} case {case}: sqr_noreduce bound");
            assert_eq!(
                got.rem(&p),
                (&(&av * &av).rem(&p) * &rinv).rem(&p),
                "{name} case {case}: sqr_noreduce"
            );
        }
    }
}

#[test]
fn add_noreduce_and_sub_with_kp_match_biguint() {
    let mut rng = Rng(0xADD1);
    for name in CURVES {
        let c = Curve::by_name(name);
        let fp = c.fp();
        let p = fp.modulus().clone();
        for case in 0..16 {
            let (av, bv) = (rng.below(&p, fp.width()), rng.below(&p, fp.width()));
            let a = fp.unreduced_from_limbs(&av.to_fixed_limbs(fp.width()), 1);
            let b = fp.unreduced_from_limbs(&bv.to_fixed_limbs(fp.width()), 1);
            let s = fp.add_noreduce(&a, &b);
            assert_eq!(
                BigUint::from_limbs(s.limbs().as_slice().to_vec()),
                &av + &bv,
                "{name} case {case}: add_noreduce"
            );
            let d = fp.sub_with_kp(&a, &b, 1);
            assert_eq!(
                BigUint::from_limbs(d.limbs().as_slice().to_vec()),
                &(&av + &p) - &bv,
                "{name} case {case}: sub_with_kp"
            );
            // reduce() restores the canonical residue of either.
            assert_eq!(
                BigUint::from_limbs(fp.reduce(&s).as_slice().to_vec()),
                (&av + &bv).rem(&p),
                "{name} case {case}: reduce"
            );
        }
    }
}

#[test]
fn worst_case_carry_patterns_at_every_width() {
    // Maximal operands drive every carry chain: a = b = 2p − 1 (the
    // largest admissible bound-2 value) and p − 1; on the 638-bit curves
    // these fill all ten limbs.
    for name in CURVES {
        let c = Curve::by_name(name);
        let fp = c.fp();
        let p = fp.modulus().clone();
        let rinv = r_inv(fp);
        let two_p_m1 = &(&p + &p) - &BigUint::one();
        let p_m1 = &p - &BigUint::one();
        for v in [&two_p_m1, &p_m1] {
            let u = fp.unreduced_from_limbs(&v.to_fixed_limbs(fp.width()), 2);
            let w = fp.mul_wide(&u, &u);
            assert_eq!(
                BigUint::from_limbs(w.limbs().to_vec()),
                v * v,
                "{name}: worst-case mul_wide"
            );
            let expect = (&(v * v).rem(&p) * &rinv).rem(&p);
            assert_eq!(
                BigUint::from_limbs(fp.redc(&w).as_slice().to_vec()),
                expect,
                "{name}: worst-case redc"
            );
            let nr = fp.mul_noreduce(&u, &u);
            assert_eq!(
                BigUint::from_limbs(nr.limbs().as_slice().to_vec()).rem(&p),
                expect,
                "{name}: worst-case mul_noreduce"
            );
        }
        // add / sub extremes: (2p−1) + (2p−1) = 4p − 2 (the bound-4
        // ceiling) and 0 + 2p − (2p−1) = 1.
        let hi = fp.unreduced_from_limbs(&two_p_m1.to_fixed_limbs(fp.width()), 2);
        let s = fp.add_noreduce(&hi, &hi);
        assert_eq!(
            BigUint::from_limbs(s.limbs().as_slice().to_vec()),
            &two_p_m1 + &two_p_m1,
            "{name}: 4p−2 sum"
        );
        assert_eq!(
            BigUint::from_limbs(fp.reduce(&s).as_slice().to_vec()),
            (&two_p_m1 + &two_p_m1).rem(&p),
            "{name}: 4p−2 reduce"
        );
        let zero = fp.unreduced_from_limbs(&[], 1);
        let d = fp.sub_with_kp(&zero, &hi, 2);
        assert_eq!(
            BigUint::from_limbs(d.limbs().as_slice().to_vec()),
            BigUint::one(),
            "{name}: 2p − (2p−1)"
        );
    }
}

// ---------------------------------------------------------------------
// Tower-level reference: BigUint polynomial arithmetic mod (u² − β),
// (v² − ξ₂), entirely independent of the limb kernels.
// ---------------------------------------------------------------------

/// Canonical coefficients of an Fq element.
fn coeffs_big(a: &Fq) -> Vec<BigUint> {
    a.coeffs().iter().map(Fp::to_biguint).collect()
}

/// Rebuilds an Fq from canonical BigUint coefficients.
fn fq_from_big(t: &Arc<TowerCtx>, c: &[BigUint]) -> Fq {
    Fq::from_coeffs(c.iter().map(|v| t.fp().from_biguint(v)).collect()).expect("k/6 coefficients")
}

struct Fp2Ref {
    p: BigUint,
    beta: BigUint,
}

impl Fp2Ref {
    fn mul(&self, a: &[BigUint], b: &[BigUint]) -> [BigUint; 2] {
        let p = &self.p;
        let c0 = (&(&a[0] * &b[0]) + &(&(&a[1] * &b[1]).rem(p) * &self.beta)).rem(p);
        let c1 = (&(&a[0] * &b[1]) + &(&a[1] * &b[0])).rem(p);
        [c0, c1]
    }

    fn add(&self, a: &[BigUint], b: &[BigUint]) -> [BigUint; 2] {
        [(&a[0] + &b[0]).rem(&self.p), (&a[1] + &b[1]).rem(&self.p)]
    }
}

#[test]
fn lazy_fq_mul_and_sqr_match_biguint_reference_all_curves() {
    let mut rng = Rng(0x7077E4);
    for name in CURVES {
        let c = Curve::by_name(name);
        let t = c.tower().clone();
        let p = c.fp().modulus().clone();
        let f2 = Fp2Ref {
            p: p.clone(),
            beta: t.beta().to_biguint(),
        };
        for case in 0..10u64 {
            let a = t.fq_sample(rng.next_u64());
            let b = t.fq_sample(rng.next_u64());
            let (ab, bb) = (coeffs_big(&a), coeffs_big(&b));
            let expect: Vec<BigUint> = match t.qdeg() {
                2 => f2.mul(&ab, &bb).to_vec(),
                4 => {
                    // (A0 + A1·v)(B0 + B1·v) = (A0B0 + ξ₂·A1B1) + (A0B1 + A1B0)·v
                    let (xi0, xi1) = t.xi2().expect("qdeg 4");
                    let xi2 = [xi0.to_biguint(), xi1.to_biguint()];
                    let v0 = f2.mul(&ab[0..2], &bb[0..2]);
                    let v1 = f2.mul(&ab[2..4], &bb[2..4]);
                    let c0 = f2.add(&v0, &f2.mul(&v1, &xi2));
                    let c1 = f2.add(&f2.mul(&ab[0..2], &bb[2..4]), &f2.mul(&ab[2..4], &bb[0..2]));
                    vec![c0[0].clone(), c0[1].clone(), c1[0].clone(), c1[1].clone()]
                }
                _ => unreachable!(),
            };
            assert_eq!(
                t.fq_mul(&a, &b),
                fq_from_big(&t, &expect),
                "{name} case {case}: fq_mul vs BigUint"
            );
            assert_eq!(
                t.fq_sqr(&a),
                t.fq_mul(&a, &a),
                "{name} case {case}: fq_sqr vs fq_mul"
            );
        }
        // Edge element: all coefficients p − 1 maximises every internal
        // sum, difference and carry chain of the lazy kernels.
        let pm1 = c.fp().from_biguint(&(&p - &BigUint::one()));
        let edge = Fq::from_coeffs(vec![pm1; t.qdeg()]).expect("qdeg coefficients");
        let eb = coeffs_big(&edge);
        let expect: Vec<BigUint> = match t.qdeg() {
            2 => f2.mul(&eb, &eb).to_vec(),
            4 => {
                let (xi0, xi1) = t.xi2().expect("qdeg 4");
                let xi2 = [xi0.to_biguint(), xi1.to_biguint()];
                let v0 = f2.mul(&eb[0..2], &eb[0..2]);
                let v1 = f2.mul(&eb[2..4], &eb[2..4]);
                let c0 = f2.add(&v0, &f2.mul(&v1, &xi2));
                let c1 = f2.add(&f2.mul(&eb[0..2], &eb[2..4]), &f2.mul(&eb[2..4], &eb[0..2]));
                vec![c0[0].clone(), c0[1].clone(), c1[0].clone(), c1[1].clone()]
            }
            _ => unreachable!(),
        };
        assert_eq!(
            t.fq_mul(&edge, &edge),
            fq_from_big(&t, &expect),
            "{name}: edge fq_mul"
        );
        assert_eq!(t.fq_sqr(&edge), t.fq_mul(&edge, &edge), "{name}: edge sqr");
    }
}

#[test]
fn named_panic_paths_return_errors_not_aborts() {
    let c = Curve::by_name("BN254N");
    // final_exp_full: Result on the library path; Ok for a valid curve.
    let full = c.final_exp_full().expect("r | p^k - 1");
    assert!(full.bits() > 0);
    // hash_to_g1: Result; Ok for real inputs.
    assert!(c.hash_to_g1(b"lazy reduction").is_ok());
    // from_coeffs: Result instead of panic on bad counts.
    let one = c.fp().one();
    assert!(Fq::from_coeffs(vec![one.clone(); 3]).is_err());
    assert!(Fq::from_coeffs(vec![one; 2]).is_ok());
    let t = c.tower();
    assert!(finesse_ff::Fpk::from_coeffs(vec![t.fq_zero(); 7]).is_err());
}
