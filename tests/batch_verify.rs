//! Soundness and determinism tests for deferred pairing accumulation:
//! the randomized batch verifier must accept every honest batch and
//! reject any tampered one on all seven Table 2 curves, the prepared-G2
//! replay path must be bit-identical to the interleaved Miller loop, and
//! the whole surface must be thread-count deterministic.
//!
//! CI runs this suite once with `FINESSE_THREADS=1` and once
//! unconstrained; the explicit `with_threads` pins below cover the
//! scoped-override path on top of that.

use finesse_curves::{all_specs, Affine, Curve};
use finesse_ff::{BigUint, Fp, Fq};
use finesse_pairing::{
    G2Prepared, PairingAccumulator, PairingEngine, SplitMix64Transcript, Transcript,
};
use finesse_parallel::with_threads;
use std::sync::Arc;

/// A valid check `e([a]G1, G2) =? e(G1, [a]G2)` — holds by bilinearity.
fn valid_check(c: &Arc<Curve>, a: u64) -> (Affine<Fp>, Affine<Fq>, Affine<Fp>, Affine<Fq>) {
    let s = BigUint::from_u64(a);
    (
        c.g1_mul(c.g1_generator(), &s),
        c.g2_generator().clone(),
        c.g1_generator().clone(),
        c.g2_mul(c.g2_generator(), &s),
    )
}

#[test]
fn accumulator_accepts_valid_batches_on_all_seven() {
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let e = PairingEngine::new(c.clone());
        let mut acc = PairingAccumulator::new(&e);
        for a in [3u64, 0x5eed, 0xC0DE_CAFE] {
            let (p1, q1, p2, q2) = valid_check(&c, a);
            acc.push_check(&p1, &q1, &p2, &q2);
        }
        assert_eq!(acc.len(), 3, "{}", spec.name);
        assert!(acc.settle(), "{}: honest batch accepted", spec.name);
    }
}

#[test]
fn accumulator_rejects_one_tampered_check_on_all_seven() {
    // Differential against the accepting batch: the same three checks,
    // except one G1 side is nudged to the adjacent group element — the
    // smallest group-level analogue of a flipped signature bit.
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let e = PairingEngine::new(c.clone());
        for tampered in 0..3usize {
            let mut acc = PairingAccumulator::new(&e);
            for (i, a) in [3u64, 0x5eed, 0xC0DE_CAFE].into_iter().enumerate() {
                let (mut p1, q1, p2, q2) = valid_check(&c, a);
                if i == tampered {
                    p1 = c.g1_add(&p1, c.g1_generator());
                }
                acc.push_check(&p1, &q1, &p2, &q2);
            }
            assert!(
                !acc.settle(),
                "{}: tampering check {tampered} must be caught",
                spec.name
            );
        }
    }
}

#[test]
fn prepared_replay_is_bit_identical_to_interleaved_on_all_seven() {
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let e = PairingEngine::new(c.clone());
        let p = c.g1_mul(c.g1_generator(), &BigUint::from_u64(31337));
        let q = c.g2_mul(c.g2_generator(), &BigUint::from_u64(271_828));
        let prep = G2Prepared::new(&c, &q);
        assert_eq!(
            e.miller_loop_prepared(&p, &prep),
            e.miller_loop(&p, &q),
            "{}: replayed Miller loop == interleaved",
            spec.name
        );
    }
}

#[test]
fn multi_pair_dedup_matches_sequential_pair_products() {
    // Repeated G2 inputs exercise the dedup path: four pairs against only
    // two distinct Qs must still produce the bit-identical Gt value of
    // the four sequential pair() products.
    for name in ["BN254N", "BLS12-381"] {
        let c = Curve::by_name(name);
        let e = PairingEngine::new(c.clone());
        let q_shared = c.g2_mul(c.g2_generator(), &BigUint::from_u64(5));
        let pairs: Vec<(Affine<Fp>, Affine<Fq>)> = [2u64, 3, 7, 11]
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let p = c.g1_mul(c.g1_generator(), &BigUint::from_u64(*a));
                let q = if i % 2 == 0 {
                    q_shared.clone()
                } else {
                    c.g2_generator().clone()
                };
                (p, q)
            })
            .collect();
        let batched = e.multi_pair(&pairs);
        let sequential = pairs
            .iter()
            .map(|(p, q)| e.pair(p, q))
            .reduce(|a, b| e.gt_mul(&a, &b))
            .unwrap();
        assert_eq!(batched, sequential, "{name}");
        let (len, cap) = e.prepared_cache_stats();
        assert_eq!(len, 2, "{name}: two distinct Qs cached");
        assert!(len <= cap, "{name}");
    }
}

#[test]
fn accumulator_edge_cases() {
    let c = Curve::by_name("BN254N");
    let e = PairingEngine::new(c.clone());

    // Empty batch is vacuously true.
    let acc = PairingAccumulator::new(&e);
    assert!(acc.is_empty());
    assert!(acc.settle());

    // Singleton valid / invalid.
    let (p1, q1, p2, q2) = valid_check(&c, 42);
    let mut acc = PairingAccumulator::new(&e);
    acc.push_check(&p1, &q1, &p2, &q2);
    assert!(acc.settle());
    let mut acc = PairingAccumulator::new(&e);
    acc.push_check(&p2, &q1, &p1, &q2); // swapped G1 sides: e(G1,G2) != e([42]G1,[42]G2)
    assert!(!acc.settle());

    // The same valid check pushed twice (duplicate points across checks).
    let mut acc = PairingAccumulator::new(&e);
    acc.push_check(&p1, &q1, &p2, &q2);
    acc.push_check(&p1, &q1, &p2, &q2);
    assert!(acc.settle());

    // Identity on a G1 side drops that pairing to the GT identity: the
    // check e(O, B) =? e(C, D) holds iff e(C, D) == 1, false for
    // generators.
    let inf1 = Affine::infinity(c.fp().zero());
    let mut acc = PairingAccumulator::new(&e);
    acc.push_check(&inf1, &q1, &p2, &q2);
    assert!(!acc.settle());
    // …and e(O, B) =? e(O, D) is vacuously true.
    let mut acc = PairingAccumulator::new(&e);
    acc.push_check(&inf1, &q1, &inf1, &q2);
    assert!(acc.settle());

    // Identity on a G2 side likewise.
    let inf2 = Affine::infinity(c.tower().fq_zero());
    let mut acc = PairingAccumulator::new(&e);
    acc.push_check(&p1, &inf2, &p2, &inf2);
    assert!(acc.settle());
}

#[test]
fn settle_and_multi_pair_are_thread_count_deterministic() {
    let c = Curve::by_name("BLS12-381");
    let e = PairingEngine::new(c.clone());
    let pairs: Vec<(Affine<Fp>, Affine<Fq>)> = (1..=4u64)
        .map(|a| {
            (
                c.g1_mul(c.g1_generator(), &BigUint::from_u64(a * 17)),
                c.g2_mul(c.g2_generator(), &BigUint::from_u64(a * 29)),
            )
        })
        .collect();
    let serial = with_threads(1, || e.multi_pair(&pairs));
    let unconstrained = e.multi_pair(&pairs);
    let wide = with_threads(4, || e.multi_pair(&pairs));
    assert_eq!(serial, unconstrained);
    assert_eq!(serial, wide);

    let run_batch = || {
        let mut acc = PairingAccumulator::new(&e);
        for a in [9u64, 10, 11] {
            let (p1, q1, p2, q2) = valid_check(&c, a);
            acc.push_check(&p1, &q1, &p2, &q2);
        }
        acc.settle()
    };
    assert!(with_threads(1, run_batch));
    assert!(with_threads(4, run_batch));
    assert!(run_batch());
}

#[test]
fn prepared_cache_shares_and_stays_bounded() {
    let c = Curve::by_name("BN254N");
    let e = PairingEngine::new(c.clone());
    let q = c.g2_mul(c.g2_generator(), &BigUint::from_u64(77));

    // Same point twice → the same Arc (built once).
    let first = e.prepare_g2(&q);
    let second = e.prepare_g2(&q);
    assert!(Arc::ptr_eq(&first, &second));

    // Filling past capacity evicts instead of growing.
    let (_, cap) = e.prepared_cache_stats();
    for a in 0..(cap as u64 + 8) {
        let qi = c.g2_mul(c.g2_generator(), &BigUint::from_u64(1000 + a));
        e.prepare_g2(&qi);
    }
    let (len, cap_after) = e.prepared_cache_stats();
    assert_eq!(cap, cap_after);
    assert!(len <= cap, "cache bounded: {len} <= {cap}");
}

#[test]
fn transcript_is_deterministic_and_order_sensitive() {
    let c = Curve::by_name("BN254N");
    let p = c.g1_generator();
    let q = c.g2_generator();

    let mut t1 = SplitMix64Transcript::new(b"test-domain");
    t1.absorb_g1(p);
    t1.absorb_g2(q);
    let mut t2 = SplitMix64Transcript::new(b"test-domain");
    t2.absorb_g1(p);
    t2.absorb_g2(q);
    assert_eq!(t1.challenge_u64(), t2.challenge_u64());
    assert_eq!(t1.challenge_short(), t2.challenge_short());

    // Different label → different stream.
    let mut t3 = SplitMix64Transcript::new(b"other-domain");
    t3.absorb_g1(p);
    t3.absorb_g2(q);
    let mut t4 = SplitMix64Transcript::new(b"test-domain");
    t4.absorb_g1(p);
    t4.absorb_g2(q);
    assert_ne!(t3.challenge_u64(), t4.challenge_u64());

    // Short challenges are ~128-bit and never zero.
    let mut t = SplitMix64Transcript::new(b"width");
    for _ in 0..32 {
        let rho = t.challenge_short();
        assert!(!rho.is_zero());
        assert!(rho.bits() <= 128);
    }
}

/// A check that does *not* hold: `e([a]G1, G2) =? e(G1, [a+1]G2)`.
fn tampered_check(c: &Arc<Curve>, a: u64) -> (Affine<Fp>, Affine<Fq>, Affine<Fp>, Affine<Fq>) {
    let (p1, q1, p2, _) = valid_check(c, a);
    (
        p1,
        q1,
        p2,
        c.g2_mul(c.g2_generator(), &BigUint::from_u64(a + 1)),
    )
}

/// Builds a 32-check batch with the checks at `bad` tampered, settles it
/// with the isolating path, and asserts the bisection names exactly the
/// tampered indices. Scalars repeat mod 4 so the batch exercises the
/// few-distinct-G2 grouping the accumulator is optimised for.
fn assert_isolates(c: &Arc<Curve>, bad: &[usize]) {
    let e = PairingEngine::new(c.clone());
    let mut acc = PairingAccumulator::new(&e);
    for i in 0..32u64 {
        let a = 3 + (i % 4);
        let (p1, q1, p2, q2) = if bad.contains(&(i as usize)) {
            tampered_check(c, a)
        } else {
            valid_check(c, a)
        };
        acc.push_check(&p1, &q1, &p2, &q2);
    }
    assert_eq!(
        acc.settle_isolating(),
        Err(bad.to_vec()),
        "isolating settle must name exactly the tampered checks"
    );
}

#[test]
fn settle_isolating_accepts_honest_batches() {
    let c = Curve::by_name("BN254N");
    let e = PairingEngine::new(c.clone());
    let mut acc = PairingAccumulator::new(&e);
    for a in [3u64, 17, 0x5eed] {
        let (p1, q1, p2, q2) = valid_check(&c, a);
        acc.push_check(&p1, &q1, &p2, &q2);
    }
    assert_eq!(acc.settle_isolating(), Ok(()));
    // The empty batch is vacuously honest.
    let acc = PairingAccumulator::new(&e);
    assert_eq!(acc.settle_isolating(), Ok(()));
}

#[test]
fn settle_isolating_pinpoints_faults_bn254n() {
    let c = Curve::by_name("BN254N");
    for bad in [vec![7usize], vec![0, 31], vec![2, 3, 11, 19, 30]] {
        assert_isolates(&c, &bad);
    }
}

#[test]
fn settle_isolating_pinpoints_faults_bls12_381() {
    let c = Curve::by_name("BLS12-381");
    for bad in [vec![13usize], vec![5, 21], vec![0, 1, 15, 16, 31]] {
        assert_isolates(&c, &bad);
    }
}
