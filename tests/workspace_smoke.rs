//! Workspace-surface smoke test: the facade crate must expose every
//! subsystem, and `Curve::by_name` must round-trip for every supported
//! curve name (exact case, lower case, and via the spec registry).

use finesse::curves::{all_specs, spec_by_name, Curve};

#[test]
fn curve_by_name_round_trips_for_every_supported_curve() {
    let specs = all_specs();
    assert_eq!(specs.len(), 7, "Table 2 curve set");
    for spec in specs {
        // spec registry lookup is case-insensitive and agrees with the spec
        let found = spec_by_name(spec.name).expect("spec lookup by canonical name");
        assert_eq!(found.name, spec.name);
        let lower = spec_by_name(&spec.name.to_lowercase()).expect("case-insensitive lookup");
        assert_eq!(lower.name, spec.name);

        // constructing the curve preserves the canonical name...
        let curve = Curve::by_name(spec.name);
        assert_eq!(curve.name(), spec.name);

        // ...and the registry caches: a second lookup is the same instance
        let again = Curve::by_name(&spec.name.to_lowercase());
        assert!(
            std::sync::Arc::ptr_eq(&curve, &again),
            "{} not cached",
            spec.name
        );
    }
}

#[test]
fn facade_reexports_every_subsystem() {
    // Touch one symbol per re-exported crate so a dropped re-export fails
    // to compile rather than silently shrinking the public surface.
    let _ = finesse::ff::BigUint::one();
    let _ = finesse::isa::EncodingSpec::new(1, 1);
    let _ = finesse::curves::all_specs();
    let _ = finesse::ir::FpProgram::default();
    let _ = finesse::hw::HwModel::paper_default();
    let _ = std::any::type_name::<finesse::pairing::PairingEngine>();
    let _ = finesse::compiler::CompileOptions::default();
    let _ = std::any::type_name::<finesse::sim::SimReport>();
    let _ = std::any::type_name::<finesse::dse::Objective>();
    let _ = std::any::type_name::<finesse::core::DesignFlow>();
}
