//! Differential tests for endomorphism-accelerated scalar multiplication:
//! GLV/GLS decompositions recombine correctly, the accelerated
//! `g1_mul`/`g2_mul` are bit-identical to the double-and-add
//! [`scalar_mul`] reference, and the Pippenger `msm` matches the naive
//! sum — across all seven Table 2 curves with edge scalars.

use finesse_curves::{all_specs, scalar_mul, to_affine, Curve, FpOps, FqOps, GlsG2};
use finesse_ff::{BigInt, BigUint};
use std::sync::Arc;

/// Deterministic full-width scalar stream (splitmix64-filled limbs).
fn scalar_stream(seed: u64, width_bits: usize) -> impl FnMut() -> BigUint {
    let mut state = seed;
    move || {
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        BigUint::from_limbs((0..width_bits.div_ceil(64)).map(|_| next()).collect())
    }
}

/// Edge scalars for a curve: identity-adjacent, r-adjacent (the
/// reduction-mod-r regression cases), eigenvalue-adjacent (sign-boundary
/// decompositions), and full-width pseudorandom.
fn edge_scalars(c: &Arc<Curve>) -> Vec<BigUint> {
    let r = c.r();
    let one = BigUint::one();
    let mut out = vec![
        BigUint::zero(),
        one.clone(),
        BigUint::from_u64(2),
        r.checked_sub(&one).unwrap(),
        r.clone(),
        &r.clone() + &one,
        &(&r.clone() + &r.clone()) + &BigUint::from_u64(3), // 2r + 3
    ];
    // Sign boundaries: the eigenvalues themselves decompose to (0, ±1)
    // neighbourhoods where the rounding flips.
    if let Some(glv) = c.glv_g1() {
        out.push(glv.lambda().clone());
        out.push(glv.lambda().checked_sub(&one).unwrap());
        out.push((&(glv.lambda().clone()) + &one).rem(r));
    }
    out.push(c.gls_eigenvalue());
    let mut stream = scalar_stream(0xC0FF_EE00 ^ r.low_u64(), r.bits() + 64);
    for _ in 0..3 {
        out.push(stream());
    }
    out
}

#[test]
fn glv_decomposition_recomposes_with_short_halves() {
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let r = c.r();
        let glv = c.glv_g1().expect("all built-in curves calibrate GLV");
        let lambda = BigInt::from_biguint(glv.lambda().clone());
        for k in edge_scalars(&c) {
            let (k1, k2) = c.decompose_scalar(&k).unwrap();
            let recomposed = &k1 + &(&k2 * &lambda);
            assert_eq!(
                recomposed.rem_euclid(r),
                k.rem(r),
                "{}: k₁ + k₂λ ≡ k mod r for k = {k:?}",
                spec.name
            );
            // √r bound (+2 bits of rounding slack).
            let bound = r.bits() / 2 + 2;
            assert!(
                k1.bits() <= bound && k2.bits() <= bound,
                "{}: |k₁| = {} bits, |k₂| = {} bits exceeds √r ≈ {} bits",
                spec.name,
                k1.bits(),
                k2.bits(),
                bound
            );
        }
    }
}

#[test]
fn gls_digits_recompose_with_short_digits() {
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let r = c.r();
        let zeta = BigInt::from_biguint(c.gls_eigenvalue());
        // Mode-specific digit bound: |t|-sized for the BLS power and BN
        // quartic splits, √r for the generic 2-dim fallback.
        let digit_bound = match c.gls_g2() {
            GlsG2::Power { t } => t.bits() + 1,
            GlsG2::Quartic { .. } => c.t().bits() + 4,
            GlsG2::TwoDim { .. } => r.bits() / 2 + 2,
        };
        for k in edge_scalars(&c) {
            let digits = c.g2_gls_digits(&k);
            let mut acc = BigInt::zero();
            for d in digits.iter().rev() {
                acc = &(&acc * &zeta) + d;
            }
            assert_eq!(
                acc.rem_euclid(r),
                k.rem(r),
                "{}: Σ dᵢζⁱ ≡ k mod r for k = {k:?}",
                spec.name
            );
            for (i, d) in digits.iter().enumerate() {
                assert!(
                    d.bits() <= digit_bound,
                    "{}: digit {i} has {} bits, bound {digit_bound} (k = {k:?})",
                    spec.name,
                    d.bits()
                );
            }
        }
    }
}

#[test]
fn g1_mul_is_bit_identical_to_reference() {
    // A non-generator base keeps this on the GLV/JSF variable-base path
    // (generator muls route through the fixed-base comb, which has its
    // own differential suite in `tests/fixed_base.rs`).
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let ops = FpOps(Arc::clone(c.fp()));
        let g = c.g1_mul(c.g1_generator(), &BigUint::from_u64(3));
        for k in edge_scalars(&c) {
            let fast = c.g1_mul(&g, &k);
            let reference = to_affine(&ops, &scalar_mul(&ops, &g, &k.rem(c.r())));
            assert_eq!(fast, reference, "{}: k = {k:?}", spec.name);
        }
    }
}

#[test]
fn g2_mul_is_bit_identical_to_reference() {
    // Non-generator base: stays on the ψ-split GLS path (see above).
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let tower = c.tower();
        let ops = FqOps(tower);
        let q = c.g2_mul(c.g2_generator(), &BigUint::from_u64(3));
        for k in edge_scalars(&c) {
            let fast = c.g2_mul(&q, &k);
            let reference = to_affine(&ops, &scalar_mul(&ops, &q, &k.rem(c.r())));
            assert_eq!(fast, reference, "{}: k = {k:?}", spec.name);
        }
    }
}

#[test]
fn oversized_scalars_reduce_mod_r() {
    // The satellite regression: k = r, r+1, 2r+3 act like 0, 1, 3 on the
    // r-torsion and must not pay (or corrupt) full-length ladders.
    for name in ["BN254N", "BLS12-381", "BLS24-509"] {
        let c = Curve::by_name(name);
        let r = c.r();
        let one = BigUint::one();
        let g = c.g1_generator();
        let q = c.g2_generator();
        assert!(c.g1_mul(g, r).infinity, "{name}: [r]G1 = O");
        assert_eq!(c.g1_mul(g, &(r + &one)), *g, "{name}: [r+1]G1 = G1");
        let two_r_3 = &(r + r) + &BigUint::from_u64(3);
        assert_eq!(
            c.g1_mul(g, &two_r_3),
            c.g1_mul(g, &BigUint::from_u64(3)),
            "{name}: [2r+3]G1 = [3]G1"
        );
        assert!(c.g2_mul(q, r).infinity, "{name}: [r]G2 = O");
        assert_eq!(c.g2_mul(q, &(r + &one)), *q, "{name}: [r+1]G2 = G2");
        assert_eq!(
            c.g2_mul(q, &two_r_3),
            c.g2_mul(q, &BigUint::from_u64(3)),
            "{name}: [2r+3]G2 = [3]G2"
        );
    }
}

/// Naive MSM reference: independent accelerated muls + additions (already
/// verified bit-identical to `scalar_mul` above).
fn naive_g1_msm(
    c: &Arc<Curve>,
    points: &[finesse_curves::Affine<finesse_ff::Fp>],
    scalars: &[BigUint],
) -> finesse_curves::Affine<finesse_ff::Fp> {
    let mut acc = finesse_curves::Affine::infinity(c.fp().zero());
    for (p, k) in points.iter().zip(scalars) {
        acc = c.g1_add(&acc, &c.g1_mul(p, k));
    }
    acc
}

#[test]
fn g1_msm_matches_naive_sum() {
    // Full size sweep on the headline curves, spot check on the rest.
    let sizes_by_curve = |name: &str| -> Vec<usize> {
        match name {
            "BN254N" | "BLS12-381" => vec![0, 1, 2, 33, 257],
            _ => vec![33],
        }
    };
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let g = c.g1_generator();
        for n in sizes_by_curve(spec.name) {
            let mut stream = scalar_stream(0xBEEF ^ n as u64, c.r().bits());
            let points: Vec<_> = (0..n)
                .map(|i| c.g1_mul(g, &BigUint::from_u64((i * i + 3) as u64)))
                .collect();
            let mut scalars: Vec<_> = (0..n).map(|_| stream()).collect();
            if n > 2 {
                // Exercise degenerate entries inside a real batch.
                scalars[1] = BigUint::zero();
                scalars[2] = c.r().clone(); // reduces to zero
            }
            assert_eq!(
                c.g1_msm(&points, &scalars).unwrap(),
                naive_g1_msm(&c, &points, &scalars),
                "{}: n = {n}",
                spec.name
            );
        }
    }
}

#[test]
fn g2_msm_matches_naive_sum() {
    for (name, n) in [
        ("BN254N", 33usize),
        ("BLS12-381", 33),
        ("BLS24-509", 9),
        ("BN462", 5),
    ] {
        let c = Curve::by_name(name);
        let q = c.g2_generator();
        let mut stream = scalar_stream(0xD00D ^ n as u64, c.r().bits());
        let points: Vec<_> = (0..n)
            .map(|i| c.g2_mul(q, &BigUint::from_u64((2 * i + 5) as u64)))
            .collect();
        let scalars: Vec<_> = (0..n).map(|_| stream()).collect();
        let mut want = finesse_curves::Affine::infinity(c.tower().fq_zero());
        for (p, k) in points.iter().zip(&scalars) {
            want = c.g2_add(&want, &c.g2_mul(p, k));
        }
        assert_eq!(
            c.g2_msm(&points, &scalars).unwrap(),
            want,
            "{name}: n = {n}"
        );
    }
}

#[test]
fn msm_empty_and_degenerate_inputs() {
    let c = Curve::by_name("BN254N");
    assert!(c.g1_msm(&[], &[]).unwrap().infinity);
    let g = c.g1_generator().clone();
    let inf = finesse_curves::Affine::infinity(c.fp().zero());
    // All entries degenerate → identity.
    assert!(
        c.g1_msm(
            &[inf.clone(), g.clone()],
            &[BigUint::from_u64(7), BigUint::zero()]
        )
        .unwrap()
        .infinity
    );
    // Single live term → plain multiple.
    assert_eq!(
        c.g1_msm(
            &[g.clone(), inf],
            &[BigUint::from_u64(7), BigUint::from_u64(9)]
        )
        .unwrap(),
        c.g1_mul(&g, &BigUint::from_u64(7))
    );
}

#[test]
fn msm_length_mismatch_is_reported_not_fatal() {
    let c = Curve::by_name("BN254N");
    let g = c.g1_generator().clone();
    let err = c.g1_msm(&[g], &[]).unwrap_err();
    assert!(
        matches!(
            err,
            finesse_curves::CurveError::MsmLengthMismatch {
                what: "g1_msm",
                points: 1,
                scalars: 0,
            }
        ),
        "unexpected error: {err}"
    );
    let q = c.g2_generator().clone();
    let err = c
        .g2_msm(&[q], &[BigUint::from_u64(1), BigUint::from_u64(2)])
        .unwrap_err();
    assert!(err.to_string().contains("g2_msm"), "display names the API");
}
