//! Adversarial tests for the validated wire format (`finesse_curves::wire`)
//! and the fast subgroup checks backing it, across all seven Table 2
//! curves.
//!
//! The decoder's contract for untrusted bytes is: every accepted input is
//! the *unique* canonical encoding of a point of the advertised
//! prime-order group, and every rejected input gets a typed
//! [`DecodeError`] naming what was wrong. This suite drives that contract
//! with a deterministic splitmix64 fuzzer — round-trips, bit-flips,
//! truncations, non-canonical field limbs, off-curve x coordinates, and
//! on-curve points outside the r-torsion — plus a differential check of
//! the endomorphism-accelerated subgroup tests against the naive `[r]P`
//! oracle.

use finesse_curves::{all_specs, Affine, Compression, Curve, DecodeError};
use finesse_ff::{BigUint, Fp, Fq};
use std::sync::Arc;

/// Deterministic splitmix64: reproducible "random" inputs without an RNG
/// dependency. Every failure reproduces from the constant seeds below.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn random_g1(c: &Arc<Curve>, rng: &mut SplitMix64) -> Affine<Fp> {
    c.g1_mul(c.g1_generator(), &BigUint::from_u64(rng.next() | 1))
}

fn random_g2(c: &Arc<Curve>, rng: &mut SplitMix64) -> Affine<Fq> {
    c.g2_mul(c.g2_generator(), &BigUint::from_u64(rng.next() | 1))
}

/// A point on E(F_p) found by x-increment *without* cofactor clearing:
/// on curves with cofactor > 1 it lands outside the r-subgroup with
/// overwhelming probability.
fn uncleaned_g1_point(c: &Curve, start: u64) -> Affine<Fp> {
    let fp = c.fp();
    let mut xi = start;
    loop {
        let x = fp.from_u64(xi);
        let rhs = &(&(&x * &x) * &x) + c.b();
        if let Some(y) = rhs.sqrt() {
            return Affine::new(x, y);
        }
        xi += 1;
    }
}

/// Same construction on the twist E'(F_q) for G2.
fn uncleaned_g2_point(c: &Curve, start: u64) -> Affine<Fq> {
    let tower = c.tower();
    let mut xi = start;
    loop {
        let x = tower.fq_from_fp(&c.fp().from_u64(xi));
        let x3 = tower.fq_mul(&tower.fq_mul(&x, &x), &x);
        let rhs = tower.fq_add(&x3, c.b_twist());
        if let Some(y) = tower.fq_sqrt(&rhs) {
            return Affine::new(x, y);
        }
        xi += 1;
    }
}

/// Fixed-width big-endian bytes of a [`BigUint`] (for building malformed
/// field encodings such as the modulus itself).
fn biguint_bytes_be(v: &BigUint, width: usize) -> Vec<u8> {
    let mut out = vec![0u8; width];
    for (i, limb) in v.to_fixed_limbs(width.div_ceil(8)).iter().enumerate() {
        for j in 0..8 {
            let idx = 8 * i + j;
            if idx < width {
                out[width - 1 - idx] = (limb >> (8 * j)) as u8;
            }
        }
    }
    out
}

#[test]
fn round_trip_is_the_identity_on_all_seven() {
    let mut rng = SplitMix64(0x57EE_D001);
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        for mode in [Compression::Compressed, Compression::Uncompressed] {
            for p in [
                c.g1_generator().clone(),
                random_g1(&c, &mut rng),
                Affine::infinity(c.fp().zero()),
            ] {
                let enc = c.encode_g1(&p, mode);
                assert_eq!(enc.len(), c.g1_wire_len(mode), "{}", spec.name);
                let dec = c
                    .decode_g1(&enc)
                    .unwrap_or_else(|e| panic!("{}: honest G1 encoding rejected: {e}", spec.name));
                assert_eq!(dec, p, "{}: G1 round-trip changed the point", spec.name);
                // Canonicality: re-encoding reproduces the exact bytes.
                assert_eq!(c.encode_g1(&dec, mode), enc, "{}", spec.name);
            }
            for q in [
                c.g2_generator().clone(),
                random_g2(&c, &mut rng),
                Affine::infinity(c.tower().fq_zero()),
            ] {
                let enc = c.encode_g2(&q, mode);
                assert_eq!(enc.len(), c.g2_wire_len(mode), "{}", spec.name);
                let dec = c
                    .decode_g2(&enc)
                    .unwrap_or_else(|e| panic!("{}: honest G2 encoding rejected: {e}", spec.name));
                assert_eq!(dec, q, "{}: G2 round-trip changed the point", spec.name);
                assert_eq!(c.encode_g2(&dec, mode), enc, "{}", spec.name);
            }
        }
    }
}

#[test]
fn bit_flips_never_pass_as_the_original_point() {
    // A decoder accepting a tampered encoding *as the pushed point* would
    // break canonical-encoding uniqueness. A flip may legitimately decode
    // to a *different* valid point (e.g. the sign bit), but then it must
    // re-encode to exactly the tampered bytes, never to the original.
    let mut rng = SplitMix64(0xB17F_11B5);
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        for mode in [Compression::Compressed, Compression::Uncompressed] {
            let p = random_g1(&c, &mut rng);
            let enc = c.encode_g1(&p, mode);
            for _ in 0..48 {
                let byte = (rng.next() as usize) % enc.len();
                let bit = 1u8 << (rng.next() % 8);
                let mut bad = enc.clone();
                bad[byte] ^= bit;
                match c.decode_g1(&bad) {
                    Err(_) => {}
                    Ok(dec) => {
                        assert_ne!(
                            dec, p,
                            "{}: flipped G1 bytes decoded as original",
                            spec.name
                        );
                        assert_eq!(
                            c.encode_g1(&dec, mode),
                            bad,
                            "{}: accepted G1 bytes are not canonical",
                            spec.name
                        );
                    }
                }
            }
            let q = random_g2(&c, &mut rng);
            let enc = c.encode_g2(&q, mode);
            for _ in 0..24 {
                let byte = (rng.next() as usize) % enc.len();
                let bit = 1u8 << (rng.next() % 8);
                let mut bad = enc.clone();
                bad[byte] ^= bit;
                match c.decode_g2(&bad) {
                    Err(_) => {}
                    Ok(dec) => {
                        assert_ne!(
                            dec, q,
                            "{}: flipped G2 bytes decoded as original",
                            spec.name
                        );
                        assert_eq!(
                            c.encode_g2(&dec, mode),
                            bad,
                            "{}: accepted G2 bytes are not canonical",
                            spec.name
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn truncations_report_length() {
    let mut rng = SplitMix64(0x7214_CA7E);
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        for mode in [Compression::Compressed, Compression::Uncompressed] {
            let enc = c.encode_g1(&random_g1(&c, &mut rng), mode);
            for cut in [0, 1, enc.len() / 2, enc.len() - 1] {
                assert!(
                    matches!(c.decode_g1(&enc[..cut]), Err(DecodeError::Length { .. })),
                    "{}: G1 truncated to {cut} bytes not a length error",
                    spec.name
                );
            }
            let enc = c.encode_g2(&random_g2(&c, &mut rng), mode);
            for cut in [0, 1, enc.len() / 2, enc.len() - 1] {
                assert!(
                    matches!(c.decode_g2(&enc[..cut]), Err(DecodeError::Length { .. })),
                    "{}: G2 truncated to {cut} bytes not a length error",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn invalid_tags_and_infinity_padding_are_typed() {
    let mut rng = SplitMix64(0x7A6F_00D5);
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let mut enc = c.encode_g1(&random_g1(&c, &mut rng), Compression::Compressed);
        for tag in [0x01u8, 0x05, 0x07, 0xFF] {
            enc[0] = tag;
            assert_eq!(
                c.decode_g1(&enc),
                Err(DecodeError::InvalidTag(tag)),
                "{}",
                spec.name
            );
        }
        // Infinity must be all-zero payload: any stray bit is rejected
        // rather than ignored (no malleable encodings of the identity).
        let mut inf = c.encode_g1(&Affine::infinity(c.fp().zero()), Compression::Compressed);
        let pos = 1 + (rng.next() as usize) % (inf.len() - 1);
        inf[pos] = 0x40;
        assert_eq!(
            c.decode_g1(&inf),
            Err(DecodeError::NonCanonicalInfinity),
            "{}",
            spec.name
        );
        let mut inf = c.encode_g2(
            &Affine::infinity(c.tower().fq_zero()),
            Compression::Uncompressed,
        );
        let pos = 1 + (rng.next() as usize) % (inf.len() - 1);
        inf[pos] = 0x01;
        assert_eq!(
            c.decode_g2(&inf),
            Err(DecodeError::NonCanonicalInfinity),
            "{}",
            spec.name
        );
    }
}

#[test]
fn non_canonical_field_limbs_are_rejected() {
    // x = p and x = p + small are valid-length byte strings encoding
    // integers >= p; a lenient decoder would silently reduce them,
    // creating a second encoding of an existing point.
    let mut rng = SplitMix64(0xF1E1_D001);
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        let w = c.fp().byte_len();
        let p_bytes = biguint_bytes_be(c.p(), w);
        let mut enc = c.encode_g1(&random_g1(&c, &mut rng), Compression::Compressed);
        enc[1..1 + w].copy_from_slice(&p_bytes);
        assert_eq!(
            c.decode_g1(&enc),
            Err(DecodeError::NonCanonicalField),
            "{}: x = p accepted",
            spec.name
        );
        // Same in the x-coordinate of an uncompressed G2 encoding (first
        // base-field coefficient of the Fq element).
        let mut enc = c.encode_g2(&random_g2(&c, &mut rng), Compression::Uncompressed);
        enc[1..1 + w].copy_from_slice(&p_bytes);
        assert_eq!(
            c.decode_g2(&enc),
            Err(DecodeError::NonCanonicalField),
            "{}: G2 coefficient = p accepted",
            spec.name
        );
    }
}

#[test]
fn off_curve_points_are_rejected() {
    let mut rng = SplitMix64(0x0FFC_0B7E);
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        // Compressed: walk x forward until x³ + b is a non-square.
        let mut enc = c.encode_g1(&random_g1(&c, &mut rng), Compression::Compressed);
        let w = c.fp().byte_len();
        let mut xi = rng.next() >> 12;
        loop {
            let x = c.fp().from_u64(xi);
            let rhs = &(&(&x * &x) * &x) + c.b();
            if rhs.sqrt().is_none() {
                enc[1..1 + w].copy_from_slice(&biguint_bytes_be(&BigUint::from_u64(xi), w));
                break;
            }
            xi += 1;
        }
        assert_eq!(
            c.decode_g1(&enc),
            Err(DecodeError::NotOnCurve),
            "{}: non-residue x accepted",
            spec.name
        );
        // Uncompressed: keep x, corrupt y's low byte so y² != x³ + b.
        let p = random_g1(&c, &mut rng);
        let enc = c.encode_g1(&p, Compression::Uncompressed);
        let mut bad = enc.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        match c.decode_g1(&bad) {
            Err(DecodeError::NotOnCurve) | Err(DecodeError::NonCanonicalField) => {}
            other => panic!("{}: corrupted y gave {other:?}", spec.name),
        }
    }
}

#[test]
fn wrong_subgroup_points_are_rejected() {
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        // Every built-in G2 has a non-trivial cofactor.
        let q = uncleaned_g2_point(&c, 1);
        assert!(c.g2_on_curve(&q), "{}", spec.name);
        assert!(
            !c.in_g2_subgroup(&q),
            "{}: uncleaned G2 in subgroup",
            spec.name
        );
        for mode in [Compression::Compressed, Compression::Uncompressed] {
            assert_eq!(
                c.decode_g2(&c.encode_g2(&q, mode)),
                Err(DecodeError::NotInSubgroup),
                "{}: wrong-subgroup G2 accepted",
                spec.name
            );
        }
        // G1: BLS curves have cofactor > 1; BN G1 is prime-order, where
        // every curve point is a subgroup point and must be accepted.
        let p = uncleaned_g1_point(&c, 1);
        assert!(c.g1_on_curve(&p), "{}", spec.name);
        for mode in [Compression::Compressed, Compression::Uncompressed] {
            let dec = c.decode_g1(&c.encode_g1(&p, mode));
            if c.g1_cofactor().is_one() {
                assert_eq!(dec, Ok(p.clone()), "{}: h=1 G1 point rejected", spec.name);
            } else {
                assert_eq!(
                    dec,
                    Err(DecodeError::NotInSubgroup),
                    "{}: wrong-subgroup G1 accepted",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn fast_subgroup_checks_match_the_naive_oracle_on_all_seven() {
    let mut rng = SplitMix64(0x5AB6_0F0F);
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        // Members are accepted by both.
        let p = random_g1(&c, &mut rng);
        let q = random_g2(&c, &mut rng);
        for (fast, naive, what) in [
            (
                c.in_g1_subgroup(&p),
                c.in_g1_subgroup_naive(&p),
                "member G1",
            ),
            (
                c.in_g2_subgroup(&q),
                c.in_g2_subgroup_naive(&q),
                "member G2",
            ),
        ] {
            assert!(fast && naive, "{}: {what} rejected", spec.name);
        }
        // Uncleaned curve points: fast and naive must agree bit-for-bit.
        let start = rng.next() >> 48;
        let p = uncleaned_g1_point(&c, start);
        assert_eq!(
            c.in_g1_subgroup(&p),
            c.in_g1_subgroup_naive(&p),
            "{}: G1 fast/naive disagree at x start {start}",
            spec.name
        );
        let q = uncleaned_g2_point(&c, start);
        assert_eq!(
            c.in_g2_subgroup(&q),
            c.in_g2_subgroup_naive(&q),
            "{}: G2 fast/naive disagree at x start {start}",
            spec.name
        );
    }
}
