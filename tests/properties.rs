//! Property-based tests (proptest) on the core substrates: big-integer
//! arithmetic against a u128 oracle, NAF reconstruction, field axioms,
//! compiler-pass semantic preservation on random programs, schedule
//! legality, and encoding round-trips.

use finesse_compiler::{allocate, optimize, schedule, ScheduleOptions, SchedStrategy};
use finesse_curves::Curve;
use finesse_ff::{BigUint, FpCtx};
use finesse_hw::HwModel;
use finesse_ir::{FpOp, FpProgram};
use finesse_isa::{EncodingSpec, MachineOp, Opcode, Reg, WideInst};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn small_ctx() -> Arc<FpCtx> {
    FpCtx::new(BigUint::from_u64(1_000_000_007)).unwrap()
}

proptest! {
    #[test]
    fn biguint_add_mul_match_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (x, y) = (BigUint::from_u64(a), BigUint::from_u64(b));
        prop_assert_eq!(&x + &y, BigUint::from_u128(a as u128 + b as u128));
        prop_assert_eq!(&x * &y, BigUint::from_u128(a as u128 * b as u128));
    }

    #[test]
    fn biguint_divrem_reconstructs(a in any::<u128>(), d in 1u64..u64::MAX) {
        let n = BigUint::from_u128(a);
        let dv = BigUint::from_u64(d);
        let (q, r) = n.divrem(&dv);
        prop_assert!(r < dv);
        prop_assert_eq!(&(&q * &dv) + &r, n);
    }

    #[test]
    fn naf_reconstructs_and_is_sparse(v in any::<u64>()) {
        let n = BigUint::from_u64(v);
        let naf = n.naf();
        let mut acc: i128 = 0;
        for (i, &d) in naf.iter().enumerate() {
            acc += (d as i128) << i;
        }
        prop_assert_eq!(acc, v as i128);
        for w in naf.windows(2) {
            prop_assert!(w[0] == 0 || w[1] == 0, "adjacent non-zero NAF digits");
        }
    }

    #[test]
    fn isqrt_is_floor_sqrt(v in any::<u128>()) {
        let n = BigUint::from_u128(v);
        let r = n.isqrt();
        prop_assert!(&r * &r <= n);
        let r1 = &r + &BigUint::one();
        prop_assert!(&r1 * &r1 > n);
    }

    #[test]
    fn fp_field_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let ctx = small_ctx();
        let (x, y, z) = (ctx.from_u64(a), ctx.from_u64(b), ctx.from_u64(c));
        prop_assert_eq!(&x + &y, &y + &x);
        prop_assert_eq!(&x * &y, &y * &x);
        prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
        if !x.is_zero() {
            prop_assert!((&x * &x.invert()).is_one());
        }
    }

    #[test]
    fn encoding_roundtrip_random_ops(
        opv in 0u8..11,
        d in 0u16..512,
        s1 in 0u16..512,
        s2 in 0u16..512,
    ) {
        let spec = EncodingSpec::new(1, 1);
        let op = MachineOp {
            op: Opcode::from_u8(opv).unwrap(),
            dst: Reg { bank: 0, index: d },
            src1: Reg { bank: 0, index: s1 },
            src2: Reg { bank: 0, index: s2 },
        };
        let words = spec.encode_op(&op).unwrap();
        prop_assert_eq!(spec.decode_op(&words).unwrap(), op);
    }
}

/// Strategy: random straight-line FpPrograms with two inputs.
fn random_program(max_len: usize) -> impl Strategy<Value = FpProgram> {
    proptest::collection::vec((0u8..8, any::<u32>(), any::<u32>(), 0u64..1000), 1..max_len).prop_map(
        |ops| {
            let mut p = FpProgram::default();
            p.inputs = vec!["a".into(), "b".into()];
            let a = p.push(FpOp::Input(0));
            let _b = p.push(FpOp::Input(1));
            let _ = a;
            for (kind, x, y, cval) in ops {
                let n = p.insts.len() as u32;
                let pick = |v: u32| v % n;
                let op = match kind {
                    0 => FpOp::Add(pick(x), pick(y)),
                    1 => FpOp::Sub(pick(x), pick(y)),
                    2 => FpOp::Mul(pick(x), pick(y)),
                    3 => FpOp::Sqr(pick(x)),
                    4 => FpOp::Neg(pick(x)),
                    5 => FpOp::Dbl(pick(x)),
                    6 => FpOp::Tpl(pick(x)),
                    _ => {
                        let idx = p.constants.len() as u32;
                        p.constants.push(BigUint::from_u64(cval));
                        FpOp::Const(idx)
                    }
                };
                p.push(op);
            }
            let last = (p.insts.len() - 1) as u32;
            p.outputs.push(last);
            p
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// IROpt must preserve program semantics on arbitrary programs.
    #[test]
    fn optimizer_preserves_semantics(prog in random_program(60), a in any::<u64>(), b in any::<u64>()) {
        let ctx = small_ctx();
        let inputs = [ctx.from_u64(a), ctx.from_u64(b)];
        let before = prog.evaluate(&ctx, &inputs);
        let (opt, stats) = optimize(&prog, &ctx);
        prop_assert!(opt.validate().is_ok());
        let after = opt.evaluate(&ctx, &inputs);
        prop_assert_eq!(before, after);
        prop_assert!(stats.after <= stats.before);
    }

    /// Schedules must respect dependences and contain every op exactly once.
    #[test]
    fn schedules_are_legal(prog in random_program(60), affinity in 0.0f64..0.3) {
        for hw in [HwModel::paper_default(), HwModel::vliw(2, 8, 2)] {
            for strategy in [SchedStrategy::ProgramOrder, SchedStrategy::AffinityList] {
                let s = schedule(&prog, &hw, &ScheduleOptions { strategy, affinity_beta: affinity });
                // each schedulable op exactly once
                let mut seen = HashMap::new();
                for (gi, g) in s.groups.iter().enumerate() {
                    prop_assert!(g.len() <= hw.issue_width as usize);
                    for &id in g {
                        prop_assert!(seen.insert(id, gi).is_none(), "duplicate op");
                    }
                }
                for (i, op) in prog.insts.iter().enumerate() {
                    if matches!(op, FpOp::Const(_)) {
                        prop_assert!(!seen.contains_key(&(i as u32)));
                        continue;
                    }
                    prop_assert!(seen.contains_key(&(i as u32)), "missing op {i}");
                    for o in op.operands() {
                        if !matches!(prog.insts[o as usize], FpOp::Const(_)) {
                            prop_assert!(seen[&o] < seen[&(i as u32)], "dependence violated");
                        }
                    }
                }
                // register allocation succeeds and respects quotas
                let alloc = allocate(&prog, &s, hw.reg_quota).unwrap();
                for (bank, &peak) in alloc.peak_per_bank.iter().enumerate() {
                    prop_assert!(peak <= hw.reg_quota as u32, "bank {bank} over quota");
                }
            }
        }
    }

    /// Wide-instruction encode/decode round-trips for random streams.
    #[test]
    fn wide_stream_roundtrip(ops in proptest::collection::vec((0u8..11, 0u16..128, 0u16..128, 0u16..128), 1..20)) {
        let spec = EncodingSpec::new(4, 3);
        let insts: Vec<WideInst> = ops
            .chunks(3)
            .map(|chunk| WideInst {
                slots: chunk
                    .iter()
                    .map(|&(o, d, s1, s2)| MachineOp {
                        op: Opcode::from_u8(o).unwrap(),
                        dst: Reg { bank: (d % 4) as u8, index: d % 128 },
                        src1: Reg { bank: (s1 % 4) as u8, index: s1 % 128 },
                        src2: Reg { bank: (s2 % 4) as u8, index: s2 % 128 },
                    })
                    .collect(),
            })
            .collect();
        let words = spec.encode(&insts).unwrap();
        let decoded = spec.decode(&words).unwrap();
        for (orig, dec) in insts.iter().zip(&decoded) {
            for (i, slot) in orig.slots.iter().enumerate() {
                prop_assert_eq!(&dec.slots[i], slot);
            }
        }
    }
}

/// Tower field axioms on a real pairing tower, randomized.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fq_and_fpk_axioms_randomized(seed1 in any::<u64>(), seed2 in any::<u64>()) {
        let curve = Curve::by_name("BLS12-381");
        let t = curve.tower();
        let a = t.fq_sample(seed1);
        let b = t.fq_sample(seed2);
        prop_assert_eq!(t.fq_mul(&a, &b), t.fq_mul(&b, &a));
        prop_assert_eq!(t.fq_sqr(&a), t.fq_mul(&a, &a));
        if !t.fq_is_zero(&a) {
            prop_assert!(t.fq_is_one(&t.fq_mul(&a, &t.fq_inv(&a))));
        }
        let x = t.fpk_sample(seed1);
        let y = t.fpk_sample(seed2);
        prop_assert_eq!(t.fpk_mul(&x, &y), t.fpk_mul(&y, &x));
        prop_assert_eq!(t.fpk_sqr(&x), t.fpk_mul(&x, &x));
    }
}
