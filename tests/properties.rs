//! Property-based tests on the core substrates: big-integer arithmetic
//! against a u128 oracle, NAF reconstruction, field axioms, compiler-pass
//! semantic preservation on random programs, schedule legality, and
//! encoding round-trips.
//!
//! The build environment is offline, so instead of proptest these drive
//! each property from a deterministic splitmix64 generator — same checks,
//! reproducible cases.

use finesse_compiler::{allocate, optimize, schedule, SchedStrategy, ScheduleOptions};
use finesse_curves::Curve;
use finesse_ff::{BigUint, FpCtx};
use finesse_hw::HwModel;
use finesse_ir::{FpOp, FpProgram};
use finesse_isa::{EncodingSpec, MachineOp, Opcode, Reg, WideInst};
use std::collections::HashMap;
use std::sync::Arc;

/// Deterministic splitmix64 stream; every test derives its cases from this.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_u128(&mut self) -> u128 {
        (self.next_u64() as u128) << 64 | self.next_u64() as u128
    }

    /// Uniform-enough value in `[0, bound)` for test-case generation.
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const CASES: usize = 64;

fn small_ctx() -> Arc<FpCtx> {
    FpCtx::new(BigUint::from_u64(1_000_000_007)).unwrap()
}

#[test]
fn biguint_add_mul_match_u128() {
    let mut rng = Rng::new(1);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let (x, y) = (BigUint::from_u64(a), BigUint::from_u64(b));
        assert_eq!(&x + &y, BigUint::from_u128(a as u128 + b as u128));
        assert_eq!(&x * &y, BigUint::from_u128(a as u128 * b as u128));
    }
}

#[test]
fn biguint_divrem_reconstructs() {
    let mut rng = Rng::new(2);
    for _ in 0..CASES {
        let a = rng.next_u128();
        let d = 1 + rng.below(u64::MAX - 1);
        let n = BigUint::from_u128(a);
        let dv = BigUint::from_u64(d);
        let (q, r) = n.divrem(&dv);
        assert!(r < dv);
        assert_eq!(&(&q * &dv) + &r, n);
    }
}

#[test]
fn naf_reconstructs_and_is_sparse() {
    let mut rng = Rng::new(3);
    for _ in 0..CASES {
        let v = rng.next_u64();
        let n = BigUint::from_u64(v);
        let naf = n.naf();
        let mut acc: i128 = 0;
        for (i, &d) in naf.iter().enumerate() {
            acc += (d as i128) << i;
        }
        assert_eq!(acc, v as i128);
        for w in naf.windows(2) {
            assert!(w[0] == 0 || w[1] == 0, "adjacent non-zero NAF digits");
        }
    }
}

#[test]
fn isqrt_is_floor_sqrt() {
    let mut rng = Rng::new(4);
    for _ in 0..CASES {
        let v = rng.next_u128();
        let n = BigUint::from_u128(v);
        let r = n.isqrt();
        assert!(&r * &r <= n);
        let r1 = &r + &BigUint::one();
        assert!(&r1 * &r1 > n);
    }
}

#[test]
fn fp_field_axioms() {
    let ctx = small_ctx();
    let mut rng = Rng::new(5);
    for _ in 0..CASES {
        let (a, b, c) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
        let (x, y, z) = (ctx.from_u64(a), ctx.from_u64(b), ctx.from_u64(c));
        assert_eq!(&x + &y, &y + &x);
        assert_eq!(&x * &y, &y * &x);
        assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
        if !x.is_zero() {
            assert!((&x * &x.invert()).is_one());
        }
    }
}

#[test]
fn encoding_roundtrip_random_ops() {
    let mut rng = Rng::new(6);
    for _ in 0..CASES {
        let spec = EncodingSpec::new(1, 1);
        let op = MachineOp {
            op: Opcode::from_u8(rng.below(11) as u8).unwrap(),
            dst: Reg {
                bank: 0,
                index: rng.below(512) as u16,
            },
            src1: Reg {
                bank: 0,
                index: rng.below(512) as u16,
            },
            src2: Reg {
                bank: 0,
                index: rng.below(512) as u16,
            },
        };
        let words = spec.encode_op(&op).unwrap();
        assert_eq!(spec.decode_op(&words).unwrap(), op);
    }
}

/// Random straight-line FpProgram with two inputs.
fn random_program(rng: &mut Rng, max_len: usize) -> FpProgram {
    let len = 1 + rng.below(max_len as u64 - 1) as usize;
    let mut p = FpProgram {
        inputs: vec!["a".into(), "b".into()],
        ..Default::default()
    };
    p.push(FpOp::Input(0));
    p.push(FpOp::Input(1));
    for _ in 0..len {
        let kind = rng.below(8) as u8;
        let (x, y) = (rng.next_u64() as u32, rng.next_u64() as u32);
        let n = p.insts.len() as u32;
        let pick = |v: u32| v % n;
        let op = match kind {
            0 => FpOp::Add(pick(x), pick(y)),
            1 => FpOp::Sub(pick(x), pick(y)),
            2 => FpOp::Mul(pick(x), pick(y)),
            3 => FpOp::Sqr(pick(x)),
            4 => FpOp::Neg(pick(x)),
            5 => FpOp::Dbl(pick(x)),
            6 => FpOp::Tpl(pick(x)),
            _ => {
                let idx = p.constants.len() as u32;
                p.constants.push(BigUint::from_u64(rng.below(1000)));
                FpOp::Const(idx)
            }
        };
        p.push(op);
    }
    let last = (p.insts.len() - 1) as u32;
    p.outputs.push(last);
    p
}

/// IROpt must preserve program semantics on arbitrary programs.
#[test]
fn optimizer_preserves_semantics() {
    let ctx = small_ctx();
    let mut rng = Rng::new(7);
    for _ in 0..CASES {
        let prog = random_program(&mut rng, 60);
        let inputs = [ctx.from_u64(rng.next_u64()), ctx.from_u64(rng.next_u64())];
        let before = prog.evaluate(&ctx, &inputs);
        let (opt, stats) = optimize(&prog, &ctx);
        assert!(opt.validate().is_ok());
        let after = opt.evaluate(&ctx, &inputs);
        assert_eq!(before, after);
        assert!(stats.after <= stats.before);
    }
}

/// Schedules must respect dependences and contain every op exactly once.
#[test]
fn schedules_are_legal() {
    let mut rng = Rng::new(8);
    for _ in 0..CASES {
        let prog = random_program(&mut rng, 60);
        let affinity = rng.next_f64() * 0.3;
        for hw in [HwModel::paper_default(), HwModel::vliw(2, 8, 2)] {
            for strategy in [SchedStrategy::ProgramOrder, SchedStrategy::AffinityList] {
                let s = schedule(
                    &prog,
                    &hw,
                    &ScheduleOptions {
                        strategy,
                        affinity_beta: affinity,
                    },
                );
                // each schedulable op exactly once
                let mut seen = HashMap::new();
                for (gi, g) in s.groups.iter().enumerate() {
                    assert!(g.len() <= hw.issue_width as usize);
                    for &id in g {
                        assert!(seen.insert(id, gi).is_none(), "duplicate op");
                    }
                }
                for (i, op) in prog.insts.iter().enumerate() {
                    if matches!(op, FpOp::Const(_)) {
                        assert!(!seen.contains_key(&(i as u32)));
                        continue;
                    }
                    assert!(seen.contains_key(&(i as u32)), "missing op {i}");
                    for o in op.operands() {
                        if !matches!(prog.insts[o as usize], FpOp::Const(_)) {
                            assert!(seen[&o] < seen[&(i as u32)], "dependence violated");
                        }
                    }
                }
                // register allocation succeeds and respects quotas
                let alloc = allocate(&prog, &s, hw.reg_quota).unwrap();
                for (bank, &peak) in alloc.peak_per_bank.iter().enumerate() {
                    assert!(peak <= hw.reg_quota as u32, "bank {bank} over quota");
                }
            }
        }
    }
}

/// Wide-instruction encode/decode round-trips for random streams.
#[test]
fn wide_stream_roundtrip() {
    let mut rng = Rng::new(9);
    for _ in 0..CASES {
        let spec = EncodingSpec::new(4, 3);
        let n_ops = 1 + rng.below(19) as usize;
        let ops: Vec<(u8, u16, u16, u16)> = (0..n_ops)
            .map(|_| {
                (
                    rng.below(11) as u8,
                    rng.below(128) as u16,
                    rng.below(128) as u16,
                    rng.below(128) as u16,
                )
            })
            .collect();
        let insts: Vec<WideInst> = ops
            .chunks(3)
            .map(|chunk| WideInst {
                slots: chunk
                    .iter()
                    .map(|&(o, d, s1, s2)| MachineOp {
                        op: Opcode::from_u8(o).unwrap(),
                        dst: Reg {
                            bank: (d % 4) as u8,
                            index: d % 128,
                        },
                        src1: Reg {
                            bank: (s1 % 4) as u8,
                            index: s1 % 128,
                        },
                        src2: Reg {
                            bank: (s2 % 4) as u8,
                            index: s2 % 128,
                        },
                    })
                    .collect(),
            })
            .collect();
        let words = spec.encode(&insts).unwrap();
        let decoded = spec.decode(&words).unwrap();
        for (orig, dec) in insts.iter().zip(&decoded) {
            for (i, slot) in orig.slots.iter().enumerate() {
                assert_eq!(&dec.slots[i], slot);
            }
        }
    }
}

/// Tower field axioms on a real pairing tower, randomized.
#[test]
fn fq_and_fpk_axioms_randomized() {
    let curve = Curve::by_name("BLS12-381");
    let t = curve.tower();
    let mut rng = Rng::new(10);
    for _ in 0..12 {
        let (seed1, seed2) = (rng.next_u64(), rng.next_u64());
        let a = t.fq_sample(seed1);
        let b = t.fq_sample(seed2);
        assert_eq!(t.fq_mul(&a, &b), t.fq_mul(&b, &a));
        assert_eq!(t.fq_sqr(&a), t.fq_mul(&a, &a));
        if !t.fq_is_zero(&a) {
            assert!(t.fq_is_one(&t.fq_mul(&a, &t.fq_inv(&a))));
        }
        let x = t.fpk_sample(seed1);
        let y = t.fpk_sample(seed2);
        assert_eq!(t.fpk_mul(&x, &y), t.fpk_mul(&y, &x));
        assert_eq!(t.fpk_sqr(&x), t.fpk_mul(&x, &x));
    }
}
