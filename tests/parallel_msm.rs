//! Determinism tests for the thread-parallel backend: the sharded
//! Pippenger MSM and the parallel Miller loops must produce results
//! bit-identical to the serial path at every thread count, across all
//! seven Table 2 curves and the size ladder that crosses both the
//! Pippenger and the sharding thresholds.
//!
//! Thread counts are pinned with `finesse_parallel::with_threads`, the
//! scoped override of the `FINESSE_THREADS` environment knob — CI
//! additionally runs this whole suite once with `FINESSE_THREADS=1` and
//! once unconstrained, covering the env-var path end to end.

use finesse_curves::{all_specs, batch_to_affine, jac_add_affine, Affine, Curve, FpOps, FqOps};
use finesse_ff::BigUint;
use finesse_parallel::with_threads;
use std::sync::Arc;

/// Deterministic scalar stream (splitmix64-filled limbs).
fn scalar_stream(seed: u64, width_bits: usize) -> impl FnMut() -> BigUint {
    let mut state = seed;
    move || {
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        BigUint::from_limbs((0..width_bits.div_ceil(64)).map(|_| next()).collect())
    }
}

/// `n` distinct G1 points `G, 2G, …, nG` via one Jacobian add chain and a
/// single shared batch inversion — fast enough to build 4096 points in a
/// debug-profile test run.
fn g1_points(c: &Arc<Curve>, n: usize) -> Vec<Affine<finesse_ff::Fp>> {
    let ops = FpOps(Arc::clone(c.fp()));
    let g = c.g1_generator();
    let mut jacs = Vec::with_capacity(n);
    let mut acc = finesse_curves::point::to_jacobian(&ops, g);
    for _ in 0..n {
        jacs.push(acc.clone());
        acc = jac_add_affine(&ops, &acc, g);
    }
    batch_to_affine(&ops, &jacs)
}

/// Scalars for a batch of `n` terms: edge cases up front (zero, one,
/// r−1, r, r+1 — the reduction and carry boundaries), one full-width
/// scalar, then a 64-bit stream so the debug-profile runtime of the big
/// sizes stays bounded (small scalars shrink the window count, not the
/// sharding behaviour — the per-point bucket traffic is identical).
fn batch_scalars(c: &Arc<Curve>, n: usize, seed: u64) -> Vec<BigUint> {
    let r = c.r();
    let one = BigUint::one();
    let mut edges = vec![
        BigUint::zero(),
        one.clone(),
        r.checked_sub(&one).unwrap(),
        r.clone(),
        &r.clone() + &one,
    ];
    edges.truncate(n);
    let mut full = scalar_stream(seed ^ 0xF0F0, r.bits() + 64);
    let mut small = scalar_stream(seed, 64);
    let mut out = edges;
    if out.len() < n {
        out.push(full());
    }
    while out.len() < n {
        out.push(small());
    }
    out
}

#[test]
fn g1_msm_is_bit_identical_at_every_thread_count() {
    // 257 GLV-splits to 514 bucketed terms — past the sharding
    // threshold; 1024 and 4096 shard into several chunks per thread.
    for spec in all_specs() {
        let c = Curve::by_name(spec.name);
        for n in [0usize, 1, 2, 33, 257, 1024, 4096] {
            let points = g1_points(&c, n);
            let scalars = batch_scalars(&c, n, 0xA11CE ^ n as u64);
            let serial = with_threads(1, || c.g1_msm(&points, &scalars).unwrap());
            if n <= 33 {
                // Naive oracle on the small sizes (independent muls +
                // adds, already verified against double-and-add).
                let mut want = Affine::infinity(c.fp().zero());
                for (p, k) in points.iter().zip(&scalars) {
                    want = c.g1_add(&want, &c.g1_mul(p, k));
                }
                assert_eq!(serial, want, "{}: n = {n} naive oracle", spec.name);
            }
            for threads in [2usize, 4] {
                let parallel = with_threads(threads, || c.g1_msm(&points, &scalars).unwrap());
                assert_eq!(
                    serial, parallel,
                    "{}: n = {n}, threads = {threads}",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn g2_msm_is_bit_identical_at_every_thread_count() {
    // GLS splits every G2 scalar into ≥4 sub-scalars, so 300 points
    // cross the sharding threshold; G2 arithmetic is several times the
    // G1 cost, so two representative curves keep the debug runtime sane.
    for name in ["BN254N", "BLS24-509"] {
        let c = Curve::by_name(name);
        let ops = FqOps(c.tower());
        let q = c.g2_generator();
        for n in [5usize, 300] {
            let mut jacs = Vec::with_capacity(n);
            let mut acc = finesse_curves::point::to_jacobian(&ops, q);
            for _ in 0..n {
                jacs.push(acc.clone());
                acc = jac_add_affine(&ops, &acc, q);
            }
            let points = batch_to_affine(&ops, &jacs);
            let scalars = batch_scalars(&c, n, 0xB0B ^ n as u64);
            let serial = with_threads(1, || c.g2_msm(&points, &scalars).unwrap());
            for threads in [2usize, 4] {
                let parallel = with_threads(threads, || c.g2_msm(&points, &scalars).unwrap());
                assert_eq!(serial, parallel, "{name}: n = {n}, threads = {threads}");
            }
        }
    }
}

#[test]
fn multi_pair_parallel_matches_serial_and_pair_product() {
    use finesse_pairing::PairingEngine;
    for name in ["BN254N", "BLS12-381"] {
        let c = Curve::by_name(name);
        let engine = PairingEngine::new(c.clone());
        let g1 = c.g1_generator();
        let g2 = c.g2_generator();
        let mut pairs = Vec::new();
        for i in 1u64..=4 {
            pairs.push((
                c.g1_mul(g1, &BigUint::from_u64(2 * i + 1)),
                c.g2_mul(g2, &BigUint::from_u64(3 * i)),
            ));
        }
        // Degenerate entries must be skipped identically on every path.
        pairs.push((Affine::infinity(c.fp().zero()), g2.clone()));
        let serial = with_threads(1, || engine.multi_pair(&pairs));
        for threads in [2usize, 4] {
            let parallel = with_threads(threads, || engine.multi_pair(&pairs));
            assert_eq!(serial, parallel, "{name}: threads = {threads}");
        }
        // Π e(Pᵢ, Qᵢ) computed with per-pair final exponentiations must
        // agree as a GT value: (ab)^e = a^e·b^e.
        let tower = c.tower();
        let product = pairs
            .iter()
            .map(|(p, q)| engine.pair(p, q))
            .fold(tower.fpk_one(), |acc, e| tower.fpk_mul(&acc, &e));
        assert_eq!(serial, product, "{name}: shared vs per-pair final exp");
    }
}

#[test]
fn pinned_thread_counts_are_deterministic() {
    // Same inputs, same thread budget → byte-identical output, run to
    // run; and the serial pin agrees with an odd thread count that
    // forces uneven chunking.
    let c = Curve::by_name("BN254N");
    let points = g1_points(&c, 700);
    let scalars = batch_scalars(&c, 700, 0xD5);
    let first = with_threads(3, || c.g1_msm(&points, &scalars).unwrap());
    let second = with_threads(3, || c.g1_msm(&points, &scalars).unwrap());
    assert_eq!(first, second, "same budget, same bytes");
    let serial = with_threads(1, || c.g1_msm(&points, &scalars).unwrap());
    assert_eq!(serial, first, "uneven chunking still folds identically");
}
