//! # finesse-poly
//!
//! Polynomial commitments (KZG) over the Finesse pairing stack.
//!
//! The crate is the serving layer's commitment surface: a trusted-setup
//! [`Srs`] (powers of tau, with a strict canonical wire format), dense
//! [`Polynomial`] arithmetic over the scalar field, and the [`Kzg`]
//! scheme — commit, single and batched openings, and verification that
//! pushes fixed-G2-form checks onto the pairing layer's
//! [`PairingAccumulator`](finesse_pairing::PairingAccumulator), so n
//! openings settle with two cached Miller loops.
//!
//! Errors are defined in `finesse-core` (the workspace unification
//! point) and re-exported here as [`PolyError`] and [`SrsError`].

pub mod kzg;
pub mod polynomial;
pub mod srs;

pub use finesse_core::{PolyError, SrsError};
pub use kzg::{BatchOpening, Claim, Kzg, Opening};
pub use polynomial::Polynomial;
pub use srs::Srs;
