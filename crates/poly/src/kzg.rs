//! KZG commitments, openings, and accumulator-backed verification.
//!
//! The commitment is the classic one: `C = [p(τ)]G1` under an [`Srs`].
//! Every verification equation this module emits is in *fixed-G2 form* —
//! the G2 sides are always the generator and `[τ]G2`, never an
//! opening-dependent point — so checks are pushed onto a
//! [`PairingAccumulator`] and a batch of n openings settles with two
//! cached Miller loops and one final exponentiation, regardless of n.
//!
//! Single openings use the textbook witness `W = [(p(τ)−y)/(τ−z)]G1`
//! and the rearranged check `e(C − [y]G1 + [z]W, G2) =? e(W, [τ]G2)`.
//!
//! Batched openings ([`Kzg::open_batch`]) prove many evaluations of
//! *one* polynomial with a two-point proof (the BDFG-style reduction):
//! with `r(X)` interpolating the claimed `(zᵢ, yᵢ)` and `Z(X)` their
//! vanishing polynomial, the prover commits `W = [h(τ)]G1` for the
//! exact quotient `h = (f − r)/Z`, draws a Fiat–Shamir point z* from a
//! [`Transcript`] over the whole claim, and commits
//! `W′ = [L(τ)/(τ − z*)]G1` for `L(X) = f(X) − r(z*) − Z(z*)·h(X)`
//! (which vanishes at z* by construction). The verifier re-derives z*,
//! forms `F = C − [r(z*)]G1 − [Z(z*)]W` from scalars it computes
//! itself, and checks `e(F + [z*]W′, G2) =? e(W′, [τ]G2)` — one pairing
//! check for the whole point set, in the same fixed-G2 form.

use crate::polynomial::Polynomial;
use crate::srs::Srs;
use finesse_core::PolyError;
use finesse_curves::{affine_neg, Affine, FieldOps, FpOps};
use finesse_ff::scalar::{mod_mul, mod_sub};
use finesse_ff::{BigUint, Fp};
use finesse_pairing::{PairingAccumulator, PairingEngine, SplitMix64Transcript, Transcript};
use std::sync::Arc;

/// Domain label for the batched-opening Fiat–Shamir challenge z*.
const OPEN_LABEL: &[u8] = b"finesse-kzg-batch-open-v1";
/// Domain label for the settling accumulator's randomizers.
const VERIFY_LABEL: &[u8] = b"finesse-kzg-verify-v1";

/// A single-point opening: `p(z) = y`, witnessed by
/// `W = [(p(τ) − y)/(τ − z)]G1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Opening {
    /// The evaluation point, reduced mod r.
    pub z: BigUint,
    /// The claimed evaluation `p(z)`.
    pub y: BigUint,
    /// The quotient commitment.
    pub witness: Affine<Fp>,
}

/// A batched opening: one proof that a single committed polynomial
/// takes the claimed values at every listed point.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOpening {
    /// The claimed `(zᵢ, yᵢ)` evaluations, reduced mod r.
    pub points: Vec<(BigUint, BigUint)>,
    /// `W = [h(τ)]G1` for the aggregate quotient `h = (f − r)/Z`.
    pub quotient: Affine<Fp>,
    /// `W′ = [L(τ)/(τ − z*)]G1` for the Fiat–Shamir point z*.
    pub shift: Affine<Fp>,
}

/// One verifiable claim against a commitment — the unit
/// [`Kzg::verify_batch`] accumulates. Each claim costs exactly one
/// pushed pairing check, so claim indices equal check indices in the
/// isolating verifier's report.
#[derive(Debug, Clone, PartialEq)]
pub enum Claim {
    /// `p(z) = y` for the polynomial committed in `commitment`.
    Single {
        /// The polynomial commitment `[p(τ)]G1`.
        commitment: Affine<Fp>,
        /// The opening proof.
        opening: Opening,
    },
    /// `p(zᵢ) = yᵢ` for every point of a batched opening.
    Batch {
        /// The polynomial commitment `[p(τ)]G1`.
        commitment: Affine<Fp>,
        /// The two-point batched proof.
        opening: BatchOpening,
    },
}

/// The KZG scheme over one engine and one SRS.
///
/// ```no_run
/// use finesse_curves::Curve;
/// use finesse_ff::BigUint;
/// use finesse_pairing::PairingEngine;
/// use finesse_poly::{Kzg, Polynomial, Srs};
///
/// let curve = Curve::by_name("BN254N");
/// let engine = PairingEngine::new(curve.clone());
/// let srs = Srs::generate(&curve, 255, b"demo");
/// let kzg = Kzg::new(&engine, &srs).unwrap();
///
/// let p = Polynomial::new(vec![BigUint::from_u64(7)], curve.r());
/// let c = kzg.commit(&p).unwrap();
/// let opening = kzg.open(&p, &BigUint::from_u64(3)).unwrap();
/// kzg.verify(&c, &opening).unwrap();
/// ```
pub struct Kzg<'a> {
    engine: &'a PairingEngine,
    srs: &'a Srs,
}

impl<'a> Kzg<'a> {
    /// Binds an engine and an SRS; they must be built for the same
    /// curve.
    ///
    /// # Errors
    ///
    /// [`PolyError::CurveMismatch`] when the engine and SRS disagree on
    /// the curve.
    pub fn new(engine: &'a PairingEngine, srs: &'a Srs) -> Result<Self, PolyError> {
        if engine.curve().name() != srs.curve().name() {
            return Err(PolyError::CurveMismatch {
                engine: engine.curve().name().to_string(),
                srs: srs.curve().name().to_string(),
            });
        }
        Ok(Kzg { engine, srs })
    }

    /// The SRS this scheme commits under.
    pub fn srs(&self) -> &Srs {
        self.srs
    }

    /// Commits: `C = [p(τ)]G1`, one MSM over the SRS powers. The zero
    /// polynomial commits to the identity.
    ///
    /// # Errors
    ///
    /// [`PolyError::DegreeTooLarge`] when the polynomial has more
    /// coefficients than the SRS has powers.
    pub fn commit(&self, poly: &Polynomial) -> Result<Affine<Fp>, PolyError> {
        let coeffs = poly.coeffs();
        let powers = self.srs.powers_g1();
        if coeffs.len() > powers.len() {
            return Err(PolyError::DegreeTooLarge {
                coefficients: coeffs.len(),
                capacity: powers.len(),
            });
        }
        if coeffs.is_empty() {
            let ops = FpOps(Arc::clone(self.srs.curve().fp()));
            return Ok(Affine::infinity(ops.zero()));
        }
        Ok(self.srs.curve().g1_msm(&powers[..coeffs.len()], coeffs)?)
    }

    /// Opens `poly` at `z`: evaluates, divides off the root, and
    /// commits the quotient.
    ///
    /// # Errors
    ///
    /// [`PolyError::DegreeTooLarge`] when `poly` exceeds the SRS.
    pub fn open(&self, poly: &Polynomial, z: &BigUint) -> Result<Opening, PolyError> {
        let r = self.srs.curve().r();
        let z = z.rem(r);
        let y = poly.eval(&z, r);
        let (q, rem) = poly.sub_constant(&y, r).divide_by_linear(&z, r);
        debug_assert!(rem.is_zero(), "p − p(z) always divides by X − z");
        let witness = self.commit(&q)?;
        Ok(Opening { z, y, witness })
    }

    /// Opens `poly` at every point of `zs` with one two-point proof
    /// (see the module docs for the reduction). `commitment` is the
    /// caller's existing commitment to `poly` — it is bound into the
    /// Fiat–Shamir challenge, not recomputed.
    ///
    /// # Errors
    ///
    /// [`PolyError::NoPoints`] for an empty point set,
    /// [`PolyError::DuplicatePoint`] when two points coincide mod r,
    /// and [`PolyError::DegreeTooLarge`] when `poly` exceeds the SRS.
    pub fn open_batch(
        &self,
        poly: &Polynomial,
        commitment: &Affine<Fp>,
        zs: &[BigUint],
    ) -> Result<BatchOpening, PolyError> {
        let curve = self.srs.curve();
        let r = curve.r();
        if zs.is_empty() {
            return Err(PolyError::NoPoints);
        }
        let points: Vec<(BigUint, BigUint)> = zs
            .iter()
            .map(|z| {
                let z = z.rem(r);
                let y = poly.eval(&z, r);
                (z, y)
            })
            .collect();
        // Interpolation rejects coincident points (vanishing
        // denominators) — the same duplicate check the verifier runs.
        let r_poly = Polynomial::interpolate(&points, r)?;

        // h = (f − r)/Z, divided off one root at a time (each division
        // is exact: f − r vanishes on all of S).
        let mut h = poly.sub_scaled(&r_poly, &BigUint::one(), r);
        for (z, _) in &points {
            let (q, rem) = h.divide_by_linear(z, r);
            debug_assert!(rem.is_zero(), "f − r vanishes on the point set");
            h = q;
        }
        let quotient = self.commit(&h)?;

        let z_star = draw_z_star(curve.name(), r, commitment, &points, &quotient);
        let r_at = r_poly.eval(&z_star, r);
        let z_at = vanishing_at(&points, &z_star, r);
        // L = f − r(z*) − Z(z*)·h vanishes at z*; its shifted quotient
        // is the second proof point.
        let l = poly.sub_constant(&r_at, r).sub_scaled(&h, &z_at, r);
        let (l_q, rem) = l.divide_by_linear(&z_star, r);
        debug_assert!(rem.is_zero(), "L(z*) = 0 by construction");
        let shift = self.commit(&l_q)?;

        Ok(BatchOpening {
            points,
            quotient,
            shift,
        })
    }

    /// Pushes a claim's single pairing check onto an accumulator the
    /// caller owns — the composition point for mixing KZG claims with
    /// other deferred checks (BLS verifications, other commitments) in
    /// one settle. Both G2 sides are fixed (the generator and
    /// `[τ]G2`), so any number of pushed claims share two prepared
    /// Miller loops.
    ///
    /// # Errors
    ///
    /// [`PolyError::NoPoints`] / [`PolyError::DuplicatePoint`] for a
    /// malformed batch claim (nothing is pushed in that case).
    pub fn push_claim(
        &self,
        acc: &mut PairingAccumulator<'_>,
        claim: &Claim,
    ) -> Result<(), PolyError> {
        let curve = self.srs.curve();
        let r = curve.r();
        let ops = FpOps(Arc::clone(curve.fp()));
        let g1 = curve.g1_generator();
        match claim {
            Claim::Single {
                commitment,
                opening,
            } => {
                // e(C − [y]G1 + [z]W, G2) =? e(W, [τ]G2)
                let y_g1 = curve.g1_mul(g1, &opening.y);
                let z_w = curve.g1_mul(&opening.witness, &opening.z);
                let lhs = curve.g1_add(&curve.g1_add(commitment, &affine_neg(&ops, &y_g1)), &z_w);
                acc.push_check(
                    &lhs,
                    curve.g2_generator(),
                    &opening.witness,
                    self.srs.tau_g2(),
                );
            }
            Claim::Batch {
                commitment,
                opening,
            } => {
                let points: Vec<(BigUint, BigUint)> = opening
                    .points
                    .iter()
                    .map(|(z, y)| (z.rem(r), y.rem(r)))
                    .collect();
                // Re-derives z* and rejects empty/duplicated point sets
                // before anything touches the accumulator.
                let r_poly = Polynomial::interpolate(&points, r)?;
                let z_star = draw_z_star(curve.name(), r, commitment, &points, &opening.quotient);
                let r_at = r_poly.eval(&z_star, r);
                let z_at = vanishing_at(&points, &z_star, r);
                // F = C − [r(z*)]G1 − [Z(z*)]W, then
                // e(F + [z*]W′, G2) =? e(W′, [τ]G2).
                let r_g1 = curve.g1_mul(g1, &r_at);
                let z_w = curve.g1_mul(&opening.quotient, &z_at);
                let f = curve.g1_add(
                    &curve.g1_add(commitment, &affine_neg(&ops, &r_g1)),
                    &affine_neg(&ops, &z_w),
                );
                let lhs = curve.g1_add(&f, &curve.g1_mul(&opening.shift, &z_star));
                acc.push_check(
                    &lhs,
                    curve.g2_generator(),
                    &opening.shift,
                    self.srs.tau_g2(),
                );
            }
        }
        Ok(())
    }

    /// Verifies one opening (a batch of size one).
    ///
    /// # Errors
    ///
    /// [`PolyError::OpeningRejected`] when the pairing check fails.
    pub fn verify(&self, commitment: &Affine<Fp>, opening: &Opening) -> Result<(), PolyError> {
        let mut acc = PairingAccumulator::with_label(self.engine, VERIFY_LABEL);
        self.push_claim(
            &mut acc,
            &Claim::Single {
                commitment: commitment.clone(),
                opening: opening.clone(),
            },
        )?;
        if acc.settle() {
            Ok(())
        } else {
            Err(PolyError::OpeningRejected)
        }
    }

    /// Verifies a batch of claims with one settle: two cached Miller
    /// loops and one final exponentiation, however many claims are
    /// pushed. On failure the batch is re-settled in isolating mode so
    /// the error names the failing claims.
    ///
    /// # Errors
    ///
    /// [`PolyError::BatchRejected`] listing the indices (in `claims`
    /// order) of every claim whose check fails; claim-validation errors
    /// ([`PolyError::NoPoints`], [`PolyError::DuplicatePoint`])
    /// propagate before any pairing work.
    pub fn verify_batch(&self, claims: &[Claim]) -> Result<(), PolyError> {
        if claims.is_empty() {
            return Ok(());
        }
        let mut acc = PairingAccumulator::with_label(self.engine, VERIFY_LABEL);
        for claim in claims {
            self.push_claim(&mut acc, claim)?;
        }
        if acc.settle() {
            return Ok(());
        }
        // Same label, same push order — the isolating pass re-derives
        // identical randomizers, so its verdict matches the fast path's.
        let mut acc = PairingAccumulator::with_label(self.engine, VERIFY_LABEL);
        for claim in claims {
            self.push_claim(&mut acc, claim)?;
        }
        match acc.settle_isolating() {
            Ok(()) => Ok(()),
            Err(bad) => Err(PolyError::BatchRejected { bad }),
        }
    }
}

/// The batched-opening Fiat–Shamir challenge: drawn over the curve,
/// the commitment, every claimed point, and the quotient commitment;
/// redrawn on the (negligible) event it lands in the point set, so the
/// shifted witness's divisor never collides with an opened point.
fn draw_z_star(
    curve_name: &str,
    r: &BigUint,
    commitment: &Affine<Fp>,
    points: &[(BigUint, BigUint)],
    quotient: &Affine<Fp>,
) -> BigUint {
    let mut t = SplitMix64Transcript::new(OPEN_LABEL);
    t.absorb_bytes(curve_name.as_bytes());
    t.absorb_g1(commitment);
    for (z, y) in points {
        t.absorb_scalar(z);
        t.absorb_scalar(y);
    }
    t.absorb_g1(quotient);
    let mut z_star = t.challenge_scalar(r);
    while points.iter().any(|(z, _)| *z == z_star) {
        z_star = t.challenge_scalar(r);
    }
    z_star
}

/// `Z(x) = Π (x − zᵢ)` evaluated directly (no coefficient expansion).
fn vanishing_at(points: &[(BigUint, BigUint)], x: &BigUint, r: &BigUint) -> BigUint {
    let mut acc = BigUint::one();
    for (z, _) in points {
        acc = mod_mul(&acc, &mod_sub(x, z, r), r);
    }
    acc
}
