//! The KZG structured reference string and its canonical wire format.
//!
//! An [`Srs`] is the powers-of-tau string `([τⁱ]G1 for i ≤ d, [τ]G2)`
//! for a secret τ. [`Srs::generate`] plays the role of the trusted
//! setup: τ is drawn from a seeded transcript, the powers are computed
//! by fixed-base multiplication (riding the generator's cached comb
//! tables), and τ itself is dropped before the function returns — the
//! caller only ever holds the group elements. Determinism from the seed
//! makes test and bench setups reproducible; a production deployment
//! would substitute a multi-party ceremony's output via
//! [`Srs::from_bytes`].
//!
//! The wire format follows the workspace's strict-decoding contract
//! (see `finesse-curves::wire`): a versioned header binds the curve by
//! name, every point record carries an explicit length prefix that must
//! equal the curve's canonical compressed length, and each point passes
//! the full strict decode (canonical bytes, on-curve, prime-order
//! subgroup) — so a decoded SRS is always a structurally valid string
//! of subgroup points, and every rejection is a typed [`SrsError`].
//! What the format does *not* prove is the powers-of-tau relation
//! between consecutive points; that is the ceremony transcript's job,
//! not the serialization layer's.

use finesse_core::SrsError;
use finesse_curves::{Affine, Compression, Curve};
use finesse_ff::scalar::mod_mul;
use finesse_ff::{BigUint, Fp, Fq};
use finesse_pairing::{SplitMix64Transcript, Transcript};
use std::sync::Arc;

/// Wire magic for a serialized SRS.
const MAGIC: [u8; 4] = *b"FSRS";
/// Current wire version.
const VERSION: u8 = 1;

/// A KZG structured reference string over one curve.
#[derive(Debug, Clone)]
pub struct Srs {
    curve: Arc<Curve>,
    powers_g1: Vec<Affine<Fp>>,
    tau_g2: Affine<Fq>,
}

impl Srs {
    /// Generates a fresh SRS supporting commitments up to `max_degree`,
    /// with τ drawn deterministically from `seed` (domain-separated per
    /// curve). The `max_degree + 1` G1 powers all ride the generator's
    /// fixed-base comb, so setup costs one fixed-base multiplication
    /// per power rather than a variable-base one.
    pub fn generate(curve: &Arc<Curve>, max_degree: usize, seed: &[u8]) -> Self {
        let r = curve.r();
        let mut transcript = SplitMix64Transcript::new(b"finesse-srs-tau-v1");
        transcript.absorb_bytes(curve.name().as_bytes());
        transcript.absorb_bytes(seed);
        // τ = 0 would collapse every power past the first; redraw (the
        // loop terminates immediately in practice — P[0] ≈ 2⁻²⁵⁴).
        let mut tau = transcript.challenge_scalar(r);
        while tau.is_zero() {
            tau = transcript.challenge_scalar(r);
        }

        let g1 = curve.g1_generator();
        let mut powers_g1 = Vec::with_capacity(max_degree + 1);
        let mut tau_i = BigUint::one();
        for _ in 0..=max_degree {
            powers_g1.push(curve.g1_mul(g1, &tau_i));
            tau_i = mod_mul(&tau_i, &tau, r);
        }
        let tau_g2 = curve.g2_mul(curve.g2_generator(), &tau);
        Srs {
            curve: Arc::clone(curve),
            powers_g1,
            tau_g2,
        }
    }

    /// The curve this SRS lives on.
    pub fn curve(&self) -> &Arc<Curve> {
        &self.curve
    }

    /// The highest polynomial degree this SRS can commit to.
    pub fn max_degree(&self) -> usize {
        self.powers_g1.len().saturating_sub(1)
    }

    /// The G1 powers `[τⁱ]G1`, index i holding the τⁱ power.
    pub fn powers_g1(&self) -> &[Affine<Fp>] {
        &self.powers_g1
    }

    /// `[τ]G2`, the verifier's side of the string.
    pub fn tau_g2(&self) -> &Affine<Fq> {
        &self.tau_g2
    }

    /// Canonical serialization: header (magic, version, curve name,
    /// G1-power count) followed by one length-prefixed compressed
    /// record per point — the G1 powers in order, then `[τ]G2`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let name = self.curve.name().as_bytes();
        let g1_len = self.curve.g1_wire_len(Compression::Compressed);
        let g2_len = self.curve.g2_wire_len(Compression::Compressed);
        let mut out = Vec::with_capacity(
            4 + 1 + 4 + name.len() + 4 + self.powers_g1.len() * (4 + g1_len) + 4 + g2_len,
        );
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(name.len() as u32).to_be_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&(self.powers_g1.len() as u32).to_be_bytes());
        for p in &self.powers_g1 {
            let enc = self.curve.encode_g1(p, Compression::Compressed);
            out.extend_from_slice(&(enc.len() as u32).to_be_bytes());
            out.extend_from_slice(&enc);
        }
        let enc = self.curve.encode_g2(&self.tau_g2, Compression::Compressed);
        out.extend_from_slice(&(enc.len() as u32).to_be_bytes());
        out.extend_from_slice(&enc);
        out
    }

    /// Strict decode of an untrusted SRS encoding against `curve`.
    ///
    /// Accepts exactly the strings [`Srs::to_bytes`] produces for this
    /// curve; anything else — wrong magic or version, another curve's
    /// name, zero powers, a mis-sized or truncated record, a
    /// non-canonical / off-curve / wrong-subgroup point, or trailing
    /// bytes — is rejected with the [`SrsError`] naming the defect.
    ///
    /// # Errors
    ///
    /// See [`SrsError`]; point indices count the G1 powers first, then
    /// the final `[τ]G2` record.
    pub fn from_bytes(curve: &Arc<Curve>, bytes: &[u8]) -> Result<Self, SrsError> {
        let mut pos = 0usize;
        let magic = take(bytes, &mut pos, 4).ok_or(SrsError::TruncatedHeader)?;
        if magic != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(magic);
            return Err(SrsError::BadMagic(m));
        }
        let version = *take(bytes, &mut pos, 1)
            .and_then(<[u8]>::first)
            .ok_or(SrsError::TruncatedHeader)?;
        if version != VERSION {
            return Err(SrsError::UnsupportedVersion(version));
        }
        let name_len = take_u32(bytes, &mut pos).ok_or(SrsError::TruncatedHeader)? as usize;
        let name = take(bytes, &mut pos, name_len).ok_or(SrsError::TruncatedHeader)?;
        if name != curve.name().as_bytes() {
            return Err(SrsError::CurveMismatch {
                expected: curve.name().to_string(),
                found: String::from_utf8_lossy(name).into_owned(),
            });
        }
        let count = take_u32(bytes, &mut pos).ok_or(SrsError::TruncatedHeader)? as usize;
        if count == 0 {
            return Err(SrsError::Empty);
        }

        let g1_len = curve.g1_wire_len(Compression::Compressed);
        let g2_len = curve.g2_wire_len(Compression::Compressed);
        // Record sizes are fixed per curve, so the exact remaining
        // length is known up front — bail before looping over an
        // attacker-chosen count the buffer cannot possibly hold.
        let need = count * (4 + g1_len) + 4 + g2_len;
        if bytes.len().saturating_sub(pos) < need {
            let have = bytes.len().saturating_sub(pos);
            let index = have / (4 + g1_len);
            return Err(SrsError::TruncatedPoint {
                index: index.min(count),
            });
        }

        let mut powers_g1 = Vec::with_capacity(count);
        for index in 0..count {
            let declared =
                take_u32(bytes, &mut pos).ok_or(SrsError::TruncatedPoint { index })? as usize;
            if declared != g1_len {
                return Err(SrsError::PointLength {
                    index,
                    declared,
                    expected: g1_len,
                });
            }
            let enc = take(bytes, &mut pos, declared).ok_or(SrsError::TruncatedPoint { index })?;
            let p = curve
                .decode_g1(enc)
                .map_err(|source| SrsError::Point { index, source })?;
            powers_g1.push(p);
        }
        let index = count;
        let declared =
            take_u32(bytes, &mut pos).ok_or(SrsError::TruncatedPoint { index })? as usize;
        if declared != g2_len {
            return Err(SrsError::PointLength {
                index,
                declared,
                expected: g2_len,
            });
        }
        let enc = take(bytes, &mut pos, declared).ok_or(SrsError::TruncatedPoint { index })?;
        let tau_g2 = curve
            .decode_g2(enc)
            .map_err(|source| SrsError::Point { index, source })?;

        if pos != bytes.len() {
            return Err(SrsError::TrailingBytes {
                extra: bytes.len() - pos,
            });
        }
        Ok(Srs {
            curve: Arc::clone(curve),
            powers_g1,
            tau_g2,
        })
    }
}

/// Advances `pos` past `n` bytes, returning them, or `None` if the
/// buffer is too short (pos is left unchanged on failure).
fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Option<&'a [u8]> {
    let end = pos.checked_add(n)?;
    let slice = bytes.get(*pos..end)?;
    *pos = end;
    Some(slice)
}

/// Reads a big-endian u32 at `pos`.
fn take_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let raw = take(bytes, pos, 4)?;
    let mut w = [0u8; 4];
    w.copy_from_slice(raw);
    Some(u32::from_be_bytes(w))
}
