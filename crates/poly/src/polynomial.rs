//! Dense univariate polynomials over a prime scalar field F_r.
//!
//! Coefficients are plain [`BigUint`]s in little-endian order (index i
//! holds the Xⁱ coefficient), reduced into `[0, r)` at construction and
//! kept trimmed of leading zeros — so two equal polynomials always
//! compare equal coefficient-wise and the degree is `coeffs.len() − 1`.
//! The modulus is not stored in the value: the KZG layer works over one
//! group order at a time and threads `r` through each call, the same
//! convention the group layers use for scalars.

use finesse_core::PolyError;
use finesse_ff::scalar::{batch_mod_inv, horner_eval, mod_add, mod_mul, mod_neg, mod_sub};
use finesse_ff::BigUint;

/// A dense polynomial `c₀ + c₁X + … + c_dX^d` over F_r.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polynomial {
    coeffs: Vec<BigUint>,
}

/// Drops leading (high-index) zero coefficients in place.
fn trim(coeffs: &mut Vec<BigUint>) {
    while coeffs.last().is_some_and(BigUint::is_zero) {
        coeffs.pop();
    }
}

impl Polynomial {
    /// A polynomial from little-endian coefficients, reduced mod `r` and
    /// trimmed. The empty vector (or all-zero input) is the zero
    /// polynomial.
    pub fn new(coeffs: Vec<BigUint>, r: &BigUint) -> Self {
        let mut coeffs: Vec<BigUint> = coeffs.iter().map(|c| c.rem(r)).collect();
        trim(&mut coeffs);
        Polynomial { coeffs }
    }

    /// The unique polynomial of degree `< points.len()` through the
    /// given `(z, y)` pairs (Lagrange interpolation; the one inversion
    /// batch covers every denominator).
    ///
    /// # Errors
    ///
    /// [`PolyError::NoPoints`] for an empty input and
    /// [`PolyError::DuplicatePoint`] when two evaluation points coincide
    /// mod `r` (the denominators vanish).
    pub fn interpolate(points: &[(BigUint, BigUint)], r: &BigUint) -> Result<Self, PolyError> {
        if points.is_empty() {
            return Err(PolyError::NoPoints);
        }
        // denoms[i] = Π_{j≠i} (zᵢ − zⱼ); a zero denominator is exactly a
        // duplicated evaluation point.
        let mut denoms = Vec::with_capacity(points.len());
        for (i, (zi, _)) in points.iter().enumerate() {
            let mut d = BigUint::one();
            for (j, (zj, _)) in points.iter().enumerate() {
                if i != j {
                    d = mod_mul(&d, &mod_sub(zi, zj, r), r);
                }
            }
            denoms.push(d);
        }
        if batch_mod_inv(&mut denoms, r).is_none() {
            return Err(PolyError::DuplicatePoint);
        }
        // Σᵢ yᵢ · denomᵢ⁻¹ · Πⱼ≠ᵢ (X − zⱼ), accumulated coefficient-wise.
        let mut acc = vec![BigUint::zero(); points.len()];
        for (i, (_, yi)) in points.iter().enumerate() {
            let mut basis = vec![BigUint::one()];
            for (j, (zj, _)) in points.iter().enumerate() {
                if i != j {
                    basis = mul_linear(&basis, &mod_neg(zj, r), r);
                }
            }
            let w = mod_mul(yi, &denoms[i], r);
            for (a, b) in acc.iter_mut().zip(&basis) {
                *a = mod_add(a, &mod_mul(&w, b, r), r);
            }
        }
        trim(&mut acc);
        Ok(Polynomial { coeffs: acc })
    }

    /// The vanishing polynomial `Z(X) = Π (X − zᵢ)` of the given points.
    pub fn vanishing(zs: &[BigUint], r: &BigUint) -> Self {
        let mut coeffs = vec![BigUint::one()];
        for z in zs {
            coeffs = mul_linear(&coeffs, &mod_neg(z, r), r);
        }
        Polynomial { coeffs }
    }

    /// Little-endian coefficients (trimmed; empty for the zero
    /// polynomial).
    pub fn coeffs(&self) -> &[BigUint] {
        &self.coeffs
    }

    /// True iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Horner evaluation at `x`, mod `r`.
    pub fn eval(&self, x: &BigUint, r: &BigUint) -> BigUint {
        horner_eval(&self.coeffs, &x.rem(r), r)
    }

    /// `self − c` as polynomials (subtracts `c` from the constant term).
    pub fn sub_constant(&self, c: &BigUint, r: &BigUint) -> Self {
        let mut coeffs = self.coeffs.clone();
        if coeffs.is_empty() {
            coeffs.push(BigUint::zero());
        }
        coeffs[0] = mod_sub(&coeffs[0], c, r);
        trim(&mut coeffs);
        Polynomial { coeffs }
    }

    /// `self − s·other`, the combination the shifted batched-opening
    /// witness needs.
    pub fn sub_scaled(&self, other: &Self, s: &BigUint, r: &BigUint) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = Vec::with_capacity(n);
        let zero = BigUint::zero();
        for i in 0..n {
            let a = self.coeffs.get(i).unwrap_or(&zero);
            let b = other.coeffs.get(i).unwrap_or(&zero);
            coeffs.push(mod_sub(a, &mod_mul(s, b, r), r));
        }
        trim(&mut coeffs);
        Polynomial { coeffs }
    }

    /// Synthetic division by `(X − z)`: returns `(q, rem)` with
    /// `self = q·(X − z) + rem`. The remainder equals `self.eval(z)`
    /// (the division is exact iff `z` is a root).
    pub fn divide_by_linear(&self, z: &BigUint, r: &BigUint) -> (Self, BigUint) {
        let Some(c0) = self.coeffs.first() else {
            // Zero polynomial: quotient and remainder are both zero.
            return (Polynomial { coeffs: Vec::new() }, BigUint::zero());
        };
        let z = z.rem(r);
        // qᵢ₋₁ = cᵢ + z·qᵢ from the top coefficient down; the final
        // carry folds into the remainder c₀ + z·q₀.
        let mut quot = vec![BigUint::zero(); self.coeffs.len() - 1];
        let mut carry = BigUint::zero();
        for i in (1..self.coeffs.len()).rev() {
            carry = mod_add(&self.coeffs[i], &mod_mul(&carry, &z, r), r);
            quot[i - 1] = carry.clone();
        }
        let rem = mod_add(c0, &mod_mul(&carry, &z, r), r);
        trim(&mut quot);
        (Polynomial { coeffs: quot }, rem)
    }
}

/// `p(X) · (X + c)`, the building block for vanishing/basis products.
fn mul_linear(p: &[BigUint], c: &BigUint, r: &BigUint) -> Vec<BigUint> {
    let mut out = vec![BigUint::zero(); p.len() + 1];
    for (i, a) in p.iter().enumerate() {
        // a·X^(i+1) + a·c·X^i
        out[i + 1] = mod_add(&out[i + 1], a, r);
        out[i] = mod_add(&out[i], &mod_mul(a, c, r), r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> BigUint {
        BigUint::from_u64(1_000_003)
    }

    fn poly(cs: &[u64]) -> Polynomial {
        Polynomial::new(cs.iter().map(|&c| BigUint::from_u64(c)).collect(), &m())
    }

    #[test]
    fn construction_reduces_and_trims() {
        let p = Polynomial::new(
            vec![
                BigUint::from_u64(1_000_003 + 7),
                BigUint::zero(),
                BigUint::from_u64(2_000_006),
            ],
            &m(),
        );
        assert_eq!(p.coeffs(), &[BigUint::from_u64(7)]);
        assert_eq!(p.degree(), Some(0));
        assert!(Polynomial::new(vec![], &m()).is_zero());
    }

    #[test]
    fn division_by_root_is_exact() {
        // (X − 3)(X² + 5) = X³ − 3X² + 5X − 15.
        let p = poly(&[1_000_003 - 15, 5, 1_000_003 - 3, 1]);
        let (q, rem) = p.divide_by_linear(&BigUint::from_u64(3), &m());
        assert!(rem.is_zero());
        assert_eq!(q, poly(&[5, 0, 1]));
        // Non-root: remainder is the evaluation.
        let (_, rem) = p.divide_by_linear(&BigUint::from_u64(4), &m());
        assert_eq!(rem, p.eval(&BigUint::from_u64(4), &m()));
    }

    #[test]
    fn interpolation_round_trips_evaluations() {
        let p = poly(&[9, 0, 4, 17]);
        let points: Vec<(BigUint, BigUint)> = (10u64..14)
            .map(|z| {
                let z = BigUint::from_u64(z);
                let y = p.eval(&z, &m());
                (z, y)
            })
            .collect();
        assert_eq!(Polynomial::interpolate(&points, &m()).unwrap(), p);
        assert!(matches!(
            Polynomial::interpolate(&[], &m()),
            Err(PolyError::NoPoints)
        ));
        let dup = vec![points[0].clone(), points[0].clone()];
        assert!(matches!(
            Polynomial::interpolate(&dup, &m()),
            Err(PolyError::DuplicatePoint)
        ));
    }

    #[test]
    fn vanishing_has_exactly_the_given_roots() {
        let zs: Vec<BigUint> = [2u64, 5, 11].map(BigUint::from_u64).to_vec();
        let z = Polynomial::vanishing(&zs, &m());
        assert_eq!(z.degree(), Some(3));
        for root in &zs {
            assert!(z.eval(root, &m()).is_zero());
        }
        assert!(!z.eval(&BigUint::from_u64(3), &m()).is_zero());
    }

    #[test]
    fn sub_scaled_matches_pointwise() {
        let f = poly(&[1, 2, 3]);
        let g = poly(&[4, 0, 0, 6]);
        let s = BigUint::from_u64(7);
        let h = f.sub_scaled(&g, &s, &m());
        for x in [0u64, 1, 2, 99] {
            let x = BigUint::from_u64(x);
            let want = mod_sub(
                &f.eval(&x, &m()),
                &mod_mul(&s, &g.eval(&x, &m()), &m()),
                &m(),
            );
            assert_eq!(h.eval(&x, &m()), want);
        }
    }
}
