//! # finesse-dse
//!
//! Design-space exploration and the co-design feedback loop (paper §3.6,
//! Figures 10 and 11): each design point pairs an operator-variant
//! selection with a hardware model; evaluation compiles the pairing,
//! simulates it cycle-accurately, and reads area/timing feedback from the
//! analytical EDA models. Exploration is exhaustive over the requested
//! point set (parallelised over `finesse-parallel` scoped threads, the
//! workspace-wide thread pool idiom honouring `FINESSE_THREADS`),
//! matching the paper's "basic exploration strategy".

use finesse_compiler::{compile_pairing, tower_shape, CompileError, CompileOptions};
use finesse_curves::Curve;
use finesse_hw::{
    area_breakdown, critical_path_ns, frequency_mhz, latency_us, throughput_ops, AreaBreakdown,
    AreaInputs, HwModel,
};
use finesse_ir::{CostModel, Kernel, VariantConfig};
use finesse_sim::{simulate, SimReport};
use std::fmt;
use std::sync::Arc;

/// Error from evaluating or exploring design points.
///
/// All nanosecond pricing lives in `finesse_hw`'s timing model (HW side)
/// and [`CostModel`] (SW side); this crate carries no per-kernel cost
/// constants of its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DseError {
    /// The point failed to compile.
    Compile(CompileError),
    /// The software cost model does not price this curve.
    UnknownCurveCost {
        /// The curve whose row was missing.
        curve: String,
    },
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::Compile(e) => write!(f, "{e}"),
            DseError::UnknownCurveCost { curve } => {
                write!(f, "cost model has no row for curve {curve:?}")
            }
        }
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Compile(e) => Some(e),
            DseError::UnknownCurveCost { .. } => None,
        }
    }
}

impl From<CompileError> for DseError {
    fn from(e: CompileError) -> Self {
        DseError::Compile(e)
    }
}

/// One point in the co-design space.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// Short label for experiment tables.
    pub label: String,
    /// Operator-variant selection.
    pub variants: VariantConfig,
    /// Hardware model.
    pub hw: HwModel,
}

/// Optimisation objective for ranking points (paper: "diverse and often
/// conflicting goals").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Objective {
    /// Minimise cycles (maximise per-core throughput at fixed frequency).
    Cycles,
    /// Maximise throughput in ops/s (frequency-aware).
    Throughput,
    /// Minimise die area.
    Area,
    /// Minimise the area×delay product.
    AreaDelay,
}

/// The evaluated metrics of a design point.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// Executable instruction count.
    pub instructions: usize,
    /// Simulated cycles per pairing.
    pub cycles: u64,
    /// Achieved IPC.
    pub ipc: f64,
    /// Write-back conflicts observed.
    pub wb_conflicts: u64,
    /// Instruction image bytes.
    pub imem_bytes: usize,
    /// Peak live registers.
    pub peak_regs: u32,
    /// Area breakdown at 40nm LP.
    pub area: AreaBreakdown,
    /// Critical path in ns.
    pub critical_path_ns: f64,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Latency per pairing in µs.
    pub latency_us: f64,
    /// Throughput in ops/s (for the configured core count).
    pub throughput_ops: f64,
    /// Compile wall time in milliseconds.
    pub compile_ms: f64,
}

impl Evaluation {
    /// The scalar score under an objective (lower is better).
    pub fn score(&self, obj: Objective) -> f64 {
        match obj {
            Objective::Cycles => self.cycles as f64,
            Objective::Throughput => -self.throughput_ops,
            Objective::Area => self.area.total(),
            Objective::AreaDelay => self.area.total() * self.latency_us,
        }
    }
}

/// Evaluates one design point on a curve (`cores` parallel cores share
/// the instruction memory).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn evaluate_point(
    curve: &Arc<Curve>,
    point: &DesignPoint,
    cores: u32,
) -> Result<Evaluation, DseError> {
    let compiled = compile_pairing(
        curve,
        &point.variants,
        &point.hw,
        &CompileOptions::default(),
    )?;
    let insts = compiled
        .image
        .spec
        .decode(&compiled.image.words)
        .map_err(CompileError::Codec)?;
    let report: SimReport = simulate(&insts, &compiled.hw, None);

    let bits = curve.p().bits() as u32;
    let inputs = AreaInputs {
        field_bits: bits,
        imem_bytes: compiled.image.imem_bytes(),
        live_registers: compiled.regs.peak_live as usize,
        cores,
    };
    let area = area_breakdown(&compiled.hw, &inputs);

    Ok(Evaluation {
        instructions: compiled.instruction_count(),
        cycles: report.cycles,
        ipc: report.ipc(),
        wb_conflicts: report.wb_conflicts,
        imem_bytes: compiled.image.imem_bytes(),
        peak_regs: compiled.regs.peak_live,
        area,
        critical_path_ns: critical_path_ns(compiled.hw.long_lat, bits),
        frequency_mhz: frequency_mhz(compiled.hw.long_lat, bits),
        latency_us: latency_us(report.cycles, compiled.hw.long_lat, bits),
        throughput_ops: throughput_ops(report.cycles, compiled.hw.long_lat, bits, cores),
        compile_ms: compiled.compile_time.as_secs_f64() * 1000.0,
    })
}

/// A simulated hardware point set against the software baseline from a
/// [`CostModel`] (the headline comparison of the paper's Table 2/Figure 2).
#[derive(Clone, Debug)]
pub struct SwComparison {
    /// Measured (or analytic) software pairing latency, ns.
    pub sw_pairing_ns: f64,
    /// Simulated hardware pairing latency, ns.
    pub hw_pairing_ns: f64,
    /// Software over hardware latency ratio.
    pub speedup: f64,
}

/// Prices an evaluated point against the software baseline for a curve.
///
/// # Errors
///
/// Returns [`DseError::UnknownCurveCost`] when `model` has no row for the
/// curve.
pub fn compare_with_software(
    curve_name: &str,
    eval: &Evaluation,
    model: &CostModel,
) -> Result<SwComparison, DseError> {
    let sw_pairing_ns =
        model
            .cost_ns(curve_name, Kernel::Pairing)
            .ok_or_else(|| DseError::UnknownCurveCost {
                curve: curve_name.to_string(),
            })?;
    let hw_pairing_ns = eval.latency_us * 1000.0;
    Ok(SwComparison {
        sw_pairing_ns,
        hw_pairing_ns,
        speedup: sw_pairing_ns / hw_pairing_ns,
    })
}

/// Exhaustively evaluates a set of points in parallel, returning
/// `(point, evaluation)` pairs in input order (points that fail to
/// compile carry their typed [`DseError`]). Worker count follows
/// [`finesse_parallel::current_threads`] — i.e. the `FINESSE_THREADS`
/// environment knob, or a [`finesse_parallel::with_threads`] override.
pub fn explore(
    curve: &Arc<Curve>,
    points: Vec<DesignPoint>,
    cores: u32,
) -> Vec<(DesignPoint, Result<Evaluation, DseError>)> {
    finesse_parallel::par_map_chunks(&points, 1, |chunk| {
        chunk
            .iter()
            .map(|p| (p.clone(), evaluate_point(curve, p, cores)))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Picks the best successful point under an objective.
pub fn best_point(
    results: &[(DesignPoint, Result<Evaluation, DseError>)],
    obj: Objective,
) -> Option<(&DesignPoint, &Evaluation)> {
    results
        .iter()
        .filter_map(|(p, r)| r.as_ref().ok().map(|e| (p, e)))
        .min_by(|a, b| a.1.score(obj).total_cmp(&b.1.score(obj)))
}

/// The standard Figure 10 point set for a curve: Manual / All-schoolbook
/// / All-Karatsuba variant selections across representative pipeline
/// configurations.
pub fn figure10_points(curve: &Arc<Curve>) -> Vec<DesignPoint> {
    let shape = tower_shape(curve);
    let variant_sets = [
        ("Manual", VariantConfig::manual(&shape)),
        ("All sch.", VariantConfig::all_schoolbook(&shape)),
        ("All karat.", VariantConfig::all_karatsuba(&shape)),
    ];
    let hw_sets = [
        HwModel::single_issue(38, 8),
        HwModel::single_issue(8, 2),
        HwModel::vliw(2, 8, 2),
        HwModel::vliw(4, 8, 2),
        HwModel::vliw(6, 8, 2),
    ];
    let mut points = Vec::new();
    for hw in &hw_sets {
        for (name, v) in &variant_sets {
            points.push(DesignPoint {
                label: format!("{} @ {}", name, hw.name),
                variants: v.clone(),
                hw: hw.clone(),
            });
        }
    }
    points
}

/// The exhaustive variant sweep at a fixed hardware model (the "Optimal"
/// search of Figure 10): all multiplication-variant combinations plus
/// cyclotomic choice.
pub fn variant_sweep_points(curve: &Arc<Curve>, hw: &HwModel) -> Vec<DesignPoint> {
    let shape = tower_shape(curve);
    VariantConfig::enumerate_mul_space(&shape)
        .into_iter()
        .map(|v| DesignPoint {
            label: format!("{} @ {}", v.tag(), hw.name),
            variants: v,
            hw: hw.clone(),
        })
        .collect()
}

/// One row of the Figure 11 ALU-family co-design sweep.
#[derive(Clone, Debug)]
pub struct AluFamilyPoint {
    /// `mmul` pipeline depth (= Long latency).
    pub depth: u32,
    /// Critical path from the timing model, ns.
    pub critical_path_ns: f64,
    /// Achieved IPC from the cycle-accurate simulator.
    pub ipc: f64,
    /// Single-core throughput, kops.
    pub throughput_kops: f64,
    /// Cycles per pairing.
    pub cycles: u64,
}

/// Sweeps the `mmul` pipeline depth (the ALU-family axis of Figure 11).
///
/// # Errors
///
/// Propagates compilation failures.
pub fn codesign_alu_sweep(
    curve: &Arc<Curve>,
    depths: &[u32],
    variants: &VariantConfig,
) -> Result<Vec<AluFamilyPoint>, DseError> {
    let mut out = Vec::with_capacity(depths.len());
    for &d in depths {
        let hw = HwModel::paper_default().with_long_latency(d);
        let point = DesignPoint {
            label: format!("L{d}"),
            variants: variants.clone(),
            hw,
        };
        let eval = evaluate_point(curve, &point, 1)?;
        out.push(AluFamilyPoint {
            depth: d,
            critical_path_ns: eval.critical_path_ns,
            ipc: eval.ipc,
            throughput_kops: eval.throughput_ops / 1000.0,
            cycles: eval.cycles,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_default_point_bn254n() {
        let curve = Curve::by_name("BN254N");
        let shape = tower_shape(&curve);
        let point = DesignPoint {
            label: "default".into(),
            variants: VariantConfig::all_karatsuba(&shape),
            hw: HwModel::paper_default(),
        };
        let e = evaluate_point(&curve, &point, 1).unwrap();
        assert!(e.ipc > 0.7, "IPC {}", e.ipc);
        assert!(e.cycles > 10_000);
        assert!(e.area.total() > 0.5 && e.area.total() < 5.0);
        assert!(e.frequency_mhz > 700.0);
        assert!(e.throughput_ops > 1000.0);
    }

    #[test]
    fn evaluation_timing_comes_from_the_hw_owner() {
        // dse carries no timing math of its own: latency/throughput must be
        // exactly what finesse_hw's model (the single owner) computes.
        let curve = Curve::by_name("BN254N");
        let shape = tower_shape(&curve);
        let point = DesignPoint {
            label: "default".into(),
            variants: VariantConfig::all_karatsuba(&shape),
            hw: HwModel::paper_default(),
        };
        let e = evaluate_point(&curve, &point, 2).unwrap();
        let bits = curve.p().bits() as u32;
        let depth = point.hw.long_lat;
        assert_eq!(e.latency_us, latency_us(e.cycles, depth, bits));
        assert_eq!(e.throughput_ops, throughput_ops(e.cycles, depth, bits, 2));
    }

    #[test]
    fn sw_comparison_against_analytic_model() {
        let curve = Curve::by_name("BN254N");
        let shape = tower_shape(&curve);
        let point = DesignPoint {
            label: "default".into(),
            variants: VariantConfig::all_karatsuba(&shape),
            hw: HwModel::paper_default(),
        };
        let e = evaluate_point(&curve, &point, 1).unwrap();
        let model = CostModel::analytic();
        let cmp = compare_with_software("BN254N", &e, &model).unwrap();
        assert!(cmp.speedup > 1.0, "the accelerator beats software");
        assert_eq!(cmp.hw_pairing_ns, e.latency_us * 1000.0);
        let err = compare_with_software("NOT-A-CURVE", &e, &model).unwrap_err();
        assert!(matches!(err, DseError::UnknownCurveCost { .. }));
    }

    #[test]
    fn explore_ranks_variants_on_single_issue() {
        // On a single-issue pipeline, schoolbook at the quadratic base
        // level should be competitive (§2.2's Karatsuba observation).
        let curve = Curve::by_name("BN254N");
        let shape = tower_shape(&curve);
        let hw = HwModel::paper_default();
        let points = vec![
            DesignPoint {
                label: "kara".into(),
                variants: VariantConfig::all_karatsuba(&shape),
                hw: hw.clone(),
            },
            DesignPoint {
                label: "manual".into(),
                variants: VariantConfig::manual(&shape),
                hw: hw.clone(),
            },
        ];
        let results = explore(&curve, points, 1);
        assert_eq!(results.len(), 2);
        for (p, r) in &results {
            let e = r.as_ref().unwrap();
            assert!(e.cycles > 0, "{}", p.label);
        }
        let best = best_point(&results, Objective::Cycles).unwrap();
        assert!(!best.0.label.is_empty());
    }

    #[test]
    fn alu_sweep_has_interior_throughput_optimum() {
        let curve = Curve::by_name("BN254N");
        let shape = tower_shape(&curve);
        let variants = VariantConfig::all_karatsuba(&shape);
        let sweep = codesign_alu_sweep(&curve, &[14, 26, 38, 44], &variants).unwrap();
        assert_eq!(sweep.len(), 4);
        // IPC decreases with depth; critical path decreases then saturates.
        assert!(
            sweep[0].ipc >= sweep[3].ipc,
            "IPC drops with deeper pipelines"
        );
        assert!(sweep[0].critical_path_ns > sweep[2].critical_path_ns);
        assert!((sweep[2].critical_path_ns - sweep[3].critical_path_ns).abs() < 1e-9);
        // Throughput peaks at the saturation depth, not the deepest.
        let best = sweep
            .iter()
            .max_by(|a, b| a.throughput_kops.total_cmp(&b.throughput_kops))
            .unwrap();
        assert_eq!(best.depth, 38, "interior optimum at the paper's depth");
    }
}
