//! # finesse-parallel
//!
//! The workspace's one thread-pool idiom: opt-in data parallelism on std
//! scoped threads (the build is offline, so no rayon), shared by the
//! Pippenger MSM shards in `finesse-curves`, the parallel Miller loops in
//! `finesse-pairing`, and the design-space sweep in `finesse-dse`.
//!
//! The thread count is a process-wide knob resolved once from the
//! `FINESSE_THREADS` environment variable (falling back to
//! [`std::thread::available_parallelism`]), plus a scoped per-thread
//! override ([`with_threads`]) for tests and scaling benchmarks that
//! need to pin a specific count without touching the process
//! environment. At one thread every entry point degrades to a plain
//! serial call on the calling thread — no spawns, no channels — so
//! `FINESSE_THREADS=1` is an exact serial-execution switch.
//!
//! Determinism contract: [`par_map_chunks`] always returns results in
//! input order, so callers that fold shard results in order (as every
//! in-tree user does) produce the same group/field elements at any
//! thread count; only internal association (and therefore projective
//! representatives) may differ, never canonical values.

use std::cell::Cell;
use std::sync::OnceLock;

/// Parses a `FINESSE_THREADS`-style value: a positive integer wins,
/// anything absent, malformed, or zero falls back.
pub fn parse_threads(value: Option<&str>, fallback: usize) -> usize {
    match value.map(|s| s.trim().parse::<usize>()) {
        Some(Ok(n)) if n > 0 => n,
        _ => fallback.max(1),
    }
}

/// The host's available parallelism (1 if it cannot be determined).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide thread budget: `FINESSE_THREADS` if set to a positive
/// integer, otherwise [`hardware_threads`]. Resolved once per process.
pub fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        parse_threads(
            std::env::var("FINESSE_THREADS").ok().as_deref(),
            hardware_threads(),
        )
    })
}

thread_local! {
    /// Scoped override installed by [`with_threads`]; `None` defers to
    /// [`configured_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The thread count parallel entry points will use right now on this
/// thread: the innermost [`with_threads`] override, else the process
/// configuration. Always at least 1.
pub fn current_threads() -> usize {
    OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(configured_threads)
        .max(1)
}

/// Runs `f` with the calling thread's parallelism pinned to `n`
/// (clamped to at least 1), restoring the previous setting afterwards —
/// including on unwind. This is how the bench harness measures
/// scaling-vs-cores and how tests pin the serial path without mutating
/// the process environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Splits `items` into at most [`current_threads`] contiguous chunks of
/// at least `min_chunk` elements, maps each chunk with `f` on its own
/// scoped thread, and returns the chunk results **in input order**.
///
/// With one thread (or too few items to fill two minimum-size chunks)
/// this is exactly `vec![f(items)]` on the calling thread — the serial
/// fallback the determinism tests pin against. An empty input yields an
/// empty result without calling `f`.
pub fn par_map_chunks<T, R, F>(items: &[T], min_chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let workers = current_threads().min(items.len() / min_chunk).max(1);
    if workers == 1 {
        return vec![f(items)];
    }
    let chunk_size = items.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| s.spawn(|| f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Propagate a worker panic to the caller unchanged rather
                // than introducing a new panic site of our own.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Pairwise (binary-tree) reduction of shard results: adjacent pairs
/// combine until one value remains, preserving left-to-right order
/// inside every combine. `None` only for an empty input.
pub fn tree_reduce<T>(mut items: Vec<T>, mut combine: impl FnMut(T, T) -> T) -> Option<T> {
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            next.push(match it.next() {
                Some(b) => combine(a, b),
                None => a,
            });
        }
        items = next;
    }
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4"), 2), 4);
        assert_eq!(parse_threads(Some(" 8 "), 2), 8);
        assert_eq!(parse_threads(Some("0"), 2), 2);
        assert_eq!(parse_threads(Some("-3"), 2), 2);
        assert_eq!(parse_threads(Some("lots"), 2), 2);
        assert_eq!(parse_threads(None, 2), 2);
        // A zero fallback still yields a usable count.
        assert_eq!(parse_threads(None, 0), 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_threads();
        let inner = with_threads(3, || {
            assert_eq!(current_threads(), 3);
            // Nested overrides stack.
            with_threads(1, current_threads)
        });
        assert_eq!(inner, 1);
        assert_eq!(current_threads(), outer);
        // Zero clamps to the serial fallback instead of panicking.
        assert_eq!(with_threads(0, current_threads), 1);
    }

    #[test]
    fn par_map_chunks_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: u64 = items.iter().sum();
        for threads in [1, 2, 3, 4, 7] {
            let sums = with_threads(threads, || {
                par_map_chunks(&items, 1, |chunk| chunk.iter().sum::<u64>())
            });
            assert_eq!(sums.iter().sum::<u64>(), serial, "threads = {threads}");
            // Chunks come back in input order: re-mapping first elements
            // must be increasing.
            let firsts = with_threads(threads, || par_map_chunks(&items, 1, |chunk| chunk[0]));
            assert!(firsts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn par_map_chunks_serial_fallback_is_one_chunk() {
        let items = [1u8, 2, 3];
        let got = with_threads(1, || par_map_chunks(&items, 1, <[u8]>::to_vec));
        assert_eq!(got, vec![vec![1, 2, 3]]);
        // Below two minimum chunks the call stays serial too.
        let got = with_threads(8, || par_map_chunks(&items, 2, <[u8]>::to_vec));
        assert_eq!(got, vec![vec![1, 2, 3]]);
        let empty: Vec<Vec<u8>> = par_map_chunks(&[], 1, <[u8]>::to_vec);
        assert!(empty.is_empty());
    }

    #[test]
    fn tree_reduce_folds_pairwise() {
        assert_eq!(tree_reduce(Vec::<u32>::new(), u32::wrapping_add), None);
        assert_eq!(tree_reduce(vec![7], u32::wrapping_add), Some(7));
        let vals: Vec<u32> = (1..=9).collect();
        assert_eq!(tree_reduce(vals, u32::wrapping_add), Some(45));
        // Order inside combines is left-to-right (string concat shows it).
        let words = vec!["a".to_owned(), "b".into(), "c".into(), "d".into()];
        assert_eq!(tree_reduce(words, |a, b| a + &b).unwrap(), "abcd");
    }
}
