//! Modular arithmetic helpers on [`BigUint`] scalars.
//!
//! The group layers work with scalars as plain [`BigUint`]s reduced mod
//! a prime group order r — they never need a Montgomery context, but the
//! polynomial layers above (KZG quotients, Lagrange interpolation) need
//! ring arithmetic and inversion in F_r. This module provides exactly
//! that surface: total `mod_*` ring operations, Fermat inversion, and a
//! Montgomery-trick [`batch_mod_inv`] that amortises n inversions into
//! one `modpow` plus `3(n−1)` multiplications — the same batching idea
//! the point layer uses in `batch_to_affine`.
//!
//! All functions expect `modulus ≥ 2`; the inversion helpers further
//! assume the modulus is *prime* (they use Fermat's little theorem), as
//! every group order in this workspace is.

use crate::biguint::BigUint;

/// `(a + b) mod m`. Inputs need not be pre-reduced.
pub fn mod_add(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    (a + b).rem(m)
}

/// `(a − b) mod m` (wrapping into `[0, m)`). Inputs need not be
/// pre-reduced.
pub fn mod_sub(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    let a = a.rem(m);
    let b = b.rem(m);
    match a.checked_sub(&b) {
        Some(d) => d,
        // a < b < m, so a + m - b stays positive and below m.
        None => (&(&a + m) - &b).rem(m),
    }
}

/// `(a · b) mod m`.
pub fn mod_mul(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    (a * b).rem(m)
}

/// `−a mod m` (zero maps to zero).
pub fn mod_neg(a: &BigUint, m: &BigUint) -> BigUint {
    mod_sub(&BigUint::zero(), a, m)
}

/// `a⁻¹ mod m` for *prime* m, via Fermat (`a^(m−2)`), or `None` when
/// `a ≡ 0 (mod m)` (zero has no inverse).
pub fn mod_inv(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    let a = a.rem(m);
    if a.is_zero() {
        return None;
    }
    let e = m.checked_sub(&BigUint::from_u64(2))?;
    Some(a.modpow(&e, m))
}

/// Inverts every element of `xs` mod a *prime* m with Montgomery's
/// batch trick: one prefix-product pass, a single [`mod_inv`], and one
/// unwinding pass — `3(n−1)` multiplications and one `modpow` total.
///
/// Returns `None` if any element is `≡ 0 (mod m)` (nothing is modified
/// in that case — partial batches would be a footgun for callers
/// reconstructing interpolation denominators).
pub fn batch_mod_inv(xs: &mut [BigUint], m: &BigUint) -> Option<()> {
    if xs.is_empty() {
        return Some(());
    }
    // prefix[i] = x₀·…·xᵢ mod m.
    let mut prefix = Vec::with_capacity(xs.len());
    let mut acc = BigUint::one();
    for x in xs.iter() {
        let x = x.rem(m);
        if x.is_zero() {
            return None;
        }
        acc = mod_mul(&acc, &x, m);
        prefix.push(acc.clone());
    }
    // One inversion of the full product, then peel one factor per step:
    // inv(x₀·…·xᵢ)·(x₀·…·xᵢ₋₁) = xᵢ⁻¹.
    let mut inv_all = mod_inv(&acc, m)?;
    for i in (1..xs.len()).rev() {
        let xi_inv = mod_mul(&inv_all, &prefix[i - 1], m);
        inv_all = mod_mul(&inv_all, &xs[i].rem(m), m);
        xs[i] = xi_inv;
    }
    xs[0] = inv_all;
    Some(())
}

/// Horner evaluation of a little-endian coefficient slice at `x`,
/// mod m: `c₀ + c₁x + c₂x² + …`.
pub fn horner_eval(coeffs: &[BigUint], x: &BigUint, m: &BigUint) -> BigUint {
    let mut acc = BigUint::zero();
    for c in coeffs.iter().rev() {
        acc = mod_add(&mod_mul(&acc, x, m), c, m);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> BigUint {
        // A prime large enough to exercise multi-limb paths.
        BigUint::from_hex("ffffffff00000001").unwrap()
    }

    #[test]
    fn ring_ops_wrap_into_range() {
        let m = r();
        let a = BigUint::from_u64(5);
        let b = &m.checked_sub(&BigUint::one()).unwrap() + &BigUint::from_u64(7); // m + 6
        assert_eq!(mod_add(&a, &b, &m), BigUint::from_u64(11));
        assert_eq!(mod_sub(&a, &b, &m), m.checked_sub(&BigUint::one()).unwrap());
        assert_eq!(mod_mul(&a, &b, &m), BigUint::from_u64(30));
        assert_eq!(mod_neg(&BigUint::zero(), &m), BigUint::zero());
        assert_eq!(mod_add(&mod_neg(&a, &m), &a, &m), BigUint::zero());
    }

    #[test]
    fn fermat_inverse_round_trips() {
        let m = r();
        for k in [1u64, 2, 3, 0xDEAD_BEEF, u64::MAX - 4] {
            let a = BigUint::from_u64(k).rem(&m);
            let inv = mod_inv(&a, &m).expect("nonzero inverts");
            assert_eq!(mod_mul(&a, &inv, &m), BigUint::one(), "k = {k}");
        }
        assert!(mod_inv(&BigUint::zero(), &m).is_none());
        assert!(mod_inv(&m, &m).is_none(), "m ≡ 0 has no inverse");
    }

    #[test]
    fn batch_inversion_matches_singles() {
        let m = r();
        let mut xs: Vec<BigUint> = (1u64..=17).map(BigUint::from_u64).collect();
        let singles: Vec<BigUint> = xs.iter().map(|x| mod_inv(x, &m).unwrap()).collect();
        batch_mod_inv(&mut xs, &m).expect("no zeros");
        assert_eq!(xs, singles);

        // A zero anywhere aborts without touching the slice.
        let mut with_zero = vec![BigUint::from_u64(3), m.clone(), BigUint::from_u64(5)];
        let before = with_zero.clone();
        assert!(batch_mod_inv(&mut with_zero, &m).is_none());
        assert_eq!(with_zero, before);
        assert!(batch_mod_inv(&mut [], &m).is_some(), "empty batch is fine");
    }

    #[test]
    fn horner_matches_direct_evaluation() {
        let m = BigUint::from_u64(1_000_003);
        // 7 + 3x + 5x² + x³ at x = 11: 7 + 33 + 605 + 1331 = 1976.
        let coeffs: Vec<BigUint> = [7u64, 3, 5, 1].map(BigUint::from_u64).to_vec();
        let got = horner_eval(&coeffs, &BigUint::from_u64(11), &m);
        assert_eq!(got, BigUint::from_u64(1976));
        assert!(horner_eval(&[], &BigUint::from_u64(9), &m).is_zero());
    }
}
