//! Prime-field arithmetic in Montgomery form.
//!
//! [`FpCtx`] owns everything derived from the modulus (limb width, `n0'`,
//! `R^2 mod p`); [`Fp`] is a fixed-width element bound to its context via
//! `Arc`, so elements of different fields can never be mixed silently —
//! mixing panics in debug and release alike.
//!
//! The multiplication is CIOS (coarsely integrated operand scanning)
//! Montgomery multiplication, the standard software algorithm matching the
//! word-serial structure of the paper's `mmul` hardware unit.

use crate::limbs::{adc, cmp_slices, mac, mont_neg_inv, sub_assign_slices};
use crate::BigUint;
use std::fmt;
use std::sync::Arc;

/// Context for a prime field F_p: the modulus and Montgomery constants.
///
/// # Examples
///
/// ```
/// use finesse_ff::{BigUint, FpCtx};
///
/// let p = BigUint::from_u64(1_000_000_007);
/// let ctx = FpCtx::new(p).unwrap();
/// let a = ctx.from_u64(3);
/// let b = ctx.from_u64(5);
/// assert_eq!((&a * &b).to_biguint(), BigUint::from_u64(15));
/// ```
pub struct FpCtx {
    p: BigUint,
    p_limbs: Vec<u64>,
    width: usize,
    n0: u64,
    r2: Vec<u64>,
    one_mont: Vec<u64>,
    p_minus_2: BigUint,
    modulus_bits: usize,
}

/// Error constructing an [`FpCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldCtxError {
    /// The modulus was zero, one, or even (Montgomery form needs odd `p >= 3`).
    InvalidModulus,
    /// The modulus failed the primality test.
    NotPrime,
}

impl fmt::Display for FieldCtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldCtxError::InvalidModulus => f.write_str("modulus must be an odd integer >= 3"),
            FieldCtxError::NotPrime => f.write_str("modulus is not prime"),
        }
    }
}

impl std::error::Error for FieldCtxError {}

impl FpCtx {
    /// Creates a field context, verifying the modulus is an odd probable
    /// prime.
    ///
    /// # Errors
    ///
    /// Returns [`FieldCtxError::InvalidModulus`] for even/small moduli and
    /// [`FieldCtxError::NotPrime`] for composite ones.
    pub fn new(p: BigUint) -> Result<Arc<Self>, FieldCtxError> {
        if p.is_even() || p.is_one() || p.is_zero() {
            return Err(FieldCtxError::InvalidModulus);
        }
        if !p.is_probable_prime(40) {
            return Err(FieldCtxError::NotPrime);
        }
        Ok(Arc::new(Self::new_unchecked(p)))
    }

    /// Creates a context without the primality check (used internally by
    /// `BigUint::modpow`, where the modulus need only be odd).
    ///
    /// # Panics
    ///
    /// Panics if `p` is even or `< 3`.
    pub fn new_unchecked(p: BigUint) -> Self {
        assert!(
            !p.is_even() && !p.is_one() && !p.is_zero(),
            "modulus must be odd and >= 3"
        );
        let width = p.limbs().len();
        let p_limbs = p.to_fixed_limbs(width);
        let n0 = mont_neg_inv(p_limbs[0]);
        // R = 2^(64*width); compute R^2 mod p and R mod p by division.
        let r2 = BigUint::one()
            .shl(128 * width)
            .rem(&p)
            .to_fixed_limbs(width);
        let one_mont = BigUint::one().shl(64 * width).rem(&p).to_fixed_limbs(width);
        let p_minus_2 = p.checked_sub(&BigUint::from_u64(2)).expect("p >= 3");
        let modulus_bits = p.bits();
        FpCtx {
            p,
            p_limbs,
            width,
            n0,
            r2,
            one_mont,
            p_minus_2,
            modulus_bits,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.p
    }

    /// Bit length of the modulus (`log p` in the paper's notation).
    pub fn modulus_bits(&self) -> usize {
        self.modulus_bits
    }

    /// Number of 64-bit limbs per element.
    pub fn width(&self) -> usize {
        self.width
    }

    /// CIOS Montgomery multiplication over raw limb vectors.
    pub(crate) fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let n = self.width;
        debug_assert_eq!(a.len(), n);
        debug_assert_eq!(b.len(), n);
        let mut t = vec![0u64; n + 2];
        for &ai in a.iter().take(n) {
            let mut carry = 0u64;
            for j in 0..n {
                let (lo, hi) = mac(t[j], ai, b[j], carry);
                t[j] = lo;
                carry = hi;
            }
            let (lo, hi) = adc(t[n], carry, 0);
            t[n] = lo;
            t[n + 1] = hi;
            let m = t[0].wrapping_mul(self.n0);
            let (_, mut carry2) = mac(t[0], m, self.p_limbs[0], 0);
            for j in 1..n {
                let (lo, hi) = mac(t[j], m, self.p_limbs[j], carry2);
                t[j - 1] = lo;
                carry2 = hi;
            }
            let (lo, hi) = adc(t[n], carry2, 0);
            t[n - 1] = lo;
            t[n] = t[n + 1] + hi;
            t[n + 1] = 0;
        }
        let overflow = t[n] != 0;
        t.truncate(n);
        if overflow || cmp_slices(&t, &self.p_limbs) != std::cmp::Ordering::Less {
            sub_assign_slices(&mut t, &self.p_limbs);
        }
        t
    }

    /// Converts a canonical residue (`< p`) into Montgomery form.
    pub(crate) fn to_mont(&self, v: &BigUint) -> Vec<u64> {
        debug_assert!(v < &self.p);
        self.mont_mul(&v.to_fixed_limbs(self.width), &self.r2)
    }

    /// Converts Montgomery-form limbs back to a canonical [`BigUint`].
    #[allow(clippy::wrong_self_convention)] // converts *out of* Montgomery form, needs the ctx
    pub(crate) fn from_mont(&self, v: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.width];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(v, &one))
    }

    /// Montgomery representation of one.
    pub(crate) fn mont_one(&self) -> Vec<u64> {
        self.one_mont.clone()
    }
}

impl fmt::Debug for FpCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FpCtx")
            .field("bits", &self.modulus_bits)
            .field("p", &format_args!("0x{}", self.p.to_hex()))
            .finish()
    }
}

/// Context-bound constructors returning [`Fp`] elements.
impl FpCtx {
    /// The additive identity of this field.
    pub fn zero(self: &Arc<Self>) -> Fp {
        Fp {
            ctx: Arc::clone(self),
            v: vec![0u64; self.width],
        }
    }

    /// The multiplicative identity of this field.
    pub fn one(self: &Arc<Self>) -> Fp {
        Fp {
            ctx: Arc::clone(self),
            v: self.one_mont.clone(),
        }
    }

    /// Embeds a `u64`.
    pub fn from_u64(self: &Arc<Self>, v: u64) -> Fp {
        self.from_biguint(&BigUint::from_u64(v))
    }

    /// Embeds an arbitrary integer, reducing mod `p`.
    pub fn from_biguint(self: &Arc<Self>, v: &BigUint) -> Fp {
        let reduced = if v < &self.p {
            v.clone()
        } else {
            v.rem(&self.p)
        };
        Fp {
            ctx: Arc::clone(self),
            v: self.to_mont(&reduced),
        }
    }

    /// Embeds a signed integer, reducing into `[0, p)`.
    pub fn from_i64(self: &Arc<Self>, v: i64) -> Fp {
        let f = self.from_u64(v.unsigned_abs());
        if v < 0 {
            -&f
        } else {
            f
        }
    }

    /// Deterministically derives a field element from a seed (xorshift
    /// stream reduced mod p) — used for reproducible test vectors.
    pub fn sample(self: &Arc<Self>, seed: u64) -> Fp {
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        let mut limbs = Vec::with_capacity(self.width + 1);
        for _ in 0..=self.width {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            limbs.push(state);
        }
        self.from_biguint(&BigUint::from_limbs(limbs))
    }
}

/// A prime-field element in Montgomery form, bound to its [`FpCtx`].
#[derive(Clone)]
pub struct Fp {
    ctx: Arc<FpCtx>,
    v: Vec<u64>,
}

impl Fp {
    /// The owning field context.
    pub fn ctx(&self) -> &Arc<FpCtx> {
        &self.ctx
    }

    fn check_ctx(&self, other: &Fp) {
        assert!(
            Arc::ptr_eq(&self.ctx, &other.ctx),
            "mixed elements from different field contexts"
        );
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.v.iter().all(|&l| l == 0)
    }

    /// True iff one.
    pub fn is_one(&self) -> bool {
        self.v == self.ctx.one_mont
    }

    /// Canonical (non-Montgomery) value in `[0, p)`.
    pub fn to_biguint(&self) -> BigUint {
        self.ctx.from_mont(&self.v)
    }

    /// Addition modulo p.
    pub fn add(&self, other: &Fp) -> Fp {
        self.check_ctx(other);
        let mut out = self.v.clone();
        let carry = crate::limbs::add_assign_slices(&mut out, &other.v);
        if carry != 0 || cmp_slices(&out, &self.ctx.p_limbs) != std::cmp::Ordering::Less {
            sub_assign_slices(&mut out, &self.ctx.p_limbs);
        }
        Fp {
            ctx: Arc::clone(&self.ctx),
            v: out,
        }
    }

    /// Subtraction modulo p.
    pub fn sub(&self, other: &Fp) -> Fp {
        self.check_ctx(other);
        let mut out = self.v.clone();
        let borrow = sub_assign_slices(&mut out, &other.v);
        if borrow != 0 {
            crate::limbs::add_assign_slices(&mut out, &self.ctx.p_limbs);
        }
        Fp {
            ctx: Arc::clone(&self.ctx),
            v: out,
        }
    }

    /// Negation modulo p.
    pub fn neg(&self) -> Fp {
        if self.is_zero() {
            return self.clone();
        }
        let mut out = self.ctx.p_limbs.clone();
        sub_assign_slices(&mut out, &self.v);
        Fp {
            ctx: Arc::clone(&self.ctx),
            v: out,
        }
    }

    /// Multiplication modulo p.
    pub fn mul(&self, other: &Fp) -> Fp {
        self.check_ctx(other);
        Fp {
            ctx: Arc::clone(&self.ctx),
            v: self.ctx.mont_mul(&self.v, &other.v),
        }
    }

    /// Squaring modulo p.
    pub fn square(&self) -> Fp {
        Fp {
            ctx: Arc::clone(&self.ctx),
            v: self.ctx.mont_mul(&self.v, &self.v),
        }
    }

    /// Doubling (`2x`), the hardware `DBL` operation.
    pub fn double(&self) -> Fp {
        self.add(self)
    }

    /// Tripling (`3x`), the hardware `TPL` operation.
    pub fn triple(&self) -> Fp {
        self.double().add(self)
    }

    /// Multiplication by a small non-negative integer via an addition chain.
    pub fn mul_small(&self, k: u64) -> Fp {
        let mut acc = self.ctx.zero();
        let mut base = self.clone();
        let mut k = k;
        while k > 0 {
            if k & 1 == 1 {
                acc = acc.add(&base);
            }
            base = base.double();
            k >>= 1;
        }
        acc
    }

    /// Halving: multiplies by the inverse of 2 (exact since p is odd).
    pub fn halve(&self) -> Fp {
        let n = self.to_biguint();
        let half = if n.is_even() {
            n.shr(1)
        } else {
            (&n + self.ctx.modulus()).shr(1)
        };
        self.ctx.from_biguint(&half)
    }

    /// Exponentiation by an arbitrary [`BigUint`] exponent.
    pub fn pow(&self, e: &BigUint) -> Fp {
        let mut acc = self.ctx.one();
        for i in (0..e.bits()).rev() {
            acc = acc.square();
            if e.bit(i) {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem (`x^(p-2)`).
    ///
    /// # Panics
    ///
    /// Panics on zero — inversion of zero is a programming error in every
    /// pairing code path (the single `INV` in the final exponentiation is of
    /// a provably non-zero Miller value).
    pub fn invert(&self) -> Fp {
        assert!(!self.is_zero(), "inversion of zero");
        let e = self.ctx.p_minus_2.clone();
        self.pow(&e)
    }

    /// Square root via Tonelli–Shanks, `None` for quadratic non-residues.
    ///
    /// Uses the `a^((p+1)/4)` fast path when `p ≡ 3 (mod 4)`.
    pub fn sqrt(&self) -> Option<Fp> {
        if self.is_zero() {
            return Some(self.clone());
        }
        if self.legendre() != 1 {
            return None;
        }
        let p = self.ctx.modulus();
        if p.low_u64() & 3 == 3 {
            let e = (p + &BigUint::one()).shr(2);
            let r = self.pow(&e);
            debug_assert_eq!(r.square(), *self);
            return Some(r);
        }
        // General Tonelli–Shanks.
        let p_minus_1 = p.checked_sub(&BigUint::one()).expect("p >= 3");
        let s = p_minus_1.trailing_zeros();
        let q = p_minus_1.shr(s);
        // Deterministic non-residue search.
        let mut z = self.ctx.from_u64(2);
        let mut k = 2u64;
        while z.legendre() != -1 {
            k += 1;
            z = self.ctx.from_u64(k);
        }
        let mut m = s;
        let mut c = z.pow(&q);
        let mut t = self.pow(&q);
        let mut r = self.pow(&(&q + &BigUint::one()).shr(1));
        while !t.is_one() {
            let mut i = 0usize;
            let mut t2 = t.clone();
            while !t2.is_one() {
                t2 = t2.square();
                i += 1;
            }
            let mut b = c;
            for _ in 0..m - i - 1 {
                b = b.square();
            }
            m = i;
            c = b.square();
            t = &t * &c;
            r = &r * &b;
        }
        debug_assert_eq!(r.square(), *self);
        Some(r)
    }

    /// Legendre symbol: `1` for quadratic residue, `-1` for non-residue,
    /// `0` for zero.
    pub fn legendre(&self) -> i8 {
        if self.is_zero() {
            return 0;
        }
        let exp = self
            .ctx
            .modulus()
            .checked_sub(&BigUint::one())
            .expect("p >= 3")
            .shr(1);
        let r = self.pow(&exp);
        if r.is_one() {
            1
        } else {
            -1
        }
    }
}

impl PartialEq for Fp {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.ctx, &other.ctx) && self.v == other.v
    }
}

impl Eq for Fp {}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp(0x{})", self.to_biguint().to_hex())
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_biguint().to_hex())
    }
}

impl std::ops::Add for &Fp {
    type Output = Fp;
    fn add(self, rhs: &Fp) -> Fp {
        Fp::add(self, rhs)
    }
}

impl std::ops::Sub for &Fp {
    type Output = Fp;
    fn sub(self, rhs: &Fp) -> Fp {
        Fp::sub(self, rhs)
    }
}

impl std::ops::Mul for &Fp {
    type Output = Fp;
    fn mul(self, rhs: &Fp) -> Fp {
        Fp::mul(self, rhs)
    }
}

impl std::ops::Neg for &Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        Fp::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Arc<FpCtx> {
        // BLS12-381 prime: a realistic 381-bit modulus.
        let p = BigUint::from_hex(
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab",
        )
        .unwrap();
        FpCtx::new(p).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            FpCtx::new(BigUint::from_u64(8)).unwrap_err(),
            FieldCtxError::InvalidModulus
        );
        assert_eq!(
            FpCtx::new(BigUint::from_u64(9)).unwrap_err(),
            FieldCtxError::NotPrime
        );
        assert!(FpCtx::new(BigUint::from_u64(1_000_000_007)).is_ok());
    }

    #[test]
    fn mont_roundtrip() {
        let c = ctx();
        for seed in 0..20u64 {
            let x = c.sample(seed);
            let back = c.from_biguint(&x.to_biguint());
            assert_eq!(x, back);
        }
    }

    #[test]
    fn field_axioms_sampled() {
        let c = ctx();
        for seed in 0..10u64 {
            let a = c.sample(seed);
            let b = c.sample(seed + 100);
            let d = c.sample(seed + 200);
            assert_eq!(&a + &b, &b + &a);
            assert_eq!(&a * &b, &b * &a);
            assert_eq!(&(&a + &b) + &d, &a + &(&b + &d));
            assert_eq!(&(&a * &b) * &d, &a * &(&b * &d));
            assert_eq!(&a * &(&b + &d), &(&a * &b) + &(&a * &d));
            assert_eq!(&a - &a, c.zero());
            assert_eq!(&a + &-&a, c.zero());
            assert_eq!(&a * &c.one(), a);
        }
    }

    #[test]
    fn inversion_and_fermat() {
        let c = ctx();
        for seed in 1..8u64 {
            let a = c.sample(seed);
            assert_eq!(&a * &a.invert(), c.one());
        }
    }

    #[test]
    #[should_panic(expected = "inversion of zero")]
    fn invert_zero_panics() {
        let c = ctx();
        let _ = c.zero().invert();
    }

    #[test]
    fn small_ops() {
        let c = ctx();
        let a = c.sample(7);
        assert_eq!(a.double(), &a + &a);
        assert_eq!(a.triple(), &(&a + &a) + &a);
        assert_eq!(a.mul_small(5), &a.double().double() + &a);
        assert_eq!(a.halve().double(), a);
        assert_eq!(c.from_i64(-1), -&c.one());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let c = ctx();
        let a = c.sample(3);
        let mut expect = c.one();
        for _ in 0..13 {
            expect = &expect * &a;
        }
        assert_eq!(a.pow(&BigUint::from_u64(13)), expect);
    }

    #[test]
    fn sqrt_roundtrip_both_paths() {
        // p = 3 mod 4 path
        let c = ctx();
        for seed in 1..6u64 {
            let a = c.sample(seed);
            let sq = a.square();
            let r = sq.sqrt().expect("square has root");
            assert!(r == a || r == -&a);
        }
        // p = 1 mod 4 path (Tonelli–Shanks): 1000000007 ≡ 3 mod 4,
        // use 998244353 = 119 * 2^23 + 1 ≡ 1 mod 4.
        let c = FpCtx::new(BigUint::from_u64(998_244_353)).unwrap();
        for seed in 1..6u64 {
            let a = c.sample(seed);
            let sq = a.square();
            let r = sq.sqrt().expect("square has root");
            assert!(r == a || r == -&a);
        }
        // Non-residue returns None: find one by scanning.
        let mut found = false;
        for k in 2..50 {
            let x = c.from_u64(k);
            if x.legendre() == -1 {
                assert!(x.sqrt().is_none());
                found = true;
                break;
            }
        }
        assert!(found);
    }

    #[test]
    fn legendre_of_square_is_one() {
        let c = ctx();
        let a = c.sample(11);
        assert_eq!(a.square().legendre(), 1);
        assert_eq!(c.zero().legendre(), 0);
    }

    #[test]
    #[should_panic(expected = "different field contexts")]
    fn mixing_contexts_panics() {
        let c1 = FpCtx::new(BigUint::from_u64(1_000_000_007)).unwrap();
        let c2 = FpCtx::new(BigUint::from_u64(998_244_353)).unwrap();
        let _ = &c1.one() + &c2.one();
    }
}
