//! Prime-field arithmetic in Montgomery form, allocation-free on the hot
//! path.
//!
//! [`FpCtx`] owns everything derived from the modulus (limb width, `n0'`,
//! `R^2 mod p`); [`Fp`] is a fixed-width element bound to its context via
//! `Arc`, so elements of different fields can never be mixed silently —
//! mixing panics in debug and release alike.
//!
//! # Representation
//!
//! Elements store their limbs inline in a [`Limbs`] value
//! (`[u64; MAX_LIMBS]` plus an active width), sized for the largest
//! Table-2 curve (BN638/BLS12-638 ⇒ [`MAX_LIMBS`]` = 10`). Every field
//! operation — [`Fp::mul`], [`Fp::square`], [`Fp::add`], [`Fp::sub`],
//! [`Fp::neg`] and their `*_assign` forms — runs entirely on the stack:
//! after context construction no heap allocation occurs, matching the
//! paper's premise that the modular-multiplication substrate (`mmul`)
//! dominates pairing cost and must not be throttled by the allocator.
//!
//! Multiplication is CIOS (coarsely integrated operand scanning)
//! Montgomery multiplication, the standard software algorithm matching the
//! word-serial structure of the paper's `mmul` hardware unit. Squaring
//! uses a dedicated kernel ([`FpCtx::mont_sqr_into`]) that computes the
//! `n(n+1)/2` distinct partial products once and doubles them — about half
//! the multiply work of the general kernel — followed by a separated
//! Montgomery reduction. Inversion is Fermat (`x^(p−2)`); batches of
//! inversions should use [`Fp::batch_invert`] (Montgomery's trick: one
//! inversion plus `3(n−1)` multiplications).
//!
//! # When `BigUint` is still the right type
//!
//! [`crate::BigUint`] remains the representation for everything *outside*
//! the field hot path: curve-parameter synthesis (evaluating family
//! polynomials), exponent bookkeeping (final-exponentiation chains, NAF
//! recoding), primality testing, and moduli wider than [`MAX_LIMBS`]
//! limbs (e.g. `BigUint::modpow` over p^k-sized integers). Converting
//! between the two costs one Montgomery multiplication and should never
//! appear inside a loop.

use crate::limbs::{
    adc, add_assign_slices, cmp_slices, mac, mont_neg_inv, sub_assign_slices, Limbs, MAX_LIMBS,
};
use crate::BigUint;
use std::fmt;
use std::sync::Arc;

/// Context for a prime field F_p: the modulus and Montgomery constants.
///
/// # Examples
///
/// ```
/// use finesse_ff::{BigUint, FpCtx};
///
/// let p = BigUint::from_u64(1_000_000_007);
/// let ctx = FpCtx::new(p).unwrap();
/// let a = ctx.from_u64(3);
/// let b = ctx.from_u64(5);
/// assert_eq!((&a * &b).to_biguint(), BigUint::from_u64(15));
/// ```
pub struct FpCtx {
    p: BigUint,
    p_limbs: Limbs,
    width: usize,
    n0: u64,
    r2: Limbs,
    one_mont: Limbs,
    p_minus_2: BigUint,
    modulus_bits: usize,
    /// `p²` over `2·width` limbs — the offset added to double-width
    /// accumulators before a subtraction so lazy kernels never go negative.
    p2: [u64; 2 * MAX_LIMBS],
    /// `64·width − modulus_bits`: spare bits above the modulus in a
    /// single-width buffer. An unreduced value bounded by `k·p` is
    /// representable iff `k ≤ 2^headroom`, and a double-width value
    /// bounded by `k·p²` is Montgomery-reducible iff `k ≤ 2^headroom`
    /// (both reduce to `k·p ≤ R`).
    headroom: u32,
}

/// A single-width value under *incomplete* (lazy) reduction: the integer
/// is only guaranteed to be `< bound·p`, not `< p`.
///
/// Produced and consumed by the `*_noreduce` kernels; the `bound` field is
/// threaded through every operation and debug-asserted against the
/// context's [`FpCtx::headroom_bits`] envelope, so a chain that could
/// overflow the inline buffers fails loudly in debug builds (the
/// differential tests drive every chain at the 10-limb `MAX_LIMBS` edge).
#[derive(Clone, Copy, Debug)]
pub struct Unreduced {
    v: Limbs,
    /// The value is `< bound · p`.
    bound: u32,
}

impl Unreduced {
    /// The raw limbs (value `< bound()·p`, same width as the field).
    pub fn limbs(&self) -> &Limbs {
        &self.v
    }

    /// The tracked bound multiple: the value is `< bound·p`.
    pub fn bound(&self) -> u32 {
        self.bound
    }
}

/// A double-width Montgomery accumulator: the plain (un-reduced) product
/// of two single-width values, or a ± combination of such products.
///
/// Karatsuba cross terms accumulate here *before* any Montgomery
/// reduction, so an F_p2/F_q multiplication pays one [`FpCtx::redc_into`]
/// per output coefficient instead of one interleaved reduction per
/// sub-product. The value is interpreted mod `2^(128·width)`; subtraction
/// may wrap transiently as long as the final accumulated value is the true
/// non-negative integer (lazy call sites add a `k·p²` offset via
/// [`FpCtx::wide_add_kp2`] where an operand could otherwise dominate).
#[derive(Clone, Copy, Debug)]
pub struct WideAcc {
    w: [u64; 2 * MAX_LIMBS],
    /// Upper bound on the accumulated value as a multiple of `p²`.
    bound: u32,
}

impl WideAcc {
    /// The raw double-width limbs (little-endian, zero-padded).
    pub fn limbs(&self) -> &[u64] {
        &self.w
    }

    /// Upper bound on the value as a multiple of `p²`.
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Tightens the tracked bound to a caller-proven value.
    ///
    /// Interval tracking through `±` chains is conservative (subtracting a
    /// non-negative quantity cannot raise a bound, but the tracker keeps
    /// the operand sum); call sites that know a tighter mathematical bound
    /// — e.g. a Karatsuba cross term `(a0+a1)(b0+b1) − a0b0 − a1b1 =
    /// a0b1 + a1b0 < 2p²` — annotate it here. Must only tighten.
    pub fn assume_bound(&mut self, bound: u32) {
        debug_assert!(
            bound <= self.bound,
            "assume_bound may only tighten ({bound} > {})",
            self.bound
        );
        self.bound = bound;
    }
}

/// Error constructing an [`FpCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldCtxError {
    /// The modulus was zero, one, or even (Montgomery form needs odd `p >= 3`).
    InvalidModulus,
    /// The modulus failed the primality test.
    NotPrime,
    /// The modulus needs more than [`MAX_LIMBS`] limbs; wider moduli
    /// belong to [`BigUint::modpow`]'s arbitrary-width path.
    TooWide,
}

impl fmt::Display for FieldCtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldCtxError::InvalidModulus => f.write_str("modulus must be an odd integer >= 3"),
            FieldCtxError::NotPrime => f.write_str("modulus is not prime"),
            FieldCtxError::TooWide => write!(
                f,
                "modulus exceeds {MAX_LIMBS} limbs ({} bits)",
                64 * MAX_LIMBS
            ),
        }
    }
}

impl std::error::Error for FieldCtxError {}

/// Error decoding a field element from canonical bytes
/// ([`FpCtx::from_bytes_be`], [`crate::TowerCtx::fq_from_bytes_be`]).
///
/// Encodings are strict: exactly [`FpCtx::byte_len`] big-endian bytes per
/// base-field coefficient, value `< p`. Anything else is rejected — a
/// decoded element re-encodes to the identical bytes, so untrusted input
/// has exactly one accepted representation per field element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldBytesError {
    /// The byte slice has the wrong length for this field.
    Length {
        /// Bytes the codec expects ([`FpCtx::byte_len`] per coefficient).
        expected: usize,
        /// Bytes actually supplied.
        got: usize,
    },
    /// The encoded integer is `>= p` — a valid residue has exactly one
    /// canonical representative, so out-of-range limbs are rejected
    /// rather than silently reduced.
    NonCanonical,
}

impl fmt::Display for FieldBytesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldBytesError::Length { expected, got } => {
                write!(f, "field encoding must be {expected} bytes, got {got}")
            }
            FieldBytesError::NonCanonical => {
                f.write_str("field encoding is not a canonical residue (value >= p)")
            }
        }
    }
}

impl std::error::Error for FieldBytesError {}

impl FpCtx {
    /// Creates a field context, verifying the modulus is an odd probable
    /// prime.
    ///
    /// # Errors
    ///
    /// Returns [`FieldCtxError::InvalidModulus`] for even/small moduli,
    /// [`FieldCtxError::TooWide`] beyond [`MAX_LIMBS`] limbs, and
    /// [`FieldCtxError::NotPrime`] for composite ones.
    pub fn new(p: BigUint) -> Result<Arc<Self>, FieldCtxError> {
        if p.is_even() || p.is_one() || p.is_zero() {
            return Err(FieldCtxError::InvalidModulus);
        }
        if p.limbs().len() > MAX_LIMBS {
            return Err(FieldCtxError::TooWide);
        }
        if !p.is_probable_prime(40) {
            return Err(FieldCtxError::NotPrime);
        }
        Ok(Arc::new(Self::new_unchecked(p)))
    }

    /// Creates a context without the primality check (any odd modulus).
    ///
    /// # Panics
    ///
    /// Panics if `p` is even, `< 3`, or wider than [`MAX_LIMBS`] limbs —
    /// wider moduli belong to [`BigUint::modpow`], which carries its own
    /// arbitrary-width Montgomery path.
    pub fn new_unchecked(p: BigUint) -> Self {
        assert!(
            !p.is_even() && !p.is_one() && !p.is_zero(),
            "modulus must be odd and >= 3"
        );
        let width = p.limbs().len();
        assert!(
            width <= MAX_LIMBS,
            "modulus has {width} limbs; FpCtx supports at most {MAX_LIMBS} (640 bits)"
        );
        let p_limbs = Limbs::from_slice(&p.to_fixed_limbs(width));
        let n0 = mont_neg_inv(p_limbs.as_slice()[0]);
        // R = 2^(64*width); compute R^2 mod p and R mod p by division.
        let r2 = Limbs::from_slice(
            &BigUint::one()
                .shl(128 * width)
                .rem(&p)
                .to_fixed_limbs(width),
        );
        let one_mont =
            Limbs::from_slice(&BigUint::one().shl(64 * width).rem(&p).to_fixed_limbs(width));
        // p >= 3 was asserted above, so the subtraction cannot underflow.
        let p_minus_2 = p.checked_sub(&BigUint::from_u64(2)).unwrap_or_default();
        let modulus_bits = p.bits();
        let mut p2 = [0u64; 2 * MAX_LIMBS];
        p2[..2 * width].copy_from_slice(&(&p * &p).to_fixed_limbs(2 * width));
        let headroom = (64 * width - modulus_bits) as u32;
        FpCtx {
            p,
            p_limbs,
            width,
            n0,
            r2,
            one_mont,
            p_minus_2,
            modulus_bits,
            p2,
            headroom,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.p
    }

    /// Bit length of the modulus (`log p` in the paper's notation).
    pub fn modulus_bits(&self) -> usize {
        self.modulus_bits
    }

    /// Number of 64-bit limbs per element.
    pub fn width(&self) -> usize {
        self.width
    }

    /// CIOS Montgomery multiplication into a caller-provided output:
    /// `out = a · b · R⁻¹ mod p`. Scratch lives on the stack; nothing
    /// allocates.
    ///
    /// Works directly on the fixed `[u64; MAX_LIMBS]` backing arrays with
    /// `n` clamped to [`MAX_LIMBS`], so every index is provably in bounds
    /// and the checks compile away (the slice-generic kernel in
    /// [`crate::limbs`] serves the arbitrary-width `modpow` path instead).
    #[inline]
    pub fn mont_mul_into(&self, out: &mut Limbs, a: &Limbs, b: &Limbs) {
        let n = self.width.min(MAX_LIMBS);
        debug_assert_eq!(a.len(), n, "operand width mismatch");
        debug_assert_eq!(b.len(), n, "operand width mismatch");
        let pv = &self.p_limbs.buf;
        let mut t = [0u64; MAX_LIMBS + 2];
        self.cios_rounds(&mut t, &a.buf, &b.buf, n);
        let overflow = t[n] != 0;
        out.buf[..n].copy_from_slice(&t[..n]);
        out.len = n;
        let os = out.as_mut_slice();
        if overflow || cmp_slices(os, &pv[..n]) != std::cmp::Ordering::Less {
            sub_assign_slices(os, &pv[..n]);
        }
    }

    /// The interleaved CIOS rounds shared by [`FpCtx::mont_mul_into`] and
    /// [`FpCtx::mont_mul_noreduce_into`]: on return `t[..n]` plus the
    /// overflow limb `t[n]` hold `a·b·R⁻¹` before any final subtraction.
    #[inline]
    fn cios_rounds(
        &self,
        t: &mut [u64; MAX_LIMBS + 2],
        av: &[u64; MAX_LIMBS],
        bv: &[u64; MAX_LIMBS],
        n: usize,
    ) {
        let pv = &self.p_limbs.buf;
        for &ai in av.iter().take(n) {
            let mut carry = 0u64;
            for (j, &bj) in bv.iter().enumerate().take(n) {
                let (lo, hi) = mac(t[j], ai, bj, carry);
                t[j] = lo;
                carry = hi;
            }
            let (lo, hi) = adc(t[n], carry, 0);
            t[n] = lo;
            t[n + 1] = hi;
            let m = t[0].wrapping_mul(self.n0);
            let (_, mut carry2) = mac(t[0], m, pv[0], 0);
            for j in 1..n {
                let (lo, hi) = mac(t[j], m, pv[j], carry2);
                t[j - 1] = lo;
                carry2 = hi;
            }
            let (lo, hi) = adc(t[n], carry2, 0);
            t[n - 1] = lo;
            t[n] = t[n + 1] + hi;
            t[n + 1] = 0;
        }
    }

    /// CIOS Montgomery multiplication that *defers the final conditional
    /// subtraction*: `out ≡ a·b·R⁻¹ (mod p)` with `out < 2p`, not `< p`.
    ///
    /// Sound only when `bound(a)·bound(b)·p ≤ R` (two spare bits cover the
    /// standard `2p × 2p` case); the [`Unreduced`]-typed wrapper
    /// [`FpCtx::mul_noreduce`] debug-asserts this against the context's
    /// headroom. With the bound satisfied the result fits the active width
    /// exactly (the overflow limb is provably zero).
    #[inline]
    pub fn mont_mul_noreduce_into(&self, out: &mut Limbs, a: &Limbs, b: &Limbs) {
        let n = self.width.min(MAX_LIMBS);
        debug_assert_eq!(a.len(), n, "operand width mismatch");
        debug_assert_eq!(b.len(), n, "operand width mismatch");
        let mut t = [0u64; MAX_LIMBS + 2];
        self.cios_rounds(&mut t, &a.buf, &b.buf, n);
        debug_assert_eq!(t[n], 0, "noreduce product exceeded 2p (bound violated)");
        out.buf[..n].copy_from_slice(&t[..n]);
        out.len = n;
    }

    /// Dedicated Montgomery squaring deferring the final conditional
    /// subtraction (same contract as [`FpCtx::mont_mul_noreduce_into`]).
    #[inline]
    pub fn mont_sqr_noreduce_into(&self, out: &mut Limbs, a: &Limbs) {
        let n = self.width.min(MAX_LIMBS);
        debug_assert_eq!(a.len(), n, "operand width mismatch");
        let mut t = Self::sqr_phase(&a.buf, n);
        let carry2 = self.redc_rounds(&mut t, n);
        debug_assert_eq!(carry2, 0, "noreduce square exceeded 2p (bound violated)");
        out.buf[..n].copy_from_slice(&t[n..2 * n]);
        out.len = n;
    }

    /// Schoolbook double-width square of the active limbs: the
    /// `n(n+1)/2` distinct partial products computed once, cross products
    /// doubled by a fused one-bit shift, diagonals folded in.
    #[inline]
    fn sqr_phase(av: &[u64; MAX_LIMBS], n: usize) -> [u64; 2 * MAX_LIMBS] {
        let mut t = [0u64; 2 * MAX_LIMBS];
        // Off-diagonal products a_i · a_j for j > i.
        for i in 0..n {
            let ai = av[i];
            let mut carry = 0u64;
            for j in (i + 1)..n {
                let (lo, hi) = mac(t[i + j], ai, av[j], carry);
                t[i + j] = lo;
                carry = hi;
            }
            t[i + n] = carry;
        }
        // Single fused pass: double each cross-product limb (one-bit shift
        // across the buffer) and fold in the diagonal a_i² terms.
        let mut shift_top = 0u64;
        let mut add_carry = 0u64;
        for i in 0..n {
            let d = t[2 * i];
            let doubled = (d << 1) | shift_top;
            shift_top = d >> 63;
            let (lo, hi) = mac(doubled, av[i], av[i], add_carry);
            t[2 * i] = lo;
            let d = t[2 * i + 1];
            let doubled = (d << 1) | shift_top;
            shift_top = d >> 63;
            let (lo, c) = adc(doubled, hi, 0);
            t[2 * i + 1] = lo;
            add_carry = c;
        }
        t
    }

    /// The `n` rounds of separated Montgomery reduction on a double-width
    /// buffer; afterwards `t[n..2n]` (plus the returned carry) holds
    /// `T·R⁻¹` before the final conditional subtraction.
    #[inline]
    fn redc_rounds(&self, t: &mut [u64; 2 * MAX_LIMBS], n: usize) -> u64 {
        let pv = &self.p_limbs.buf;
        let mut carry2 = 0u64;
        for i in 0..n {
            let m = t[i].wrapping_mul(self.n0);
            let (_, mut carry) = mac(t[i], m, pv[0], 0);
            for j in 1..n {
                let (lo, hi) = mac(t[i + j], m, pv[j], carry);
                t[i + j] = lo;
                carry = hi;
            }
            let (lo, hi) = adc(t[i + n], carry, carry2);
            t[i + n] = lo;
            carry2 = hi;
        }
        carry2
    }

    /// Dedicated Montgomery squaring into a caller-provided output:
    /// `out = a² · R⁻¹ mod p`, computing roughly half the partial products
    /// of the general multiply (shared cross products doubled by a one-bit
    /// shift, then a separated Montgomery reduction).
    #[inline]
    pub fn mont_sqr_into(&self, out: &mut Limbs, a: &Limbs) {
        let n = self.width.min(MAX_LIMBS);
        debug_assert_eq!(a.len(), n, "operand width mismatch");
        let mut t = Self::sqr_phase(&a.buf, n);
        let carry2 = self.redc_rounds(&mut t, n);
        let pv = &self.p_limbs.buf;
        out.buf[..n].copy_from_slice(&t[n..2 * n]);
        out.len = n;
        let os = out.as_mut_slice();
        if carry2 != 0 || cmp_slices(os, &pv[..n]) != std::cmp::Ordering::Less {
            sub_assign_slices(os, &pv[..n]);
        }
    }

    /// Spare bits above the modulus in a single-width buffer
    /// (`64·width − modulus_bits`); the lazy-reduction envelope.
    pub fn headroom_bits(&self) -> u32 {
        self.headroom
    }

    /// Largest admissible bound multiple for unreduced values in this
    /// field: `2^headroom`, capped to keep the arithmetic in `u32`.
    fn max_bound(&self) -> u32 {
        1u32 << self.headroom.min(16)
    }

    /// Wraps raw little-endian limbs as an [`Unreduced`] value, *checking*
    /// `value < bound·p` (this is the test-facing constructor; hot paths
    /// build `Unreduced` values through [`Fp::as_unreduced`] and the
    /// kernels).
    ///
    /// # Panics
    ///
    /// Panics if the value is out of bounds, the slice is wider than the
    /// field, or `bound` exceeds the headroom envelope.
    pub fn unreduced_from_limbs(&self, limbs: &[u64], bound: u32) -> Unreduced {
        assert!(limbs.len() <= self.width, "slice wider than the field");
        assert!(bound <= self.max_bound(), "bound exceeds headroom envelope");
        let value = BigUint::from_limbs(limbs.to_vec());
        let limit = &BigUint::from_u64(bound as u64) * &self.p;
        assert!(value < limit, "value is not < bound·p");
        let mut v = Limbs::zero(self.width);
        v.buf[..limbs.len()].copy_from_slice(limbs);
        Unreduced { v, bound }
    }

    /// Addition without reduction: `a + b`, bound `bound(a) + bound(b)`.
    ///
    /// No comparison, no conditional subtraction — the sum is only
    /// required to stay inside the headroom envelope (debug-asserted).
    #[inline]
    pub fn add_noreduce(&self, a: &Unreduced, b: &Unreduced) -> Unreduced {
        let n = self.width;
        let bound = a.bound + b.bound;
        debug_assert!(bound <= self.max_bound(), "unreduced sum exceeds headroom");
        let mut v = a.v;
        let carry = add_assign_slices(&mut v.buf[..n], &b.v.buf[..n]);
        debug_assert_eq!(carry, 0, "unreduced sum overflowed the limb width");
        Unreduced { v, bound }
    }

    /// Subtraction kept non-negative by a `k·p` offset: `a + k·p − b`,
    /// bound `bound(a) + k`. Requires `bound(b) ≤ k` so the offset
    /// dominates the subtrahend (debug-asserted, along with the envelope).
    #[inline]
    pub fn sub_with_kp(&self, a: &Unreduced, b: &Unreduced, k: u32) -> Unreduced {
        let n = self.width;
        debug_assert!(b.bound <= k, "k·p does not dominate the subtrahend");
        let bound = a.bound + k;
        debug_assert!(
            bound <= self.max_bound(),
            "unreduced difference exceeds headroom"
        );
        let mut v = a.v;
        for _ in 0..k {
            let carry = add_assign_slices(&mut v.buf[..n], &self.p_limbs.buf[..n]);
            debug_assert_eq!(carry, 0, "k·p offset overflowed the limb width");
        }
        let borrow = sub_assign_slices(&mut v.buf[..n], &b.v.buf[..n]);
        debug_assert_eq!(borrow, 0, "subtrahend exceeded a + k·p");
        Unreduced { v, bound }
    }

    /// Plain double-width product `a·b` — *no* Montgomery reduction at
    /// all. Karatsuba call sites accumulate several of these into one
    /// [`WideAcc`] and reduce once via [`FpCtx::redc_into`].
    #[inline]
    pub fn mul_wide(&self, a: &Unreduced, b: &Unreduced) -> WideAcc {
        let n = self.width.min(MAX_LIMBS);
        let bound = a.bound.saturating_mul(b.bound);
        debug_assert!(bound <= self.max_bound(), "wide product exceeds headroom");
        let bv = &b.v.buf;
        let mut w = [0u64; 2 * MAX_LIMBS];
        for (i, &ai) in a.v.buf.iter().enumerate().take(n) {
            let mut carry = 0u64;
            for (j, &bj) in bv.iter().enumerate().take(n) {
                let (lo, hi) = mac(w[i + j], ai, bj, carry);
                w[i + j] = lo;
                carry = hi;
            }
            w[i + n] = carry;
        }
        WideAcc { w, bound }
    }

    /// Plain double-width square (half the partial products of
    /// [`FpCtx::mul_wide`]), no reduction.
    #[inline]
    pub fn sqr_wide(&self, a: &Unreduced) -> WideAcc {
        let n = self.width.min(MAX_LIMBS);
        let bound = a.bound.saturating_mul(a.bound);
        debug_assert!(bound <= self.max_bound(), "wide square exceeds headroom");
        WideAcc {
            w: Self::sqr_phase(&a.v.buf, n),
            bound,
        }
    }

    /// Double-width accumulation: `acc += x`.
    #[inline]
    pub fn wide_add_assign(&self, acc: &mut WideAcc, x: &WideAcc) {
        let n2 = 2 * self.width;
        let _ = add_assign_slices(&mut acc.w[..n2], &x.w[..n2]);
        acc.bound += x.bound;
    }

    /// Double-width subtraction: `acc -= x`, wrapping mod `2^(128·width)`.
    ///
    /// A transiently wrapped (negative) accumulator is fine — limb
    /// arithmetic is associative mod `2^(128·width)` — provided the
    /// *final* accumulated value handed to [`FpCtx::redc_into`] is the
    /// true non-negative integer (add a [`FpCtx::wide_add_kp2`] offset
    /// where an operand could otherwise dominate). The upper bound is
    /// unchanged: subtracting a non-negative value cannot raise it.
    #[inline]
    pub fn wide_sub_assign(&self, acc: &mut WideAcc, x: &WideAcc) {
        let n2 = 2 * self.width;
        let _ = sub_assign_slices(&mut acc.w[..n2], &x.w[..n2]);
    }

    /// Adds the `k·p²` offset that keeps a following subtraction
    /// non-negative: `acc += k·p²`, bound `+k`.
    #[inline]
    pub fn wide_add_kp2(&self, acc: &mut WideAcc, k: u32) {
        let n2 = 2 * self.width;
        for _ in 0..k {
            let _ = add_assign_slices(&mut acc.w[..n2], &self.p2[..n2]);
        }
        acc.bound += k;
    }

    /// Separated Montgomery reduction of a double-width accumulator to a
    /// *canonical* residue: `out = t·R⁻¹ mod p`, `out < p`.
    ///
    /// Requires `t < p·R`, which the bound envelope guarantees
    /// (`bound ≤ 2^headroom ⇒ bound·p² ≤ p·R`); debug builds additionally
    /// verify the high half of the buffer directly, which catches a
    /// wrapped or over-accumulated value on real data regardless of the
    /// bound bookkeeping.
    #[inline]
    pub fn redc_into(&self, out: &mut Limbs, t: &WideAcc) {
        let n = self.width.min(MAX_LIMBS);
        debug_assert!(t.bound <= self.max_bound(), "REDC input exceeds headroom");
        debug_assert!(
            cmp_slices(&t.w[n..2 * n], &self.p_limbs.buf[..n]) == std::cmp::Ordering::Less,
            "REDC input is not < p·R (bound annotation violated or value wrapped)"
        );
        let mut buf = t.w;
        let carry2 = self.redc_rounds(&mut buf, n);
        let pv = &self.p_limbs.buf;
        out.buf[..n].copy_from_slice(&buf[n..2 * n]);
        out.len = n;
        let os = out.as_mut_slice();
        if carry2 != 0 || cmp_slices(os, &pv[..n]) != std::cmp::Ordering::Less {
            sub_assign_slices(os, &pv[..n]);
        }
    }

    /// By-value form of [`FpCtx::redc_into`].
    #[inline]
    pub fn redc(&self, t: &WideAcc) -> Limbs {
        let mut out = Limbs::zero(self.width);
        self.redc_into(&mut out, t);
        out
    }

    /// [`Unreduced`]-typed wrapper over [`FpCtx::mont_mul_noreduce_into`]:
    /// Montgomery product with the final subtraction deferred, output
    /// bound `2p`.
    #[inline]
    pub fn mul_noreduce(&self, a: &Unreduced, b: &Unreduced) -> Unreduced {
        debug_assert!(
            a.bound.saturating_mul(b.bound) <= self.max_bound(),
            "noreduce product operands exceed headroom"
        );
        let mut v = Limbs::zero(self.width);
        self.mont_mul_noreduce_into(&mut v, &a.v, &b.v);
        Unreduced { v, bound: 2 }
    }

    /// [`Unreduced`]-typed wrapper over [`FpCtx::mont_sqr_noreduce_into`].
    #[inline]
    pub fn sqr_noreduce(&self, a: &Unreduced) -> Unreduced {
        debug_assert!(
            a.bound.saturating_mul(a.bound) <= self.max_bound(),
            "noreduce square operand exceeds headroom"
        );
        let mut v = Limbs::zero(self.width);
        self.mont_sqr_noreduce_into(&mut v, &a.v);
        Unreduced { v, bound: 2 }
    }

    /// Fully reduces an [`Unreduced`] value to its canonical residue
    /// (at most `bound − 1` conditional subtractions).
    #[inline]
    pub fn reduce(&self, a: &Unreduced) -> Limbs {
        let n = self.width;
        let mut v = a.v;
        let pv = &self.p_limbs.buf[..n];
        while cmp_slices(&v.buf[..n], pv) != std::cmp::Ordering::Less {
            sub_assign_slices(&mut v.buf[..n], pv);
        }
        v
    }

    /// By-value Montgomery multiplication ([`Limbs`] is `Copy`, so this is
    /// still allocation-free).
    #[inline]
    pub(crate) fn mont_mul(&self, a: &Limbs, b: &Limbs) -> Limbs {
        let mut out = Limbs::zero(self.width);
        self.mont_mul_into(&mut out, a, b);
        out
    }

    /// By-value Montgomery squaring.
    #[inline]
    pub(crate) fn mont_sqr(&self, a: &Limbs) -> Limbs {
        let mut out = Limbs::zero(self.width);
        self.mont_sqr_into(&mut out, a);
        out
    }

    /// Converts a canonical residue (`< p`) into Montgomery form.
    pub(crate) fn to_mont(&self, v: &BigUint) -> Limbs {
        debug_assert!(v < &self.p);
        self.mont_mul(&Limbs::from_slice(&v.to_fixed_limbs(self.width)), &self.r2)
    }

    /// Converts Montgomery-form limbs back to a canonical [`BigUint`].
    #[allow(clippy::wrong_self_convention)] // converts *out of* Montgomery form, needs the ctx
    pub(crate) fn from_mont(&self, v: &Limbs) -> BigUint {
        let mut one = Limbs::zero(self.width);
        one.as_mut_slice()[0] = 1;
        BigUint::from_limbs(self.mont_mul(v, &one).as_slice().to_vec())
    }

    /// Montgomery representation of one (borrowed — callers copy only when
    /// they actually need ownership).
    pub(crate) fn mont_one(&self) -> &Limbs {
        &self.one_mont
    }
}

impl fmt::Debug for FpCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FpCtx")
            .field("bits", &self.modulus_bits)
            .field("p", &format_args!("0x{}", self.p.to_hex()))
            .finish()
    }
}

/// Context-bound constructors returning [`Fp`] elements.
impl FpCtx {
    /// The additive identity of this field.
    pub fn zero(self: &Arc<Self>) -> Fp {
        Fp {
            ctx: Arc::clone(self),
            v: Limbs::zero(self.width),
        }
    }

    /// The multiplicative identity of this field.
    pub fn one(self: &Arc<Self>) -> Fp {
        Fp {
            ctx: Arc::clone(self),
            v: *self.mont_one(),
        }
    }

    /// Embeds a `u64`.
    pub fn from_u64(self: &Arc<Self>, v: u64) -> Fp {
        self.from_biguint(&BigUint::from_u64(v))
    }

    /// Embeds an arbitrary integer, reducing mod `p`.
    pub fn from_biguint(self: &Arc<Self>, v: &BigUint) -> Fp {
        let reduced = if v < &self.p {
            v.clone()
        } else {
            v.rem(&self.p)
        };
        Fp {
            ctx: Arc::clone(self),
            v: self.to_mont(&reduced),
        }
    }

    /// Embeds a signed integer, reducing into `[0, p)`.
    pub fn from_i64(self: &Arc<Self>, v: i64) -> Fp {
        let f = self.from_u64(v.unsigned_abs());
        if v < 0 {
            -&f
        } else {
            f
        }
    }

    /// Deterministically derives a field element from a seed (xorshift
    /// stream reduced mod p) — used for reproducible test vectors.
    pub fn sample(self: &Arc<Self>, seed: u64) -> Fp {
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        let mut limbs = Vec::with_capacity(self.width + 1);
        for _ in 0..=self.width {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            limbs.push(state);
        }
        self.from_biguint(&BigUint::from_limbs(limbs))
    }

    /// Bytes in the canonical encoding of one field element:
    /// `⌈bits(p)/8⌉`, big-endian, zero-padded to fixed width.
    pub fn byte_len(&self) -> usize {
        self.modulus_bits.div_ceil(8)
    }

    /// Decodes a canonical big-endian field element.
    ///
    /// Strict: the slice must be exactly [`FpCtx::byte_len`] bytes and the
    /// encoded integer must be `< p`. Together with [`Fp::to_bytes_be`]
    /// this makes the encoding a bijection on field elements — untrusted
    /// bytes have exactly one accepted form per residue.
    ///
    /// # Errors
    ///
    /// [`FieldBytesError::Length`] on a wrong-sized slice,
    /// [`FieldBytesError::NonCanonical`] when the value is `>= p`.
    pub fn from_bytes_be(self: &Arc<Self>, bytes: &[u8]) -> Result<Fp, FieldBytesError> {
        let expected = self.byte_len();
        if bytes.len() != expected {
            return Err(FieldBytesError::Length {
                expected,
                got: bytes.len(),
            });
        }
        // Little-endian limbs from big-endian bytes.
        let mut limbs = vec![0u64; expected.div_ceil(8)];
        for (i, &b) in bytes.iter().rev().enumerate() {
            limbs[i / 8] |= (b as u64) << (8 * (i % 8));
        }
        let v = BigUint::from_limbs(limbs);
        if v >= self.p {
            return Err(FieldBytesError::NonCanonical);
        }
        Ok(self.from_biguint(&v))
    }
}

/// A prime-field element in Montgomery form, bound to its [`FpCtx`].
///
/// The limbs live inline ([`Limbs`]); cloning copies a stack buffer and
/// bumps the context's `Arc` refcount — no field operation allocates.
#[derive(Clone)]
pub struct Fp {
    ctx: Arc<FpCtx>,
    pub(crate) v: Limbs,
}

impl Fp {
    /// The owning field context.
    pub fn ctx(&self) -> &Arc<FpCtx> {
        &self.ctx
    }

    /// Wraps canonical Montgomery-form limbs produced by the lazy kernels
    /// (e.g. [`FpCtx::redc_into`]) back into a field element.
    pub(crate) fn from_mont_limbs(ctx: &Arc<FpCtx>, v: Limbs) -> Fp {
        debug_assert!(
            cmp_slices(v.as_slice(), ctx.p_limbs.as_slice()) == std::cmp::Ordering::Less,
            "limbs are not a canonical residue"
        );
        Fp {
            ctx: Arc::clone(ctx),
            v,
        }
    }

    /// Views this (canonical, `< p`) element as an [`Unreduced`] value of
    /// bound 1, entering the lazy-reduction kernels.
    #[inline]
    pub fn as_unreduced(&self) -> Unreduced {
        Unreduced {
            v: self.v,
            bound: 1,
        }
    }

    fn check_ctx(&self, other: &Fp) {
        assert!(
            Arc::ptr_eq(&self.ctx, &other.ctx),
            "mixed elements from different field contexts"
        );
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.v.is_zero()
    }

    /// True iff one.
    pub fn is_one(&self) -> bool {
        self.v == self.ctx.one_mont
    }

    /// Canonical (non-Montgomery) value in `[0, p)`.
    pub fn to_biguint(&self) -> BigUint {
        self.ctx.from_mont(&self.v)
    }

    /// Canonical big-endian encoding: exactly [`FpCtx::byte_len`] bytes,
    /// the unique fixed-width representation of the residue in `[0, p)`.
    /// Inverse of [`FpCtx::from_bytes_be`].
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let len = self.ctx.byte_len();
        let mut out = vec![0u8; len];
        let canonical = self.to_biguint();
        for (i, limb) in canonical.limbs().iter().enumerate() {
            for j in 0..8 {
                let byte_idx = 8 * i + j;
                if byte_idx < len {
                    out[len - 1 - byte_idx] = (limb >> (8 * j)) as u8;
                }
            }
        }
        out
    }

    /// In-place addition modulo p: `self += other`.
    #[inline]
    pub fn add_assign(&mut self, other: &Fp) {
        self.check_ctx(other);
        let p = &self.ctx.p_limbs;
        let out = self.v.as_mut_slice();
        let carry = add_assign_slices(out, other.v.as_slice());
        if carry != 0 || cmp_slices(out, p.as_slice()) != std::cmp::Ordering::Less {
            sub_assign_slices(out, p.as_slice());
        }
    }

    /// In-place subtraction modulo p: `self -= other`.
    #[inline]
    pub fn sub_assign(&mut self, other: &Fp) {
        self.check_ctx(other);
        let p = &self.ctx.p_limbs;
        let out = self.v.as_mut_slice();
        let borrow = sub_assign_slices(out, other.v.as_slice());
        if borrow != 0 {
            add_assign_slices(out, p.as_slice());
        }
    }

    /// In-place negation modulo p: `self = -self`.
    #[inline]
    pub fn neg_assign(&mut self) {
        if self.is_zero() {
            return;
        }
        let mut out = self.ctx.p_limbs;
        sub_assign_slices(out.as_mut_slice(), self.v.as_slice());
        self.v = out;
    }

    /// In-place multiplication modulo p: `self *= other`.
    #[inline]
    pub fn mul_assign(&mut self, other: &Fp) {
        self.check_ctx(other);
        let v = self.v;
        self.ctx.mont_mul_into(&mut self.v, &v, &other.v);
    }

    /// In-place squaring modulo p (dedicated squaring kernel).
    #[inline]
    pub fn square_assign(&mut self) {
        let v = self.v;
        self.ctx.mont_sqr_into(&mut self.v, &v);
    }

    /// Addition modulo p.
    #[inline]
    pub fn add(&self, other: &Fp) -> Fp {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Subtraction modulo p.
    #[inline]
    pub fn sub(&self, other: &Fp) -> Fp {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Negation modulo p.
    #[inline]
    pub fn neg(&self) -> Fp {
        let mut out = self.clone();
        out.neg_assign();
        out
    }

    /// Multiplication modulo p.
    #[inline]
    pub fn mul(&self, other: &Fp) -> Fp {
        self.check_ctx(other);
        Fp {
            ctx: Arc::clone(&self.ctx),
            v: self.ctx.mont_mul(&self.v, &other.v),
        }
    }

    /// Squaring modulo p, via the dedicated CIOS squaring kernel (~½ the
    /// partial products of a general multiply).
    #[inline]
    pub fn square(&self) -> Fp {
        Fp {
            ctx: Arc::clone(&self.ctx),
            v: self.ctx.mont_sqr(&self.v),
        }
    }

    /// Doubling (`2x`), the hardware `DBL` operation.
    pub fn double(&self) -> Fp {
        self.add(self)
    }

    /// Tripling (`3x`), the hardware `TPL` operation.
    pub fn triple(&self) -> Fp {
        self.double().add(self)
    }

    /// Multiplication by a small non-negative integer via an addition chain.
    pub fn mul_small(&self, k: u64) -> Fp {
        let mut acc = self.ctx.zero();
        let mut base = self.clone();
        let mut k = k;
        while k > 0 {
            if k & 1 == 1 {
                acc.add_assign(&base);
            }
            let b = base.clone();
            base.add_assign(&b);
            k >>= 1;
        }
        acc
    }

    /// Halving: multiplies by the inverse of 2 (exact since p is odd).
    ///
    /// Works directly on the Montgomery limbs: `(v + p)/2` when `v` is
    /// odd, `v/2` otherwise — division by two commutes with the
    /// Montgomery scaling.
    pub fn halve(&self) -> Fp {
        let mut out = self.clone();
        let v = out.v.as_mut_slice();
        let mut top = 0u64;
        if v[0] & 1 == 1 {
            top = add_assign_slices(v, self.ctx.p_limbs.as_slice());
        }
        for limb in v.iter_mut().rev() {
            let next_top = *limb & 1;
            *limb = (*limb >> 1) | (top << 63);
            top = next_top;
        }
        out
    }

    /// Exponentiation by an arbitrary [`BigUint`] exponent.
    ///
    /// When the modulus leaves at least two spare bits in its limb buffer
    /// (every Table-2 curve does), the square-and-multiply ladder runs on
    /// `< 2p`-bounded [`Unreduced`] values — every per-step conditional
    /// subtraction is deferred to one final [`FpCtx::reduce`].
    pub fn pow(&self, e: &BigUint) -> Fp {
        if self.ctx.headroom >= 2 {
            let base = self.as_unreduced();
            let mut acc = Unreduced {
                v: *self.ctx.mont_one(),
                bound: 1,
            };
            for i in (0..e.bits()).rev() {
                acc = self.ctx.sqr_noreduce(&acc);
                if e.bit(i) {
                    acc = self.ctx.mul_noreduce(&acc, &base);
                }
            }
            return Fp::from_mont_limbs(&self.ctx, self.ctx.reduce(&acc));
        }
        let mut acc = self.ctx.one();
        for i in (0..e.bits()).rev() {
            acc.square_assign();
            if e.bit(i) {
                acc.mul_assign(self);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem (`x^(p-2)`).
    ///
    /// For many inversions at once, prefer [`Fp::batch_invert`].
    ///
    /// # Panics
    ///
    /// Panics on zero — inversion of zero is a programming error in every
    /// pairing code path (the single `INV` in the final exponentiation is of
    /// a provably non-zero Miller value).
    pub fn invert(&self) -> Fp {
        assert!(!self.is_zero(), "inversion of zero");
        self.pow(&self.ctx.p_minus_2)
    }

    /// Inverts every element of a slice in place using Montgomery's trick:
    /// one field inversion plus `3(n−1)` multiplications, instead of `n`
    /// Fermat exponentiations.
    ///
    /// # Panics
    ///
    /// Panics if any element is zero (same contract as [`Fp::invert`]), or
    /// if elements come from different field contexts.
    pub fn batch_invert(elems: &mut [Fp]) {
        let Some(first) = elems.first() else {
            return;
        };
        let ctx = Arc::clone(first.ctx());
        // prefix[i] = elems[0] · … · elems[i-1]
        let mut prefix = Vec::with_capacity(elems.len());
        let mut acc = ctx.one();
        for e in elems.iter() {
            assert!(!e.is_zero(), "inversion of zero");
            prefix.push(acc.clone());
            acc.mul_assign(e);
        }
        // acc = (Π elems)⁻¹; peel off one element per step from the back.
        let mut inv = acc.invert();
        for (e, pre) in elems.iter_mut().zip(prefix.iter()).rev() {
            let mut out = inv.clone();
            out.mul_assign(pre);
            inv.mul_assign(e);
            *e = out;
        }
    }

    /// Square root via Tonelli–Shanks, `None` for quadratic non-residues.
    ///
    /// Uses the `a^((p+1)/4)` fast path when `p ≡ 3 (mod 4)`.
    pub fn sqrt(&self) -> Option<Fp> {
        if self.is_zero() {
            return Some(self.clone());
        }
        if self.legendre() != 1 {
            return None;
        }
        let p = self.ctx.modulus();
        if p.low_u64() & 3 == 3 {
            let e = (p + &BigUint::one()).shr(2);
            let r = self.pow(&e);
            debug_assert_eq!(r.square(), *self);
            return Some(r);
        }
        // General Tonelli–Shanks. p >= 3 by context construction, so the
        // subtraction cannot underflow.
        let p_minus_1 = p.checked_sub(&BigUint::one()).unwrap_or_default();
        let s = p_minus_1.trailing_zeros();
        let q = p_minus_1.shr(s);
        // Deterministic non-residue search.
        let mut z = self.ctx.from_u64(2);
        let mut k = 2u64;
        while z.legendre() != -1 {
            k += 1;
            z = self.ctx.from_u64(k);
        }
        let mut m = s;
        let mut c = z.pow(&q);
        let mut t = self.pow(&q);
        let mut r = self.pow(&(&q + &BigUint::one()).shr(1));
        while !t.is_one() {
            let mut i = 0usize;
            let mut t2 = t.clone();
            while !t2.is_one() {
                t2.square_assign();
                i += 1;
            }
            let mut b = c;
            for _ in 0..m - i - 1 {
                b.square_assign();
            }
            m = i;
            c = b.square();
            t.mul_assign(&c);
            r.mul_assign(&b);
        }
        debug_assert_eq!(r.square(), *self);
        Some(r)
    }

    /// Legendre symbol: `1` for quadratic residue, `-1` for non-residue,
    /// `0` for zero.
    pub fn legendre(&self) -> i8 {
        if self.is_zero() {
            return 0;
        }
        // p >= 3 by context construction, so the subtraction cannot
        // underflow.
        let exp = self
            .ctx
            .modulus()
            .checked_sub(&BigUint::one())
            .unwrap_or_default()
            .shr(1);
        let r = self.pow(&exp);
        if r.is_one() {
            1
        } else {
            -1
        }
    }
}

impl PartialEq for Fp {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.ctx, &other.ctx) && self.v == other.v
    }
}

impl Eq for Fp {}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp(0x{})", self.to_biguint().to_hex())
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_biguint().to_hex())
    }
}

impl std::ops::Add for &Fp {
    type Output = Fp;
    fn add(self, rhs: &Fp) -> Fp {
        Fp::add(self, rhs)
    }
}

impl std::ops::Sub for &Fp {
    type Output = Fp;
    fn sub(self, rhs: &Fp) -> Fp {
        Fp::sub(self, rhs)
    }
}

impl std::ops::Mul for &Fp {
    type Output = Fp;
    fn mul(self, rhs: &Fp) -> Fp {
        Fp::mul(self, rhs)
    }
}

impl std::ops::Neg for &Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        Fp::neg(self)
    }
}

impl std::ops::AddAssign<&Fp> for Fp {
    fn add_assign(&mut self, rhs: &Fp) {
        Fp::add_assign(self, rhs);
    }
}

impl std::ops::SubAssign<&Fp> for Fp {
    fn sub_assign(&mut self, rhs: &Fp) {
        Fp::sub_assign(self, rhs);
    }
}

impl std::ops::MulAssign<&Fp> for Fp {
    fn mul_assign(&mut self, rhs: &Fp) {
        Fp::mul_assign(self, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Arc<FpCtx> {
        // BLS12-381 prime: a realistic 381-bit modulus.
        let p = BigUint::from_hex(
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab",
        )
        .unwrap();
        FpCtx::new(p).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            FpCtx::new(BigUint::from_u64(8)).unwrap_err(),
            FieldCtxError::InvalidModulus
        );
        assert_eq!(
            FpCtx::new(BigUint::from_u64(9)).unwrap_err(),
            FieldCtxError::NotPrime
        );
        assert!(FpCtx::new(BigUint::from_u64(1_000_000_007)).is_ok());
    }

    #[test]
    #[should_panic(expected = "limbs")]
    fn construction_rejects_wide_moduli() {
        // 11 limbs > MAX_LIMBS: hot-path contexts refuse; BigUint::modpow
        // handles such moduli instead.
        let p = BigUint::one().shl(64 * 10 + 5);
        let p = &p + &BigUint::from_u64(3);
        let _ = FpCtx::new_unchecked(p);
    }

    #[test]
    fn checked_construction_errors_on_wide_moduli() {
        // The Result-returning constructor must report TooWide instead of
        // panicking (and before paying for a Miller–Rabin run).
        let p = BigUint::one().shl(64 * 10 + 5);
        let p = &p + &BigUint::from_u64(3);
        assert_eq!(FpCtx::new(p).unwrap_err(), FieldCtxError::TooWide);
    }

    #[test]
    fn mont_roundtrip() {
        let c = ctx();
        for seed in 0..20u64 {
            let x = c.sample(seed);
            let back = c.from_biguint(&x.to_biguint());
            assert_eq!(x, back);
        }
    }

    #[test]
    fn field_axioms_sampled() {
        let c = ctx();
        for seed in 0..10u64 {
            let a = c.sample(seed);
            let b = c.sample(seed + 100);
            let d = c.sample(seed + 200);
            assert_eq!(&a + &b, &b + &a);
            assert_eq!(&a * &b, &b * &a);
            assert_eq!(&(&a + &b) + &d, &a + &(&b + &d));
            assert_eq!(&(&a * &b) * &d, &a * &(&b * &d));
            assert_eq!(&a * &(&b + &d), &(&a * &b) + &(&a * &d));
            assert_eq!(&a - &a, c.zero());
            assert_eq!(&a + &-&a, c.zero());
            assert_eq!(&a * &c.one(), a);
        }
    }

    #[test]
    fn square_matches_mul() {
        let c = ctx();
        for seed in 0..32u64 {
            let a = c.sample(seed);
            assert_eq!(a.square(), &a * &a, "seed {seed}");
        }
        // Edge values where the squaring kernel's reduction is exercised.
        assert_eq!(c.zero().square(), c.zero());
        assert_eq!(c.one().square(), c.one());
        let pm1 = c.from_biguint(&c.modulus().checked_sub(&BigUint::one()).unwrap());
        assert_eq!(pm1.square(), c.one());
    }

    #[test]
    fn assign_ops_match_value_ops() {
        let c = ctx();
        for seed in 0..8u64 {
            let a = c.sample(seed);
            let b = c.sample(seed + 77);
            let mut x = a.clone();
            x.add_assign(&b);
            assert_eq!(x, &a + &b);
            let mut x = a.clone();
            x.sub_assign(&b);
            assert_eq!(x, &a - &b);
            let mut x = a.clone();
            x.mul_assign(&b);
            assert_eq!(x, &a * &b);
            let mut x = a.clone();
            x.neg_assign();
            assert_eq!(x, -&a);
            let mut x = a.clone();
            x.square_assign();
            assert_eq!(x, a.square());
        }
    }

    #[test]
    fn inversion_and_fermat() {
        let c = ctx();
        for seed in 1..8u64 {
            let a = c.sample(seed);
            assert_eq!(&a * &a.invert(), c.one());
        }
    }

    #[test]
    fn batch_invert_matches_individual() {
        let c = ctx();
        let mut batch: Vec<Fp> = (1..20u64).map(|s| c.sample(s)).collect();
        let individual: Vec<Fp> = batch.iter().map(Fp::invert).collect();
        Fp::batch_invert(&mut batch);
        assert_eq!(batch, individual);
        // Degenerate sizes.
        let mut empty: Vec<Fp> = vec![];
        Fp::batch_invert(&mut empty);
        let mut single = vec![c.sample(5)];
        let expect = single[0].invert();
        Fp::batch_invert(&mut single);
        assert_eq!(single[0], expect);
    }

    #[test]
    #[should_panic(expected = "inversion of zero")]
    fn batch_invert_zero_panics() {
        let c = ctx();
        let mut batch = vec![c.one(), c.zero()];
        Fp::batch_invert(&mut batch);
    }

    #[test]
    #[should_panic(expected = "inversion of zero")]
    fn invert_zero_panics() {
        let c = ctx();
        let _ = c.zero().invert();
    }

    #[test]
    fn small_ops() {
        let c = ctx();
        let a = c.sample(7);
        assert_eq!(a.double(), &a + &a);
        assert_eq!(a.triple(), &(&a + &a) + &a);
        assert_eq!(a.mul_small(5), &a.double().double() + &a);
        assert_eq!(a.halve().double(), a);
        assert_eq!(c.from_i64(-1), -&c.one());
    }

    #[test]
    fn halve_limb_path_matches_reference() {
        let c = ctx();
        let inv2 = c.from_u64(2).invert();
        for seed in 0..16u64 {
            let a = c.sample(seed);
            assert_eq!(a.halve(), &a * &inv2, "seed {seed}");
        }
        assert_eq!(c.zero().halve(), c.zero());
        assert_eq!(c.one().halve().double(), c.one());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let c = ctx();
        let a = c.sample(3);
        let mut expect = c.one();
        for _ in 0..13 {
            expect = &expect * &a;
        }
        assert_eq!(a.pow(&BigUint::from_u64(13)), expect);
    }

    #[test]
    fn sqrt_roundtrip_both_paths() {
        // p = 3 mod 4 path
        let c = ctx();
        for seed in 1..6u64 {
            let a = c.sample(seed);
            let sq = a.square();
            let r = sq.sqrt().expect("square has root");
            assert!(r == a || r == -&a);
        }
        // p = 1 mod 4 path (Tonelli–Shanks): 1000000007 ≡ 3 mod 4,
        // use 998244353 = 119 * 2^23 + 1 ≡ 1 mod 4.
        let c = FpCtx::new(BigUint::from_u64(998_244_353)).unwrap();
        for seed in 1..6u64 {
            let a = c.sample(seed);
            let sq = a.square();
            let r = sq.sqrt().expect("square has root");
            assert!(r == a || r == -&a);
        }
        // Non-residue returns None: find one by scanning.
        let mut found = false;
        for k in 2..50 {
            let x = c.from_u64(k);
            if x.legendre() == -1 {
                assert!(x.sqrt().is_none());
                found = true;
                break;
            }
        }
        assert!(found);
    }

    #[test]
    fn legendre_of_square_is_one() {
        let c = ctx();
        let a = c.sample(11);
        assert_eq!(a.square().legendre(), 1);
        assert_eq!(c.zero().legendre(), 0);
    }

    /// Montgomery radix R = 2^(64·width) mod p as a BigUint.
    fn r_mod_p(c: &Arc<FpCtx>) -> BigUint {
        BigUint::one().shl(64 * c.width()).rem(c.modulus())
    }

    #[test]
    fn mul_wide_redc_matches_mont_mul() {
        let c = ctx();
        for seed in 0..16u64 {
            let a = c.sample(seed);
            let b = c.sample(seed + 31);
            let w = c.mul_wide(&a.as_unreduced(), &b.as_unreduced());
            // Plain product of the Montgomery reps, then REDC, is exactly
            // the interleaved CIOS product.
            assert_eq!(c.redc(&w), (&a * &b).v, "seed {seed}");
            let sq = c.sqr_wide(&a.as_unreduced());
            assert_eq!(c.redc(&sq), a.square().v, "seed {seed} sqr");
        }
    }

    #[test]
    fn noreduce_kernels_are_congruent_and_bounded() {
        let c = ctx();
        let two_p = &BigUint::from_u64(2) * c.modulus();
        for seed in 0..16u64 {
            let a = c.sample(seed);
            let b = c.sample(seed + 7);
            let m = c.mul_noreduce(&a.as_unreduced(), &b.as_unreduced());
            let got = BigUint::from_limbs(m.limbs().as_slice().to_vec());
            assert!(got < two_p, "seed {seed}: noreduce mul not < 2p");
            assert_eq!(got.rem(c.modulus()), (&a * &b).to_biguint_montless());
            let s = c.sqr_noreduce(&a.as_unreduced());
            let got = BigUint::from_limbs(s.limbs().as_slice().to_vec());
            assert!(got < two_p, "seed {seed}: noreduce sqr not < 2p");
            assert_eq!(got.rem(c.modulus()), a.square().to_biguint_montless());
        }
    }

    impl Fp {
        /// The raw Montgomery representation as an integer (test helper).
        fn to_biguint_montless(&self) -> BigUint {
            BigUint::from_limbs(self.v.as_slice().to_vec())
        }
    }

    #[test]
    fn add_noreduce_and_sub_with_kp_track_values() {
        let c = ctx();
        let p = c.modulus().clone();
        for seed in 0..12u64 {
            let a = c.sample(seed);
            let b = c.sample(seed + 3);
            let (ai, bi) = (
                BigUint::from_limbs(a.v.as_slice().to_vec()),
                BigUint::from_limbs(b.v.as_slice().to_vec()),
            );
            let s = c.add_noreduce(&a.as_unreduced(), &b.as_unreduced());
            assert_eq!(
                BigUint::from_limbs(s.limbs().as_slice().to_vec()),
                &ai + &bi
            );
            assert_eq!(s.bound(), 2);
            let d = c.sub_with_kp(&a.as_unreduced(), &b.as_unreduced(), 1);
            assert_eq!(
                BigUint::from_limbs(d.limbs().as_slice().to_vec()),
                &(&ai + &p) - &bi
            );
            assert_eq!(d.bound(), 2);
            // reduce() brings either back to canonical.
            assert_eq!(
                BigUint::from_limbs(c.reduce(&s).as_slice().to_vec()),
                (&ai + &bi).rem(&p)
            );
        }
    }

    #[test]
    fn redc_is_mont_reduction_of_plain_product() {
        // redc(mul_wide(a, b)) must equal a·b·R⁻¹ mod p for *unreduced*
        // 2p-bounded operands too.
        let c = ctx();
        let p = c.modulus().clone();
        let rinv = r_mod_p(&c).modpow(&p.checked_sub(&BigUint::from_u64(2)).unwrap(), &p);
        for seed in 0..8u64 {
            let a = c.sample(seed);
            let b = c.sample(seed + 5);
            let ua = c.add_noreduce(&a.as_unreduced(), &a.as_unreduced()); // 2a < 2p
            let ub = c.add_noreduce(&b.as_unreduced(), &b.as_unreduced());
            let w = c.mul_wide(&ua, &ub);
            let (ai, bi) = (
                BigUint::from_limbs(ua.limbs().as_slice().to_vec()),
                BigUint::from_limbs(ub.limbs().as_slice().to_vec()),
            );
            let expect = (&(&ai * &bi).rem(&p) * &rinv).rem(&p);
            assert_eq!(
                BigUint::from_limbs(c.redc(&w).as_slice().to_vec()),
                expect,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn wide_accumulation_with_p2_offset() {
        // (a·b + p² − c·d) REDC ≡ (ab − cd)·R⁻¹ mod p.
        let c = ctx();
        let p = c.modulus().clone();
        let rinv = r_mod_p(&c).modpow(&p.checked_sub(&BigUint::from_u64(2)).unwrap(), &p);
        for seed in 0..8u64 {
            let (a, b) = (c.sample(seed), c.sample(seed + 11));
            let (x, y) = (c.sample(seed + 22), c.sample(seed + 33));
            let mut acc = c.mul_wide(&a.as_unreduced(), &b.as_unreduced());
            c.wide_add_kp2(&mut acc, 1);
            let w2 = c.mul_wide(&x.as_unreduced(), &y.as_unreduced());
            c.wide_sub_assign(&mut acc, &w2);
            let big = |f: &Fp| BigUint::from_limbs(f.v.as_slice().to_vec());
            let prod = |u: &Fp, v: &Fp| (&big(u) * &big(v)).rem(&p);
            let diff = (&(&prod(&a, &b) + &p) - &prod(&x, &y)).rem(&p);
            let expect = (&diff * &rinv).rem(&p);
            assert_eq!(
                BigUint::from_limbs(c.redc(&acc).as_slice().to_vec()),
                expect,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn unreduced_from_limbs_validates() {
        let c = ctx();
        let pm1 = c.modulus().checked_sub(&BigUint::one()).unwrap();
        let u = c.unreduced_from_limbs(&pm1.to_fixed_limbs(c.width()), 1);
        assert_eq!(u.bound(), 1);
    }

    #[test]
    #[should_panic(expected = "not < bound·p")]
    fn unreduced_from_limbs_rejects_oversized() {
        let c = ctx();
        let u = c.modulus().to_fixed_limbs(c.width());
        let _ = c.unreduced_from_limbs(&u, 1); // p is not < 1·p
    }

    #[test]
    #[should_panic(expected = "different field contexts")]
    fn mixing_contexts_panics() {
        let c1 = FpCtx::new(BigUint::from_u64(1_000_000_007)).unwrap();
        let c2 = FpCtx::new(BigUint::from_u64(998_244_353)).unwrap();
        let _ = &c1.one() + &c2.one();
    }
}
