//! Low-level 64-bit limb primitives shared by [`crate::BigUint`] and the
//! Montgomery arithmetic in [`crate::fp`].
//!
//! All helpers are branch-free single-limb steps; multi-limb loops live with
//! their callers so each algorithm stays readable in one place.

/// Add with carry: computes `a + b + carry`, returning `(sum, carry_out)`.
///
/// `carry_out` is always `0` or `1`.
#[inline(always)]
pub fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Subtract with borrow: computes `a - b - borrow`, returning
/// `(difference, borrow_out)` where `borrow_out` is `0` or `1`.
#[inline(always)]
pub fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (t as u64, (t >> 127) as u64)
}

/// Multiply-accumulate: computes `acc + b * c + carry`, returning
/// `(low, high)` of the 128-bit result.
#[inline(always)]
pub fn mac(acc: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = (acc as u128) + (b as u128) * (c as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Compares two equal-length limb slices (little-endian).
#[inline]
pub fn cmp_slices(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            core::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    core::cmp::Ordering::Equal
}

/// In-place addition of equal-length slices: `a += b`, returns final carry.
#[inline]
pub fn add_assign_slices(a: &mut [u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut carry = 0;
    for i in 0..a.len() {
        let (s, c) = adc(a[i], b[i], carry);
        a[i] = s;
        carry = c;
    }
    carry
}

/// In-place subtraction of equal-length slices: `a -= b`, returns final
/// borrow (`1` when `b > a`).
#[inline]
pub fn sub_assign_slices(a: &mut [u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut borrow = 0;
    for i in 0..a.len() {
        let (d, bw) = sbb(a[i], b[i], borrow);
        a[i] = d;
        borrow = bw;
    }
    borrow
}

/// Computes `-m^{-1} mod 2^64` for odd `m` (the Montgomery `n0'` constant)
/// by Newton–Hensel iteration.
///
/// # Panics
///
/// Panics if `m` is even (no inverse exists modulo a power of two).
#[inline]
pub fn mont_neg_inv(m: u64) -> u64 {
    assert!(m & 1 == 1, "montgomery modulus must be odd");
    // Newton iteration doubles the number of correct low bits each step:
    // five steps starting from 3 correct bits covers 64 bits.
    let mut inv = m; // correct to 3 bits for odd m
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(inv)));
    }
    debug_assert_eq!(m.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u64::MAX, 1));
    }

    #[test]
    fn mac_full_width() {
        // acc + b*c + carry with maximal operands never overflows 128 bits.
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        let expect =
            (u64::MAX as u128) + (u64::MAX as u128) * (u64::MAX as u128) + (u64::MAX as u128);
        assert_eq!(lo, expect as u64);
        assert_eq!(hi, (expect >> 64) as u64);
    }

    #[test]
    fn neg_inv_small_odds() {
        for m in [1u64, 3, 5, 7, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF1] {
            let ninv = mont_neg_inv(m);
            assert_eq!(m.wrapping_mul(ninv), 1u64.wrapping_neg());
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn neg_inv_rejects_even() {
        mont_neg_inv(2);
    }

    #[test]
    fn slice_add_sub_roundtrip() {
        let mut a = [u64::MAX, 0, 7];
        let b = [1, 2, 3];
        let carry = add_assign_slices(&mut a, &b);
        assert_eq!(carry, 0);
        assert_eq!(a, [0, 3, 10]);
        let borrow = sub_assign_slices(&mut a, &b);
        assert_eq!(borrow, 0);
        assert_eq!(a, [u64::MAX, 0, 7]);
    }
}
