//! Low-level 64-bit limb primitives shared by [`crate::BigUint`] and the
//! Montgomery arithmetic in [`crate::fp`].
//!
//! Two layers live here:
//!
//! * branch-free single-limb steps ([`adc`], [`sbb`], [`mac`]) plus the
//!   slice-level Montgomery multiply ([`cios_mont_mul`]) that works on
//!   caller-provided buffers of any width (used by `BigUint::modpow` for
//!   arbitrary odd moduli);
//! * [`Limbs`], the fixed-capacity inline limb store sized by
//!   [`MAX_LIMBS`] that the hot field arithmetic in [`crate::fp`] is built
//!   on — a plain value type, so no field operation ever touches the heap.
//!   The width-capped kernels themselves (including the dedicated
//!   squaring) live in [`crate::fp`], specialised over the fixed arrays.

/// Maximum limb count of any supported prime field: the largest Table-2
/// curves (BN638, BLS12-638) have 638-bit primes, i.e. ten 64-bit limbs.
///
/// [`crate::FpCtx`] rejects wider moduli at construction; arbitrary-width
/// modular arithmetic stays with [`crate::BigUint`].
pub const MAX_LIMBS: usize = 10;

/// A fixed-capacity little-endian limb vector with inline storage.
///
/// `Limbs` is `Copy`: moving or cloning one is a stack copy, never an
/// allocation. The active width `len` is set once from the field context
/// and preserved by every kernel, so equal-width invariants hold by
/// construction.
#[derive(Clone, Copy)]
pub struct Limbs {
    /// Backing store; limbs past `len` are zero. Crate-visible so the
    /// Montgomery kernels in [`crate::fp`] can index the fixed-size array
    /// directly (bounds provably inside `MAX_LIMBS`, so the checks fold
    /// away) instead of going through runtime-length slices.
    pub(crate) buf: [u64; MAX_LIMBS],
    pub(crate) len: usize,
}

impl Limbs {
    /// All-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `len > MAX_LIMBS`.
    #[inline]
    pub fn zero(len: usize) -> Self {
        assert!(len <= MAX_LIMBS, "width {len} exceeds MAX_LIMBS");
        Limbs {
            buf: [0u64; MAX_LIMBS],
            len,
        }
    }

    /// Copies a slice (the slice length becomes the active width).
    ///
    /// # Panics
    ///
    /// Panics if the slice is longer than [`MAX_LIMBS`].
    #[inline]
    pub fn from_slice(s: &[u64]) -> Self {
        let mut out = Self::zero(s.len());
        out.buf[..s.len()].copy_from_slice(s);
        out
    }

    /// Active limbs as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.buf[..self.len]
    }

    /// Active limbs as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        &mut self.buf[..self.len]
    }

    /// Active width in limbs.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the width is zero (never the case for field elements).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff every active limb is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.as_slice().iter().all(|&l| l == 0)
    }
}

impl PartialEq for Limbs {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Limbs {}

impl core::fmt::Debug for Limbs {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Add with carry: computes `a + b + carry`, returning `(sum, carry_out)`.
///
/// `carry_out` is always `0` or `1`.
#[inline(always)]
pub fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Subtract with borrow: computes `a - b - borrow`, returning
/// `(difference, borrow_out)` where `borrow_out` is `0` or `1`.
#[inline(always)]
pub fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (t as u64, (t >> 127) as u64)
}

/// Multiply-accumulate: computes `acc + b * c + carry`, returning
/// `(low, high)` of the 128-bit result.
#[inline(always)]
pub fn mac(acc: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = (acc as u128) + (b as u128) * (c as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// Compares two equal-length limb slices (little-endian).
#[inline]
pub fn cmp_slices(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            core::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    core::cmp::Ordering::Equal
}

/// In-place addition of equal-length slices: `a += b`, returns final carry.
#[inline]
pub fn add_assign_slices(a: &mut [u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut carry = 0;
    for i in 0..a.len() {
        let (s, c) = adc(a[i], b[i], carry);
        a[i] = s;
        carry = c;
    }
    carry
}

/// In-place subtraction of equal-length slices: `a -= b`, returns final
/// borrow (`1` when `b > a`).
#[inline]
pub fn sub_assign_slices(a: &mut [u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut borrow = 0;
    for i in 0..a.len() {
        let (d, bw) = sbb(a[i], b[i], borrow);
        a[i] = d;
        borrow = bw;
    }
    borrow
}

/// Computes `-m^{-1} mod 2^64` for odd `m` (the Montgomery `n0'` constant)
/// by Newton–Hensel iteration.
///
/// # Panics
///
/// Panics if `m` is even (no inverse exists modulo a power of two).
#[inline]
pub fn mont_neg_inv(m: u64) -> u64 {
    assert!(m & 1 == 1, "montgomery modulus must be odd");
    // Newton iteration doubles the number of correct low bits each step:
    // five steps starting from 3 correct bits covers 64 bits.
    let mut inv = m; // correct to 3 bits for odd m
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(inv)));
    }
    debug_assert_eq!(m.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

/// CIOS (coarsely integrated operand scanning) Montgomery multiplication:
/// `out = a · b · R⁻¹ mod p` with `R = 2^(64n)`, fully reduced.
///
/// `t` is caller-provided scratch of length `n + 2` (`BigUint::modpow`
/// reuses a `Vec` across its ladder). All of `out`, `a`, `b`, `p` have
/// length `n`.
pub fn cios_mont_mul(out: &mut [u64], a: &[u64], b: &[u64], p: &[u64], n0: u64, t: &mut [u64]) {
    let n = p.len();
    debug_assert_eq!(a.len(), n);
    debug_assert_eq!(b.len(), n);
    debug_assert_eq!(out.len(), n);
    debug_assert_eq!(t.len(), n + 2);
    t.fill(0);
    for &ai in a.iter().take(n) {
        let mut carry = 0u64;
        for j in 0..n {
            let (lo, hi) = mac(t[j], ai, b[j], carry);
            t[j] = lo;
            carry = hi;
        }
        let (lo, hi) = adc(t[n], carry, 0);
        t[n] = lo;
        t[n + 1] = hi;
        let m = t[0].wrapping_mul(n0);
        let (_, mut carry2) = mac(t[0], m, p[0], 0);
        for j in 1..n {
            let (lo, hi) = mac(t[j], m, p[j], carry2);
            t[j - 1] = lo;
            carry2 = hi;
        }
        let (lo, hi) = adc(t[n], carry2, 0);
        t[n - 1] = lo;
        t[n] = t[n + 1] + hi;
        t[n + 1] = 0;
    }
    let overflow = t[n] != 0;
    out.copy_from_slice(&t[..n]);
    if overflow || cmp_slices(out, p) != core::cmp::Ordering::Less {
        sub_assign_slices(out, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
        assert_eq!(sbb(0, 0, 1), (u64::MAX, 1));
    }

    #[test]
    fn mac_full_width() {
        // acc + b*c + carry with maximal operands never overflows 128 bits.
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        let expect =
            (u64::MAX as u128) + (u64::MAX as u128) * (u64::MAX as u128) + (u64::MAX as u128);
        assert_eq!(lo, expect as u64);
        assert_eq!(hi, (expect >> 64) as u64);
    }

    #[test]
    fn neg_inv_small_odds() {
        for m in [1u64, 3, 5, 7, 0xFFFF_FFFF_FFFF_FFFF, 0x1234_5678_9ABC_DEF1] {
            let ninv = mont_neg_inv(m);
            assert_eq!(m.wrapping_mul(ninv), 1u64.wrapping_neg());
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn neg_inv_rejects_even() {
        mont_neg_inv(2);
    }

    #[test]
    fn cios_mont_mul_roundtrips_montgomery_form() {
        // 3-limb odd modulus: mont_mul(to_mont(x), 1) recovers x, i.e. the
        // slice kernel agrees with the R-scaling identities it implements.
        let p = [0xFFFF_FFFF_FFFF_FFC5u64, 0xDEAD_BEEF_1234_5677, 0x7FFF];
        let n0 = mont_neg_inv(p[0]);
        let mut x = [0x1234_5678_9ABC_DEF0u64, 0x0FED_CBA9_8765_4321, 0x4321];
        x[2] %= p[2]; // reduce below p (top limb smaller)
                      // r2 = R² mod p computed via BigUint for the 3-limb modulus.
        let pb = crate::BigUint::from_limbs(p.to_vec());
        let r2v = crate::BigUint::one()
            .shl(128 * 3)
            .rem(&pb)
            .to_fixed_limbs(3);
        let mut scratch = [0u64; 5];
        let mut xm = [0u64; 3];
        cios_mont_mul(&mut xm, &x, &r2v, &p, n0, &mut scratch);
        let one = [1u64, 0, 0];
        let mut back = [0u64; 3];
        cios_mont_mul(&mut back, &xm, &one, &p, n0, &mut scratch);
        assert_eq!(back, x);
    }

    #[test]
    fn limbs_value_type_basics() {
        let a = Limbs::from_slice(&[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.as_slice(), &[1, 2, 3]);
        assert!(!a.is_zero() && !a.is_empty());
        let z = Limbs::zero(3);
        assert!(z.is_zero());
        assert_ne!(a, z);
        let mut b = a;
        b.as_mut_slice()[0] = 9;
        assert_ne!(a, b, "copies are independent");
    }

    #[test]
    #[should_panic(expected = "MAX_LIMBS")]
    fn limbs_reject_overwide() {
        let _ = Limbs::zero(MAX_LIMBS + 1);
    }

    #[test]
    fn slice_add_sub_roundtrip() {
        let mut a = [u64::MAX, 0, 7];
        let b = [1, 2, 3];
        let carry = add_assign_slices(&mut a, &b);
        assert_eq!(carry, 0);
        assert_eq!(a, [0, 3, 10]);
        let borrow = sub_assign_slices(&mut a, &b);
        assert_eq!(borrow, 0);
        assert_eq!(a, [u64::MAX, 0, 7]);
    }
}
