//! Extension-field towers for pairing computation.
//!
//! Every optimal-Ate-friendly curve family in the paper (BN, BLS12, BLS24)
//! has embedding degree `k` divisible by 6 and admits a sextic twist, so the
//! tower is organised uniformly as
//!
//! ```text
//! F_p  --(u² = β)-->  F_p2  [--(v² = ξ₂)--> F_p4]   = F_q (the twist field, q = p^(k/6))
//! F_q  --(w⁶ = ξ)-->  F_p^k                          (the pairing target field)
//! ```
//!
//! Internally F_p^k is manipulated as a quadratic extension over a cubic
//! extension (`s = w²`, `s³ = ξ`), which is exactly the paper's
//! F_p12 = (F_p6)² = ((F_p2)³)² lattice view and gives the standard
//! Karatsuba/Granger–Scott formula structure. Coefficients are stored in
//! `w`-power order, the natural basis for sparse Miller-line elements.
//!
//! All Frobenius maps are realised through constants `β^((p^j−1)/2)`,
//! `ξ₂^((p^j−1)/2)`, `ξ^((p^j−1)/6)` computed once at context construction
//! (this mirrors the small constant table the paper's lowering emits), and
//! are validated against a direct `x^p` exponentiation in the test suite.
//!
//! # Lazy (incomplete) reduction in the hot path
//!
//! When the non-residues take their standard small forms (`β = −1`, and
//! for k = 24 `ξ₂ = 1 + u`) and the prime leaves enough spare bits in its
//! limb buffer, the multiplicative kernels switch to *lazy reduction*:
//! Karatsuba sub-products are computed as plain double-width integers
//! ([`crate::WideAcc`]), cross terms are added and subtracted **unreduced**
//! at double width, and each output coefficient pays exactly one separated
//! Montgomery reduction (`FpCtx::redc_into`) — instead of one interleaved
//! reduction per sub-product plus carry-managed recombination.
//!
//! The invariants, enforced by `bound` tracking on every unreduced value
//! (debug-asserted; exercised at the 10-limb `MAX_LIMBS` edge by the
//! differential tests):
//!
//! * **Stored coefficients are always canonical** (`< p`). Unreduced
//!   values never escape a single `fp2_mul`/`fp2_sqr`/`fq_mul`/`fq_sqr`
//!   call, so equality stays bit-exact and every other consumer of
//!   [`Fp`]/[`Fq`] is unaffected.
//! * **Single-width unreduced values** (operand sums `a0 + a1`, offset
//!   differences `a0 + p − a1`) are bounded by `2p` and only ever feed
//!   double-width multiplications. This needs 2 spare bits
//!   ([`FpCtx::headroom_bits`] ≥ 2): satisfied by every Table-2 curve,
//!   including the 638-bit primes in 640-bit buffers.
//! * **Double-width accumulators** stay below `2^h · p²` (`h` = headroom
//!   bits), which is exactly the `T < p·R` pre-condition of Montgomery
//!   reduction. The k = 12 chains peak at `4p²` (`h ≥ 2`); the k = 24
//!   chains peak at `8p²` and therefore require `h ≥ 3` (BLS24-509:
//!   509 bits in 512 — exactly 3).
//! * **Subtractions are kept non-negative** by `k·p²` offsets
//!   (`β = −1` turns `v0 + β·v1` into `v0 + p² − v1`), which vanish under
//!   reduction; where a chain can dip negative transiently the buffer is
//!   allowed to wrap mod `2^(128n)` — only the final accumulated value
//!   handed to the reducer must be the true non-negative integer, and
//!   debug builds verify `T < p·R` directly against the buffer.
//!
//! Towers whose parameters fall outside these forms (exotic β/ξ₂, or a
//! modulus filling its top limb) keep the fully-reduced generic kernels —
//! the dispatch is decided once at construction.

use crate::fp::{FieldBytesError, Unreduced, WideAcc};
use crate::{BigUint, Fp, FpCtx};
use std::fmt;
use std::sync::Arc;

/// Maximum Frobenius power `j` for which constants are precomputed.
///
/// Final exponentiation needs up to `p^4` (BLS24 hard part) and `p^3`
/// (BN hard part); 6 leaves comfortable margin for the easy parts.
const MAX_FROB: usize = 6;

/// An element of the twist field F_q (q = p² or p⁴), stored as `k/6`
/// base-field coefficients:
///
/// * `qdeg == 2`: coefficients `[a0, a1]` meaning `a0 + a1·u`;
/// * `qdeg == 4`: coefficients `[a00, a01, a10, a11]` meaning
///   `(a00 + a01·u) + (a10 + a11·u)·v`.
///
/// Storage is a fixed inline array sized for the widest tower (qdeg 4);
/// qdeg-2 elements pad the tail with zeros, so cloning an `Fq` never
/// allocates (each [`Fp`] coefficient is itself inline-limb).
#[derive(Clone)]
pub struct Fq {
    c: [Fp; 4],
    len: usize,
}

impl Fq {
    /// Coefficients over F_p in tower order (exactly `k/6` entries).
    pub fn coeffs(&self) -> &[Fp] {
        &self.c[..self.len]
    }

    /// Constructs from base-field coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`TowerError::CoeffCount`] if the coefficient count is not
    /// a tower's `k/6` (2 or 4).
    pub fn from_coeffs(c: Vec<Fp>) -> Result<Self, TowerError> {
        match <[Fp; 4]>::try_from(c) {
            Ok(four) => Ok(Self::new4(four)),
            Err(c) => match <[Fp; 2]>::try_from(c) {
                Ok([c0, c1]) => Ok(Self::new2(c0, c1)),
                Err(c) => Err(TowerError::CoeffCount {
                    expected: "2 or 4",
                    got: c.len(),
                }),
            },
        }
    }

    /// qdeg-2 element (zero-padded tail).
    fn new2(c0: Fp, c1: Fp) -> Self {
        let z = c0.ctx().zero();
        Fq {
            c: [c0, c1, z.clone(), z],
            len: 2,
        }
    }

    /// qdeg-4 element.
    fn new4(c: [Fp; 4]) -> Self {
        Fq { c, len: 4 }
    }
}

impl PartialEq for Fq {
    fn eq(&self, other: &Self) -> bool {
        self.coeffs() == other.coeffs()
    }
}

impl Eq for Fq {}

impl fmt::Debug for Fq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fq{:?}", self.coeffs())
    }
}

/// An element of the pairing target field F_p^k, as six F_q coefficients in
/// `w`-power order: `self = Σ c[m]·w^m`, `w⁶ = ξ`.
///
/// Stored as a fixed inline array — an `Fpk` value owns no heap memory.
#[derive(Clone, PartialEq, Eq)]
pub struct Fpk {
    c: [Fq; 6],
}

impl Fpk {
    /// The six `w`-power coefficients.
    pub fn coeffs(&self) -> &[Fq] {
        &self.c
    }

    /// Constructs from six `w`-power coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`TowerError::CoeffCount`] unless exactly six coefficients
    /// are given.
    pub fn from_coeffs(c: Vec<Fq>) -> Result<Self, TowerError> {
        let c: [Fq; 6] = c.try_into().map_err(|v: Vec<Fq>| TowerError::CoeffCount {
            expected: "6",
            got: v.len(),
        })?;
        Ok(Fpk { c })
    }
}

impl fmt::Debug for Fpk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fpk{:?}", &self.c[..])
    }
}

/// Error constructing a [`TowerCtx`] or a tower element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TowerError {
    /// The embedding degree must be 12 or 24 (sextic-twist towers).
    UnsupportedDegree,
    /// `p mod 6 != 1`, so the sextic Frobenius constants do not exist.
    BadResidueClass,
    /// `β` is a square in F_p, so `u² = β` does not define F_p2.
    QuadraticResidueBeta,
    /// `ξ₂` is a square in F_p2, so `v² = ξ₂` does not define F_p4.
    QuadraticResidueXi2,
    /// `ξ` is a square or cube in F_q, so `w⁶ = ξ` is reducible.
    ReducibleSextic,
    /// An element constructor received the wrong number of coefficients
    /// ([`Fq::from_coeffs`] wants `k/6`, [`Fpk::from_coeffs`] wants 6).
    CoeffCount {
        /// Human-readable admissible counts.
        expected: &'static str,
        /// Count actually supplied.
        got: usize,
    },
}

impl fmt::Display for TowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            TowerError::UnsupportedDegree => "embedding degree must be 12 or 24",
            TowerError::BadResidueClass => "prime must satisfy p = 1 (mod 6)",
            TowerError::QuadraticResidueBeta => "beta is a quadratic residue in Fp",
            TowerError::QuadraticResidueXi2 => "xi2 is a quadratic residue in Fp2",
            TowerError::ReducibleSextic => "xi is a square or cube in Fq; w^6 - xi is reducible",
            TowerError::CoeffCount { expected, got } => {
                return write!(f, "wrong coefficient count: expected {expected}, got {got}")
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TowerError {}

/// Context for a full pairing tower F_p → F_q → F_p^k.
///
/// Construct with [`TowerCtx::sextic_over_fp2`] (k = 12) or
/// [`TowerCtx::sextic_over_fp4`] (k = 24). All element operations are
/// methods on the context (mirroring how the compiler's IR evaluator
/// threads a context), so [`Fq`]/[`Fpk`] stay plain data.
pub struct TowerCtx {
    fp: Arc<FpCtx>,
    k: usize,
    qdeg: usize,
    beta: Fp,
    xi2: Option<(Fp, Fp)>,
    xi: Fq,
    /// `β^((p^j−1)/2)` for j in 0..=MAX_FROB.
    u_frob: Vec<Fp>,
    /// `ξ₂^((p^j−1)/2)` for j in 0..=MAX_FROB (qdeg 4 only).
    v_frob: Vec<(Fp, Fp)>,
    /// `ξ^((p^j−1)/6)` for j in 0..=MAX_FROB.
    w_frob: Vec<Fq>,
    /// q = p^(k/6).
    q: BigUint,
    /// p^k.
    pk: BigUint,
    /// Lazy reduction enabled for the F_p2 layer (`β = −1`, headroom ≥ 2).
    lazy2: bool,
    /// Lazy reduction enabled for the F_p4 layer (`β = −1`, `ξ₂ = 1 + u`,
    /// headroom ≥ 3; the k = 24 chains peak at 8p²).
    lazy4: bool,
    /// Structure of the sextic non-residue, for the mul-free `ξ` scaling.
    xi_kind: XiKind,
}

/// An unreduced F_p2 value `c0 + c1·u` held as double-width accumulators
/// (the working representation inside the lazy tower kernels).
#[derive(Clone, Copy)]
struct WidePair {
    c0: WideAcc,
    c1: WideAcc,
}

/// How the sextic non-residue ξ is shaped — decides whether multiplying
/// by ξ (twice per cubic-layer Karatsuba) needs real multiplications.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum XiKind {
    /// Arbitrary ξ: scale via a full `fq_mul`.
    Generic,
    /// k = 12, `ξ = 1 + u`, `β = −1`:
    /// `(a0 + a1·u)·ξ = (a0 − a1) + (a0 + a1)·u` — additions only.
    OnePlusU,
    /// k = 24, `ξ = v`, `ξ₂ = 1 + u`, `β = −1`:
    /// `(a0 + a1·v)·ξ = ξ₂·a1 + a0·v` — additions only.
    V,
}

impl fmt::Debug for TowerCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TowerCtx")
            .field("k", &self.k)
            .field("qdeg", &self.qdeg)
            .field("p_bits", &self.fp.modulus_bits())
            .finish()
    }
}

impl TowerCtx {
    /// Builds the k = 12 tower: `F_p2 = F_p[u]/(u²−β)`,
    /// `F_p12 = F_p2[w]/(w⁶−ξ)` with `ξ = xi_c0 + xi_c1·u`.
    ///
    /// # Errors
    ///
    /// Returns a [`TowerError`] when the non-residue conditions fail or
    /// `p mod 6 != 1`.
    pub fn sextic_over_fp2(
        fp: &Arc<FpCtx>,
        beta: Fp,
        xi: (Fp, Fp),
    ) -> Result<Arc<Self>, TowerError> {
        Self::build(fp, 12, beta, None, vec![xi.0, xi.1])
    }

    /// Builds the k = 24 tower: `F_p2 = F_p[u]/(u²−β)`,
    /// `F_p4 = F_p2[v]/(v²−ξ₂)`, `F_p24 = F_p4[w]/(w⁶−ξ)`.
    ///
    /// `xi` is given as four F_p coefficients in the (1, u, v, uv) basis;
    /// the common choice is `ξ = v`, i.e. `[0, 0, 1, 0]`.
    ///
    /// # Errors
    ///
    /// Returns a [`TowerError`] when the non-residue conditions fail or
    /// `p mod 6 != 1`.
    pub fn sextic_over_fp4(
        fp: &Arc<FpCtx>,
        beta: Fp,
        xi2: (Fp, Fp),
        xi: [Fp; 4],
    ) -> Result<Arc<Self>, TowerError> {
        Self::build(fp, 24, beta, Some(xi2), xi.to_vec())
    }

    fn build(
        fp: &Arc<FpCtx>,
        k: usize,
        beta: Fp,
        xi2: Option<(Fp, Fp)>,
        xi: Vec<Fp>,
    ) -> Result<Arc<Self>, TowerError> {
        if k != 12 && k != 24 {
            return Err(TowerError::UnsupportedDegree);
        }
        if fp.modulus().divrem_u64(6).1 != 1 {
            return Err(TowerError::BadResidueClass);
        }
        if beta.legendre() != -1 {
            return Err(TowerError::QuadraticResidueBeta);
        }
        let qdeg = k / 6;
        let p = fp.modulus().clone();
        let q = p.pow(qdeg as u32);
        let pk = p.pow(k as u32);

        let mut ctx = TowerCtx {
            fp: Arc::clone(fp),
            k,
            qdeg,
            beta,
            xi2,
            xi: Fq::from_coeffs(xi)?,
            u_frob: Vec::new(),
            v_frob: Vec::new(),
            w_frob: Vec::new(),
            q,
            pk,
            lazy2: false,
            lazy4: false,
            xi_kind: XiKind::Generic,
        };

        // Lazy-reduction dispatch (see the module docs for the bound
        // analysis): decided once, before any tower arithmetic runs, so
        // even the construction-time non-residue checks benefit.
        let h = fp.headroom_bits();
        let beta_m1 = ctx.beta == -&fp.one();
        let xi2_one_plus_u = ctx
            .xi2
            .as_ref()
            .is_some_and(|(c0, c1)| c0.is_one() && c1.is_one());
        ctx.lazy2 = beta_m1 && h >= 2;
        ctx.lazy4 = qdeg == 4 && beta_m1 && xi2_one_plus_u && h >= 3;
        ctx.xi_kind = {
            let c = ctx.xi.coeffs();
            if qdeg == 2 && beta_m1 && c[0].is_one() && c[1].is_one() {
                XiKind::OnePlusU
            } else if qdeg == 4
                && beta_m1
                && xi2_one_plus_u
                && c[0].is_zero()
                && c[1].is_zero()
                && c[2].is_one()
                && c[3].is_zero()
            {
                XiKind::V
            } else {
                XiKind::Generic
            }
        };

        // Non-residue checks that need field ops (done on the raw ctx
        // before Frobenius constants exist; none of these use frobenius).
        if qdeg == 4 {
            let xi2v = ctx.xi2_pair();
            // q(2) = p^2 >= 9, so the subtraction cannot underflow.
            let e = ctx
                .q_of_degree(2)
                .checked_sub(&BigUint::one())
                .unwrap_or_default()
                .shr(1);
            let r = ctx.fp2_pow(&xi2v, &e);
            if r == (ctx.fp.one(), ctx.fp.zero()) {
                return Err(TowerError::QuadraticResidueXi2);
            }
        }
        // q = p^(k/6) >= 3, so the subtraction cannot underflow.
        let qm1 = ctx.q.checked_sub(&BigUint::one()).unwrap_or_default();
        let sq = ctx.fq_pow(&ctx.xi, &qm1.shr(1));
        if ctx.fq_is_one(&sq) {
            return Err(TowerError::ReducibleSextic);
        }
        let (third, rem) = qm1.divrem(&BigUint::from_u64(3));
        debug_assert!(rem.is_zero(), "3 | q - 1 since p = 1 mod 6");
        let cb = ctx.fq_pow(&ctx.xi, &third);
        if ctx.fq_is_one(&cb) {
            return Err(TowerError::ReducibleSextic);
        }

        // Frobenius constants for j = 0..=MAX_FROB.
        let mut u_frob = Vec::with_capacity(MAX_FROB + 1);
        let mut v_frob = Vec::with_capacity(MAX_FROB + 1);
        let mut w_frob = Vec::with_capacity(MAX_FROB + 1);
        for j in 0..=MAX_FROB {
            // p^j >= 1 for every j, so the subtraction cannot underflow.
            let pj_m1 = p
                .pow(j as u32)
                .checked_sub(&BigUint::one())
                .unwrap_or_default();
            u_frob.push(ctx.beta.pow(&pj_m1.shr(1)));
            if let Some(xi2v) = &ctx.xi2 {
                v_frob.push(ctx.fp2_pow(xi2v, &pj_m1.shr(1)));
            } else {
                v_frob.push((ctx.fp.one(), ctx.fp.zero()));
            }
            let sixth = pj_m1.divrem(&BigUint::from_u64(6)).0;
            w_frob.push(ctx.fq_pow(&ctx.xi, &sixth));
        }
        ctx.u_frob = u_frob;
        ctx.v_frob = v_frob;
        ctx.w_frob = w_frob;
        Ok(Arc::new(ctx))
    }

    /// The base prime-field context.
    pub fn fp(&self) -> &Arc<FpCtx> {
        &self.fp
    }

    /// The embedding degree `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The twist-field degree `k/6` (2 or 4).
    pub fn qdeg(&self) -> usize {
        self.qdeg
    }

    /// Which lazy-reduction tiers this tower dispatches to
    /// `(F_p2 layer, F_p4 layer)` — fixed at construction from the
    /// non-residue shapes and the modulus headroom (see the module docs).
    pub fn lazy_tiers(&self) -> (bool, bool) {
        (self.lazy2, self.lazy4)
    }

    /// The quadratic non-residue `β` with `u² = β`.
    pub fn beta(&self) -> &Fp {
        &self.beta
    }

    /// The F_p4 non-residue `ξ₂` (k = 24 towers only).
    pub fn xi2(&self) -> Option<&(Fp, Fp)> {
        self.xi2.as_ref()
    }

    /// The sextic non-residue `ξ` with `w⁶ = ξ`.
    pub fn xi(&self) -> &Fq {
        &self.xi
    }

    /// The order q = p^(k/6) of the twist field.
    pub fn q_order(&self) -> &BigUint {
        &self.q
    }

    /// p^k, the order of F_p^k.
    pub fn pk_order(&self) -> &BigUint {
        &self.pk
    }

    /// The Frobenius constant `ξ^((p^j − 1)/6)` (used by the compiler's
    /// constant tables and the G2 untwist–Frobenius endomorphism).
    pub fn w_frob_const(&self, j: usize) -> &Fq {
        &self.w_frob[j]
    }

    /// The Frobenius constant `β^((p^j − 1)/2)` for the quadratic layer
    /// (`u^(p^j) = u_frob_const(j) · u`).
    pub fn u_frob_const(&self, j: usize) -> &Fp {
        &self.u_frob[j]
    }

    /// The Frobenius constant `ξ₂^((p^j − 1)/2)` for the F_p4 layer
    /// (k = 24 towers; identity pair for k = 12).
    pub fn v_frob_const(&self, j: usize) -> &(Fp, Fp) {
        &self.v_frob[j]
    }

    /// Public wrapper over the internal F_p2-pair squaring (compiler
    /// constant synthesis).
    pub fn fp2_pair_sqr(&self, a: &(Fp, Fp)) -> (Fp, Fp) {
        self.fp2_sqr(a)
    }

    fn q_of_degree(&self, d: u32) -> BigUint {
        self.fp.modulus().pow(d)
    }

    /// The quartic-layer non-residue ξ₂. qdeg-4 contexts always carry one
    /// (enforced at construction); the zero pair keeps the path total for
    /// the panic-free lint gate and is never reached in practice.
    fn xi2_pair(&self) -> (Fp, Fp) {
        match &self.xi2 {
            Some(x) => x.clone(),
            None => (self.fp.zero(), self.fp.zero()),
        }
    }

    // ------------------------------------------------------------------
    // F_p2 helpers over raw (Fp, Fp) pairs (used directly when qdeg == 2,
    // and as the inner layer of F_p4 when qdeg == 4).
    // ------------------------------------------------------------------

    fn fp2_add(&self, a: &(Fp, Fp), b: &(Fp, Fp)) -> (Fp, Fp) {
        (&a.0 + &b.0, &a.1 + &b.1)
    }

    fn fp2_sub(&self, a: &(Fp, Fp), b: &(Fp, Fp)) -> (Fp, Fp) {
        (&a.0 - &b.0, &a.1 - &b.1)
    }

    fn fp2_neg(&self, a: &(Fp, Fp)) -> (Fp, Fp) {
        (-&a.0, -&a.1)
    }

    fn fp2_mul(&self, a: &(Fp, Fp), b: &(Fp, Fp)) -> (Fp, Fp) {
        if self.lazy2 {
            return self.fp2_mul_lazy(a, b);
        }
        // Generic Karatsuba: 3 base multiplications plus a β scaling.
        let v0 = &a.0 * &b.0;
        let v1 = &a.1 * &b.1;
        let cross = &(&(&a.0 + &a.1) * &(&b.0 + &b.1)) - &(&v0 + &v1);
        (&v0 + &(&v1 * &self.beta), cross)
    }

    /// Karatsuba with lazy reduction (`β = −1`, headroom ≥ 2): three
    /// plain double-width products, cross terms accumulated unreduced,
    /// one Montgomery reduction per output coefficient.
    ///
    /// Bounds: inputs `< p`, operand sums `< 2p`, accumulators `≤ 4p²`.
    fn fp2_mul_lazy(&self, a: &(Fp, Fp), b: &(Fp, Fp)) -> (Fp, Fp) {
        let f = self.fp.as_ref();
        let pair = Self::fp2_mul_wide_k(
            f,
            (&a.0.as_unreduced(), &a.1.as_unreduced()),
            (&b.0.as_unreduced(), &b.1.as_unreduced()),
        );
        (
            Fp::from_mont_limbs(&self.fp, f.redc(&pair.c0)),
            Fp::from_mont_limbs(&self.fp, f.redc(&pair.c1)),
        )
    }

    fn fp2_sqr(&self, a: &(Fp, Fp)) -> (Fp, Fp) {
        if self.lazy2 {
            let f = self.fp.as_ref();
            let pair = Self::fp2_sqr_wide(f, (&a.0.as_unreduced(), &a.1.as_unreduced()));
            return (
                Fp::from_mont_limbs(&self.fp, f.redc(&pair.c0)),
                Fp::from_mont_limbs(&self.fp, f.redc(&pair.c1)),
            );
        }
        // Generic complex squaring: 2 base multiplications plus β scalings.
        let v0 = &a.0 * &a.1;
        let t = &(&a.0 + &a.1) * &(&a.0 + &(&a.1 * &self.beta));
        let c0 = &(&t - &v0) - &(&v0 * &self.beta);
        (c0, v0.double())
    }

    fn fp2_inv(&self, a: &(Fp, Fp)) -> (Fp, Fp) {
        let norm = &a.0.square() - &(&a.1.square() * &self.beta);
        let ninv = norm.invert();
        (&a.0 * &ninv, -&(&a.1 * &ninv))
    }

    fn fp2_pow(&self, a: &(Fp, Fp), e: &BigUint) -> (Fp, Fp) {
        let mut acc = (self.fp.one(), self.fp.zero());
        for i in (0..e.bits()).rev() {
            acc = self.fp2_sqr(&acc);
            if e.bit(i) {
                acc = self.fp2_mul(&acc, a);
            }
        }
        acc
    }

    fn fp2_frob(&self, a: &(Fp, Fp), j: usize) -> (Fp, Fp) {
        let mut c1 = a.1.clone();
        c1.mul_assign(&self.u_frob[j]);
        (a.0.clone(), c1)
    }

    // ------------------------------------------------------------------
    // Lazy-reduction building blocks: unreduced F_p2 products held as
    // pairs of double-width accumulators (β = −1 throughout; see the
    // module docs for the bound analysis).
    // ------------------------------------------------------------------

    /// Karatsuba F_p2 product at double width, canonical (`< p`) inputs:
    /// `c0 = a0·b0 + p² − a1·b1` (`≤ 2p²`), `c1 = a0·b1 + a1·b0`
    /// (`< 2p²`). Three limb-level multiplications, zero reductions.
    fn fp2_mul_wide_k(
        f: &FpCtx,
        a: (&Unreduced, &Unreduced),
        b: (&Unreduced, &Unreduced),
    ) -> WidePair {
        let sa = f.add_noreduce(a.0, a.1);
        let sb = f.add_noreduce(b.0, b.1);
        let mut c1 = f.mul_wide(&sa, &sb);
        let w0 = f.mul_wide(a.0, b.0);
        let w1 = f.mul_wide(a.1, b.1);
        f.wide_sub_assign(&mut c1, &w0);
        f.wide_sub_assign(&mut c1, &w1);
        // (a0+a1)(b0+b1) − a0b0 − a1b1 = a0b1 + a1b0 < 2p².
        c1.assume_bound(2);
        let mut c0 = w0;
        f.wide_add_kp2(&mut c0, 1);
        f.wide_sub_assign(&mut c0, &w1);
        WidePair { c0, c1 }
    }

    /// Schoolbook F_p2 product at double width for *unreduced* (`< 2p`)
    /// inputs — no internal operand sums, so every sub-product stays
    /// `< 4p²` and the outputs `≤ 8p²` (hence the `h ≥ 3` gate on k = 24):
    /// `c0 = a0·b0 + 4p² − a1·b1`, `c1 = a0·b1 + a1·b0`.
    fn fp2_mul_wide_s(
        f: &FpCtx,
        a: (&Unreduced, &Unreduced),
        b: (&Unreduced, &Unreduced),
    ) -> WidePair {
        let mut c0 = f.mul_wide(a.0, b.0);
        f.wide_add_kp2(&mut c0, 4);
        f.wide_sub_assign(&mut c0, &f.mul_wide(a.1, b.1));
        let mut c1 = f.mul_wide(a.0, b.1);
        f.wide_add_assign(&mut c1, &f.mul_wide(a.1, b.0));
        WidePair { c0, c1 }
    }

    /// F_p2 square at double width, canonical inputs (`β = −1`):
    /// `c0 = (a0+a1)(a0+p−a1) = a0² − a1² + p(a0+a1) < 3p²`,
    /// `c1 = 2·a0·a1 < 2p²`. Two limb-level multiplications.
    fn fp2_sqr_wide(f: &FpCtx, a: (&Unreduced, &Unreduced)) -> WidePair {
        let s = f.add_noreduce(a.0, a.1);
        let d = f.sub_with_kp(a.0, a.1, 1);
        let mut c0 = f.mul_wide(&s, &d);
        c0.assume_bound(3);
        let w = f.mul_wide(a.0, a.1);
        let mut c1 = w;
        f.wide_add_assign(&mut c1, &w);
        WidePair { c0, c1 }
    }

    /// Scales an unreduced wide pair by `ξ₂ = 1 + u` (`β = −1`):
    /// `(c0 − c1 + k·p², c0 + c1)` with `k` covering `c1`'s bound —
    /// additions only, the reduction-free analogue of an `fp2_mul` by ξ₂.
    fn wide_pair_mul_xi2(f: &FpCtx, x: &WidePair) -> WidePair {
        let mut c0 = x.c0;
        f.wide_add_kp2(&mut c0, x.c1.bound());
        f.wide_sub_assign(&mut c0, &x.c1);
        let mut c1 = x.c0;
        f.wide_add_assign(&mut c1, &x.c1);
        WidePair { c0, c1 }
    }

    // ------------------------------------------------------------------
    // F_q operations (public API).
    // ------------------------------------------------------------------

    /// The zero of F_q.
    pub fn fq_zero(&self) -> Fq {
        let z = self.fp.zero();
        Fq {
            c: [z.clone(), z.clone(), z.clone(), z],
            len: self.qdeg,
        }
    }

    /// The one of F_q.
    pub fn fq_one(&self) -> Fq {
        let mut c = self.fq_zero();
        c.c[0] = self.fp.one();
        c
    }

    /// Embeds an F_p element into F_q.
    pub fn fq_from_fp(&self, a: &Fp) -> Fq {
        let mut c = self.fq_zero();
        c.c[0] = a.clone();
        c
    }

    /// Deterministically samples an F_q element (for tests and vectors).
    pub fn fq_sample(&self, seed: u64) -> Fq {
        let mut out = self.fq_zero();
        for (i, c) in out.c[..out.len].iter_mut().enumerate() {
            *c = self.fp.sample(
                seed.wrapping_mul(0x9E37)
                    .wrapping_add(i as u64 * 0x1234_5678_9ABC),
            );
        }
        out
    }

    /// True iff zero.
    pub fn fq_is_zero(&self, a: &Fq) -> bool {
        a.coeffs().iter().all(Fp::is_zero)
    }

    /// True iff one.
    pub fn fq_is_one(&self, a: &Fq) -> bool {
        let c = a.coeffs();
        c[0].is_one() && c[1..].iter().all(Fp::is_zero)
    }

    /// Addition in F_q (coefficient-wise, in place on a copy).
    pub fn fq_add(&self, a: &Fq, b: &Fq) -> Fq {
        let mut out = a.clone();
        for (x, y) in out.c[..out.len].iter_mut().zip(b.coeffs()) {
            x.add_assign(y);
        }
        out
    }

    /// Subtraction in F_q.
    pub fn fq_sub(&self, a: &Fq, b: &Fq) -> Fq {
        let mut out = a.clone();
        for (x, y) in out.c[..out.len].iter_mut().zip(b.coeffs()) {
            x.sub_assign(y);
        }
        out
    }

    /// Negation in F_q.
    pub fn fq_neg(&self, a: &Fq) -> Fq {
        let mut out = a.clone();
        for x in out.c[..out.len].iter_mut() {
            x.neg_assign();
        }
        out
    }

    /// Doubling in F_q.
    pub fn fq_double(&self, a: &Fq) -> Fq {
        self.fq_add(a, a)
    }

    fn as_fp4(a: &Fq) -> ((Fp, Fp), (Fp, Fp)) {
        (
            (a.c[0].clone(), a.c[1].clone()),
            (a.c[2].clone(), a.c[3].clone()),
        )
    }

    fn fq_from_fp4(x0: (Fp, Fp), x1: (Fp, Fp)) -> Fq {
        Fq::new4([x0.0, x0.1, x1.0, x1.1])
    }

    /// Multiplication in F_q.
    pub fn fq_mul(&self, a: &Fq, b: &Fq) -> Fq {
        match self.qdeg {
            2 => {
                let (c0, c1) = self.fp2_mul(
                    &(a.c[0].clone(), a.c[1].clone()),
                    &(b.c[0].clone(), b.c[1].clone()),
                );
                Fq::new2(c0, c1)
            }
            4 if self.lazy4 => self.fq_mul_lazy4(a, b),
            4 => {
                let (a0, a1) = Self::as_fp4(a);
                let (b0, b1) = Self::as_fp4(b);
                let xi2 = self.xi2_pair();
                let v0 = self.fp2_mul(&a0, &b0);
                let v1 = self.fp2_mul(&a1, &b1);
                let cross = self.fp2_sub(
                    &self.fp2_mul(&self.fp2_add(&a0, &a1), &self.fp2_add(&b0, &b1)),
                    &self.fp2_add(&v0, &v1),
                );
                let c0 = self.fp2_add(&v0, &self.fp2_mul(&v1, &xi2));
                Self::fq_from_fp4(c0, cross)
            }
            _ => unreachable!("qdeg is 2 or 4"),
        }
    }

    /// F_p4 Karatsuba over unreduced F_p2 wide pairs (`β = −1`,
    /// `ξ₂ = 1 + u`, headroom ≥ 3): ten limb-level multiplications and
    /// exactly four Montgomery reductions — one per output coefficient —
    /// against sixteen interleaved multiplications on the generic path.
    ///
    /// Peak bounds: the Karatsuba cross pair uses the schoolbook wide
    /// product on `< 2p` operand sums (`≤ 8p²`); the `v0 + ξ₂·v1`
    /// recombination stays `≤ 6p²`.
    fn fq_mul_lazy4(&self, a: &Fq, b: &Fq) -> Fq {
        let f = self.fp.as_ref();
        let au: [Unreduced; 4] = std::array::from_fn(|i| a.c[i].as_unreduced());
        let bu: [Unreduced; 4] = std::array::from_fn(|i| b.c[i].as_unreduced());
        let v0 = Self::fp2_mul_wide_k(f, (&au[0], &au[1]), (&bu[0], &bu[1]));
        let v1 = Self::fp2_mul_wide_k(f, (&au[2], &au[3]), (&bu[2], &bu[3]));
        // Cross pair: (a0+a1)(b0+b1) − v0 − v1 over F_p2, with the
        // operand sums left unreduced (< 2p) and the product taken
        // schoolbook so no internal sum exceeds the envelope. The p²
        // offsets (4 − 1 − 1 = 2 surviving multiples) keep the c0
        // component non-negative; c1 is exact.
        let sa = (
            f.add_noreduce(&au[0], &au[2]),
            f.add_noreduce(&au[1], &au[3]),
        );
        let sb = (
            f.add_noreduce(&bu[0], &bu[2]),
            f.add_noreduce(&bu[1], &bu[3]),
        );
        let mut cross = Self::fp2_mul_wide_s(f, (&sa.0, &sa.1), (&sb.0, &sb.1));
        f.wide_sub_assign(&mut cross.c0, &v0.c0);
        f.wide_sub_assign(&mut cross.c0, &v1.c0);
        f.wide_sub_assign(&mut cross.c1, &v0.c1);
        f.wide_sub_assign(&mut cross.c1, &v1.c1);
        // out0 = v0 + ξ₂·v1 (≤ 2p² + 4p²).
        let xiv1 = Self::wide_pair_mul_xi2(f, &v1);
        let mut o0 = v0.c0;
        f.wide_add_assign(&mut o0, &xiv1.c0);
        let mut o1 = v0.c1;
        f.wide_add_assign(&mut o1, &xiv1.c1);
        Fq::new4([
            Fp::from_mont_limbs(&self.fp, f.redc(&o0)),
            Fp::from_mont_limbs(&self.fp, f.redc(&o1)),
            Fp::from_mont_limbs(&self.fp, f.redc(&cross.c0)),
            Fp::from_mont_limbs(&self.fp, f.redc(&cross.c1)),
        ])
    }

    /// Squaring in F_q.
    pub fn fq_sqr(&self, a: &Fq) -> Fq {
        match self.qdeg {
            2 => {
                let (c0, c1) = self.fp2_sqr(&(a.c[0].clone(), a.c[1].clone()));
                Fq::new2(c0, c1)
            }
            4 if self.lazy4 => self.fq_sqr_lazy4(a),
            4 => {
                let (a0, a1) = Self::as_fp4(a);
                let xi2 = self.xi2_pair();
                // Complex squaring over Fp2.
                let v0 = self.fp2_mul(&a0, &a1);
                let t = self.fp2_mul(
                    &self.fp2_add(&a0, &a1),
                    &self.fp2_add(&a0, &self.fp2_mul(&a1, &xi2)),
                );
                let c0 = self.fp2_sub(&self.fp2_sub(&t, &v0), &self.fp2_mul(&v0, &xi2));
                let c1 = self.fp2_add(&v0, &v0);
                Self::fq_from_fp4(c0, c1)
            }
            _ => unreachable!("qdeg is 2 or 4"),
        }
    }

    /// F_p4 squaring over unreduced F_p2 wide pairs (`β = −1`,
    /// `ξ₂ = 1 + u`, headroom ≥ 3): `(a0 + a1·v)² = (a0² + ξ₂·a1²) +
    /// 2·a0·a1·v`, seven limb-level multiplications and four reductions.
    ///
    /// Peak bound is the `a0² + ξ₂·a1²` recombination: `3p² + 5p² = 8p²`.
    fn fq_sqr_lazy4(&self, a: &Fq) -> Fq {
        let f = self.fp.as_ref();
        let au: [Unreduced; 4] = std::array::from_fn(|i| a.c[i].as_unreduced());
        let s0 = Self::fp2_sqr_wide(f, (&au[0], &au[1]));
        let s1 = Self::fp2_sqr_wide(f, (&au[2], &au[3]));
        let xis1 = Self::wide_pair_mul_xi2(f, &s1);
        let mut o0 = s0.c0;
        f.wide_add_assign(&mut o0, &xis1.c0);
        let mut o1 = s0.c1;
        f.wide_add_assign(&mut o1, &xis1.c1);
        // Odd coefficient: 2·a0·a1 over F_p2 (≤ 4p² componentwise).
        let w = Self::fp2_mul_wide_k(f, (&au[0], &au[1]), (&au[2], &au[3]));
        let mut d0 = w.c0;
        f.wide_add_assign(&mut d0, &w.c0);
        let mut d1 = w.c1;
        f.wide_add_assign(&mut d1, &w.c1);
        Fq::new4([
            Fp::from_mont_limbs(&self.fp, f.redc(&o0)),
            Fp::from_mont_limbs(&self.fp, f.redc(&o1)),
            Fp::from_mont_limbs(&self.fp, f.redc(&d0)),
            Fp::from_mont_limbs(&self.fp, f.redc(&d1)),
        ])
    }

    /// Inversion in F_q.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn fq_inv(&self, a: &Fq) -> Fq {
        assert!(!self.fq_is_zero(a), "inversion of zero in Fq");
        match self.qdeg {
            2 => {
                let (c0, c1) = self.fp2_inv(&(a.c[0].clone(), a.c[1].clone()));
                Fq::new2(c0, c1)
            }
            4 => {
                let (a0, a1) = Self::as_fp4(a);
                let xi2 = self.xi2_pair();
                let norm =
                    self.fp2_sub(&self.fp2_sqr(&a0), &self.fp2_mul(&self.fp2_sqr(&a1), &xi2));
                let ninv = self.fp2_inv(&norm);
                Self::fq_from_fp4(
                    self.fp2_mul(&a0, &ninv),
                    self.fp2_neg(&self.fp2_mul(&a1, &ninv)),
                )
            }
            _ => unreachable!("qdeg is 2 or 4"),
        }
    }

    /// Inverts every element of a slice in place with Montgomery's trick:
    /// one F_q inversion plus `3(n−1)` F_q multiplications, instead of `n`
    /// norm-map inversions. This is the tower-level entry point behind the
    /// batch-affine table normalisation and bucket accumulation in the
    /// curve layer (G2 points have F_q coordinates).
    ///
    /// # Panics
    ///
    /// Panics on zero elements, matching [`TowerCtx::fq_inv`].
    pub fn fq_batch_inv(&self, elems: &mut [Fq]) {
        if elems.is_empty() {
            return;
        }
        // prefix[i] = elems[0] · … · elems[i-1]
        let mut prefix = Vec::with_capacity(elems.len());
        let mut acc = self.fq_one();
        for e in elems.iter() {
            prefix.push(acc.clone());
            acc = self.fq_mul(&acc, e);
        }
        // acc = (Π elems)⁻¹; peel off one element per step from the back.
        let mut inv = self.fq_inv(&acc);
        for (e, pre) in elems.iter_mut().zip(prefix.iter()).rev() {
            let out = self.fq_mul(&inv, pre);
            inv = self.fq_mul(&inv, e);
            *e = out;
        }
    }

    /// Scales an F_q element by an F_p scalar.
    pub fn fq_mul_fp(&self, a: &Fq, s: &Fp) -> Fq {
        let mut out = a.clone();
        for x in out.c[..out.len].iter_mut() {
            x.mul_assign(s);
        }
        out
    }

    /// Multiplies by a small non-negative integer.
    pub fn fq_mul_small(&self, a: &Fq, k: u64) -> Fq {
        let mut out = a.clone();
        for x in out.c[..out.len].iter_mut() {
            *x = x.mul_small(k);
        }
        out
    }

    /// Multiplies by the sextic non-residue ξ (the IR `adj` operation at
    /// the F_q level).
    ///
    /// For the standard tower shapes (`ξ = 1 + u` at k = 12, `ξ = v` at
    /// k = 24, both with `β = −1`) this is multiplication-free — a couple
    /// of base-field additions instead of a full `fq_mul`, which matters
    /// because the cubic Karatsuba layer invokes it twice per product.
    pub fn fq_mul_xi(&self, a: &Fq) -> Fq {
        match self.xi_kind {
            XiKind::OnePlusU => Fq::new2(&a.c[0] - &a.c[1], &a.c[0] + &a.c[1]),
            XiKind::V => Fq::new4([
                &a.c[2] - &a.c[3],
                &a.c[2] + &a.c[3],
                a.c[0].clone(),
                a.c[1].clone(),
            ]),
            XiKind::Generic => self.fq_mul(a, &self.xi),
        }
    }

    /// `j`-fold Frobenius `a ↦ a^(p^j)` in F_q.
    ///
    /// # Panics
    ///
    /// Panics if `j` exceeds the precomputed-constant range.
    pub fn fq_frob(&self, a: &Fq, j: usize) -> Fq {
        self.fq_frob_raw(a, j)
    }

    fn fq_frob_raw(&self, a: &Fq, j: usize) -> Fq {
        assert!(j <= MAX_FROB, "frobenius power out of precomputed range");
        match self.qdeg {
            2 => {
                // In place on a copy: only the odd coefficient changes.
                let mut out = a.clone();
                out.c[1].mul_assign(&self.u_frob[j]);
                out
            }
            4 => {
                let (a0, a1) = Self::as_fp4(a);
                let x0 = self.fp2_frob(&a0, j);
                let x1 = self.fp2_mul(&self.fp2_frob(&a1, j), &self.v_frob[j]);
                Self::fq_from_fp4(x0, x1)
            }
            _ => unreachable!("qdeg is 2 or 4"),
        }
    }

    /// Exponentiation in F_q.
    pub fn fq_pow(&self, a: &Fq, e: &BigUint) -> Fq {
        let mut acc = self.fq_one();
        for i in (0..e.bits()).rev() {
            acc = self.fq_sqr(&acc);
            if e.bit(i) {
                acc = self.fq_mul(&acc, a);
            }
        }
        acc
    }

    /// Square root in F_q via generic Tonelli–Shanks, `None` for
    /// non-residues. Used when deriving G2 generators.
    pub fn fq_sqrt(&self, a: &Fq) -> Option<Fq> {
        if self.fq_is_zero(a) {
            return Some(a.clone());
        }
        let one = self.fq_one();
        // q = p^(k/6) >= 3, so the subtraction cannot underflow.
        let qm1 = self.q.checked_sub(&BigUint::one()).unwrap_or_default();
        let half = qm1.shr(1);
        if !self.fq_is_one(&self.fq_pow(a, &half)) {
            return None;
        }
        let e = qm1.trailing_zeros();
        let m = qm1.shr(e);
        // Find a non-residue z deterministically.
        let mut z = self.fq_sample(0xDEAD_BEEF);
        let minus_one = self.fq_neg(&one);
        let mut tries = 0u64;
        while self.fq_is_zero(&z) || self.fq_pow(&z, &half) != minus_one {
            tries += 1;
            z = self.fq_sample(0xDEAD_BEEF ^ tries.wrapping_mul(0x5851_F42D_4C95_7F2D));
            assert!(tries < 512, "failed to find a quadratic non-residue in Fq");
        }
        let mut c = self.fq_pow(&z, &m);
        let mut t = self.fq_pow(a, &m);
        let mut r = self.fq_pow(a, &(&m + &BigUint::one()).shr(1));
        let mut e_cur = e;
        while !self.fq_is_one(&t) {
            // Find least i with t^(2^i) = 1.
            let mut i = 0usize;
            let mut t2 = t.clone();
            while !self.fq_is_one(&t2) {
                t2 = self.fq_sqr(&t2);
                i += 1;
                if i == e_cur {
                    return None; // defensive; cannot happen for residues
                }
            }
            let mut b = c.clone();
            for _ in 0..e_cur - i - 1 {
                b = self.fq_sqr(&b);
            }
            r = self.fq_mul(&r, &b);
            c = self.fq_sqr(&b);
            t = self.fq_mul(&t, &c);
            e_cur = i;
        }
        debug_assert_eq!(self.fq_sqr(&r), *a);
        Some(r)
    }

    // ------------------------------------------------------------------
    // Canonical byte codecs: fixed-width big-endian per coefficient,
    // low coefficient first (c0 ‖ c1 [‖ c2 ‖ c3]). The wire module in
    // finesse-curves builds its point encodings from these.
    // ------------------------------------------------------------------

    /// Byte length of one canonical F_q element: `qdeg` coefficients of
    /// `ceil(p_bits / 8)` bytes each.
    pub fn fq_byte_len(&self) -> usize {
        self.qdeg * self.fp.byte_len()
    }

    /// Serialises an F_q element as `qdeg` fixed-width big-endian
    /// coefficients, low coefficient first.
    pub fn fq_to_bytes_be(&self, a: &Fq) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.fq_byte_len());
        for c in a.coeffs() {
            out.extend_from_slice(&c.to_bytes_be());
        }
        out
    }

    /// Strict inverse of [`fq_to_bytes_be`](Self::fq_to_bytes_be):
    /// rejects wrong lengths and any coefficient `>= p`.
    pub fn fq_from_bytes_be(&self, bytes: &[u8]) -> Result<Fq, FieldBytesError> {
        let expected = self.fq_byte_len();
        if bytes.len() != expected {
            return Err(FieldBytesError::Length {
                expected,
                got: bytes.len(),
            });
        }
        let w = self.fp.byte_len();
        let mut coeffs = Vec::with_capacity(self.qdeg);
        for chunk in bytes.chunks_exact(w) {
            coeffs.push(self.fp.from_bytes_be(chunk)?);
        }
        // qdeg is 2 or 4 by construction, so from_coeffs cannot fail on
        // a length-qdeg vector; map defensively to keep the path total.
        Fq::from_coeffs(coeffs).map_err(|_| FieldBytesError::Length {
            expected,
            got: bytes.len(),
        })
    }

    // ------------------------------------------------------------------
    // Cubic-layer helpers: triples (t0, t1, t2) over F_q with s³ = ξ.
    // ------------------------------------------------------------------

    fn c_add(&self, a: &[Fq; 3], b: &[Fq; 3]) -> [Fq; 3] {
        [
            self.fq_add(&a[0], &b[0]),
            self.fq_add(&a[1], &b[1]),
            self.fq_add(&a[2], &b[2]),
        ]
    }

    fn c_sub(&self, a: &[Fq; 3], b: &[Fq; 3]) -> [Fq; 3] {
        [
            self.fq_sub(&a[0], &b[0]),
            self.fq_sub(&a[1], &b[1]),
            self.fq_sub(&a[2], &b[2]),
        ]
    }

    fn c_mul(&self, a: &[Fq; 3], b: &[Fq; 3]) -> [Fq; 3] {
        // Karatsuba-3: six F_q multiplications.
        let v0 = self.fq_mul(&a[0], &b[0]);
        let v1 = self.fq_mul(&a[1], &b[1]);
        let v2 = self.fq_mul(&a[2], &b[2]);
        let t01 = self.fq_sub(
            &self.fq_mul(&self.fq_add(&a[0], &a[1]), &self.fq_add(&b[0], &b[1])),
            &self.fq_add(&v0, &v1),
        );
        let t02 = self.fq_sub(
            &self.fq_mul(&self.fq_add(&a[0], &a[2]), &self.fq_add(&b[0], &b[2])),
            &self.fq_add(&v0, &v2),
        );
        let t12 = self.fq_sub(
            &self.fq_mul(&self.fq_add(&a[1], &a[2]), &self.fq_add(&b[1], &b[2])),
            &self.fq_add(&v1, &v2),
        );
        [
            self.fq_add(&v0, &self.fq_mul_xi(&t12)),
            self.fq_add(&t01, &self.fq_mul_xi(&v2)),
            self.fq_add(&t02, &v1),
        ]
    }

    fn c_sqr(&self, a: &[Fq; 3]) -> [Fq; 3] {
        let v0 = self.fq_sqr(&a[0]);
        let v1 = self.fq_sqr(&a[1]);
        let v2 = self.fq_sqr(&a[2]);
        let t01 = self.fq_sub(
            &self.fq_sqr(&self.fq_add(&a[0], &a[1])),
            &self.fq_add(&v0, &v1),
        );
        let t02 = self.fq_sub(
            &self.fq_sqr(&self.fq_add(&a[0], &a[2])),
            &self.fq_add(&v0, &v2),
        );
        let t12 = self.fq_sub(
            &self.fq_sqr(&self.fq_add(&a[1], &a[2])),
            &self.fq_add(&v1, &v2),
        );
        [
            self.fq_add(&v0, &self.fq_mul_xi(&t12)),
            self.fq_add(&t01, &self.fq_mul_xi(&v2)),
            self.fq_add(&t02, &v1),
        ]
    }

    fn c_mul_by_s(&self, a: &[Fq; 3]) -> [Fq; 3] {
        [self.fq_mul_xi(&a[2]), a[0].clone(), a[1].clone()]
    }

    fn c_inv(&self, a: &[Fq; 3]) -> [Fq; 3] {
        // Standard cubic-extension inversion via the adjugate.
        let c0 = self.fq_sub(
            &self.fq_sqr(&a[0]),
            &self.fq_mul_xi(&self.fq_mul(&a[1], &a[2])),
        );
        let c1 = self.fq_sub(
            &self.fq_mul_xi(&self.fq_sqr(&a[2])),
            &self.fq_mul(&a[0], &a[1]),
        );
        let c2 = self.fq_sub(&self.fq_sqr(&a[1]), &self.fq_mul(&a[0], &a[2]));
        let norm = self.fq_add(
            &self.fq_mul(&a[0], &c0),
            &self.fq_mul_xi(&self.fq_add(&self.fq_mul(&a[2], &c1), &self.fq_mul(&a[1], &c2))),
        );
        let ninv = self.fq_inv(&norm);
        [
            self.fq_mul(&c0, &ninv),
            self.fq_mul(&c1, &ninv),
            self.fq_mul(&c2, &ninv),
        ]
    }

    fn c_zero(&self) -> [Fq; 3] {
        [self.fq_zero(), self.fq_zero(), self.fq_zero()]
    }

    // View helpers between the w-power order and the (even, odd) cubic pair.
    fn even_part(a: &Fpk) -> [Fq; 3] {
        [a.c[0].clone(), a.c[2].clone(), a.c[4].clone()]
    }

    fn odd_part(a: &Fpk) -> [Fq; 3] {
        [a.c[1].clone(), a.c[3].clone(), a.c[5].clone()]
    }

    fn from_parts(even: [Fq; 3], odd: [Fq; 3]) -> Fpk {
        let [e0, e1, e2] = even;
        let [o0, o1, o2] = odd;
        Fpk {
            c: [e0, o0, e1, o1, e2, o2],
        }
    }

    // ------------------------------------------------------------------
    // F_p^k operations (public API).
    // ------------------------------------------------------------------

    /// The zero of F_p^k.
    pub fn fpk_zero(&self) -> Fpk {
        Fpk {
            c: std::array::from_fn(|_| self.fq_zero()),
        }
    }

    /// The one of F_p^k.
    pub fn fpk_one(&self) -> Fpk {
        let mut z = self.fpk_zero();
        z.c[0] = self.fq_one();
        z
    }

    /// Embeds an F_q element as the constant coefficient.
    pub fn fpk_from_fq(&self, a: &Fq) -> Fpk {
        let mut z = self.fpk_zero();
        z.c[0] = a.clone();
        z
    }

    /// Builds an element from sparse `w`-power coefficients (`None` = 0).
    ///
    /// This is how Miller-loop line functions enter the dense
    /// representation; the compiler's constant-zero propagation later
    /// recovers the sparsity (§4.3 of the paper).
    pub fn fpk_from_sparse(&self, coeffs: [Option<Fq>; 6]) -> Fpk {
        Fpk {
            c: coeffs.map(|c| c.unwrap_or_else(|| self.fq_zero())),
        }
    }

    /// Deterministically samples an element (tests/vectors).
    pub fn fpk_sample(&self, seed: u64) -> Fpk {
        Fpk {
            c: std::array::from_fn(|i| {
                self.fq_sample(seed ^ ((i as u64).wrapping_mul(0xABCD_EF01_2345)))
            }),
        }
    }

    /// True iff one.
    pub fn fpk_is_one(&self, a: &Fpk) -> bool {
        self.fq_is_one(&a.c[0]) && a.c[1..].iter().all(|x| self.fq_is_zero(x))
    }

    /// True iff zero.
    pub fn fpk_is_zero(&self, a: &Fpk) -> bool {
        a.c.iter().all(|x| self.fq_is_zero(x))
    }

    /// Addition.
    pub fn fpk_add(&self, a: &Fpk, b: &Fpk) -> Fpk {
        Fpk {
            c: std::array::from_fn(|m| self.fq_add(&a.c[m], &b.c[m])),
        }
    }

    /// Subtraction.
    pub fn fpk_sub(&self, a: &Fpk, b: &Fpk) -> Fpk {
        Fpk {
            c: std::array::from_fn(|m| self.fq_sub(&a.c[m], &b.c[m])),
        }
    }

    /// Negation.
    pub fn fpk_neg(&self, a: &Fpk) -> Fpk {
        Fpk {
            c: std::array::from_fn(|m| self.fq_neg(&a.c[m])),
        }
    }

    /// Multiplication (Karatsuba quadratic over Karatsuba cubic —
    /// 18 F_q multiplications).
    pub fn fpk_mul(&self, a: &Fpk, b: &Fpk) -> Fpk {
        let (a0, a1) = (Self::even_part(a), Self::odd_part(a));
        let (b0, b1) = (Self::even_part(b), Self::odd_part(b));
        let v0 = self.c_mul(&a0, &b0);
        let v1 = self.c_mul(&a1, &b1);
        let cross = self.c_sub(
            &self.c_mul(&self.c_add(&a0, &a1), &self.c_add(&b0, &b1)),
            &self.c_add(&v0, &v1),
        );
        let even = self.c_add(&v0, &self.c_mul_by_s(&v1));
        Self::from_parts(even, cross)
    }

    /// Multiplies a dense element by a *sparse* one given as `w`-power
    /// coefficients (`None` = 0) — the Miller-loop line shapes.
    ///
    /// The two line shapes the pairing emits (D twist: `w⁰,w¹,w³`;
    /// M twist: `w⁰,w²,w³`) take a dedicated 13-`fq_mul` path instead of
    /// densifying into the 18-`fq_mul` Karatsuba of [`TowerCtx::fpk_mul`];
    /// any other shape falls back to the dense product. The result is
    /// bit-identical to the dense path (same field value, canonical
    /// coefficients).
    pub fn fpk_mul_sparse(&self, a: &Fpk, coeffs: &[Option<Fq>; 6]) -> Fpk {
        match coeffs {
            [Some(c0), Some(c1), None, Some(c3), None, None] => {
                // D-twist line: even part [c0, 0, 0], odd part [c1, c3, 0].
                let (a0, a1) = (Self::even_part(a), Self::odd_part(a));
                let t0 = self.c_mul_sparse0(&a0, c0);
                let t1 = self.c_mul_sparse01(&a1, c1, c3);
                let sum_a = self.c_add(&a0, &a1);
                let l0 = self.fq_add(c0, c1);
                let mut cross = self.c_mul_sparse01(&sum_a, &l0, c3);
                cross = self.c_sub(&self.c_sub(&cross, &t0), &t1);
                let even = self.c_add(&t0, &self.c_mul_by_s(&t1));
                Self::from_parts(even, cross)
            }
            [Some(c0), None, Some(c2), Some(c3), None, None] => {
                // M-twist line: even part [c0, c2, 0], odd part [0, c3, 0].
                let (a0, a1) = (Self::even_part(a), Self::odd_part(a));
                let t0 = self.c_mul_sparse01(&a0, c0, c2);
                let t1 = self.c_mul_sparse1(&a1, c3);
                let sum_a = self.c_add(&a0, &a1);
                let l1 = self.fq_add(c2, c3);
                let mut cross = self.c_mul_sparse01(&sum_a, c0, &l1);
                cross = self.c_sub(&self.c_sub(&cross, &t0), &t1);
                let even = self.c_add(&t0, &self.c_mul_by_s(&t1));
                Self::from_parts(even, cross)
            }
            _ => {
                let dense = self.fpk_from_sparse(coeffs.clone());
                self.fpk_mul(a, &dense)
            }
        }
    }

    /// Cubic-layer product by `[b0, 0, 0]`: three `fq_mul`s.
    fn c_mul_sparse0(&self, a: &[Fq; 3], b0: &Fq) -> [Fq; 3] {
        [
            self.fq_mul(&a[0], b0),
            self.fq_mul(&a[1], b0),
            self.fq_mul(&a[2], b0),
        ]
    }

    /// Cubic-layer product by `[0, b1, 0]`: three `fq_mul`s
    /// (`c0 = ξ·a2·b1`, `c1 = a0·b1`, `c2 = a1·b1`).
    fn c_mul_sparse1(&self, a: &[Fq; 3], b1: &Fq) -> [Fq; 3] {
        [
            self.fq_mul_xi(&self.fq_mul(&a[2], b1)),
            self.fq_mul(&a[0], b1),
            self.fq_mul(&a[1], b1),
        ]
    }

    /// Cubic-layer product by `[b0, b1, 0]`: five `fq_mul`s
    /// (Karatsuba on the low two coefficients, direct `a2` terms).
    fn c_mul_sparse01(&self, a: &[Fq; 3], b0: &Fq, b1: &Fq) -> [Fq; 3] {
        let v0 = self.fq_mul(&a[0], b0);
        let v1 = self.fq_mul(&a[1], b1);
        let t01 = self.fq_sub(
            &self.fq_mul(&self.fq_add(&a[0], &a[1]), &self.fq_add(b0, b1)),
            &self.fq_add(&v0, &v1),
        );
        let t12 = self.fq_mul(&a[2], b1);
        let t02 = self.fq_mul(&a[2], b0);
        [
            self.fq_add(&v0, &self.fq_mul_xi(&t12)),
            t01,
            self.fq_add(&t02, &v1),
        ]
    }

    /// Squaring (complex method over the cubic layer).
    pub fn fpk_sqr(&self, a: &Fpk) -> Fpk {
        let (a0, a1) = (Self::even_part(a), Self::odd_part(a));
        let v0 = self.c_mul(&a0, &a1);
        let t = self.c_mul(
            &self.c_add(&a0, &a1),
            &self.c_add(&a0, &self.c_mul_by_s(&a1)),
        );
        let even = self.c_sub(&self.c_sub(&t, &v0), &self.c_mul_by_s(&v0));
        let odd = self.c_add(&v0, &v0);
        Self::from_parts(even, odd)
    }

    /// Conjugation `a ↦ a^(p^(k/2))`: negates odd `w`-coefficients.
    ///
    /// For elements in the cyclotomic subgroup this is the inverse.
    pub fn fpk_conj(&self, a: &Fpk) -> Fpk {
        Fpk {
            c: std::array::from_fn(|m| {
                if m % 2 == 1 {
                    self.fq_neg(&a.c[m])
                } else {
                    a.c[m].clone()
                }
            }),
        }
    }

    /// Inversion.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn fpk_inv(&self, a: &Fpk) -> Fpk {
        assert!(!self.fpk_is_zero(a), "inversion of zero in Fpk");
        let (a0, a1) = (Self::even_part(a), Self::odd_part(a));
        // (a0 + a1 w)^-1 = (a0 - a1 w) / (a0² - s·a1²)
        let denom = self.c_sub(&self.c_sqr(&a0), &self.c_mul_by_s(&self.c_sqr(&a1)));
        let dinv = self.c_inv(&denom);
        let even = self.c_mul(&a0, &dinv);
        let odd_neg = self.c_mul(&a1, &dinv);
        let odd = self.c_sub(&self.c_zero(), &odd_neg);
        Self::from_parts(even, odd)
    }

    /// `j`-fold Frobenius `a ↦ a^(p^j)`.
    ///
    /// # Panics
    ///
    /// Panics if `j > 6` (precomputed-constant range).
    pub fn fpk_frob(&self, a: &Fpk, j: usize) -> Fpk {
        assert!(j <= MAX_FROB, "frobenius power out of precomputed range");
        Fpk {
            c: std::array::from_fn(|m| {
                let mut y = self.fq_frob_raw(&a.c[m], j);
                // multiply by ξ^(m (p^j − 1)/6) = w_frob[j]^m
                for _ in 0..m {
                    y = self.fq_mul(&y, &self.w_frob[j]);
                }
                y
            }),
        }
    }

    /// Scales by an F_q element (coefficient-wise).
    pub fn fpk_mul_fq(&self, a: &Fpk, s: &Fq) -> Fpk {
        Fpk {
            c: std::array::from_fn(|m| self.fq_mul(&a.c[m], s)),
        }
    }

    /// Exponentiation by an arbitrary big-integer exponent.
    pub fn fpk_pow(&self, a: &Fpk, e: &BigUint) -> Fpk {
        let mut acc = self.fpk_one();
        for i in (0..e.bits()).rev() {
            acc = self.fpk_sqr(&acc);
            if e.bit(i) {
                acc = self.fpk_mul(&acc, a);
            }
        }
        acc
    }

    /// Granger–Scott squaring, valid only for elements of the cyclotomic
    /// subgroup (i.e. after the easy part of the final exponentiation).
    ///
    /// Uses the 2-over-3 internal `F_q²`-pair squarings; costs 9 F_q
    /// multiplications against 18 for a full [`TowerCtx::fpk_sqr`].
    pub fn fpk_cyclotomic_sqr(&self, a: &Fpk) -> Fpk {
        // z-coefficient naming follows the classical presentation over the
        // (internal-quadratic) pairs (z0,z1), (z2,z3), (z4,z5) where the
        // pair field is F_q[s]/(s² − ...) embedded via w-powers:
        //   z0 = c[0] (w^0), z1 = c[3] (w^3),
        //   z2 = c[1] (w^1), z3 = c[4] (w^4),
        //   z4 = c[2] (w^2), z5 = c[5] (w^5).
        // fq4_sq(a,b) squares a + b·t where t² = ξ-like constant per pair.
        let z0 = &a.c[0];
        let z1 = &a.c[3];
        let z2 = &a.c[1];
        let z3 = &a.c[4];
        let z4 = &a.c[2];
        let z5 = &a.c[5];

        // (w^0, w^3): (w^3)² = ξ        -> nonres ξ
        let (t0, t1) = self.fq4_sq(z0, z1);
        // (w^1, w^4): (w^4)² / (w^1)² = w^6 = ξ, pair behaves like a + b·w3 scaled
        let (t2, t3) = self.fq4_sq(z2, z3);
        // (w^2, w^5)
        let (t4, t5) = self.fq4_sq(z4, z5);

        // z0' = 3t0 − 2z0 ; z1' = 3t1 + 2z1
        let c0 = self.fq_sub(&self.fq_mul_small(&t0, 3), &self.fq_mul_small(z0, 2));
        let c3 = self.fq_add(&self.fq_mul_small(&t1, 3), &self.fq_mul_small(z1, 2));
        // z4' = 3t2 − 2z4 ; z5' = 3t3 + 2z5
        let c2 = self.fq_sub(&self.fq_mul_small(&t2, 3), &self.fq_mul_small(z4, 2));
        let c5 = self.fq_add(&self.fq_mul_small(&t3, 3), &self.fq_mul_small(z5, 2));
        // z2' = 3·ξ·t5 + 2z2 ; z3' = 3t4 − 2z3
        let c1 = self.fq_add(
            &self.fq_mul_small(&self.fq_mul_xi(&t5), 3),
            &self.fq_mul_small(z2, 2),
        );
        let c4 = self.fq_sub(&self.fq_mul_small(&t4, 3), &self.fq_mul_small(z3, 2));
        Fpk {
            c: [c0, c1, c2, c3, c4, c5],
        }
    }

    /// Squares `a + b·w³`-style pairs: returns
    /// `(a² + ξ·b², (a+b)² − a² − b²)`.
    fn fq4_sq(&self, a: &Fq, b: &Fq) -> (Fq, Fq) {
        let a2 = self.fq_sqr(a);
        let b2 = self.fq_sqr(b);
        let t0 = self.fq_add(&a2, &self.fq_mul_xi(&b2));
        let t1 = self.fq_sub(&self.fq_sqr(&self.fq_add(a, b)), &self.fq_add(&a2, &b2));
        (t0, t1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small test tower: k = 12 over the BLS12-381 prime with the standard
    /// β = −1, ξ = 1 + u.
    fn bls12_tower() -> Arc<TowerCtx> {
        let p = BigUint::from_hex(
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab",
        )
        .unwrap();
        let fp = FpCtx::new(p).unwrap();
        let beta = fp.from_i64(-1);
        let xi = (fp.one(), fp.one());
        TowerCtx::sextic_over_fp2(&fp, beta, xi).unwrap()
    }

    #[test]
    fn construction_rejects_bad_nonresidues() {
        let p = BigUint::from_hex(
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab",
        )
        .unwrap();
        let fp = FpCtx::new(p).unwrap();
        // 4 is a QR, so u² = 4 is reducible.
        let r = TowerCtx::sextic_over_fp2(&fp, fp.from_u64(4), (fp.one(), fp.one()));
        assert_eq!(r.unwrap_err(), TowerError::QuadraticResidueBeta);
    }

    #[test]
    fn fq_field_axioms() {
        let t = bls12_tower();
        for seed in 0..6u64 {
            let a = t.fq_sample(seed);
            let b = t.fq_sample(seed + 50);
            let c = t.fq_sample(seed + 99);
            assert_eq!(t.fq_mul(&a, &b), t.fq_mul(&b, &a));
            assert_eq!(
                t.fq_mul(&a, &t.fq_add(&b, &c)),
                t.fq_add(&t.fq_mul(&a, &b), &t.fq_mul(&a, &c))
            );
            assert_eq!(t.fq_sqr(&a), t.fq_mul(&a, &a));
            if !t.fq_is_zero(&a) {
                assert!(t.fq_is_one(&t.fq_mul(&a, &t.fq_inv(&a))));
            }
        }
    }

    #[test]
    fn fq_batch_inv_matches_individual() {
        let t = bls12_tower();
        let mut elems: Vec<Fq> = (1..9u64).map(|s| t.fq_sample(s)).collect();
        let expected: Vec<Fq> = elems.iter().map(|e| t.fq_inv(e)).collect();
        t.fq_batch_inv(&mut elems);
        assert_eq!(elems, expected);
        t.fq_batch_inv(&mut []);
    }

    #[test]
    fn fq_frobenius_matches_pow() {
        let t = bls12_tower();
        let a = t.fq_sample(7);
        let p = t.fp().modulus().clone();
        assert_eq!(t.fq_frob_raw(&a, 1), t.fq_pow(&a, &p));
        assert_eq!(t.fq_frob_raw(&a, 2), t.fq_pow(&t.fq_pow(&a, &p), &p));
    }

    #[test]
    fn fpk_ring_axioms() {
        let t = bls12_tower();
        for seed in 0..4u64 {
            let a = t.fpk_sample(seed);
            let b = t.fpk_sample(seed + 11);
            let c = t.fpk_sample(seed + 23);
            assert_eq!(t.fpk_mul(&a, &b), t.fpk_mul(&b, &a));
            assert_eq!(
                t.fpk_mul(&t.fpk_mul(&a, &b), &c),
                t.fpk_mul(&a, &t.fpk_mul(&b, &c))
            );
            assert_eq!(t.fpk_sqr(&a), t.fpk_mul(&a, &a));
            assert_eq!(
                t.fpk_mul(&a, &t.fpk_add(&b, &c)),
                t.fpk_add(&t.fpk_mul(&a, &b), &t.fpk_mul(&a, &c))
            );
            assert!(t.fpk_is_one(&t.fpk_mul(&a, &t.fpk_inv(&a))));
        }
    }

    #[test]
    fn fpk_frobenius_matches_pow() {
        let t = bls12_tower();
        let a = t.fpk_sample(3);
        let p = t.fp().modulus().clone();
        let frob1 = t.fpk_frob(&a, 1);
        assert_eq!(frob1, t.fpk_pow(&a, &p));
        let frob2 = t.fpk_frob(&a, 2);
        assert_eq!(frob2, t.fpk_frob(&frob1, 1));
        // φ^k = identity
        let mut x = a.clone();
        for _ in 0..4 {
            x = t.fpk_frob(&x, 3);
        }
        assert_eq!(x, a);
    }

    #[test]
    fn conj_is_pk_half_frobenius() {
        let t = bls12_tower();
        let a = t.fpk_sample(9);
        let mut expect = a.clone();
        for _ in 0..2 {
            expect = t.fpk_frob(&expect, 3);
        }
        assert_eq!(t.fpk_conj(&a), expect);
    }

    #[test]
    fn cyclotomic_square_agrees_on_cyclotomic_subgroup() {
        let t = bls12_tower();
        // Project into the cyclotomic subgroup via the easy part:
        // g = (a^(p^6 - 1))^(p^2 + 1).
        let a = t.fpk_sample(42);
        let g = {
            let inv = t.fpk_inv(&a);
            let e1 = t.fpk_mul(&t.fpk_conj(&a), &inv); // a^(p^6 − 1)
            t.fpk_mul(&t.fpk_frob(&e1, 2), &e1) // ^(p^2 + 1)
        };
        assert_eq!(t.fpk_cyclotomic_sqr(&g), t.fpk_sqr(&g));
        // And again one level deeper.
        let g2 = t.fpk_sqr(&g);
        assert_eq!(t.fpk_cyclotomic_sqr(&g2), t.fpk_sqr(&g2));
    }

    #[test]
    fn conj_inverts_cyclotomic_elements() {
        let t = bls12_tower();
        let a = t.fpk_sample(17);
        let inv = t.fpk_inv(&a);
        let e1 = t.fpk_mul(&t.fpk_conj(&a), &inv);
        let g = t.fpk_mul(&t.fpk_frob(&e1, 2), &e1);
        assert!(t.fpk_is_one(&t.fpk_mul(&g, &t.fpk_conj(&g))));
    }

    #[test]
    fn fq_sqrt_roundtrip() {
        let t = bls12_tower();
        for seed in 1..5u64 {
            let a = t.fq_sample(seed);
            let sq = t.fq_sqr(&a);
            let r = t.fq_sqrt(&sq).expect("square has a root");
            assert!(r == a || r == t.fq_neg(&a));
        }
    }

    #[test]
    fn lazy_fq_mul_matches_direct_fp_formula() {
        // The BLS12-381 tower takes the lazy path (β = −1, headroom 3);
        // cross-check against the schoolbook formula computed with the
        // plain (interleaved-reduction) Fp kernels.
        let t = bls12_tower();
        assert!(t.lazy2, "test tower should dispatch lazily");
        for seed in 0..12u64 {
            let a = t.fq_sample(seed);
            let b = t.fq_sample(seed + 201);
            let (a0, a1) = (&a.coeffs()[0], &a.coeffs()[1]);
            let (b0, b1) = (&b.coeffs()[0], &b.coeffs()[1]);
            // β = −1: (a0 + a1u)(b0 + b1u) = (a0b0 − a1b1) + (a0b1 + a1b0)u
            let c0 = &(a0 * b0) - &(a1 * b1);
            let c1 = &(a0 * b1) + &(a1 * b0);
            let got = t.fq_mul(&a, &b);
            assert_eq!(got.coeffs(), &[c0, c1][..], "seed {seed}");
            let sq = t.fq_sqr(&a);
            assert_eq!(sq, t.fq_mul(&a, &a), "seed {seed} sqr");
        }
        // Edge coefficients (p − 1) maximise every carry chain.
        let pm1 = t.fp().from_i64(-1);
        let edge = Fq::new2(pm1.clone(), pm1.clone());
        let e0 = &(&pm1 * &pm1) - &(&pm1 * &pm1);
        let e1 = (&pm1 * &pm1).double();
        assert_eq!(t.fq_mul(&edge, &edge).coeffs(), &[e0, e1][..]);
        assert_eq!(t.fq_sqr(&edge), t.fq_mul(&edge, &edge));
    }

    #[test]
    fn fq_mul_xi_fast_path_matches_full_mul() {
        let t = bls12_tower();
        for seed in 0..8u64 {
            let a = t.fq_sample(seed);
            assert_eq!(t.fq_mul_xi(&a), t.fq_mul(&a, t.xi()), "seed {seed}");
        }
    }

    #[test]
    fn sparse_line_mul_matches_dense_both_shapes() {
        let t = bls12_tower();
        for seed in 0..6u64 {
            let f = t.fpk_sample(seed);
            let (c0, c1, c3) = (
                t.fq_sample(seed + 10),
                t.fq_sample(seed + 20),
                t.fq_sample(seed + 30),
            );
            // D-twist shape: w⁰, w¹, w³.
            let d = [
                Some(c0.clone()),
                Some(c1.clone()),
                None,
                Some(c3.clone()),
                None,
                None,
            ];
            let dense = t.fpk_mul(&f, &t.fpk_from_sparse(d.clone()));
            assert_eq!(t.fpk_mul_sparse(&f, &d), dense, "seed {seed} D");
            // M-twist shape: w⁰, w², w³.
            let m = [
                Some(c0.clone()),
                None,
                Some(c1.clone()),
                Some(c3.clone()),
                None,
                None,
            ];
            let dense = t.fpk_mul(&f, &t.fpk_from_sparse(m.clone()));
            assert_eq!(t.fpk_mul_sparse(&f, &m), dense, "seed {seed} M");
            // Unrecognised shape falls back to the dense product.
            let other = [Some(c0.clone()), None, None, None, None, Some(c3.clone())];
            let dense = t.fpk_mul(&f, &t.fpk_from_sparse(other.clone()));
            assert_eq!(t.fpk_mul_sparse(&f, &other), dense, "seed {seed} other");
        }
    }

    #[test]
    fn from_coeffs_rejects_bad_counts() {
        let t = bls12_tower();
        let one = t.fp().one();
        assert_eq!(
            Fq::from_coeffs(vec![one.clone()]).unwrap_err(),
            TowerError::CoeffCount {
                expected: "2 or 4",
                got: 1
            }
        );
        assert!(Fq::from_coeffs(vec![one.clone(), one.clone()]).is_ok());
        assert!(Fq::from_coeffs(vec![one.clone(); 4]).is_ok());
        assert_eq!(
            Fpk::from_coeffs(vec![t.fq_zero(); 5]).unwrap_err(),
            TowerError::CoeffCount {
                expected: "6",
                got: 5
            }
        );
        assert!(Fpk::from_coeffs(vec![t.fq_zero(); 6]).is_ok());
    }

    #[test]
    fn sparse_assembly_matches_dense() {
        let t = bls12_tower();
        let c0 = t.fq_sample(1);
        let c1 = t.fq_sample(2);
        let c3 = t.fq_sample(3);
        let sparse = t.fpk_from_sparse([
            Some(c0.clone()),
            Some(c1.clone()),
            None,
            Some(c3.clone()),
            None,
            None,
        ]);
        assert_eq!(sparse.coeffs()[0], c0);
        assert_eq!(sparse.coeffs()[2], t.fq_zero());
        let dense = t.fpk_mul(&sparse, &t.fpk_one());
        assert_eq!(dense, sparse);
    }
}
