//! Signed arbitrary-precision integers.
//!
//! [`BigInt`] exists for curve-family parameters: the BN/BLS generator `t`
//! is frequently negative, and family polynomials such as
//! `p(t) = 36t^4 + 36t^3 + 24t^2 + 6t + 1` must be evaluated with correct
//! signs before the (positive) results flow into [`crate::BigUint`]-based
//! field setup.

use crate::BigUint;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision signed integer (sign + magnitude).
///
/// Zero is always stored with a positive sign.
///
/// # Examples
///
/// ```
/// use finesse_ff::BigInt;
///
/// let t = BigInt::from_i64(-5);
/// let sq = &t * &t;
/// assert_eq!(sq, BigInt::from_i64(25));
/// assert!(t.is_negative());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    negative: bool,
    magnitude: BigUint,
}

impl BigInt {
    /// The value zero.
    pub fn zero() -> Self {
        BigInt {
            negative: false,
            magnitude: BigUint::zero(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        BigInt {
            negative: false,
            magnitude: BigUint::one(),
        }
    }

    /// Constructs from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        BigInt {
            negative: v < 0,
            magnitude: BigUint::from_u64(v.unsigned_abs()),
        }
    }

    /// Constructs a non-negative value from a [`BigUint`].
    pub fn from_biguint(v: BigUint) -> Self {
        BigInt {
            negative: false,
            magnitude: v,
        }
    }

    /// Constructs from sign and magnitude (zero normalises to positive).
    pub fn from_sign_magnitude(negative: bool, magnitude: BigUint) -> Self {
        BigInt {
            negative: negative && !magnitude.is_zero(),
            magnitude,
        }
    }

    /// Evaluates a `2^a ± 2^b ± ...` style expression: each `(sign, power)`
    /// term contributes `sign * 2^power`.
    ///
    /// This is how sparse curve generators from the literature are written,
    /// e.g. BLS12-381's `t = -(2^63 + 2^62 + 2^60 + 2^57 + 2^48 + 2^16)`.
    pub fn from_power_terms(terms: &[(i8, u32)]) -> Self {
        let mut acc = BigInt::zero();
        for &(sign, power) in terms {
            let term = BigInt::from_sign_magnitude(sign < 0, BigUint::one().shl(power as usize));
            acc = &acc + &term;
        }
        acc
    }

    /// True iff the value is negative (zero is not negative).
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// The absolute value as a [`BigUint`].
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// Converts to [`BigUint`] if non-negative.
    pub fn to_biguint(&self) -> Option<BigUint> {
        if self.negative {
            None
        } else {
            Some(self.magnitude.clone())
        }
    }

    /// `self mod m` reduced into `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem_euclid(&self, m: &BigUint) -> BigUint {
        let r = self.magnitude.rem(m);
        if self.negative && !r.is_zero() {
            // r = |self| mod m < m, so the subtraction cannot underflow.
            m.checked_sub(&r).unwrap_or_default()
        } else {
            r
        }
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        BigInt::from_sign_magnitude(!self.negative, self.magnitude.clone())
    }

    /// Exponentiation by a small exponent.
    pub fn pow(&self, e: u32) -> BigInt {
        BigInt::from_sign_magnitude(self.negative && e % 2 == 1, self.magnitude.pow(e))
    }

    /// Evaluates the polynomial `Σ coeffs[i] * self^i` (little-endian
    /// coefficients), e.g. the BN prime polynomial.
    pub fn eval_poly(&self, coeffs: &[i64]) -> BigInt {
        let mut acc = BigInt::zero();
        for &c in coeffs.iter().rev() {
            acc = &(&acc * self) + &BigInt::from_i64(c);
        }
        acc
    }

    /// Number of significant bits of the magnitude (`0` for zero).
    pub fn bits(&self) -> usize {
        self.magnitude.bits()
    }

    /// Truncated division: returns `(quotient, remainder)` with the
    /// quotient rounded toward zero, so `self = q·d + rem` and `rem` has
    /// the sign of `self` (or is zero).
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn divrem(&self, d: &BigInt) -> (BigInt, BigInt) {
        let (q, r) = self.magnitude.divrem(&d.magnitude);
        (
            BigInt::from_sign_magnitude(self.negative != d.negative, q),
            BigInt::from_sign_magnitude(self.negative, r),
        )
    }

    /// Exact division.
    ///
    /// # Panics
    ///
    /// Panics if the division is not exact or `d` is zero.
    pub fn div_exact(&self, d: &BigInt) -> BigInt {
        BigInt::from_sign_magnitude(
            self.negative != d.negative,
            self.magnitude.div_exact(&d.magnitude),
        )
    }

    /// Division by a positive divisor, rounded to the *nearest* integer
    /// (ties away from zero): `⌊self/d⌉`.
    ///
    /// This is the rounding the GLV lattice decomposition needs — using
    /// floor instead would double the sub-scalar bound.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div_round(&self, d: &BigUint) -> BigInt {
        let (q, r) = self.magnitude.divrem(d);
        let twice = &r + &r;
        if twice >= *d {
            BigInt::from_sign_magnitude(self.negative, &q + &BigUint::one())
        } else {
            BigInt::from_sign_magnitude(self.negative, q)
        }
    }
}

impl std::ops::Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.negative == rhs.negative {
            return BigInt::from_sign_magnitude(self.negative, &self.magnitude + &rhs.magnitude);
        }
        match self.magnitude.cmp(&rhs.magnitude) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => {
                BigInt::from_sign_magnitude(self.negative, &self.magnitude - &rhs.magnitude)
            }
            Ordering::Less => {
                BigInt::from_sign_magnitude(rhs.negative, &rhs.magnitude - &self.magnitude)
            }
        }
    }
}

impl std::ops::Sub for &BigInt {
    type Output = BigInt;
    #[allow(clippy::suspicious_arithmetic_impl)] // a - b := a + (-b) by construction
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &rhs.neg()
    }
}

impl std::ops::Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_sign_magnitude(
            self.negative != rhs.negative,
            &self.magnitude * &rhs.magnitude,
        )
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative {
            write!(f, "-{}", self.magnitude)
        } else {
            write!(f, "{}", self.magnitude)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> BigInt {
        BigInt::from_i64(v)
    }

    #[test]
    fn signed_arithmetic_matches_i64() {
        let cases = [(-7i64, 3i64), (7, -3), (-7, -3), (7, 3), (0, -5), (-5, 5)];
        for (a, b) in cases {
            assert_eq!(&i(a) + &i(b), i(a + b), "{a}+{b}");
            assert_eq!(&i(a) - &i(b), i(a - b), "{a}-{b}");
            assert_eq!(&i(a) * &i(b), i(a * b), "{a}*{b}");
        }
    }

    #[test]
    fn zero_is_positive() {
        assert!(!(&i(5) + &i(-5)).is_negative());
        assert!(!BigInt::from_sign_magnitude(true, BigUint::zero()).is_negative());
    }

    #[test]
    fn power_terms() {
        // -(2^63 + 2^62 + 2^60 + 2^57 + 2^48 + 2^16) = BLS12-381 t
        let t =
            BigInt::from_power_terms(&[(-1, 63), (-1, 62), (-1, 60), (-1, 57), (-1, 48), (-1, 16)]);
        assert!(t.is_negative());
        assert_eq!(t.magnitude().to_hex(), "d201000000010000");
    }

    #[test]
    fn rem_euclid_negative() {
        let m = BigUint::from_u64(7);
        assert_eq!(i(-1).rem_euclid(&m), BigUint::from_u64(6));
        assert_eq!(i(-14).rem_euclid(&m), BigUint::zero());
        assert_eq!(i(15).rem_euclid(&m), BigUint::from_u64(1));
    }

    #[test]
    fn poly_eval_bn_prime() {
        // p(t) = 36t^4+36t^3+24t^2+6t+1 at t = -1 gives 19
        let p = i(-1).eval_poly(&[1, 6, 24, 36, 36]);
        assert_eq!(p, i(19));
    }

    #[test]
    fn pow_signs() {
        assert_eq!(i(-2).pow(3), i(-8));
        assert_eq!(i(-2).pow(4), i(16));
    }

    #[test]
    fn divrem_truncates_toward_zero() {
        for (a, b) in [(7i64, 3i64), (-7, 3), (7, -3), (-7, -3), (6, 3), (0, 5)] {
            let (q, r) = i(a).divrem(&i(b));
            assert_eq!(q, i(a / b), "{a}/{b}");
            assert_eq!(r, i(a % b), "{a}%{b}");
        }
    }

    #[test]
    fn div_exact_signed() {
        assert_eq!(i(-36).div_exact(&i(12)), i(-3));
        assert_eq!(i(-36).div_exact(&i(-12)), i(3));
    }

    #[test]
    fn div_round_nearest() {
        let d = BigUint::from_u64(10);
        // 14/10 → 1, 15/10 → 2 (ties away from zero), -15/10 → -2, 16/10 → 2
        assert_eq!(i(14).div_round(&d), i(1));
        assert_eq!(i(15).div_round(&d), i(2));
        assert_eq!(i(-15).div_round(&d), i(-2));
        assert_eq!(i(-14).div_round(&d), i(-1));
        assert_eq!(i(16).div_round(&d), i(2));
        assert_eq!(i(0).div_round(&d), i(0));
    }
}
