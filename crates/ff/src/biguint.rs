//! Arbitrary-precision unsigned integers.
//!
//! [`BigUint`] is the workhorse for curve-parameter synthesis (evaluating the
//! BN/BLS family polynomials), exponent bookkeeping in the pairing final
//! exponentiation, primality checking, and non-adjacent-form recoding. Hot
//! field arithmetic does not go through this type — it uses the fixed-width
//! Montgomery representation in [`crate::fp`].
//!
//! The representation is a little-endian `Vec<u64>` with no trailing zero
//! limbs; zero is the empty vector.

use crate::limbs::{adc, cios_mont_mul, cmp_slices, mac, mont_neg_inv, sbb};
use std::cmp::Ordering;
use std::fmt;

/// Threshold (in limbs) above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

/// An arbitrary-precision unsigned integer.
///
/// # Examples
///
/// ```
/// use finesse_ff::BigUint;
///
/// let a = BigUint::from_u64(36);
/// let t = BigUint::from_hex("4000000000000000").unwrap(); // 2^62
/// let p = &a * &t; // 36 * 2^62
/// assert_eq!(p.bits(), 68);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Constructs from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut out = BigUint {
            limbs: vec![v as u64, (v >> 64) as u64],
        };
        out.normalize();
        out
    }

    /// Constructs from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix required, case
    /// insensitive, underscores ignored).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] if the string contains a non-hex digit
    /// or is empty after filtering.
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        let s = s.trim().trim_start_matches("0x");
        let digits: Vec<u32> = s
            .chars()
            .filter(|&c| c != '_')
            .map(|c| c.to_digit(16).ok_or(ParseBigUintError))
            .collect::<Result<_, _>>()?;
        if digits.is_empty() {
            return Err(ParseBigUintError);
        }
        let mut limbs = vec![0u64; digits.len().div_ceil(16)];
        for (i, &d) in digits.iter().rev().enumerate() {
            limbs[i / 16] |= (d as u64) << (4 * (i % 16));
        }
        Ok(Self::from_limbs(limbs))
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] on any non-digit character or an empty
    /// string.
    pub fn from_decimal(s: &str) -> Result<Self, ParseBigUintError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseBigUintError);
        }
        let mut acc = BigUint::zero();
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseBigUintError)? as u64;
            acc = acc.mul_u64(10);
            acc = &acc + &BigUint::from_u64(d);
        }
        Ok(acc)
    }

    /// Returns the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Copies the value into a fixed-width little-endian limb buffer.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `width` limbs.
    pub fn to_fixed_limbs(&self, width: usize) -> Vec<u64> {
        assert!(
            self.limbs.len() <= width,
            "value does not fit in {width} limbs"
        );
        let mut out = vec![0u64; width];
        out[..self.limbs.len()].copy_from_slice(&self.limbs);
        out
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian position), `false` beyond the top.
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// The low 64 bits (zero for zero).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Checked subtraction; `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, o) in out.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d, b) = sbb(*o, rhs, borrow);
            *o = d;
            borrow = b;
        }
        debug_assert_eq!(borrow, 0);
        Some(Self::from_limbs(out))
    }

    /// Multiplies by a single limb.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + 1];
        let mut carry = 0u64;
        for (i, &l) in self.limbs.iter().enumerate() {
            let (lo, hi) = mac(0, l, m, carry);
            out[i] = lo;
            carry = hi;
        }
        out[self.limbs.len()] = carry;
        Self::from_limbs(out)
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l << bit_shift;
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        Self::from_limbs(out)
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() - limb_shift];
        for (i, o) in out.iter_mut().enumerate() {
            let lo = self.limbs[i + limb_shift] >> bit_shift;
            let hi = if bit_shift != 0 {
                self.limbs
                    .get(i + limb_shift + 1)
                    .map_or(0, |l| l << (64 - bit_shift))
            } else {
                0
            };
            *o = lo | hi;
        }
        Self::from_limbs(out)
    }

    /// Schoolbook multiplication for short operands.
    fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &bj) in b.iter().enumerate() {
                let (lo, hi) = mac(out[i + j], ai, bj, carry);
                out[i + j] = lo;
                carry = hi;
            }
            out[i + b.len()] = carry;
        }
        out
    }

    fn mul_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
            return Self::mul_schoolbook(a, b);
        }
        // Karatsuba: split at half of the longer operand.
        let half = a.len().max(b.len()) / 2;
        let (a0, a1) = a.split_at(a.len().min(half));
        let (b0, b1) = b.split_at(b.len().min(half));
        let a0 = BigUint::from_limbs(a0.to_vec());
        let a1 = BigUint::from_limbs(a1.to_vec());
        let b0 = BigUint::from_limbs(b0.to_vec());
        let b1 = BigUint::from_limbs(b1.to_vec());
        let z0 = &a0 * &b0;
        let z2 = &a1 * &b1;
        let z1 = &(&(&a0 + &a1) * &(&b0 + &b1)) - &(&z0 + &z2);
        let mut acc = z0;
        acc = &acc + &z1.shl(64 * half);
        acc = &acc + &z2.shl(128 * half);
        acc.limbs
    }

    /// Euclidean division: returns `(quotient, remainder)`.
    ///
    /// Uses a limb-wise fast path for single-limb divisors and bitwise long
    /// division otherwise; all callers are setup-time (parameter synthesis,
    /// cofactor and exponent computation), not hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        let bits = self.bits();
        let mut quotient = vec![0u64; self.limbs.len()];
        // Remainder kept at divisor width + 1 for cheap compare/subtract.
        let width = divisor.limbs.len() + 1;
        let dv = divisor.to_fixed_limbs(width);
        let mut rem = vec![0u64; width];
        for i in (0..bits).rev() {
            // rem = rem << 1 | bit(i)
            let mut carry = if self.bit(i) { 1u64 } else { 0 };
            for limb in rem.iter_mut() {
                let new_carry = *limb >> 63;
                *limb = (*limb << 1) | carry;
                carry = new_carry;
            }
            debug_assert_eq!(carry, 0);
            if cmp_slices(&rem, &dv) != Ordering::Less {
                crate::limbs::sub_assign_slices(&mut rem, &dv);
                quotient[i / 64] |= 1u64 << (i % 64);
            }
        }
        (Self::from_limbs(quotient), Self::from_limbs(rem))
    }

    /// Division by a single limb: returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn divrem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Self::from_limbs(out), rem as u64)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.divrem(m).1
    }

    /// Exact division: divides and asserts the remainder is zero.
    ///
    /// # Panics
    ///
    /// Panics if the division is not exact.
    pub fn div_exact(&self, divisor: &BigUint) -> BigUint {
        let (q, r) = self.divrem(divisor);
        assert!(r.is_zero(), "division was not exact");
        q
    }

    /// Exponentiation by a small exponent.
    pub fn pow(&self, mut e: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        acc
    }

    /// Modular exponentiation `self^exp mod modulus`.
    ///
    /// Uses Montgomery multiplication when the modulus is odd, falling back
    /// to divide-and-reduce square-and-multiply for even moduli.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or one.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(
            !modulus.is_zero() && !modulus.is_one(),
            "modulus must be >= 2"
        );
        if exp.is_zero() {
            return BigUint::one();
        }
        if modulus.is_even() {
            let mut acc = BigUint::one();
            let base = self.rem(modulus);
            for i in (0..exp.bits()).rev() {
                acc = (&acc * &acc).rem(modulus);
                if exp.bit(i) {
                    acc = (&acc * &base).rem(modulus);
                }
            }
            return acc;
        }
        // Odd modulus of any width: drive the slice-level CIOS kernel with
        // heap scratch (this path is bookkeeping, not field arithmetic, so
        // it is not bound by the fixed-capacity `Limbs` hot path).
        let n = modulus.limbs.len();
        let p = modulus.to_fixed_limbs(n);
        let n0 = mont_neg_inv(p[0]);
        let r2 = BigUint::one().shl(128 * n).rem(modulus).to_fixed_limbs(n);
        let one_mont = BigUint::one().shl(64 * n).rem(modulus).to_fixed_limbs(n);
        let mut scratch = vec![0u64; n + 2];
        let mut base = vec![0u64; n];
        cios_mont_mul(
            &mut base,
            &self.rem(modulus).to_fixed_limbs(n),
            &r2,
            &p,
            n0,
            &mut scratch,
        );
        let mut acc = one_mont;
        let mut tmp = vec![0u64; n];
        for i in (0..exp.bits()).rev() {
            cios_mont_mul(&mut tmp, &acc, &acc, &p, n0, &mut scratch);
            std::mem::swap(&mut acc, &mut tmp);
            if exp.bit(i) {
                cios_mont_mul(&mut tmp, &acc, &base, &p, n0, &mut scratch);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        // Convert out of Montgomery form: multiply by 1.
        let mut one = vec![0u64; n];
        one[0] = 1;
        cios_mont_mul(&mut tmp, &acc, &one, &p, n0, &mut scratch);
        BigUint::from_limbs(tmp)
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases
    /// (deterministic xorshift stream, so results are reproducible).
    ///
    /// With 40 rounds the error probability is below 2^-80 for adversarial
    /// inputs and far below that for the structured primes used here.
    pub fn is_probable_prime(&self, rounds: u32) -> bool {
        if self.limbs.len() == 1 {
            let n = self.limbs[0];
            if n < 2 {
                return false;
            }
            for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
                if n == p {
                    return true;
                }
                if n.is_multiple_of(p) {
                    return false;
                }
            }
        }
        if self.is_even() {
            return false;
        }
        for p in [3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
            if self.divrem_u64(p).1 == 0 {
                return self.to_u64() == Some(p);
            }
        }
        let one = BigUint::one();
        // Zero and one were rejected by the small-prime screens above.
        let Some(n_minus_1) = self.checked_sub(&one) else {
            return false;
        };
        let s = n_minus_1.trailing_zeros();
        let d = n_minus_1.shr(s);
        let mut rng_state = 0x9E37_79B9_7F4A_7C15u64 ^ self.low_u64();
        'witness: for _ in 0..rounds {
            // xorshift64* stream
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            let a = BigUint::from_u64(2 + rng_state % 0xFFFF_FFFF);
            let mut x = a.modpow(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue;
            }
            for _ in 0..s.saturating_sub(1) {
                x = x.modpow(&BigUint::from_u64(2), self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Number of trailing zero bits (0 for zero).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return 64 * i + l.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Integer square root: the largest `x` with `x² <= self`.
    ///
    /// Newton iteration on the limb representation; used by the curve
    /// substrate to solve the CM equation `t² − 4q = −3f²` when deriving
    /// sextic-twist group orders.
    pub fn isqrt(&self) -> BigUint {
        if self.is_zero() || self.is_one() {
            return self.clone();
        }
        // Initial guess: 2^(ceil(bits/2)) >= sqrt(self).
        let mut x = BigUint::one().shl(self.bits().div_ceil(2));
        loop {
            let y = (&x + &self.divrem(&x).0).shr(1);
            if y >= x {
                debug_assert!(&x * &x <= *self);
                return x;
            }
            x = y;
        }
    }

    /// Non-adjacent form, least-significant digit first, digits in
    /// `{-1, 0, 1}`.
    ///
    /// The NAF of `n` reconstructs `n = Σ digit_i · 2^i` and has minimal
    /// Hamming weight among signed-binary representations, which drives the
    /// Miller-loop and exponentiation unrolling in the compiler.
    pub fn naf(&self) -> Vec<i8> {
        let mut n = self.clone();
        let mut digits = Vec::with_capacity(self.bits() + 1);
        while !n.is_zero() {
            if n.is_even() {
                digits.push(0i8);
            } else {
                let mod4 = n.low_u64() & 3;
                if mod4 == 1 {
                    digits.push(1);
                    // n is odd here, so n >= 1 and the subtraction holds.
                    n = n.checked_sub(&BigUint::one()).unwrap_or_default();
                } else {
                    digits.push(-1);
                    n = &n + &BigUint::one();
                }
            }
            n = n.shr(1);
        }
        digits
    }

    /// Lowercase hexadecimal string (no prefix), `"0"` for zero.
    pub fn to_hex(&self) -> String {
        let Some((top, rest)) = self.limbs.split_last() else {
            return "0".to_owned();
        };
        let mut s = format!("{top:x}");
        for l in rest.iter().rev() {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }

    /// Decimal string.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut digits = Vec::new();
        let mut n = self.clone();
        while !n.is_zero() {
            let (q, r) = n.divrem_u64(10_000_000_000_000_000_000);
            if q.is_zero() {
                digits.push(format!("{r}"));
            } else {
                digits.push(format!("{r:019}"));
            }
            n = q;
        }
        digits.reverse();
        digits.concat()
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => cmp_slices(&self.limbs, &other.limbs),
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let n = self.limbs.len().max(rhs.limbs.len());
        let mut out = vec![0u64; n + 1];
        let mut carry = 0u64;
        for (i, limb) in out.iter_mut().enumerate().take(n) {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (s, c) = adc(a, b, carry);
            *limb = s;
            carry = c;
        }
        out[n] = carry;
        BigUint::from_limbs(out)
    }
}

impl std::ops::Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] when the ordering
    /// is not statically known. This is the one documented arithmetic
    /// contract exempt from the workspace panic-free lint gate — exactly
    /// like the standard library's integer `Sub`, an unchecked `a - b`
    /// asserts the caller's ordering invariant.
    #[allow(clippy::expect_used)]
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl std::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(BigUint::mul_limbs(&self.limbs, &rhs.limbs))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

/// Error parsing a [`BigUint`] from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBigUintError;

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid big-integer literal")
    }
}

impl std::error::Error for ParseBigUintError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn parse_and_format_roundtrip() {
        let cases = [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ];
        for c in cases {
            let v = BigUint::from_hex(c).unwrap();
            assert_eq!(
                v.to_hex(),
                c.trim_start_matches('0')
                    .to_lowercase()
                    .to_string()
                    .pipe_nonempty(c)
            );
        }
        assert!(BigUint::from_hex("xyz").is_err());
        assert!(BigUint::from_hex("").is_err());
    }

    trait PipeNonEmpty {
        fn pipe_nonempty(self, orig: &str) -> String;
    }
    impl PipeNonEmpty for String {
        fn pipe_nonempty(self, orig: &str) -> String {
            if self.is_empty() && !orig.is_empty() {
                "0".into()
            } else {
                self
            }
        }
    }

    #[test]
    fn decimal_roundtrip() {
        let v = BigUint::from_decimal("123456789012345678901234567890123456789").unwrap();
        assert_eq!(v.to_decimal(), "123456789012345678901234567890123456789");
        assert_eq!(BigUint::zero().to_decimal(), "0");
    }

    #[test]
    fn add_sub_small() {
        let x = b(u128::MAX);
        let y = b(1);
        let s = &x + &y;
        assert_eq!(s.bits(), 129);
        assert_eq!(&s - &y, x);
        assert!(y.checked_sub(&x).is_none());
    }

    #[test]
    fn mul_matches_u128() {
        for (a, bb) in [
            (0u128, 5u128),
            (17, 23),
            (u64::MAX as u128, u64::MAX as u128),
        ] {
            assert_eq!(&b(a) * &b(bb), b(a * bb));
        }
    }

    #[test]
    fn karatsuba_consistency() {
        // A deterministic pseudo-random large operand pair exercises the
        // Karatsuba path against schoolbook.
        let mut state = 1u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let a = BigUint::from_limbs((0..80).map(|_| next()).collect());
        let c = BigUint::from_limbs((0..80).map(|_| next()).collect());
        let kara = &a * &c;
        let school = BigUint::from_limbs(BigUint::mul_schoolbook(a.limbs(), c.limbs()));
        assert_eq!(kara, school);
    }

    #[test]
    fn shifts() {
        let v = b(0b1011);
        assert_eq!(v.shl(3), b(0b1011000));
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shr(2), b(0b10));
        assert_eq!(v.shr(100), BigUint::zero());
    }

    #[test]
    fn divrem_small_and_large() {
        let (q, r) = b(1000).divrem(&b(7));
        assert_eq!((q, r), (b(142), b(6)));
        let n = BigUint::from_hex("ffffffffffffffffffffffffffffffffffffffff").unwrap();
        let d = BigUint::from_hex("fedcba9876543210f").unwrap();
        let (q, r) = n.divrem(&d);
        assert!(r < d);
        assert_eq!(&(&q * &d) + &r, n);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divrem_zero_divisor_panics() {
        let _ = b(5).divrem(&BigUint::zero());
    }

    #[test]
    fn div_exact_checks() {
        assert_eq!(b(36).div_exact(&b(12)), b(3));
    }

    #[test]
    fn modpow_fermat() {
        // 2^(p-1) = 1 mod p for prime p (both odd and even-modulus paths).
        let p = b(1_000_000_007);
        let e = b(1_000_000_006);
        assert_eq!(b(2).modpow(&e, &p), b(1));
        // even modulus path
        assert_eq!(b(7).modpow(&b(5), &b(48)), b(7u128.pow(5) % 48));
    }

    #[test]
    fn primality_known_values() {
        assert!(b(2).is_probable_prime(10));
        assert!(b(1_000_000_007).is_probable_prime(20));
        assert!(!b(1_000_000_008).is_probable_prime(20));
        assert!(!b(561).is_probable_prime(20)); // Carmichael
                                                // BLS12-381 prime
        let p = BigUint::from_hex(
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab",
        )
        .unwrap();
        assert!(p.is_probable_prime(20));
    }

    #[test]
    fn isqrt_exact_and_floor() {
        for v in [0u128, 1, 2, 3, 4, 15, 16, 17, 1 << 80, (1 << 80) + 123] {
            let n = b(v);
            let r = n.isqrt();
            assert!(&r * &r <= n);
            let r1 = &r + &BigUint::one();
            assert!(&r1 * &r1 > n);
        }
    }

    #[test]
    fn naf_reconstructs() {
        for v in [0u128, 1, 2, 3, 7, 0xdeadbeef, u64::MAX as u128] {
            let naf = b(v).naf();
            let mut acc: i128 = 0;
            for (i, &d) in naf.iter().enumerate() {
                acc += (d as i128) << i;
            }
            assert_eq!(acc, v as i128);
            // non-adjacency
            for w in naf.windows(2) {
                assert!(w[0] == 0 || w[1] == 0);
            }
        }
    }

    #[test]
    fn bits_and_bit_access() {
        let v = b(0b101);
        assert_eq!(v.bits(), 3);
        assert!(v.bit(0) && !v.bit(1) && v.bit(2) && !v.bit(63));
        assert_eq!(BigUint::zero().bits(), 0);
    }
}
