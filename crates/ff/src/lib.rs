//! # finesse-ff
//!
//! Finite-field arithmetic substrate for the Finesse pairing framework:
//!
//! - [`BigUint`] / [`BigInt`] — arbitrary-precision integers for parameter
//!   synthesis, exponent computation, and primality testing;
//! - [`FpCtx`] / [`Fp`] — prime fields in Montgomery (CIOS) form with
//!   inline fixed-capacity limb storage ([`Limbs`], capacity
//!   [`MAX_LIMBS`]), so every hot-path operation is allocation-free;
//! - [`tower`] — the extension-field towers F_p → F_p^2 → F_p^(k/6) →
//!   F_p^k used by optimal Ate pairings, including Frobenius maps,
//!   cyclotomic squaring and generic Tonelli–Shanks square roots.
//!
//! Everything is built from scratch (no external bignum); one code path
//! serves every curve from BN254 to BLS24-509, with element widths fixed
//! at field-context construction (at most [`MAX_LIMBS`] limbs).
//!
//! ```
//! use finesse_ff::{BigUint, FpCtx};
//!
//! let p = BigUint::from_u64(1_000_000_007);
//! let f = FpCtx::new(p)?;
//! let x = f.from_u64(2);
//! assert_eq!(x.pow(&BigUint::from_u64(10)).to_biguint(), BigUint::from_u64(1024));
//! # Ok::<(), finesse_ff::FieldCtxError>(())
//! ```

pub mod bigint;
pub mod biguint;
pub mod fp;
pub mod limbs;
pub mod scalar;
pub mod tower;

pub use bigint::BigInt;
pub use biguint::{BigUint, ParseBigUintError};
pub use fp::{FieldBytesError, FieldCtxError, Fp, FpCtx, Unreduced, WideAcc};
pub use limbs::{Limbs, MAX_LIMBS};
pub use tower::{Fpk, Fq, TowerCtx, TowerError};
