//! Fully-validated pairing curve contexts.
//!
//! [`Curve::from_spec`] turns a declarative [`CurveSpec`] into a working
//! curve: it synthesises and primality-checks p and r, builds the field
//! tower, *discovers* the correct curve coefficient and sextic twist
//! (rather than trusting constants), derives generators with cofactor
//! clearing, and calibrates the untwist–Frobenius endomorphism ψ against
//! the defining identity `ψ(Q) = [p]Q` on the r-torsion. Every derived
//! quantity is checked, so a typo in a literature constant fails loudly at
//! construction instead of corrupting pairings downstream.

use crate::cache::{g1_point_key, g2_point_key, PointKeyedCache};
use crate::glv::{self, GlvBasis};
use crate::point::{
    affine_neg, batch_to_affine, is_identity, is_on_curve, jac_add, jac_mul, jac_multi_mul_mapped,
    msm as point_msm, to_affine, to_jacobian, Affine, EndoMap, FieldOps, FpOps, FqOps, Jacobian,
    MulTerm, TableMap,
};
use crate::precompute::{G1Precomputed, G2Precomputed, Precomputed};
use crate::spec::{CurveSpec, Family};
use finesse_ff::{BigInt, BigUint, FieldCtxError, Fp, FpCtx, Fq, TowerCtx, TowerError};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Entry bound for each per-curve fixed-base table cache: LRU eviction
/// above this many distinct registered bases. A comb table is a few
/// hundred affine points, so 32 long-lived bases (public keys, SRS
/// elements) stay warm within ~1 MiB per group even on 638-bit curves.
const PRECOMPUTED_CACHE_CAPACITY: usize = 32;

/// Which sextic twist the curve uses (affects line-evaluation sparsity).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TwistKind {
    /// Divisive twist: `E': y² = x³ + b/ξ`, untwist multiplies by w-powers.
    D,
    /// Multiplicative twist: `E': y² = x³ + b·ξ`.
    M,
}

/// Error constructing a [`Curve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CurveError {
    /// p or r had the wrong bit length vs the spec.
    BitLengthMismatch {
        /// Which parameter mismatched ("p" or "r").
        what: &'static str,
        /// Expected bit count.
        expected: usize,
        /// Computed bit count.
        got: usize,
    },
    /// p or r is composite.
    NotPrime(&'static str),
    /// The family polynomial gave a negative value.
    NegativeParameter(&'static str),
    /// r does not divide the curve order.
    OrderNotDivisible,
    /// Field context construction failed.
    Field(FieldCtxError),
    /// Tower construction failed.
    Tower(TowerError),
    /// No curve coefficient b with the right group order was found.
    CurveCoefficientNotFound,
    /// Neither twist candidate has order divisible by r.
    TwistNotFound,
    /// The ψ endomorphism constants failed the `ψ(Q) = [p]Q` identity.
    EndomorphismMismatch,
    /// Try-and-increment hash-to-curve exhausted its counter budget
    /// without landing on the curve (astronomically unlikely for a real
    /// curve; indicates corrupted parameters rather than bad luck).
    HashToCurveExhausted,
    /// An exponent derivation hit an arithmetic impossibility (reported
    /// instead of aborting; indicates corrupted curve parameters).
    ExponentDerivation(&'static str),
    /// An MSM was called with differing numbers of points and scalars.
    MsmLengthMismatch {
        /// Which group-level entry point caught it ("g1_msm" or
        /// "g2_msm").
        what: &'static str,
        /// Number of points supplied.
        points: usize,
        /// Number of scalars supplied.
        scalars: usize,
    },
    /// A curve name not present in the built-in Table 2 registry
    /// (reported by [`Curve::try_by_name`] for untrusted names).
    UnknownCurve {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::BitLengthMismatch {
                what,
                expected,
                got,
            } => {
                write!(f, "{what} has {got} bits, spec expects {expected}")
            }
            CurveError::NotPrime(what) => write!(f, "{what} is not prime"),
            CurveError::NegativeParameter(what) => write!(f, "{what} evaluated negative"),
            CurveError::OrderNotDivisible => f.write_str("r does not divide #E(Fp)"),
            CurveError::Field(e) => write!(f, "field construction: {e}"),
            CurveError::Tower(e) => write!(f, "tower construction: {e}"),
            CurveError::CurveCoefficientNotFound => {
                f.write_str("no curve coefficient b produced the expected group order")
            }
            CurveError::TwistNotFound => {
                f.write_str("no sextic twist with order divisible by r was found")
            }
            CurveError::EndomorphismMismatch => {
                f.write_str("untwist-Frobenius constants failed psi(Q) = [p]Q")
            }
            CurveError::HashToCurveExhausted => {
                f.write_str("hash-to-curve found no point within the counter budget")
            }
            CurveError::ExponentDerivation(what) => {
                write!(f, "exponent derivation failed: {what}")
            }
            CurveError::MsmLengthMismatch {
                what,
                points,
                scalars,
            } => {
                write!(
                    f,
                    "{what} needs one scalar per point, got {points} points and {scalars} scalars"
                )
            }
            CurveError::UnknownCurve { name } => {
                write!(f, "unknown curve name: {name}")
            }
        }
    }
}

impl std::error::Error for CurveError {}

impl From<FieldCtxError> for CurveError {
    fn from(e: FieldCtxError) -> Self {
        CurveError::Field(e)
    }
}

impl From<TowerError> for CurveError {
    fn from(e: TowerError) -> Self {
        CurveError::Tower(e)
    }
}

/// Cached 2-GLV data for the cube-root-of-unity endomorphism
/// `φ(x, y) = (βx, y)` on G1 (every Table 2 curve has `j = 0`): φ acts on
/// the r-torsion as multiplication by `λ` with `λ² + λ + 1 ≡ 0 (mod r)`,
/// and the reduced lattice basis splits scalars into two `√r`-sized
/// halves. Calibrated against the generator at construction.
#[derive(Clone, Debug)]
pub struct GlvG1 {
    beta: Fp,
    lambda: BigUint,
    basis: GlvBasis,
}

impl GlvG1 {
    /// The cube root of unity β with `φ(x, y) = (βx, y)`.
    pub fn beta(&self) -> &Fp {
        &self.beta
    }

    /// φ's eigenvalue λ on the r-torsion.
    pub fn lambda(&self) -> &BigUint {
        &self.lambda
    }

    /// The reduced GLV lattice basis used by `decompose_scalar`.
    pub fn basis(&self) -> &GlvBasis {
        &self.basis
    }
}

/// How G2 scalars decompose along the untwist–Frobenius ψ (eigenvalue
/// `p mod r` on the r-torsion, calibrated at construction).
#[derive(Clone, Debug)]
pub enum GlsG2 {
    /// BLS parametrization: `p ≡ t (mod r)`, so balanced base-`t` digits
    /// give a `⌈log r / log|t|⌉`-dimensional split (4 sub-scalars of
    /// `|t|` bits for BLS12, 8 for BLS24) — each digit multiplies one
    /// more application of ψ.
    Power {
        /// The curve generator `t` (the digit base).
        t: BigInt,
    },
    /// BN parametrization: `ζ = p mod r = 6t²` satisfies the exact
    /// identity `ζ² + (6t+3)ζ + (6t+1) = r`, so a validated 4-dimensional
    /// lattice basis splits scalars into four `|t|`-bit sub-scalars.
    Quartic {
        /// The 4-dimensional ψ-lattice basis with Cramer data.
        basis: Box<glv::Dim4Basis>,
    },
    /// Generic 2-dimensional GLS split on the eigenvalue `p mod r` via
    /// the reduced lattice basis (fallback for exotic parametrizations;
    /// the eigenvalue of any pairing curve is a `√r`-quality λ at worst).
    TwoDim {
        /// ψ's eigenvalue `p mod r`.
        lambda: BigUint,
        /// Reduced lattice basis for `(r, λ)`.
        basis: GlvBasis,
    },
}

/// A fully-initialised, self-validated pairing-friendly curve.
pub struct Curve {
    name: String,
    family: Family,
    t: BigInt,
    p: BigUint,
    r: BigUint,
    trace: BigInt,
    fp: Arc<FpCtx>,
    tower: Arc<TowerCtx>,
    b: Fp,
    b_twist: Fq,
    twist: TwistKind,
    n1: BigUint,
    g1_cofactor: BigUint,
    g2_order: BigUint,
    g2_cofactor: BigUint,
    g1: Affine<Fp>,
    g2: Affine<Fq>,
    psi_x: Fq,
    psi_y: Fq,
    glv_g1: Option<GlvG1>,
    gls_g2: GlsG2,
    /// Fixed-base tables for caller-registered G1 bases (and, lazily,
    /// the generator), keyed by canonical coordinates; [`Curve::g1_mul`]
    /// routes through the table on a cache hit.
    g1_precomp: Mutex<PointKeyedCache<G1Precomputed>>,
    /// Fixed-base tables for registered G2 bases (same contract).
    g2_precomp: Mutex<PointKeyedCache<G2Precomputed>>,
    /// Lazily derived and gcd-certified fast G1 subgroup-check data
    /// (see the [`crate::subgroup`] module).
    g1_subgroup: OnceLock<crate::subgroup::G1Check>,
    /// Same for G2.
    g2_subgroup: OnceLock<crate::subgroup::G2Check>,
    table2_security: u32,
}

impl fmt::Debug for Curve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Curve")
            .field("name", &self.name)
            .field("family", &self.family)
            .field("p_bits", &self.p.bits())
            .field("r_bits", &self.r.bits())
            .field("twist", &self.twist)
            .finish()
    }
}

impl Curve {
    /// Builds and validates a curve from a named spec.
    ///
    /// # Errors
    ///
    /// Any failed validation returns a descriptive [`CurveError`].
    pub fn from_spec(spec: &CurveSpec) -> Result<Curve, CurveError> {
        Self::new(
            spec.name,
            spec.family,
            spec.t(),
            spec.b_hint,
            spec.beta,
            spec.xi2,
            spec.xi,
            Some((spec.p_bits, spec.r_bits)),
            spec.table2_security,
        )
    }

    /// Builds a curve from explicit parameters (the "operator kit" entry
    /// point used when porting a new curve, §4.5 of the paper).
    ///
    /// # Errors
    ///
    /// Any failed validation returns a descriptive [`CurveError`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        family: Family,
        t: BigInt,
        b_hint: Option<u64>,
        beta: i64,
        xi2: Option<(i64, i64)>,
        xi: &[i64],
        expected_bits: Option<(usize, usize)>,
        table2_security: u32,
    ) -> Result<Curve, CurveError> {
        // --- parameters -------------------------------------------------
        let p_int = family.prime(&t);
        let r_int = family.order(&t);
        let trace = family.trace(&t);
        let p = p_int
            .to_biguint()
            .ok_or(CurveError::NegativeParameter("p"))?;
        let r = r_int
            .to_biguint()
            .ok_or(CurveError::NegativeParameter("r"))?;
        if let Some((pb, rb)) = expected_bits {
            if p.bits() != pb {
                return Err(CurveError::BitLengthMismatch {
                    what: "p",
                    expected: pb,
                    got: p.bits(),
                });
            }
            if r.bits() != rb {
                return Err(CurveError::BitLengthMismatch {
                    what: "r",
                    expected: rb,
                    got: r.bits(),
                });
            }
        }
        if !p.is_probable_prime(40) {
            return Err(CurveError::NotPrime("p"));
        }
        if !r.is_probable_prime(40) {
            return Err(CurveError::NotPrime("r"));
        }
        // #E(Fp) = p + 1 − tr
        let n1 = (&(&p_int + &BigInt::one()) - &trace)
            .to_biguint()
            .ok_or(CurveError::NegativeParameter("#E"))?;
        let (g1_cofactor, rem) = n1.divrem(&r);
        if !rem.is_zero() {
            return Err(CurveError::OrderNotDivisible);
        }

        // --- fields -----------------------------------------------------
        let fp = FpCtx::new(p.clone())?;
        let beta_fp = fp.from_i64(beta);
        let tower = match family.embedding_degree() {
            12 => {
                assert_eq!(xi.len(), 2, "k=12 xi needs 2 coefficients");
                // The spec's ξ is a hint; if it happens to be a 2nd/3rd
                // power in F_p2 for this prime, scan small alternatives
                // (any valid ξ yields an isomorphic tower).
                let mut tower = TowerCtx::sextic_over_fp2(
                    &fp,
                    beta_fp.clone(),
                    (fp.from_i64(xi[0]), fp.from_i64(xi[1])),
                );
                if matches!(tower, Err(TowerError::ReducibleSextic)) {
                    'scan: for c1 in 1..4i64 {
                        for c0 in 1..24i64 {
                            let cand = TowerCtx::sextic_over_fp2(
                                &fp,
                                beta_fp.clone(),
                                (fp.from_i64(c0), fp.from_i64(c1)),
                            );
                            if cand.is_ok() {
                                tower = cand;
                                break 'scan;
                            }
                        }
                    }
                }
                tower?
            }
            24 => {
                assert_eq!(xi.len(), 4, "k=24 xi needs 4 coefficients");
                // A k=24 tower cannot be built without the quartic
                // non-residue; a spec missing it is reported, not fatal.
                let (c0, c1) = xi2.ok_or(CurveError::Tower(TowerError::UnsupportedDegree))?;
                TowerCtx::sextic_over_fp4(
                    &fp,
                    beta_fp,
                    (fp.from_i64(c0), fp.from_i64(c1)),
                    [
                        fp.from_i64(xi[0]),
                        fp.from_i64(xi[1]),
                        fp.from_i64(xi[2]),
                        fp.from_i64(xi[3]),
                    ],
                )?
            }
            _ => unreachable!("families are k=12 or k=24"),
        };

        // --- curve coefficient and G1 ------------------------------------
        let fp_ops = FpOps(Arc::clone(&fp));
        let (b, g1) = Self::find_g1(&fp_ops, b_hint, &n1, &g1_cofactor, &r)
            .ok_or(CurveError::CurveCoefficientNotFound)?;

        // --- twist and G2 -------------------------------------------------
        let (twist, b_twist, g2_order) = Self::find_twist_with_trace(&tower, &trace, &b, &r)?;
        let (g2_cofactor, rem) = g2_order.divrem(&r);
        debug_assert!(rem.is_zero());
        let g2 = Self::find_g2(&tower, &b_twist, &g2_order, &g2_cofactor, &r)
            .ok_or(CurveError::TwistNotFound)?;

        // --- psi endomorphism --------------------------------------------
        let (psi_x, psi_y) = Self::calibrate_psi(&tower, &b_twist, &g2, &p)?;

        // --- scalar decomposition data -----------------------------------
        // Both are calibrated/validated against the generators; a curve
        // without a usable φ (or a failed calibration) falls back to the
        // plain wNAF ladder rather than erroring, so the operator kit
        // still accepts exotic parameters.
        let glv_g1 = Self::derive_glv_g1(&fp, &fp_ops, &g1, &r);
        let gls_g2 = Self::derive_gls_g2(&t, &p, &r);

        Ok(Curve {
            name: name.to_owned(),
            family,
            t,
            p,
            r,
            trace,
            fp,
            tower,
            b,
            b_twist,
            twist,
            n1,
            g1_cofactor,
            g2_order,
            g2_cofactor,
            g1,
            g2,
            psi_x,
            psi_y,
            glv_g1,
            gls_g2,
            g1_precomp: Mutex::new(PointKeyedCache::new(PRECOMPUTED_CACHE_CAPACITY)),
            g2_precomp: Mutex::new(PointKeyedCache::new(PRECOMPUTED_CACHE_CAPACITY)),
            g1_subgroup: OnceLock::new(),
            g2_subgroup: OnceLock::new(),
            table2_security,
        })
    }

    /// `(−1 + √−3)/2 mod m`: a primitive cube root of unity mod `m`
    /// (exists iff `m ≡ 1 (mod 3)`), i.e. a root of `x² + x + 1`.
    fn cube_root_of_unity(m: &BigUint) -> Option<BigUint> {
        let ctx = FpCtx::new(m.clone()).ok()?;
        let s = ctx.from_i64(-3).sqrt()?.to_biguint();
        let m_minus_1 = m.checked_sub(&BigUint::one())?;
        let num = (&s + &m_minus_1).rem(m);
        let half = if num.is_even() {
            num.shr(1)
        } else {
            (&num + m).shr(1)
        };
        Some(half.rem(m))
    }

    /// Derives and calibrates the 2-GLV data for G1: solves
    /// `λ² + λ + 1 ≡ 0 (mod r)` and `β² + β + 1 ≡ 0 (mod p)`, then pins
    /// down the matching (β, λ) pair empirically via `φ(G) = [λ]G`.
    fn derive_glv_g1(fp: &Arc<FpCtx>, ops: &FpOps, g1: &Affine<Fp>, r: &BigUint) -> Option<GlvG1> {
        let lambda0 = Self::cube_root_of_unity(r)?;
        // lambda0 is a residue mod r, so r - 1 - lambda0 cannot underflow.
        let lambda1 = r.checked_sub(&BigUint::one())?.checked_sub(&lambda0)?;
        let beta0 = fp.from_biguint(&Self::cube_root_of_unity(fp.modulus())?);
        // The other root: β² = −1 − β.
        let beta1 = -&(&beta0 + &fp.one());
        let lg: [Affine<Fp>; 2] = [
            to_affine(ops, &jac_mul(ops, g1, &lambda0)),
            to_affine(ops, &jac_mul(ops, g1, &lambda1)),
        ];
        for beta in [beta0, beta1] {
            let phi_g = Affine::new(&g1.x * &beta, g1.y.clone());
            for (lambda, mapped) in [(&lambda0, &lg[0]), (&lambda1, &lg[1])] {
                if phi_g == *mapped {
                    return Some(GlvG1 {
                        beta,
                        lambda: lambda.clone(),
                        basis: glv::lattice_basis(r, lambda),
                    });
                }
            }
        }
        None
    }

    /// Picks the G2 decomposition mode from the parametrization: BLS
    /// curves satisfy `p ≡ t (mod r)` with `|t| ≈ r^(1/4)` (k = 12) or
    /// `r^(1/8)` (k = 24), enabling the base-`t` power split; BN curves
    /// get the validated 4-dimensional quartic basis; everything else
    /// falls back to the generic 2-dimensional lattice split on
    /// `p mod r`. All modes are validated numerically, never trusted.
    fn derive_gls_g2(t: &BigInt, p: &BigUint, r: &BigUint) -> GlsG2 {
        let lambda = p.rem(r);
        if t.bits() >= 2 && t.bits() * 2 < r.bits() && t.rem_euclid(r) == lambda {
            return GlsG2::Power { t: t.clone() };
        }
        if let Some(basis) = glv::bn_psi_basis(t, &lambda, r) {
            return GlsG2::Quartic {
                basis: Box::new(basis),
            };
        }
        GlsG2::TwoDim {
            basis: glv::lattice_basis(r, &lambda),
            lambda,
        }
    }

    /// Finds (b, generator): smallest b >= 1 whose curve has order n1, with
    /// a canonical cofactor-cleared generator.
    fn find_g1(
        ops: &FpOps,
        b_hint: Option<u64>,
        n1: &BigUint,
        cofactor: &BigUint,
        r: &BigUint,
    ) -> Option<(Fp, Affine<Fp>)> {
        let candidates: Vec<u64> = b_hint.into_iter().chain(1..=40).collect();
        'bloop: for bc in candidates {
            let b = ops.0.from_u64(bc);
            // Collect a couple of points and require [n1]P = O for each.
            let mut points = Vec::new();
            for x0 in 0..400u64 {
                let x = ops.0.from_u64(x0);
                let rhs = &(&x.square() * &x) + &b;
                if let Some(y) = rhs.sqrt() {
                    if y.is_zero() && rhs.is_zero() && bc == 0 {
                        continue;
                    }
                    points.push(Affine::new(x, y));
                    if points.len() == 3 {
                        break;
                    }
                }
            }
            if points.len() < 3 {
                continue;
            }
            for pt in &points {
                if !is_identity(ops, &jac_mul(ops, pt, n1)) {
                    continue 'bloop;
                }
            }
            // Cofactor-clear the first point that survives into a generator.
            for pt in &points {
                let g = to_affine(ops, &jac_mul(ops, pt, cofactor));
                if g.infinity {
                    continue;
                }
                debug_assert!(is_identity(ops, &jac_mul(ops, &g, r)));
                // Canonicalise y to the lexicographically smaller root.
                let y_neg = (-&g.y).to_biguint();
                let g = if y_neg < g.y.to_biguint() {
                    affine_neg(ops, &g)
                } else {
                    g
                };
                return Some((b, g));
            }
        }
        None
    }

    /// Trace of Frobenius over F_p^m via the Lucas-style recurrence
    /// `t_j = tr·t_{j−1} − p·t_{j−2}`.
    fn trace_over_extension(trace: &BigInt, p: &BigUint, m: usize) -> BigInt {
        let p_int = BigInt::from_biguint(p.clone());
        let mut t_prev = BigInt::from_i64(2);
        let mut t_cur = trace.clone();
        for _ in 1..m {
            let next = &(trace * &t_cur) - &(&p_int * &t_prev);
            t_prev = t_cur;
            t_cur = next;
        }
        t_cur
    }

    /// Determines the correct sextic twist: kind, coefficient, group order.
    ///
    /// Solves the CM equation `t_m² − 4q = −3f²` for the trace over F_q,
    /// enumerates the candidate twist orders, keeps those divisible by r,
    /// then identifies the real twist empirically by order-annihilation on
    /// sampled points.
    fn find_twist_with_trace(
        tower: &Arc<TowerCtx>,
        trace: &BigInt,
        b: &Fp,
        r: &BigUint,
    ) -> Result<(TwistKind, Fq, BigUint), CurveError> {
        let q = tower.q_order().clone();
        let q_int = BigInt::from_biguint(q.clone());
        let tm = Self::trace_over_extension(trace, tower.fp().modulus(), tower.qdeg());
        // 4q − t_m² = 3 f²
        let four_q = &BigInt::from_i64(4) * &q_int;
        let disc = (&four_q - &(&tm * &tm))
            .to_biguint()
            .ok_or(CurveError::TwistNotFound)?;
        let f2 = disc.div_exact(&BigUint::from_u64(3));
        let f = f2.isqrt();
        if &f * &f != f2 {
            return Err(CurveError::TwistNotFound);
        }
        let f_int = BigInt::from_biguint(f);
        let three_f = &BigInt::from_i64(3) * &f_int;
        let two = BigUint::from_u64(2);
        // Candidate traces of the six twists.
        let mut cands: Vec<BigInt> = vec![tm.clone(), tm.neg()];
        for sign_t in [1i64, -1] {
            for sign_f in [1i64, -1] {
                let num =
                    &(&BigInt::from_i64(sign_t) * &tm) + &(&BigInt::from_i64(sign_f) * &three_f);
                if num.magnitude().is_even() {
                    cands.push(BigInt::from_sign_magnitude(
                        num.is_negative(),
                        num.magnitude().divrem(&two).0,
                    ));
                }
            }
        }
        let mut orders: Vec<BigUint> = Vec::new();
        for c in cands {
            if let Some(n) = (&(&q_int + &BigInt::one()) - &c).to_biguint() {
                if n.rem(r).is_zero() && !orders.contains(&n) {
                    orders.push(n);
                }
            }
        }
        if orders.is_empty() {
            return Err(CurveError::TwistNotFound);
        }
        // Try each (kind, coefficient) and candidate order empirically.
        let ops = FqOps(tower);
        let b_fq = tower.fq_from_fp(b);
        let xi = tower.xi().clone();
        let attempts = [
            (TwistKind::D, tower.fq_mul(&b_fq, &tower.fq_inv(&xi))),
            (TwistKind::M, tower.fq_mul(&b_fq, &xi)),
        ];
        for (kind, bt) in attempts {
            if let Some(pt) = Self::find_point_on_twist(tower, &bt, 0) {
                for n in &orders {
                    if is_identity(&ops, &jac_mul(&ops, &pt, n)) {
                        // confirm with a second point
                        let pt2 = Self::find_point_on_twist(tower, &bt, 1000)
                            .ok_or(CurveError::TwistNotFound)?;
                        if is_identity(&ops, &jac_mul(&ops, &pt2, n)) {
                            return Ok((kind, bt, n.clone()));
                        }
                    }
                }
            }
        }
        Err(CurveError::TwistNotFound)
    }

    fn find_point_on_twist(tower: &TowerCtx, bt: &Fq, seed0: u64) -> Option<Affine<Fq>> {
        for seed in seed0..seed0 + 512 {
            let x = tower.fq_sample(seed.wrapping_mul(0x00C0_FFEE).wrapping_add(7));
            let rhs = tower.fq_add(&tower.fq_mul(&tower.fq_sqr(&x), &x), bt);
            if let Some(y) = tower.fq_sqrt(&rhs) {
                return Some(Affine::new(x, y));
            }
        }
        None
    }

    fn find_g2(
        tower: &Arc<TowerCtx>,
        bt: &Fq,
        _order: &BigUint,
        cofactor: &BigUint,
        r: &BigUint,
    ) -> Option<Affine<Fq>> {
        let ops = FqOps(tower);
        for attempt in 0..16u64 {
            let pt = Self::find_point_on_twist(tower, bt, attempt * 7919)?;
            let g = to_affine(&ops, &jac_mul(&ops, &pt, cofactor));
            if g.infinity {
                continue;
            }
            if is_identity(&ops, &jac_mul(&ops, &g, r)) {
                return Some(g);
            }
        }
        None
    }

    /// Determines the untwist–Frobenius constants empirically: tries the
    /// (γx, γy) = (ξ^((p−1)/3), ξ^((p−1)/2)) pair and its inverse, accepting
    /// whichever satisfies `ψ(G2) = [p]G2`.
    fn calibrate_psi(
        tower: &Arc<TowerCtx>,
        bt: &Fq,
        g2: &Affine<Fq>,
        p: &BigUint,
    ) -> Result<(Fq, Fq), CurveError> {
        let ops = FqOps(tower);
        let wf = tower.w_frob_const(1).clone();
        let gx = tower.fq_sqr(&wf); // ξ^((p−1)/3)
        let gy = tower.fq_mul(&gx, &wf); // ξ^((p−1)/2)
        let p_g2 = to_affine(&ops, &jac_mul(&ops, g2, p));
        for (cx, cy) in [
            (gx.clone(), gy.clone()),
            (tower.fq_inv(&gx), tower.fq_inv(&gy)),
        ] {
            let px = tower.fq_mul(&tower.fq_frob(&g2.x, 1), &cx);
            let py = tower.fq_mul(&tower.fq_frob(&g2.y, 1), &cy);
            let cand = Affine::new(px, py);
            if is_on_curve(&ops, &cand, bt) && cand == p_g2 {
                return Ok((cx, cy));
            }
        }
        Err(CurveError::EndomorphismMismatch)
    }

    // --- accessors -------------------------------------------------------

    /// Curve name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Curve family.
    pub fn family(&self) -> Family {
        self.family
    }

    /// The family generator t.
    pub fn t(&self) -> &BigInt {
        &self.t
    }

    /// Base-field characteristic p.
    pub fn p(&self) -> &BigUint {
        &self.p
    }

    /// Pairing group order r.
    pub fn r(&self) -> &BigUint {
        &self.r
    }

    /// Frobenius trace.
    pub fn trace(&self) -> &BigInt {
        &self.trace
    }

    /// Base prime field context.
    pub fn fp(&self) -> &Arc<FpCtx> {
        &self.fp
    }

    /// Extension tower context.
    pub fn tower(&self) -> &Arc<TowerCtx> {
        &self.tower
    }

    /// G1 curve coefficient b.
    pub fn b(&self) -> &Fp {
        &self.b
    }

    /// Twist curve coefficient b'.
    pub fn b_twist(&self) -> &Fq {
        &self.b_twist
    }

    /// Twist kind (D or M).
    pub fn twist(&self) -> TwistKind {
        self.twist
    }

    /// #E(F_p).
    pub fn g1_order(&self) -> &BigUint {
        &self.n1
    }

    /// G1 cofactor #E(F_p)/r.
    pub fn g1_cofactor(&self) -> &BigUint {
        &self.g1_cofactor
    }

    /// #E'(F_q).
    pub fn g2_order(&self) -> &BigUint {
        &self.g2_order
    }

    /// G2 cofactor #E'(F_q)/r.
    pub fn g2_cofactor(&self) -> &BigUint {
        &self.g2_cofactor
    }

    /// Canonical G1 generator (r-torsion).
    pub fn g1_generator(&self) -> &Affine<Fp> {
        &self.g1
    }

    /// Canonical G2 generator on the twist (r-torsion).
    pub fn g2_generator(&self) -> &Affine<Fq> {
        &self.g2
    }

    /// Security level from Table 2 (reported, not derived).
    pub fn table2_security(&self) -> u32 {
        self.table2_security
    }

    /// Embedding degree k.
    pub fn k(&self) -> usize {
        self.family.embedding_degree()
    }

    /// The optimal-Ate Miller loop parameter (`6t+2` for BN, `t` for BLS).
    pub fn miller_param(&self) -> BigInt {
        self.family.miller_param(&self.t)
    }

    /// The untwist–Frobenius constants `(γx, γy)` with
    /// `ψ(x, y) = (γx·φ(x), γy·φ(y))`.
    pub fn psi_constants(&self) -> (&Fq, &Fq) {
        (&self.psi_x, &self.psi_y)
    }

    /// ψ applied to a twist point: `(γx·φ(x), γy·φ(y))`.
    pub fn psi(&self, q: &Affine<Fq>) -> Affine<Fq> {
        if q.infinity {
            return q.clone();
        }
        Affine::new(
            self.tower.fq_mul(&self.tower.fq_frob(&q.x, 1), &self.psi_x),
            self.tower.fq_mul(&self.tower.fq_frob(&q.y, 1), &self.psi_y),
        )
    }

    /// The calibrated 2-GLV data for G1, if the curve has a usable
    /// cube-root endomorphism (all built-in curves do).
    pub fn glv_g1(&self) -> Option<&GlvG1> {
        self.glv_g1.as_ref()
    }

    /// The G2 scalar-decomposition mode along ψ.
    pub fn gls_g2(&self) -> &GlsG2 {
        &self.gls_g2
    }

    /// The lazy cell holding the certified G1 subgroup-check data.
    pub(crate) fn g1_subgroup_cache(&self) -> &OnceLock<crate::subgroup::G1Check> {
        &self.g1_subgroup
    }

    /// The lazy cell holding the certified G2 subgroup-check data.
    pub(crate) fn g2_subgroup_cache(&self) -> &OnceLock<crate::subgroup::G2Check> {
        &self.g2_subgroup
    }

    /// ψ's eigenvalue `p mod r` on the r-torsion.
    pub fn gls_eigenvalue(&self) -> BigUint {
        self.p.rem(&self.r)
    }

    /// The GLV endomorphism `φ(x, y) = (βx, y)` on G1 (`None` when no
    /// GLV data was calibrated). `φ(P) = [λ]P` on the r-torsion.
    pub fn phi(&self, p: &Affine<Fp>) -> Option<Affine<Fp>> {
        let glv = self.glv_g1.as_ref()?;
        if p.infinity {
            return Some(p.clone());
        }
        Some(Affine::new(&p.x * &glv.beta, p.y.clone()))
    }

    /// `k mod r`, skipping the division when `k` is already reduced.
    fn reduce_mod_r(&self, k: &BigUint) -> BigUint {
        if k < &self.r {
            k.clone()
        } else {
            k.rem(&self.r)
        }
    }

    /// Splits `k` into `(k₁, k₂)` with `k₁ + k₂·λ ≡ k (mod r)` and
    /// `|k₁|, |k₂| ≈ √r` using the cached G1 lattice basis. `None` when
    /// the curve has no GLV data.
    pub fn decompose_scalar(&self, k: &BigUint) -> Option<(BigInt, BigInt)> {
        let glv = self.glv_g1.as_ref()?;
        Some(glv::decompose(&self.reduce_mod_r(k), &glv.basis))
    }

    /// The G2 sub-scalars `d₀ … d_{m−1}` with `Σ dᵢ·(p mod r)ⁱ ≡ k (mod
    /// r)`, so `[k]Q = Σ [dᵢ] ψⁱ(Q)` on the r-torsion — 2 entries for the
    /// lattice split, up to `⌈log r / log|t|⌉` for the BLS power split.
    pub fn g2_gls_digits(&self, k: &BigUint) -> Vec<BigInt> {
        self.gls_digits_reduced(&self.reduce_mod_r(k))
    }

    /// Builds the 2-GLV term pair for one G1 point/scalar: `±|k₁|·P`
    /// plus `±|k₂|·φ(P)`, with the φ term's odd-multiples table derived
    /// from P's by mapping `x ↦ βx` (φ is a group homomorphism, so
    /// `φ((2i+1)P) = (2i+1)φ(P)`).
    fn glv_terms(
        glv: &GlvG1,
        p: &Affine<Fp>,
        k: &BigUint,
        terms: &mut Vec<MulTerm<Fp>>,
        phi_source: &mut Vec<Option<usize>>,
    ) {
        let (k1, k2) = glv::decompose(k, &glv.basis);
        let base_idx = if k1.is_zero() {
            None
        } else {
            terms.push(MulTerm {
                point: p.clone(),
                scalar: k1.magnitude().clone(),
                negate: k1.is_negative(),
            });
            phi_source.push(None);
            Some(terms.len() - 1)
        };
        if !k2.is_zero() {
            terms.push(MulTerm {
                point: Affine::new(&p.x * &glv.beta, p.y.clone()),
                scalar: k2.magnitude().clone(),
                negate: k2.is_negative(),
            });
            phi_source.push(base_idx);
        }
    }

    /// Runs the interleaved kernel over GLV terms with φ-mapped tables
    /// (`X ↦ βX` in both coordinate systems, since x scales by β exactly
    /// when X does).
    fn glv_multi_mul(
        &self,
        glv: &GlvG1,
        ops: &FpOps,
        terms: &[MulTerm<Fp>],
        phi_source: &[Option<usize>],
    ) -> Jacobian<Fp> {
        let phi_aff = |e: &Affine<Fp>| Affine::new(&e.x * &glv.beta, e.y.clone());
        let phi_jac = |e: &Jacobian<Fp>| Jacobian {
            x: &e.x * &glv.beta,
            y: e.y.clone(),
            z: e.z.clone(),
        };
        let endo = EndoMap {
            affine: &phi_aff,
            jacobian: &phi_jac,
        };
        let table_maps: Vec<TableMap<Fp>> = phi_source
            .iter()
            .map(|m| m.map(|src| (src, endo)))
            .collect();
        jac_multi_mul_mapped(ops, terms, &table_maps)
    }

    /// G1 scalar multiplication on the r-torsion, returning an affine
    /// point.
    ///
    /// The scalar is reduced mod r up front (identical on the r-torsion,
    /// and oversized scalars would otherwise pay full-length ladders).
    /// A multiplication of a *registered* base — anything built by
    /// [`Curve::precompute_g1`], with the generator registered lazily on
    /// its first multiplication — routes through its fixed-base comb
    /// (`⌈bits/w⌉` doublings and mixed additions); any other base is
    /// split 2-GLV along φ so two `√r`-length ladders share one doubling
    /// chain (JSF joint recoding for the pair). Points outside the
    /// r-torsion should use the point-level
    /// [`jac_mul`]/[`crate::point::scalar_mul`], where no reduction or
    /// decomposition applies.
    pub fn g1_mul(&self, p: &Affine<Fp>, k: &BigUint) -> Affine<Fp> {
        let ops = FpOps(Arc::clone(&self.fp));
        let k = self.reduce_mod_r(k);
        if !p.infinity && !k.is_zero() {
            if let Some(pre) = self.g1_precomputed(p) {
                debug_assert!(pre.matches_base(p), "precompute cache is keyed per base");
                return pre.inner.mul(&ops, &k);
            }
            if *p == self.g1 {
                return self.precompute_g1(p).inner.mul(&ops, &k);
            }
        }
        let acc = match self.glv_g1.as_ref() {
            Some(glv) if !p.infinity && !k.is_zero() => {
                let mut terms = Vec::with_capacity(2);
                let mut phi_source = Vec::with_capacity(2);
                Self::glv_terms(glv, p, &k, &mut terms, &mut phi_source);
                self.glv_multi_mul(glv, &ops, &terms, &phi_source)
            }
            _ => jac_mul(&ops, p, &k),
        };
        to_affine(&ops, &acc)
    }

    /// Builds (or fetches) the `Arc`-shared fixed-base table for `base`
    /// and registers it in the curve's bounded point-keyed cache, so
    /// every later [`Curve::g1_mul`] on `base` — from any holder of this
    /// curve — routes through the comb instead of the variable-base
    /// path. Registering the identity yields a degenerate table whose
    /// every multiple is the identity.
    pub fn precompute_g1(&self, base: &Affine<Fp>) -> Arc<G1Precomputed> {
        let ops = FpOps(Arc::clone(&self.fp));
        let key = g1_point_key(base);
        // Recover from a poisoned lock: the cache only holds fully built
        // tables, so its state is valid even after a panic elsewhere.
        let mut cache = self
            .g1_precomp
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        cache.get_or_insert_with(key, || G1Precomputed {
            inner: Precomputed::build(&ops, base, self.r.bits()),
        })
    }

    /// The registered fixed-base table for `base`, if one is cached
    /// (never builds; refreshes LRU recency on a hit).
    pub fn g1_precomputed(&self, base: &Affine<Fp>) -> Option<Arc<G1Precomputed>> {
        let key = g1_point_key(base);
        self.g1_precomp
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
    }

    /// `[k]·base` through an explicit fixed-base table (the scalar is
    /// reduced mod r first, as in [`Curve::g1_mul`]). Useful when the
    /// caller holds the `Arc` and wants to skip the cache lookup, or
    /// multiplies a base it deliberately did not register.
    pub fn g1_mul_precomputed(&self, pre: &G1Precomputed, k: &BigUint) -> Affine<Fp> {
        let ops = FpOps(Arc::clone(&self.fp));
        pre.inner.mul(&ops, &self.reduce_mod_r(k))
    }

    /// G1 point addition.
    pub fn g1_add(&self, a: &Affine<Fp>, b: &Affine<Fp>) -> Affine<Fp> {
        let ops = FpOps(Arc::clone(&self.fp));
        to_affine(
            &ops,
            &jac_add(&ops, &to_jacobian(&ops, a), &to_jacobian(&ops, b)),
        )
    }

    /// The GLS digit vector for a reduced scalar (no re-reduction).
    fn gls_digits_reduced(&self, k: &BigUint) -> Vec<BigInt> {
        match &self.gls_g2 {
            GlsG2::Power { t } => glv::balanced_digits(k, t),
            GlsG2::Quartic { basis } => glv::decompose4(k, basis).to_vec(),
            GlsG2::TwoDim { basis, .. } => {
                let (k1, k2) = glv::decompose(k, basis);
                vec![k1, k2]
            }
        }
    }

    /// Builds the GLS term list `±|dᵢ|·ψⁱ(Q)` for one G2 point/scalar.
    /// Each term also records `(source term, ψ-power gap)` so its
    /// odd-multiples table can be derived from the previous live term's
    /// table through ψ (a group homomorphism) instead of rebuilt.
    fn gls_terms(
        &self,
        q: &Affine<Fq>,
        digits: &[BigInt],
        terms: &mut Vec<MulTerm<Fq>>,
        psi_source: &mut Vec<Option<(usize, usize)>>,
    ) {
        let mut psi_q = q.clone();
        let mut last_live: Option<(usize, usize)> = None; // (term idx, ψ power)
        for (i, d) in digits.iter().enumerate() {
            if i > 0 {
                psi_q = self.psi(&psi_q);
            }
            if d.is_zero() {
                continue;
            }
            let idx = terms.len();
            psi_source.push(last_live.map(|(src, pow)| (src, i - pow)));
            terms.push(MulTerm {
                point: psi_q.clone(),
                scalar: d.magnitude().clone(),
                negate: d.is_negative(),
            });
            last_live = Some((idx, i));
        }
    }

    /// ψ in Jacobian coordinates: `(X, Y, Z) ↦ (γx·Xᵖ, γy·Yᵖ, Zᵖ)`
    /// (Frobenius is multiplicative, so x = X/Z² maps to γx·xᵖ exactly
    /// when the coordinates do).
    fn psi_jacobian(&self, q: &Jacobian<Fq>) -> Jacobian<Fq> {
        Jacobian {
            x: self.tower.fq_mul(&self.tower.fq_frob(&q.x, 1), &self.psi_x),
            y: self.tower.fq_mul(&self.tower.fq_frob(&q.y, 1), &self.psi_y),
            z: self.tower.fq_frob(&q.z, 1),
        }
    }

    /// Runs the interleaved kernel over GLS terms with ψ-mapped tables.
    fn gls_multi_mul(
        &self,
        ops: &FqOps,
        terms: &[MulTerm<Fq>],
        psi_source: &[Option<(usize, usize)>],
    ) -> Jacobian<Fq> {
        type AffMap<'a> = Box<dyn Fn(&Affine<Fq>) -> Affine<Fq> + 'a>;
        type JacMap<'a> = Box<dyn Fn(&Jacobian<Fq>) -> Jacobian<Fq> + 'a>;
        let closures: Vec<Option<(AffMap, JacMap)>> = psi_source
            .iter()
            .map(|m| {
                m.map(|(_, gap)| {
                    let aff = Box::new(move |e: &Affine<Fq>| {
                        let mut out = self.psi(e);
                        for _ in 1..gap {
                            out = self.psi(&out);
                        }
                        out
                    }) as AffMap;
                    let jac = Box::new(move |e: &Jacobian<Fq>| {
                        let mut out = self.psi_jacobian(e);
                        for _ in 1..gap {
                            out = self.psi_jacobian(&out);
                        }
                        out
                    }) as JacMap;
                    (aff, jac)
                })
            })
            .collect();
        let table_maps: Vec<TableMap<Fq>> = psi_source
            .iter()
            .zip(&closures)
            .map(|(m, c)| {
                // closures[i] is Some exactly when psi_source[i] is Some
                // (both map over the same source entries), so zipping a
                // mapped term with its closure pair never misses.
                match (m, c) {
                    (Some((src, _)), Some((aff, jac))) => Some((
                        *src,
                        EndoMap {
                            affine: aff.as_ref(),
                            jacobian: jac.as_ref(),
                        },
                    )),
                    _ => None,
                }
            })
            .collect();
        jac_multi_mul_mapped(ops, terms, &table_maps)
    }

    /// G2 scalar multiplication on the r-torsion, returning an affine
    /// point.
    ///
    /// The scalar is reduced mod r, then split along ψ (GLS): balanced
    /// base-`t` digits on BLS curves (`[k]Q = Σ [dᵢ]ψⁱ(Q)`, sub-scalars
    /// of `|t|` bits), the validated quartic basis on BN (four `|t|`-bit
    /// sub-scalars), or the 2-dimensional lattice split otherwise. As
    /// with [`Curve::g1_mul`], points outside the r-torsion must use the
    /// point-level primitives.
    pub fn g2_mul(&self, p: &Affine<Fq>, k: &BigUint) -> Affine<Fq> {
        let ops = FqOps(&self.tower);
        let k = self.reduce_mod_r(k);
        if p.infinity || k.is_zero() {
            return to_affine(&ops, &jac_mul(&ops, p, &k));
        }
        if let Some(pre) = self.g2_precomputed(p) {
            debug_assert!(pre.matches_base(p), "precompute cache is keyed per base");
            return pre.inner.mul(&ops, &k);
        }
        if *p == self.g2 {
            return self.precompute_g2(p).inner.mul(&ops, &k);
        }
        let digits = self.gls_digits_reduced(&k);
        let mut terms = Vec::with_capacity(digits.len());
        let mut psi_source = Vec::with_capacity(digits.len());
        self.gls_terms(p, &digits, &mut terms, &mut psi_source);
        to_affine(&ops, &self.gls_multi_mul(&ops, &terms, &psi_source))
    }

    /// Builds (or fetches) the fixed-base table for a G2 `base` and
    /// registers it for [`Curve::g2_mul`] routing — the G2 counterpart
    /// of [`Curve::precompute_g1`], serving long-lived points like BLS
    /// public keys.
    pub fn precompute_g2(&self, base: &Affine<Fq>) -> Arc<G2Precomputed> {
        let ops = FqOps(&self.tower);
        let key = g2_point_key(base);
        let mut cache = self
            .g2_precomp
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        cache.get_or_insert_with(key, || G2Precomputed {
            inner: Precomputed::build(&ops, base, self.r.bits()),
        })
    }

    /// The registered G2 fixed-base table for `base`, if one is cached.
    pub fn g2_precomputed(&self, base: &Affine<Fq>) -> Option<Arc<G2Precomputed>> {
        let key = g2_point_key(base);
        self.g2_precomp
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
    }

    /// `[k]·base` through an explicit G2 fixed-base table (scalar
    /// reduced mod r first).
    pub fn g2_mul_precomputed(&self, pre: &G2Precomputed, k: &BigUint) -> Affine<Fq> {
        let ops = FqOps(&self.tower);
        pre.inner.mul(&ops, &self.reduce_mod_r(k))
    }

    /// Multi-scalar multiplication `Σ kᵢ·Pᵢ` over G1 (Pippenger buckets).
    ///
    /// Scalars are reduced mod r and each term is GLV-split along φ
    /// before bucketing, so the bucket pass runs over twice the points at
    /// half the bit length — strictly fewer window iterations. For batch
    /// verifiers (BLS aggregate verification, KZG openings) this replaces
    /// a loop of [`Curve::g1_mul`] calls at a fraction of the cost.
    ///
    /// From [`crate::point::MSM_PARALLEL_MIN`] bucketed terms the
    /// underlying Pippenger pass shards across threads (see the
    /// `finesse-parallel` crate); the result is identical at every
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::MsmLengthMismatch`] if `points` and
    /// `scalars` have different lengths — batch verifiers feed these
    /// slices from untrusted transcripts, so the library reports the
    /// mismatch instead of aborting the process (the point-level
    /// [`crate::point::msm`] kernel keeps its documented assert).
    pub fn g1_msm(
        &self,
        points: &[Affine<Fp>],
        scalars: &[BigUint],
    ) -> Result<Affine<Fp>, CurveError> {
        if points.len() != scalars.len() {
            return Err(CurveError::MsmLengthMismatch {
                what: "g1_msm",
                points: points.len(),
                scalars: scalars.len(),
            });
        }
        let ops = FpOps(Arc::clone(&self.fp));
        let Some(glv) = self.glv_g1.as_ref() else {
            let mut pts = Vec::with_capacity(points.len());
            let mut ks = Vec::with_capacity(points.len());
            for (p, k) in points.iter().zip(scalars) {
                if p.infinity || k.is_zero() {
                    continue;
                }
                pts.push(p.clone());
                ks.push(self.reduce_mod_r(k));
            }
            return Ok(to_affine(&ops, &point_msm(&ops, &pts, &ks)?));
        };
        let mut terms = Vec::with_capacity(points.len() * 2);
        let mut phi_source = Vec::with_capacity(points.len() * 2);
        for (p, k) in points.iter().zip(scalars) {
            if p.infinity || k.is_zero() {
                continue;
            }
            let k = self.reduce_mod_r(k);
            Self::glv_terms(glv, p, &k, &mut terms, &mut phi_source);
        }
        let acc = straus_or_pippenger(&ops, &terms, |t| {
            self.glv_multi_mul(glv, &ops, t, &phi_source)
        });
        Ok(to_affine(&ops, &acc))
    }

    /// [`Curve::g1_msm_short`] with the normalisation deferred: the
    /// Jacobian accumulator, so grouped callers can batch-normalise many
    /// aggregates with one shared inversion.
    fn g1_msm_short_jac(
        &self,
        points: &[Affine<Fp>],
        scalars: &[BigUint],
    ) -> Result<Jacobian<Fp>, CurveError> {
        if points.len() != scalars.len() {
            return Err(CurveError::MsmLengthMismatch {
                what: "g1_msm_short",
                points: points.len(),
                scalars: scalars.len(),
            });
        }
        let ops = FpOps(Arc::clone(&self.fp));
        // The GLV split rewrites a full-width scalar as two half-width
        // sub-scalars; a scalar already at most half-width gains nothing
        // from the split (the Pippenger window count is set by the widest
        // scalar), so the short path feeds the bucket pass directly. Any
        // wide scalar sends the whole call down the reducing/splitting
        // path — the short path must never widen the window geometry.
        let half_bits = self.r.bits().div_ceil(2);
        if scalars.iter().any(|k| k.bits() > half_bits) {
            return Ok(to_jacobian(&ops, &self.g1_msm(points, scalars)?));
        }
        point_msm(&ops, points, scalars)
    }

    /// Multi-scalar multiplication `Σ kᵢ·Pᵢ` over G1 for **short**
    /// scalars — the batch-verification randomizer path (~128-bit
    /// random-linear-combination coefficients).
    ///
    /// Scalars at most `⌈bits(r)/2⌉` bits skip both the mod-r reduction
    /// and the GLV endomorphism split and go straight to the Pippenger /
    /// Straus kernel: the window count follows the actual scalar width,
    /// so a 128-bit batch runs half the window iterations of a full-width
    /// MSM on a 255-bit group order. Scalars wider than that fall back to
    /// [`Curve::g1_msm`] (reduce + split), so the call is correct for any
    /// input.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::MsmLengthMismatch`] if `points` and
    /// `scalars` have different lengths.
    pub fn g1_msm_short(
        &self,
        points: &[Affine<Fp>],
        scalars: &[BigUint],
    ) -> Result<Affine<Fp>, CurveError> {
        let ops = FpOps(Arc::clone(&self.fp));
        Ok(to_affine(&ops, &self.g1_msm_short_jac(points, scalars)?))
    }

    /// Runs one short-scalar MSM per `(points, scalars)` group and
    /// normalises **all** aggregates with a single shared inversion
    /// ([`batch_to_affine`]) — the deferred-pairing-accumulator shape,
    /// where each distinct G2 point owns one aggregated G1 side and every
    /// aggregate is needed in affine form for the Miller loops.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::MsmLengthMismatch`] if any group's points
    /// and scalars have different lengths.
    pub fn g1_msm_short_groups(
        &self,
        groups: &[(Vec<Affine<Fp>>, Vec<BigUint>)],
    ) -> Result<Vec<Affine<Fp>>, CurveError> {
        let ops = FpOps(Arc::clone(&self.fp));
        let jacs = groups
            .iter()
            .map(|(points, scalars)| self.g1_msm_short_jac(points, scalars))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(batch_to_affine(&ops, &jacs))
    }

    /// Multi-scalar multiplication `Σ kᵢ·Qᵢ` over G2 (Pippenger buckets),
    /// with each term GLS-split along ψ before bucketing (up to 8
    /// sub-scalars of `|t|` bits each on BLS24). Shards across threads
    /// from [`crate::point::MSM_PARALLEL_MIN`] bucketed terms, like
    /// [`Curve::g1_msm`].
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::MsmLengthMismatch`] if `points` and
    /// `scalars` have different lengths.
    pub fn g2_msm(
        &self,
        points: &[Affine<Fq>],
        scalars: &[BigUint],
    ) -> Result<Affine<Fq>, CurveError> {
        if points.len() != scalars.len() {
            return Err(CurveError::MsmLengthMismatch {
                what: "g2_msm",
                points: points.len(),
                scalars: scalars.len(),
            });
        }
        let ops = FqOps(&self.tower);
        let mut terms = Vec::with_capacity(points.len() * 2);
        let mut psi_source = Vec::with_capacity(points.len() * 2);
        for (q, k) in points.iter().zip(scalars) {
            if q.infinity || k.is_zero() {
                continue;
            }
            let k = self.reduce_mod_r(k);
            let digits = self.gls_digits_reduced(&k);
            self.gls_terms(q, &digits, &mut terms, &mut psi_source);
        }
        let acc = straus_or_pippenger(&ops, &terms, |t| self.gls_multi_mul(&ops, t, &psi_source));
        Ok(to_affine(&ops, &acc))
    }

    /// G2 point addition.
    pub fn g2_add(&self, a: &Affine<Fq>, b: &Affine<Fq>) -> Affine<Fq> {
        let ops = FqOps(&self.tower);
        to_affine(
            &ops,
            &jac_add(&ops, &to_jacobian(&ops, a), &to_jacobian(&ops, b)),
        )
    }

    /// True iff an affine point lies on E(F_p).
    pub fn g1_on_curve(&self, p: &Affine<Fp>) -> bool {
        let ops = FpOps(Arc::clone(&self.fp));
        is_on_curve(&ops, p, &self.b)
    }

    /// True iff an affine point lies on the twist E'(F_q).
    pub fn g2_on_curve(&self, p: &Affine<Fq>) -> bool {
        let ops = FqOps(&self.tower);
        is_on_curve(&ops, p, &self.b_twist)
    }

    /// Hashes arbitrary bytes to a G1 point (try-and-increment + cofactor
    /// clearing) — enough for the BLS-signature example; not constant time.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::HashToCurveExhausted`] if 10 000 counters
    /// yield no subgroup point — about half of all x-coordinates have a
    /// square right-hand side, so this signals corrupted curve parameters,
    /// not bad luck; a serving library must report it rather than abort.
    pub fn hash_to_g1(&self, msg: &[u8]) -> Result<Affine<Fp>, CurveError> {
        // Simple deterministic digest: FNV-1a folded into field elements.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in msg {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let ops = FpOps(Arc::clone(&self.fp));
        for ctr in 0..10_000u64 {
            let x = self
                .fp
                .sample(h.wrapping_add(ctr.wrapping_mul(0x9E37_79B9)));
            let rhs = &(&x.square() * &x) + &self.b;
            if let Some(y) = rhs.sqrt() {
                let pt = Affine::new(x, y);
                let g = to_affine(&ops, &jac_mul(&ops, &pt, &self.g1_cofactor));
                if !g.infinity {
                    return Ok(g);
                }
            }
        }
        Err(CurveError::HashToCurveExhausted)
    }

    /// The full final-exponentiation exponent `(p^k − 1)/r` (oracle use).
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::ExponentDerivation`] if `r ∤ p^k − 1` —
    /// impossible for a curve that passed construction validation, but
    /// reported instead of aborting the process.
    pub fn final_exp_full(&self) -> Result<BigUint, CurveError> {
        let pk = self.p.pow(self.k() as u32);
        let num = pk
            .checked_sub(&BigUint::one())
            .ok_or(CurveError::ExponentDerivation("p^k underflowed"))?;
        let (q, rem) = num.divrem(&self.r);
        if !rem.is_zero() {
            return Err(CurveError::ExponentDerivation("r does not divide p^k - 1"));
        }
        Ok(q)
    }

    /// The hard-part exponent `Φ_k(p)/r` where `Φ_12 = p⁴ − p² + 1`,
    /// `Φ_24 = p⁸ − p⁴ + 1`.
    pub fn hard_exponent(&self) -> BigUint {
        let (a, b) = match self.k() {
            12 => (4u32, 2u32),
            24 => (8, 4),
            _ => unreachable!(),
        };
        let phi = &(&self.p.pow(a) - &self.p.pow(b)) + &BigUint::one();
        phi.div_exact(&self.r)
    }
}

/// Dispatches a GLV/GLS-split term list to the interleaved Straus kernel
/// (mapped tables, below [`crate::point::MSM_STRAUS_MAX`] terms) or to
/// Pippenger buckets (negation folded into the points, since buckets
/// carry no per-term sign).
fn straus_or_pippenger<O>(
    ops: &O,
    terms: &[MulTerm<O::El>],
    straus: impl FnOnce(&[MulTerm<O::El>]) -> Jacobian<O::El>,
) -> Jacobian<O::El>
where
    O: FieldOps + Sync,
    O::El: Send + Sync,
{
    if terms.len() < crate::point::MSM_STRAUS_MAX {
        return straus(terms);
    }
    let pts: Vec<Affine<O::El>> = terms
        .iter()
        .map(|t| {
            if t.negate {
                affine_neg(ops, &t.point)
            } else {
                t.point.clone()
            }
        })
        .collect();
    let ks: Vec<BigUint> = terms.iter().map(|t| t.scalar.clone()).collect();
    // pts and ks come from the same term list, so the kernel's length
    // check cannot fail; map the impossible error to the identity.
    point_msm(ops, &pts, &ks).unwrap_or(Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    })
}

/// Global cache of constructed curves (construction costs tens of ms to
/// seconds, and tests re-use them heavily).
fn registry() -> &'static Mutex<HashMap<String, Arc<Curve>>> {
    static REG: OnceLock<Mutex<HashMap<String, Arc<Curve>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

impl Curve {
    /// Returns the cached curve for a Table 2 name, constructing it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown or construction fails — both indicate
    /// corrupted built-in parameters, which is a build-breaking bug.
    /// Code that takes the curve name from untrusted input (config files,
    /// RPC) should use [`Curve::try_by_name`] instead.
    // This is the one documented programmer-error panic exempt from the
    // workspace panic-free lint gate; everything else goes through
    // try_by_name.
    #[allow(clippy::panic)]
    pub fn by_name(name: &str) -> Arc<Curve> {
        match Self::try_by_name(name) {
            Ok(c) => c,
            Err(e) => panic!("built-in curve {name} unavailable: {e}"),
        }
    }

    /// Fallible variant of [`Curve::by_name`] for untrusted curve names:
    /// returns [`CurveError::UnknownCurve`] instead of panicking when the
    /// name is not in Table 2, and surfaces construction errors.
    ///
    /// # Errors
    ///
    /// [`CurveError::UnknownCurve`] for an unrecognised name, or any
    /// construction error from [`Curve::from_spec`].
    pub fn try_by_name(name: &str) -> Result<Arc<Curve>, CurveError> {
        let spec = crate::spec::spec_by_name(name).ok_or_else(|| CurveError::UnknownCurve {
            name: name.to_owned(),
        })?;
        // Recover from a poisoned lock: the registry holds only fully
        // constructed curves, so the map is valid even if another thread
        // panicked while holding it.
        let mut reg = registry()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(c) = reg.get(spec.name) {
            return Ok(Arc::clone(c));
        }
        let curve = Arc::new(Curve::from_spec(spec)?);
        reg.insert(spec.name.to_owned(), Arc::clone(&curve));
        Ok(curve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn bn254n_constructs_and_matches_literature() {
        let c = Curve::by_name("BN254N");
        assert_eq!(c.p().bits(), 254);
        assert_eq!(c.r().bits(), 254);
        // Beuchat et al. BN254 prime.
        assert_eq!(
            c.p().to_hex(),
            "2523648240000001ba344d80000000086121000000000013a700000000000013"
        );
        assert_eq!(
            c.r().to_hex(),
            "2523648240000001ba344d8000000007ff9f800000000010a10000000000000d"
        );
        // BN cofactor is 1: G1 order = r.
        assert!(c.g1_cofactor().is_one());
        assert!(c.g1_on_curve(c.g1_generator()));
        assert!(c.g2_on_curve(c.g2_generator()));
    }

    #[test]
    fn bls12_381_constructs_and_matches_literature() {
        let c = Curve::by_name("BLS12-381");
        assert_eq!(
            c.p().to_hex(),
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab"
        );
        assert_eq!(
            c.r().to_hex(),
            "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001"
        );
        assert_eq!(c.b().to_biguint(), BigUint::from_u64(4));
        assert!(c.g1_on_curve(c.g1_generator()));
        assert!(c.g2_on_curve(c.g2_generator()));
    }

    #[test]
    fn generators_have_order_r() {
        // Membership must be checked with the *non-reducing* point-level
        // ladder: the curve-level muls reduce scalars mod r, which would
        // make [r]G = O vacuous.
        for name in ["BN254N", "BLS12-381"] {
            let c = Curve::by_name(name);
            let fp_ops = FpOps(Arc::clone(c.fp()));
            let g1r = jac_mul(&fp_ops, c.g1_generator(), c.r());
            assert!(is_identity(&fp_ops, &g1r), "{name}: [r]G1 = O");
            let fq_ops = FqOps(c.tower());
            let g2r = jac_mul(&fq_ops, c.g2_generator(), c.r());
            assert!(is_identity(&fq_ops, &g2r), "{name}: [r]G2 = O");
            // and not killed by smaller factors: [r-1]G != O
            let rm1 = c.r().checked_sub(&BigUint::one()).unwrap();
            assert!(!c.g1_mul(c.g1_generator(), &rm1).infinity);
        }
    }

    #[test]
    fn psi_is_p_power_endomorphism() {
        for name in ["BN254N", "BLS12-381"] {
            let c = Curve::by_name(name);
            let q = c.g2_generator();
            let psi_q = c.psi(q);
            assert!(c.g2_on_curve(&psi_q));
            assert_eq!(psi_q, c.g2_mul(q, c.p()), "{name}");
            // psi² (Q) = [p²] Q
            let psi2 = c.psi(&psi_q);
            let p2 = c.p().pow(2).rem(c.r());
            assert_eq!(psi2, c.g2_mul(q, &p2), "{name} psi^2");
        }
    }

    #[test]
    fn group_laws_on_generators() {
        let c = Curve::by_name("BLS12-381");
        let g = c.g1_generator();
        let two_g = c.g1_add(g, g);
        assert_eq!(two_g, c.g1_mul(g, &BigUint::from_u64(2)));
        let q = c.g2_generator();
        let three_q = c.g2_add(&c.g2_add(q, q), q);
        assert_eq!(three_q, c.g2_mul(q, &BigUint::from_u64(3)));
    }

    #[test]
    fn hash_to_g1_lands_in_subgroup() {
        let c = Curve::by_name("BN254N");
        let h1 = c.hash_to_g1(b"finesse").expect("hash lands");
        let h2 = c.hash_to_g1(b"finesse").expect("hash lands");
        let h3 = c.hash_to_g1(b"different message").expect("hash lands");
        assert_eq!(h1, h2, "deterministic");
        assert!(h1 != h3, "message-dependent");
        assert!(c.g1_on_curve(&h1));
        // Subgroup check via the non-reducing point-level ladder.
        let ops = FpOps(Arc::clone(c.fp()));
        assert!(is_identity(&ops, &jac_mul(&ops, &h1, c.r())));
    }

    #[test]
    fn hash_to_g1_succeeds_across_inputs() {
        // The try-and-increment loop now reports exhaustion instead of
        // aborting; every real input must come back Ok.
        let c = Curve::by_name("BN254N");
        for i in 0..32u32 {
            assert!(
                c.hash_to_g1(&i.to_le_bytes()).is_ok(),
                "input {i} failed to hash"
            );
        }
        assert!(c.hash_to_g1(b"").is_ok(), "empty message hashes");
    }

    #[test]
    fn hard_exponent_divides_cleanly() {
        let c = Curve::by_name("BN254N");
        // (p^k − 1)/r = (p^6−1)(p^2+1) · hard, sanity: both computable.
        let full = c.final_exp_full().expect("r divides p^k - 1");
        let hard = c.hard_exponent();
        assert!(full.bits() > hard.bits());
    }

    #[test]
    fn spec_validation_catches_wrong_bits() {
        // Perturb BLS12-381's expected p bits.
        let mut s = spec::BLS12_381.clone();
        s.p_bits = 380;
        match Curve::from_spec(&s) {
            Err(CurveError::BitLengthMismatch { what: "p", .. }) => {}
            other => panic!("expected bit mismatch, got {other:?}"),
        }
    }
}
