//! Fully-validated pairing curve contexts.
//!
//! [`Curve::from_spec`] turns a declarative [`CurveSpec`] into a working
//! curve: it synthesises and primality-checks p and r, builds the field
//! tower, *discovers* the correct curve coefficient and sextic twist
//! (rather than trusting constants), derives generators with cofactor
//! clearing, and calibrates the untwist–Frobenius endomorphism ψ against
//! the defining identity `ψ(Q) = [p]Q` on the r-torsion. Every derived
//! quantity is checked, so a typo in a literature constant fails loudly at
//! construction instead of corrupting pairings downstream.

use crate::point::{
    affine_neg, is_identity, is_on_curve, jac_add, jac_mul, to_affine, to_jacobian, Affine, FpOps,
    FqOps,
};
use crate::spec::{CurveSpec, Family};
use finesse_ff::{BigInt, BigUint, FieldCtxError, Fp, FpCtx, Fq, TowerCtx, TowerError};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Which sextic twist the curve uses (affects line-evaluation sparsity).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TwistKind {
    /// Divisive twist: `E': y² = x³ + b/ξ`, untwist multiplies by w-powers.
    D,
    /// Multiplicative twist: `E': y² = x³ + b·ξ`.
    M,
}

/// Error constructing a [`Curve`].
#[derive(Debug)]
pub enum CurveError {
    /// p or r had the wrong bit length vs the spec.
    BitLengthMismatch {
        /// Which parameter mismatched ("p" or "r").
        what: &'static str,
        /// Expected bit count.
        expected: usize,
        /// Computed bit count.
        got: usize,
    },
    /// p or r is composite.
    NotPrime(&'static str),
    /// The family polynomial gave a negative value.
    NegativeParameter(&'static str),
    /// r does not divide the curve order.
    OrderNotDivisible,
    /// Field context construction failed.
    Field(FieldCtxError),
    /// Tower construction failed.
    Tower(TowerError),
    /// No curve coefficient b with the right group order was found.
    CurveCoefficientNotFound,
    /// Neither twist candidate has order divisible by r.
    TwistNotFound,
    /// The ψ endomorphism constants failed the `ψ(Q) = [p]Q` identity.
    EndomorphismMismatch,
    /// Try-and-increment hash-to-curve exhausted its counter budget
    /// without landing on the curve (astronomically unlikely for a real
    /// curve; indicates corrupted parameters rather than bad luck).
    HashToCurveExhausted,
    /// An exponent derivation hit an arithmetic impossibility (reported
    /// instead of aborting; indicates corrupted curve parameters).
    ExponentDerivation(&'static str),
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::BitLengthMismatch {
                what,
                expected,
                got,
            } => {
                write!(f, "{what} has {got} bits, spec expects {expected}")
            }
            CurveError::NotPrime(what) => write!(f, "{what} is not prime"),
            CurveError::NegativeParameter(what) => write!(f, "{what} evaluated negative"),
            CurveError::OrderNotDivisible => f.write_str("r does not divide #E(Fp)"),
            CurveError::Field(e) => write!(f, "field construction: {e}"),
            CurveError::Tower(e) => write!(f, "tower construction: {e}"),
            CurveError::CurveCoefficientNotFound => {
                f.write_str("no curve coefficient b produced the expected group order")
            }
            CurveError::TwistNotFound => {
                f.write_str("no sextic twist with order divisible by r was found")
            }
            CurveError::EndomorphismMismatch => {
                f.write_str("untwist-Frobenius constants failed psi(Q) = [p]Q")
            }
            CurveError::HashToCurveExhausted => {
                f.write_str("hash-to-curve found no point within the counter budget")
            }
            CurveError::ExponentDerivation(what) => {
                write!(f, "exponent derivation failed: {what}")
            }
        }
    }
}

impl std::error::Error for CurveError {}

impl From<FieldCtxError> for CurveError {
    fn from(e: FieldCtxError) -> Self {
        CurveError::Field(e)
    }
}

impl From<TowerError> for CurveError {
    fn from(e: TowerError) -> Self {
        CurveError::Tower(e)
    }
}

/// A fully-initialised, self-validated pairing-friendly curve.
pub struct Curve {
    name: String,
    family: Family,
    t: BigInt,
    p: BigUint,
    r: BigUint,
    trace: BigInt,
    fp: Arc<FpCtx>,
    tower: Arc<TowerCtx>,
    b: Fp,
    b_twist: Fq,
    twist: TwistKind,
    n1: BigUint,
    g1_cofactor: BigUint,
    g2_order: BigUint,
    g2_cofactor: BigUint,
    g1: Affine<Fp>,
    g2: Affine<Fq>,
    psi_x: Fq,
    psi_y: Fq,
    table2_security: u32,
}

impl fmt::Debug for Curve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Curve")
            .field("name", &self.name)
            .field("family", &self.family)
            .field("p_bits", &self.p.bits())
            .field("r_bits", &self.r.bits())
            .field("twist", &self.twist)
            .finish()
    }
}

impl Curve {
    /// Builds and validates a curve from a named spec.
    ///
    /// # Errors
    ///
    /// Any failed validation returns a descriptive [`CurveError`].
    pub fn from_spec(spec: &CurveSpec) -> Result<Curve, CurveError> {
        Self::new(
            spec.name,
            spec.family,
            spec.t(),
            spec.b_hint,
            spec.beta,
            spec.xi2,
            spec.xi,
            Some((spec.p_bits, spec.r_bits)),
            spec.table2_security,
        )
    }

    /// Builds a curve from explicit parameters (the "operator kit" entry
    /// point used when porting a new curve, §4.5 of the paper).
    ///
    /// # Errors
    ///
    /// Any failed validation returns a descriptive [`CurveError`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        family: Family,
        t: BigInt,
        b_hint: Option<u64>,
        beta: i64,
        xi2: Option<(i64, i64)>,
        xi: &[i64],
        expected_bits: Option<(usize, usize)>,
        table2_security: u32,
    ) -> Result<Curve, CurveError> {
        // --- parameters -------------------------------------------------
        let p_int = family.prime(&t);
        let r_int = family.order(&t);
        let trace = family.trace(&t);
        let p = p_int
            .to_biguint()
            .ok_or(CurveError::NegativeParameter("p"))?;
        let r = r_int
            .to_biguint()
            .ok_or(CurveError::NegativeParameter("r"))?;
        if let Some((pb, rb)) = expected_bits {
            if p.bits() != pb {
                return Err(CurveError::BitLengthMismatch {
                    what: "p",
                    expected: pb,
                    got: p.bits(),
                });
            }
            if r.bits() != rb {
                return Err(CurveError::BitLengthMismatch {
                    what: "r",
                    expected: rb,
                    got: r.bits(),
                });
            }
        }
        if !p.is_probable_prime(40) {
            return Err(CurveError::NotPrime("p"));
        }
        if !r.is_probable_prime(40) {
            return Err(CurveError::NotPrime("r"));
        }
        // #E(Fp) = p + 1 − tr
        let n1 = (&(&p_int + &BigInt::one()) - &trace)
            .to_biguint()
            .ok_or(CurveError::NegativeParameter("#E"))?;
        let (g1_cofactor, rem) = n1.divrem(&r);
        if !rem.is_zero() {
            return Err(CurveError::OrderNotDivisible);
        }

        // --- fields -----------------------------------------------------
        let fp = FpCtx::new(p.clone())?;
        let beta_fp = fp.from_i64(beta);
        let tower = match family.embedding_degree() {
            12 => {
                assert_eq!(xi.len(), 2, "k=12 xi needs 2 coefficients");
                // The spec's ξ is a hint; if it happens to be a 2nd/3rd
                // power in F_p2 for this prime, scan small alternatives
                // (any valid ξ yields an isomorphic tower).
                let mut tower = TowerCtx::sextic_over_fp2(
                    &fp,
                    beta_fp.clone(),
                    (fp.from_i64(xi[0]), fp.from_i64(xi[1])),
                );
                if matches!(tower, Err(TowerError::ReducibleSextic)) {
                    'scan: for c1 in 1..4i64 {
                        for c0 in 1..24i64 {
                            let cand = TowerCtx::sextic_over_fp2(
                                &fp,
                                beta_fp.clone(),
                                (fp.from_i64(c0), fp.from_i64(c1)),
                            );
                            if cand.is_ok() {
                                tower = cand;
                                break 'scan;
                            }
                        }
                    }
                }
                tower?
            }
            24 => {
                assert_eq!(xi.len(), 4, "k=24 xi needs 4 coefficients");
                let (c0, c1) = xi2.expect("k=24 spec must provide xi2");
                TowerCtx::sextic_over_fp4(
                    &fp,
                    beta_fp,
                    (fp.from_i64(c0), fp.from_i64(c1)),
                    [
                        fp.from_i64(xi[0]),
                        fp.from_i64(xi[1]),
                        fp.from_i64(xi[2]),
                        fp.from_i64(xi[3]),
                    ],
                )?
            }
            _ => unreachable!("families are k=12 or k=24"),
        };

        // --- curve coefficient and G1 ------------------------------------
        let fp_ops = FpOps(Arc::clone(&fp));
        let (b, g1) = Self::find_g1(&fp_ops, b_hint, &n1, &g1_cofactor, &r)
            .ok_or(CurveError::CurveCoefficientNotFound)?;

        // --- twist and G2 -------------------------------------------------
        let (twist, b_twist, g2_order) = Self::find_twist_with_trace(&tower, &trace, &b, &r)?;
        let (g2_cofactor, rem) = g2_order.divrem(&r);
        debug_assert!(rem.is_zero());
        let g2 = Self::find_g2(&tower, &b_twist, &g2_order, &g2_cofactor, &r)
            .ok_or(CurveError::TwistNotFound)?;

        // --- psi endomorphism --------------------------------------------
        let (psi_x, psi_y) = Self::calibrate_psi(&tower, &b_twist, &g2, &p)?;

        Ok(Curve {
            name: name.to_owned(),
            family,
            t,
            p,
            r,
            trace,
            fp,
            tower,
            b,
            b_twist,
            twist,
            n1,
            g1_cofactor,
            g2_order,
            g2_cofactor,
            g1,
            g2,
            psi_x,
            psi_y,
            table2_security,
        })
    }

    /// Finds (b, generator): smallest b >= 1 whose curve has order n1, with
    /// a canonical cofactor-cleared generator.
    fn find_g1(
        ops: &FpOps,
        b_hint: Option<u64>,
        n1: &BigUint,
        cofactor: &BigUint,
        r: &BigUint,
    ) -> Option<(Fp, Affine<Fp>)> {
        let candidates: Vec<u64> = b_hint.into_iter().chain(1..=40).collect();
        'bloop: for bc in candidates {
            let b = ops.0.from_u64(bc);
            // Collect a couple of points and require [n1]P = O for each.
            let mut points = Vec::new();
            for x0 in 0..400u64 {
                let x = ops.0.from_u64(x0);
                let rhs = &(&x.square() * &x) + &b;
                if let Some(y) = rhs.sqrt() {
                    if y.is_zero() && rhs.is_zero() && bc == 0 {
                        continue;
                    }
                    points.push(Affine::new(x, y));
                    if points.len() == 3 {
                        break;
                    }
                }
            }
            if points.len() < 3 {
                continue;
            }
            for pt in &points {
                if !is_identity(ops, &jac_mul(ops, pt, n1)) {
                    continue 'bloop;
                }
            }
            // Cofactor-clear the first point that survives into a generator.
            for pt in &points {
                let g = to_affine(ops, &jac_mul(ops, pt, cofactor));
                if g.infinity {
                    continue;
                }
                debug_assert!(is_identity(ops, &jac_mul(ops, &g, r)));
                // Canonicalise y to the lexicographically smaller root.
                let y_neg = (-&g.y).to_biguint();
                let g = if y_neg < g.y.to_biguint() {
                    affine_neg(ops, &g)
                } else {
                    g
                };
                return Some((b, g));
            }
        }
        None
    }

    /// Trace of Frobenius over F_p^m via the Lucas-style recurrence
    /// `t_j = tr·t_{j−1} − p·t_{j−2}`.
    fn trace_over_extension(trace: &BigInt, p: &BigUint, m: usize) -> BigInt {
        let p_int = BigInt::from_biguint(p.clone());
        let mut t_prev = BigInt::from_i64(2);
        let mut t_cur = trace.clone();
        for _ in 1..m {
            let next = &(trace * &t_cur) - &(&p_int * &t_prev);
            t_prev = t_cur;
            t_cur = next;
        }
        t_cur
    }

    /// Determines the correct sextic twist: kind, coefficient, group order.
    ///
    /// Solves the CM equation `t_m² − 4q = −3f²` for the trace over F_q,
    /// enumerates the candidate twist orders, keeps those divisible by r,
    /// then identifies the real twist empirically by order-annihilation on
    /// sampled points.
    fn find_twist_with_trace(
        tower: &Arc<TowerCtx>,
        trace: &BigInt,
        b: &Fp,
        r: &BigUint,
    ) -> Result<(TwistKind, Fq, BigUint), CurveError> {
        let q = tower.q_order().clone();
        let q_int = BigInt::from_biguint(q.clone());
        let tm = Self::trace_over_extension(trace, tower.fp().modulus(), tower.qdeg());
        // 4q − t_m² = 3 f²
        let four_q = &BigInt::from_i64(4) * &q_int;
        let disc = (&four_q - &(&tm * &tm))
            .to_biguint()
            .ok_or(CurveError::TwistNotFound)?;
        let f2 = disc.div_exact(&BigUint::from_u64(3));
        let f = f2.isqrt();
        if &f * &f != f2 {
            return Err(CurveError::TwistNotFound);
        }
        let f_int = BigInt::from_biguint(f);
        let three_f = &BigInt::from_i64(3) * &f_int;
        let two = BigUint::from_u64(2);
        // Candidate traces of the six twists.
        let mut cands: Vec<BigInt> = vec![tm.clone(), tm.neg()];
        for sign_t in [1i64, -1] {
            for sign_f in [1i64, -1] {
                let num =
                    &(&BigInt::from_i64(sign_t) * &tm) + &(&BigInt::from_i64(sign_f) * &three_f);
                if num.magnitude().is_even() {
                    cands.push(BigInt::from_sign_magnitude(
                        num.is_negative(),
                        num.magnitude().divrem(&two).0,
                    ));
                }
            }
        }
        let mut orders: Vec<BigUint> = Vec::new();
        for c in cands {
            if let Some(n) = (&(&q_int + &BigInt::one()) - &c).to_biguint() {
                if n.rem(r).is_zero() && !orders.contains(&n) {
                    orders.push(n);
                }
            }
        }
        if orders.is_empty() {
            return Err(CurveError::TwistNotFound);
        }
        // Try each (kind, coefficient) and candidate order empirically.
        let ops = FqOps(tower);
        let b_fq = tower.fq_from_fp(b);
        let xi = tower.xi().clone();
        let attempts = [
            (TwistKind::D, tower.fq_mul(&b_fq, &tower.fq_inv(&xi))),
            (TwistKind::M, tower.fq_mul(&b_fq, &xi)),
        ];
        for (kind, bt) in attempts {
            if let Some(pt) = Self::find_point_on_twist(tower, &bt, 0) {
                for n in &orders {
                    if is_identity(&ops, &jac_mul(&ops, &pt, n)) {
                        // confirm with a second point
                        let pt2 = Self::find_point_on_twist(tower, &bt, 1000)
                            .ok_or(CurveError::TwistNotFound)?;
                        if is_identity(&ops, &jac_mul(&ops, &pt2, n)) {
                            return Ok((kind, bt, n.clone()));
                        }
                    }
                }
            }
        }
        Err(CurveError::TwistNotFound)
    }

    fn find_point_on_twist(tower: &TowerCtx, bt: &Fq, seed0: u64) -> Option<Affine<Fq>> {
        for seed in seed0..seed0 + 512 {
            let x = tower.fq_sample(seed.wrapping_mul(0x00C0_FFEE).wrapping_add(7));
            let rhs = tower.fq_add(&tower.fq_mul(&tower.fq_sqr(&x), &x), bt);
            if let Some(y) = tower.fq_sqrt(&rhs) {
                return Some(Affine::new(x, y));
            }
        }
        None
    }

    fn find_g2(
        tower: &Arc<TowerCtx>,
        bt: &Fq,
        _order: &BigUint,
        cofactor: &BigUint,
        r: &BigUint,
    ) -> Option<Affine<Fq>> {
        let ops = FqOps(tower);
        for attempt in 0..16u64 {
            let pt = Self::find_point_on_twist(tower, bt, attempt * 7919)?;
            let g = to_affine(&ops, &jac_mul(&ops, &pt, cofactor));
            if g.infinity {
                continue;
            }
            if is_identity(&ops, &jac_mul(&ops, &g, r)) {
                return Some(g);
            }
        }
        None
    }

    /// Determines the untwist–Frobenius constants empirically: tries the
    /// (γx, γy) = (ξ^((p−1)/3), ξ^((p−1)/2)) pair and its inverse, accepting
    /// whichever satisfies `ψ(G2) = [p]G2`.
    fn calibrate_psi(
        tower: &Arc<TowerCtx>,
        bt: &Fq,
        g2: &Affine<Fq>,
        p: &BigUint,
    ) -> Result<(Fq, Fq), CurveError> {
        let ops = FqOps(tower);
        let wf = tower.w_frob_const(1).clone();
        let gx = tower.fq_sqr(&wf); // ξ^((p−1)/3)
        let gy = tower.fq_mul(&gx, &wf); // ξ^((p−1)/2)
        let p_g2 = to_affine(&ops, &jac_mul(&ops, g2, p));
        for (cx, cy) in [
            (gx.clone(), gy.clone()),
            (tower.fq_inv(&gx), tower.fq_inv(&gy)),
        ] {
            let px = tower.fq_mul(&tower.fq_frob(&g2.x, 1), &cx);
            let py = tower.fq_mul(&tower.fq_frob(&g2.y, 1), &cy);
            let cand = Affine::new(px, py);
            if is_on_curve(&ops, &cand, bt) && cand == p_g2 {
                return Ok((cx, cy));
            }
        }
        Err(CurveError::EndomorphismMismatch)
    }

    // --- accessors -------------------------------------------------------

    /// Curve name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Curve family.
    pub fn family(&self) -> Family {
        self.family
    }

    /// The family generator t.
    pub fn t(&self) -> &BigInt {
        &self.t
    }

    /// Base-field characteristic p.
    pub fn p(&self) -> &BigUint {
        &self.p
    }

    /// Pairing group order r.
    pub fn r(&self) -> &BigUint {
        &self.r
    }

    /// Frobenius trace.
    pub fn trace(&self) -> &BigInt {
        &self.trace
    }

    /// Base prime field context.
    pub fn fp(&self) -> &Arc<FpCtx> {
        &self.fp
    }

    /// Extension tower context.
    pub fn tower(&self) -> &Arc<TowerCtx> {
        &self.tower
    }

    /// G1 curve coefficient b.
    pub fn b(&self) -> &Fp {
        &self.b
    }

    /// Twist curve coefficient b'.
    pub fn b_twist(&self) -> &Fq {
        &self.b_twist
    }

    /// Twist kind (D or M).
    pub fn twist(&self) -> TwistKind {
        self.twist
    }

    /// #E(F_p).
    pub fn g1_order(&self) -> &BigUint {
        &self.n1
    }

    /// G1 cofactor #E(F_p)/r.
    pub fn g1_cofactor(&self) -> &BigUint {
        &self.g1_cofactor
    }

    /// #E'(F_q).
    pub fn g2_order(&self) -> &BigUint {
        &self.g2_order
    }

    /// G2 cofactor #E'(F_q)/r.
    pub fn g2_cofactor(&self) -> &BigUint {
        &self.g2_cofactor
    }

    /// Canonical G1 generator (r-torsion).
    pub fn g1_generator(&self) -> &Affine<Fp> {
        &self.g1
    }

    /// Canonical G2 generator on the twist (r-torsion).
    pub fn g2_generator(&self) -> &Affine<Fq> {
        &self.g2
    }

    /// Security level from Table 2 (reported, not derived).
    pub fn table2_security(&self) -> u32 {
        self.table2_security
    }

    /// Embedding degree k.
    pub fn k(&self) -> usize {
        self.family.embedding_degree()
    }

    /// The optimal-Ate Miller loop parameter (`6t+2` for BN, `t` for BLS).
    pub fn miller_param(&self) -> BigInt {
        self.family.miller_param(&self.t)
    }

    /// The untwist–Frobenius constants `(γx, γy)` with
    /// `ψ(x, y) = (γx·φ(x), γy·φ(y))`.
    pub fn psi_constants(&self) -> (&Fq, &Fq) {
        (&self.psi_x, &self.psi_y)
    }

    /// ψ applied to a twist point: `(γx·φ(x), γy·φ(y))`.
    pub fn psi(&self, q: &Affine<Fq>) -> Affine<Fq> {
        if q.infinity {
            return q.clone();
        }
        Affine::new(
            self.tower.fq_mul(&self.tower.fq_frob(&q.x, 1), &self.psi_x),
            self.tower.fq_mul(&self.tower.fq_frob(&q.y, 1), &self.psi_y),
        )
    }

    /// G1 scalar multiplication, returning an affine point.
    pub fn g1_mul(&self, p: &Affine<Fp>, k: &BigUint) -> Affine<Fp> {
        let ops = FpOps(Arc::clone(&self.fp));
        to_affine(&ops, &jac_mul(&ops, p, k))
    }

    /// G1 point addition.
    pub fn g1_add(&self, a: &Affine<Fp>, b: &Affine<Fp>) -> Affine<Fp> {
        let ops = FpOps(Arc::clone(&self.fp));
        to_affine(
            &ops,
            &jac_add(&ops, &to_jacobian(&ops, a), &to_jacobian(&ops, b)),
        )
    }

    /// G2 scalar multiplication, returning an affine point.
    pub fn g2_mul(&self, p: &Affine<Fq>, k: &BigUint) -> Affine<Fq> {
        let ops = FqOps(&self.tower);
        to_affine(&ops, &jac_mul(&ops, p, k))
    }

    /// G2 point addition.
    pub fn g2_add(&self, a: &Affine<Fq>, b: &Affine<Fq>) -> Affine<Fq> {
        let ops = FqOps(&self.tower);
        to_affine(
            &ops,
            &jac_add(&ops, &to_jacobian(&ops, a), &to_jacobian(&ops, b)),
        )
    }

    /// True iff an affine point lies on E(F_p).
    pub fn g1_on_curve(&self, p: &Affine<Fp>) -> bool {
        let ops = FpOps(Arc::clone(&self.fp));
        is_on_curve(&ops, p, &self.b)
    }

    /// True iff an affine point lies on the twist E'(F_q).
    pub fn g2_on_curve(&self, p: &Affine<Fq>) -> bool {
        let ops = FqOps(&self.tower);
        is_on_curve(&ops, p, &self.b_twist)
    }

    /// Hashes arbitrary bytes to a G1 point (try-and-increment + cofactor
    /// clearing) — enough for the BLS-signature example; not constant time.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::HashToCurveExhausted`] if 10 000 counters
    /// yield no subgroup point — about half of all x-coordinates have a
    /// square right-hand side, so this signals corrupted curve parameters,
    /// not bad luck; a serving library must report it rather than abort.
    pub fn hash_to_g1(&self, msg: &[u8]) -> Result<Affine<Fp>, CurveError> {
        // Simple deterministic digest: FNV-1a folded into field elements.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in msg {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let ops = FpOps(Arc::clone(&self.fp));
        for ctr in 0..10_000u64 {
            let x = self
                .fp
                .sample(h.wrapping_add(ctr.wrapping_mul(0x9E37_79B9)));
            let rhs = &(&x.square() * &x) + &self.b;
            if let Some(y) = rhs.sqrt() {
                let pt = Affine::new(x, y);
                let g = to_affine(&ops, &jac_mul(&ops, &pt, &self.g1_cofactor));
                if !g.infinity {
                    return Ok(g);
                }
            }
        }
        Err(CurveError::HashToCurveExhausted)
    }

    /// The full final-exponentiation exponent `(p^k − 1)/r` (oracle use).
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::ExponentDerivation`] if `r ∤ p^k − 1` —
    /// impossible for a curve that passed construction validation, but
    /// reported instead of aborting the process.
    pub fn final_exp_full(&self) -> Result<BigUint, CurveError> {
        let pk = self.p.pow(self.k() as u32);
        let num = pk
            .checked_sub(&BigUint::one())
            .ok_or(CurveError::ExponentDerivation("p^k underflowed"))?;
        let (q, rem) = num.divrem(&self.r);
        if !rem.is_zero() {
            return Err(CurveError::ExponentDerivation("r does not divide p^k - 1"));
        }
        Ok(q)
    }

    /// The hard-part exponent `Φ_k(p)/r` where `Φ_12 = p⁴ − p² + 1`,
    /// `Φ_24 = p⁸ − p⁴ + 1`.
    pub fn hard_exponent(&self) -> BigUint {
        let (a, b) = match self.k() {
            12 => (4u32, 2u32),
            24 => (8, 4),
            _ => unreachable!(),
        };
        let phi = &(&self.p.pow(a) - &self.p.pow(b)) + &BigUint::one();
        phi.div_exact(&self.r)
    }
}

/// Global cache of constructed curves (construction costs tens of ms to
/// seconds, and tests re-use them heavily).
fn registry() -> &'static Mutex<HashMap<String, Arc<Curve>>> {
    static REG: OnceLock<Mutex<HashMap<String, Arc<Curve>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

impl Curve {
    /// Returns the cached curve for a Table 2 name, constructing it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown or construction fails — both indicate
    /// corrupted built-in parameters, which is a build-breaking bug.
    pub fn by_name(name: &str) -> Arc<Curve> {
        let spec =
            crate::spec::spec_by_name(name).unwrap_or_else(|| panic!("unknown curve name: {name}"));
        let mut reg = registry().lock().expect("curve registry poisoned");
        if let Some(c) = reg.get(spec.name) {
            return Arc::clone(c);
        }
        let curve =
            Arc::new(Curve::from_spec(spec).unwrap_or_else(|e| {
                panic!("built-in curve {} failed to construct: {e}", spec.name)
            }));
        reg.insert(spec.name.to_owned(), Arc::clone(&curve));
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn bn254n_constructs_and_matches_literature() {
        let c = Curve::by_name("BN254N");
        assert_eq!(c.p().bits(), 254);
        assert_eq!(c.r().bits(), 254);
        // Beuchat et al. BN254 prime.
        assert_eq!(
            c.p().to_hex(),
            "2523648240000001ba344d80000000086121000000000013a700000000000013"
        );
        assert_eq!(
            c.r().to_hex(),
            "2523648240000001ba344d8000000007ff9f800000000010a10000000000000d"
        );
        // BN cofactor is 1: G1 order = r.
        assert!(c.g1_cofactor().is_one());
        assert!(c.g1_on_curve(c.g1_generator()));
        assert!(c.g2_on_curve(c.g2_generator()));
    }

    #[test]
    fn bls12_381_constructs_and_matches_literature() {
        let c = Curve::by_name("BLS12-381");
        assert_eq!(
            c.p().to_hex(),
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab"
        );
        assert_eq!(
            c.r().to_hex(),
            "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001"
        );
        assert_eq!(c.b().to_biguint(), BigUint::from_u64(4));
        assert!(c.g1_on_curve(c.g1_generator()));
        assert!(c.g2_on_curve(c.g2_generator()));
    }

    #[test]
    fn generators_have_order_r() {
        for name in ["BN254N", "BLS12-381"] {
            let c = Curve::by_name(name);
            let g1r = c.g1_mul(c.g1_generator(), c.r());
            assert!(g1r.infinity, "{name}: [r]G1 = O");
            let g2r = c.g2_mul(c.g2_generator(), c.r());
            assert!(g2r.infinity, "{name}: [r]G2 = O");
            // and not killed by smaller factors: [r-1]G != O
            let rm1 = c.r().checked_sub(&BigUint::one()).unwrap();
            assert!(!c.g1_mul(c.g1_generator(), &rm1).infinity);
        }
    }

    #[test]
    fn psi_is_p_power_endomorphism() {
        for name in ["BN254N", "BLS12-381"] {
            let c = Curve::by_name(name);
            let q = c.g2_generator();
            let psi_q = c.psi(q);
            assert!(c.g2_on_curve(&psi_q));
            assert_eq!(psi_q, c.g2_mul(q, c.p()), "{name}");
            // psi² (Q) = [p²] Q
            let psi2 = c.psi(&psi_q);
            let p2 = c.p().pow(2).rem(c.r());
            assert_eq!(psi2, c.g2_mul(q, &p2), "{name} psi^2");
        }
    }

    #[test]
    fn group_laws_on_generators() {
        let c = Curve::by_name("BLS12-381");
        let g = c.g1_generator();
        let two_g = c.g1_add(g, g);
        assert_eq!(two_g, c.g1_mul(g, &BigUint::from_u64(2)));
        let q = c.g2_generator();
        let three_q = c.g2_add(&c.g2_add(q, q), q);
        assert_eq!(three_q, c.g2_mul(q, &BigUint::from_u64(3)));
    }

    #[test]
    fn hash_to_g1_lands_in_subgroup() {
        let c = Curve::by_name("BN254N");
        let h1 = c.hash_to_g1(b"finesse").expect("hash lands");
        let h2 = c.hash_to_g1(b"finesse").expect("hash lands");
        let h3 = c.hash_to_g1(b"different message").expect("hash lands");
        assert_eq!(h1, h2, "deterministic");
        assert!(h1 != h3, "message-dependent");
        assert!(c.g1_on_curve(&h1));
        assert!(c.g1_mul(&h1, c.r()).infinity);
    }

    #[test]
    fn hash_to_g1_succeeds_across_inputs() {
        // The try-and-increment loop now reports exhaustion instead of
        // aborting; every real input must come back Ok.
        let c = Curve::by_name("BN254N");
        for i in 0..32u32 {
            assert!(
                c.hash_to_g1(&i.to_le_bytes()).is_ok(),
                "input {i} failed to hash"
            );
        }
        assert!(c.hash_to_g1(b"").is_ok(), "empty message hashes");
    }

    #[test]
    fn hard_exponent_divides_cleanly() {
        let c = Curve::by_name("BN254N");
        // (p^k − 1)/r = (p^6−1)(p^2+1) · hard, sanity: both computable.
        let full = c.final_exp_full().expect("r divides p^k - 1");
        let hard = c.hard_exponent();
        assert!(full.bits() > hard.bits());
    }

    #[test]
    fn spec_validation_catches_wrong_bits() {
        // Perturb BLS12-381's expected p bits.
        let mut s = spec::BLS12_381.clone();
        s.p_bits = 380;
        match Curve::from_spec(&s) {
            Err(CurveError::BitLengthMismatch { what: "p", .. }) => {}
            other => panic!("expected bit mismatch, got {other:?}"),
        }
    }
}
