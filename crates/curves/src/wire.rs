//! Validated wire format for G1/G2 points — the untrusted-input
//! boundary of the library.
//!
//! # Format
//!
//! Every encoding is a 1-byte tag followed by fixed-width big-endian
//! field bytes (`⌈bits(p)/8⌉` per F_p coefficient; F_q elements are the
//! concatenation `c0 ‖ c1 (‖ c2 ‖ c3)` in tower order):
//!
//! | tag    | payload            | meaning                              |
//! |--------|--------------------|--------------------------------------|
//! | `0x00` | all-zero, `L` or `2L` bytes | the point at infinity       |
//! | `0x02` | `x`, `L` bytes     | compressed, `y` is the lex-smaller root |
//! | `0x03` | `x`, `L` bytes     | compressed, `y` is the lex-larger root  |
//! | `0x04` | `x ‖ y`, `2L` bytes | uncompressed affine                 |
//!
//! where `L` is the field-element byte width ([`Curve::g1_wire_len`] /
//! [`Curve::g2_wire_len`] give the total lengths). The sign bit is `1`
//! iff `y` is lexicographically greater than `−y`, comparing F_q
//! elements from the highest tower coefficient down — so every point
//! has exactly one compressed and one uncompressed encoding, and both
//! round-trip bit-for-bit.
//!
//! # What decoding guarantees
//!
//! Decoding is *strict*: a returned point is on the right curve, in
//! the order-`r` pairing subgroup, and re-encodes to exactly the input
//! bytes. Anything else is a typed [`DecodeError`], checked in this
//! order:
//!
//! 1. length and tag ([`DecodeError::Length`] /
//!    [`DecodeError::InvalidTag`]);
//! 2. field canonicality — every coefficient must be `< p`
//!    ([`DecodeError::NonCanonicalField`]);
//! 3. infinity canonicality — tag `0x00` demands an all-zero payload
//!    ([`DecodeError::NonCanonicalInfinity`]);
//! 4. curve membership — `y² = x³ + b`, or for compressed input a
//!    square root must exist ([`DecodeError::NotOnCurve`]);
//! 5. sign canonicality — a zero `y` must carry sign bit `0`
//!    ([`DecodeError::NonCanonicalSign`]);
//! 6. subgroup membership via the certified fast checks of
//!    [`crate::subgroup`] ([`DecodeError::NotInSubgroup`]).
//!
//! The checks run cheapest-first so malformed traffic is rejected
//! before any expensive arithmetic: a wrong length costs a comparison,
//! an off-curve x one Legendre/sqrt attempt, and only well-formed
//! curve points reach the half-width subgroup ladder.

use crate::curve::Curve;
use crate::point::Affine;
use finesse_ff::{FieldBytesError, Fp, Fq};
use std::fmt;

/// Whether to emit the x-only (compressed) or full affine
/// (uncompressed) encoding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Compression {
    /// Tag `0x02`/`0x03` + x: half the bytes, one square root to
    /// decode.
    Compressed,
    /// Tag `0x04` + x + y: no square root on decode.
    Uncompressed,
}

/// Why a byte string was rejected by [`Curve::decode_g1`] /
/// [`Curve::decode_g2`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The input length matches no encoding for this tag and group.
    Length {
        /// Expected total length in bytes (for the tag seen; `1` when
        /// the input was empty).
        expected: usize,
        /// Actual input length.
        got: usize,
    },
    /// The leading tag byte is not `0x00`/`0x02`/`0x03`/`0x04`.
    InvalidTag(u8),
    /// A field coefficient was `>= p` (every element has exactly one
    /// canonical byte encoding).
    NonCanonicalField,
    /// The coordinates satisfy no curve equation: `y² ≠ x³ + b`, or no
    /// square root exists for a compressed `x`.
    NotOnCurve,
    /// On the curve but outside the order-`r` pairing subgroup
    /// (small-subgroup / cofactor attack input).
    NotInSubgroup,
    /// Tag `0x00` with a payload that is not all zero.
    NonCanonicalInfinity,
    /// A sign bit that does not select a distinct root (`y = 0` must
    /// encode with sign `0`).
    NonCanonicalSign,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Length { expected, got } => {
                write!(f, "wrong encoding length: expected {expected}, got {got}")
            }
            DecodeError::InvalidTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            DecodeError::NonCanonicalField => {
                f.write_str("field coefficient out of canonical range (>= p)")
            }
            DecodeError::NotOnCurve => f.write_str("coordinates are not on the curve"),
            DecodeError::NotInSubgroup => {
                f.write_str("point is outside the order-r pairing subgroup")
            }
            DecodeError::NonCanonicalInfinity => {
                f.write_str("infinity tag with a non-zero payload")
            }
            DecodeError::NonCanonicalSign => {
                f.write_str("sign bit does not match a canonical root")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<FieldBytesError> for DecodeError {
    fn from(e: FieldBytesError) -> Self {
        match e {
            // Field-level lengths are pre-checked by the decoders, so
            // a Length here still maps to the canonical-form failure.
            FieldBytesError::Length { .. } => DecodeError::NonCanonicalField,
            FieldBytesError::NonCanonical => DecodeError::NonCanonicalField,
        }
    }
}

/// Tag byte values (SEC1-inspired, but with an explicit payload after
/// the infinity tag so every encoding of a format has one length).
const TAG_INFINITY: u8 = 0x00;
const TAG_COMPRESSED_EVEN: u8 = 0x02;
const TAG_COMPRESSED_ODD: u8 = 0x03;
const TAG_UNCOMPRESSED: u8 = 0x04;

/// True iff `y` is lexicographically greater than `−y` (the canonical
/// sign bit) for a base-field coordinate.
fn fp_sign(y: &Fp) -> bool {
    if y.is_zero() {
        return false;
    }
    let v = y.to_biguint();
    let neg = (-y).to_biguint();
    v > neg
}

/// Same for a twist-field coordinate: compare from the highest tower
/// coefficient down.
fn fq_sign(curve: &Curve, y: &Fq) -> bool {
    let neg = curve.tower().fq_neg(y);
    for (a, b) in y.coeffs().iter().zip(neg.coeffs()).rev() {
        let (a, b) = (a.to_biguint(), b.to_biguint());
        if a != b {
            return a > b;
        }
    }
    false
}

impl Curve {
    /// Total G1 encoding length in bytes for `mode` (tag included).
    pub fn g1_wire_len(&self, mode: Compression) -> usize {
        let l = self.fp().byte_len();
        match mode {
            Compression::Compressed => 1 + l,
            Compression::Uncompressed => 1 + 2 * l,
        }
    }

    /// Total G2 encoding length in bytes for `mode` (tag included).
    pub fn g2_wire_len(&self, mode: Compression) -> usize {
        let l = self.tower().fq_byte_len();
        match mode {
            Compression::Compressed => 1 + l,
            Compression::Uncompressed => 1 + 2 * l,
        }
    }

    /// Encodes a G1 point (see the [module docs](self) for the
    /// format). The input is trusted — encode what you decoded or
    /// constructed; this function does not re-validate.
    pub fn encode_g1(&self, p: &Affine<Fp>, mode: Compression) -> Vec<u8> {
        let total = self.g1_wire_len(mode);
        if p.infinity {
            let mut out = vec![0u8; total];
            out[0] = TAG_INFINITY;
            return out;
        }
        let mut out = Vec::with_capacity(total);
        match mode {
            Compression::Compressed => {
                out.push(if fp_sign(&p.y) {
                    TAG_COMPRESSED_ODD
                } else {
                    TAG_COMPRESSED_EVEN
                });
                out.extend_from_slice(&p.x.to_bytes_be());
            }
            Compression::Uncompressed => {
                out.push(TAG_UNCOMPRESSED);
                out.extend_from_slice(&p.x.to_bytes_be());
                out.extend_from_slice(&p.y.to_bytes_be());
            }
        }
        out
    }

    /// Encodes a G2 point; same format with F_q coordinates.
    pub fn encode_g2(&self, q: &Affine<Fq>, mode: Compression) -> Vec<u8> {
        let total = self.g2_wire_len(mode);
        if q.infinity {
            let mut out = vec![0u8; total];
            out[0] = TAG_INFINITY;
            return out;
        }
        let tower = self.tower();
        let mut out = Vec::with_capacity(total);
        match mode {
            Compression::Compressed => {
                out.push(if fq_sign(self, &q.y) {
                    TAG_COMPRESSED_ODD
                } else {
                    TAG_COMPRESSED_EVEN
                });
                out.extend_from_slice(&tower.fq_to_bytes_be(&q.x));
            }
            Compression::Uncompressed => {
                out.push(TAG_UNCOMPRESSED);
                out.extend_from_slice(&tower.fq_to_bytes_be(&q.x));
                out.extend_from_slice(&tower.fq_to_bytes_be(&q.y));
            }
        }
        out
    }

    /// Strictly decodes a G1 point, inferring compressed/uncompressed
    /// from the tag.
    ///
    /// # Errors
    ///
    /// See [`DecodeError`] and the [module docs](self) for the exact
    /// validation order and guarantees.
    pub fn decode_g1(&self, bytes: &[u8]) -> Result<Affine<Fp>, DecodeError> {
        let l = self.fp().byte_len();
        let (tag, payload) = split_tag(bytes, l)?;
        match tag {
            Tag::Infinity => Ok(Affine::infinity(self.fp().zero())),
            Tag::Uncompressed => {
                let x = self.fp().from_bytes_be(&payload[..l])?;
                let y = self.fp().from_bytes_be(&payload[l..])?;
                let p = Affine::new(x, y);
                if !self.g1_on_curve(&p) {
                    return Err(DecodeError::NotOnCurve);
                }
                if !self.in_g1_subgroup(&p) {
                    return Err(DecodeError::NotInSubgroup);
                }
                Ok(p)
            }
            Tag::Compressed(sign) => {
                let x = self.fp().from_bytes_be(payload)?;
                let rhs = &(&(&x * &x) * &x) + self.b();
                let Some(root) = rhs.sqrt() else {
                    return Err(DecodeError::NotOnCurve);
                };
                let y = if fp_sign(&root) == sign { root } else { -&root };
                // A zero y admits only sign 0 (its negation is itself).
                if fp_sign(&y) != sign {
                    return Err(DecodeError::NonCanonicalSign);
                }
                let p = Affine::new(x, y);
                if !self.in_g1_subgroup(&p) {
                    return Err(DecodeError::NotInSubgroup);
                }
                Ok(p)
            }
        }
    }

    /// Strictly decodes a G2 point; same contract as
    /// [`Curve::decode_g1`].
    ///
    /// # Errors
    ///
    /// See [`DecodeError`].
    pub fn decode_g2(&self, bytes: &[u8]) -> Result<Affine<Fq>, DecodeError> {
        let tower = self.tower();
        let l = tower.fq_byte_len();
        let (tag, payload) = split_tag(bytes, l)?;
        match tag {
            Tag::Infinity => Ok(Affine::infinity(tower.fq_zero())),
            Tag::Uncompressed => {
                let x = tower.fq_from_bytes_be(&payload[..l])?;
                let y = tower.fq_from_bytes_be(&payload[l..])?;
                let q = Affine::new(x, y);
                if !self.g2_on_curve(&q) {
                    return Err(DecodeError::NotOnCurve);
                }
                if !self.in_g2_subgroup(&q) {
                    return Err(DecodeError::NotInSubgroup);
                }
                Ok(q)
            }
            Tag::Compressed(sign) => {
                let x = tower.fq_from_bytes_be(payload)?;
                let x3 = tower.fq_mul(&tower.fq_sqr(&x), &x);
                let rhs = tower.fq_add(&x3, self.b_twist());
                let Some(root) = tower.fq_sqrt(&rhs) else {
                    return Err(DecodeError::NotOnCurve);
                };
                let y = if fq_sign(self, &root) == sign {
                    root
                } else {
                    tower.fq_neg(&root)
                };
                if fq_sign(self, &y) != sign {
                    return Err(DecodeError::NonCanonicalSign);
                }
                let q = Affine::new(x, y);
                if !self.in_g2_subgroup(&q) {
                    return Err(DecodeError::NotInSubgroup);
                }
                Ok(q)
            }
        }
    }
}

/// Parsed tag with the sign bit extracted.
enum Tag {
    Infinity,
    Compressed(bool),
    Uncompressed,
}

/// Splits and validates tag + length for a field-element width of `l`
/// bytes: compressed payloads are `l` bytes, uncompressed `2l`, and
/// infinity accepts either (all zero).
fn split_tag(bytes: &[u8], l: usize) -> Result<(Tag, &[u8]), DecodeError> {
    let Some((&tag, payload)) = bytes.split_first() else {
        return Err(DecodeError::Length {
            expected: 1,
            got: 0,
        });
    };
    match tag {
        TAG_INFINITY => {
            if payload.len() != l && payload.len() != 2 * l {
                return Err(DecodeError::Length {
                    expected: 1 + l,
                    got: bytes.len(),
                });
            }
            if payload.iter().any(|&b| b != 0) {
                return Err(DecodeError::NonCanonicalInfinity);
            }
            Ok((Tag::Infinity, payload))
        }
        TAG_COMPRESSED_EVEN | TAG_COMPRESSED_ODD => {
            if payload.len() != l {
                return Err(DecodeError::Length {
                    expected: 1 + l,
                    got: bytes.len(),
                });
            }
            Ok((Tag::Compressed(tag == TAG_COMPRESSED_ODD), payload))
        }
        TAG_UNCOMPRESSED => {
            if payload.len() != 2 * l {
                return Err(DecodeError::Length {
                    expected: 1 + 2 * l,
                    got: bytes.len(),
                });
            }
            Ok((Tag::Uncompressed, payload))
        }
        other => Err(DecodeError::InvalidTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_ff::BigUint;

    #[test]
    fn g1_g2_round_trip_bn254n() {
        let c = Curve::by_name("BN254N");
        for k in [1u64, 2, 99] {
            let p = c.g1_mul(c.g1_generator(), &BigUint::from_u64(k));
            let q = c.g2_mul(c.g2_generator(), &BigUint::from_u64(k));
            for mode in [Compression::Compressed, Compression::Uncompressed] {
                let pb = c.encode_g1(&p, mode);
                assert_eq!(pb.len(), c.g1_wire_len(mode));
                assert_eq!(c.decode_g1(&pb).unwrap(), p);
                let qb = c.encode_g2(&q, mode);
                assert_eq!(qb.len(), c.g2_wire_len(mode));
                assert_eq!(c.decode_g2(&qb).unwrap(), q);
            }
        }
        // Infinity round-trips in both formats.
        let inf_g1 = Affine::infinity(c.fp().zero());
        let inf_g2 = Affine::infinity(c.tower().fq_zero());
        for mode in [Compression::Compressed, Compression::Uncompressed] {
            assert!(c.decode_g1(&c.encode_g1(&inf_g1, mode)).unwrap().infinity);
            assert!(c.decode_g2(&c.encode_g2(&inf_g2, mode)).unwrap().infinity);
        }
    }

    #[test]
    fn rejects_basic_malformed_inputs() {
        let c = Curve::by_name("BN254N");
        let p = c.g1_generator();
        let enc = c.encode_g1(p, Compression::Compressed);
        // Empty, truncated, extended.
        assert_eq!(
            c.decode_g1(&[]),
            Err(DecodeError::Length {
                expected: 1,
                got: 0
            })
        );
        assert!(matches!(
            c.decode_g1(&enc[..enc.len() - 1]),
            Err(DecodeError::Length { .. })
        ));
        // Bad tag.
        let mut bad = enc.clone();
        bad[0] = 0x07;
        assert_eq!(c.decode_g1(&bad), Err(DecodeError::InvalidTag(0x07)));
        // Non-canonical field: x = p.
        let mut bad = enc.clone();
        let pb = {
            let mut v = vec![0u8; c.fp().byte_len()];
            let limbs = c.p().to_fixed_limbs(v.len().div_ceil(8));
            for (i, limb) in limbs.iter().enumerate() {
                for j in 0..8 {
                    let idx = 8 * i + j;
                    if idx < v.len() {
                        let vlen = v.len();
                        v[vlen - 1 - idx] = (limb >> (8 * j)) as u8;
                    }
                }
            }
            v
        };
        bad[1..].copy_from_slice(&pb);
        assert_eq!(c.decode_g1(&bad), Err(DecodeError::NonCanonicalField));
        // Non-canonical infinity.
        let mut bad = c.encode_g1(&Affine::infinity(c.fp().zero()), Compression::Compressed);
        bad[3] = 1;
        assert_eq!(c.decode_g1(&bad), Err(DecodeError::NonCanonicalInfinity));
    }
}
