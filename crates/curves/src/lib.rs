//! # finesse-curves
//!
//! Pairing-friendly curve substrate for the Finesse framework: BN/BLS
//! family parameter synthesis, generic short-Weierstrass point arithmetic,
//! sextic-twist discovery, generator derivation, and the untwist–Frobenius
//! endomorphism — everything the pairing engine and the compiler's code
//! generator need to know about a curve.
//!
//! The seven curves of the paper's Table 2 are built in (see [`spec`]);
//! custom curves enter through [`Curve::new`].
//!
//! ```no_run
//! use finesse_curves::Curve;
//!
//! let curve = Curve::by_name("BN254N");
//! assert_eq!(curve.p().bits(), 254);
//! assert!(curve.g1_on_curve(curve.g1_generator()));
//! ```

pub mod cache;
pub mod curve;
pub mod glv;
pub mod point;
pub mod precompute;
pub mod spec;
pub mod subgroup;
pub mod wire;

pub use cache::{g1_point_key, g2_point_key, PointKey, PointKeyedCache};
pub use curve::{Curve, CurveError, GlsG2, GlvG1, TwistKind};
pub use glv::{jsf, Dim4Basis, GlvBasis};
pub use point::{
    affine_neg, batch_to_affine, comb_window, jac_add_affine, jac_mul, jac_multi_mul, msm,
    scalar_mul, to_affine, Affine, CombTable, EndoMap, FieldOps, FpOps, FqOps, Jacobian, MulTerm,
    TableMap, WnafScratch,
};
pub use precompute::{G1Precomputed, G2Precomputed};
pub use spec::{all_specs, spec_by_name, CurveSpec, Family};
pub use wire::{Compression, DecodeError};
