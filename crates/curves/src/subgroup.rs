//! Fast subgroup-membership checks for untrusted points.
//!
//! Accepting a point that lies on the curve (or its twist) but outside
//! the order-`r` pairing subgroup enables small-subgroup and
//! invalid-curve key-recovery attacks, so a serving boundary must test
//! membership on every decoded point. The naive test multiplies by the
//! full group order (`[r]P = O`, a `bits(r)`-wide ladder); this module
//! reuses the endomorphisms that already power the GLV/GLS scalar
//! splits to do the same test at roughly half (G1) or a quarter (G2)
//! of that cost:
//!
//! - **G1** — the cube-root endomorphism `φ(x, y) = (βx, y)` acts on
//!   the r-torsion as `[λ]`. For a short lattice vector `(a1, b1)` with
//!   `a1 + b1·λ ≡ 0 (mod r)`, every subgroup point satisfies
//!   `[a1]P + [b1]φ(P) = O`, a two-term multi-scalar ladder of
//!   `~√r`-bit scalars.
//! - **G2** — the untwist–Frobenius ψ acts on G2 as `[p mod r]`, so
//!   subgroup points satisfy `ψ(Q) = [s]Q` where `s` is the *symmetric*
//!   residue of `p` mod `r` — the curve generator `t` (`~r^{1/4}` bits)
//!   on BLS curves, `6t²` (`~√r` bits) on BN curves.
//!
//! Each fast predicate is **certified sound at derivation time**, not
//! merely assumed: for an endomorphism χ with dual χ̂, any point in
//! `ker χ` has order dividing `deg χ` (because `χ̂∘χ = [deg χ]`), so if
//! `gcd(deg χ, #group) = r` the kernel inside the rational group is
//! exactly the r-torsion. The module computes that gcd once per curve —
//! `deg(a1 + b1·φ) = a1² − a1·b1 + b1²` for the `φ² + φ + 1 = 0`
//! automorphism, `deg(ψ − s) = s² − s·tr + p` from ψ's characteristic
//! equation `ψ² − [tr]ψ + [p] = 0` — and **falls back to the naive
//! `[r]P` ladder** whenever the certificate does not come out to
//! exactly `r`. A passing fast check is therefore bit-for-bit
//! equivalent to the naive oracle (differential-tested across all
//! seven Table 2 curves in `tests/wire.rs`).

use crate::curve::Curve;
use crate::point::{
    is_identity, jac_mul, jac_multi_mul, to_jacobian, Affine, FieldOps, FpOps, FqOps, Jacobian,
    MulTerm,
};
use finesse_ff::{BigInt, BigUint, Fp, Fq};
use std::sync::Arc;

/// Certified fast G1 membership predicate (derived once per curve).
#[derive(Debug)]
pub(crate) enum G1Check {
    /// `[a1]P + [b1]φ(P) = O`, certified by
    /// `gcd(a1² − a1·b1 + b1², #E(F_p)) = r`.
    Endo {
        /// First coordinate of the short lattice vector (signed).
        a1: BigInt,
        /// Second coordinate (signed).
        b1: BigInt,
    },
    /// Naive `[r]P = O` ladder (no usable φ, or certification failed).
    Ladder,
}

/// Certified fast G2 membership predicate (derived once per curve).
#[derive(Debug)]
pub(crate) enum G2Check {
    /// `ψ(Q) = [s]Q`, certified by `gcd(s² − s·tr + p, #E'(F_q)) = r`.
    Endo {
        /// The symmetric residue of `p` mod `r` (signed).
        s: BigInt,
    },
    /// Naive `[r]Q = O` ladder (certification failed).
    Ladder,
}

/// Euclidean gcd (one-time derivation cost, never on a hot path).
fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = a.rem(&b);
        a = b;
        b = r;
    }
    a
}

/// `deg(a + b·φ) = a² + a·b·(−tr φ is 1) + b²` for the automorphism φ
/// with `φ² + φ + 1 = 0` (trace −1, degree 1): `a² − a·b + b²`. This
/// quadratic form is positive-definite, so the result is non-negative.
fn phi_combination_degree(a: &BigInt, b: &BigInt) -> BigUint {
    let d = &(&(a * a) - &(a * b)) + &(b * b);
    d.to_biguint().unwrap_or_default()
}

/// Derives the G1 predicate: try both short basis vectors, keep the
/// first whose degree certificate comes out to exactly `r`.
fn derive_g1_check(c: &Curve) -> G1Check {
    let Some(glv) = c.glv_g1() else {
        return G1Check::Ladder;
    };
    let basis = glv.basis();
    for (a, b) in [(&basis.a1, &basis.b1), (&basis.a2, &basis.b2)] {
        let deg = phi_combination_degree(a, b);
        if !deg.is_zero() && gcd(&deg, c.g1_order()) == *c.r() {
            return G1Check::Endo {
                a1: a.clone(),
                b1: b.clone(),
            };
        }
    }
    G1Check::Ladder
}

/// Derives the G2 predicate: `s` = symmetric residue of `p` mod `r`,
/// certified via `deg(ψ − s) = s² − s·tr + p` against `#E'(F_q)`.
fn derive_g2_check(c: &Curve) -> G2Check {
    let s0 = c.p().rem(c.r());
    // Pick the representative of smaller magnitude: s0 or s0 − r.
    let twice = &s0 + &s0;
    let s = if twice > *c.r() {
        &BigInt::from_biguint(s0) - &BigInt::from_biguint(c.r().clone())
    } else {
        BigInt::from_biguint(s0)
    };
    let deg = &(&(&s * &s) - &(&s * c.trace())) + &BigInt::from_biguint(c.p().clone());
    let Some(deg) = deg.to_biguint() else {
        return G2Check::Ladder;
    };
    if !deg.is_zero() && gcd(&deg, c.g2_order()) == *c.r() {
        G2Check::Endo { s }
    } else {
        G2Check::Ladder
    }
}

impl Curve {
    /// True iff `p` is in the order-`r` pairing subgroup G1.
    ///
    /// The point is assumed to lie on `E(F_p)` (check with
    /// [`Curve::g1_on_curve`] first; [`crate::wire`] decoding does
    /// both). Costs one endomorphism application plus a two-term
    /// `~√r`-bit multi-scalar ladder on every built-in curve; falls
    /// back to the naive full-width `[r]P` ladder if the one-time
    /// soundness certificate fails (see the module docs). The identity
    /// is a member.
    pub fn in_g1_subgroup(&self, p: &Affine<Fp>) -> bool {
        if p.infinity {
            return true;
        }
        let ops = FpOps(Arc::clone(self.fp()));
        let check = self
            .g1_subgroup_cache()
            .get_or_init(|| derive_g1_check(self));
        if let G1Check::Endo { a1, b1 } = check {
            if let Some(phi_p) = self.phi(p) {
                let terms = [
                    MulTerm {
                        point: p.clone(),
                        scalar: a1.magnitude().clone(),
                        negate: a1.is_negative(),
                    },
                    MulTerm {
                        point: phi_p,
                        scalar: b1.magnitude().clone(),
                        negate: b1.is_negative(),
                    },
                ];
                return is_identity(&ops, &jac_multi_mul(&ops, &terms));
            }
        }
        is_identity(&ops, &jac_mul(&ops, p, self.r()))
    }

    /// Naive `[r]P = O` G1 membership oracle — the slow reference the
    /// fast path is differential-tested against.
    pub fn in_g1_subgroup_naive(&self, p: &Affine<Fp>) -> bool {
        if p.infinity {
            return true;
        }
        let ops = FpOps(Arc::clone(self.fp()));
        is_identity(&ops, &jac_mul(&ops, p, self.r()))
    }

    /// True iff `q` is in the order-`r` pairing subgroup G2 on the
    /// twist.
    ///
    /// The point is assumed to lie on `E'(F_q)` (check with
    /// [`Curve::g2_on_curve`] first; [`crate::wire`] decoding does
    /// both). Costs one ψ application plus a `bits(s)`-bit ladder —
    /// `~r^{1/4}` bits on BLS curves, `~√r` on BN — with the same
    /// certified fallback as [`Curve::in_g1_subgroup`]. The identity
    /// is a member.
    pub fn in_g2_subgroup(&self, q: &Affine<Fq>) -> bool {
        if q.infinity {
            return true;
        }
        let ops = FqOps(self.tower());
        let check = self
            .g2_subgroup_cache()
            .get_or_init(|| derive_g2_check(self));
        match check {
            G2Check::Endo { s } => {
                let lhs = to_jacobian(&ops, &self.psi(q));
                let mut rhs = jac_mul(&ops, q, s.magnitude());
                if s.is_negative() {
                    rhs.y = ops.neg(&rhs.y);
                }
                // ψ(Q) − [s]Q = O ⟺ the Jacobian points are equal;
                // compare cross-multiplied to avoid an inversion.
                jacobian_eq(&ops, &lhs, &rhs)
            }
            G2Check::Ladder => is_identity(&ops, &jac_mul(&ops, q, self.r())),
        }
    }

    /// Naive `[r]Q = O` G2 membership oracle — the slow reference the
    /// fast path is differential-tested against.
    pub fn in_g2_subgroup_naive(&self, q: &Affine<Fq>) -> bool {
        if q.infinity {
            return true;
        }
        let ops = FqOps(self.tower());
        is_identity(&ops, &jac_mul(&ops, q, self.r()))
    }
}

/// Equality of Jacobian representatives without normalising:
/// `(X₁/Z₁², Y₁/Z₁³) = (X₂/Z₂², Y₂/Z₂³)` cross-multiplied.
fn jacobian_eq<O: FieldOps>(ops: &O, a: &Jacobian<O::El>, b: &Jacobian<O::El>) -> bool {
    let a_inf = ops.is_zero(&a.z);
    let b_inf = ops.is_zero(&b.z);
    if a_inf || b_inf {
        return a_inf == b_inf;
    }
    let az2 = ops.sqr(&a.z);
    let bz2 = ops.sqr(&b.z);
    if ops.mul(&a.x, &bz2) != ops.mul(&b.x, &az2) {
        return false;
    }
    let az3 = ops.mul(&az2, &a.z);
    let bz3 = ops.mul(&bz2, &b.z);
    ops.mul(&a.y, &bz3) == ops.mul(&b.y, &az3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_ff::FpCtx;

    /// A point on E(F_p) found by x-increment, *without* clearing the
    /// cofactor — outside the r-torsion with overwhelming probability
    /// when the cofactor is > 1.
    fn uncleaned_g1_point(c: &Curve, start: u64) -> Affine<Fp> {
        let fp: &Arc<FpCtx> = c.fp();
        let mut xi = start;
        loop {
            let x = fp.from_u64(xi);
            let rhs = &(&(&x * &x) * &x) + c.b();
            if let Some(y) = rhs.sqrt() {
                return Affine::new(x, y);
            }
            xi += 1;
        }
    }

    /// Same on the twist E'(F_q).
    fn uncleaned_g2_point(c: &Curve, start: u64) -> Affine<Fq> {
        let tower = c.tower();
        let mut xi = start;
        loop {
            let x = tower.fq_from_fp(&c.fp().from_u64(xi));
            let x3 = tower.fq_mul(&tower.fq_mul(&x, &x), &x);
            let rhs = tower.fq_add(&x3, c.b_twist());
            if let Some(y) = tower.fq_sqrt(&rhs) {
                return Affine::new(x, y);
            }
            xi += 1;
        }
    }

    fn check_curve(name: &str) {
        let c = Curve::by_name(name);
        // Fast data must certify on every built-in curve (no ladder
        // fallback), otherwise the speedup silently evaporates.
        c.in_g1_subgroup(c.g1_generator());
        c.in_g2_subgroup(c.g2_generator());
        assert!(
            matches!(c.g1_subgroup_cache().get(), Some(G1Check::Endo { .. })),
            "{name}: G1 fast check failed certification"
        );
        assert!(
            matches!(c.g2_subgroup_cache().get(), Some(G2Check::Endo { .. })),
            "{name}: G2 fast check failed certification"
        );
        // Members: generator, a few multiples, the identity.
        assert!(c.in_g1_subgroup(c.g1_generator()));
        assert!(c.in_g2_subgroup(c.g2_generator()));
        assert!(c.in_g1_subgroup(&Affine::infinity(c.fp().zero())));
        assert!(c.in_g2_subgroup(&Affine::infinity(c.tower().fq_zero())));
        for k in [2u64, 7, 12345] {
            let p = c.g1_mul(c.g1_generator(), &BigUint::from_u64(k));
            let q = c.g2_mul(c.g2_generator(), &BigUint::from_u64(k));
            assert!(c.in_g1_subgroup(&p), "{name}: [{k}]G1 rejected");
            assert!(c.in_g2_subgroup(&q), "{name}: [{k}]G2 rejected");
        }
        // Differential vs the naive oracle on uncleaned curve points.
        for start in [1u64, 10, 100] {
            let p = uncleaned_g1_point(&c, start);
            assert!(c.g1_on_curve(&p));
            assert_eq!(
                c.in_g1_subgroup(&p),
                c.in_g1_subgroup_naive(&p),
                "{name}: G1 fast/naive disagree at x start {start}"
            );
            let q = uncleaned_g2_point(&c, start);
            assert!(c.g2_on_curve(&q));
            assert_eq!(
                c.in_g2_subgroup(&q),
                c.in_g2_subgroup_naive(&q),
                "{name}: G2 fast/naive disagree at x start {start}"
            );
            // With a non-trivial cofactor the uncleaned point should be
            // outside the subgroup (sanity that the test has teeth).
            if !c.g1_cofactor().is_one() {
                assert!(!c.in_g1_subgroup(&p), "{name}: uncleaned G1 accepted");
            } else {
                assert!(c.in_g1_subgroup(&p), "{name}: h=1 G1 point rejected");
            }
            if !c.g2_cofactor().is_one() {
                assert!(!c.in_g2_subgroup(&q), "{name}: uncleaned G2 accepted");
            }
        }
    }

    #[test]
    fn bn254n_fast_checks_match_naive() {
        check_curve("BN254N");
    }

    #[test]
    fn bls12_381_fast_checks_match_naive() {
        check_curve("BLS12-381");
    }
}
