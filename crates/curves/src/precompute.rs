//! Caller-supplied fixed-base precomputation for scalar multiplication.
//!
//! PR 5's Lim–Lee combs fired on *exact generator* hits only: the curve
//! kept one lazily built table per generator, and every other base paid
//! the variable-base GLV/GLS path. Production verifiers, however, meet
//! the same non-generator points over and over — long-lived BLS public
//! keys, SRS elements, aggregation keys. [`G1Precomputed`] and
//! [`G2Precomputed`] extend the fixed-base win to *any* base: build the
//! comb once with [`crate::Curve::precompute_g1`]/[`crate::Curve::precompute_g2`],
//! share it as an `Arc` through the same bounded
//! [`PointKeyedCache`](crate::cache::PointKeyedCache) that serves the
//! prepared-G2 pairing schedules, and every later
//! [`crate::Curve::g1_mul`]/[`crate::Curve::g2_mul`] on
//! that base routes through the table automatically — the gate is now a
//! cache *hit*, not generator equality (the generators themselves are
//! registered lazily on first use, preserving PR 5's contract).
//!
//! ```no_run
//! use finesse_curves::Curve;
//! use finesse_ff::BigUint;
//!
//! let curve = Curve::by_name("BLS12-381");
//! let pk = curve.g1_mul(curve.g1_generator(), &BigUint::from_u64(5));
//! let pre = curve.precompute_g1(&pk); // table built once
//! let k = BigUint::from_u64(0xC0FFEE);
//! // Either call the table explicitly…
//! let a = curve.g1_mul_precomputed(&pre, &k);
//! // …or let `g1_mul` route through the cache hit.
//! assert_eq!(a, curve.g1_mul(&pk, &k));
//! ```

use crate::point::{to_affine, Affine, CombTable, FieldOps};
use finesse_ff::BigUint;
use std::fmt::Debug;

/// The shared implementation behind [`G1Precomputed`]/[`G2Precomputed`]:
/// a per-base comb table, or nothing when the base is the identity (a
/// comb for the point at infinity is meaningless — every multiple *is*
/// the identity, which [`Precomputed::mul`] returns directly).
pub(crate) struct Precomputed<E> {
    base: Affine<E>,
    comb: Option<CombTable<E>>,
}

impl<E: Clone + PartialEq + Debug> Precomputed<E> {
    /// Builds the table for `base`, sized for reduced scalars of up to
    /// `scalar_bits` bits (the group-order bit length).
    pub(crate) fn build<O: FieldOps<El = E>>(
        ops: &O,
        base: &Affine<E>,
        scalar_bits: usize,
    ) -> Self {
        Precomputed {
            base: base.clone(),
            comb: (!base.infinity).then(|| CombTable::build(ops, base, scalar_bits)),
        }
    }

    /// The base point the table was built for.
    pub(crate) fn base(&self) -> &Affine<E> {
        &self.base
    }

    /// True iff the table serves exactly `base` (never the identity).
    pub(crate) fn matches_base(&self, base: &Affine<E>) -> bool {
        self.comb
            .as_ref()
            .is_some_and(|comb| comb.matches_base(base))
    }

    /// Precomputed points held (0 for an identity base).
    pub(crate) fn entries(&self) -> usize {
        self.comb.as_ref().map_or(0, CombTable::entries)
    }

    /// `[k]·base` for a scalar already reduced mod the group order.
    pub(crate) fn mul<O: FieldOps<El = E>>(&self, ops: &O, k: &BigUint) -> Affine<E> {
        match self.comb.as_ref() {
            Some(comb) if !k.is_zero() => to_affine(ops, &comb.mul(ops, k)),
            _ => Affine::infinity(ops.zero()),
        }
    }
}

/// An `Arc`-shareable fixed-base table for one G1 point, built by
/// [`crate::Curve::precompute_g1`] and consumed by
/// [`crate::Curve::g1_mul_precomputed`] (or implicitly by
/// [`crate::Curve::g1_mul`] on a cache hit).
pub struct G1Precomputed {
    pub(crate) inner: Precomputed<finesse_ff::Fp>,
}

impl G1Precomputed {
    /// The base point the table was built for.
    pub fn base(&self) -> &Affine<finesse_ff::Fp> {
        self.inner.base()
    }

    /// True iff this table was built for exactly `base` (an identity
    /// base never matches: its multiples are computed directly).
    pub fn matches_base(&self, base: &Affine<finesse_ff::Fp>) -> bool {
        self.inner.matches_base(base)
    }

    /// Number of precomputed affine points held by the table.
    pub fn entries(&self) -> usize {
        self.inner.entries()
    }
}

/// The G2 counterpart of [`G1Precomputed`], built by
/// [`crate::Curve::precompute_g2`].
pub struct G2Precomputed {
    pub(crate) inner: Precomputed<finesse_ff::Fq>,
}

impl G2Precomputed {
    /// The base point the table was built for.
    pub fn base(&self) -> &Affine<finesse_ff::Fq> {
        self.inner.base()
    }

    /// True iff this table was built for exactly `base`.
    pub fn matches_base(&self, base: &Affine<finesse_ff::Fq>) -> bool {
        self.inner.matches_base(base)
    }

    /// Number of precomputed affine points held by the table.
    pub fn entries(&self) -> usize {
        self.inner.entries()
    }
}
