//! Generic short-Weierstrass point arithmetic (`y² = x³ + b`, `a = 0`).
//!
//! One Jacobian-coordinate implementation serves both G1 (coordinates in
//! F_p) and G2 (coordinates in the twist field F_q) through the small
//! [`FieldOps`] abstraction, so the group law exists exactly once in the
//! codebase. The pairing crate layers its own fused line/point formulas on
//! top of the same trait.

use finesse_ff::{BigUint, Fp, FpCtx, Fq, TowerCtx};
use std::fmt::Debug;
use std::sync::Arc;

/// Minimal field interface needed by the group law.
pub trait FieldOps {
    /// The element type.
    type El: Clone + PartialEq + Debug;

    /// Addition.
    fn add(&self, a: &Self::El, b: &Self::El) -> Self::El;
    /// Subtraction.
    fn sub(&self, a: &Self::El, b: &Self::El) -> Self::El;
    /// Negation.
    fn neg(&self, a: &Self::El) -> Self::El;
    /// Multiplication.
    fn mul(&self, a: &Self::El, b: &Self::El) -> Self::El;
    /// Squaring.
    fn sqr(&self, a: &Self::El) -> Self::El;
    /// Inversion (panics on zero, as in the underlying fields).
    fn inv(&self, a: &Self::El) -> Self::El;
    /// The additive identity.
    fn zero(&self) -> Self::El;
    /// The multiplicative identity.
    fn one(&self) -> Self::El;
    /// Zero test.
    fn is_zero(&self, a: &Self::El) -> bool;

    /// Doubling (`2a`); default via addition.
    fn dbl(&self, a: &Self::El) -> Self::El {
        self.add(a, a)
    }

    /// Small-scalar multiple via an addition chain.
    fn mul_small(&self, a: &Self::El, k: u64) -> Self::El {
        let mut acc = self.zero();
        let mut base = a.clone();
        let mut k = k;
        while k > 0 {
            if k & 1 == 1 {
                acc = self.add(&acc, &base);
            }
            base = self.dbl(&base);
            k >>= 1;
        }
        acc
    }

    /// Inverts every element of a slice in place with Montgomery's trick:
    /// one field inversion plus `3(n−1)` multiplications.
    ///
    /// Panics on zero elements, matching [`FieldOps::inv`].
    fn batch_inv(&self, elems: &mut [Self::El]) {
        if elems.is_empty() {
            return;
        }
        let mut prefix = Vec::with_capacity(elems.len());
        let mut acc = self.one();
        for e in elems.iter() {
            prefix.push(acc.clone());
            acc = self.mul(&acc, e);
        }
        let mut inv = self.inv(&acc);
        for (e, pre) in elems.iter_mut().zip(prefix.iter()).rev() {
            let out = self.mul(&inv, pre);
            inv = self.mul(&inv, e);
            *e = out;
        }
    }
}

/// [`FieldOps`] over the base prime field (G1 coordinates).
#[derive(Clone)]
pub struct FpOps(pub Arc<FpCtx>);

impl FieldOps for FpOps {
    type El = Fp;
    fn add(&self, a: &Fp, b: &Fp) -> Fp {
        a + b
    }
    fn sub(&self, a: &Fp, b: &Fp) -> Fp {
        a - b
    }
    fn neg(&self, a: &Fp) -> Fp {
        -a
    }
    fn mul(&self, a: &Fp, b: &Fp) -> Fp {
        a * b
    }
    fn sqr(&self, a: &Fp) -> Fp {
        a.square()
    }
    fn inv(&self, a: &Fp) -> Fp {
        a.invert()
    }
    fn zero(&self) -> Fp {
        self.0.zero()
    }
    fn one(&self) -> Fp {
        self.0.one()
    }
    fn is_zero(&self, a: &Fp) -> bool {
        a.is_zero()
    }
    fn batch_inv(&self, elems: &mut [Fp]) {
        Fp::batch_invert(elems);
    }
}

/// [`FieldOps`] over the twist field F_q (G2 coordinates).
#[derive(Clone)]
pub struct FqOps<'a>(pub &'a TowerCtx);

impl FieldOps for FqOps<'_> {
    type El = Fq;
    fn add(&self, a: &Fq, b: &Fq) -> Fq {
        self.0.fq_add(a, b)
    }
    fn sub(&self, a: &Fq, b: &Fq) -> Fq {
        self.0.fq_sub(a, b)
    }
    fn neg(&self, a: &Fq) -> Fq {
        self.0.fq_neg(a)
    }
    fn mul(&self, a: &Fq, b: &Fq) -> Fq {
        self.0.fq_mul(a, b)
    }
    fn sqr(&self, a: &Fq) -> Fq {
        self.0.fq_sqr(a)
    }
    fn inv(&self, a: &Fq) -> Fq {
        self.0.fq_inv(a)
    }
    fn zero(&self) -> Fq {
        self.0.fq_zero()
    }
    fn one(&self) -> Fq {
        self.0.fq_one()
    }
    fn is_zero(&self, a: &Fq) -> bool {
        self.0.fq_is_zero(a)
    }
}

/// An affine point, with an explicit point at infinity.
#[derive(Clone, PartialEq, Debug)]
pub struct Affine<E> {
    /// x coordinate (meaningless at infinity).
    pub x: E,
    /// y coordinate (meaningless at infinity).
    pub y: E,
    /// Point-at-infinity flag.
    pub infinity: bool,
}

impl<E: Clone> Affine<E> {
    /// A finite point.
    pub fn new(x: E, y: E) -> Self {
        Affine {
            x,
            y,
            infinity: false,
        }
    }

    /// The point at infinity (coordinates are placeholders).
    pub fn infinity(placeholder: E) -> Self {
        Affine {
            x: placeholder.clone(),
            y: placeholder,
            infinity: true,
        }
    }
}

/// A Jacobian point `(X : Y : Z)` representing `(X/Z², Y/Z³)`; `Z = 0` is
/// the point at infinity.
#[derive(Clone, Debug)]
pub struct Jacobian<E> {
    /// X coordinate.
    pub x: E,
    /// Y coordinate.
    pub y: E,
    /// Z coordinate.
    pub z: E,
}

/// Checks the curve equation `y² = x³ + b` for an affine point.
pub fn is_on_curve<O: FieldOps>(ops: &O, pt: &Affine<O::El>, b: &O::El) -> bool {
    if pt.infinity {
        return true;
    }
    let lhs = ops.sqr(&pt.y);
    let rhs = ops.add(&ops.mul(&ops.sqr(&pt.x), &pt.x), b);
    lhs == rhs
}

/// Lifts an affine point to Jacobian coordinates.
pub fn to_jacobian<O: FieldOps>(ops: &O, pt: &Affine<O::El>) -> Jacobian<O::El> {
    if pt.infinity {
        Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        }
    } else {
        Jacobian {
            x: pt.x.clone(),
            y: pt.y.clone(),
            z: ops.one(),
        }
    }
}

/// Normalises a Jacobian point to affine coordinates (one inversion).
pub fn to_affine<O: FieldOps>(ops: &O, pt: &Jacobian<O::El>) -> Affine<O::El> {
    if ops.is_zero(&pt.z) {
        return Affine::infinity(ops.zero());
    }
    let zinv = ops.inv(&pt.z);
    let zinv2 = ops.sqr(&zinv);
    let zinv3 = ops.mul(&zinv2, &zinv);
    Affine::new(ops.mul(&pt.x, &zinv2), ops.mul(&pt.y, &zinv3))
}

/// Normalises many Jacobian points with a single field inversion
/// ([`FieldOps::batch_inv`], Montgomery's trick) — the standard way to
/// amortise the one expensive operation when emitting precomputed tables
/// or fixed-base windows.
pub fn batch_to_affine<O: FieldOps>(ops: &O, pts: &[Jacobian<O::El>]) -> Vec<Affine<O::El>> {
    // Gather the non-identity z coordinates and invert them together.
    let mut zs: Vec<O::El> = pts
        .iter()
        .filter(|p| !ops.is_zero(&p.z))
        .map(|p| p.z.clone())
        .collect();
    ops.batch_inv(&mut zs);
    let mut inv_iter = zs.into_iter();
    pts.iter()
        .map(|p| {
            if ops.is_zero(&p.z) {
                return Affine::infinity(ops.zero());
            }
            let zinv = inv_iter.next().expect("one inverse per finite point");
            let zinv2 = ops.sqr(&zinv);
            let zinv3 = ops.mul(&zinv2, &zinv);
            Affine::new(ops.mul(&p.x, &zinv2), ops.mul(&p.y, &zinv3))
        })
        .collect()
}

/// Jacobian doubling (`a = 0` curve).
pub fn jac_double<O: FieldOps>(ops: &O, p: &Jacobian<O::El>) -> Jacobian<O::El> {
    if ops.is_zero(&p.z) || ops.is_zero(&p.y) {
        return Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
    }
    let a = ops.sqr(&p.x);
    let b = ops.sqr(&p.y);
    let c = ops.sqr(&b);
    // D = 2((X+B)² − A − C)
    let t = ops.sqr(&ops.add(&p.x, &b));
    let d = ops.dbl(&ops.sub(&ops.sub(&t, &a), &c));
    let e = ops.add(&ops.dbl(&a), &a); // 3A
    let f = ops.sqr(&e);
    let x3 = ops.sub(&f, &ops.dbl(&d));
    let c8 = ops.mul_small(&c, 8);
    let y3 = ops.sub(&ops.mul(&e, &ops.sub(&d, &x3)), &c8);
    let z3 = ops.dbl(&ops.mul(&p.y, &p.z));
    Jacobian {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// General Jacobian addition (`a = 0` curve), handling doubling and
/// identity cases.
pub fn jac_add<O: FieldOps>(ops: &O, p: &Jacobian<O::El>, q: &Jacobian<O::El>) -> Jacobian<O::El> {
    if ops.is_zero(&p.z) {
        return q.clone();
    }
    if ops.is_zero(&q.z) {
        return p.clone();
    }
    let z1z1 = ops.sqr(&p.z);
    let z2z2 = ops.sqr(&q.z);
    let u1 = ops.mul(&p.x, &z2z2);
    let u2 = ops.mul(&q.x, &z1z1);
    let s1 = ops.mul(&ops.mul(&p.y, &q.z), &z2z2);
    let s2 = ops.mul(&ops.mul(&q.y, &p.z), &z1z1);
    if u1 == u2 {
        if s1 == s2 {
            return jac_double(ops, p);
        }
        // P + (−P) = O
        return Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
    }
    let h = ops.sub(&u2, &u1);
    let i = ops.sqr(&ops.dbl(&h));
    let j = ops.mul(&h, &i);
    let r = ops.dbl(&ops.sub(&s2, &s1));
    let v = ops.mul(&u1, &i);
    let x3 = ops.sub(&ops.sub(&ops.sqr(&r), &j), &ops.dbl(&v));
    let y3 = ops.sub(&ops.mul(&r, &ops.sub(&v, &x3)), &ops.dbl(&ops.mul(&s1, &j)));
    let z3 = ops.mul(
        &ops.sub(&ops.sqr(&ops.add(&p.z, &q.z)), &ops.add(&z1z1, &z2z2)),
        &h,
    );
    Jacobian {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// Scalar multiplication by a non-negative big integer (double-and-add).
pub fn scalar_mul<O: FieldOps>(ops: &O, p: &Affine<O::El>, k: &BigUint) -> Jacobian<O::El> {
    let mut acc = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    if p.infinity || k.is_zero() {
        return acc;
    }
    let base = to_jacobian(ops, p);
    for i in (0..k.bits()).rev() {
        acc = jac_double(ops, &acc);
        if k.bit(i) {
            acc = jac_add(ops, &acc, &base);
        }
    }
    acc
}

/// Width of the [`jac_mul`] signed window: width-4 recoding uses the odd
/// digits `±1, ±3, ±5, ±7` (four precomputed multiples) and cuts
/// additions to roughly one per five doublings on pairing-sized scalars.
const WNAF_WINDOW: u32 = 4;

/// Recodes a scalar into width-`w` non-adjacent form: each digit is zero
/// or odd in `±(1 .. 2^(w−1))`, and any two non-zero digits are at least
/// `w` positions apart.
fn wnaf_digits(k: &BigUint, w: u32) -> Vec<i64> {
    let mut limbs: Vec<u64> = k.limbs().to_vec();
    let mask = (1u64 << w) - 1;
    let half = 1i64 << (w - 1);
    let is_zero = |l: &[u64]| l.iter().all(|&x| x == 0);
    // In-place helpers on the little-endian limb scratch.
    let shr1 = |l: &mut [u64]| {
        let mut top = 0u64;
        for limb in l.iter_mut().rev() {
            let next = *limb & 1;
            *limb = (*limb >> 1) | (top << 63);
            top = next;
        }
    };
    let sub_small = |l: &mut [u64], v: u64| {
        let mut borrow = v;
        for limb in l.iter_mut() {
            let (d, b) = limb.overflowing_sub(borrow);
            *limb = d;
            borrow = b as u64;
            if borrow == 0 {
                break;
            }
        }
    };
    let add_small = |l: &mut [u64], v: u64| {
        let mut carry = v;
        for limb in l.iter_mut() {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            carry = c as u64;
            if carry == 0 {
                break;
            }
        }
        debug_assert_eq!(carry, 0, "wNAF scratch overflow");
    };
    // One spare limb so the +|d| correction for negative digits cannot
    // overflow the scratch.
    limbs.push(0);
    let mut digits = Vec::with_capacity(k.bits() + 1);
    while !is_zero(&limbs) {
        if limbs[0] & 1 == 1 {
            let mut d = (limbs[0] & mask) as i64;
            if d >= half {
                d -= 1 << w;
            }
            if d >= 0 {
                sub_small(&mut limbs, d as u64);
            } else {
                add_small(&mut limbs, (-d) as u64);
            }
            digits.push(d);
        } else {
            digits.push(0);
        }
        shr1(&mut limbs);
    }
    digits
}

/// Scalar multiplication by a non-negative big integer using a signed
/// width-4 windowed NAF: one table of 8 odd multiples, then one doubling
/// per scalar bit and one addition per non-zero digit (~bits/5).
///
/// This is the fast path used by the curve-level `g1_mul`/`g2_mul`;
/// [`scalar_mul`] remains as the minimal double-and-add reference.
pub fn jac_mul<O: FieldOps>(ops: &O, p: &Affine<O::El>, k: &BigUint) -> Jacobian<O::El> {
    let identity = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    if p.infinity || k.is_zero() {
        return identity;
    }
    let base = to_jacobian(ops, p);
    // Odd multiples table: table[i] = (2i+1)·P. Width-w digits reach
    // ±(2^(w−1) − 1), so 2^(w−2) entries cover every odd magnitude.
    let two_p = jac_double(ops, &base);
    let mut table = Vec::with_capacity(1 << (WNAF_WINDOW - 2));
    table.push(base);
    for i in 1..1usize << (WNAF_WINDOW - 2) {
        table.push(jac_add(ops, &table[i - 1], &two_p));
    }
    let digits = wnaf_digits(k, WNAF_WINDOW);
    let mut acc = identity;
    for &d in digits.iter().rev() {
        acc = jac_double(ops, &acc);
        if d > 0 {
            acc = jac_add(ops, &acc, &table[(d as usize - 1) / 2]);
        } else if d < 0 {
            let t = &table[((-d) as usize - 1) / 2];
            let neg = Jacobian {
                x: t.x.clone(),
                y: ops.neg(&t.y),
                z: t.z.clone(),
            };
            acc = jac_add(ops, &acc, &neg);
        }
    }
    acc
}

/// Affine negation.
pub fn affine_neg<O: FieldOps>(ops: &O, p: &Affine<O::El>) -> Affine<O::El> {
    if p.infinity {
        p.clone()
    } else {
        Affine::new(p.x.clone(), ops.neg(&p.y))
    }
}

/// True iff the Jacobian point is the identity.
pub fn is_identity<O: FieldOps>(ops: &O, p: &Jacobian<O::El>) -> bool {
    ops.is_zero(&p.z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_ff::FpCtx;

    /// Tiny curve for exhaustive checking: y² = x³ + 7 over F_61
    /// (#E = 61 + 1 − (−1)... determined empirically below).
    fn tiny() -> (FpOps, Fp) {
        let ctx = FpCtx::new(BigUint::from_u64(61)).unwrap();
        let b = ctx.from_u64(7);
        (FpOps(ctx), b)
    }

    fn points_on_tiny(ops: &FpOps, b: &Fp) -> Vec<Affine<Fp>> {
        let mut pts = Vec::new();
        for x in 0..61u64 {
            for y in 0..61u64 {
                let p = Affine::new(ops.0.from_u64(x), ops.0.from_u64(y));
                if is_on_curve(ops, &p, b) {
                    pts.push(p);
                }
            }
        }
        pts
    }

    #[test]
    fn group_closure_and_identity() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        assert!(!pts.is_empty());
        let order = pts.len() as u64 + 1; // plus infinity
        for p in pts.iter().take(8) {
            // [order]P = O for all points (Lagrange).
            let r = scalar_mul(&ops, p, &BigUint::from_u64(order));
            assert!(is_identity(&ops, &r), "order {order} should annihilate");
            // P + (−P) = O
            let s = jac_add(
                &ops,
                &to_jacobian(&ops, p),
                &to_jacobian(&ops, &affine_neg(&ops, p)),
            );
            assert!(is_identity(&ops, &s));
            // on-curve stays on-curve through doubling
            let d = to_affine(&ops, &jac_double(&ops, &to_jacobian(&ops, p)));
            assert!(is_on_curve(&ops, &d, &b));
        }
    }

    #[test]
    fn add_commutes_and_associates() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let (p, q, r) = (&pts[0], &pts[3], &pts[5]);
        let pj = to_jacobian(&ops, p);
        let qj = to_jacobian(&ops, q);
        let rj = to_jacobian(&ops, r);
        let pq = to_affine(&ops, &jac_add(&ops, &pj, &qj));
        let qp = to_affine(&ops, &jac_add(&ops, &qj, &pj));
        assert_eq!(pq, qp);
        assert!(is_on_curve(&ops, &pq, &b));
        let left = to_affine(&ops, &jac_add(&ops, &jac_add(&ops, &pj, &qj), &rj));
        let right = to_affine(&ops, &jac_add(&ops, &pj, &jac_add(&ops, &qj, &rj)));
        assert_eq!(left, right);
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let p = &pts[1];
        let mut acc = Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
        let pj = to_jacobian(&ops, p);
        for k in 0..10u64 {
            let via_mul = to_affine(&ops, &scalar_mul(&ops, p, &BigUint::from_u64(k)));
            let via_add = to_affine(&ops, &acc);
            assert_eq!(via_mul, via_add, "k = {k}");
            acc = jac_add(&ops, &acc, &pj);
        }
    }

    #[test]
    fn jac_mul_matches_double_and_add() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let p = &pts[2];
        // Small scalars exhaustively, plus a few larger multi-window ones.
        for k in (0..40u64).chain([97, 255, 256, 1023, 0xFFFF_FFFF]) {
            let k = BigUint::from_u64(k);
            let fast = to_affine(&ops, &jac_mul(&ops, p, &k));
            let slow = to_affine(&ops, &scalar_mul(&ops, p, &k));
            assert_eq!(fast, slow, "k = {k:?}");
        }
        // Identity inputs.
        let inf = Affine::infinity(ops.zero());
        assert!(is_identity(
            &ops,
            &jac_mul(&ops, &inf, &BigUint::from_u64(5))
        ));
        assert!(is_identity(&ops, &jac_mul(&ops, p, &BigUint::zero())));
    }

    #[test]
    fn batch_to_affine_matches_individual() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let mut jacs: Vec<Jacobian<Fp>> = pts
            .iter()
            .take(6)
            .enumerate()
            .map(|(i, p)| jac_mul(&ops, p, &BigUint::from_u64(i as u64 + 2)))
            .collect();
        // Include an identity in the middle to exercise the skip path.
        jacs.insert(
            3,
            Jacobian {
                x: ops.one(),
                y: ops.one(),
                z: ops.zero(),
            },
        );
        let batch = batch_to_affine(&ops, &jacs);
        for (j, a) in jacs.iter().zip(&batch) {
            assert_eq!(*a, to_affine(&ops, j));
        }
        assert!(batch[3].infinity);
        assert!(batch_to_affine(&ops, &[]).is_empty());
    }

    #[test]
    fn wnaf_digits_reconstruct() {
        for v in [1u64, 2, 3, 15, 16, 17, 255, 0xDEAD_BEEF, u64::MAX] {
            let digits = wnaf_digits(&BigUint::from_u64(v), WNAF_WINDOW);
            let mut acc: i128 = 0;
            for (i, &d) in digits.iter().enumerate() {
                acc += (d as i128) << i;
            }
            assert_eq!(acc, v as i128, "v = {v}");
            for &d in &digits {
                assert!(d == 0 || d % 2 != 0, "digits are zero or odd");
                assert!(d.abs() < 1 << (WNAF_WINDOW - 1));
            }
        }
        assert!(wnaf_digits(&BigUint::zero(), WNAF_WINDOW).is_empty());
    }

    #[test]
    fn doubling_identity_edge_cases() {
        let (ops, _) = tiny();
        let inf: Jacobian<Fp> = Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
        assert!(is_identity(&ops, &jac_double(&ops, &inf)));
        assert!(is_identity(&ops, &jac_add(&ops, &inf, &inf)));
    }
}
