//! Generic short-Weierstrass point arithmetic (`y² = x³ + b`, `a = 0`).
//!
//! One Jacobian-coordinate implementation serves both G1 (coordinates in
//! F_p) and G2 (coordinates in the twist field F_q) through the small
//! [`FieldOps`] abstraction, so the group law exists exactly once in the
//! codebase. The pairing crate layers its own fused line/point formulas on
//! top of the same trait.

use finesse_ff::{BigUint, Fp, FpCtx, Fq, TowerCtx};
use std::fmt::Debug;
use std::sync::Arc;

/// Minimal field interface needed by the group law.
pub trait FieldOps {
    /// The element type.
    type El: Clone + PartialEq + Debug;

    /// Addition.
    fn add(&self, a: &Self::El, b: &Self::El) -> Self::El;
    /// Subtraction.
    fn sub(&self, a: &Self::El, b: &Self::El) -> Self::El;
    /// Negation.
    fn neg(&self, a: &Self::El) -> Self::El;
    /// Multiplication.
    fn mul(&self, a: &Self::El, b: &Self::El) -> Self::El;
    /// Squaring.
    fn sqr(&self, a: &Self::El) -> Self::El;
    /// Inversion (panics on zero, as in the underlying fields).
    fn inv(&self, a: &Self::El) -> Self::El;
    /// The additive identity.
    fn zero(&self) -> Self::El;
    /// The multiplicative identity.
    fn one(&self) -> Self::El;
    /// Zero test.
    fn is_zero(&self, a: &Self::El) -> bool;

    /// Doubling (`2a`); default via addition.
    fn dbl(&self, a: &Self::El) -> Self::El {
        self.add(a, a)
    }

    /// Small-scalar multiple via an addition chain.
    fn mul_small(&self, a: &Self::El, k: u64) -> Self::El {
        let mut acc = self.zero();
        let mut base = a.clone();
        let mut k = k;
        while k > 0 {
            if k & 1 == 1 {
                acc = self.add(&acc, &base);
            }
            base = self.dbl(&base);
            k >>= 1;
        }
        acc
    }

    /// Inverts every element of a slice in place with Montgomery's trick:
    /// one field inversion plus `3(n−1)` multiplications.
    ///
    /// Panics on zero elements, matching [`FieldOps::inv`].
    fn batch_inv(&self, elems: &mut [Self::El]) {
        if elems.is_empty() {
            return;
        }
        let mut prefix = Vec::with_capacity(elems.len());
        let mut acc = self.one();
        for e in elems.iter() {
            prefix.push(acc.clone());
            acc = self.mul(&acc, e);
        }
        let mut inv = self.inv(&acc);
        for (e, pre) in elems.iter_mut().zip(prefix.iter()).rev() {
            let out = self.mul(&inv, pre);
            inv = self.mul(&inv, e);
            *e = out;
        }
    }
}

/// [`FieldOps`] over the base prime field (G1 coordinates).
#[derive(Clone)]
pub struct FpOps(pub Arc<FpCtx>);

impl FieldOps for FpOps {
    type El = Fp;
    fn add(&self, a: &Fp, b: &Fp) -> Fp {
        a + b
    }
    fn sub(&self, a: &Fp, b: &Fp) -> Fp {
        a - b
    }
    fn neg(&self, a: &Fp) -> Fp {
        -a
    }
    fn mul(&self, a: &Fp, b: &Fp) -> Fp {
        a * b
    }
    fn sqr(&self, a: &Fp) -> Fp {
        a.square()
    }
    fn inv(&self, a: &Fp) -> Fp {
        a.invert()
    }
    fn zero(&self) -> Fp {
        self.0.zero()
    }
    fn one(&self) -> Fp {
        self.0.one()
    }
    fn is_zero(&self, a: &Fp) -> bool {
        a.is_zero()
    }
    fn batch_inv(&self, elems: &mut [Fp]) {
        Fp::batch_invert(elems);
    }
}

/// [`FieldOps`] over the twist field F_q (G2 coordinates).
#[derive(Clone)]
pub struct FqOps<'a>(pub &'a TowerCtx);

impl FieldOps for FqOps<'_> {
    type El = Fq;
    fn add(&self, a: &Fq, b: &Fq) -> Fq {
        self.0.fq_add(a, b)
    }
    fn sub(&self, a: &Fq, b: &Fq) -> Fq {
        self.0.fq_sub(a, b)
    }
    fn neg(&self, a: &Fq) -> Fq {
        self.0.fq_neg(a)
    }
    fn mul(&self, a: &Fq, b: &Fq) -> Fq {
        self.0.fq_mul(a, b)
    }
    fn sqr(&self, a: &Fq) -> Fq {
        self.0.fq_sqr(a)
    }
    fn inv(&self, a: &Fq) -> Fq {
        self.0.fq_inv(a)
    }
    fn zero(&self) -> Fq {
        self.0.fq_zero()
    }
    fn one(&self) -> Fq {
        self.0.fq_one()
    }
    fn is_zero(&self, a: &Fq) -> bool {
        self.0.fq_is_zero(a)
    }
}

/// An affine point, with an explicit point at infinity.
#[derive(Clone, PartialEq, Debug)]
pub struct Affine<E> {
    /// x coordinate (meaningless at infinity).
    pub x: E,
    /// y coordinate (meaningless at infinity).
    pub y: E,
    /// Point-at-infinity flag.
    pub infinity: bool,
}

impl<E: Clone> Affine<E> {
    /// A finite point.
    pub fn new(x: E, y: E) -> Self {
        Affine {
            x,
            y,
            infinity: false,
        }
    }

    /// The point at infinity (coordinates are placeholders).
    pub fn infinity(placeholder: E) -> Self {
        Affine {
            x: placeholder.clone(),
            y: placeholder,
            infinity: true,
        }
    }
}

/// A Jacobian point `(X : Y : Z)` representing `(X/Z², Y/Z³)`; `Z = 0` is
/// the point at infinity.
#[derive(Clone, Debug)]
pub struct Jacobian<E> {
    /// X coordinate.
    pub x: E,
    /// Y coordinate.
    pub y: E,
    /// Z coordinate.
    pub z: E,
}

/// Checks the curve equation `y² = x³ + b` for an affine point.
pub fn is_on_curve<O: FieldOps>(ops: &O, pt: &Affine<O::El>, b: &O::El) -> bool {
    if pt.infinity {
        return true;
    }
    let lhs = ops.sqr(&pt.y);
    let rhs = ops.add(&ops.mul(&ops.sqr(&pt.x), &pt.x), b);
    lhs == rhs
}

/// Lifts an affine point to Jacobian coordinates.
pub fn to_jacobian<O: FieldOps>(ops: &O, pt: &Affine<O::El>) -> Jacobian<O::El> {
    if pt.infinity {
        Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        }
    } else {
        Jacobian {
            x: pt.x.clone(),
            y: pt.y.clone(),
            z: ops.one(),
        }
    }
}

/// Normalises a Jacobian point to affine coordinates (one inversion).
pub fn to_affine<O: FieldOps>(ops: &O, pt: &Jacobian<O::El>) -> Affine<O::El> {
    if ops.is_zero(&pt.z) {
        return Affine::infinity(ops.zero());
    }
    let zinv = ops.inv(&pt.z);
    let zinv2 = ops.sqr(&zinv);
    let zinv3 = ops.mul(&zinv2, &zinv);
    Affine::new(ops.mul(&pt.x, &zinv2), ops.mul(&pt.y, &zinv3))
}

/// Normalises many Jacobian points with a single field inversion
/// ([`FieldOps::batch_inv`], Montgomery's trick) — the standard way to
/// amortise the one expensive operation when emitting precomputed tables
/// or fixed-base windows.
pub fn batch_to_affine<O: FieldOps>(ops: &O, pts: &[Jacobian<O::El>]) -> Vec<Affine<O::El>> {
    // Gather the non-identity z coordinates and invert them together.
    let mut zs: Vec<O::El> = pts
        .iter()
        .filter(|p| !ops.is_zero(&p.z))
        .map(|p| p.z.clone())
        .collect();
    ops.batch_inv(&mut zs);
    let mut inv_iter = zs.into_iter();
    pts.iter()
        .map(|p| {
            if ops.is_zero(&p.z) {
                return Affine::infinity(ops.zero());
            }
            let zinv = inv_iter.next().expect("one inverse per finite point");
            let zinv2 = ops.sqr(&zinv);
            let zinv3 = ops.mul(&zinv2, &zinv);
            Affine::new(ops.mul(&p.x, &zinv2), ops.mul(&p.y, &zinv3))
        })
        .collect()
}

/// Jacobian doubling (`a = 0` curve).
pub fn jac_double<O: FieldOps>(ops: &O, p: &Jacobian<O::El>) -> Jacobian<O::El> {
    if ops.is_zero(&p.z) || ops.is_zero(&p.y) {
        return Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
    }
    let a = ops.sqr(&p.x);
    let b = ops.sqr(&p.y);
    let c = ops.sqr(&b);
    // D = 2((X+B)² − A − C)
    let t = ops.sqr(&ops.add(&p.x, &b));
    let d = ops.dbl(&ops.sub(&ops.sub(&t, &a), &c));
    let e = ops.add(&ops.dbl(&a), &a); // 3A
    let f = ops.sqr(&e);
    let x3 = ops.sub(&f, &ops.dbl(&d));
    let c8 = ops.mul_small(&c, 8);
    let y3 = ops.sub(&ops.mul(&e, &ops.sub(&d, &x3)), &c8);
    let z3 = ops.dbl(&ops.mul(&p.y, &p.z));
    Jacobian {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// General Jacobian addition (`a = 0` curve), handling doubling and
/// identity cases.
pub fn jac_add<O: FieldOps>(ops: &O, p: &Jacobian<O::El>, q: &Jacobian<O::El>) -> Jacobian<O::El> {
    if ops.is_zero(&p.z) {
        return q.clone();
    }
    if ops.is_zero(&q.z) {
        return p.clone();
    }
    let z1z1 = ops.sqr(&p.z);
    let z2z2 = ops.sqr(&q.z);
    let u1 = ops.mul(&p.x, &z2z2);
    let u2 = ops.mul(&q.x, &z1z1);
    let s1 = ops.mul(&ops.mul(&p.y, &q.z), &z2z2);
    let s2 = ops.mul(&ops.mul(&q.y, &p.z), &z1z1);
    if u1 == u2 {
        if s1 == s2 {
            return jac_double(ops, p);
        }
        // P + (−P) = O
        return Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
    }
    let h = ops.sub(&u2, &u1);
    let i = ops.sqr(&ops.dbl(&h));
    let j = ops.mul(&h, &i);
    let r = ops.dbl(&ops.sub(&s2, &s1));
    let v = ops.mul(&u1, &i);
    let x3 = ops.sub(&ops.sub(&ops.sqr(&r), &j), &ops.dbl(&v));
    let y3 = ops.sub(&ops.mul(&r, &ops.sub(&v, &x3)), &ops.dbl(&ops.mul(&s1, &j)));
    let z3 = ops.mul(
        &ops.sub(&ops.sqr(&ops.add(&p.z, &q.z)), &ops.add(&z1z1, &z2z2)),
        &h,
    );
    Jacobian {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// Scalar multiplication by a non-negative big integer (double-and-add).
pub fn scalar_mul<O: FieldOps>(ops: &O, p: &Affine<O::El>, k: &BigUint) -> Jacobian<O::El> {
    let mut acc = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    if p.infinity || k.is_zero() {
        return acc;
    }
    let base = to_jacobian(ops, p);
    for i in (0..k.bits()).rev() {
        acc = jac_double(ops, &acc);
        if k.bit(i) {
            acc = jac_add(ops, &acc, &base);
        }
    }
    acc
}

/// Width of the [`jac_mul`] signed window: width-4 recoding uses the odd
/// digits `±1, ±3, ±5, ±7` (four precomputed multiples) and cuts
/// additions to roughly one per five doublings on pairing-sized scalars.
const WNAF_WINDOW: u32 = 4;

/// Odd-multiples table size for the width-4 window: entries `(2i+1)·P`
/// for `i < 4` cover every odd digit magnitude up to 7.
const WNAF_TABLE: usize = 1 << (WNAF_WINDOW - 2);

/// Reusable recoding scratch for [`wnaf_digits_into`], so interleaved
/// multi-scalar recoding (one call per GLV/GLS sub-scalar) does not
/// allocate a fresh limb buffer per sub-scalar.
#[derive(Default)]
pub struct WnafScratch {
    limbs: Vec<u64>,
}

/// Recodes a scalar into width-`w` non-adjacent form, appending into
/// `digits` (cleared first): each digit is zero or odd in
/// `±(1 .. 2^(w−1))`, and any two non-zero digits are at least `w`
/// positions apart.
fn wnaf_digits_into(k: &BigUint, w: u32, scratch: &mut WnafScratch, digits: &mut Vec<i64>) {
    digits.clear();
    let limbs = &mut scratch.limbs;
    limbs.clear();
    limbs.extend_from_slice(k.limbs());
    // One spare limb so the +|d| correction for negative digits cannot
    // overflow the scratch.
    limbs.push(0);
    let mask = (1u64 << w) - 1;
    let half = 1i64 << (w - 1);
    let is_zero = |l: &[u64]| l.iter().all(|&x| x == 0);
    // In-place helpers on the little-endian limb scratch.
    let shr1 = |l: &mut [u64]| {
        let mut top = 0u64;
        for limb in l.iter_mut().rev() {
            let next = *limb & 1;
            *limb = (*limb >> 1) | (top << 63);
            top = next;
        }
    };
    let sub_small = |l: &mut [u64], v: u64| {
        let mut borrow = v;
        for limb in l.iter_mut() {
            let (d, b) = limb.overflowing_sub(borrow);
            *limb = d;
            borrow = b as u64;
            if borrow == 0 {
                break;
            }
        }
    };
    let add_small = |l: &mut [u64], v: u64| {
        let mut carry = v;
        for limb in l.iter_mut() {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            carry = c as u64;
            if carry == 0 {
                break;
            }
        }
        debug_assert_eq!(carry, 0, "wNAF scratch overflow");
    };
    digits.reserve(k.bits() + 1);
    while !is_zero(limbs) {
        if limbs[0] & 1 == 1 {
            let mut d = (limbs[0] & mask) as i64;
            if d >= half {
                d -= 1 << w;
            }
            if d >= 0 {
                sub_small(limbs, d as u64);
            } else {
                add_small(limbs, (-d) as u64);
            }
            digits.push(d);
        } else {
            digits.push(0);
        }
        shr1(limbs);
    }
}

/// One-shot wNAF recoding (allocating convenience wrapper around
/// [`wnaf_digits_into`]).
fn wnaf_digits(k: &BigUint, w: u32) -> Vec<i64> {
    let mut scratch = WnafScratch::default();
    let mut digits = Vec::new();
    wnaf_digits_into(k, w, &mut scratch, &mut digits);
    digits
}

/// Builds the odd-multiples table `[P, 3P, 5P, 7P]` for one width-4 wNAF
/// operand.
fn odd_multiples<O: FieldOps>(ops: &O, base: Jacobian<O::El>) -> [Jacobian<O::El>; WNAF_TABLE] {
    let two_p = jac_double(ops, &base);
    let mut table: [Jacobian<O::El>; WNAF_TABLE] = std::array::from_fn(|_| base.clone());
    for i in 1..WNAF_TABLE {
        table[i] = jac_add(ops, &table[i - 1], &two_p);
    }
    table
}

/// Scalar multiplication by a non-negative big integer using a signed
/// width-4 windowed NAF: one fixed table of 4 odd multiples, then one
/// doubling per scalar bit and one addition per non-zero digit (~bits/5).
///
/// This is the fast path used by the curve-level `g1_mul`/`g2_mul` when no
/// endomorphism decomposition applies; [`scalar_mul`] remains as the
/// minimal double-and-add reference.
pub fn jac_mul<O: FieldOps>(ops: &O, p: &Affine<O::El>, k: &BigUint) -> Jacobian<O::El> {
    let identity = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    if p.infinity || k.is_zero() {
        return identity;
    }
    let table = odd_multiples(ops, to_jacobian(ops, p));
    let digits = wnaf_digits(k, WNAF_WINDOW);
    let mut acc = identity;
    for &d in digits.iter().rev() {
        acc = jac_double(ops, &acc);
        if d > 0 {
            acc = jac_add(ops, &acc, &table[(d as usize - 1) / 2]);
        } else if d < 0 {
            let t = &table[((-d) as usize - 1) / 2];
            let neg = Jacobian {
                x: t.x.clone(),
                y: ops.neg(&t.y),
                z: t.z.clone(),
            };
            acc = jac_add(ops, &acc, &neg);
        }
    }
    acc
}

/// Mixed addition `P + Q` with `Q` affine (`Z2 = 1`), the madd-2007-bl
/// formulas: 7M + 4S instead of the 11M + 5S of the general
/// [`jac_add`]. Handles identity and doubling edge cases.
pub fn jac_add_affine<O: FieldOps>(
    ops: &O,
    p: &Jacobian<O::El>,
    q: &Affine<O::El>,
) -> Jacobian<O::El> {
    if q.infinity {
        return p.clone();
    }
    if ops.is_zero(&p.z) {
        return to_jacobian(ops, q);
    }
    let z1z1 = ops.sqr(&p.z);
    let u2 = ops.mul(&q.x, &z1z1);
    let s2 = ops.mul(&ops.mul(&q.y, &p.z), &z1z1);
    if u2 == p.x {
        if s2 == p.y {
            return jac_double(ops, p);
        }
        return Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
    }
    let h = ops.sub(&u2, &p.x);
    let hh = ops.sqr(&h);
    let i = ops.dbl(&ops.dbl(&hh));
    let j = ops.mul(&h, &i);
    let rr = ops.dbl(&ops.sub(&s2, &p.y));
    let v = ops.mul(&p.x, &i);
    let x3 = ops.sub(&ops.sub(&ops.sqr(&rr), &j), &ops.dbl(&v));
    let y3 = ops.sub(
        &ops.mul(&rr, &ops.sub(&v, &x3)),
        &ops.dbl(&ops.mul(&p.y, &j)),
    );
    let z3 = ops.sub(&ops.sub(&ops.sqr(&ops.add(&p.z, &h)), &z1z1), &hh);
    Jacobian {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// One `(point, sub-scalar)` operand of an interleaved multi-scalar
/// multiplication. `negate` subtracts instead of adds, which is how signed
/// GLV/GLS sub-scalars are fed without touching the scalar itself.
#[derive(Clone, Debug)]
pub struct MulTerm<E> {
    /// The base point.
    pub point: Affine<E>,
    /// The non-negative sub-scalar magnitude.
    pub scalar: BigUint,
    /// If true, the term contributes `−scalar·point`.
    pub negate: bool,
}

/// Total table entries above which [`jac_multi_mul`] normalises its
/// odd-multiple tables to affine (one batched inversion via
/// [`batch_to_affine`]) so the main loop can use the cheaper
/// [`jac_add_affine`]. Below the threshold the inversion does not
/// amortise against Fermat-based field inversion.
const AFFINE_TABLE_MIN_ENTRIES: usize = 3 * WNAF_TABLE;

/// Both coordinate forms of an endomorphism, for table reuse in
/// [`jac_multi_mul_mapped`]: the affine form maps normalised table
/// entries, the Jacobian form maps un-normalised ones (φ is
/// `X ↦ βX` and ψ is `(X, Y, Z) ↦ (γx·Xᵖ, γy·Yᵖ, Zᵖ)` in Jacobian
/// coordinates, so both exist and cost a few field operations).
pub struct EndoMap<'a, E> {
    /// Affine image of an affine point under the endomorphism.
    pub affine: &'a dyn Fn(&Affine<E>) -> Affine<E>,
    /// Jacobian image of a Jacobian point under the same endomorphism.
    pub jacobian: &'a dyn Fn(&Jacobian<E>) -> Jacobian<E>,
}

// Manual impls: `derive` would wrongly require `E: Copy`, but the fields
// are references.
impl<E> Clone for EndoMap<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> Copy for EndoMap<'_, E> {}

/// A table-reuse hint for [`jac_multi_mul_mapped`]: entry `i` says term
/// `i`'s point is `f(terms[source].point)` for a *group homomorphism*
/// `f`, so its odd-multiples table is the source's table mapped through
/// `f` entry-by-entry (a few coordinate maps instead of one doubling
/// plus three full additions).
pub type TableMap<'a, E> = Option<(usize, EndoMap<'a, E>)>;

/// Interleaved Straus/Shamir multi-scalar multiplication with width-4
/// wNAF digits: computes `Σᵢ ±kᵢ·Pᵢ` sharing one doubling chain across
/// all terms, so an m-way GLV/GLS split costs `max bits(kᵢ)` doublings
/// instead of `Σ bits(kᵢ)`.
///
/// Each term gets its own odd-multiples table; with three or more terms
/// the tables are batch-normalised to affine (one inversion total) and
/// the additions become mixed additions.
pub fn jac_multi_mul<O: FieldOps>(ops: &O, terms: &[MulTerm<O::El>]) -> Jacobian<O::El> {
    jac_multi_mul_mapped(ops, terms, &[])
}

/// [`jac_multi_mul`] with endomorphism table reuse: `table_maps[i]`
/// (parallel to `terms`, missing entries mean "build fresh") lets a
/// GLV/GLS caller derive φ- and ψ-image tables from their source term's
/// table instead of rebuilding them — in either the batch-normalised
/// affine path (affine form of the map) or the small-term Jacobian path
/// (Jacobian form). Sources may themselves be mapped (ψ-power chains),
/// as long as every source is a live earlier term; a map whose source
/// term was skipped (infinity point or zero scalar) falls back to a
/// fresh table.
///
/// # Panics
///
/// Panics if a table map references itself or a later term.
pub fn jac_multi_mul_mapped<O: FieldOps>(
    ops: &O,
    terms: &[MulTerm<O::El>],
    table_maps: &[TableMap<O::El>],
) -> Jacobian<O::El> {
    let identity = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    // Recode every live term, reusing one limb scratch across terms.
    // Negation is handled by flipping digit signs at use, so tables are
    // always of the original point (which keeps them shareable).
    let mut scratch = WnafScratch::default();
    let mut digit_sets: Vec<Vec<i64>> = Vec::with_capacity(terms.len());
    let mut live: Vec<usize> = Vec::with_capacity(terms.len());
    let mut signs: Vec<bool> = Vec::with_capacity(terms.len());
    for (i, term) in terms.iter().enumerate() {
        if term.point.infinity || term.scalar.is_zero() {
            continue;
        }
        let mut digits = Vec::new();
        wnaf_digits_into(&term.scalar, WNAF_WINDOW, &mut scratch, &mut digits);
        digit_sets.push(digits);
        signs.push(term.negate);
        live.push(i);
    }
    if live.is_empty() {
        return identity;
    }
    // A map is usable when its source term is live and strictly earlier;
    // otherwise the term builds a fresh table.
    let mut live_pos: Vec<Option<usize>> = vec![None; terms.len()];
    for (pos, &i) in live.iter().enumerate() {
        live_pos[i] = Some(pos);
    }
    let map_of = |i: usize| -> TableMap<O::El> {
        table_maps.get(i).copied().flatten().filter(|&(src, _)| {
            assert!(src != i, "table map must not reference itself");
            assert!(src < i, "table map source must be an earlier term");
            live_pos[src].is_some()
        })
    };
    let max_len = digit_sets.iter().map(Vec::len).max().unwrap_or(0);
    let mut acc = identity;
    if live.len() * WNAF_TABLE >= AFFINE_TABLE_MIN_ENTRIES {
        // Build fresh tables only, batch-normalise them with a single
        // inversion, then derive mapped tables entry-by-entry in live
        // order (so ψ-power chains can map from mapped tables).
        let mut fresh: Vec<Jacobian<O::El>> = Vec::new();
        let mut fresh_slot: Vec<Option<usize>> = vec![None; terms.len()];
        for &i in &live {
            if map_of(i).is_none() {
                fresh_slot[i] = Some(fresh.len() / WNAF_TABLE);
                fresh.extend(odd_multiples(ops, to_jacobian(ops, &terms[i].point)));
            }
        }
        let affine_fresh = batch_to_affine(ops, &fresh);
        let mut tables: Vec<Vec<Affine<O::El>>> = Vec::with_capacity(live.len());
        for &i in &live {
            let table = match map_of(i) {
                None => {
                    let slot = fresh_slot[i].expect("fresh term has a slot");
                    affine_fresh[slot * WNAF_TABLE..(slot + 1) * WNAF_TABLE].to_vec()
                }
                Some((src, f)) => {
                    let src_pos = live_pos[src].expect("usable map source is live");
                    tables[src_pos].iter().map(f.affine).collect()
                }
            };
            tables.push(table);
        }
        for pos in (0..max_len).rev() {
            acc = jac_double(ops, &acc);
            for ((digits, table), &neg) in digit_sets.iter().zip(&tables).zip(&signs) {
                let mut d = digits.get(pos).copied().unwrap_or(0);
                if neg {
                    d = -d;
                }
                if d > 0 {
                    acc = jac_add_affine(ops, &acc, &table[(d as usize - 1) / 2]);
                } else if d < 0 {
                    let flip = affine_neg(ops, &table[((-d) as usize - 1) / 2]);
                    acc = jac_add_affine(ops, &acc, &flip);
                }
            }
        }
    } else {
        // Small term counts stay in Jacobian coordinates (no inversion);
        // mapped tables use the endomorphism's Jacobian form.
        let mut tables: Vec<[Jacobian<O::El>; WNAF_TABLE]> = Vec::with_capacity(live.len());
        for &i in &live {
            let table = match map_of(i) {
                None => odd_multiples(ops, to_jacobian(ops, &terms[i].point)),
                Some((src, f)) => {
                    let src_pos = live_pos[src].expect("usable map source is live");
                    let src_table = &tables[src_pos];
                    std::array::from_fn(|j| (f.jacobian)(&src_table[j]))
                }
            };
            tables.push(table);
        }
        for pos in (0..max_len).rev() {
            acc = jac_double(ops, &acc);
            for ((digits, table), &neg) in digit_sets.iter().zip(&tables).zip(&signs) {
                let mut d = digits.get(pos).copied().unwrap_or(0);
                if neg {
                    d = -d;
                }
                if d > 0 {
                    acc = jac_add(ops, &acc, &table[(d as usize - 1) / 2]);
                } else if d < 0 {
                    let t = &table[((-d) as usize - 1) / 2];
                    let flip = Jacobian {
                        x: t.x.clone(),
                        y: ops.neg(&t.y),
                        z: t.z.clone(),
                    };
                    acc = jac_add(ops, &acc, &flip);
                }
            }
        }
    }
    acc
}

/// Pippenger bucket window width for `n` points (the usual
/// `~log n − log log n` heuristic, clamped to a sane range).
fn pippenger_window(n: usize) -> usize {
    if n < 32 {
        3
    } else {
        ((usize::BITS - 1 - n.leading_zeros()) as usize * 69 / 100 + 2).min(16)
    }
}

/// Extracts the `c`-bit window of `k` starting at bit `pos`.
fn window_digit(k: &BigUint, pos: usize, c: usize) -> usize {
    debug_assert!(c <= 32);
    let limbs = k.limbs();
    let (li, off) = (pos / 64, pos % 64);
    let mut v = limbs.get(li).copied().unwrap_or(0) >> off;
    if off + c > 64 {
        if let Some(&hi) = limbs.get(li + 1) {
            v |= hi << (64 - off);
        }
    }
    (v as usize) & ((1 << c) - 1)
}

/// Number of points below which [`msm`] falls back to independent wNAF
/// multiplications (bucket setup does not amortise).
const MSM_PIPPENGER_MIN: usize = 4;

/// Number of points below which [`msm`] uses the interleaved Straus
/// kernel instead of Pippenger buckets: with `n` points and window `c`,
/// the bucket collapse costs `~2·2^c` general additions per window, which
/// dominates until `n` well exceeds the bucket count; the Straus kernel's
/// batch-normalised affine tables keep every loop addition mixed.
pub const MSM_STRAUS_MAX: usize = 256;

/// Multi-scalar multiplication `Σ kᵢ·Pᵢ` via Pippenger's bucket method
/// (interleaved Straus below [`MSM_STRAUS_MAX`] points).
///
/// The window width scales with the point count; per window, each point
/// is dropped into the bucket of its window digit with a mixed addition
/// (the inputs are already affine), then buckets collapse with the
/// running-sum trick: `Σ d·B_d = Σ (suffix sums)`. Cost is roughly
/// `bits/c · (n + 2^c)` additions plus `bits` doublings, against
/// `n · bits/5` additions plus `n · bits` doublings for independent wNAF
/// ladders.
///
/// Scalars are used as given (callers wanting reduction mod r should
/// reduce first — the curve-level `g1_msm`/`g2_msm` do, and additionally
/// split each scalar along the curve endomorphism before calling here).
///
/// # Panics
///
/// Panics if `points` and `scalars` have different lengths.
pub fn msm<O: FieldOps>(ops: &O, points: &[Affine<O::El>], scalars: &[BigUint]) -> Jacobian<O::El> {
    assert_eq!(
        points.len(),
        scalars.len(),
        "msm needs one scalar per point"
    );
    let identity = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    let live: Vec<(&Affine<O::El>, &BigUint)> = points
        .iter()
        .zip(scalars)
        .filter(|(p, k)| !p.infinity && !k.is_zero())
        .collect();
    if live.is_empty() {
        return identity;
    }
    if live.len() < MSM_PIPPENGER_MIN {
        let mut acc = identity;
        for (p, k) in live {
            acc = jac_add(ops, &acc, &jac_mul(ops, p, k));
        }
        return acc;
    }
    if live.len() < MSM_STRAUS_MAX {
        let terms: Vec<MulTerm<O::El>> = live
            .iter()
            .map(|(p, k)| MulTerm {
                point: (*p).clone(),
                scalar: (*k).clone(),
                negate: false,
            })
            .collect();
        return jac_multi_mul(ops, &terms);
    }
    let c = pippenger_window(live.len());
    let max_bits = live.iter().map(|(_, k)| k.bits()).max().unwrap_or(0);
    let windows = max_bits.div_ceil(c);
    let mut buckets: Vec<Jacobian<O::El>> = vec![identity.clone(); (1 << c) - 1];
    let mut acc = identity.clone();
    for w in (0..windows).rev() {
        if w + 1 != windows {
            for _ in 0..c {
                acc = jac_double(ops, &acc);
            }
        }
        for b in buckets.iter_mut() {
            *b = identity.clone();
        }
        for (p, k) in &live {
            let d = window_digit(k, w * c, c);
            if d != 0 {
                buckets[d - 1] = jac_add_affine(ops, &buckets[d - 1], p);
            }
        }
        // Running-sum collapse: Σ d·B_d as suffix sums of the buckets.
        let mut suffix = identity.clone();
        let mut window_sum = identity.clone();
        for b in buckets.iter().rev() {
            suffix = jac_add(ops, &suffix, b);
            window_sum = jac_add(ops, &window_sum, &suffix);
        }
        acc = jac_add(ops, &acc, &window_sum);
    }
    acc
}

/// Affine negation.
pub fn affine_neg<O: FieldOps>(ops: &O, p: &Affine<O::El>) -> Affine<O::El> {
    if p.infinity {
        p.clone()
    } else {
        Affine::new(p.x.clone(), ops.neg(&p.y))
    }
}

/// True iff the Jacobian point is the identity.
pub fn is_identity<O: FieldOps>(ops: &O, p: &Jacobian<O::El>) -> bool {
    ops.is_zero(&p.z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_ff::FpCtx;

    /// Tiny curve for exhaustive checking: y² = x³ + 7 over F_61
    /// (#E = 61 + 1 − (−1)... determined empirically below).
    fn tiny() -> (FpOps, Fp) {
        let ctx = FpCtx::new(BigUint::from_u64(61)).unwrap();
        let b = ctx.from_u64(7);
        (FpOps(ctx), b)
    }

    fn points_on_tiny(ops: &FpOps, b: &Fp) -> Vec<Affine<Fp>> {
        let mut pts = Vec::new();
        for x in 0..61u64 {
            for y in 0..61u64 {
                let p = Affine::new(ops.0.from_u64(x), ops.0.from_u64(y));
                if is_on_curve(ops, &p, b) {
                    pts.push(p);
                }
            }
        }
        pts
    }

    #[test]
    fn group_closure_and_identity() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        assert!(!pts.is_empty());
        let order = pts.len() as u64 + 1; // plus infinity
        for p in pts.iter().take(8) {
            // [order]P = O for all points (Lagrange).
            let r = scalar_mul(&ops, p, &BigUint::from_u64(order));
            assert!(is_identity(&ops, &r), "order {order} should annihilate");
            // P + (−P) = O
            let s = jac_add(
                &ops,
                &to_jacobian(&ops, p),
                &to_jacobian(&ops, &affine_neg(&ops, p)),
            );
            assert!(is_identity(&ops, &s));
            // on-curve stays on-curve through doubling
            let d = to_affine(&ops, &jac_double(&ops, &to_jacobian(&ops, p)));
            assert!(is_on_curve(&ops, &d, &b));
        }
    }

    #[test]
    fn add_commutes_and_associates() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let (p, q, r) = (&pts[0], &pts[3], &pts[5]);
        let pj = to_jacobian(&ops, p);
        let qj = to_jacobian(&ops, q);
        let rj = to_jacobian(&ops, r);
        let pq = to_affine(&ops, &jac_add(&ops, &pj, &qj));
        let qp = to_affine(&ops, &jac_add(&ops, &qj, &pj));
        assert_eq!(pq, qp);
        assert!(is_on_curve(&ops, &pq, &b));
        let left = to_affine(&ops, &jac_add(&ops, &jac_add(&ops, &pj, &qj), &rj));
        let right = to_affine(&ops, &jac_add(&ops, &pj, &jac_add(&ops, &qj, &rj)));
        assert_eq!(left, right);
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let p = &pts[1];
        let mut acc = Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
        let pj = to_jacobian(&ops, p);
        for k in 0..10u64 {
            let via_mul = to_affine(&ops, &scalar_mul(&ops, p, &BigUint::from_u64(k)));
            let via_add = to_affine(&ops, &acc);
            assert_eq!(via_mul, via_add, "k = {k}");
            acc = jac_add(&ops, &acc, &pj);
        }
    }

    #[test]
    fn jac_mul_matches_double_and_add() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let p = &pts[2];
        // Small scalars exhaustively, plus a few larger multi-window ones.
        for k in (0..40u64).chain([97, 255, 256, 1023, 0xFFFF_FFFF]) {
            let k = BigUint::from_u64(k);
            let fast = to_affine(&ops, &jac_mul(&ops, p, &k));
            let slow = to_affine(&ops, &scalar_mul(&ops, p, &k));
            assert_eq!(fast, slow, "k = {k:?}");
        }
        // Identity inputs.
        let inf = Affine::infinity(ops.zero());
        assert!(is_identity(
            &ops,
            &jac_mul(&ops, &inf, &BigUint::from_u64(5))
        ));
        assert!(is_identity(&ops, &jac_mul(&ops, p, &BigUint::zero())));
    }

    #[test]
    fn batch_to_affine_matches_individual() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let mut jacs: Vec<Jacobian<Fp>> = pts
            .iter()
            .take(6)
            .enumerate()
            .map(|(i, p)| jac_mul(&ops, p, &BigUint::from_u64(i as u64 + 2)))
            .collect();
        // Include an identity in the middle to exercise the skip path.
        jacs.insert(
            3,
            Jacobian {
                x: ops.one(),
                y: ops.one(),
                z: ops.zero(),
            },
        );
        let batch = batch_to_affine(&ops, &jacs);
        for (j, a) in jacs.iter().zip(&batch) {
            assert_eq!(*a, to_affine(&ops, j));
        }
        assert!(batch[3].infinity);
        assert!(batch_to_affine(&ops, &[]).is_empty());
    }

    #[test]
    fn wnaf_digits_reconstruct() {
        for v in [1u64, 2, 3, 15, 16, 17, 255, 0xDEAD_BEEF, u64::MAX] {
            let digits = wnaf_digits(&BigUint::from_u64(v), WNAF_WINDOW);
            let mut acc: i128 = 0;
            for (i, &d) in digits.iter().enumerate() {
                acc += (d as i128) << i;
            }
            assert_eq!(acc, v as i128, "v = {v}");
            for &d in &digits {
                assert!(d == 0 || d % 2 != 0, "digits are zero or odd");
                assert!(d.abs() < 1 << (WNAF_WINDOW - 1));
            }
        }
        assert!(wnaf_digits(&BigUint::zero(), WNAF_WINDOW).is_empty());
    }

    #[test]
    fn doubling_identity_edge_cases() {
        let (ops, _) = tiny();
        let inf: Jacobian<Fp> = Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
        assert!(is_identity(&ops, &jac_double(&ops, &inf)));
        assert!(is_identity(&ops, &jac_add(&ops, &inf, &inf)));
    }

    #[test]
    fn mixed_addition_matches_general() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        // Unrelated points, the doubling case, inverse points, and both
        // identity sides.
        for (i, j) in [(0usize, 4usize), (2, 2), (1, 5), (3, 0)] {
            let pj = jac_mul(&ops, &pts[i], &BigUint::from_u64(3));
            let mixed = jac_add_affine(&ops, &pj, &pts[j]);
            let general = jac_add(&ops, &pj, &to_jacobian(&ops, &pts[j]));
            assert_eq!(
                to_affine(&ops, &mixed),
                to_affine(&ops, &general),
                "i={i}, j={j}"
            );
        }
        let p = &pts[1];
        let pj = to_jacobian(&ops, p);
        // P + P (doubling through the mixed path)
        assert_eq!(
            to_affine(&ops, &jac_add_affine(&ops, &pj, p)),
            to_affine(&ops, &jac_double(&ops, &pj))
        );
        // P + (−P) = O
        assert!(is_identity(
            &ops,
            &jac_add_affine(&ops, &pj, &affine_neg(&ops, p))
        ));
        // O + Q = Q, P + O = P
        let inf_jac: Jacobian<Fp> = Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
        assert_eq!(to_affine(&ops, &jac_add_affine(&ops, &inf_jac, p)), *p);
        let inf_aff = Affine::infinity(ops.zero());
        assert_eq!(to_affine(&ops, &jac_add_affine(&ops, &pj, &inf_aff)), *p);
    }

    #[test]
    fn multi_mul_matches_term_sums() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        // Terms with mixed signs, a zero scalar, and an infinity point;
        // enough terms to trigger the batched affine-table path.
        let cases: Vec<Vec<(usize, u64, bool)>> = vec![
            vec![(0, 5, false)],
            vec![(0, 5, false), (2, 7, true)],
            vec![(0, 3, false), (1, 0, false), (2, 9, true), (3, 11, false)],
            vec![(4, 1, true), (5, 2, false), (6, 13, true), (0, 8, false)],
        ];
        for case in cases {
            let terms: Vec<MulTerm<Fp>> = case
                .iter()
                .map(|&(i, k, neg)| MulTerm {
                    point: pts[i].clone(),
                    scalar: BigUint::from_u64(k),
                    negate: neg,
                })
                .collect();
            let got = to_affine(&ops, &jac_multi_mul(&ops, &terms));
            let mut want = Jacobian {
                x: ops.one(),
                y: ops.one(),
                z: ops.zero(),
            };
            for &(i, k, neg) in &case {
                let base = if neg {
                    affine_neg(&ops, &pts[i])
                } else {
                    pts[i].clone()
                };
                want = jac_add(&ops, &want, &scalar_mul(&ops, &base, &BigUint::from_u64(k)));
            }
            assert_eq!(got, to_affine(&ops, &want), "case {case:?}");
        }
        // Infinity / empty inputs.
        let inf = Affine::infinity(ops.zero());
        assert!(is_identity(
            &ops,
            &jac_multi_mul(
                &ops,
                &[MulTerm {
                    point: inf,
                    scalar: BigUint::from_u64(3),
                    negate: false
                }]
            )
        ));
        assert!(is_identity(&ops, &jac_multi_mul::<FpOps>(&ops, &[])));
    }

    #[test]
    fn msm_matches_naive_on_tiny_curve() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        for n in [0usize, 1, 2, 3, 4, 7, 12] {
            let points: Vec<Affine<Fp>> = (0..n).map(|i| pts[i % pts.len()].clone()).collect();
            let scalars: Vec<BigUint> = (0..n)
                .map(|i| BigUint::from_u64((i as u64 * 7 + 3) % 61))
                .collect();
            let got = to_affine(&ops, &msm(&ops, &points, &scalars));
            let mut want = Jacobian {
                x: ops.one(),
                y: ops.one(),
                z: ops.zero(),
            };
            for (p, k) in points.iter().zip(&scalars) {
                want = jac_add(&ops, &want, &scalar_mul(&ops, p, k));
            }
            assert_eq!(got, to_affine(&ops, &want), "n = {n}");
        }
        // Zero scalars and infinity points drop out.
        let inf = Affine::infinity(ops.zero());
        let points = vec![pts[0].clone(), inf, pts[1].clone(), pts[2].clone()];
        let scalars = vec![
            BigUint::from_u64(4),
            BigUint::from_u64(9),
            BigUint::zero(),
            BigUint::from_u64(5),
        ];
        let got = to_affine(&ops, &msm(&ops, &points, &scalars));
        let want = jac_add(
            &ops,
            &scalar_mul(&ops, &pts[0], &BigUint::from_u64(4)),
            &scalar_mul(&ops, &pts[2], &BigUint::from_u64(5)),
        );
        assert_eq!(got, to_affine(&ops, &want));
    }

    #[test]
    #[should_panic(expected = "one scalar per point")]
    fn msm_length_mismatch_panics() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let _ = msm(&ops, &pts[..2], &[BigUint::from_u64(1)]);
    }

    #[test]
    fn window_digit_extracts_bits() {
        let k = BigUint::from_limbs(vec![0xFEDC_BA98_7654_3210, 0x0000_0000_0000_00AB]);
        assert_eq!(window_digit(&k, 0, 4), 0x0);
        assert_eq!(window_digit(&k, 4, 4), 0x1);
        assert_eq!(window_digit(&k, 60, 8), 0xBF); // spans the limb boundary
        assert_eq!(window_digit(&k, 64, 8), 0xAB);
        assert_eq!(window_digit(&k, 128, 5), 0, "past the top");
    }
}
