//! Generic short-Weierstrass point arithmetic (`y² = x³ + b`, `a = 0`).
//!
//! One Jacobian-coordinate implementation serves both G1 (coordinates in
//! F_p) and G2 (coordinates in the twist field F_q) through the small
//! [`FieldOps`] abstraction, so the group law exists exactly once in the
//! codebase. The pairing crate layers its own fused line/point formulas on
//! top of the same trait.

use crate::curve::CurveError;
use finesse_ff::{BigUint, Fp, FpCtx, Fq, TowerCtx};
use std::fmt::Debug;
use std::sync::Arc;

/// Minimal field interface needed by the group law.
pub trait FieldOps {
    /// The element type.
    type El: Clone + PartialEq + Debug;

    /// Addition.
    fn add(&self, a: &Self::El, b: &Self::El) -> Self::El;
    /// Subtraction.
    fn sub(&self, a: &Self::El, b: &Self::El) -> Self::El;
    /// Negation.
    fn neg(&self, a: &Self::El) -> Self::El;
    /// Multiplication.
    fn mul(&self, a: &Self::El, b: &Self::El) -> Self::El;
    /// Squaring.
    fn sqr(&self, a: &Self::El) -> Self::El;
    /// Inversion (panics on zero, as in the underlying fields).
    fn inv(&self, a: &Self::El) -> Self::El;
    /// The additive identity.
    fn zero(&self) -> Self::El;
    /// The multiplicative identity.
    fn one(&self) -> Self::El;
    /// Zero test.
    fn is_zero(&self, a: &Self::El) -> bool;

    /// Doubling (`2a`); default via addition.
    fn dbl(&self, a: &Self::El) -> Self::El {
        self.add(a, a)
    }

    /// Small-scalar multiple via an addition chain.
    fn mul_small(&self, a: &Self::El, k: u64) -> Self::El {
        let mut acc = self.zero();
        let mut base = a.clone();
        let mut k = k;
        while k > 0 {
            if k & 1 == 1 {
                acc = self.add(&acc, &base);
            }
            base = self.dbl(&base);
            k >>= 1;
        }
        acc
    }

    /// Inverts every element of a slice in place with Montgomery's trick:
    /// one field inversion plus `3(n−1)` multiplications.
    ///
    /// Panics on zero elements, matching [`FieldOps::inv`].
    fn batch_inv(&self, elems: &mut [Self::El]) {
        if elems.is_empty() {
            return;
        }
        let mut prefix = Vec::with_capacity(elems.len());
        let mut acc = self.one();
        for e in elems.iter() {
            prefix.push(acc.clone());
            acc = self.mul(&acc, e);
        }
        let mut inv = self.inv(&acc);
        for (e, pre) in elems.iter_mut().zip(prefix.iter()).rev() {
            let out = self.mul(&inv, pre);
            inv = self.mul(&inv, e);
            *e = out;
        }
    }
}

/// [`FieldOps`] over the base prime field (G1 coordinates).
#[derive(Clone)]
pub struct FpOps(pub Arc<FpCtx>);

impl FieldOps for FpOps {
    type El = Fp;
    fn add(&self, a: &Fp, b: &Fp) -> Fp {
        a + b
    }
    fn sub(&self, a: &Fp, b: &Fp) -> Fp {
        a - b
    }
    fn neg(&self, a: &Fp) -> Fp {
        -a
    }
    fn mul(&self, a: &Fp, b: &Fp) -> Fp {
        a * b
    }
    fn sqr(&self, a: &Fp) -> Fp {
        a.square()
    }
    fn inv(&self, a: &Fp) -> Fp {
        a.invert()
    }
    fn zero(&self) -> Fp {
        self.0.zero()
    }
    fn one(&self) -> Fp {
        self.0.one()
    }
    fn is_zero(&self, a: &Fp) -> bool {
        a.is_zero()
    }
    fn batch_inv(&self, elems: &mut [Fp]) {
        Fp::batch_invert(elems);
    }
}

/// [`FieldOps`] over the twist field F_q (G2 coordinates).
#[derive(Clone)]
pub struct FqOps<'a>(pub &'a TowerCtx);

impl FieldOps for FqOps<'_> {
    type El = Fq;
    fn add(&self, a: &Fq, b: &Fq) -> Fq {
        self.0.fq_add(a, b)
    }
    fn sub(&self, a: &Fq, b: &Fq) -> Fq {
        self.0.fq_sub(a, b)
    }
    fn neg(&self, a: &Fq) -> Fq {
        self.0.fq_neg(a)
    }
    fn mul(&self, a: &Fq, b: &Fq) -> Fq {
        self.0.fq_mul(a, b)
    }
    fn sqr(&self, a: &Fq) -> Fq {
        self.0.fq_sqr(a)
    }
    fn inv(&self, a: &Fq) -> Fq {
        self.0.fq_inv(a)
    }
    fn zero(&self) -> Fq {
        self.0.fq_zero()
    }
    fn one(&self) -> Fq {
        self.0.fq_one()
    }
    fn is_zero(&self, a: &Fq) -> bool {
        self.0.fq_is_zero(a)
    }
    fn batch_inv(&self, elems: &mut [Fq]) {
        self.0.fq_batch_inv(elems);
    }
}

/// An affine point, with an explicit point at infinity.
#[derive(Clone, PartialEq, Debug)]
pub struct Affine<E> {
    /// x coordinate (meaningless at infinity).
    pub x: E,
    /// y coordinate (meaningless at infinity).
    pub y: E,
    /// Point-at-infinity flag.
    pub infinity: bool,
}

impl<E: Clone> Affine<E> {
    /// A finite point.
    pub fn new(x: E, y: E) -> Self {
        Affine {
            x,
            y,
            infinity: false,
        }
    }

    /// The point at infinity (coordinates are placeholders).
    pub fn infinity(placeholder: E) -> Self {
        Affine {
            x: placeholder.clone(),
            y: placeholder,
            infinity: true,
        }
    }
}

/// A Jacobian point `(X : Y : Z)` representing `(X/Z², Y/Z³)`; `Z = 0` is
/// the point at infinity.
#[derive(Clone, Debug)]
pub struct Jacobian<E> {
    /// X coordinate.
    pub x: E,
    /// Y coordinate.
    pub y: E,
    /// Z coordinate.
    pub z: E,
}

/// Checks the curve equation `y² = x³ + b` for an affine point.
pub fn is_on_curve<O: FieldOps>(ops: &O, pt: &Affine<O::El>, b: &O::El) -> bool {
    if pt.infinity {
        return true;
    }
    let lhs = ops.sqr(&pt.y);
    let rhs = ops.add(&ops.mul(&ops.sqr(&pt.x), &pt.x), b);
    lhs == rhs
}

/// Lifts an affine point to Jacobian coordinates.
pub fn to_jacobian<O: FieldOps>(ops: &O, pt: &Affine<O::El>) -> Jacobian<O::El> {
    if pt.infinity {
        Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        }
    } else {
        Jacobian {
            x: pt.x.clone(),
            y: pt.y.clone(),
            z: ops.one(),
        }
    }
}

/// Normalises a Jacobian point to affine coordinates (one inversion).
pub fn to_affine<O: FieldOps>(ops: &O, pt: &Jacobian<O::El>) -> Affine<O::El> {
    if ops.is_zero(&pt.z) {
        return Affine::infinity(ops.zero());
    }
    let zinv = ops.inv(&pt.z);
    let zinv2 = ops.sqr(&zinv);
    let zinv3 = ops.mul(&zinv2, &zinv);
    Affine::new(ops.mul(&pt.x, &zinv2), ops.mul(&pt.y, &zinv3))
}

/// Normalises many Jacobian points with a single field inversion
/// ([`FieldOps::batch_inv`], Montgomery's trick) — the standard way to
/// amortise the one expensive operation when emitting precomputed tables
/// or fixed-base windows.
pub fn batch_to_affine<O: FieldOps>(ops: &O, pts: &[Jacobian<O::El>]) -> Vec<Affine<O::El>> {
    // Gather the non-identity z coordinates and invert them together.
    let mut zs: Vec<O::El> = pts
        .iter()
        .filter(|p| !ops.is_zero(&p.z))
        .map(|p| p.z.clone())
        .collect();
    ops.batch_inv(&mut zs);
    let mut inv_iter = zs.into_iter();
    pts.iter()
        .map(|p| {
            if ops.is_zero(&p.z) {
                return Affine::infinity(ops.zero());
            }
            // The zs vector holds exactly one inverse per finite point,
            // consumed in the same filter order; fall back to the
            // identity if the iterator is somehow exhausted.
            let Some(zinv) = inv_iter.next() else {
                return Affine::infinity(ops.zero());
            };
            let zinv2 = ops.sqr(&zinv);
            let zinv3 = ops.mul(&zinv2, &zinv);
            Affine::new(ops.mul(&p.x, &zinv2), ops.mul(&p.y, &zinv3))
        })
        .collect()
}

/// Jacobian doubling (`a = 0` curve).
pub fn jac_double<O: FieldOps>(ops: &O, p: &Jacobian<O::El>) -> Jacobian<O::El> {
    if ops.is_zero(&p.z) || ops.is_zero(&p.y) {
        return Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
    }
    let a = ops.sqr(&p.x);
    let b = ops.sqr(&p.y);
    let c = ops.sqr(&b);
    // D = 2((X+B)² − A − C)
    let t = ops.sqr(&ops.add(&p.x, &b));
    let d = ops.dbl(&ops.sub(&ops.sub(&t, &a), &c));
    let e = ops.add(&ops.dbl(&a), &a); // 3A
    let f = ops.sqr(&e);
    let x3 = ops.sub(&f, &ops.dbl(&d));
    let c8 = ops.mul_small(&c, 8);
    let y3 = ops.sub(&ops.mul(&e, &ops.sub(&d, &x3)), &c8);
    let z3 = ops.dbl(&ops.mul(&p.y, &p.z));
    Jacobian {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// General Jacobian addition (`a = 0` curve), handling doubling and
/// identity cases.
pub fn jac_add<O: FieldOps>(ops: &O, p: &Jacobian<O::El>, q: &Jacobian<O::El>) -> Jacobian<O::El> {
    if ops.is_zero(&p.z) {
        return q.clone();
    }
    if ops.is_zero(&q.z) {
        return p.clone();
    }
    let z1z1 = ops.sqr(&p.z);
    let z2z2 = ops.sqr(&q.z);
    let u1 = ops.mul(&p.x, &z2z2);
    let u2 = ops.mul(&q.x, &z1z1);
    let s1 = ops.mul(&ops.mul(&p.y, &q.z), &z2z2);
    let s2 = ops.mul(&ops.mul(&q.y, &p.z), &z1z1);
    if u1 == u2 {
        if s1 == s2 {
            return jac_double(ops, p);
        }
        // P + (−P) = O
        return Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
    }
    let h = ops.sub(&u2, &u1);
    let i = ops.sqr(&ops.dbl(&h));
    let j = ops.mul(&h, &i);
    let r = ops.dbl(&ops.sub(&s2, &s1));
    let v = ops.mul(&u1, &i);
    let x3 = ops.sub(&ops.sub(&ops.sqr(&r), &j), &ops.dbl(&v));
    let y3 = ops.sub(&ops.mul(&r, &ops.sub(&v, &x3)), &ops.dbl(&ops.mul(&s1, &j)));
    let z3 = ops.mul(
        &ops.sub(&ops.sqr(&ops.add(&p.z, &q.z)), &ops.add(&z1z1, &z2z2)),
        &h,
    );
    Jacobian {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// Scalar multiplication by a non-negative big integer (double-and-add).
pub fn scalar_mul<O: FieldOps>(ops: &O, p: &Affine<O::El>, k: &BigUint) -> Jacobian<O::El> {
    let mut acc = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    if p.infinity || k.is_zero() {
        return acc;
    }
    let base = to_jacobian(ops, p);
    for i in (0..k.bits()).rev() {
        acc = jac_double(ops, &acc);
        if k.bit(i) {
            acc = jac_add(ops, &acc, &base);
        }
    }
    acc
}

/// Width of the [`jac_mul`] signed window: width-4 recoding uses the odd
/// digits `±1, ±3, ±5, ±7` (four precomputed multiples) and cuts
/// additions to roughly one per five doublings on pairing-sized scalars.
const WNAF_WINDOW: u32 = 4;

/// Odd-multiples table size for the width-4 window: entries `(2i+1)·P`
/// for `i < 4` cover every odd digit magnitude up to 7.
const WNAF_TABLE: usize = 1 << (WNAF_WINDOW - 2);

/// Reusable recoding scratch for the wNAF recoder, so interleaved
/// multi-scalar recoding (one call per GLV/GLS sub-scalar) does not
/// allocate a fresh limb buffer per sub-scalar.
#[derive(Default)]
pub struct WnafScratch {
    limbs: Vec<u64>,
}

/// Recodes a scalar into width-`w` non-adjacent form, appending into
/// `digits` (cleared first): each digit is zero or odd in
/// `±(1 .. 2^(w−1))`, and any two non-zero digits are at least `w`
/// positions apart.
fn wnaf_digits_into(k: &BigUint, w: u32, scratch: &mut WnafScratch, digits: &mut Vec<i64>) {
    digits.clear();
    let limbs = &mut scratch.limbs;
    limbs.clear();
    limbs.extend_from_slice(k.limbs());
    // One spare limb so the +|d| correction for negative digits cannot
    // overflow the scratch.
    limbs.push(0);
    let mask = (1u64 << w) - 1;
    let half = 1i64 << (w - 1);
    let is_zero = |l: &[u64]| l.iter().all(|&x| x == 0);
    // In-place helpers on the little-endian limb scratch.
    let shr1 = |l: &mut [u64]| {
        let mut top = 0u64;
        for limb in l.iter_mut().rev() {
            let next = *limb & 1;
            *limb = (*limb >> 1) | (top << 63);
            top = next;
        }
    };
    let sub_small = |l: &mut [u64], v: u64| {
        let mut borrow = v;
        for limb in l.iter_mut() {
            let (d, b) = limb.overflowing_sub(borrow);
            *limb = d;
            borrow = b as u64;
            if borrow == 0 {
                break;
            }
        }
    };
    let add_small = |l: &mut [u64], v: u64| {
        let mut carry = v;
        for limb in l.iter_mut() {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            carry = c as u64;
            if carry == 0 {
                break;
            }
        }
        debug_assert_eq!(carry, 0, "wNAF scratch overflow");
    };
    digits.reserve(k.bits() + 1);
    while !is_zero(limbs) {
        if limbs[0] & 1 == 1 {
            let mut d = (limbs[0] & mask) as i64;
            if d >= half {
                d -= 1 << w;
            }
            if d >= 0 {
                sub_small(limbs, d as u64);
            } else {
                add_small(limbs, (-d) as u64);
            }
            digits.push(d);
        } else {
            digits.push(0);
        }
        shr1(limbs);
    }
}

/// One-shot wNAF recoding (allocating convenience wrapper around
/// [`wnaf_digits_into`]).
fn wnaf_digits(k: &BigUint, w: u32) -> Vec<i64> {
    let mut scratch = WnafScratch::default();
    let mut digits = Vec::new();
    wnaf_digits_into(k, w, &mut scratch, &mut digits);
    digits
}

/// Builds the odd-multiples table `[P, 3P, 5P, 7P]` for one width-4 wNAF
/// operand.
fn odd_multiples<O: FieldOps>(ops: &O, base: Jacobian<O::El>) -> [Jacobian<O::El>; WNAF_TABLE] {
    let two_p = jac_double(ops, &base);
    let mut table: [Jacobian<O::El>; WNAF_TABLE] = std::array::from_fn(|_| base.clone());
    for i in 1..WNAF_TABLE {
        table[i] = jac_add(ops, &table[i - 1], &two_p);
    }
    table
}

/// Scalar multiplication by a non-negative big integer using a signed
/// width-4 windowed NAF: one fixed table of 4 odd multiples, then one
/// doubling per scalar bit and one addition per non-zero digit (~bits/5).
///
/// This is the fast path used by the curve-level `g1_mul`/`g2_mul` when no
/// endomorphism decomposition applies; [`scalar_mul`] remains as the
/// minimal double-and-add reference.
pub fn jac_mul<O: FieldOps>(ops: &O, p: &Affine<O::El>, k: &BigUint) -> Jacobian<O::El> {
    let identity = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    if p.infinity || k.is_zero() {
        return identity;
    }
    let table = odd_multiples(ops, to_jacobian(ops, p));
    let digits = wnaf_digits(k, WNAF_WINDOW);
    let mut acc = identity;
    for &d in digits.iter().rev() {
        acc = jac_double(ops, &acc);
        if d > 0 {
            acc = jac_add(ops, &acc, &table[(d as usize - 1) / 2]);
        } else if d < 0 {
            let t = &table[((-d) as usize - 1) / 2];
            let neg = Jacobian {
                x: t.x.clone(),
                y: ops.neg(&t.y),
                z: t.z.clone(),
            };
            acc = jac_add(ops, &acc, &neg);
        }
    }
    acc
}

/// Mixed addition `P + Q` with `Q` affine (`Z2 = 1`), the madd-2007-bl
/// formulas: 7M + 4S instead of the 11M + 5S of the general
/// [`jac_add`]. Handles identity and doubling edge cases.
pub fn jac_add_affine<O: FieldOps>(
    ops: &O,
    p: &Jacobian<O::El>,
    q: &Affine<O::El>,
) -> Jacobian<O::El> {
    if q.infinity {
        return p.clone();
    }
    if ops.is_zero(&p.z) {
        return to_jacobian(ops, q);
    }
    let z1z1 = ops.sqr(&p.z);
    let u2 = ops.mul(&q.x, &z1z1);
    let s2 = ops.mul(&ops.mul(&q.y, &p.z), &z1z1);
    if u2 == p.x {
        if s2 == p.y {
            return jac_double(ops, p);
        }
        return Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
    }
    let h = ops.sub(&u2, &p.x);
    let hh = ops.sqr(&h);
    let i = ops.dbl(&ops.dbl(&hh));
    let j = ops.mul(&h, &i);
    let rr = ops.dbl(&ops.sub(&s2, &p.y));
    let v = ops.mul(&p.x, &i);
    let x3 = ops.sub(&ops.sub(&ops.sqr(&rr), &j), &ops.dbl(&v));
    let y3 = ops.sub(
        &ops.mul(&rr, &ops.sub(&v, &x3)),
        &ops.dbl(&ops.mul(&p.y, &j)),
    );
    let z3 = ops.sub(&ops.sub(&ops.sqr(&ops.add(&p.z, &h)), &z1z1), &hh);
    Jacobian {
        x: x3,
        y: y3,
        z: z3,
    }
}

/// Comb window width (rows) for a fixed-base table serving scalars of the
/// given bit length: the evaluation loop costs `⌈bits/w⌉` doublings plus
/// at most as many mixed additions, while the table holds `2^w − 1` affine
/// points, so widening pays off as long as the table stays cache-friendly.
/// Width 8 (255 entries, ≈24 KiB of G1 coordinates on a 381-bit curve)
/// covers every Table 2 group order; the 638-bit curves take one more row
/// to keep the column count down, and tiny test curves shrink the table
/// instead of building 255 entries for a handful of bits.
pub fn comb_window(bits: usize) -> usize {
    match bits {
        0..=96 => 4,
        97..=512 => 8,
        _ => 9,
    }
}

/// A fixed-base comb (Lim–Lee) precomputation for one base point.
///
/// The scalar's bits are viewed as a `w × d` matrix (`w` rows of
/// `d = ⌈bits/w⌉` columns, row `i` holding bits `i·d .. (i+1)·d`); entry
/// `j` of the table is `Σ_{i ∈ bits(j)} [2^{i·d}]P`, so one column of the
/// matrix is resolved per iteration with a single mixed addition:
/// `d` doublings and at most `d` additions per multiplication, against
/// `bits` doublings for a ladder. The table is batch-normalised to affine
/// (one inversion via [`batch_to_affine`]) at construction, which is what
/// makes the evaluation loop all-mixed-additions.
///
/// Build cost is `(w−1)·d` doublings plus `2^w − w − 1` additions plus one
/// batched inversion — amortised after a handful of multiplications, which
/// is why the curve layer caches one comb per generator and only routes
/// exact generator hits through it.
pub struct CombTable<E> {
    base: Affine<E>,
    window: usize,
    cols: usize,
    table: Vec<Affine<E>>,
}

impl<E: Clone + PartialEq + Debug> CombTable<E> {
    /// Precomputes the comb for `base`, sized for scalars up to
    /// `scalar_bits` bits (callers pass the group-order bit length and
    /// reduce scalars first).
    pub fn build<O: FieldOps<El = E>>(ops: &O, base: &Affine<E>, scalar_bits: usize) -> Self {
        let window = comb_window(scalar_bits.max(1));
        let cols = scalar_bits.max(1).div_ceil(window);
        // strides[i] = [2^(i·cols)]·base
        let mut strides: Vec<Jacobian<E>> = Vec::with_capacity(window);
        strides.push(to_jacobian(ops, base));
        for i in 1..window {
            let mut b = strides[i - 1].clone();
            for _ in 0..cols {
                b = jac_double(ops, &b);
            }
            strides.push(b);
        }
        // Entry j (1-indexed) = entry of j minus its top bit, plus that
        // bit's stride — every entry is one addition on an earlier one.
        let mut table: Vec<Jacobian<E>> = Vec::with_capacity((1 << window) - 1);
        for j in 1usize..1 << window {
            let top = usize::BITS as usize - 1 - j.leading_zeros() as usize;
            if j == 1 << top {
                table.push(strides[top].clone());
            } else {
                let rest = table[j - (1 << top) - 1].clone();
                table.push(jac_add(ops, &rest, &strides[top]));
            }
        }
        CombTable {
            base: base.clone(),
            window,
            cols,
            table: batch_to_affine(ops, &table),
        }
    }

    /// True iff this table was built for exactly `base` (infinity never
    /// matches: a comb for the point at infinity is meaningless and the
    /// curve layer must fall through to the generic path).
    pub fn matches_base(&self, base: &Affine<E>) -> bool {
        !base.infinity && !self.base.infinity && self.base == *base
    }

    /// Scalar capacity in bits (`window · cols`).
    pub fn capacity_bits(&self) -> usize {
        self.window * self.cols
    }

    /// Number of precomputed affine points held by the table.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// `[k]·base` for `k` within [`CombTable::capacity_bits`].
    ///
    /// # Panics
    ///
    /// Panics if `k` has more bits than the table was sized for (the
    /// curve layer reduces scalars mod r before routing here).
    pub fn mul<O: FieldOps<El = E>>(&self, ops: &O, k: &BigUint) -> Jacobian<E> {
        assert!(
            k.bits() <= self.capacity_bits(),
            "comb table sized for {} bits, got {}",
            self.capacity_bits(),
            k.bits()
        );
        let mut acc = Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
        for col in (0..self.cols).rev() {
            if col + 1 != self.cols {
                acc = jac_double(ops, &acc);
            }
            let mut digit = 0usize;
            for row in 0..self.window {
                if k.bit(row * self.cols + col) {
                    digit |= 1 << row;
                }
            }
            if digit != 0 {
                acc = jac_add_affine(ops, &acc, &self.table[digit - 1]);
            }
        }
        acc
    }
}

/// One `(point, sub-scalar)` operand of an interleaved multi-scalar
/// multiplication. `negate` subtracts instead of adds, which is how signed
/// GLV/GLS sub-scalars are fed without touching the scalar itself.
#[derive(Clone, Debug)]
pub struct MulTerm<E> {
    /// The base point.
    pub point: Affine<E>,
    /// The non-negative sub-scalar magnitude.
    pub scalar: BigUint,
    /// If true, the term contributes `−scalar·point`.
    pub negate: bool,
}

/// Total table entries above which [`jac_multi_mul`] normalises its
/// odd-multiple tables to affine (one batched inversion via
/// [`batch_to_affine`]) so the main loop can use the cheaper
/// [`jac_add_affine`]. Below the threshold the inversion does not
/// amortise against Fermat-based field inversion.
const AFFINE_TABLE_MIN_ENTRIES: usize = 3 * WNAF_TABLE;

/// Both coordinate forms of an endomorphism, for table reuse in
/// [`jac_multi_mul_mapped`]: the affine form maps normalised table
/// entries, the Jacobian form maps un-normalised ones (φ is
/// `X ↦ βX` and ψ is `(X, Y, Z) ↦ (γx·Xᵖ, γy·Yᵖ, Zᵖ)` in Jacobian
/// coordinates, so both exist and cost a few field operations).
pub struct EndoMap<'a, E> {
    /// Affine image of an affine point under the endomorphism.
    pub affine: &'a dyn Fn(&Affine<E>) -> Affine<E>,
    /// Jacobian image of a Jacobian point under the same endomorphism.
    pub jacobian: &'a dyn Fn(&Jacobian<E>) -> Jacobian<E>,
}

// Manual impls: `derive` would wrongly require `E: Copy`, but the fields
// are references.
impl<E> Clone for EndoMap<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> Copy for EndoMap<'_, E> {}

/// A table-reuse hint for [`jac_multi_mul_mapped`]: entry `i` says term
/// `i`'s point is `f(terms[source].point)` for a *group homomorphism*
/// `f`, so its odd-multiples table is the source's table mapped through
/// `f` entry-by-entry (a few coordinate maps instead of one doubling
/// plus three full additions).
pub type TableMap<'a, E> = Option<(usize, EndoMap<'a, E>)>;

/// Shamir double multiplication `±k₀·P₀ ± k₁·P₁` via joint-sparse-form
/// recoding ([`crate::glv::jsf`]): one shared doubling chain, roughly one
/// addition every other column, and only the `{P₀, P₁, P₀ + P₁, P₀ − P₁}`
/// table — the single-column entries stay affine (mixed additions), the
/// two combined entries are built with two mixed additions and kept
/// Jacobian, so the kernel never pays a field inversion. Negated terms
/// flip their digit row's signs, exactly like the wNAF kernel.
///
/// Both points must be finite and both scalars non-zero (the caller,
/// [`jac_multi_mul_mapped`], filters dead terms first).
fn jsf_double_mul<O: FieldOps>(
    ops: &O,
    t0: &MulTerm<O::El>,
    t1: &MulTerm<O::El>,
) -> Jacobian<O::El> {
    let columns = crate::glv::jsf(&t0.scalar, &t1.scalar);
    let (s0, s1) = (
        if t0.negate { -1i8 } else { 1 },
        if t1.negate { -1i8 } else { 1 },
    );
    let p0 = &t0.point;
    let p1 = &t1.point;
    let neg0 = affine_neg(ops, p0);
    let neg1 = affine_neg(ops, p1);
    let sum = jac_add_affine(ops, &to_jacobian(ops, p0), p1);
    let diff = jac_add_affine(ops, &to_jacobian(ops, p0), &neg1);
    let jac_neg = |p: &Jacobian<O::El>| Jacobian {
        x: p.x.clone(),
        y: ops.neg(&p.y),
        z: p.z.clone(),
    };
    let (neg_sum, neg_diff) = (jac_neg(&sum), jac_neg(&diff));
    let mut acc = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    for (j, &(u0, u1)) in columns.iter().enumerate().rev() {
        if j + 1 != columns.len() {
            acc = jac_double(ops, &acc);
        }
        match (u0 * s0, u1 * s1) {
            (0, 0) => {}
            (1, 0) => acc = jac_add_affine(ops, &acc, p0),
            (-1, 0) => acc = jac_add_affine(ops, &acc, &neg0),
            (0, 1) => acc = jac_add_affine(ops, &acc, p1),
            (0, -1) => acc = jac_add_affine(ops, &acc, &neg1),
            (1, 1) => acc = jac_add(ops, &acc, &sum),
            (-1, -1) => acc = jac_add(ops, &acc, &neg_sum),
            (1, -1) => acc = jac_add(ops, &acc, &diff),
            (-1, 1) => acc = jac_add(ops, &acc, &neg_diff),
            _ => unreachable!("JSF digits are in {{-1, 0, 1}}"),
        }
    }
    acc
}

/// Interleaved Straus/Shamir multi-scalar multiplication with width-4
/// wNAF digits: computes `Σᵢ ±kᵢ·Pᵢ` sharing one doubling chain across
/// all terms, so an m-way GLV/GLS split costs `max bits(kᵢ)` doublings
/// instead of `Σ bits(kᵢ)`.
///
/// Each term gets its own odd-multiples table; with three or more terms
/// the tables are batch-normalised to affine (one inversion total) and
/// the additions become mixed additions.
pub fn jac_multi_mul<O: FieldOps>(ops: &O, terms: &[MulTerm<O::El>]) -> Jacobian<O::El> {
    jac_multi_mul_mapped(ops, terms, &[])
}

/// [`jac_multi_mul`] with endomorphism table reuse: `table_maps[i]`
/// (parallel to `terms`, missing entries mean "build fresh") lets a
/// GLV/GLS caller derive φ- and ψ-image tables from their source term's
/// table instead of rebuilding them — in either the batch-normalised
/// affine path (affine form of the map) or the small-term Jacobian path
/// (Jacobian form). Sources may themselves be mapped (ψ-power chains),
/// as long as every source is a live earlier term; a map whose source
/// term was skipped (infinity point or zero scalar) falls back to a
/// fresh table.
///
/// With exactly two live terms the call routes to the JSF pair kernel,
/// which builds its own four-entry table and ignores `table_maps`
/// entirely.
///
/// # Panics
///
/// Panics if a table map references itself or a later term (three or
/// more live terms; the two-term JSF route never reads the maps).
pub fn jac_multi_mul_mapped<O: FieldOps>(
    ops: &O,
    terms: &[MulTerm<O::El>],
    table_maps: &[TableMap<O::El>],
) -> Jacobian<O::El> {
    let identity = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    let live: Vec<usize> = terms
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.point.infinity && !t.scalar.is_zero())
        .map(|(i, _)| i)
        .collect();
    if live.is_empty() {
        return identity;
    }
    // Exactly two live terms — the 2-GLV pair from `g1_mul`, the 2-dim GLS
    // fallback, or a plain two-point call — take the JSF kernel instead:
    // joint recoding needs only the tiny `{P₀, P₁, P₀ ± P₁}` table, so the
    // per-term odd-multiples windows (and any table map) are skipped.
    if live.len() == 2 {
        return jsf_double_mul(ops, &terms[live[0]], &terms[live[1]]);
    }
    // Recode every live term, reusing one limb scratch across terms.
    // Negation is handled by flipping digit signs at use, so tables are
    // always of the original point (which keeps them shareable).
    let mut scratch = WnafScratch::default();
    let mut digit_sets: Vec<Vec<i64>> = Vec::with_capacity(live.len());
    let mut signs: Vec<bool> = Vec::with_capacity(live.len());
    for &i in &live {
        let mut digits = Vec::new();
        wnaf_digits_into(&terms[i].scalar, WNAF_WINDOW, &mut scratch, &mut digits);
        digit_sets.push(digits);
        signs.push(terms[i].negate);
    }
    // A map is usable when its source term is live and strictly earlier;
    // otherwise the term builds a fresh table.
    let mut live_pos: Vec<Option<usize>> = vec![None; terms.len()];
    for (pos, &i) in live.iter().enumerate() {
        live_pos[i] = Some(pos);
    }
    let map_of = |i: usize| -> TableMap<O::El> {
        table_maps.get(i).copied().flatten().filter(|&(src, _)| {
            assert!(src != i, "table map must not reference itself");
            assert!(src < i, "table map source must be an earlier term");
            live_pos[src].is_some()
        })
    };
    let max_len = digit_sets.iter().map(Vec::len).max().unwrap_or(0);
    let mut acc = identity;
    if live.len() * WNAF_TABLE >= AFFINE_TABLE_MIN_ENTRIES {
        // Build fresh tables only, batch-normalise them with a single
        // inversion, then derive mapped tables entry-by-entry in live
        // order (so ψ-power chains can map from mapped tables).
        let mut fresh: Vec<Jacobian<O::El>> = Vec::new();
        let mut fresh_slot: Vec<Option<usize>> = vec![None; terms.len()];
        for &i in &live {
            if map_of(i).is_none() {
                fresh_slot[i] = Some(fresh.len() / WNAF_TABLE);
                fresh.extend(odd_multiples(ops, to_jacobian(ops, &terms[i].point)));
            }
        }
        let affine_fresh = batch_to_affine(ops, &fresh);
        let mut tables: Vec<Vec<Affine<O::El>>> = Vec::with_capacity(live.len());
        for &i in &live {
            let table = match map_of(i) {
                None => {
                    // Filled by the fresh-table pass above for every
                    // unmapped live term.
                    let slot = fresh_slot[i].unwrap_or(0);
                    affine_fresh[slot * WNAF_TABLE..(slot + 1) * WNAF_TABLE].to_vec()
                }
                Some((src, f)) => {
                    // map_of only yields sources whose live_pos is set.
                    let src_pos = live_pos[src].unwrap_or(0);
                    tables[src_pos].iter().map(f.affine).collect()
                }
            };
            tables.push(table);
        }
        for pos in (0..max_len).rev() {
            acc = jac_double(ops, &acc);
            for ((digits, table), &neg) in digit_sets.iter().zip(&tables).zip(&signs) {
                let mut d = digits.get(pos).copied().unwrap_or(0);
                if neg {
                    d = -d;
                }
                if d > 0 {
                    acc = jac_add_affine(ops, &acc, &table[(d as usize - 1) / 2]);
                } else if d < 0 {
                    let flip = affine_neg(ops, &table[((-d) as usize - 1) / 2]);
                    acc = jac_add_affine(ops, &acc, &flip);
                }
            }
        }
    } else {
        // Small term counts stay in Jacobian coordinates (no inversion);
        // mapped tables use the endomorphism's Jacobian form.
        let mut tables: Vec<[Jacobian<O::El>; WNAF_TABLE]> = Vec::with_capacity(live.len());
        for &i in &live {
            let table = match map_of(i) {
                None => odd_multiples(ops, to_jacobian(ops, &terms[i].point)),
                Some((src, f)) => {
                    // map_of only yields sources whose live_pos is set.
                    let src_pos = live_pos[src].unwrap_or(0);
                    let src_table = &tables[src_pos];
                    std::array::from_fn(|j| (f.jacobian)(&src_table[j]))
                }
            };
            tables.push(table);
        }
        for pos in (0..max_len).rev() {
            acc = jac_double(ops, &acc);
            for ((digits, table), &neg) in digit_sets.iter().zip(&tables).zip(&signs) {
                let mut d = digits.get(pos).copied().unwrap_or(0);
                if neg {
                    d = -d;
                }
                if d > 0 {
                    acc = jac_add(ops, &acc, &table[(d as usize - 1) / 2]);
                } else if d < 0 {
                    let t = &table[((-d) as usize - 1) / 2];
                    let flip = Jacobian {
                        x: t.x.clone(),
                        y: ops.neg(&t.y),
                        z: t.z.clone(),
                    };
                    acc = jac_add(ops, &acc, &flip);
                }
            }
        }
    }
    acc
}

/// Pippenger bucket window width for `n` points (the usual
/// `~log n − log log n` heuristic, clamped to a sane range).
fn pippenger_window(n: usize) -> usize {
    if n < 32 {
        3
    } else {
        ((usize::BITS - 1 - n.leading_zeros()) as usize * 69 / 100 + 2).min(16)
    }
}

/// Extracts the `c`-bit window of `k` starting at bit `pos`.
fn window_digit(k: &BigUint, pos: usize, c: usize) -> usize {
    debug_assert!(c <= 32);
    let limbs = k.limbs();
    let (li, off) = (pos / 64, pos % 64);
    let mut v = limbs.get(li).copied().unwrap_or(0) >> off;
    if off + c > 64 {
        if let Some(&hi) = limbs.get(li + 1) {
            v |= hi << (64 - off);
        }
    }
    (v as usize) & ((1 << c) - 1)
}

/// Window `w` of `k` recoded to a signed base-2^`c` digit in
/// `[−2^(c−1) + 1, 2^(c−1)]`, threading the borrow through `carry`: a raw
/// digit above `2^(c−1)` becomes `digit − 2^c` and lends 1 to the next
/// window, so `Σ dᵂ·2^(wc) = k` while every window needs only
/// `2^(c−1)` buckets (negative digits subtract the point instead) — half
/// the bucket count, and so half the running-sum collapse cost, of the
/// unsigned form. The caller iterates one window past the top bit so the
/// final carry resolves to a plain `+1` digit.
fn signed_window_digit(k: &BigUint, w: usize, c: usize, carry: &mut usize) -> i64 {
    let half = 1i64 << (c - 1);
    let d = window_digit(k, w * c, c) as i64 + *carry as i64;
    if d > half {
        *carry = 1;
        d - (1i64 << c)
    } else {
        *carry = 0;
        d
    }
}

/// Number of points below which [`msm`] falls back to independent wNAF
/// multiplications (bucket setup does not amortise).
const MSM_PIPPENGER_MIN: usize = 4;

/// Number of points below which [`msm`] uses the interleaved Straus
/// kernel instead of Pippenger buckets: with `n` points and window `c`,
/// the bucket collapse costs `~2·2^c` general additions per window, which
/// dominates until `n` well exceeds the bucket count; the Straus kernel's
/// batch-normalised affine tables keep every loop addition mixed.
pub const MSM_STRAUS_MAX: usize = 256;

/// Number of live terms at or above which [`msm`] shards its Pippenger
/// bucket pass across threads (when [`finesse_parallel::current_threads`]
/// allows more than one). Below this the per-shard window collapse — which
/// every shard repeats — does not amortise against the divided bucket
/// accumulation.
pub const MSM_PARALLEL_MIN: usize = 512;

/// One Pippenger shard: accumulates `chunk`'s points into a private
/// windows × buckets matrix (own arena, own [`AffineAddBatcher`], one
/// shared batch inversion per conflict round) using signed
/// 2^(c−1)-bucket digits ([`signed_window_digit`]; negative digits
/// enqueue the negated point, interned lazily so a point whose digits
/// are all one sign costs a single arena entry), then collapses each
/// window with the running-sum trick. Returns the per-window sums — the
/// doubling chain between windows is the caller's, so shard results
/// combine with plain per-window additions.
fn pippenger_window_sums<O: FieldOps>(
    ops: &O,
    chunk: &[(&Affine<O::El>, &BigUint)],
    c: usize,
    windows: usize,
) -> Vec<Jacobian<O::El>> {
    let slots = 1usize << (c - 1);
    let inf = Affine::infinity(ops.zero());
    let mut buckets: Vec<Affine<O::El>> = vec![inf; windows * slots];
    let mut batcher = AffineAddBatcher::new(chunk.len() * windows);
    for &(p, k) in chunk {
        // At most one arena entry per point per sign; the per-window
        // queue entries are 8-byte index pairs, so round scheduling
        // never moves coordinates.
        let mut pos_idx: Option<u32> = None;
        let mut neg_idx: Option<u32> = None;
        let mut carry = 0usize;
        for w in 0..windows {
            let d = signed_window_digit(k, w, c, &mut carry);
            if d == 0 {
                continue;
            }
            let idx = if d > 0 {
                *pos_idx.get_or_insert_with(|| batcher.intern(p.clone()))
            } else {
                *neg_idx.get_or_insert_with(|| batcher.intern(affine_neg(ops, p)))
            };
            batcher.enqueue(w * slots + d.unsigned_abs() as usize - 1, idx);
        }
        debug_assert_eq!(carry, 0, "the extra top window absorbs the carry");
    }
    batcher.accumulate(ops, &mut buckets);
    // Per window: running-sum collapse (Σ d·B_d as suffix sums — all
    // mixed adds now that buckets are affine).
    let identity = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    (0..windows)
        .map(|w| {
            let mut suffix = identity.clone();
            let mut window_sum = identity.clone();
            for b in buckets[w * slots..(w + 1) * slots].iter().rev() {
                suffix = jac_add_affine(ops, &suffix, b);
                window_sum = jac_add(ops, &window_sum, &suffix);
            }
            window_sum
        })
        .collect()
}

/// Multi-scalar multiplication `Σ kᵢ·Pᵢ` via Pippenger's bucket method
/// (interleaved Straus below [`MSM_STRAUS_MAX`] points).
///
/// The window width scales with the point count; per window, each point
/// is dropped into the signed-digit bucket of its window digit with a
/// mixed addition (the inputs are already affine), then buckets collapse
/// with the running-sum trick: `Σ d·B_d = Σ (suffix sums)`. Cost is
/// roughly `bits/c · (n + 2^(c−1))` additions plus `bits` doublings,
/// against `n · bits/5` additions plus `n · bits` doublings for
/// independent wNAF ladders.
///
/// From [`MSM_PARALLEL_MIN`] live terms the bucket pass is sharded over
/// point-chunks across [`finesse_parallel::current_threads`] scoped
/// threads — each shard owns its bucket matrix and batch-affine state —
/// and the per-window partial sums combine in a pairwise tree before one
/// serial doubling chain. The group value is identical at every thread
/// count (shards only re-associate the bucket sums); only the Jacobian
/// representative may differ, so compare results through [`to_affine`].
///
/// Scalars are used as given (callers wanting reduction mod r should
/// reduce first — the curve-level `g1_msm`/`g2_msm` do, and additionally
/// split each scalar along the curve endomorphism before calling here).
///
/// # Errors
///
/// Returns [`CurveError::MsmLengthMismatch`] if `points` and `scalars`
/// have different lengths — batch verifiers feed these slices from
/// untrusted transcripts, so every MSM layer (this kernel included)
/// reports the mismatch instead of aborting the process.
pub fn msm<O>(
    ops: &O,
    points: &[Affine<O::El>],
    scalars: &[BigUint],
) -> Result<Jacobian<O::El>, CurveError>
where
    O: FieldOps + Sync,
    O::El: Send + Sync,
{
    if points.len() != scalars.len() {
        return Err(CurveError::MsmLengthMismatch {
            what: "msm",
            points: points.len(),
            scalars: scalars.len(),
        });
    }
    let identity = Jacobian {
        x: ops.one(),
        y: ops.one(),
        z: ops.zero(),
    };
    let live: Vec<(&Affine<O::El>, &BigUint)> = points
        .iter()
        .zip(scalars)
        .filter(|(p, k)| !p.infinity && !k.is_zero())
        .collect();
    if live.is_empty() {
        return Ok(identity);
    }
    if live.len() < MSM_PIPPENGER_MIN {
        let mut acc = identity;
        for (p, k) in live {
            acc = jac_add(ops, &acc, &jac_mul(ops, p, k));
        }
        return Ok(acc);
    }
    if live.len() < MSM_STRAUS_MAX {
        let terms: Vec<MulTerm<O::El>> = live
            .iter()
            .map(|(p, k)| MulTerm {
                point: (*p).clone(),
                scalar: (*k).clone(),
                negate: false,
            })
            .collect();
        return Ok(jac_multi_mul(ops, &terms));
    }
    let c = pippenger_window(live.len());
    let max_bits = live.iter().map(|(_, k)| k.bits()).max().unwrap_or(0);
    // One window past the top bit so the signed-digit carry always
    // resolves inside the matrix.
    let windows = max_bits.div_ceil(c) + 1;
    // The window geometry is fixed from the full live set before
    // sharding, so every shard fills the same matrix shape and partial
    // sums align window-by-window.
    let partials: Vec<Vec<Jacobian<O::El>>> =
        if live.len() >= MSM_PARALLEL_MIN && finesse_parallel::current_threads() > 1 {
            finesse_parallel::par_map_chunks(&live, MSM_PARALLEL_MIN / 2, |chunk| {
                pippenger_window_sums(ops, chunk, c, windows)
            })
        } else {
            vec![pippenger_window_sums(ops, &live, c, windows)]
        };
    // tree_reduce returns None only for an empty input; the live set is
    // non-empty here, so there is always at least one shard.
    let Some(window_sums) = finesse_parallel::tree_reduce(partials, |a, b| {
        a.iter().zip(&b).map(|(x, y)| jac_add(ops, x, y)).collect()
    }) else {
        return Ok(identity);
    };
    // Serial doubling chain over the combined per-window sums.
    let mut acc = identity;
    for w in (0..windows).rev() {
        if w + 1 != windows {
            for _ in 0..c {
                acc = jac_double(ops, &acc);
            }
        }
        acc = jac_add(ops, &acc, &window_sums[w]);
    }
    Ok(acc)
}

/// One affine addition scheduled against a round's shared inversion.
/// Operand `a` is either the target bucket itself (`a_bucket`) or an
/// arena entry; operand `b` is always an arena entry. The result
/// `(x₃, y₃)` overwrites the bucket (`write_bucket`) or re-enters the
/// queue as a fresh arena entry for slot `target`.
struct AffineAddJob<E> {
    target: u32,
    write_bucket: bool,
    a_bucket: bool,
    a_idx: u32,
    b_idx: u32,
    /// Slope numerator (`y₂ − y₁`, or `3x²` for a doubling), captured at
    /// schedule time alongside the denominator.
    num: E,
}

/// Schedules the affine chord-and-tangent addition
/// (`λ = (y₂ − y₁)/(x₂ − x₁)`, or `3x²/2y` for a doubling) of two finite
/// points against a round's shared inversion: the denominator joins
/// `dens`, the rest of the job joins `jobs`. A cancelling pair (`P − P`,
/// or a doubling with `y = 0`) returns `false` — the sum is the identity
/// and nothing is scheduled. `meta` is the job routing
/// `(target, write_bucket, a_bucket, a_idx, b_idx)`.
fn schedule_affine_add<O: FieldOps>(
    ops: &O,
    dens: &mut Vec<O::El>,
    jobs: &mut Vec<AffineAddJob<O::El>>,
    a: &Affine<O::El>,
    b: &Affine<O::El>,
    meta: (u32, bool, bool, u32, u32),
) -> bool {
    debug_assert!(!a.infinity && !b.infinity);
    let (target, write_bucket, a_bucket, a_idx, b_idx) = meta;
    let num = if a.x == b.x {
        if a.y != b.y || ops.is_zero(&a.y) {
            return false;
        }
        let xx = ops.sqr(&a.x);
        dens.push(ops.dbl(&a.y));
        ops.add(&ops.dbl(&xx), &xx)
    } else {
        dens.push(ops.sub(&b.x, &a.x));
        ops.sub(&b.y, &a.y)
    };
    jobs.push(AffineAddJob {
        target,
        write_bucket,
        a_bucket,
        a_idx,
        b_idx,
        num,
    });
    true
}

/// Scratch state for batch-affine bucket accumulation.
///
/// Points live in an append-only arena; the pending queue holds 8-byte
/// `(slot, arena index)` pairs, so the per-round sort-and-group never
/// moves coordinates. Per round, each slot group schedules one
/// `bucket + entry` addition plus a binary-tree layer of independent
/// `entry + entry` pair additions, so a slot with `m` entries resolves
/// in `O(log m)` rounds instead of serialising `m` bucket additions
/// (structured scalar sets — e.g. hundreds of equal-length sub-scalars
/// sharing their top-window digit — make such hot slots common, not
/// pathological). Every scheduled addition contributes one slope
/// denominator to a single [`FieldOps::batch_inv`] (Montgomery's trick)
/// and then finishes in affine coordinates for ~`2M + 1S` plus the 3
/// shared-inversion multiplications — in place of a `7M + 4S` Jacobian
/// mixed add, with the buckets staying affine for the final collapse.
/// Identity, negation, and `y = 0` edge cases resolve immediately and
/// never reach the inversion.
struct AffineAddBatcher<E> {
    arena: Vec<Affine<E>>,
    /// `(slot, arena index)` additions still owed to the buckets.
    pending: Vec<(u32, u32)>,
    /// Entries produced for the next round (pair-add results and odd
    /// leftovers).
    deferred: Vec<(u32, u32)>,
    /// Slope denominators for the shared batch inversion.
    dens: Vec<E>,
    jobs: Vec<AffineAddJob<E>>,
}

impl<E: Clone + PartialEq + Debug> AffineAddBatcher<E> {
    fn new(capacity: usize) -> Self {
        AffineAddBatcher {
            arena: Vec::new(),
            pending: Vec::with_capacity(capacity),
            deferred: Vec::new(),
            dens: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// Stores a point in the arena, returning its index for
    /// [`AffineAddBatcher::enqueue`] (one interned point can back many
    /// queue entries — e.g. one per Pippenger window).
    fn intern(&mut self, p: Affine<E>) -> u32 {
        self.arena.push(p);
        (self.arena.len() - 1) as u32
    }

    /// Queues `buckets[slot] += arena[idx]` for the next
    /// [`AffineAddBatcher::accumulate`] run.
    fn enqueue(&mut self, slot: usize, idx: u32) {
        self.pending.push((slot as u32, idx));
    }

    /// Drains the queue, summing each slot's entries into `buckets`.
    fn accumulate<O: FieldOps<El = E>>(&mut self, ops: &O, buckets: &mut [Affine<E>]) {
        let mut pending = std::mem::take(&mut self.pending);
        let mut deferred = std::mem::take(&mut self.deferred);
        while !pending.is_empty() {
            self.dens.clear();
            deferred.clear();
            pending.sort_unstable();
            let mut i = 0;
            while i < pending.len() {
                let slot = pending[i].0;
                let mut j = i;
                while j < pending.len() && pending[j].0 == slot {
                    j += 1;
                }
                // The bucket absorbs the first entry; the rest pair up
                // among themselves (independent additions, same shared
                // inversion), halving the group every round.
                let first = pending[i].1;
                let bucket = &buckets[slot as usize];
                if self.arena[first as usize].infinity {
                    // Identity entry: nothing owed.
                } else if bucket.infinity {
                    buckets[slot as usize] = self.arena[first as usize].clone();
                } else if !schedule_affine_add(
                    ops,
                    &mut self.dens,
                    &mut self.jobs,
                    bucket,
                    &self.arena[first as usize],
                    (slot, true, true, slot, first),
                ) {
                    buckets[slot as usize] = Affine::infinity(ops.zero());
                }
                let mut k = i + 1;
                while k + 1 < j {
                    let (ai, bi) = (pending[k].1, pending[k + 1].1);
                    if self.arena[ai as usize].infinity {
                        deferred.push((slot, bi));
                    } else if self.arena[bi as usize].infinity {
                        deferred.push((slot, ai));
                    } else {
                        // A cancelling pair sums to the identity and
                        // simply drops out of the tree.
                        let _ = schedule_affine_add(
                            ops,
                            &mut self.dens,
                            &mut self.jobs,
                            &self.arena[ai as usize],
                            &self.arena[bi as usize],
                            (slot, false, false, ai, bi),
                        );
                    }
                    k += 2;
                }
                if k < j {
                    deferred.push((slot, pending[k].1));
                }
                i = j;
            }
            ops.batch_inv(&mut self.dens);
            let mut jobs = std::mem::take(&mut self.jobs);
            for (job, dinv) in jobs.drain(..).zip(&self.dens) {
                let a = if job.a_bucket {
                    &buckets[job.a_idx as usize]
                } else {
                    &self.arena[job.a_idx as usize]
                };
                let b = &self.arena[job.b_idx as usize];
                let lambda = ops.mul(&job.num, dinv);
                let x3 = ops.sub(&ops.sub(&ops.sqr(&lambda), &a.x), &b.x);
                let y3 = ops.sub(&ops.mul(&lambda, &ops.sub(&a.x, &x3)), &a.y);
                let out = Affine::new(x3, y3);
                if job.write_bucket {
                    buckets[job.target as usize] = out;
                } else {
                    let idx = self.arena.len() as u32;
                    self.arena.push(out);
                    deferred.push((job.target, idx));
                }
            }
            self.jobs = jobs;
            std::mem::swap(&mut pending, &mut deferred);
        }
        self.deferred = deferred;
    }
}

/// Affine negation.
pub fn affine_neg<O: FieldOps>(ops: &O, p: &Affine<O::El>) -> Affine<O::El> {
    if p.infinity {
        p.clone()
    } else {
        Affine::new(p.x.clone(), ops.neg(&p.y))
    }
}

/// True iff the Jacobian point is the identity.
pub fn is_identity<O: FieldOps>(ops: &O, p: &Jacobian<O::El>) -> bool {
    ops.is_zero(&p.z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_ff::FpCtx;

    /// Tiny curve for exhaustive checking: y² = x³ + 7 over F_61
    /// (#E = 61 + 1 − (−1)... determined empirically below).
    fn tiny() -> (FpOps, Fp) {
        let ctx = FpCtx::new(BigUint::from_u64(61)).unwrap();
        let b = ctx.from_u64(7);
        (FpOps(ctx), b)
    }

    fn points_on_tiny(ops: &FpOps, b: &Fp) -> Vec<Affine<Fp>> {
        let mut pts = Vec::new();
        for x in 0..61u64 {
            for y in 0..61u64 {
                let p = Affine::new(ops.0.from_u64(x), ops.0.from_u64(y));
                if is_on_curve(ops, &p, b) {
                    pts.push(p);
                }
            }
        }
        pts
    }

    #[test]
    fn group_closure_and_identity() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        assert!(!pts.is_empty());
        let order = pts.len() as u64 + 1; // plus infinity
        for p in pts.iter().take(8) {
            // [order]P = O for all points (Lagrange).
            let r = scalar_mul(&ops, p, &BigUint::from_u64(order));
            assert!(is_identity(&ops, &r), "order {order} should annihilate");
            // P + (−P) = O
            let s = jac_add(
                &ops,
                &to_jacobian(&ops, p),
                &to_jacobian(&ops, &affine_neg(&ops, p)),
            );
            assert!(is_identity(&ops, &s));
            // on-curve stays on-curve through doubling
            let d = to_affine(&ops, &jac_double(&ops, &to_jacobian(&ops, p)));
            assert!(is_on_curve(&ops, &d, &b));
        }
    }

    #[test]
    fn add_commutes_and_associates() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let (p, q, r) = (&pts[0], &pts[3], &pts[5]);
        let pj = to_jacobian(&ops, p);
        let qj = to_jacobian(&ops, q);
        let rj = to_jacobian(&ops, r);
        let pq = to_affine(&ops, &jac_add(&ops, &pj, &qj));
        let qp = to_affine(&ops, &jac_add(&ops, &qj, &pj));
        assert_eq!(pq, qp);
        assert!(is_on_curve(&ops, &pq, &b));
        let left = to_affine(&ops, &jac_add(&ops, &jac_add(&ops, &pj, &qj), &rj));
        let right = to_affine(&ops, &jac_add(&ops, &pj, &jac_add(&ops, &qj, &rj)));
        assert_eq!(left, right);
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let p = &pts[1];
        let mut acc = Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
        let pj = to_jacobian(&ops, p);
        for k in 0..10u64 {
            let via_mul = to_affine(&ops, &scalar_mul(&ops, p, &BigUint::from_u64(k)));
            let via_add = to_affine(&ops, &acc);
            assert_eq!(via_mul, via_add, "k = {k}");
            acc = jac_add(&ops, &acc, &pj);
        }
    }

    #[test]
    fn jac_mul_matches_double_and_add() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let p = &pts[2];
        // Small scalars exhaustively, plus a few larger multi-window ones.
        for k in (0..40u64).chain([97, 255, 256, 1023, 0xFFFF_FFFF]) {
            let k = BigUint::from_u64(k);
            let fast = to_affine(&ops, &jac_mul(&ops, p, &k));
            let slow = to_affine(&ops, &scalar_mul(&ops, p, &k));
            assert_eq!(fast, slow, "k = {k:?}");
        }
        // Identity inputs.
        let inf = Affine::infinity(ops.zero());
        assert!(is_identity(
            &ops,
            &jac_mul(&ops, &inf, &BigUint::from_u64(5))
        ));
        assert!(is_identity(&ops, &jac_mul(&ops, p, &BigUint::zero())));
    }

    #[test]
    fn batch_to_affine_matches_individual() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let mut jacs: Vec<Jacobian<Fp>> = pts
            .iter()
            .take(6)
            .enumerate()
            .map(|(i, p)| jac_mul(&ops, p, &BigUint::from_u64(i as u64 + 2)))
            .collect();
        // Include an identity in the middle to exercise the skip path.
        jacs.insert(
            3,
            Jacobian {
                x: ops.one(),
                y: ops.one(),
                z: ops.zero(),
            },
        );
        let batch = batch_to_affine(&ops, &jacs);
        for (j, a) in jacs.iter().zip(&batch) {
            assert_eq!(*a, to_affine(&ops, j));
        }
        assert!(batch[3].infinity);
        assert!(batch_to_affine(&ops, &[]).is_empty());
    }

    #[test]
    fn wnaf_digits_reconstruct() {
        for v in [1u64, 2, 3, 15, 16, 17, 255, 0xDEAD_BEEF, u64::MAX] {
            let digits = wnaf_digits(&BigUint::from_u64(v), WNAF_WINDOW);
            let mut acc: i128 = 0;
            for (i, &d) in digits.iter().enumerate() {
                acc += (d as i128) << i;
            }
            assert_eq!(acc, v as i128, "v = {v}");
            for &d in &digits {
                assert!(d == 0 || d % 2 != 0, "digits are zero or odd");
                assert!(d.abs() < 1 << (WNAF_WINDOW - 1));
            }
        }
        assert!(wnaf_digits(&BigUint::zero(), WNAF_WINDOW).is_empty());
    }

    #[test]
    fn doubling_identity_edge_cases() {
        let (ops, _) = tiny();
        let inf: Jacobian<Fp> = Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
        assert!(is_identity(&ops, &jac_double(&ops, &inf)));
        assert!(is_identity(&ops, &jac_add(&ops, &inf, &inf)));
    }

    #[test]
    fn mixed_addition_matches_general() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        // Unrelated points, the doubling case, inverse points, and both
        // identity sides.
        for (i, j) in [(0usize, 4usize), (2, 2), (1, 5), (3, 0)] {
            let pj = jac_mul(&ops, &pts[i], &BigUint::from_u64(3));
            let mixed = jac_add_affine(&ops, &pj, &pts[j]);
            let general = jac_add(&ops, &pj, &to_jacobian(&ops, &pts[j]));
            assert_eq!(
                to_affine(&ops, &mixed),
                to_affine(&ops, &general),
                "i={i}, j={j}"
            );
        }
        let p = &pts[1];
        let pj = to_jacobian(&ops, p);
        // P + P (doubling through the mixed path)
        assert_eq!(
            to_affine(&ops, &jac_add_affine(&ops, &pj, p)),
            to_affine(&ops, &jac_double(&ops, &pj))
        );
        // P + (−P) = O
        assert!(is_identity(
            &ops,
            &jac_add_affine(&ops, &pj, &affine_neg(&ops, p))
        ));
        // O + Q = Q, P + O = P
        let inf_jac: Jacobian<Fp> = Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
        assert_eq!(to_affine(&ops, &jac_add_affine(&ops, &inf_jac, p)), *p);
        let inf_aff = Affine::infinity(ops.zero());
        assert_eq!(to_affine(&ops, &jac_add_affine(&ops, &pj, &inf_aff)), *p);
    }

    #[test]
    fn multi_mul_matches_term_sums() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        // Terms with mixed signs, a zero scalar, and an infinity point;
        // enough terms to trigger the batched affine-table path.
        let cases: Vec<Vec<(usize, u64, bool)>> = vec![
            vec![(0, 5, false)],
            vec![(0, 5, false), (2, 7, true)],
            vec![(0, 3, false), (1, 0, false), (2, 9, true), (3, 11, false)],
            vec![(4, 1, true), (5, 2, false), (6, 13, true), (0, 8, false)],
        ];
        for case in cases {
            let terms: Vec<MulTerm<Fp>> = case
                .iter()
                .map(|&(i, k, neg)| MulTerm {
                    point: pts[i].clone(),
                    scalar: BigUint::from_u64(k),
                    negate: neg,
                })
                .collect();
            let got = to_affine(&ops, &jac_multi_mul(&ops, &terms));
            let mut want = Jacobian {
                x: ops.one(),
                y: ops.one(),
                z: ops.zero(),
            };
            for &(i, k, neg) in &case {
                let base = if neg {
                    affine_neg(&ops, &pts[i])
                } else {
                    pts[i].clone()
                };
                want = jac_add(&ops, &want, &scalar_mul(&ops, &base, &BigUint::from_u64(k)));
            }
            assert_eq!(got, to_affine(&ops, &want), "case {case:?}");
        }
        // Infinity / empty inputs.
        let inf = Affine::infinity(ops.zero());
        assert!(is_identity(
            &ops,
            &jac_multi_mul(
                &ops,
                &[MulTerm {
                    point: inf,
                    scalar: BigUint::from_u64(3),
                    negate: false
                }]
            )
        ));
        assert!(is_identity(&ops, &jac_multi_mul::<FpOps>(&ops, &[])));
    }

    #[test]
    fn msm_matches_naive_on_tiny_curve() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        for n in [0usize, 1, 2, 3, 4, 7, 12] {
            let points: Vec<Affine<Fp>> = (0..n).map(|i| pts[i % pts.len()].clone()).collect();
            let scalars: Vec<BigUint> = (0..n)
                .map(|i| BigUint::from_u64((i as u64 * 7 + 3) % 61))
                .collect();
            let got = to_affine(&ops, &msm(&ops, &points, &scalars).unwrap());
            let mut want = Jacobian {
                x: ops.one(),
                y: ops.one(),
                z: ops.zero(),
            };
            for (p, k) in points.iter().zip(&scalars) {
                want = jac_add(&ops, &want, &scalar_mul(&ops, p, k));
            }
            assert_eq!(got, to_affine(&ops, &want), "n = {n}");
        }
        // Zero scalars and infinity points drop out.
        let inf = Affine::infinity(ops.zero());
        let points = vec![pts[0].clone(), inf, pts[1].clone(), pts[2].clone()];
        let scalars = vec![
            BigUint::from_u64(4),
            BigUint::from_u64(9),
            BigUint::zero(),
            BigUint::from_u64(5),
        ];
        let got = to_affine(&ops, &msm(&ops, &points, &scalars).unwrap());
        let want = jac_add(
            &ops,
            &scalar_mul(&ops, &pts[0], &BigUint::from_u64(4)),
            &scalar_mul(&ops, &pts[2], &BigUint::from_u64(5)),
        );
        assert_eq!(got, to_affine(&ops, &want));
    }

    #[test]
    fn comb_table_matches_scalar_mul() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let p = &pts[1];
        let comb = CombTable::build(&ops, p, 12);
        assert!(comb.capacity_bits() >= 12);
        assert!(comb.entries() > 0);
        for k in (0..70u64).chain([255, 256, 1023, 4095]) {
            let k = BigUint::from_u64(k);
            assert_eq!(
                to_affine(&ops, &comb.mul(&ops, &k)),
                to_affine(&ops, &scalar_mul(&ops, p, &k)),
                "k = {k:?}"
            );
        }
        // Base matching is exact: a different point or infinity never
        // matches, which is what keeps a cached comb generator-only.
        assert!(comb.matches_base(p));
        assert!(!comb.matches_base(&pts[2]));
        assert!(!comb.matches_base(&Affine::infinity(ops.zero())));
    }

    #[test]
    #[should_panic(expected = "comb table sized for")]
    fn comb_table_rejects_oversized_scalars() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let comb = CombTable::build(&ops, &pts[0], 8);
        let _ = comb.mul(&ops, &BigUint::from_u64(1 << 20));
    }

    #[test]
    fn msm_pippenger_batch_affine_matches_naive() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        // ≥ MSM_STRAUS_MAX live points forces the batch-affine Pippenger
        // path; wrap-around duplicates and negated copies land in shared
        // buckets and exercise the batcher's doubling and cancellation
        // scheduling edges, zero scalars its dead-entry filtering.
        let n = MSM_STRAUS_MAX + 44;
        let points: Vec<Affine<Fp>> = (0..n)
            .map(|i| {
                let p = pts[i % pts.len()].clone();
                if i % 5 == 0 {
                    affine_neg(&ops, &p)
                } else {
                    p
                }
            })
            .collect();
        let scalars: Vec<BigUint> = (0..n)
            .map(|i| BigUint::from_u64((i as u64).wrapping_mul(0x9E37_79B9) % 2048))
            .collect();
        let got = to_affine(&ops, &msm(&ops, &points, &scalars).unwrap());
        let mut want = Jacobian {
            x: ops.one(),
            y: ops.one(),
            z: ops.zero(),
        };
        for (p, k) in points.iter().zip(&scalars) {
            want = jac_add(&ops, &want, &scalar_mul(&ops, p, k));
        }
        assert_eq!(got, to_affine(&ops, &want));
    }

    #[test]
    fn msm_length_mismatch_is_typed_error() {
        let (ops, b) = tiny();
        let pts = points_on_tiny(&ops, &b);
        let err = msm(&ops, &pts[..2], &[BigUint::from_u64(1)]).unwrap_err();
        match err {
            CurveError::MsmLengthMismatch {
                what,
                points,
                scalars,
            } => {
                assert_eq!(what, "msm");
                assert_eq!(points, 2);
                assert_eq!(scalars, 1);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn window_digit_extracts_bits() {
        let k = BigUint::from_limbs(vec![0xFEDC_BA98_7654_3210, 0x0000_0000_0000_00AB]);
        assert_eq!(window_digit(&k, 0, 4), 0x0);
        assert_eq!(window_digit(&k, 4, 4), 0x1);
        assert_eq!(window_digit(&k, 60, 8), 0xBF); // spans the limb boundary
        assert_eq!(window_digit(&k, 64, 8), 0xAB);
        assert_eq!(window_digit(&k, 128, 5), 0, "past the top");
    }

    #[test]
    fn signed_window_digits_reconstruct_the_scalar() {
        // Σ d_w·2^(w·c) over the signed digits must equal k, with every
        // |d| ≤ 2^(c−1) and the final carry absorbed by the extra
        // window. Scalars stay below 2^100 so even the carry window's
        // shift (bits rounded up to c, plus one window) fits i128.
        let scalars = [
            BigUint::from_u64(0),
            BigUint::from_u64(1),
            BigUint::from_u64(0xFFFF_FFFF_FFFF_FFFF),
            BigUint::from_limbs(vec![0xDEAD_BEEF_0123_4567, 0xF_FFFF_FFFF]),
            BigUint::from_limbs(vec![u64::MAX, (1u64 << 36) - 1]),
        ];
        for c in 1..=13usize {
            let half = 1i64 << (c - 1);
            for k in &scalars {
                let expected = k
                    .limbs()
                    .iter()
                    .enumerate()
                    .map(|(i, &l)| (l as i128) << (64 * i))
                    .sum::<i128>();
                let windows = k.bits().max(1).div_ceil(c) + 1;
                let mut carry = 0usize;
                let mut acc = 0i128;
                for w in 0..windows {
                    let d = signed_window_digit(k, w, c, &mut carry);
                    assert!(d.abs() <= half, "c={c} w={w}: digit {d} out of range");
                    acc += (d as i128) << (w * c);
                }
                assert_eq!(carry, 0, "c={c}: carry must resolve in the top window");
                assert_eq!(acc, expected, "c={c} k={k:?}");
            }
        }
    }
}
