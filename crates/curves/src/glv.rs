//! GLV/GLS scalar decomposition: lattice bases and sub-scalar splitting.
//!
//! Every curve in Table 2 has `j = 0`, so G1 carries the cube-root-of-unity
//! endomorphism `φ(x, y) = (βx, y)` acting as multiplication by an
//! eigenvalue `λ` with `λ² + λ + 1 ≡ 0 (mod r)`, and G2 carries the
//! untwist–Frobenius `ψ` acting as multiplication by `p mod r`. Splitting a
//! scalar along those eigenvalues replaces an `r`-length double-and-add
//! ladder with several `√r`-length (or `|t|`-length) ladders whose
//! doublings are shared — the same decomposition hardware pairing engines
//! assume on their scalar inputs.
//!
//! Two decompositions live here:
//!
//! - [`lattice_basis`] + [`decompose`] — the classic 2-dimensional GLV
//!   split via a half-extended Euclid reduction of the lattice
//!   `{(x, y) : x + yλ ≡ 0 (mod r)}`, giving `|k₁|, |k₂| ≈ √r`;
//! - [`balanced_digits`] — the GLS split for BLS curves, where the ψ
//!   eigenvalue is the *curve generator* `t` itself (`p ≡ t (mod r)`), so
//!   base-`t` digits with balanced remainders give `⌈log r / log t⌉`
//!   sub-scalars of `|t|`-size each (4-dimensional for BLS12, 8 for BLS24).
//!
//! All functions are exact integer arithmetic over [`BigInt`]/[`BigUint`];
//! correctness is checked by recomposition (`Σ kᵢ λⁱ ≡ k mod r`) in the
//! differential test suite.

use finesse_ff::{BigInt, BigUint};

/// A reduced 2-dimensional basis of the GLV lattice
/// `L = {(x, y) ∈ Z² : x + yλ ≡ 0 (mod r)}`, with both vectors of norm
/// about `√r`, plus precomputed shift-scaled rounding constants so the
/// per-scalar decomposition is two multiplies and two shifts instead of
/// two multi-limb divisions.
#[derive(Clone, Debug)]
pub struct GlvBasis {
    /// First short vector `(a1, b1)` with `a1 + b1·λ ≡ 0 (mod r)`.
    pub a1: BigInt,
    /// See `a1`.
    pub b1: BigInt,
    /// Second short vector `(a2, b2)`, linearly independent of the first.
    pub a2: BigInt,
    /// See `a2`.
    pub b2: BigInt,
    /// `⌊b2·2^shift/r⌉` — rounding constant for the first coordinate.
    round1: BigInt,
    /// `⌊−b1·2^shift/r⌉` — rounding constant for the second coordinate.
    round2: BigInt,
    /// Guard-bit shift (`r.bits() + 64`): the approximation error after
    /// shifting is below 1, so each rounded coefficient is off by at
    /// most one — which only widens the sub-scalars by one basis vector.
    shift: usize,
}

/// `⌊m / 2^s⌉` with ties away from zero, preserving sign.
fn shift_round(m: &BigInt, s: usize) -> BigInt {
    let half = BigUint::one().shl(s - 1);
    BigInt::from_sign_magnitude(m.is_negative(), (m.magnitude() + &half).shr(s))
}

/// Reduces the GLV lattice for `(r, λ)` with the half-extended Euclidean
/// algorithm (Gallant–Lambert–Vanstone, Algorithm 3.74 in the Guide to
/// ECC): run Euclid on `(r, λ)` keeping the `λ`-cofactors, stop around
/// `√r`, and take consecutive remainder rows as the short basis.
///
/// Both returned vectors satisfy `aᵢ + bᵢ·λ ≡ 0 (mod r)` and have entries
/// of roughly `r.bits()/2` bits (the standard Euclid bound).
///
/// # Panics
///
/// Panics if `λ` is zero or not reduced mod `r`.
pub fn lattice_basis(r: &BigUint, lambda: &BigUint) -> GlvBasis {
    assert!(!lambda.is_zero() && lambda < r, "lambda must be in (0, r)");
    // Remainder sequence r_i with cofactors t_i: r_i = s_i·r + t_i·λ
    // (s_i never needed). Rows: (r_prev, t_prev) → (r_cur, t_cur).
    let mut rem_prev = r.clone();
    let mut rem_cur = lambda.clone();
    let mut t_prev = BigInt::zero();
    let mut t_cur = BigInt::one();
    // Advance until the current remainder drops below √r; then
    // (rem_prev, t_prev) is the last row ≥ √r and (rem_cur, t_cur) the
    // first below.
    while &(&rem_cur * &rem_cur) >= r {
        let (q, rem_next) = rem_prev.divrem(&rem_cur);
        let t_next = &t_prev - &(&BigInt::from_biguint(q) * &t_cur);
        rem_prev = std::mem::replace(&mut rem_cur, rem_next);
        t_prev = std::mem::replace(&mut t_cur, t_next);
    }
    // v1 = (r_{l+1}, −t_{l+1}): the first sub-√r row.
    let a1 = BigInt::from_biguint(rem_cur.clone());
    let b1 = t_cur.neg();
    // v2: the shorter of (r_l, −t_l) and the next row (r_{l+2}, −t_{l+2}).
    let (q, rem_next) = rem_prev.divrem(&rem_cur);
    let t_next = &t_prev - &(&BigInt::from_biguint(q) * &t_cur);
    let norm = |a: &BigInt, b: &BigInt| -> BigUint {
        &(a.magnitude() * a.magnitude()) + &(b.magnitude() * b.magnitude())
    };
    let cand_prev = (BigInt::from_biguint(rem_prev), t_prev.neg());
    let cand_next = (BigInt::from_biguint(rem_next), t_next.neg());
    let (mut a2, mut b2) = if norm(&cand_prev.0, &cand_prev.1) <= norm(&cand_next.0, &cand_next.1) {
        cand_prev
    } else {
        cand_next
    };
    // Orient the basis so det = a1·b2 − a2·b1 = +r: `decompose` rounds
    // coordinates via Cramer's rule and relies on the sign (negating a
    // lattice vector keeps it in the lattice, so this is free).
    let det = &(&a1 * &b2) - &(&a2 * &b1);
    if det.is_negative() {
        a2 = a2.neg();
        b2 = b2.neg();
    }
    debug_assert_eq!(
        (&(&a1 * &b2) - &(&a2 * &b1)).magnitude(),
        r,
        "GLV basis determinant must be ±r"
    );
    let shift = r.bits() + 64;
    let two_s = BigInt::from_biguint(BigUint::one().shl(shift));
    let round1 = (&b2 * &two_s).div_round(r);
    let round2 = (&b1.neg() * &two_s).div_round(r);
    GlvBasis {
        a1,
        b1,
        a2,
        b2,
        round1,
        round2,
        shift,
    }
}

/// Splits `k ∈ [0, r)` into `(k₁, k₂)` with `k₁ + k₂·λ ≡ k (mod r)` and
/// `|k₁|, |k₂| ≈ √r`, by rounding `k`'s coordinates in the reduced lattice
/// basis to the nearest lattice point and subtracting. The basis carries
/// its own precomputed `r`-derived rounding data.
pub fn decompose(k: &BigUint, basis: &GlvBasis) -> (BigInt, BigInt) {
    let k_int = BigInt::from_biguint(k.clone());
    // (c1, c2) = ⌊(k, 0)·B⁻¹⌉ via Cramer's rule (det(B) = +r), using the
    // precomputed shift-scaled constants instead of dividing by r.
    let c1 = shift_round(&(&basis.round1 * &k_int), basis.shift);
    let c2 = shift_round(&(&basis.round2 * &k_int), basis.shift);
    let k1 = &(&k_int - &(&c1 * &basis.a1)) - &(&c2 * &basis.a2);
    let k2 = (&(&c1 * &basis.b1) + &(&c2 * &basis.b2)).neg();
    (k1, k2)
}

/// A full-rank 4-dimensional sublattice of
/// `{(x₀..x₃) : Σ xᵢ ζⁱ ≡ 0 (mod r)}` with precomputed Cramer data for
/// round-off decomposition: the coordinates of `(k, 0, 0, 0)` in the row
/// basis are `k·adj_col[i]/det` (first column of the adjugate).
#[derive(Clone, Debug)]
pub struct Dim4Basis {
    rows: [[BigInt; 4]; 4],
    /// `⌊adj_col[i]·2^shift/det⌉` — shift-scaled Cramer coordinates.
    rounds: [BigInt; 4],
    shift: usize,
}

impl Dim4Basis {
    /// The basis rows (each a lattice vector).
    pub fn rows(&self) -> &[[BigInt; 4]; 4] {
        &self.rows
    }
}

/// 3×3 determinant.
fn det3(m: [[&BigInt; 3]; 3]) -> BigInt {
    let term = |a: &BigInt, b: &BigInt, c: &BigInt| -> BigInt { &(a * b) * c };
    let pos = &(&term(m[0][0], m[1][1], m[2][2]) + &term(m[0][1], m[1][2], m[2][0]))
        + &term(m[0][2], m[1][0], m[2][1]);
    let neg = &(&term(m[0][2], m[1][1], m[2][0]) + &term(m[0][0], m[1][2], m[2][1]))
        + &term(m[0][1], m[1][0], m[2][2]);
    &pos - &neg
}

/// Builds the BN-family 4-dimensional ψ-lattice basis from the curve
/// generator `t`, for the eigenvalue `ζ = p mod r = 6t²`.
///
/// The BN parametrization gives the *exact* integer identity
/// `ζ² + (6t+3)ζ + (6t+1) = r`, i.e. ζ satisfies a monic quadratic with
/// `O(t)`-sized coefficients mod r; together with the cyclotomic relation
/// `ζ⁴ ≡ ζ² − 1 (mod r)` (ζ is a primitive 12th root of unity), the four
/// shifts of that relation give a basis with all entries `O(6t)` — so BN
/// G2 scalars split into four `|t|`-bit sub-scalars, exactly like the BLS
/// power split.
///
/// Every row is validated against `Σ rowⱼ·ζʲ ≡ 0 (mod r)` and the basis
/// against `det ≠ 0`; returns `None` (caller falls back to the 2-dim
/// split) if the parametrization does not actually satisfy the
/// identities.
pub fn bn_psi_basis(t: &BigInt, zeta: &BigUint, r: &BigUint) -> Option<Dim4Basis> {
    let six_t = t * &BigInt::from_i64(6);
    let c1 = &six_t + &BigInt::one(); // 6t+1
    let c2 = &six_t + &BigInt::from_i64(2); // 6t+2
    let c3 = &six_t + &BigInt::from_i64(3); // 6t+3
    let one = BigInt::one();
    let zero = BigInt::zero();
    let rows: [[BigInt; 4]; 4] = [
        [c1.clone(), c3.clone(), one.clone(), zero.clone()],
        [zero.clone(), c1.clone(), c3.clone(), one.clone()],
        [one.neg(), zero.clone(), c2.clone(), c3.clone()],
        [c3.neg(), one.neg(), c3.clone(), c2.clone()],
    ];
    // Validate lattice membership of every row.
    let zeta_pows = {
        let mut pows = vec![BigUint::one()];
        let mut prev = BigUint::one();
        for _ in 1..4 {
            prev = (&prev * zeta).rem(r);
            pows.push(prev.clone());
        }
        pows
    };
    for row in &rows {
        let mut acc = BigInt::zero();
        for (x, zp) in row.iter().zip(&zeta_pows) {
            acc = &acc + &(x * &BigInt::from_biguint(zp.clone()));
        }
        if !acc.rem_euclid(r).is_zero() {
            return None;
        }
    }
    // First-column cofactors C_{i0} = (−1)^i · minor(i, 0), and the
    // determinant via expansion down that column.
    let minor = |skip: usize| -> [[&BigInt; 3]; 3] {
        let mut out: Vec<[&BigInt; 3]> = Vec::with_capacity(3);
        for (i, row) in rows.iter().enumerate() {
            if i != skip {
                out.push([&row[1], &row[2], &row[3]]);
            }
        }
        [out[0], out[1], out[2]]
    };
    let mut adj_col: [BigInt; 4] = std::array::from_fn(|i| det3(minor(i)));
    for (i, c) in adj_col.iter_mut().enumerate() {
        if i % 2 == 1 {
            *c = c.neg();
        }
    }
    let mut det = BigInt::zero();
    for (row, cof) in rows.iter().zip(&adj_col) {
        det = &det + &(&row[0] * cof);
    }
    if det.is_zero() {
        return None;
    }
    // Fold the determinant's sign into the adjugate column so decompose4
    // can round against the positive magnitude.
    if det.is_negative() {
        for c in adj_col.iter_mut() {
            *c = c.neg();
        }
    }
    let shift = r.bits() + 64;
    let two_s = BigInt::from_biguint(BigUint::one().shl(shift));
    let rounds: [BigInt; 4] =
        std::array::from_fn(|i| (&adj_col[i] * &two_s).div_round(det.magnitude()));
    Some(Dim4Basis {
        rows,
        rounds,
        shift,
    })
}

/// Splits `k ∈ [0, r)` into `(k₀..k₃)` with `Σ kᵢ·ζⁱ ≡ k (mod r)` by
/// rounding `(k, 0, 0, 0)` to the nearest point of the 4-dimensional
/// lattice; sub-scalar sizes are bounded by the basis row norms (`O(|6t|)`
/// for the BN basis).
pub fn decompose4(k: &BigUint, basis: &Dim4Basis) -> [BigInt; 4] {
    let k_int = BigInt::from_biguint(k.clone());
    let c: [BigInt; 4] =
        std::array::from_fn(|i| shift_round(&(&k_int * &basis.rounds[i]), basis.shift));
    let mut out: [BigInt; 4] = std::array::from_fn(|_| BigInt::zero());
    out[0] = k_int;
    for (ci, row) in c.iter().zip(&basis.rows) {
        for (o, x) in out.iter_mut().zip(row) {
            *o = &*o - &(ci * x);
        }
    }
    out
}

/// Balanced base-`t` digit expansion: returns `d₀ … d_{m−1}` with
/// `k = Σ dᵢ·tⁱ` exactly over Z and `|dᵢ| ≤ ⌈|t|/2⌉`.
///
/// Used for the GLS split on BLS curves, where ψ's eigenvalue mod r *is*
/// the curve generator `t` (`p ≡ t mod r` because `p − t` is a multiple of
/// `r(t)` in the BLS parametrization), so `[k]Q = Σ [dᵢ] ψⁱ(Q)`.
///
/// # Panics
///
/// Panics if `|t| < 2`.
pub fn balanced_digits(k: &BigUint, t: &BigInt) -> Vec<BigInt> {
    let t_abs = t.magnitude();
    assert!(t_abs.bits() >= 2, "digit base must satisfy |t| >= 2");
    let half = t_abs.shr(1);
    let mut acc = BigInt::from_biguint(k.clone());
    let mut digits = Vec::new();
    while !acc.is_zero() {
        let r0 = acc.rem_euclid(t_abs);
        // Balance the remainder into (−|t|/2, |t|/2].
        let d = if r0 > half {
            // r0 = acc mod |t| < |t|, so the subtraction cannot underflow.
            BigInt::from_sign_magnitude(true, t_abs.checked_sub(&r0).unwrap_or_default())
        } else {
            BigInt::from_biguint(r0)
        };
        acc = (&acc - &d).div_exact(t);
        digits.push(d);
    }
    digits
}

/// Joint sparse form (Solinas) of a pair of non-negative integers:
/// little-endian signed digit columns `(u₀ⱼ, u₁ⱼ)` with `uᵢⱼ ∈ {−1, 0, 1}`
/// and `kᵢ = Σⱼ uᵢⱼ·2ʲ`, minimising the *joint* Hamming weight (the number
/// of columns where either digit is non-zero) over all joint signed-binary
/// expansions — asymptotically `len/2` non-zero columns, against `5·len/9`
/// for two independent NAFs.
///
/// This is the recoding behind the two-term Straus kernel: a 2-GLV pair
/// `(k₁, k₂)` costs one shared doubling chain plus roughly one addition
/// every other column, with only the tiny `{P, φP, P ± φP}` table (no
/// per-scalar odd-multiples windows). Signs of negated sub-scalars are
/// folded in by flipping that row's digits, which preserves both the value
/// identity and the sparseness bound.
pub fn jsf(k0: &BigUint, k1: &BigUint) -> Vec<(i8, i8)> {
    // HMV Algorithm 3.50: track a carry dᵢ ∈ {0, 1} per row; each step
    // inspects (kᵢ + dᵢ) mod 8 only, so the scalars live in two in-place
    // little-endian limb scratches that just shift right (no per-column
    // bignum allocation — this recoding sits on the `g1_mul` hot path).
    let mut limbs = [k0.limbs().to_vec(), k1.limbs().to_vec()];
    let is_zero = |l: &[u64]| l.iter().all(|&x| x == 0);
    let shr1 = |l: &mut [u64]| {
        let mut top = 0u64;
        for limb in l.iter_mut().rev() {
            let next = *limb & 1;
            *limb = (*limb >> 1) | (top << 63);
            top = next;
        }
    };
    let mut d = [0i64; 2];
    let mut out = Vec::with_capacity(k0.bits().max(k1.bits()) + 1);
    while !(is_zero(&limbs[0]) && is_zero(&limbs[1]) && d == [0, 0]) {
        let l = [
            ((limbs[0].first().copied().unwrap_or(0) & 7) as i64 + d[0]) & 7,
            ((limbs[1].first().copied().unwrap_or(0) & 7) as i64 + d[1]) & 7,
        ];
        let mut u = [0i64; 2];
        for i in 0..2 {
            if l[i] % 2 == 1 {
                // Signed residue mod 4 (1 → +1, 3 → −1), flipped when this
                // row is ±3 mod 8 and the partner is 2 mod 4 — the Solinas
                // rule that keeps the joint expansion sparse.
                u[i] = 2 - (l[i] % 4);
                if (l[i] == 3 || l[i] == 5) && l[1 - i] % 4 == 2 {
                    u[i] = -u[i];
                }
            }
        }
        for i in 0..2 {
            // Carry toggles exactly when the emitted digit over/undershoots
            // the carried value: (d, u) ∈ {(0, −1), (1, +1)}.
            if 2 * d[i] == 1 + u[i] {
                d[i] = 1 - d[i];
            }
            shr1(&mut limbs[i]);
        }
        out.push((u[0] as i8, u[1] as i8));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_basis(r: u64, lambda: u64) {
        let rb = BigUint::from_u64(r);
        let lb = BigUint::from_u64(lambda);
        let basis = lattice_basis(&rb, &lb);
        // Both vectors are in the lattice: a + b·λ ≡ 0 (mod r).
        for (a, b) in [(&basis.a1, &basis.b1), (&basis.a2, &basis.b2)] {
            let a_part = a.rem_euclid(&rb).to_u64().unwrap() as u128;
            let b_part = b.rem_euclid(&rb).to_u64().unwrap() as u128;
            assert_eq!(
                (a_part + lambda as u128 * b_part) % r as u128,
                0,
                "lattice membership"
            );
        }
    }

    #[test]
    fn basis_vectors_lie_in_the_lattice() {
        // r = 1009 (prime), λ = 374 — arbitrary eigenvalue.
        check_basis(1009, 374);
        check_basis(7919, 6012);
    }

    #[test]
    fn decompose_recomposes_small() {
        let r = BigUint::from_u64(1009);
        let lambda = BigUint::from_u64(374);
        let basis = lattice_basis(&r, &lambda);
        for k in 0..1009u64 {
            let (k1, k2) = decompose(&BigUint::from_u64(k), &basis);
            let recomposed = &k1 + &(&k2 * &BigInt::from_biguint(lambda.clone()));
            assert_eq!(recomposed.rem_euclid(&r), BigUint::from_u64(k), "k = {k}");
            // √1009 ≈ 32; Euclid guarantees the same order of magnitude.
            assert!(k1.magnitude().bits() <= 8, "k1 too long for k = {k}");
            assert!(k2.magnitude().bits() <= 8, "k2 too long for k = {k}");
        }
    }

    #[test]
    fn balanced_digits_reconstruct() {
        for t in [-13i64, 13, -64, 97] {
            let tb = BigInt::from_i64(t);
            for k in [0u64, 1, 5, 96, 97, 98, 12345, u32::MAX as u64] {
                let digits = balanced_digits(&BigUint::from_u64(k), &tb);
                let mut acc = BigInt::zero();
                for d in digits.iter().rev() {
                    acc = &(&acc * &tb) + d;
                }
                assert_eq!(acc, BigInt::from_i64(k as i64), "t = {t}, k = {k}");
                for d in &digits {
                    let twice = d.magnitude() + d.magnitude();
                    let bound = tb.magnitude() + &BigUint::one();
                    assert!(
                        twice <= bound,
                        "digit {d} out of balanced range for t = {t}"
                    );
                }
            }
        }
        assert!(balanced_digits(&BigUint::zero(), &BigInt::from_i64(5)).is_empty());
    }

    /// Reconstructs both rows of a JSF expansion and checks the digit and
    /// sparseness invariants.
    fn check_jsf(k0: u128, k1: u128) {
        let digits = jsf(
            &BigUint::from_limbs(vec![k0 as u64, (k0 >> 64) as u64]),
            &BigUint::from_limbs(vec![k1 as u64, (k1 >> 64) as u64]),
        );
        let mut acc = [0i128; 2];
        for (j, &(u0, u1)) in digits.iter().enumerate() {
            for (a, u) in acc.iter_mut().zip([u0, u1]) {
                assert!((-1..=1).contains(&u), "digit out of range");
                *a += (u as i128) << j;
            }
        }
        assert_eq!(acc[0] as u128, k0, "row 0 reconstructs for ({k0}, {k1})");
        assert_eq!(acc[1] as u128, k1, "row 1 reconstructs for ({k0}, {k1})");
        // JSF property: of any three consecutive columns, at most two are
        // jointly non-zero.
        for w in digits.windows(3) {
            let nonzero = w.iter().filter(|&&(a, b)| a != 0 || b != 0).count();
            assert!(nonzero <= 2, "three consecutive non-zero columns");
        }
    }

    #[test]
    fn jsf_reconstructs_exhaustively_small() {
        for k0 in 0..64u128 {
            for k1 in 0..64u128 {
                check_jsf(k0, k1);
            }
        }
        assert!(jsf(&BigUint::zero(), &BigUint::zero()).is_empty());
    }

    #[test]
    fn jsf_reconstructs_wide() {
        let mut state = 0x1234_5678u128;
        let mut next = || {
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(99);
            state ^ (state >> 17)
        };
        for _ in 0..64 {
            // Top bits clear: a k-bit JSF can carry into column k, and the
            // i128 reconstruction accumulator must not overflow there.
            check_jsf(next() >> 2, next() >> 2);
        }
        // Very unbalanced lengths (top bits clear so the i128 reconstruction
        // accumulator cannot overflow on the length-l+1 JSF column).
        check_jsf(u128::MAX >> 2, 1);
        check_jsf(0, u128::MAX >> 2);
    }
}
