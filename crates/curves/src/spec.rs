//! Curve family polynomials and the named parameter sets of Table 2.
//!
//! A [`CurveSpec`] is the *declarative* description of a pairing-friendly
//! curve — family plus the sparse generator `t` plus tower non-residue
//! hints. Everything else (p, r, trace, cofactors, twist type, generators)
//! is *derived and validated* by [`crate::Curve::from_spec`], so a wrong
//! constant can never silently produce a broken curve.

use finesse_ff::{BigInt, BigUint};

/// Pairing-friendly curve family (determines the parameter polynomials and
/// the optimal-Ate loop structure).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Family {
    /// Barreto–Naehrig: k = 12, p and r quartic in t, loop on `|6t+2|`.
    Bn,
    /// Barreto–Lynn–Scott with k = 12, loop on `|t|`.
    Bls12,
    /// Barreto–Lynn–Scott with k = 24, loop on `|t|`.
    Bls24,
}

impl Family {
    /// Embedding degree k.
    pub fn embedding_degree(self) -> usize {
        match self {
            Family::Bn | Family::Bls12 => 12,
            Family::Bls24 => 24,
        }
    }

    /// The base-field characteristic p(t).
    pub fn prime(self, t: &BigInt) -> BigInt {
        match self {
            Family::Bn => t.eval_poly(&[1, 6, 24, 36, 36]),
            Family::Bls12 => {
                // p = (t − 1)² (t⁴ − t² + 1)/3 + t
                let tm1 = t - &BigInt::one();
                let r = self.order(t);
                let num = &(&tm1 * &tm1) * &r;
                // num = (t-1)^2 * r is a product of a square and the
                // (positive) group order, so it is never negative.
                let third = BigInt::from_biguint(
                    num.to_biguint()
                        .unwrap_or_default()
                        .div_exact(&BigUint::from_u64(3)),
                );
                &third + t
            }
            Family::Bls24 => {
                let tm1 = t - &BigInt::one();
                let r = self.order(t);
                let num = &(&tm1 * &tm1) * &r;
                // num = (t-1)^2 * r is a product of a square and the
                // (positive) group order, so it is never negative.
                let third = BigInt::from_biguint(
                    num.to_biguint()
                        .unwrap_or_default()
                        .div_exact(&BigUint::from_u64(3)),
                );
                &third + t
            }
        }
    }

    /// The pairing group order r(t).
    pub fn order(self, t: &BigInt) -> BigInt {
        match self {
            Family::Bn => t.eval_poly(&[1, 6, 18, 36, 36]),
            Family::Bls12 => t.eval_poly(&[1, 0, -1, 0, 1]),
            Family::Bls24 => t.eval_poly(&[1, 0, 0, 0, -1, 0, 0, 0, 1]),
        }
    }

    /// The Frobenius trace tr(t) (so #E(F_p) = p + 1 − tr).
    pub fn trace(self, t: &BigInt) -> BigInt {
        match self {
            Family::Bn => t.eval_poly(&[1, 0, 6]),
            Family::Bls12 | Family::Bls24 => t + &BigInt::one(),
        }
    }

    /// The optimal-Ate Miller loop parameter: `6t + 2` for BN, `t` for BLS.
    pub fn miller_param(self, t: &BigInt) -> BigInt {
        match self {
            Family::Bn => &(t * &BigInt::from_i64(6)) + &BigInt::from_i64(2),
            Family::Bls12 | Family::Bls24 => t.clone(),
        }
    }

    /// Human-readable family name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Bn => "BN",
            Family::Bls12 => "BLS12",
            Family::Bls24 => "BLS24",
        }
    }
}

/// Declarative parameters for a named curve.
#[derive(Clone, Debug)]
pub struct CurveSpec {
    /// Curve name as used in the paper (e.g. `"BN254N"`).
    pub name: &'static str,
    /// Curve family.
    pub family: Family,
    /// Sparse representation of t: each `(sign, e)` contributes `sign·2^e`.
    pub t_terms: &'static [(i8, u32)],
    /// Known G1 curve coefficient b (verified, not trusted); `None` scans.
    pub b_hint: Option<u64>,
    /// Quadratic non-residue β for `F_p2 = F_p[u]/(u² − β)`.
    pub beta: i64,
    /// ξ₂ = c0 + c1·u for F_p4 (k = 24 towers only).
    pub xi2: Option<(i64, i64)>,
    /// Sextic non-residue ξ as coefficients over F_p in tower order
    /// (2 entries for k = 12, 4 for k = 24).
    pub xi: &'static [i64],
    /// Expected bit length of p (Table 2, validated at construction).
    pub p_bits: usize,
    /// Expected bit length of r (Table 2, validated at construction).
    pub r_bits: usize,
    /// Security level reported in Table 2 (bits), for reporting only.
    pub table2_security: u32,
}

/// BN254N (Nogami): `t = −(2^62 + 2^55 + 1)`, the curve of the paper's
/// headline evaluation (Table 6, Figures 6, 11, 12).
pub const BN254N: CurveSpec = CurveSpec {
    name: "BN254N",
    family: Family::Bn,
    t_terms: &[(-1, 62), (-1, 55), (-1, 0)],
    b_hint: Some(2),
    beta: -1,
    xi2: None,
    xi: &[1, 1],
    p_bits: 254,
    r_bits: 254,
    table2_security: 100,
};

/// BN462: `t = 2^114 + 2^101 − 2^14 − 1` (Barbulescu–Duquesne).
pub const BN462: CurveSpec = CurveSpec {
    name: "BN462",
    family: Family::Bn,
    t_terms: &[(1, 114), (1, 101), (-1, 14), (-1, 0)],
    b_hint: None,
    beta: -1,
    xi2: None,
    xi: &[1, 1],
    p_bits: 462,
    r_bits: 462,
    table2_security: 130,
};

/// BN638: `t = 2^158 − 2^128 − 2^68 + 1` (Aranha et al.).
pub const BN638: CurveSpec = CurveSpec {
    name: "BN638",
    family: Family::Bn,
    t_terms: &[(1, 158), (-1, 128), (-1, 68), (1, 0)],
    b_hint: None,
    beta: -1,
    xi2: None,
    xi: &[1, 1],
    p_bits: 638,
    r_bits: 638,
    table2_security: 153,
};

/// BLS12-381 (zkcrypto): `t = −(2^63 + 2^62 + 2^60 + 2^57 + 2^48 + 2^16)`.
pub const BLS12_381: CurveSpec = CurveSpec {
    name: "BLS12-381",
    family: Family::Bls12,
    t_terms: &[(-1, 63), (-1, 62), (-1, 60), (-1, 57), (-1, 48), (-1, 16)],
    b_hint: Some(4),
    beta: -1,
    xi2: None,
    xi: &[1, 1],
    p_bits: 381,
    r_bits: 255,
    table2_security: 123,
};

/// BLS12-446: `t = −(2^74 + 2^73 + 2^63 + 2^57 + 2^50 + 2^17 + 1)`
/// (Barbulescu–Duquesne).
pub const BLS12_446: CurveSpec = CurveSpec {
    name: "BLS12-446",
    family: Family::Bls12,
    t_terms: &[
        (-1, 74),
        (-1, 73),
        (-1, 63),
        (-1, 57),
        (-1, 50),
        (-1, 17),
        (-1, 0),
    ],
    b_hint: None,
    beta: -1,
    xi2: None,
    xi: &[1, 1],
    p_bits: 446,
    r_bits: 299,
    table2_security: 130,
};

/// BLS12-638: `t = −2^107 + 2^105 + 2^93 + 2^5` (Aranha et al.,
/// "Implementing pairings at the 192-bit security level").
pub const BLS12_638: CurveSpec = CurveSpec {
    name: "BLS12-638",
    family: Family::Bls12,
    t_terms: &[(-1, 107), (1, 105), (1, 93), (1, 5)],
    b_hint: None,
    beta: -1,
    xi2: None,
    xi: &[1, 1],
    p_bits: 638,
    r_bits: 427,
    table2_security: 148,
};

/// BLS24-509: `t = −2^51 − 2^28 + 2^11 − 1` (Barbulescu–Duquesne).
pub const BLS24_509: CurveSpec = CurveSpec {
    name: "BLS24-509",
    family: Family::Bls24,
    t_terms: &[(-1, 51), (-1, 28), (1, 11), (-1, 0)],
    b_hint: None,
    beta: -1,
    xi2: Some((1, 1)),
    // ξ = v, i.e. coefficients (1, u, v, uv) = [0, 0, 1, 0].
    xi: &[0, 0, 1, 0],
    p_bits: 509,
    r_bits: 409,
    table2_security: 192,
};

/// All seven curves of Table 2, in the paper's order.
pub fn all_specs() -> [&'static CurveSpec; 7] {
    [
        &BN254N, &BN462, &BN638, &BLS12_381, &BLS12_446, &BLS12_638, &BLS24_509,
    ]
}

/// Looks up a spec by (case-insensitive) name.
pub fn spec_by_name(name: &str) -> Option<&'static CurveSpec> {
    all_specs()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

impl CurveSpec {
    /// The curve generator t as a signed integer.
    pub fn t(&self) -> BigInt {
        BigInt::from_power_terms(self.t_terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_polynomials_at_minus_one() {
        let t = BigInt::from_i64(-1);
        assert_eq!(Family::Bn.prime(&t), BigInt::from_i64(19));
        assert_eq!(Family::Bn.order(&t), BigInt::from_i64(13));
        assert_eq!(Family::Bn.trace(&t), BigInt::from_i64(7));
        // p + 1 − tr = r for BN
        assert_eq!(
            &(&Family::Bn.prime(&t) + &BigInt::one()) - &Family::Bn.trace(&t),
            Family::Bn.order(&t)
        );
    }

    #[test]
    fn bls12_polynomial_identities() {
        // r = t⁴ − t² + 1, and r | p + 1 − tr must hold for all t = 1 mod 3.
        let t = BigInt::from_i64(4); // 4 = 1 mod 3
        let p = Family::Bls12.prime(&t);
        let r = Family::Bls12.order(&t);
        let tr = Family::Bls12.trace(&t);
        let n = &(&p + &BigInt::one()) - &tr;
        let rr = n.to_biguint().unwrap().divrem(&r.to_biguint().unwrap()).1;
        assert!(rr.is_zero(), "r divides the curve order");
    }

    #[test]
    fn miller_params() {
        let t = BigInt::from_i64(5);
        assert_eq!(Family::Bn.miller_param(&t), BigInt::from_i64(32));
        assert_eq!(Family::Bls12.miller_param(&t), BigInt::from_i64(5));
    }

    #[test]
    fn table2_bit_lengths_of_t() {
        // log |t| column of Table 2 (±1 from the paper's rounding).
        let expect = [
            (BN254N, 63usize),
            (BN462, 115),
            (BN638, 158),
            (BLS12_381, 64),
            (BLS12_446, 75),
            (BLS12_638, 108),
            (BLS24_509, 52),
        ];
        for (spec, bits) in expect {
            let observed = spec.t().magnitude().bits();
            assert!(
                (observed as i64 - bits as i64).abs() <= 1,
                "{}: |t| has {} bits, expected about {}",
                spec.name,
                observed,
                bits
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(spec_by_name("bls12-381").unwrap().name, "BLS12-381");
        assert!(spec_by_name("nonexistent").is_none());
    }
}
