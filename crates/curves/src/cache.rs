//! Bounded point-keyed caching for per-point precomputations.
//!
//! Production verifiers see the same handful of curve points over and
//! over — long-lived BLS public keys, a KZG SRS element `[τ]₂`, the G2
//! generator itself — and several layers want to attach expensive
//! precomputed state to them (Miller-loop line schedules, fixed-base
//! tables). [`PointKeyedCache`] is the shared plumbing: a small
//! LRU-evicting map from a point's *canonical coordinates* to an
//! `Arc`-shared value, so repeat lookups hand out the same precomputation
//! without rebuilding it and memory stays bounded no matter how many
//! distinct points an adversarial workload cycles through.
//!
//! Keys are built with [`g1_point_key`] / [`g2_point_key`] from the
//! canonical (non-Montgomery) residues of each coordinate, with explicit
//! length framing per limb run — two points collide iff they are the same
//! group element, independent of any internal representation.

use crate::point::Affine;
use finesse_ff::{Fp, Fq};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// A cache key: canonical coordinate limbs with length framing.
pub type PointKey = Vec<u64>;

/// Appends one base-field element to a key: canonical limb count, then
/// the limbs themselves (length framing keeps concatenations prefix-free).
fn push_fp(key: &mut PointKey, c: &Fp) {
    let limbs = c.to_biguint();
    let limbs = limbs.limbs();
    key.push(limbs.len() as u64);
    key.extend_from_slice(limbs);
}

/// The canonical key of a G1 point. The identity gets a reserved tag no
/// finite point can produce (its coordinate framing would start with a
/// limb count, never `u64::MAX`).
pub fn g1_point_key(p: &Affine<Fp>) -> PointKey {
    if p.infinity {
        return vec![u64::MAX];
    }
    let mut key = Vec::new();
    push_fp(&mut key, &p.x);
    push_fp(&mut key, &p.y);
    key
}

/// The canonical key of a G2 (twist) point: the tower-coefficient count
/// followed by each coefficient of `x` then `y`, length-framed like
/// [`g1_point_key`].
pub fn g2_point_key(q: &Affine<Fq>) -> PointKey {
    if q.infinity {
        return vec![u64::MAX];
    }
    let mut key = vec![q.x.coeffs().len() as u64];
    for c in q.x.coeffs().iter().chain(q.y.coeffs()) {
        push_fp(&mut key, c);
    }
    key
}

/// A bounded map from [`PointKey`]s to `Arc`-shared precomputations with
/// least-recently-used eviction.
///
/// Values are handed out as `Arc<V>`, so an evicted entry stays alive for
/// any caller still holding it — eviction only bounds what the cache
/// itself keeps warm. Lookups and inserts are `O(capacity)` in the worst
/// case (the recency list is a plain deque); capacities here are small
/// (tens of entries), far below where that matters next to the
/// precomputations being cached.
pub struct PointKeyedCache<V> {
    capacity: usize,
    map: HashMap<PointKey, Arc<V>>,
    /// Recency order, least-recently-used at the front.
    order: VecDeque<PointKey>,
}

impl<V> PointKeyedCache<V> {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PointKeyedCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The eviction bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Marks `key` most-recently-used.
    fn touch(&mut self, key: &[u64]) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            // `pos` came from `position` on the same deque, so remove
            // always yields the entry.
            if let Some(k) = self.order.remove(pos) {
                self.order.push_back(k);
            }
        }
    }

    /// The cached value for `key`, if present (refreshes its recency).
    pub fn get(&mut self, key: &[u64]) -> Option<Arc<V>> {
        let hit = self.map.get(key).cloned();
        if hit.is_some() {
            self.touch(key);
        }
        hit
    }

    /// The cached value for `key`, building (and caching) it with `make`
    /// on a miss. Evicts the least-recently-used entry when full.
    pub fn get_or_insert_with(&mut self, key: PointKey, make: impl FnOnce() -> V) -> Arc<V> {
        if let Some(hit) = self.get(&key) {
            return hit;
        }
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        let value = Arc::new(make());
        self.map.insert(key.clone(), Arc::clone(&value));
        self.order.push_back(key);
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_insert_builds_once_and_shares() {
        let mut cache = PointKeyedCache::new(4);
        let mut builds = 0;
        let a = cache.get_or_insert_with(vec![1], || {
            builds += 1;
            "va"
        });
        let b = cache.get_or_insert_with(vec![1], || {
            builds += 1;
            "vb"
        });
        assert_eq!(builds, 1, "second lookup is a hit");
        assert!(Arc::ptr_eq(&a, &b), "hits share the same allocation");
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let mut cache = PointKeyedCache::new(2);
        cache.get_or_insert_with(vec![1], || 1u32);
        cache.get_or_insert_with(vec![2], || 2);
        // Touch key 1, making key 2 the LRU entry.
        assert!(cache.get(&[1]).is_some());
        cache.get_or_insert_with(vec![3], || 3);
        assert_eq!(cache.len(), 2, "capacity is a hard bound");
        assert!(cache.get(&[1]).is_some(), "recently used survives");
        assert!(cache.get(&[2]).is_none(), "LRU entry was evicted");
        assert!(cache.get(&[3]).is_some());
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut cache = PointKeyedCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.get_or_insert_with(vec![9], || ());
        assert_eq!(cache.len(), 1);
    }
}
