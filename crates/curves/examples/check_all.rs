fn main() {
    for spec in finesse_curves::all_specs() {
        let start = std::time::Instant::now();
        match finesse_curves::Curve::from_spec(spec) {
            Ok(c) => println!(
                "{:>10}: OK p={}b r={}b twist={:?} g2cf={}b  [{:?}]",
                spec.name,
                c.p().bits(),
                c.r().bits(),
                c.twist(),
                c.g2_cofactor().bits(),
                start.elapsed()
            ),
            Err(e) => println!("{:>10}: FAILED — {e}", spec.name),
        }
    }
}
