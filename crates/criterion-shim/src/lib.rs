//! Offline stand-in for the subset of the `criterion` crate that the
//! `finesse-bench` benches use.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be vendored. This crate keeps the same source-level
//! API (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! `black_box`, `criterion_group!`, `criterion_main!`) and implements a
//! small wall-clock harness behind it: each target is warmed up, run for a
//! fixed number of timed batches, and reported as median ns/iter on stdout.
//! Swapping back to upstream criterion is a one-line change in the
//! workspace manifest; no bench source needs to change.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a benchmark within a group, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the batch size so one sample takes roughly 1ms, keeping
        // total time bounded for both fast field ops and slow full pairings.
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(1);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ns[ns.len() / 2]
    }
}

/// Top-level harness, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Upstream criterion parses CLI args here; the shim accepts and ignores
    /// them (notably `--bench`/`--test` passed by `cargo bench`/`cargo test`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: fmt::Display>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.to_string(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }
}

/// Group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<S: fmt::Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<S: fmt::Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher::new(sample_size);
    f(&mut bencher);
    println!("{:<48} {:>14.1} ns/iter", id, bencher.median_ns_per_iter());
}

/// Mirrors `criterion::criterion_group!` — both the plain list form and the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
