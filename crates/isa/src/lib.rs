//! # finesse-isa
//!
//! The RISC-flavoured F_p-level instruction set with VLIW extension
//! (paper §3.2): linear operations (`NEG DBL TPL ADD SUB`), multiplicative
//! operations (`SQR MUL`), the iterative inverse (`INV`), and the
//! miscellaneous `NOP`/`CVT`/`ICV` (post/pre I/O Montgomery-format
//! conversions). All operands are registers in on-chip register banks;
//! wide instructions pack one operation per issue slot.
//!
//! Instructions encode to 32 bits — `[op:5 | dst:9 | src1:9 | src2:9]` —
//! with each register field split into bank and index bits according to
//! the hardware's bank count ([`EncodingSpec`]), mirroring the hex program
//! images of the paper's Figure 3.

use std::fmt;

/// Machine opcode.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// No operation (VLIW slot padding).
    Nop = 0,
    /// `dst = src1 + src2`.
    Add = 1,
    /// `dst = src1 − src2`.
    Sub = 2,
    /// `dst = −src1`.
    Neg = 3,
    /// `dst = 2·src1`.
    Dbl = 4,
    /// `dst = 3·src1`.
    Tpl = 5,
    /// `dst = src1 · src2`.
    Mul = 6,
    /// `dst = src1²`.
    Sqr = 7,
    /// `dst = src1⁻¹` (iterative unit).
    Inv = 8,
    /// Output conversion: Montgomery → canonical, `dst = io port`,
    /// `src1 = register`.
    Cvt = 9,
    /// Input conversion: canonical → Montgomery, `dst = register`,
    /// `src1 = io port`.
    Icv = 10,
}

impl Opcode {
    /// All defined opcodes.
    pub const ALL: [Opcode; 11] = [
        Opcode::Nop,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Neg,
        Opcode::Dbl,
        Opcode::Tpl,
        Opcode::Mul,
        Opcode::Sqr,
        Opcode::Inv,
        Opcode::Cvt,
        Opcode::Icv,
    ];

    /// Decodes from the 5-bit field.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        Self::ALL.into_iter().find(|o| *o as u8 == v)
    }

    /// True for `ADD`/`SUB`/`NEG`/`DBL`/`TPL` (Short pipeline units).
    pub fn is_linear(self) -> bool {
        matches!(
            self,
            Opcode::Add | Opcode::Sub | Opcode::Neg | Opcode::Dbl | Opcode::Tpl
        )
    }

    /// True for `MUL`/`SQR` (the Long `mmul` unit).
    pub fn is_multiplicative(self) -> bool {
        matches!(self, Opcode::Mul | Opcode::Sqr)
    }

    /// Number of register sources read.
    pub fn n_sources(self) -> usize {
        match self {
            Opcode::Add | Opcode::Sub | Opcode::Mul => 2,
            Opcode::Neg | Opcode::Dbl | Opcode::Tpl | Opcode::Sqr | Opcode::Inv | Opcode::Cvt => 1,
            Opcode::Nop | Opcode::Icv => 0,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::Nop => "NOP",
            Opcode::Add => "ADD",
            Opcode::Sub => "SUB",
            Opcode::Neg => "NEG",
            Opcode::Dbl => "DBL",
            Opcode::Tpl => "TPL",
            Opcode::Mul => "MUL",
            Opcode::Sqr => "SQR",
            Opcode::Inv => "INV",
            Opcode::Cvt => "CVT",
            Opcode::Icv => "ICV",
        };
        f.write_str(s)
    }
}

/// A register: bank plus index within the bank.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Default)]
pub struct Reg {
    /// Register bank.
    pub bank: u8,
    /// Index within the bank.
    pub index: u16,
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.{}", self.bank, self.index)
    }
}

/// One machine operation (one issue slot's worth).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MachineOp {
    /// Opcode.
    pub op: Opcode,
    /// Destination register (or IO port for `CVT`).
    pub dst: Reg,
    /// First source (or IO port for `ICV`).
    pub src1: Reg,
    /// Second source (`ADD`/`SUB`/`MUL` only).
    pub src2: Reg,
}

impl MachineOp {
    /// A NOP slot.
    pub fn nop() -> Self {
        MachineOp {
            op: Opcode::Nop,
            dst: Reg::default(),
            src1: Reg::default(),
            src2: Reg::default(),
        }
    }
}

impl fmt::Display for MachineOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op.n_sources() {
            2 => write!(f, "{} {}, {}, {}", self.op, self.dst, self.src1, self.src2),
            1 => write!(f, "{} {}, {}", self.op, self.dst, self.src1),
            _ => write!(f, "{}", self.op),
        }
    }
}

/// A (possibly wide) instruction: one op per issue slot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WideInst {
    /// Slot operations (length = issue width; NOP-padded).
    pub slots: Vec<MachineOp>,
}

/// Field widths for the instruction encoding.
///
/// The compact form packs a slot into one 32-bit word (9-bit register
/// fields, at most 512 registers across banks); the `wide` form uses two
/// words per slot with 16-bit register fields for high-pressure programs
/// (large-k curves).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EncodingSpec {
    /// Bits of the register field used for the bank (0 for single-bank).
    pub bank_bits: u8,
    /// Issue width (slots per wide instruction).
    pub issue_width: u8,
    /// Two-word encoding with 16-bit register fields.
    pub wide: bool,
}

/// Error from encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A register's bank does not fit the bank field.
    BankOverflow(Reg),
    /// A register's index does not fit the index field.
    IndexOverflow(Reg),
    /// Unknown opcode bits during decode.
    BadOpcode(u8),
    /// Word stream length is not a multiple of the issue width.
    Truncated,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BankOverflow(r) => write!(f, "register {r} exceeds bank field"),
            CodecError::IndexOverflow(r) => write!(f, "register {r} exceeds index field"),
            CodecError::BadOpcode(v) => write!(f, "undefined opcode bits {v:#x}"),
            CodecError::Truncated => f.write_str("instruction stream truncated"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Register field width in bits.
const REG_BITS: u32 = 9;

impl EncodingSpec {
    /// Spec for a bank count and issue width (compact encoding).
    pub fn new(n_banks: u8, issue_width: u8) -> Self {
        let bank_bits = (8 - (n_banks.max(1) - 1).leading_zeros()) as u8;
        EncodingSpec {
            bank_bits,
            issue_width,
            wide: false,
        }
    }

    /// Chooses compact or wide encoding from the peak per-bank register
    /// demand.
    pub fn for_pressure(n_banks: u8, issue_width: u8, max_regs_per_bank: u32) -> Self {
        let mut spec = Self::new(n_banks, issue_width);
        if max_regs_per_bank > spec.regs_per_bank() {
            spec.wide = true;
        }
        spec
    }

    /// Words consumed per slot (1 compact, 2 wide).
    pub fn words_per_slot(&self) -> usize {
        if self.wide {
            2
        } else {
            1
        }
    }

    /// Registers addressable per bank under this spec.
    pub fn regs_per_bank(&self) -> u32 {
        if self.wide {
            1 << (16 - self.bank_bits as u32)
        } else {
            1 << (REG_BITS - self.bank_bits as u32)
        }
    }

    fn encode_reg(&self, r: Reg) -> Result<u32, CodecError> {
        let idx_bits = REG_BITS - self.bank_bits as u32;
        if (r.bank as u32) >= (1u32 << self.bank_bits) {
            return Err(CodecError::BankOverflow(r));
        }
        if (r.index as u32) >= (1 << idx_bits) {
            return Err(CodecError::IndexOverflow(r));
        }
        Ok(((r.bank as u32) << idx_bits) | r.index as u32)
    }

    fn decode_reg(&self, v: u32) -> Reg {
        let idx_bits = REG_BITS - self.bank_bits as u32;
        Reg {
            bank: (v >> idx_bits) as u8,
            index: (v & ((1 << idx_bits) - 1)) as u16,
        }
    }

    fn encode_reg16(&self, r: Reg) -> Result<u32, CodecError> {
        let idx_bits = 16 - self.bank_bits as u32;
        if (r.bank as u32) >= (1u32 << self.bank_bits) {
            return Err(CodecError::BankOverflow(r));
        }
        if (r.index as u32) >= (1 << idx_bits) {
            return Err(CodecError::IndexOverflow(r));
        }
        Ok(((r.bank as u32) << idx_bits) | r.index as u32)
    }

    fn decode_reg16(&self, v: u32) -> Reg {
        let idx_bits = 16 - self.bank_bits as u32;
        Reg {
            bank: (v >> idx_bits) as u8,
            index: (v & ((1 << idx_bits) - 1)) as u16,
        }
    }

    /// Encodes one op into its word(s).
    ///
    /// # Errors
    ///
    /// Fails if a register exceeds the field widths.
    pub fn encode_op(&self, m: &MachineOp) -> Result<Vec<u32>, CodecError> {
        if self.wide {
            let d = self.encode_reg16(m.dst)?;
            let s1 = self.encode_reg16(m.src1)?;
            let s2 = self.encode_reg16(m.src2)?;
            Ok(vec![((m.op as u32) << 16) | d, (s1 << 16) | s2])
        } else {
            let d = self.encode_reg(m.dst)?;
            let s1 = self.encode_reg(m.src1)?;
            let s2 = self.encode_reg(m.src2)?;
            Ok(vec![((m.op as u32) << 27) | (d << 18) | (s1 << 9) | s2])
        }
    }

    /// Decodes one op from its word(s).
    ///
    /// # Errors
    ///
    /// Fails on undefined opcode bits or truncation.
    pub fn decode_op(&self, words: &[u32]) -> Result<MachineOp, CodecError> {
        if self.wide {
            if words.len() < 2 {
                return Err(CodecError::Truncated);
            }
            let opv = (words[0] >> 16) as u8;
            let op = Opcode::from_u8(opv).ok_or(CodecError::BadOpcode(opv))?;
            Ok(MachineOp {
                op,
                dst: self.decode_reg16(words[0] & 0xFFFF),
                src1: self.decode_reg16(words[1] >> 16),
                src2: self.decode_reg16(words[1] & 0xFFFF),
            })
        } else {
            if words.is_empty() {
                return Err(CodecError::Truncated);
            }
            let w = words[0];
            let opv = (w >> 27) as u8;
            let op = Opcode::from_u8(opv).ok_or(CodecError::BadOpcode(opv))?;
            Ok(MachineOp {
                op,
                dst: self.decode_reg((w >> 18) & 0x1FF),
                src1: self.decode_reg((w >> 9) & 0x1FF),
                src2: self.decode_reg(w & 0x1FF),
            })
        }
    }

    /// Encodes a wide-instruction stream (NOP-padding slots).
    ///
    /// # Errors
    ///
    /// Propagates register-field overflows.
    pub fn encode(&self, insts: &[WideInst]) -> Result<Vec<u32>, CodecError> {
        let w = self.issue_width as usize;
        let mut out = Vec::with_capacity(insts.len() * w * self.words_per_slot());
        for inst in insts {
            debug_assert!(inst.slots.len() <= w, "more slots than issue width");
            for i in 0..w {
                let op = inst.slots.get(i).copied().unwrap_or_else(MachineOp::nop);
                out.extend(self.encode_op(&op)?);
            }
        }
        Ok(out)
    }

    /// Decodes a word stream back into wide instructions.
    ///
    /// # Errors
    ///
    /// Fails on truncated streams or undefined opcodes.
    pub fn decode(&self, words: &[u32]) -> Result<Vec<WideInst>, CodecError> {
        let wps = self.words_per_slot();
        let stride = self.issue_width as usize * wps;
        if !words.len().is_multiple_of(stride) {
            return Err(CodecError::Truncated);
        }
        words
            .chunks(stride)
            .map(|chunk| {
                let slots = chunk
                    .chunks(wps)
                    .map(|slot| self.decode_op(slot))
                    .collect::<Result<_, _>>()?;
                Ok(WideInst { slots })
            })
            .collect()
    }
}

/// A linked program image: encoding spec, instruction words, and the
/// preloaded constant registers (canonical values, converted by `ICV`
/// semantics at load time).
#[derive(Clone, Debug)]
pub struct ProgramImage {
    /// Encoding parameters.
    pub spec: EncodingSpec,
    /// Encoded instruction words.
    pub words: Vec<u32>,
    /// `(register, canonical value)` preloads for the constant table.
    pub const_preload: Vec<(Reg, finesse_ff::BigUint)>,
    /// Register assigned to each input IO port.
    pub input_regs: Vec<Reg>,
    /// Registers holding outputs at program end.
    pub output_regs: Vec<Reg>,
}

impl ProgramImage {
    /// Instruction-memory footprint in bytes (4 bytes per slot word).
    pub fn imem_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Hex dump of the first `n` words (the paper's Figure 3 program-image
    /// style).
    pub fn hex_head(&self, n: usize) -> String {
        self.words
            .iter()
            .take(n)
            .map(|w| format!("{w:08x}"))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
        assert_eq!(Opcode::from_u8(31), None);
    }

    #[test]
    fn classes() {
        assert!(Opcode::Add.is_linear());
        assert!(!Opcode::Mul.is_linear());
        assert!(Opcode::Sqr.is_multiplicative());
        assert!(!Opcode::Inv.is_multiplicative());
    }

    #[test]
    fn encode_decode_roundtrip_single_bank() {
        let spec = EncodingSpec::new(1, 1);
        assert_eq!(spec.regs_per_bank(), 512);
        let op = MachineOp {
            op: Opcode::Mul,
            dst: Reg {
                bank: 0,
                index: 511,
            },
            src1: Reg { bank: 0, index: 3 },
            src2: Reg { bank: 0, index: 42 },
        };
        let w = spec.encode_op(&op).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(spec.decode_op(&w).unwrap(), op);
    }

    #[test]
    fn wide_encoding_roundtrip() {
        let mut spec = EncodingSpec::for_pressure(1, 1, 900);
        assert!(spec.wide, "900 registers need the wide form");
        assert_eq!(spec.regs_per_bank(), 65536);
        spec.issue_width = 1;
        let op = MachineOp {
            op: Opcode::Sub,
            dst: Reg {
                bank: 0,
                index: 899,
            },
            src1: Reg { bank: 0, index: 4 },
            src2: Reg {
                bank: 0,
                index: 777,
            },
        };
        let w = spec.encode_op(&op).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(spec.decode_op(&w).unwrap(), op);
        let insts = vec![WideInst { slots: vec![op] }];
        let words = spec.encode(&insts).unwrap();
        assert_eq!(spec.decode(&words).unwrap(), insts);
    }

    #[test]
    fn encode_decode_roundtrip_multibank_vliw() {
        let spec = EncodingSpec::new(4, 3);
        assert_eq!(spec.regs_per_bank(), 128);
        let inst = WideInst {
            slots: vec![
                MachineOp {
                    op: Opcode::Add,
                    dst: Reg {
                        bank: 2,
                        index: 100,
                    },
                    src1: Reg { bank: 1, index: 5 },
                    src2: Reg {
                        bank: 3,
                        index: 127,
                    },
                },
                MachineOp {
                    op: Opcode::Sqr,
                    dst: Reg { bank: 0, index: 1 },
                    src1: Reg { bank: 0, index: 2 },
                    src2: Reg::default(),
                },
            ],
        };
        let words = spec.encode(std::slice::from_ref(&inst)).unwrap();
        assert_eq!(words.len(), 3, "padded to issue width");
        let back = spec.decode(&words).unwrap();
        assert_eq!(back[0].slots[0], inst.slots[0]);
        assert_eq!(back[0].slots[1], inst.slots[1]);
        assert_eq!(back[0].slots[2].op, Opcode::Nop);
    }

    #[test]
    fn field_overflow_errors() {
        let spec = EncodingSpec::new(4, 1);
        let bad = MachineOp {
            op: Opcode::Add,
            dst: Reg {
                bank: 0,
                index: 300,
            },
            src1: Reg::default(),
            src2: Reg::default(),
        };
        assert!(matches!(
            spec.encode_op(&bad),
            Err(CodecError::IndexOverflow(_))
        ));
        let bad_bank = MachineOp {
            op: Opcode::Add,
            dst: Reg { bank: 7, index: 0 },
            src1: Reg::default(),
            src2: Reg::default(),
        };
        assert!(matches!(
            spec.encode_op(&bad_bank),
            Err(CodecError::BankOverflow(_))
        ));
    }

    #[test]
    fn decode_rejects_garbage() {
        let spec = EncodingSpec::new(1, 2);
        assert!(matches!(spec.decode(&[0u32]), Err(CodecError::Truncated)));
        let bad_op = 0x1Fu32 << 27;
        assert!(matches!(
            spec.decode_op(&[bad_op]),
            Err(CodecError::BadOpcode(0x1F))
        ));
    }
}
