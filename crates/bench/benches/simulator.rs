//! Simulator throughput: how fast the cycle-accurate and functional
//! simulators chew through a full pairing program (the DSE loop's inner
//! cost).

use criterion::{criterion_group, criterion_main, Criterion};
use finesse_compiler::{compile_pairing, tower_shape, CompileOptions};
use finesse_curves::Curve;
use finesse_ff::BigUint;
use finesse_hw::HwModel;
use finesse_ir::convert::fq_to_fps;
use finesse_ir::VariantConfig;
use finesse_sim::{run_image, simulate};

fn bench_simulators(c: &mut Criterion) {
    let curve = Curve::by_name("BN254N");
    let shape = tower_shape(&curve);
    let variants = VariantConfig::all_karatsuba(&shape);
    let hw = HwModel::paper_default();
    let compiled = compile_pairing(&curve, &variants, &hw, &CompileOptions::default()).unwrap();
    let insts = compiled.image.spec.decode(&compiled.image.words).unwrap();

    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("cycle_accurate_bn254n", |bench| {
        bench.iter(|| simulate(&insts, &hw, None))
    });

    let p = curve.g1_generator().clone();
    let q = curve.g2_generator().clone();
    let mut inputs: Vec<BigUint> = vec![p.x.to_biguint(), p.y.to_biguint()];
    inputs.extend(fq_to_fps(&q.x).iter().map(|f| f.to_biguint()));
    inputs.extend(fq_to_fps(&q.y).iter().map(|f| f.to_biguint()));
    g.bench_function("functional_bn254n", |bench| {
        bench.iter(|| run_image(&compiled.image, curve.fp(), &inputs).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_simulators);
criterion_main!(benches);
