//! Compilation-speed benchmarks — the framework's agility claim
//! ("compilation times reduced to minutes"; the paper's Python stack
//! needed 8.0 s for BN254N and 53.1 s for BLS24-509; this Rust pipeline
//! is measured here), plus individual pass costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use finesse_compiler::{compile_pairing, optimize, pairing_hir, tower_shape, CompileOptions};
use finesse_curves::Curve;
use finesse_hw::HwModel;
use finesse_ir::{lower, VariantConfig};

fn bench_full_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_pairing");
    g.sample_size(10);
    for name in ["BN254N", "BLS12-381"] {
        let curve = Curve::by_name(name);
        let shape = tower_shape(&curve);
        let variants = VariantConfig::all_karatsuba(&shape);
        let hw = HwModel::paper_default();
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |bench, ()| {
            bench.iter(|| {
                compile_pairing(&curve, &variants, &hw, &CompileOptions::default()).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_passes(c: &mut Criterion) {
    let mut g = c.benchmark_group("passes");
    g.sample_size(10);
    let curve = Curve::by_name("BN254N");
    let shape = tower_shape(&curve);
    let hir = pairing_hir(&curve);
    let variants = VariantConfig::all_karatsuba(&shape);
    g.bench_function("lowering", |bench| {
        bench.iter(|| lower(&hir, &shape, &variants).unwrap())
    });
    let lowered = lower(&hir, &shape, &variants).unwrap();
    g.bench_function("iropt", |bench| {
        bench.iter(|| optimize(&lowered, curve.fp()))
    });
    g.finish();
}

criterion_group!(benches, bench_full_compile, bench_passes);
criterion_main!(benches);
