//! Micro-benchmarks of the field-arithmetic substrate across the Table 2
//! curves: F_p Montgomery multiplication, twist-field and F_p^k tower
//! operations, and the pairing-critical cyclotomic squaring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use finesse_curves::Curve;

fn bench_fp_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("fp_mul");
    for name in ["BN254N", "BLS12-381", "BLS12-638", "BLS24-509"] {
        let curve = Curve::by_name(name);
        let a = curve.fp().sample(1);
        let b = curve.fp().sample(2);
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(a, b),
            |bench, (a, b)| bench.iter(|| a * b),
        );
    }
    g.finish();
}

fn bench_fp_sqr(c: &mut Criterion) {
    // The dedicated CIOS squaring kernel (~half the partial products);
    // compare against fp_mul on the same curve.
    let mut g = c.benchmark_group("fp_sqr");
    for name in ["BN254N", "BLS12-381", "BLS12-638", "BLS24-509"] {
        let curve = Curve::by_name(name);
        let a = curve.fp().sample(1);
        g.bench_with_input(BenchmarkId::from_parameter(name), &a, |bench, a| {
            bench.iter(|| a.square())
        });
    }
    g.finish();
}

fn bench_fp_batch_invert(c: &mut Criterion) {
    use finesse_ff::Fp;
    let mut g = c.benchmark_group("fp_batch_invert");
    let curve = Curve::by_name("BLS12-381");
    let elems: Vec<Fp> = (1..=64u64).map(|s| curve.fp().sample(s)).collect();
    g.bench_with_input(BenchmarkId::new("batch", 64), &elems, |bench, elems| {
        bench.iter(|| {
            let mut batch = elems.clone();
            Fp::batch_invert(&mut batch);
            batch
        })
    });
    g.bench_with_input(
        BenchmarkId::new("individual", 64),
        &elems,
        |bench, elems| bench.iter(|| elems.iter().map(Fp::invert).collect::<Vec<_>>()),
    );
    g.finish();
}

fn bench_fq_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("fq_mul");
    for name in ["BN254N", "BLS24-509"] {
        let curve = Curve::by_name(name);
        let t = curve.tower().clone();
        let a = t.fq_sample(1);
        let b = t.fq_sample(2);
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(a, b),
            |bench, (a, b)| bench.iter(|| t.fq_mul(a, b)),
        );
    }
    g.finish();
}

fn bench_fpk_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("fpk");
    for name in ["BN254N", "BLS24-509"] {
        let curve = Curve::by_name(name);
        let t = curve.tower().clone();
        let a = t.fpk_sample(1);
        let b = t.fpk_sample(2);
        g.bench_with_input(BenchmarkId::new("mul", name), &(), |bench, ()| {
            bench.iter(|| t.fpk_mul(&a, &b))
        });
        // Cyclotomic squaring on a projected element.
        let inv = t.fpk_inv(&a);
        let e1 = t.fpk_mul(&t.fpk_conj(&a), &inv);
        let j = if t.k() == 12 { 2 } else { 4 };
        let cyc = t.fpk_mul(&t.fpk_frob(&e1, j), &e1);
        g.bench_with_input(BenchmarkId::new("cyclo_sqr", name), &(), |bench, ()| {
            bench.iter(|| t.fpk_cyclotomic_sqr(&cyc))
        });
        g.bench_with_input(BenchmarkId::new("plain_sqr", name), &(), |bench, ()| {
            bench.iter(|| t.fpk_sqr(&cyc))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fp_mul, bench_fp_sqr, bench_fp_batch_invert, bench_fq_mul, bench_fpk_ops
}
criterion_main!(benches);
