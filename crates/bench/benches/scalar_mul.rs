//! Benchmarks of the scalar-multiplication hot path: the fixed-base comb
//! on the cached generator, endomorphism-split `g1_mul`/`g2_mul` (2-GLV
//! with JSF pair recoding on G1; base-t, quartic, or 2-dim GLS on G2) on
//! variable bases, the plain wNAF ladder, and the batch-affine Pippenger
//! `msm` against independent multiplications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use finesse_curves::{jac_mul, to_affine, Curve, FpOps, FqOps};
use finesse_ff::BigUint;
use std::sync::Arc;

fn bench_scalar(curve: &Arc<Curve>) -> BigUint {
    BigUint::from_hex("e4c91a3bf3a77d9f1a4b5c6d7e8f90123456789abcdef0fedcba98765432100f")
        .expect("literal parses")
        .rem(curve.r())
}

fn bench_g1_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("g1_mul");
    for name in ["BN254N", "BLS12-381", "BLS24-509"] {
        let curve = Curve::by_name(name);
        let k = bench_scalar(&curve);
        // The generator rides the cached fixed-base comb; a non-generator
        // base times the variable-base GLV/JSF split.
        let gen = curve.g1_generator().clone();
        let p = curve.g1_mul(&gen, &BigUint::from_u64(7));
        g.bench_with_input(BenchmarkId::new("comb", name), &(), |bench, ()| {
            bench.iter(|| curve.g1_mul(&gen, &k))
        });
        g.bench_with_input(BenchmarkId::new("glv", name), &(), |bench, ()| {
            bench.iter(|| curve.g1_mul(&p, &k))
        });
        let ops = FpOps(Arc::clone(curve.fp()));
        g.bench_with_input(BenchmarkId::new("wnaf", name), &(), |bench, ()| {
            bench.iter(|| to_affine(&ops, &jac_mul(&ops, &p, &k)))
        });
    }
    g.finish();
}

fn bench_g2_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("g2_mul");
    for name in ["BN254N", "BLS12-381", "BLS24-509"] {
        let curve = Curve::by_name(name);
        let k = bench_scalar(&curve);
        let gen = curve.g2_generator().clone();
        let q = curve.g2_mul(&gen, &BigUint::from_u64(7));
        g.bench_with_input(BenchmarkId::new("comb", name), &(), |bench, ()| {
            bench.iter(|| curve.g2_mul(&gen, &k))
        });
        g.bench_with_input(BenchmarkId::new("gls", name), &(), |bench, ()| {
            bench.iter(|| curve.g2_mul(&q, &k))
        });
        let ops = FqOps(curve.tower());
        g.bench_with_input(BenchmarkId::new("wnaf", name), &(), |bench, ()| {
            bench.iter(|| to_affine(&ops, &jac_mul(&ops, &q, &k)))
        });
    }
    g.finish();
}

fn bench_g1_msm(c: &mut Criterion) {
    let mut g = c.benchmark_group("g1_msm");
    let curve = Curve::by_name("BLS12-381");
    for n in [16usize, 64, 256] {
        let points: Vec<_> = (0..n)
            .map(|i| curve.g1_mul(curve.g1_generator(), &BigUint::from_u64((i * i + 3) as u64)))
            .collect();
        let scalars: Vec<_> = (0..n as u64)
            .map(|i| {
                BigUint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
                    .modpow(&BigUint::from_u64(5), curve.r())
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("pippenger", n), &(), |bench, ()| {
            bench.iter(|| curve.g1_msm(&points, &scalars).expect("lengths match"))
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &(), |bench, ()| {
            bench.iter(|| {
                let mut acc = curve.g1_mul(&points[0], &scalars[0]);
                for (p, k) in points.iter().zip(&scalars).skip(1) {
                    acc = curve.g1_add(&acc, &curve.g1_mul(p, k));
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_g1_mul, bench_g2_mul, bench_g1_msm
}
criterion_main!(benches);
