//! Reference-library pairing latency per curve (the software side of the
//! paper's motivation: pairings cost ~ms on general-purpose hardware),
//! split into Miller loop and final exponentiation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use finesse_curves::Curve;
use finesse_ff::BigUint;
use finesse_pairing::PairingEngine;

fn bench_full_pairing(c: &mut Criterion) {
    let mut g = c.benchmark_group("pairing");
    g.sample_size(10);
    for name in ["BN254N", "BLS12-381", "BLS24-509"] {
        let curve = Curve::by_name(name);
        let engine = PairingEngine::new(curve.clone());
        let p = curve.g1_mul(curve.g1_generator(), &BigUint::from_u64(31337));
        let q = curve.g2_mul(curve.g2_generator(), &BigUint::from_u64(2718));
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |bench, ()| {
            bench.iter(|| engine.pair(&p, &q))
        });
    }
    g.finish();
}

fn bench_pairing_phases(c: &mut Criterion) {
    let mut g = c.benchmark_group("pairing_phases");
    g.sample_size(10);
    let curve = Curve::by_name("BN254N");
    let engine = PairingEngine::new(curve.clone());
    let p = curve.g1_generator().clone();
    let q = curve.g2_generator().clone();
    g.bench_function("miller_loop", |bench| {
        bench.iter(|| engine.miller_loop(&p, &q))
    });
    let f = engine.miller_loop(&p, &q);
    g.bench_function("final_exponentiation", |bench| {
        bench.iter(|| engine.final_exponentiation(&f))
    });
    g.finish();
}

criterion_group!(benches, bench_full_pairing, bench_pairing_phases);
criterion_main!(benches);
