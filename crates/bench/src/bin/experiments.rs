//! Regenerates every table and figure of the Finesse paper's evaluation.
//!
//! ```text
//! experiments [table2|table3|table6|table7|fig2|fig6|fig8|fig9|fig10|fig11|fig12|all]
//! experiments --codesign-report
//! experiments --bench-json [CURVE|all]
//! experiments --bench-regress all
//! experiments --bench-regress [METRIC] CURVE [MAX_PCT]
//! ```
//!
//! Output goes to stdout and to `results/<name>.txt`; the `--bench-json`
//! mode times the field-arithmetic substrate (fp_mul/fp_sqr/fq_mul), the
//! group layer (variable- and fixed-base g1_mul/g2_mul, MSM at 64, 256,
//! 1024, and 4096 points) and the full pairing per Table-2 curve, a
//! `batch_verify` block comparing deferred accumulator settles against
//! sequential 2-pairing verification on the headline curves, plus a
//! `parallel_scaling` block re-timing msm4096 on the headline curves at
//! 1/2/4/hardware thread budgets, and writes machine-readable
//! `results/BENCH_fieldops.json` — stamped with the git commit and ISO
//! date, so the artifact trail CI uploads per PR is self-describing.
//!
//! `--bench-regress all` is the CI gate: it reads the per-metric
//! `regression_gates` manifest (`metric`, `curve`, `baseline_ns`,
//! `budget_pct`) from the *committed* `results/BENCH_fieldops.json`,
//! re-measures every row, prints a pass/fail table, and exits non-zero on
//! any breach — gating a new metric means committing one JSON row, not
//! editing workflow YAML.

use finesse_bench::{f, kfmt, TextTable};
use finesse_compiler::{compile_pairing, tower_shape, CompileOptions};
use finesse_curves::Curve;
use finesse_dse::{
    best_point, codesign_alu_sweep, compare_with_software, evaluate_point, explore,
    figure10_points, variant_sweep_points, DesignPoint, Objective,
};
use finesse_hw::{
    area_breakdown, fpga_utilization, scale, security_bits, AreaInputs, HwModel, NodeMetrics,
    TechNode, FLEXIPAIR, IKEDA_ASSCC19,
};
use finesse_ir::{lower, CostModel, FpProgram, HirOp, HirProgram, Kernel, VariantConfig};
use finesse_sim::simulate;
use std::fs;
use std::io::Write as _;
use std::sync::Arc;

const CURVES: [&str; 7] = [
    "BN254N",
    "BN462",
    "BN638",
    "BLS12-381",
    "BLS12-446",
    "BLS12-638",
    "BLS24-509",
];

type Experiment = (&'static str, fn() -> String);

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    fs::create_dir_all("results").expect("create results dir");
    if arg == "--bench-json" {
        let which = std::env::args().nth(2).unwrap_or_else(|| "all".into());
        let json = bench_fieldops_json(&which);
        fs::write("results/BENCH_fieldops.json", &json).expect("write bench json");
        print!("{json}");
        return;
    }
    if arg == "--bench-regress" {
        let rest: Vec<String> = std::env::args().skip(2).collect();
        std::process::exit(bench_regress_cli(&rest));
    }
    if arg == "--codesign-report" {
        // The one-command co-design artifact path: regenerate the two
        // paper exhibits whose software column is priced by the shared
        // CostModel (measured medians from results/BENCH_fieldops.json
        // when present, analytic defaults otherwise). CI diffs the
        // regenerated files against the committed ones.
        run_experiments(vec![("table2", table2 as fn() -> String), ("fig2", fig2)]);
        return;
    }
    let experiments: Vec<Experiment> = vec![
        ("table2", table2 as fn() -> String),
        ("table3", table3),
        ("table6", table6),
        ("table7", table7),
        ("fig2", fig2),
        ("fig6", fig6),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
    ];
    let selected: Vec<_> = if arg == "all" {
        experiments
    } else {
        experiments.into_iter().filter(|(n, _)| *n == arg).collect()
    };
    if selected.is_empty() {
        eprintln!("unknown experiment `{arg}`; use table2|table3|table6|table7|fig2|fig6|fig8|fig9|fig10|fig11|fig12|all, or --codesign-report");
        std::process::exit(2);
    }
    run_experiments(selected);
}

/// Runs the selected experiments, writing `results/<name>.txt`.
///
/// The written text is byte-for-byte deterministic (wall-clock timing
/// goes to stderr only) so CI can `git diff` regenerated artifacts
/// against the committed ones and fail on drift.
fn run_experiments(selected: Vec<Experiment>) {
    for (name, run) in selected {
        let started = std::time::Instant::now();
        let body = run();
        let text = format!("==== {name} ====\n{body}\n");
        eprintln!("[{name}: {:?}]", started.elapsed());
        print!("{text}");
        let mut file = fs::File::create(format!("results/{name}.txt")).expect("write result");
        file.write_all(text.as_bytes()).expect("write result");
    }
}

/// The software baseline every co-design report prices against:
/// measured medians from the committed bench JSON when available,
/// analytic defaults otherwise.
fn sw_cost_model() -> CostModel {
    CostModel::load(std::path::Path::new("results/BENCH_fieldops.json"))
        .unwrap_or_else(|_| CostModel::analytic())
}

fn default_variants(curve: &Arc<Curve>) -> VariantConfig {
    VariantConfig::all_karatsuba(&tower_shape(curve))
}

/// Median ns/op over five batches, batch size calibrated to ~10 ms.
fn bench_ns<F: FnMut()>(mut f: F) -> f64 {
    use std::time::Instant;
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let el = t.elapsed().as_nanos() as f64;
        if el >= 1e7 || iters >= 1 << 24 {
            break;
        }
        iters = (iters * 4).min(1 << 24);
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[2]
}

/// Reference timings of the Vec-limbed field arithmetic immediately
/// before the inline-limb (`Limbs`) rewrite, captured on the development
/// machine with the criterion-shim harness. Kept in the emitted JSON so
/// every future emission shows the trajectory against the last
/// representation change; `null` means the combination was not measured.
const PRE_PR_FP_MUL_NS: [(&str, f64); 4] = [
    ("BN254N", 60.6),
    ("BLS12-381", 96.5),
    ("BLS12-638", 229.3),
    ("BLS24-509", 153.2),
];
const PRE_PR_FQ_MUL_NS: [(&str, f64); 2] = [("BN254N", 461.6), ("BLS24-509", 3904.7)];
const PRE_PR_PAIRING_NS: [(&str, f64); 3] = [
    ("BN254N", 6_201_048.0),
    ("BLS12-381", 9_452_807.0),
    ("BLS24-509", 49_701_200.0),
];

/// The allocation-free (PR 2) fq_mul medians, i.e. the state immediately
/// before the lazy-reduction rewrite. Written into the emitted JSON's
/// `pr2_baseline_ns` block; `--bench-regress` reads the *committed* JSON
/// as its source of truth and only falls back to these constants when the
/// file is missing or lacks the entry.
const PR2_FQ_MUL_NS: [(&str, f64); 7] = [
    ("BN254N", 391.8),
    ("BN462", 667.0),
    ("BN638", 849.7),
    ("BLS12-381", 498.5),
    ("BLS12-446", 582.0),
    ("BLS12-638", 855.4),
    ("BLS24-509", 2800.5),
];

/// The plain width-4 wNAF (PR 3) scalar-multiplication medians, i.e. the
/// state immediately before the GLV/GLS endomorphism split. Embedded as
/// `pr3_baseline_ns` so the trajectory of the scalar-mul hot path stays
/// visible; the `g1_mul` regression gate compares against the *committed*
/// post-GLV `curves[]` row, not these floors.
const PR3_G1_MUL_NS: [(&str, f64); 7] = [
    ("BN254N", 262_518.0),
    ("BN462", 891_905.0),
    ("BN638", 1_604_839.0),
    ("BLS12-381", 373_640.0),
    ("BLS12-446", 525_128.0),
    ("BLS12-638", 1_435_852.0),
    ("BLS24-509", 815_399.0),
];
const PR3_G2_MUL_NS: [(&str, f64); 7] = [
    ("BN254N", 1_188_448.0),
    ("BN462", 3_050_875.0),
    ("BN638", 5_085_468.0),
    ("BLS12-381", 1_357_081.0),
    ("BLS12-446", 1_920_065.0),
    ("BLS12-638", 3_599_658.0),
    ("BLS24-509", 6_740_015.0),
];
/// 64 independent wNAF g1_muls plus 63 additions (the pre-MSM batch
/// path), for the headline curves.
const PR3_NAIVE_MSM64_NS: [(&str, f64); 2] =
    [("BN254N", 19_533_200.0), ("BLS12-381", 29_874_800.0)];

/// The GLV/GLS (PR 4) medians — the state immediately before the
/// fixed-base comb / batch-affine Pippenger layer. Embedded as
/// `pr4_baseline_ns` so the scalar-mul trajectory stays visible next to
/// the PR 3 wNAF floors.
const PR4_G1_MUL_NS: [(&str, f64); 7] = [
    ("BN254N", 161_838.0),
    ("BN462", 570_185.0),
    ("BN638", 1_080_805.0),
    ("BLS12-381", 262_341.0),
    ("BLS12-446", 360_679.0),
    ("BLS12-638", 860_100.0),
    ("BLS24-509", 621_170.0),
];
const PR4_G2_MUL_NS: [(&str, f64); 7] = [
    ("BN254N", 482_683.0),
    ("BN462", 1_254_189.0),
    ("BN638", 2_246_297.0),
    ("BLS12-381", 615_752.0),
    ("BLS12-446", 861_570.0),
    ("BLS12-638", 1_778_618.0),
    ("BLS24-509", 2_355_474.0),
];
const PR4_MSM64_NS: [(&str, f64); 7] = [
    ("BN254N", 3_388_001.0),
    ("BN462", 9_885_769.0),
    ("BN638", 11_426_895.0),
    ("BLS12-381", 5_111_457.0),
    ("BLS12-446", 7_293_667.0),
    ("BLS12-638", 12_508_997.0),
    ("BLS24-509", 9_149_265.0),
];

/// The metrics [`measure_metric`] knows how to re-run; every manifest
/// gate names one of these.
const METRICS: [&str; 10] = [
    "fq_mul",
    "g1_mul",
    "g1_mul_fixed",
    "msm256",
    "msm1024",
    "msm4096",
    "batch_verify_32",
    "kzg_commit_256",
    "kzg_open_batch_8",
    "kzg_verify_batch_8",
];

/// One row of the regression-gate manifest.
#[derive(Clone, Debug)]
struct Gate {
    metric: String,
    curve: String,
    baseline_ns: f64,
    budget_pct: f64,
}

/// Builtin copy of the gate manifest, written into every emitted JSON and
/// used as the fallback when the committed file is missing or predates
/// the manifest. `--bench-regress` itself always prefers the *committed*
/// `results/BENCH_fieldops.json`, so re-baselining is a one-file edit.
const DEFAULT_GATES: [(&str, &str, f64, f64); 12] = [
    // The historical PR 2 floor contract on the deepest tower.
    ("fq_mul", "BLS24-509", 2800.5, 10.0),
    // Variable-base GLV/JSF path vs the committed PR 4 median.
    ("g1_mul", "BN254N", 161_838.0, 25.0),
    // PR 5 fixed-base comb and batch-affine Pippenger medians (dev
    // container); generous budgets absorb shared-runner jitter.
    ("g1_mul_fixed", "BN254N", 62_208.0, 30.0),
    ("g1_mul_fixed", "BLS12-381", 110_993.0, 30.0),
    ("msm256", "BN254N", 9_168_355.0, 30.0),
    ("msm256", "BLS12-381", 12_075_645.0, 30.0),
    // PR 6 signed-digit sharded-Pippenger medians on the batch sizes
    // that cross the parallel threshold (single-core container, so
    // these baselines time the serial fallback of the sharded path).
    ("msm4096", "BN254N", 108_344_515.0, 30.0),
    ("msm4096", "BLS12-381", 137_514_073.0, 30.0),
    // PR 7 deferred-accumulator medians: 32 BLS-shaped checks against 4
    // signers, settled with 5 prepared Miller loops + one final
    // exponentiation + short-scalar MSMs (warm prepared-G2 cache).
    ("batch_verify_32", "BN254N", 10_969_805.0, 30.0),
    ("batch_verify_32", "BLS12-381", 12_903_026.0, 30.0),
    // PR 10 KZG serving path: 8 single openings of one commitment
    // settled through the accumulator in two prepared Miller loops.
    ("kzg_verify_batch_8", "BN254N", 5_753_566.0, 30.0),
    ("kzg_verify_batch_8", "BLS12-381", 8_993_052.0, 30.0),
];

fn default_gates() -> Vec<Gate> {
    DEFAULT_GATES
        .iter()
        .map(|&(metric, curve, baseline_ns, budget_pct)| Gate {
            metric: metric.into(),
            curve: curve.into(),
            baseline_ns,
            budget_pct,
        })
        .collect()
}

/// Extracts the string value of `"key": "…"` from a flat JSON object
/// body.
fn json_str_field(obj: &str, key: &str) -> Option<String> {
    let after = &obj[obj.find(&format!("\"{key}\":"))? + key.len() + 3..];
    let start = after.find('"')? + 1;
    let end = start + after[start..].find('"')?;
    Some(after[start..end].to_owned())
}

/// Extracts the numeric value of `"key": …` from a flat JSON object body.
fn json_num_field(obj: &str, key: &str) -> Option<f64> {
    let after = &obj[obj.find(&format!("\"{key}\":"))? + key.len() + 3..];
    let end = after.find([',', '}', ']']).unwrap_or(after.len());
    after[..end].trim().parse().ok()
}

/// Parses the `regression_gates` manifest out of the committed
/// `results/BENCH_fieldops.json` (the format this binary itself emits).
fn gates_from_json() -> Option<Vec<Gate>> {
    let text = fs::read_to_string("results/BENCH_fieldops.json").ok()?;
    let arr = &text[text.find("\"regression_gates\"")?..];
    let arr = &arr[arr.find('[')? + 1..];
    let arr = &arr[..arr.find(']')?];
    let mut gates = Vec::new();
    for obj in arr.split('{').skip(1) {
        let obj = &obj[..obj.find('}')?];
        gates.push(Gate {
            metric: json_str_field(obj, "metric")?,
            curve: json_str_field(obj, "curve")?,
            baseline_ns: json_num_field(obj, "baseline_ns")?,
            budget_pct: json_num_field(obj, "budget_pct")?,
        });
    }
    (!gates.is_empty()).then_some(gates)
}

/// The gate manifest: committed JSON first, builtin defaults otherwise.
fn load_gates() -> Vec<Gate> {
    gates_from_json().unwrap_or_else(default_gates)
}

/// Distinct 256-point/full-width-scalar MSM inputs — the batch
/// verification workload shape (aggregate BLS, KZG openings).
fn msm_inputs(
    curve: &Arc<Curve>,
    n: u64,
) -> (
    Vec<finesse_curves::Affine<finesse_ff::Fp>>,
    Vec<finesse_ff::BigUint>,
) {
    let g1 = curve.g1_generator();
    let points = (0..n)
        .map(|i| curve.g1_mul(g1, &finesse_ff::BigUint::from_u64(i * i + 3)))
        .collect();
    let scalars = (0..n)
        .map(|i| {
            finesse_ff::BigUint::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
                .modpow(&finesse_ff::BigUint::from_u64(5), curve.r())
        })
        .collect();
    (points, scalars)
}

/// One BLS-shaped synthetic check `e(sig, G2) =? e(h, pk)`.
type BatchCheck = (
    finesse_curves::Affine<finesse_ff::Fp>,
    finesse_curves::Affine<finesse_ff::Fq>,
    finesse_curves::Affine<finesse_ff::Fp>,
    finesse_curves::Affine<finesse_ff::Fq>,
);

/// `n` synthetic signature checks across `signers` distinct public keys
/// — the deferred-accumulator serving workload. Message "hashes" are
/// scalar multiples of the generator (hash-to-curve is not what the
/// batch-verify metrics time).
fn batch_checks(curve: &Arc<Curve>, n: u64, signers: u64) -> Vec<BatchCheck> {
    use finesse_ff::BigUint;
    let g1 = curve.g1_generator();
    let g2 = curve.g2_generator();
    let sks: Vec<BigUint> = (0..signers)
        .map(|j| BigUint::from_u64(0xA5A5_0013 + j * 97).modpow(&BigUint::from_u64(3), curve.r()))
        .collect();
    let pks: Vec<_> = sks.iter().map(|sk| curve.g2_mul(g2, sk)).collect();
    (0..n)
        .map(|i| {
            let j = (i % signers) as usize;
            let h = curve.g1_mul(g1, &BigUint::from_u64(i * i + 0x5EED));
            let sig = curve.g1_mul(&h, &sks[j]);
            (sig, g2.clone(), h, pks[j].clone())
        })
        .collect()
}

/// Deterministic KZG bench fixture: a degree-255 SRS (riding the
/// fixed-base comb) and a full 256-coefficient polynomial whose
/// coefficients are successive powers of the bench scalar — every limb
/// of every coefficient is live, so commit/open medians time the real
/// MSM and synthetic-division work, not sparse shortcuts.
fn kzg_fixture(curve: &Arc<Curve>) -> (finesse_poly::Srs, finesse_poly::Polynomial) {
    let srs = finesse_poly::Srs::generate(curve, 255, b"finesse-bench-kzg");
    let base = bench_scalar(curve);
    let mut coeffs = Vec::with_capacity(256);
    let mut c = finesse_ff::BigUint::from_u64(1);
    for _ in 0..256 {
        coeffs.push(c.clone());
        c = (&c * &base).rem(curve.r());
    }
    let poly = finesse_poly::Polynomial::new(coeffs, curve.r());
    (srs, poly)
}

/// The 8 opening points shared by the `kzg_open_batch_8` and
/// `kzg_verify_batch_8` metrics.
fn kzg_bench_points() -> Vec<finesse_ff::BigUint> {
    (0..8u64)
        .map(|i| finesse_ff::BigUint::from_u64(0x0BE2_0000 + i * 101))
        .collect()
}

/// Settles one accumulator batch over `checks`; returns the verdict.
fn settle_batch(engine: &finesse_pairing::PairingEngine, checks: &[BatchCheck]) -> bool {
    let mut acc = finesse_pairing::PairingAccumulator::new(engine);
    for (a, b, c, d) in checks {
        acc.push_check(a, b, c, d);
    }
    acc.settle()
}

/// Re-measures one gateable metric's median on a curve. The `g1_mul`
/// metric uses a non-generator base so it times the variable-base
/// GLV/JSF path (the generator routes through the comb, which is what
/// `g1_mul_fixed` times).
fn measure_metric(metric: &str, curve: &Arc<Curve>) -> f64 {
    use std::hint::black_box;
    match metric {
        "fq_mul" => {
            let tower = curve.tower().clone();
            let (qa, qb) = (tower.fq_sample(1), tower.fq_sample(2));
            bench_ns(|| {
                black_box(tower.fq_mul(black_box(&qa), black_box(&qb)));
            })
        }
        "g1_mul" => {
            let k = bench_scalar(curve);
            let base = curve.g1_mul(curve.g1_generator(), &finesse_ff::BigUint::from_u64(7));
            bench_ns(|| {
                black_box(curve.g1_mul(black_box(&base), black_box(&k)));
            })
        }
        "g1_mul_fixed" => {
            let k = bench_scalar(curve);
            let g1 = curve.g1_generator();
            // First call builds the lazy comb; the measurement then times
            // steady-state fixed-base multiplications.
            black_box(curve.g1_mul(g1, &k));
            bench_ns(|| {
                black_box(curve.g1_mul(black_box(g1), black_box(&k)));
            })
        }
        "msm256" | "msm1024" | "msm4096" => {
            let n: u64 = metric[3..].parse().expect("msmN metric names its size");
            let (points, scalars) = msm_inputs(curve, n);
            bench_ns(|| {
                black_box(
                    curve
                        .g1_msm(black_box(&points), black_box(&scalars))
                        .expect("msm inputs are same-length"),
                );
            })
        }
        "batch_verify_32" => {
            let engine = finesse_pairing::PairingEngine::new(Arc::clone(curve));
            let checks = batch_checks(curve, 32, 4);
            // First settle warms the prepared-G2 cache: the gate times
            // the steady-state serving path, where the generator's and
            // the signers' line schedules are already cached.
            assert!(settle_batch(&engine, &checks), "synthetic batch verifies");
            bench_ns(|| {
                black_box(settle_batch(&engine, black_box(&checks)));
            })
        }
        "kzg_commit_256" => {
            let engine = finesse_pairing::PairingEngine::new(Arc::clone(curve));
            let (srs, poly) = kzg_fixture(curve);
            let kzg = finesse_poly::Kzg::new(&engine, &srs).expect("fixture SRS matches engine");
            bench_ns(|| {
                black_box(kzg.commit(black_box(&poly)).expect("fixture poly fits SRS"));
            })
        }
        "kzg_open_batch_8" => {
            let engine = finesse_pairing::PairingEngine::new(Arc::clone(curve));
            let (srs, poly) = kzg_fixture(curve);
            let kzg = finesse_poly::Kzg::new(&engine, &srs).expect("fixture SRS matches engine");
            let commitment = kzg.commit(&poly).expect("fixture poly fits SRS");
            let zs = kzg_bench_points();
            bench_ns(|| {
                black_box(
                    kzg.open_batch(black_box(&poly), black_box(&commitment), black_box(&zs))
                        .expect("fixture openings succeed"),
                );
            })
        }
        "kzg_verify_batch_8" => {
            let engine = finesse_pairing::PairingEngine::new(Arc::clone(curve));
            let (srs, poly) = kzg_fixture(curve);
            let kzg = finesse_poly::Kzg::new(&engine, &srs).expect("fixture SRS matches engine");
            let commitment = kzg.commit(&poly).expect("fixture poly fits SRS");
            let claims: Vec<finesse_poly::Claim> = kzg_bench_points()
                .iter()
                .map(|z| {
                    Ok(finesse_poly::Claim::Single {
                        commitment: commitment.clone(),
                        opening: kzg.open(&poly, z)?,
                    })
                })
                .collect::<Result<_, finesse_poly::PolyError>>()
                .expect("fixture openings succeed");
            // First settle warms the prepared-G2 cache (G2 generator and
            // [tau]G2 line schedules); the gate times the steady-state
            // serving path of two cached Miller loops per batch.
            kzg.verify_batch(&claims).expect("honest batch verifies");
            bench_ns(|| {
                black_box(kzg.verify_batch(black_box(&claims)).is_ok());
            })
        }
        other => unreachable!("unvalidated metric `{other}`"),
    }
}

/// Runs one gate; returns `(measured_ns, delta_pct, pass)`.
fn run_gate(gate: &Gate) -> (f64, f64, bool) {
    let curve = Curve::by_name(&gate.curve);
    let measured = measure_metric(&gate.metric, &curve);
    let delta_pct = 100.0 * (measured - gate.baseline_ns) / gate.baseline_ns;
    (measured, delta_pct, delta_pct <= gate.budget_pct)
}

/// `--bench-regress all`: the manifest-driven CI gate. Prints one
/// pass/fail row per manifest entry and exits non-zero on any breach.
fn bench_regress_all() -> i32 {
    let parsed = gates_from_json();
    let source = if parsed.is_some() {
        "results/BENCH_fieldops.json"
    } else {
        "builtin defaults (no committed manifest)"
    };
    let gates = parsed.unwrap_or_else(default_gates);
    println!("regression gates from {source}:");
    let mut t = TextTable::new(&[
        "metric",
        "curve",
        "baseline ns",
        "measured ns",
        "delta",
        "budget",
        "status",
    ]);
    let mut failures = 0;
    for gate in &gates {
        if !METRICS.contains(&gate.metric.as_str()) {
            eprintln!("unknown metric `{}` in gate manifest", gate.metric);
            return 2;
        }
        let (measured, delta_pct, pass) = run_gate(gate);
        if !pass {
            failures += 1;
        }
        t.row(vec![
            gate.metric.clone(),
            gate.curve.clone(),
            format!("{:.1}", gate.baseline_ns),
            format!("{measured:.1}"),
            format!("{delta_pct:+.1}%"),
            format!("+{:.0}%", gate.budget_pct),
            if pass { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    print!("{}", t.render());
    if failures > 0 {
        eprintln!("REGRESSION: {failures} gate(s) breached their budget");
        return 1;
    }
    println!("all {} gates passed", gates.len());
    0
}

/// `--bench-regress` CLI: `all` runs the whole manifest; the one-off form
/// `[METRIC] CURVE [MAX_PCT]` re-measures a single metric against its
/// manifest baseline (metric defaults to `fq_mul`, keeping the historic
/// CLI shape working; `MAX_PCT` overrides the manifest budget).
fn bench_regress_cli(rest: &[String]) -> i32 {
    if rest.first().map(String::as_str) == Some("all") {
        return bench_regress_all();
    }
    let mut rest = rest.to_vec();
    let metric = if rest.first().is_some_and(|a| METRICS.contains(&a.as_str())) {
        rest.remove(0)
    } else {
        "fq_mul".to_owned()
    };
    let which = rest.first().cloned().unwrap_or_else(|| "BLS24-509".into());
    let Some(name) = CURVES.iter().find(|c| c.eq_ignore_ascii_case(&which)) else {
        eprintln!("unknown curve `{which}`; expected one of {CURVES:?}");
        return 2;
    };
    let manifest = load_gates();
    let Some(gate) = manifest
        .iter()
        .find(|g| g.metric == metric && g.curve == *name)
    else {
        eprintln!(
            "no gate for ({metric}, {name}) in the manifest; add a row to \
             results/BENCH_fieldops.json `regression_gates`"
        );
        return 2;
    };
    let mut gate = gate.clone();
    if let Some(pct) = rest.get(1) {
        gate.budget_pct = pct.parse().expect("max regression must be a number");
    }
    let (measured, delta_pct, pass) = run_gate(&gate);
    println!(
        "{metric} {name}: measured {measured:.1} ns vs committed baseline {:.1} ns \
         ({delta_pct:+.1}%, limit +{:.0}%)",
        gate.baseline_ns, gate.budget_pct
    );
    if !pass {
        eprintln!("REGRESSION: {metric} {name} is {delta_pct:.1}% slower than the baseline");
        return 1;
    }
    0
}

/// A full-width deterministic bench scalar in `[0, r)` (cubing mod r
/// fills the full width of every Table 2 group order; the PR 3 floors
/// were captured with the same scalar on the plain wNAF ladder).
fn bench_scalar(curve: &Arc<Curve>) -> finesse_ff::BigUint {
    finesse_ff::BigUint::from_hex(
        "e4c91a3bf3a77d9f1a4b5c6d7e8f90123456789abcdef0fedcba98765432100f",
    )
    .expect("literal parses")
    .modpow(&finesse_ff::BigUint::from_u64(3), curve.r())
}

/// The current git commit (short hash), or `unknown` outside a work tree.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, no clock crates).
fn iso_date_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// `--bench-json`: field-substrate and group-layer microbenchmarks as
/// machine-readable JSON (one row per requested Table-2 curve), stamped
/// with the emitting commit and date.
fn bench_fieldops_json(which: &str) -> String {
    use finesse_pairing::PairingEngine;
    use std::hint::black_box;

    let selected: Vec<&str> = if which == "all" {
        CURVES.to_vec()
    } else {
        let found = CURVES.iter().find(|c| c.eq_ignore_ascii_case(which));
        vec![found.unwrap_or_else(|| {
            eprintln!("unknown curve `{which}`; expected one of {CURVES:?} or `all`");
            std::process::exit(2);
        })]
    };

    let mut rows = Vec::new();
    for name in selected {
        let curve = Curve::by_name(name);
        let fp = curve.fp();
        let tower = curve.tower().clone();
        let (a, b) = (fp.sample(1), fp.sample(2));
        let fp_mul = bench_ns(|| {
            black_box(black_box(&a) * black_box(&b));
        });
        let fp_sqr = bench_ns(|| {
            black_box(black_box(&a).square());
        });
        let (qa, qb) = (tower.fq_sample(1), tower.fq_sample(2));
        let fq_mul = bench_ns(|| {
            black_box(tower.fq_mul(black_box(&qa), black_box(&qb)));
        });
        let k = bench_scalar(&curve);
        let (g1, g2) = (curve.g1_generator(), curve.g2_generator());
        // Variable-base rows use non-generator bases (the GLV/GLS split
        // paths); the `_fixed` rows time the cached-generator comb.
        let h1 = curve.g1_mul(g1, &finesse_ff::BigUint::from_u64(7));
        let h2 = curve.g2_mul(g2, &finesse_ff::BigUint::from_u64(7));
        let g1_mul = bench_ns(|| {
            black_box(curve.g1_mul(black_box(&h1), black_box(&k)));
        });
        let g1_mul_fixed = bench_ns(|| {
            black_box(curve.g1_mul(black_box(g1), black_box(&k)));
        });
        let g2_mul = bench_ns(|| {
            black_box(curve.g2_mul(black_box(&h2), black_box(&k)));
        });
        let g2_mul_fixed = bench_ns(|| {
            black_box(curve.g2_mul(black_box(g2), black_box(&k)));
        });
        // 64- to 4096-point G1 MSMs over distinct points and full-width
        // scalars — the batch-verification workload (aggregate BLS, KZG
        // openings); 256 points exercise the batch-affine Pippenger path
        // and 1024/4096 the thread-sharded bucket pass.
        let msm_ns = |n: u64| {
            let (msm_points, msm_scalars) = msm_inputs(&curve, n);
            bench_ns(|| {
                black_box(
                    curve
                        .g1_msm(black_box(&msm_points), black_box(&msm_scalars))
                        .expect("msm inputs are same-length"),
                );
            })
        };
        let msm64 = msm_ns(64);
        let msm256 = msm_ns(256);
        let msm1024 = msm_ns(1024);
        let msm4096 = msm_ns(4096);
        let engine = PairingEngine::new(curve.clone());
        let pairing = bench_ns(|| {
            black_box(engine.pair(black_box(g1), black_box(g2)));
        });
        rows.push(format!(
            "    {{\"curve\": \"{name}\", \"p_bits\": {}, \"limbs\": {}, \
             \"fp_mul_ns\": {fp_mul:.1}, \"fp_sqr_ns\": {fp_sqr:.1}, \
             \"fq_mul_ns\": {fq_mul:.1}, \"g1_mul_ns\": {g1_mul:.0}, \
             \"g1_mul_fixed_ns\": {g1_mul_fixed:.0}, \
             \"g2_mul_ns\": {g2_mul:.0}, \"g2_mul_fixed_ns\": {g2_mul_fixed:.0}, \
             \"msm64_g1_ns\": {msm64:.0}, \"msm256_g1_ns\": {msm256:.0}, \
             \"msm1024_g1_ns\": {msm1024:.0}, \"msm4096_g1_ns\": {msm4096:.0}, \
             \"pairing_ns\": {pairing:.0}}}",
            curve.p().bits(),
            fp.width(),
        ));
    }

    // Scaling-vs-cores report on the headline curves: the same msm4096
    // workload re-timed with the thread budget pinned to 1, 2, 4, and
    // the hardware count. On a single-core runner every row degenerates
    // to the serial path — the emitted `hardware_threads` makes that
    // visible instead of implying a failed speedup.
    let scaling_rows = {
        let threads_axis = {
            let hw = finesse_parallel::hardware_threads();
            let mut axis = vec![1usize, 2, 4];
            if !axis.contains(&hw) {
                axis.push(hw);
            }
            axis
        };
        let mut entries = Vec::new();
        for name in ["BN254N", "BLS12-381"] {
            if which != "all" && !name.eq_ignore_ascii_case(which) {
                continue;
            }
            let curve = Curve::by_name(name);
            let (points, scalars) = msm_inputs(&curve, 4096);
            for &t in &threads_axis {
                let ns = finesse_parallel::with_threads(t, || {
                    bench_ns(|| {
                        black_box(
                            curve
                                .g1_msm(black_box(&points), black_box(&scalars))
                                .expect("msm inputs are same-length"),
                        );
                    })
                });
                entries.push(format!(
                    "    {{\"curve\": \"{name}\", \"metric\": \"msm4096\", \
                     \"threads\": {t}, \"ns\": {ns:.0}}}"
                ));
            }
        }
        entries.join(",\n")
    };

    // Deferred batch verification vs the sequential baseline: n
    // BLS-shaped checks against 4 signers, settled with one accumulator
    // (5 prepared Miller loops + 1 final exponentiation + short-scalar
    // MSMs) vs n independent 2-pairing verifications.
    let batch_verify_rows = {
        let mut entries = Vec::new();
        for name in ["BN254N", "BLS12-381"] {
            if which != "all" && !name.eq_ignore_ascii_case(which) {
                continue;
            }
            let curve = Curve::by_name(name);
            let engine = PairingEngine::new(curve.clone());
            for n in [8u64, 32] {
                let checks = batch_checks(&curve, n, 4);
                assert!(settle_batch(&engine, &checks), "synthetic batch verifies");
                let batched = bench_ns(|| {
                    black_box(settle_batch(&engine, black_box(&checks)));
                });
                let sequential = bench_ns(|| {
                    for (sig, g2, h, pk) in &checks {
                        black_box(
                            engine.pair(black_box(sig), black_box(g2))
                                == engine.pair(black_box(h), black_box(pk)),
                        );
                    }
                });
                entries.push(format!(
                    "    {{\"curve\": \"{name}\", \"n\": {n}, \"signers\": 4, \
                     \"batched_ns\": {batched:.0}, \"sequential_ns\": {sequential:.0}, \
                     \"amortized_ns_per_check\": {:.0}, \"speedup\": {:.1}}}",
                    batched / n as f64,
                    sequential / batched,
                ));
            }
        }
        entries.join(",\n")
    };

    // KZG polynomial-commitment serving metrics on the headline curves:
    // commit to a full 256-coefficient polynomial, produce one batched
    // proof for 8 points, and settle 8 single-opening claims through the
    // accumulator (two prepared Miller loops + one final exponentiation).
    let kzg_rows = {
        let mut entries = Vec::new();
        for name in ["BN254N", "BLS12-381"] {
            if which != "all" && !name.eq_ignore_ascii_case(which) {
                continue;
            }
            let curve = Curve::by_name(name);
            let commit = measure_metric("kzg_commit_256", &curve);
            let open_batch = measure_metric("kzg_open_batch_8", &curve);
            let verify_batch = measure_metric("kzg_verify_batch_8", &curve);
            entries.push(format!(
                "    {{\"curve\": \"{name}\", \"commit_256_ns\": {commit:.0}, \
                 \"open_batch_8_ns\": {open_batch:.0}, \"verify_batch_8_ns\": {verify_batch:.0}}}"
            ));
        }
        entries.join(",\n")
    };

    let baseline = |pairs: &[(&str, f64)]| -> String {
        pairs
            .iter()
            .map(|(n, v)| format!("\"{n}\": {v:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let gates = default_gates()
        .iter()
        .map(|g| {
            format!(
                "    {{\"metric\": \"{}\", \"curve\": \"{}\", \"baseline_ns\": {:.1}, \"budget_pct\": {:.0}}}",
                g.metric, g.curve, g.baseline_ns, g.budget_pct
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"schema\": \"finesse-bench-fieldops/v6\",\n  \"harness\": \"median of 5 batches, ns per op\",\n  \"commit\": \"{}\",\n  \"date\": \"{}\",\n\
         \n  \"cost_model\": {{\n    \"consumer\": \"finesse_ir::cost::CostModel::from_bench_json\",\n    \"provenance\": \"measured medians; dse/sim/experiments price the software column of table2/fig2 from these rows\",\n    \"consumed_fields\": [\"fq_mul_ns\", \"g1_mul_ns\", \"g1_mul_fixed_ns\", \"g2_mul_ns\", \"g2_mul_fixed_ns\", \"msm256_g1_ns\", \"msm1024_g1_ns\", \"msm4096_g1_ns\", \"pairing_ns\", \"batch_verify (n=32 amortized)\"]\n  }},\n\
         \n  \"regression_gates\": [\n{gates}\n  ],\n\
         \n  \"curves\": [\n{}\n  ],\n\
         \n  \"batch_verify\": {{\n    \"note\": \"n BLS-shaped checks e(sig,G2)=?e(h,pk) against 4 signers: one PairingAccumulator settle (prepared-G2 Miller loops, 128-bit RLC weights, short-scalar MSMs, one final exponentiation) vs n sequential 2-pairing verifications\",\n    \"rows\": [\n{batch_verify_rows}\n    ]\n  }},\n\
         \n  \"kzg\": {{\n    \"note\": \"finesse-poly serving path: commit = [p(tau)]G1 over a 256-coefficient polynomial (msm256 on the SRS powers); open_batch = one BDFG20 proof pair for 8 points; verify_batch = 8 single-opening claims settled in two cached Miller loops (fixed-G2 form, warm prepared cache)\",\n    \"rows\": [\n{kzg_rows}\n    ]\n  }},\n\
         \n  \"parallel_scaling\": {{\n    \"note\": \"msm4096 re-timed with the FINESSE_THREADS budget pinned per row; hardware_threads is the emitting machine's available parallelism — rows at or above it cannot speed up further\",\n    \"hardware_threads\": {},\n    \"rows\": [\n{scaling_rows}\n    ]\n  }},\n  \"pr4_baseline_ns\": {{\n    \"note\": \"GLV/GLS split with per-term wNAF tables (PR 4) before the fixed-base comb, JSF pair recoding, and batch-affine Pippenger buckets\",\n    \"g1_mul\": {{{}}},\n    \"g2_mul\": {{{}}},\n    \"msm64_g1\": {{{}}}\n  }},\n  \"pr3_baseline_ns\": {{\n    \"note\": \"plain width-4 wNAF ladders (PR 3) before the GLV/GLS endomorphism split; naive_msm64 = 64 independent g1_muls + adds\",\n    \"g1_mul\": {{{}}},\n    \"g2_mul\": {{{}}},\n    \"naive_msm64\": {{{}}}\n  }},\n  \"pr2_baseline_ns\": {{\n    \"note\": \"allocation-free Fp (PR 2) before the lazy-reduction rewrite; the fq_mul gate floor\",\n    \"fq_mul\": {{{}}}\n  }},\n  \"pre_pr_baseline_ns\": {{\n    \"note\": \"Vec-limbed Fp before the inline-limb rewrite (criterion-shim medians, same machine)\",\n    \"fp_mul\": {{{}}},\n    \"fq_mul\": {{{}}},\n    \"pairing\": {{{}}}\n  }}\n}}\n",
        git_commit(),
        iso_date_utc(),
        rows.join(",\n"),
        finesse_parallel::hardware_threads(),
        baseline(&PR4_G1_MUL_NS),
        baseline(&PR4_G2_MUL_NS),
        baseline(&PR4_MSM64_NS),
        baseline(&PR3_G1_MUL_NS),
        baseline(&PR3_G2_MUL_NS),
        baseline(&PR3_NAIVE_MSM64_NS),
        baseline(&PR2_FQ_MUL_NS),
        baseline(&PRE_PR_FP_MUL_NS),
        baseline(&PRE_PR_FQ_MUL_NS),
        baseline(&PRE_PR_PAIRING_NS),
    )
}

/// Table 2: curve parameters and security levels, extended with the
/// co-design headline — the software pairing baseline priced by the
/// shared [`CostModel`] against the simulated paper-default accelerator.
fn table2() -> String {
    let model = sw_cost_model();
    let hw = HwModel::paper_default();
    let mut t = TextTable::new(&[
        "curve",
        "log|t|",
        "log p",
        "log r",
        "k",
        "k·log p",
        "sec (model)",
        "sec (paper)",
        "SW pairing",
        "HW pairing",
        "speedup",
    ]);
    for name in CURVES {
        let c = Curve::by_name(name);
        let klogp = (c.k() * c.p().bits()) as f64;
        let sec = security_bits(c.family(), klogp);
        let point = DesignPoint {
            label: name.into(),
            variants: default_variants(&c),
            hw: hw.clone(),
        };
        let (sw, hw_col, speedup) = match evaluate_point(&c, &point, 1)
            .and_then(|e| compare_with_software(name, &e, &model))
        {
            Ok(cmp) => (
                format!("{} ms", f(cmp.sw_pairing_ns / 1e6, 2)),
                format!("{} us", f(cmp.hw_pairing_ns / 1e3, 1)),
                format!("x{}", f(cmp.speedup, 1)),
            ),
            Err(e) => (format!("failed: {e}"), "-".into(), "-".into()),
        };
        t.row(vec![
            name.into(),
            c.t().magnitude().bits().to_string(),
            c.p().bits().to_string(),
            c.r().bits().to_string(),
            c.k().to_string(),
            format!("{}", klogp as u64),
            f(sec, 1),
            c.table2_security().to_string(),
            sw,
            hw_col,
            speedup,
        ]);
    }
    format!(
        "{}SW pairing: software baseline from the shared CostModel ({}).\n\
         HW pairing: cycle-accurate simulation, paper-default hardware, 1 core.\n",
        t.render(),
        model.describe()
    )
}

/// Cost of one op at one level under one variant config, in F_p
/// operations.
fn op_cost(curve: &Arc<Curve>, level: u8, sqr: bool, cfg: &VariantConfig) -> (usize, usize) {
    let shape = tower_shape(curve);
    let mut hir = HirProgram::new();
    let a = hir.declare_input("a", level);
    let b = hir.declare_input("b", level);
    let r = if sqr {
        let s = hir.push(HirOp::Add(a, b), level); // consume both inputs
        hir.push(HirOp::Sqr(s), level)
    } else {
        hir.push(HirOp::Mul(a, b), level)
    };
    hir.outputs.push(r);
    let fp: FpProgram = lower(&hir, &shape, cfg).expect("lowering");
    let st = fp.stats();
    let extra_linear = if sqr { level as usize } else { 0 }; // the Add consumed
    (st.mul + st.sqr, st.linear - extra_linear)
}

/// Table 3: operation decomposition costs per variant.
fn table3() -> String {
    let mut out = String::new();
    for (name, levels) in [
        ("BLS12-381", vec![2u8, 6, 12]),
        ("BLS24-509", vec![2, 4, 12, 24]),
    ] {
        let curve = Curve::by_name(name);
        let shape = tower_shape(&curve);
        let mut t = TextTable::new(&["op", "variant", "F_p mul", "F_p linear"]);
        for &d in &levels {
            for (tag, cfg) in [
                ("karatsuba", VariantConfig::all_karatsuba(&shape)),
                ("schoolbook", VariantConfig::all_schoolbook(&shape)),
            ] {
                let (m, l) = op_cost(&curve, d, false, &cfg);
                t.row(vec![
                    format!("M{d}"),
                    tag.into(),
                    m.to_string(),
                    l.to_string(),
                ]);
            }
            for (tag, cfg) in [
                ("cheap-sqr", VariantConfig::all_karatsuba(&shape)),
                ("schoolbook", VariantConfig::all_schoolbook(&shape)),
            ] {
                let (m, l) = op_cost(&curve, d, true, &cfg);
                t.row(vec![
                    format!("S{d}"),
                    tag.into(),
                    m.to_string(),
                    l.to_string(),
                ]);
            }
        }
        out.push_str(&format!("tower {name}:\n{}\n", t.render()));
    }
    out
}

/// Table 6: comparison against FlexiPair (FPGA) and Ikeda (ASIC).
fn table6() -> String {
    let curve = Curve::by_name("BN254N");
    let variants = default_variants(&curve);
    let hw = HwModel::paper_default();
    let e1 = evaluate_point(
        &curve,
        &DesignPoint {
            label: "1-core".into(),
            variants: variants.clone(),
            hw: hw.clone(),
        },
        1,
    )
    .expect("evaluate");
    let e8 = evaluate_point(
        &curve,
        &DesignPoint {
            label: "8-core".into(),
            variants,
            hw: hw.clone(),
        },
        8,
    )
    .expect("evaluate");

    let compiled = compile_pairing(
        &curve,
        &default_variants(&curve),
        &hw,
        &CompileOptions::default(),
    )
    .unwrap();
    let fpga = fpga_utilization(
        &hw,
        &AreaInputs {
            field_bits: curve.p().bits() as u32,
            imem_bytes: compiled.image.imem_bytes(),
            live_registers: compiled.regs.peak_live as usize,
            cores: 1,
        },
    );
    let fpga_cycles = e1.cycles;
    let fpga_latency_ms = fpga_cycles as f64 / fpga.frequency_mhz / 1000.0;
    let fpga_tp = 1000.0 / fpga_latency_ms;

    let ours65 = scale(
        &NodeMetrics {
            frequency_mhz: e8.frequency_mhz,
            area_mm2: e8.area.total(),
            latency_us: e8.latency_us,
            throughput_ops: e8.throughput_ops,
        },
        TechNode::N40,
        TechNode::N65,
    );

    let mut t = TextTable::new(&[
        "work",
        "platform",
        "freq",
        "#cycle",
        "latency",
        "util/area",
        "throughput",
        "tp/area",
    ]);
    t.row(vec![
        FLEXIPAIR.name.into(),
        "FPGA Virtex-7".into(),
        format!("{} MHz", FLEXIPAIR.frequency_mhz),
        kfmt(FLEXIPAIR.cycles as usize),
        format!("{:.2} ms", FLEXIPAIR.latency_ms),
        format!("{} slices", FLEXIPAIR.slices),
        format!("{:.1} ops", FLEXIPAIR.throughput_ops()),
        format!("{:.3} ops/slice", FLEXIPAIR.ops_per_slice()),
    ]);
    t.row(vec![
        "Ours (1-core)".into(),
        "FPGA Virtex-7".into(),
        format!("{:.1} MHz", fpga.frequency_mhz),
        kfmt(fpga_cycles as usize),
        format!("{:.3} ms", fpga_latency_ms),
        format!("{} slices", fpga.slices),
        format!("{:.0} ops", fpga_tp),
        format!("{:.3} ops/slice", fpga_tp / fpga.slices as f64),
    ]);
    t.row(vec![
        IKEDA_ASSCC19.name.into(),
        IKEDA_ASSCC19.node.into(),
        format!("{} MHz", IKEDA_ASSCC19.frequency_mhz),
        kfmt(IKEDA_ASSCC19.cycles as usize),
        format!("{:.1} us", IKEDA_ASSCC19.latency_us),
        format!("{:.1} mm2", IKEDA_ASSCC19.area_mm2),
        format!("{:.1} kops", IKEDA_ASSCC19.throughput_ops() / 1000.0),
        format!("{:.2} kops/mm2", IKEDA_ASSCC19.kops_per_mm2()),
    ]);
    for (label, e, cores) in [("Ours (1-core)", &e1, 1u32), ("Ours (8-core)", &e8, 8)] {
        let _ = cores;
        t.row(vec![
            label.into(),
            "ASIC 40nm LP".into(),
            format!("{:.0} MHz", e.frequency_mhz),
            kfmt(e.cycles as usize),
            format!("{:.1} us", e.latency_us),
            format!("{:.2} mm2", e.area.total()),
            format!("{:.1} kops", e.throughput_ops / 1000.0),
            format!("{:.2} kops/mm2", e.throughput_ops / 1000.0 / e.area.total()),
        ]);
    }
    t.row(vec![
        "Ours (8-core, 65nm equiv.)".into(),
        "ASIC 65nm".into(),
        format!("{:.0} MHz", ours65.frequency_mhz),
        kfmt(e8.cycles as usize),
        format!("{:.1} us", ours65.latency_us),
        format!("{:.2} mm2", ours65.area_mm2),
        format!("{:.1} kops", ours65.throughput_ops / 1000.0),
        format!("{:.2} kops/mm2", ours65.ops_per_mm2() / 1000.0),
    ]);

    let fpga_ratio_tp = fpga_tp / FLEXIPAIR.throughput_ops();
    let fpga_ratio_eff = (fpga_tp / fpga.slices as f64) / FLEXIPAIR.ops_per_slice();
    let asic_ratio_tp = ours65.throughput_ops / IKEDA_ASSCC19.throughput_ops();
    let asic_ratio_eff = (ours65.ops_per_mm2() / 1000.0) / IKEDA_ASSCC19.kops_per_mm2();
    format!(
        "{}\nheadline ratios: FPGA throughput x{:.1} (paper 34x), slice efficiency x{:.1} (paper 6.2x)\n\
         ASIC (65nm equiv.) throughput x{:.1} (paper 3x), area efficiency x{:.1} (paper 3.2x)\n",
        t.render(),
        fpga_ratio_tp,
        fpga_ratio_eff,
        asic_ratio_tp,
        asic_ratio_eff
    )
}

/// Table 7: compilation strategies — instruction reduction and IPC.
fn table7() -> String {
    let mut t = TextTable::new(&[
        "curve",
        "instr init→opt",
        "reduction",
        "IPC init",
        "IPC opt HW1",
        "IPC opt HW2",
        "compile",
    ]);
    for name in CURVES {
        let curve = Curve::by_name(name);
        let variants = default_variants(&curve);
        let hw1 = HwModel::paper_default();
        let hw2 = hw1.clone().with_fifo();

        let opt = compile_pairing(&curve, &variants, &hw1, &CompileOptions::default()).unwrap();
        let init = compile_pairing(&curve, &variants, &hw1, &CompileOptions::baseline()).unwrap();

        let insts_opt = opt.image.spec.decode(&opt.image.words).unwrap();
        let insts_init = init.image.spec.decode(&init.image.words).unwrap();
        let r_init = simulate(&insts_init, &hw1, None);
        let r_hw1 = simulate(&insts_opt, &hw1, None);
        let r_hw2 = simulate(&insts_opt, &hw2, None);

        let before = init.instruction_count();
        let after = opt.instruction_count();
        t.row(vec![
            name.into(),
            format!("{}→{}", kfmt(before), kfmt(after)),
            format!("-{:.1}%", 100.0 * (before - after) as f64 / before as f64),
            f(r_init.ipc(), 2),
            f(r_hw1.ipc(), 2),
            f(r_hw2.ipc(), 2),
            format!("{:.1}s", opt.compile_time.as_secs_f64()),
        ]);
    }
    format!(
        "{}(paper: reductions -8.5%..-16.4%, IPC 0.19..0.22 → 0.87..0.97)\n",
        t.render()
    )
}

/// Figure 2: Karatsuba on/off per level, BLS24-509 on single issue,
/// with each point's simulated latency compared against the shared
/// [`CostModel`] software baseline.
fn fig2() -> String {
    let model = sw_cost_model();
    let sw_ns = model.cost_ns("BLS24-509", Kernel::Pairing);
    let curve = Curve::by_name("BLS24-509");
    let shape = tower_shape(&curve);
    let hw = HwModel::paper_default();
    let mut configs: Vec<(String, VariantConfig)> =
        vec![("all karatsuba".into(), VariantConfig::all_karatsuba(&shape))];
    for d in shape.degrees() {
        configs.push((
            format!("karat. w/o p{d}"),
            VariantConfig::all_karatsuba(&shape).with_mul(d, finesse_ir::MulVariant::Schoolbook),
        ));
    }
    let points: Vec<DesignPoint> = configs
        .iter()
        .map(|(label, v)| DesignPoint {
            label: label.clone(),
            variants: v.clone(),
            hw: hw.clone(),
        })
        .collect();
    let results = explore(&curve, points, 1);
    // A failed design point must not abort the whole figure: failed rows
    // are reported in place and the normalisation baseline comes from the
    // first row that evaluated successfully (the column header names that
    // row, so the ratios stay honest even if "all karatsuba" failed).
    let Some((base_label, base)) = results
        .iter()
        .find_map(|(p, r)| r.as_ref().ok().map(|e| (p.label.clone(), e.cycles as f64)))
    else {
        let errs: Vec<String> = results
            .iter()
            .map(|(p, r)| {
                format!(
                    "{}: {}",
                    p.label,
                    r.as_ref().err().map(|e| e.to_string()).unwrap_or_default()
                )
            })
            .collect();
        return format!("fig2: every design point failed:\n{}\n", errs.join("\n"));
    };

    // "Optimal" from the exhaustive mul-variant sweep (like the named
    // rows, an all-failed sweep is reported instead of aborting).
    let sweep = explore(&curve, variant_sweep_points(&curve, &hw), 1);
    let best = best_point(&sweep, Objective::Cycles);

    let vs_sw = |latency_us: f64| -> String {
        sw_ns
            .map(|s| format!("x{}", f(s / (latency_us * 1e3), 1)))
            .unwrap_or_else(|| "-".into())
    };
    let norm_header = format!("norm. vs {base_label}");
    let mut t = TextTable::new(&["combination", "cycles", &norm_header, "HW latency", "vs SW"]);
    for (p, r) in &results {
        match r {
            Ok(e) => t.row(vec![
                p.label.clone(),
                e.cycles.to_string(),
                f(e.cycles as f64 / base, 3),
                format!("{} us", f(e.latency_us, 1)),
                vs_sw(e.latency_us),
            ]),
            Err(e) => t.row(vec![
                p.label.clone(),
                format!("failed: {e}"),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        };
    }
    match best {
        Some((bp, be)) => t.row(vec![
            format!("optimal ({})", bp.variants.tag()),
            be.cycles.to_string(),
            f(be.cycles as f64 / base, 3),
            format!("{} us", f(be.latency_us, 1)),
            vs_sw(be.latency_us),
        ]),
        None => t.row(vec![
            "optimal".into(),
            "failed: every sweep point failed".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]),
    };
    let sw_line = match sw_ns {
        Some(s) => format!(
            "SW baseline: BLS24-509 pairing {} ms from the shared CostModel ({}).\n",
            f(s / 1e6, 2),
            model.describe()
        ),
        None => format!(
            "SW baseline: BLS24-509 pairing unavailable in the CostModel ({}).\n",
            model.describe()
        ),
    };
    format!(
        "{}(paper: disabling Karatsuba at p2/p4 reduces cycles on single-issue; optimal < all-karatsuba)\n{sw_line}",
        t.render()
    )
}

/// Figure 6: area breakdown, 1-core vs 8-core.
fn fig6() -> String {
    let curve = Curve::by_name("BN254N");
    let hw = HwModel::paper_default();
    let compiled = compile_pairing(
        &curve,
        &default_variants(&curve),
        &hw,
        &CompileOptions::default(),
    )
    .unwrap();
    let mut out = String::new();
    for cores in [1u32, 8] {
        let b = area_breakdown(
            &hw,
            &AreaInputs {
                field_bits: curve.p().bits() as u32,
                imem_bytes: compiled.image.imem_bytes(),
                live_registers: compiled.regs.peak_live as usize,
                cores,
            },
        );
        out.push_str(&format!(
            "{cores}-core: total {:.2} mm2 | imem {:.2} ({:.0}%) dmem {:.2} ({:.0}%) alu {:.2} ({:.0}%), mmul {:.0}% of alu\n",
            b.total(),
            b.imem,
            100.0 * b.imem / b.total(),
            b.dmem,
            100.0 * b.dmem / b.total(),
            b.alu,
            100.0 * b.alu / b.total(),
            100.0 * b.mmul_share_of_alu(),
        ));
    }
    out.push_str("(paper: 1-core 1.77 mm2 with imem ~50%; 8-core 8.00 mm2 with imem ~11%, mmul 89% of ALU)\n");
    out
}

/// Figure 8: scalability across the seven curves.
fn fig8() -> String {
    let mut t = TextTable::new(&[
        "curve",
        "k·log p",
        "cycles",
        "delay us",
        "area mm2",
        "delay/sec",
        "area/klogp",
        "area/k2log2p",
        "sec bits",
    ]);
    for name in CURVES {
        let curve = Curve::by_name(name);
        let e = evaluate_point(
            &curve,
            &DesignPoint {
                label: name.into(),
                variants: default_variants(&curve),
                hw: HwModel::paper_default(),
            },
            1,
        )
        .unwrap();
        let klogp = (curve.k() * curve.p().bits()) as f64;
        let sec = security_bits(curve.family(), klogp);
        t.row(vec![
            name.into(),
            format!("{}", klogp as u64),
            e.cycles.to_string(),
            f(e.latency_us, 1),
            f(e.area.total(), 2),
            f(e.latency_us / sec, 3),
            f(e.area.total() * 1e6 / klogp, 0),
            f(e.area.total() * 1e12 / (klogp * klogp) / 1e6, 4),
            f(sec, 0),
        ]);
    }
    format!(
        "{}(paper: delay ~linear in k·log p; area slightly superlinear, far below quadratic; delay/security stable)\n",
        t.render()
    )
}

/// Figure 9: issue-queue occupancy before/after scheduling.
fn fig9() -> String {
    let mut out = String::new();
    let window = (10_000u64, 10_080u64);
    for name in CURVES {
        let curve = Curve::by_name(name);
        let variants = default_variants(&curve);
        let hw = HwModel::paper_default();
        let render = |opts: &CompileOptions, tag: &str, out: &mut String| {
            let c = compile_pairing(&curve, &variants, &hw, opts).unwrap();
            let insts = c.image.spec.decode(&c.image.words).unwrap();
            let r = simulate(&insts, &hw, Some(window));
            let tr = r.trace.unwrap();
            let line: String = tr
                .slots
                .iter()
                .map(|row| match row[0] {
                    finesse_sim::SlotKind::Long => 'M',
                    finesse_sim::SlotKind::Short => 'a',
                    finesse_sim::SlotKind::Inverse => 'I',
                    finesse_sim::SlotKind::Empty => '.',
                })
                .collect();
            out.push_str(&format!(
                "{name:>10} {tag}: {line}  (bubbles {:.0}%)\n",
                100.0 * tr.bubble_fraction()
            ));
        };
        render(&CompileOptions::baseline(), "before", &mut out);
        render(&CompileOptions::default(), "after ", &mut out);
    }
    out.push_str("(cycles 10000..10080; M = Long issue, a = Short issue, . = bubble — paper Fig. 9: bubbles vanish after scheduling)\n");
    out
}

/// Figure 10: DSE over variant combinations × pipeline configurations
/// (BLS24-509).
fn fig10() -> String {
    let curve = Curve::by_name("BLS24-509");
    let results = explore(&curve, figure10_points(&curve), 1);
    let mut t = TextTable::new(&["hw model", "variants", "cycles (x1e4)", "ipc"]);
    for (p, r) in &results {
        match r {
            Ok(e) => {
                t.row(vec![
                    p.hw.name.clone(),
                    p.label.split(" @ ").next().unwrap_or("?").into(),
                    f(e.cycles as f64 / 1e4, 1),
                    f(e.ipc, 2),
                ]);
            }
            Err(e) => {
                t.row(vec![
                    p.hw.name.clone(),
                    p.label.clone(),
                    format!("failed: {e}"),
                    "-".into(),
                ]);
            }
        }
    }
    // Exhaustive "Optimal" on two representative models.
    let mut extra = String::new();
    for hw in [HwModel::single_issue(38, 8), HwModel::vliw(6, 8, 2)] {
        let sweep = explore(&curve, variant_sweep_points(&curve, &hw), 1);
        if let Some((bp, be)) = best_point(&sweep, Objective::Cycles) {
            extra.push_str(&format!(
                "optimal on {}: {} with {} cycles\n",
                hw.name,
                bp.variants.tag(),
                be.cycles
            ));
        }
    }
    format!(
        "{}{extra}(paper: manual ≈ optimal on single-issue; all-Karatsuba viable with ≥4 linear units)\n",
        t.render()
    )
}

/// Figure 11: co-design over the mmul pipeline-depth family (BN254N).
fn fig11() -> String {
    let curve = Curve::by_name("BN254N");
    let variants = default_variants(&curve);
    let depths: Vec<u32> = (14..=41).step_by(3).collect();
    let sweep = codesign_alu_sweep(&curve, &depths, &variants).unwrap();
    let mut t = TextTable::new(&["long cycles", "crit path ns", "IPC", "throughput kops"]);
    for p in &sweep {
        t.row(vec![
            p.depth.to_string(),
            f(p.critical_path_ns, 2),
            f(p.ipc, 3),
            f(p.throughput_kops, 1),
        ]);
    }
    let best = sweep
        .iter()
        .max_by(|a, b| a.throughput_kops.total_cmp(&b.throughput_kops))
        .unwrap();
    format!(
        "{}optimal depth: {} (paper: 38)\n(paper: IPC drops with depth; critical path saturates; interior optimum)\n",
        t.render(),
        best.depth
    )
}

/// Figure 12: quad-core chip summary.
fn fig12() -> String {
    let curve = Curve::by_name("BN254N");
    let hw = HwModel::paper_default();
    let e4 = evaluate_point(
        &curve,
        &DesignPoint {
            label: "4-core".into(),
            variants: default_variants(&curve),
            hw,
        },
        4,
    )
    .unwrap();
    format!(
        "quad-core {} summary:\n  technology    : 40nm LP @ 1.1V\n  area          : {:.3} mm2\n  gate count    : {:.1}k NAND2 equiv. (logic)\n  SRAM          : {:.0} KiB\n  frequency     : {:.0} MHz\n  pairing delay : {:.1} us\n  throughput    : {:.1} kops\n(paper: 7.992 mm2, 3558.9k gates, 272 KiB, 833 MHz, 76.3 us, 52.4 kops)\n",
        curve.name(),
        e4.area.total(),
        e4.area.logic_gate_count() / 1000.0,
        e4.area.sram_kib(),
        e4.frequency_mhz,
        e4.latency_us,
        e4.throughput_ops / 1000.0,
    )
}
