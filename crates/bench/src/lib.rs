//! Shared helpers for the Finesse experiment harness (see the
//! `experiments` binary, which regenerates every table and figure of the
//! paper's evaluation).

use std::fmt::Write as _;

/// A plain-text table builder for experiment output.
#[derive(Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1)))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a large count compactly (`55.3k` style).
pub fn kfmt(v: usize) -> String {
    if v >= 10_000 {
        format!("{:.1}k", v as f64 / 1000.0)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn number_formats() {
        assert_eq!(kfmt(55_300), "55.3k");
        assert_eq!(kfmt(42), "42");
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
