//! Deferred pairing accumulation: randomized batch verification.
//!
//! A verifier that checks n pairing equations one at a time pays 2n
//! Miller loops and n final exponentiations. [`PairingAccumulator`]
//! defers them all: callers push checks `e(Aᵢ, Bᵢ) =? e(Cᵢ, Dᵢ)` and a
//! single [`PairingAccumulator::settle`] folds the batch with
//! random-linear-combination coefficients ρᵢ — the equation
//!
//! ```text
//! Π e(ρᵢ·Aᵢ, Bᵢ) · e(−ρᵢ·Cᵢ, Dᵢ) = 1
//! ```
//!
//! holds for every honest batch, and a batch containing any false check
//! only survives if the ρᵢ land on the cheating element's discrete-log
//! relation — probability ≤ 2⁻¹²⁷ per settle for the 128-bit randomizers
//! drawn here. The G1 scalings collapse into short-scalar MSMs (one per
//! distinct G2 point, normalised together with one shared inversion), so
//! the whole batch costs one Miller loop per *distinct* G2 point plus
//! one final exponentiation — for n BLS verifications against s signers
//! that is `1 + s` loops instead of `2n` pairings.
//!
//! Randomizers come from a [`Transcript`] seeded over every pushed point
//! (Fiat–Shamir shape: nothing is drawn until the batch is closed, so
//! each ρᵢ depends on all checks). The concrete instantiation is the
//! crate's [`SplitMix64Transcript`] — a deterministic stand-in for an
//! extensible-output hash that makes batches reproducible for tests and
//! benches; a deployment against adversarial provers swaps in a
//! cryptographic sponge behind the same [`Transcript`] trait.

use crate::prepared::G2Prepared;
use crate::transcript::{SplitMix64Transcript, Transcript};
use crate::value::PairingEngine;
use finesse_curves::{affine_neg, Affine, FpOps};
use finesse_ff::{BigUint, Fp, Fq};
use std::sync::Arc;

/// One deferred check `e(a, b) =? e(c, d)`.
struct Check {
    a: Affine<Fp>,
    b: Affine<Fq>,
    c: Affine<Fp>,
    d: Affine<Fq>,
}

/// Accumulates pairing-equation checks and settles them all with one
/// multi-Miller loop and one final exponentiation.
///
/// ```no_run
/// use finesse_curves::Curve;
/// use finesse_pairing::{PairingAccumulator, PairingEngine};
/// use finesse_ff::BigUint;
///
/// let curve = Curve::by_name("BLS12-381");
/// let engine = PairingEngine::new(curve.clone());
/// let g1 = curve.g1_generator();
/// let g2 = curve.g2_generator();
/// let two = BigUint::from_u64(2);
/// let mut acc = PairingAccumulator::new(&engine);
/// // e([2]G1, G2) =? e(G1, [2]G2) — and as many more checks as you like.
/// acc.push_check(&curve.g1_mul(g1, &two), g2, g1, &curve.g2_mul(g2, &two));
/// assert!(acc.settle());
/// ```
pub struct PairingAccumulator<'e> {
    engine: &'e PairingEngine,
    transcript: SplitMix64Transcript,
    checks: Vec<Check>,
}

impl<'e> PairingAccumulator<'e> {
    /// An empty accumulator with the default domain label.
    pub fn new(engine: &'e PairingEngine) -> Self {
        Self::with_label(engine, b"finesse-pairing-batch-v1")
    }

    /// An empty accumulator under a caller-chosen domain label
    /// (different protocols on one engine should not share a challenge
    /// stream).
    pub fn with_label(engine: &'e PairingEngine, label: &[u8]) -> Self {
        let mut transcript = SplitMix64Transcript::new(label);
        transcript.absorb_bytes(engine.curve().name().as_bytes());
        PairingAccumulator {
            engine,
            transcript,
            checks: Vec::new(),
        }
    }

    /// Defers the check `e(a, b) =? e(c, d)`, absorbing all four points
    /// into the transcript.
    pub fn push_check(&mut self, a: &Affine<Fp>, b: &Affine<Fq>, c: &Affine<Fp>, d: &Affine<Fq>) {
        self.transcript.absorb_g1(a);
        self.transcript.absorb_g2(b);
        self.transcript.absorb_g1(c);
        self.transcript.absorb_g2(d);
        self.checks.push(Check {
            a: a.clone(),
            b: b.clone(),
            c: c.clone(),
            d: d.clone(),
        });
    }

    /// Checks pushed so far.
    pub fn len(&self) -> usize {
        self.checks.len()
    }

    /// True iff nothing was pushed (an empty batch settles as `true`).
    pub fn is_empty(&self) -> bool {
        self.checks.is_empty()
    }

    /// Settles the batch: draws one ~128-bit randomizer per check from
    /// the transcript, aggregates the G1 sides with one short-scalar MSM
    /// per distinct G2 point (normalised together with a single shared
    /// inversion), and verifies the folded product with one multi-Miller
    /// loop over prepared G2 points plus one final exponentiation.
    ///
    /// Returns `true` iff every pushed check holds (up to the ≤ 2⁻¹²⁷
    /// random-linear-combination soundness error). An empty batch is
    /// vacuously `true`.
    pub fn settle(mut self) -> bool {
        if self.checks.is_empty() {
            return true;
        }
        let checks = std::mem::take(&mut self.checks);
        let rhos = self.draw_randomizers(checks.len());
        let all: Vec<usize> = (0..checks.len()).collect();
        self.verify_subset(&checks, &rhos, &all)
    }

    /// Settles the batch like [`PairingAccumulator::settle`], but on
    /// failure *isolates* the offending checks instead of discarding
    /// the whole batch: the pushed checks are bisected (with the same
    /// per-check randomizers, so subset products compose exactly) and
    /// the indices of every failing check are returned, in push order.
    ///
    /// With the randomizers fixed up front the folded product of a
    /// parent subset is the product of its halves, so a failing subset
    /// always has a failing half — the search visits O(k·log n) subsets
    /// for k bad checks among n, and every subset verification reuses
    /// the engine's cached `G2Prepared` line schedules (the Miller-loop
    /// precomputation is paid once per distinct G2 point, not once per
    /// bisection level).
    ///
    /// # Errors
    ///
    /// `Err(indices)` lists every check (by push order) whose equation
    /// does not hold; `Ok(())` means the whole batch verified. An
    /// empty batch is vacuously `Ok(())`.
    pub fn settle_isolating(mut self) -> Result<(), Vec<usize>> {
        if self.checks.is_empty() {
            return Ok(());
        }
        let checks = std::mem::take(&mut self.checks);
        let rhos = self.draw_randomizers(checks.len());
        let all: Vec<usize> = (0..checks.len()).collect();
        if self.verify_subset(&checks, &rhos, &all) {
            return Ok(());
        }
        let mut bad = Vec::new();
        // Depth-first bisection; only failing subsets are split further.
        let mut stack = vec![all];
        while let Some(subset) = stack.pop() {
            if subset.len() == 1 {
                bad.extend(subset);
                continue;
            }
            let (left, right) = subset.split_at(subset.len() / 2);
            for half in [left, right] {
                if !self.verify_subset(&checks, &rhos, half) {
                    stack.push(half.to_vec());
                }
            }
        }
        bad.sort_unstable();
        Err(bad)
    }

    /// Draws one ~128-bit randomizer per check (transcript order ==
    /// push order, after all points were absorbed).
    fn draw_randomizers(&mut self, n: usize) -> Vec<BigUint> {
        (0..n).map(|_| self.transcript.challenge_short()).collect()
    }

    /// Verifies the folded product over the checks selected by
    /// `indices`, using the fixed per-check randomizers.
    fn verify_subset(&self, checks: &[Check], rhos: &[BigUint], indices: &[usize]) -> bool {
        let curve = Arc::clone(self.engine.curve());
        let ops = FpOps(Arc::clone(curve.fp()));

        // One G1 aggregation group per distinct G2 point: ρ·A joins B's
        // group, −ρ·C joins D's. A pairing whose G1 or G2 side is the
        // identity contributes the GT identity and drops out here.
        let mut g2s: Vec<Affine<Fq>> = Vec::new();
        let mut groups: Vec<(Vec<Affine<Fp>>, Vec<BigUint>)> = Vec::new();
        let mut push_term = |q: &Affine<Fq>, p: Affine<Fp>, rho: BigUint| {
            if q.infinity || p.infinity {
                return;
            }
            let idx = match g2s.iter().position(|seen| seen == q) {
                Some(idx) => idx,
                None => {
                    g2s.push(q.clone());
                    groups.push((Vec::new(), Vec::new()));
                    g2s.len() - 1
                }
            };
            groups[idx].0.push(p);
            groups[idx].1.push(rho);
        };
        for &i in indices {
            let (Some(check), Some(rho)) = (checks.get(i), rhos.get(i)) else {
                return false;
            };
            push_term(&check.b, check.a.clone(), rho.clone());
            push_term(&check.d, affine_neg(&ops, &check.c), rho.clone());
        }

        // Groups pair one scalar per point by construction, so the MSM
        // length check cannot fail; treat the impossible error as a
        // failed verification rather than aborting.
        let Ok(aggs) = curve.g1_msm_short_groups(&groups) else {
            return false;
        };
        let pairs: Vec<(Affine<Fp>, Arc<G2Prepared>)> = g2s
            .iter()
            .zip(aggs)
            .filter(|(_, agg)| !agg.infinity)
            .map(|(q, agg)| (agg, self.engine.prepare_g2(q)))
            .collect();
        self.engine
            .gt_is_one(&self.engine.multi_pair_prepared(&pairs))
    }
}
