//! Prepared G2 points: precomputed Miller-loop line schedules.
//!
//! The line coefficients a Miller loop produces depend only on the G2
//! point and the curve's static schedule (NAF digits of the Miller
//! parameter, BN ψ-tail) — never on the G1 side. [`G2Prepared`] runs that
//! Q-side once and records the ordered coefficient triples, so every
//! later pairing against the same Q replays the schedule
//! ([`crate::flow::emit_miller_loop_with_lines`]) and skips all
//! projective doubling/addition work. This is the ark/halo2 `G2Prepared`
//! idiom; it pays off exactly where serving workloads concentrate —
//! long-lived BLS public keys, the G2 generator, a KZG SRS element
//! `[τ]₂` — and the engine keeps a bounded cache of them
//! ([`crate::PairingEngine::prepare_g2`]).

use crate::flow::emit_g2_line_schedule;
use crate::value::ValueFlow;
use finesse_curves::{Affine, Curve};
use finesse_ff::Fq;

/// A G2 point with its Miller-loop line schedule precomputed.
///
/// Values are immutable once built and freely shareable across threads
/// (`Arc<G2Prepared>` is how the engine cache hands them out). The
/// identity prepares to an empty schedule — pairings against it are the
/// GT identity and never replay anything.
pub struct G2Prepared {
    point: Affine<Fq>,
    lines: Vec<[Fq; 3]>,
}

impl G2Prepared {
    /// Runs the Q-side of the curve's Miller schedule once, recording
    /// every line's `(ly, lx, lt)` in consumption order.
    pub fn new(curve: &Curve, q: &Affine<Fq>) -> Self {
        if q.infinity {
            return G2Prepared {
                point: q.clone(),
                lines: Vec::new(),
            };
        }
        // The flow only evaluates F_q arithmetic here; the G1 slot is a
        // placeholder (the generator) and is never read by the schedule.
        let g1 = curve.g1_generator().clone();
        let mut flow = ValueFlow::new(curve, &g1, q);
        let lines = emit_g2_line_schedule(curve, &mut flow, &q.x, &q.y);
        G2Prepared {
            point: q.clone(),
            lines,
        }
    }

    /// The underlying affine point.
    pub fn point(&self) -> &Affine<Fq> {
        &self.point
    }

    /// True iff this prepares the identity (empty schedule).
    pub fn is_infinity(&self) -> bool {
        self.point.infinity
    }

    /// The recorded line schedule, in consumption order.
    pub fn lines(&self) -> &[[Fq; 3]] {
        &self.lines
    }
}
