//! An independent, textbook pairing used purely as a correctness oracle.
//!
//! This implementation shares *nothing* with the optimised flow: it
//! untwists Q into E(F_p^k), runs a plain binary (non-NAF) Miller loop with
//! affine arithmetic and chord/tangent lines in the full extension field,
//! and finishes with a generic `(p^k − 1)/r` exponentiation. It is slow
//! and that is the point — two implementations this different agreeing on
//! random inputs is strong evidence both are right (the role external
//! libraries play in the paper's validation flow).

use finesse_curves::{Affine, Curve, Family, TwistKind};
use finesse_ff::{Fp, Fpk, Fq};

/// A point of E(F_p^k) in affine coordinates (None = infinity).
type FullPoint = Option<(Fpk, Fpk)>;

/// Computes the optimal-Ate pairing via the naive path.
///
/// For BLS curves the result is raised to `3(p^k−1)/r` to match the HKT
/// normalisation of [`crate::PairingEngine`].
pub fn oracle_pair(curve: &Curve, p: &Affine<Fp>, q: &Affine<Fq>) -> Fpk {
    let tower = curve.tower();
    if p.infinity || q.infinity {
        return tower.fpk_one();
    }
    let f = oracle_miller(curve, p, q);
    // The oracle only runs against construction-validated curves, for
    // which r | p^k − 1 holds by definition; the fallback keeps the
    // path total for the panic-free lint gate.
    let Ok(mut e) = curve.final_exp_full() else {
        return tower.fpk_one();
    };
    if matches!(curve.family(), Family::Bls12 | Family::Bls24) {
        e = &(&e + &e) + &e; // 3·(p^k − 1)/r
    }
    tower.fpk_pow(&f, &e)
}

/// Untwists a twist point into E(F_p^k) full coordinates.
pub fn untwist(curve: &Curve, q: &Affine<Fq>) -> (Fpk, Fpk) {
    let tower = curve.tower();
    // Build w² and w³ basis elements.
    let one = tower.fq_one();
    let w2 = tower.fpk_from_sparse([None, None, Some(one.clone()), None, None, None]);
    let w3 = tower.fpk_from_sparse([None, None, None, Some(one), None, None]);
    let xk = tower.fpk_mul_fq(&w2, &q.x);
    let yk = tower.fpk_mul_fq(&w3, &q.y);
    match curve.twist() {
        TwistKind::D => (xk, yk),
        TwistKind::M => {
            // (x/w², y/w³)
            let w2_inv = tower.fpk_inv(&w2);
            let w3_inv = tower.fpk_inv(&w3);
            (
                tower.fpk_mul(&tower.fpk_from_fq(&q.x), &w2_inv),
                tower.fpk_mul(&tower.fpk_from_fq(&q.y), &w3_inv),
            )
        }
    }
}

fn embed_g1(curve: &Curve, p: &Affine<Fp>) -> (Fpk, Fpk) {
    let tower = curve.tower();
    (
        tower.fpk_from_fq(&tower.fq_from_fp(&p.x)),
        tower.fpk_from_fq(&tower.fq_from_fp(&p.y)),
    )
}

/// Affine doubling in E(F_p^k); returns the new point and the tangent
/// line evaluated at `(px, py)`.
fn dbl_eval(curve: &Curve, t: &FullPoint, px: &Fpk, py: &Fpk) -> (FullPoint, Fpk) {
    let k = curve.tower();
    let Some((x, y)) = t else {
        return (None, k.fpk_one());
    };
    if k.fpk_is_zero(y) {
        return (None, k.fpk_one());
    }
    // λ = 3x²/(2y)
    let x2 = k.fpk_sqr(x);
    let num = k.fpk_add(&k.fpk_add(&x2, &x2), &x2);
    let den = k.fpk_add(y, y);
    let lambda = k.fpk_mul(&num, &k.fpk_inv(&den));
    let x3 = k.fpk_sub(&k.fpk_sqr(&lambda), &k.fpk_add(x, x));
    let y3 = k.fpk_sub(&k.fpk_mul(&lambda, &k.fpk_sub(x, &x3)), y);
    // ℓ(P) = (yP − y) − λ(xP − x)
    let l = k.fpk_sub(&k.fpk_sub(py, y), &k.fpk_mul(&lambda, &k.fpk_sub(px, x)));
    (Some((x3, y3)), l)
}

/// Affine chord addition; returns the new point and the chord line at P.
fn add_eval(curve: &Curve, t: &FullPoint, q: &(Fpk, Fpk), px: &Fpk, py: &Fpk) -> (FullPoint, Fpk) {
    let k = curve.tower();
    let Some((x1, y1)) = t else {
        return (Some(q.clone()), k.fpk_one());
    };
    let (x2, y2) = q;
    if x1 == x2 {
        if y1 == y2 {
            return dbl_eval(curve, t, px, py);
        }
        // vertical line: T + (−T) = O; vertical evaluations die in the
        // final exponentiation, so contribute 1.
        return (None, k.fpk_one());
    }
    let lambda = k.fpk_mul(&k.fpk_sub(y2, y1), &k.fpk_inv(&k.fpk_sub(x2, x1)));
    let x3 = k.fpk_sub(&k.fpk_sub(&k.fpk_sqr(&lambda), x1), x2);
    let y3 = k.fpk_sub(&k.fpk_mul(&lambda, &k.fpk_sub(x1, &x3)), y1);
    let l = k.fpk_sub(&k.fpk_sub(py, y1), &k.fpk_mul(&lambda, &k.fpk_sub(px, x1)));
    (Some((x3, y3)), l)
}

/// The naive Miller loop in E(F_p^k) (binary expansion, affine formulas).
pub fn oracle_miller(curve: &Curve, p: &Affine<Fp>, q: &Affine<Fq>) -> Fpk {
    let k = curve.tower();
    let (px, py) = embed_g1(curve, p);
    let qk = untwist(curve, q);
    let param = curve.miller_param();
    let c = param.magnitude();

    let mut f = k.fpk_one();
    let mut t: FullPoint = Some(qk.clone());
    for i in (0..c.bits().saturating_sub(1)).rev() {
        f = k.fpk_sqr(&f);
        let (t2, l) = dbl_eval(curve, &t, &px, &py);
        f = k.fpk_mul(&f, &l);
        t = t2;
        if c.bit(i) {
            let (t2, l) = add_eval(curve, &t, &qk, &px, &py);
            f = k.fpk_mul(&f, &l);
            t = t2;
        }
    }
    if param.is_negative() {
        f = k.fpk_conj(&f);
        t = t.map(|(x, y)| (x, k.fpk_neg(&y)));
    }
    if curve.family() == Family::Bn {
        // Q1 = π(Q̃), Q2 = −π²(Q̃) — coordinate-wise Frobenius in Fpk.
        let q1 = (k.fpk_frob(&qk.0, 1), k.fpk_frob(&qk.1, 1));
        let q2 = (k.fpk_frob(&qk.0, 2), k.fpk_neg(&k.fpk_frob(&qk.1, 2)));
        let (t2, l) = add_eval(curve, &t, &q1, &px, &py);
        f = k.fpk_mul(&f, &l);
        t = t2;
        let (_, l) = add_eval(curve, &t, &q2, &px, &py);
        f = k.fpk_mul(&f, &l);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_curves::Curve;

    #[test]
    fn untwist_lands_on_full_curve() {
        for name in ["BN254N", "BLS12-381"] {
            let c = Curve::by_name(name);
            let k = c.tower();
            let (x, y) = untwist(&c, c.g2_generator());
            // y² = x³ + b over Fpk
            let lhs = k.fpk_sqr(&y);
            let b = k.fpk_from_fq(&k.fq_from_fp(c.b()));
            let rhs = k.fpk_add(&k.fpk_mul(&k.fpk_sqr(&x), &x), &b);
            assert_eq!(lhs, rhs, "{name}: untwisted G2 is on E(Fp^k)");
        }
    }

    #[test]
    fn oracle_pairing_is_nondegenerate_and_order_r() {
        let c = Curve::by_name("BN254N");
        let e = oracle_pair(&c, c.g1_generator(), c.g2_generator());
        let k = c.tower();
        assert!(!k.fpk_is_one(&e), "e(G1, G2) != 1");
        assert!(
            k.fpk_is_one(&k.fpk_pow(&e, c.r())),
            "e has order dividing r"
        );
    }
}
