//! The reference pairing engine: [`PairingFlow`] evaluated on concrete
//! field elements.
//!
//! This plays the role that MCL/MIRACL/RELIC play for the paper's
//! validation flow — a known-good software pairing the compiled
//! accelerator programs are cross-checked against (here additionally
//! backed by the fully independent [`crate::oracle`] implementation).

use crate::flow::{
    emit_final_exponentiation, emit_miller_loop, emit_miller_loop_with_lines, emit_pairing,
    PairingFlow,
};
use crate::prepared::G2Prepared;
use finesse_curves::cache::{g2_point_key, PointKeyedCache};
use finesse_curves::{Affine, Curve};
use finesse_ff::{BigUint, Fp, Fpk, Fq};
use std::sync::{Arc, Mutex};

/// A [`PairingFlow`] that computes on real field elements.
pub struct ValueFlow<'c> {
    curve: &'c Curve,
    p: (Fp, Fp),
    q: (Fq, Fq),
    output: Option<Fpk>,
}

impl<'c> ValueFlow<'c> {
    /// Creates a flow bound to concrete (finite) input points.
    ///
    /// # Panics
    ///
    /// Panics if either point is at infinity — callers handle identity
    /// inputs before entering the flow (see [`PairingEngine::pair`]).
    pub fn new(curve: &'c Curve, p: &Affine<Fp>, q: &Affine<Fq>) -> Self {
        assert!(
            !p.infinity && !q.infinity,
            "flow inputs must be finite points"
        );
        ValueFlow {
            curve,
            p: (p.x.clone(), p.y.clone()),
            q: (q.x.clone(), q.y.clone()),
            output: None,
        }
    }

    /// The recorded output, if [`PairingFlow::output`] ran.
    pub fn take_output(&mut self) -> Option<Fpk> {
        self.output.take()
    }
}

impl PairingFlow for ValueFlow<'_> {
    type Fp = Fp;
    type Fq = Fq;
    type Fpk = Fpk;

    fn input_p(&mut self) -> (Fp, Fp) {
        self.p.clone()
    }
    fn input_q(&mut self) -> (Fq, Fq) {
        self.q.clone()
    }
    fn output(&mut self, f: &Fpk) {
        self.output = Some(f.clone());
    }
    fn fq_constant(&mut self, value: &Fq, _label: &str) -> Fq {
        value.clone()
    }
    fn fq_add(&mut self, a: &Fq, b: &Fq) -> Fq {
        self.curve.tower().fq_add(a, b)
    }
    fn fq_sub(&mut self, a: &Fq, b: &Fq) -> Fq {
        self.curve.tower().fq_sub(a, b)
    }
    fn fq_neg(&mut self, a: &Fq) -> Fq {
        self.curve.tower().fq_neg(a)
    }
    fn fq_mul(&mut self, a: &Fq, b: &Fq) -> Fq {
        self.curve.tower().fq_mul(a, b)
    }
    fn fq_sqr(&mut self, a: &Fq) -> Fq {
        self.curve.tower().fq_sqr(a)
    }
    fn fq_muli(&mut self, a: &Fq, k: u64) -> Fq {
        self.curve.tower().fq_mul_small(a, k)
    }
    fn fq_mul_fp(&mut self, a: &Fq, s: &Fp) -> Fq {
        self.curve.tower().fq_mul_fp(a, s)
    }
    fn fq_frob(&mut self, a: &Fq, j: usize) -> Fq {
        self.curve.tower().fq_frob(a, j)
    }
    fn fpk_one(&mut self) -> Fpk {
        self.curve.tower().fpk_one()
    }
    fn fpk_mul(&mut self, a: &Fpk, b: &Fpk) -> Fpk {
        self.curve.tower().fpk_mul(a, b)
    }
    fn fpk_sqr(&mut self, a: &Fpk) -> Fpk {
        self.curve.tower().fpk_sqr(a)
    }
    fn fpk_cyclo_sqr(&mut self, a: &Fpk) -> Fpk {
        self.curve.tower().fpk_cyclotomic_sqr(a)
    }
    fn fpk_conj(&mut self, a: &Fpk) -> Fpk {
        self.curve.tower().fpk_conj(a)
    }
    fn fpk_inv(&mut self, a: &Fpk) -> Fpk {
        self.curve.tower().fpk_inv(a)
    }
    fn fpk_frob(&mut self, a: &Fpk, j: usize) -> Fpk {
        self.curve.tower().fpk_frob(a, j)
    }
    fn fpk_sparse(&mut self, coeffs: [Option<Fq>; 6]) -> Fpk {
        self.curve.tower().fpk_from_sparse(coeffs)
    }
    fn fpk_mul_sparse(&mut self, a: &Fpk, coeffs: [Option<Fq>; 6]) -> Fpk {
        // Dedicated 13-mul line kernel (bit-identical to densify + mul).
        self.curve.tower().fpk_mul_sparse(a, &coeffs)
    }
}

/// The optimal-Ate pairing engine for a curve.
///
/// # Examples
///
/// ```no_run
/// use finesse_curves::Curve;
/// use finesse_pairing::PairingEngine;
/// use finesse_ff::BigUint;
///
/// let curve = Curve::by_name("BN254N");
/// let engine = PairingEngine::new(curve.clone());
/// let g1 = curve.g1_generator();
/// let g2 = curve.g2_generator();
/// let e = engine.pair(g1, g2);
/// // bilinearity: e([2]P, Q) = e(P, Q)²
/// let two = BigUint::from_u64(2);
/// let lhs = engine.pair(&curve.g1_mul(g1, &two), g2);
/// assert_eq!(lhs, engine.gt_pow(&e, &two));
/// ```
pub struct PairingEngine {
    curve: Arc<Curve>,
    /// Bounded LRU cache of prepared G2 points, keyed by canonical
    /// coordinates. Serving workloads pair against a handful of
    /// long-lived G2 points (public keys, the generator, a KZG `[τ]₂`);
    /// caching their line schedules drops the Q-side of every repeat
    /// Miller loop.
    prepared: Mutex<PointKeyedCache<G2Prepared>>,
}

/// Prepared-point cache bound: generous for real verifier key sets (a
/// few long-lived G2 points) while keeping worst-case memory at
/// `capacity × schedule length × |F_q|` even if an adversarial workload
/// cycles through unbounded distinct points.
const G2_PREPARED_CACHE_CAPACITY: usize = 32;

impl PairingEngine {
    /// Creates an engine for a curve.
    pub fn new(curve: Arc<Curve>) -> Self {
        PairingEngine {
            curve,
            prepared: Mutex::new(PointKeyedCache::new(G2_PREPARED_CACHE_CAPACITY)),
        }
    }

    /// The engine's curve.
    pub fn curve(&self) -> &Arc<Curve> {
        &self.curve
    }

    /// The prepared G2 point for `q`, served from the engine's bounded
    /// cache (built on first use, `Arc`-shared afterwards; least-recently
    /// used entries are evicted at capacity). Both
    /// [`PairingEngine::multi_pair`] and the
    /// [`crate::PairingAccumulator`] route through this, so a repeat
    /// verifier's Miller loops skip all per-call line computation.
    pub fn prepare_g2(&self, q: &Affine<Fq>) -> Arc<G2Prepared> {
        let key = g2_point_key(q);
        // Recover from a poisoned lock: the cache only holds fully built
        // schedules, so its state is valid even after a panic elsewhere.
        let mut cache = self
            .prepared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        cache.get_or_insert_with(key, || G2Prepared::new(&self.curve, q))
    }

    /// `(len, capacity)` of the prepared-point cache — observability for
    /// tests and capacity planning, not a stability guarantee.
    pub fn prepared_cache_stats(&self) -> (usize, usize) {
        let cache = self
            .prepared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (cache.len(), cache.capacity())
    }

    /// Computes the optimal-Ate pairing `e(P, Q)`.
    ///
    /// Identity inputs map to the identity of GT. For BLS curves the
    /// result is normalised as `e(P,Q)^(3(p^k−1)/r)` (HKT convention, see
    /// [`crate::flow::emit_final_exponentiation`]).
    pub fn pair(&self, p: &Affine<Fp>, q: &Affine<Fq>) -> Fpk {
        if p.infinity || q.infinity {
            return self.curve.tower().fpk_one();
        }
        let mut flow = ValueFlow::new(&self.curve, p, q);
        emit_pairing(&self.curve, &mut flow);
        // emit_pairing always emits an Output step; the GT identity is
        // the safe value if that invariant ever breaks.
        flow.take_output()
            .unwrap_or_else(|| self.curve.tower().fpk_one())
    }

    /// Product of pairings `Π e(P_i, Q_i)` with a single shared final
    /// exponentiation — the standard optimisation for verifiers that
    /// check pairing-product equations (BLS verify, Groth16, KZG).
    ///
    /// Repeated G2 inputs are deduplicated: each *distinct* Q gets one
    /// prepared line schedule (served from the engine's bounded cache,
    /// see [`PairingEngine::prepare_g2`]), and every Miller loop replays
    /// the schedule against its P — identical Q points share all Q-side
    /// work even without an explicit [`G2Prepared`] handle, and the
    /// replayed loops are bit-identical to the interleaved ones.
    ///
    /// The Miller loops are independent, so with more than one pair and
    /// [`finesse_parallel::current_threads`] above 1 they run on scoped
    /// threads; the Fpk loop values are then folded **in input order**
    /// and the single final exponentiation stays serial. Field
    /// multiplication in Fpk is commutative and associative, so the
    /// result is bit-identical to the serial pass at any thread count.
    pub fn multi_pair(&self, pairs: &[(Affine<Fp>, Affine<Fq>)]) -> Fpk {
        let tower = self.curve.tower();
        let live: Vec<&(Affine<Fp>, Affine<Fq>)> = pairs
            .iter()
            .filter(|(p, q)| !p.infinity && !q.infinity)
            .collect();
        if live.is_empty() {
            return tower.fpk_one();
        }
        // Dedupe the Q sides serially up front (the cache lock never
        // crosses into the parallel region), then replay per pair.
        let mut distinct: Vec<(&Affine<Fq>, Arc<G2Prepared>)> = Vec::new();
        let tasks: Vec<(&Affine<Fp>, Arc<G2Prepared>)> = live
            .iter()
            .map(|(p, q)| {
                let prep = match distinct.iter().find(|(seen, _)| *seen == q) {
                    Some((_, prep)) => Arc::clone(prep),
                    None => {
                        let prep = self.prepare_g2(q);
                        distinct.push((q, Arc::clone(&prep)));
                        prep
                    }
                };
                (p, prep)
            })
            .collect();
        // One Miller loop per chunk element; chunks of one pair keep the
        // schedule maximally balanced (a Miller loop is ~ms-scale, far
        // above spawn cost).
        let partials = finesse_parallel::par_map_chunks(&tasks, 1, |chunk| {
            let mut acc: Option<Fpk> = None;
            for (p, prep) in chunk {
                let m = self.miller_loop_prepared(p, prep);
                acc = Some(match acc {
                    Some(a) => tower.fpk_mul(&a, &m),
                    None => m,
                });
            }
            // par_map_chunks never passes an empty chunk; the GT
            // identity is the neutral fold value regardless.
            acc.unwrap_or_else(|| tower.fpk_one())
        });
        let product = partials
            .into_iter()
            .reduce(|a, b| tower.fpk_mul(&a, &b))
            // The live set is non-empty here, so there is at least one
            // partial; the identity keeps the fold total.
            .unwrap_or_else(|| tower.fpk_one());
        self.final_exponentiation(&product)
    }

    /// [`PairingEngine::multi_pair`] over caller-held prepared points —
    /// the deferred-accumulator hot path, where the Q-side schedules are
    /// already in hand and only the replay loops remain. Identity inputs
    /// (either side) contribute the GT identity; thread-count
    /// determinism matches `multi_pair`.
    pub fn multi_pair_prepared(&self, pairs: &[(Affine<Fp>, Arc<G2Prepared>)]) -> Fpk {
        let tower = self.curve.tower();
        let live: Vec<(&Affine<Fp>, &Arc<G2Prepared>)> = pairs
            .iter()
            .filter(|(p, prep)| !p.infinity && !prep.is_infinity())
            .map(|(p, prep)| (p, prep))
            .collect();
        if live.is_empty() {
            return tower.fpk_one();
        }
        let partials = finesse_parallel::par_map_chunks(&live, 1, |chunk| {
            let mut acc: Option<Fpk> = None;
            for (p, prep) in chunk {
                let m = self.miller_loop_prepared(p, prep);
                acc = Some(match acc {
                    Some(a) => tower.fpk_mul(&a, &m),
                    None => m,
                });
            }
            // par_map_chunks never passes an empty chunk; the GT
            // identity is the neutral fold value regardless.
            acc.unwrap_or_else(|| tower.fpk_one())
        });
        let product = partials
            .into_iter()
            .reduce(|a, b| tower.fpk_mul(&a, &b))
            // The live set is non-empty here, so there is at least one
            // partial; the identity keeps the fold total.
            .unwrap_or_else(|| tower.fpk_one());
        self.final_exponentiation(&product)
    }

    /// Checks a two-term pairing equation `e(P1, Q1) == e(P2, Q2)` via
    /// one product `e(P1, Q1)·e(−P2, Q2) == 1` (half the final
    /// exponentiations of the naive check).
    pub fn pairing_equation_holds(
        &self,
        p1: &Affine<Fp>,
        q1: &Affine<Fq>,
        p2: &Affine<Fp>,
        q2: &Affine<Fq>,
    ) -> bool {
        let ops = finesse_curves::FpOps(std::sync::Arc::clone(self.curve.fp()));
        let neg_p2 = finesse_curves::point::affine_neg(&ops, p2);
        let prod = self.multi_pair(&[(p1.clone(), q1.clone()), (neg_p2, q2.clone())]);
        self.gt_is_one(&prod)
    }

    /// The Miller loop alone (no final exponentiation).
    pub fn miller_loop(&self, p: &Affine<Fp>, q: &Affine<Fq>) -> Fpk {
        if p.infinity || q.infinity {
            return self.curve.tower().fpk_one();
        }
        let mut flow = ValueFlow::new(&self.curve, p, q);
        let (px, py) = flow.input_p();
        let (qx, qy) = flow.input_q();
        emit_miller_loop(&self.curve, &mut flow, &px, &py, &qx, &qy)
    }

    /// The Miller loop against a prepared G2 point: replays the recorded
    /// line schedule against `p`, bit-identical to
    /// [`PairingEngine::miller_loop`] on the same inputs.
    pub fn miller_loop_prepared(&self, p: &Affine<Fp>, prep: &G2Prepared) -> Fpk {
        if p.infinity || prep.is_infinity() {
            return self.curve.tower().fpk_one();
        }
        let mut flow = ValueFlow::new(&self.curve, p, prep.point());
        let (px, py) = flow.input_p();
        emit_miller_loop_with_lines(&self.curve, &mut flow, &px, &py, prep.lines())
    }

    /// The final exponentiation alone.
    pub fn final_exponentiation(&self, f: &Fpk) -> Fpk {
        let g1 = self.curve.g1_generator().clone();
        let g2 = self.curve.g2_generator().clone();
        let mut flow = ValueFlow::new(&self.curve, &g1, &g2);
        emit_final_exponentiation(&self.curve, &mut flow, f)
    }

    /// GT exponentiation.
    pub fn gt_pow(&self, g: &Fpk, e: &BigUint) -> Fpk {
        self.curve.tower().fpk_pow(g, e)
    }

    /// GT multiplication.
    pub fn gt_mul(&self, a: &Fpk, b: &Fpk) -> Fpk {
        self.curve.tower().fpk_mul(a, b)
    }

    /// The GT identity.
    pub fn gt_one(&self) -> Fpk {
        self.curve.tower().fpk_one()
    }

    /// True iff `g` is the GT identity.
    pub fn gt_is_one(&self, g: &Fpk) -> bool {
        self.curve.tower().fpk_is_one(g)
    }
}
