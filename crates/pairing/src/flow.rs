//! The optimal-Ate pairing algorithm, written once against an abstract
//! evaluator.
//!
//! [`PairingFlow`] is the paper's key co-design trick realised in Rust: the
//! *same* algorithm skeleton ([`emit_pairing`]) drives
//!
//! 1. the reference library ([`crate::value::ValueFlow`]) — operations
//!    execute on concrete field elements; and
//! 2. the compiler front-end (`finesse-compiler`'s `IrFlow`) — operations
//!    are recorded as hierarchical SSA IR for lowering and scheduling.
//!
//! Because both paths share one control skeleton (loop unrolling, NAF
//! digits, line placement, final-exponentiation chains), the functional
//! simulator's output can be compared bit-for-bit against the reference
//! pairing, reproducing the paper's validation flow.
//!
//! All control flow is static: NAF digits, Frobenius indices and chain
//! structure derive from curve parameters only, never from data — which is
//! also why the paper's accelerator is constant-time by construction.

use finesse_curves::{Curve, Family, TwistKind};
use finesse_ff::{BigInt, Fq};

/// Abstract evaluator for the pairing algorithm.
///
/// Methods take `&mut self` so recording implementations can append to
/// their program; compute implementations simply ignore the mutability.
pub trait PairingFlow {
    /// Base-field value handle.
    type Fp: Clone;
    /// Twist-field value handle.
    type Fq: Clone;
    /// Target-field value handle.
    type Fpk: Clone;

    /// Declares the G1 input point, returning `(x, y)`.
    fn input_p(&mut self) -> (Self::Fp, Self::Fp);
    /// Declares the G2 input point (twist coordinates), returning `(x, y)`.
    fn input_q(&mut self) -> (Self::Fq, Self::Fq);
    /// Declares the GT output.
    fn output(&mut self, f: &Self::Fpk);

    /// Materialises a curve constant (twist coefficient, ψ constants, 1).
    fn fq_constant(&mut self, value: &Fq, label: &str) -> Self::Fq;

    /// F_q addition.
    fn fq_add(&mut self, a: &Self::Fq, b: &Self::Fq) -> Self::Fq;
    /// F_q subtraction.
    fn fq_sub(&mut self, a: &Self::Fq, b: &Self::Fq) -> Self::Fq;
    /// F_q negation.
    fn fq_neg(&mut self, a: &Self::Fq) -> Self::Fq;
    /// F_q multiplication.
    fn fq_mul(&mut self, a: &Self::Fq, b: &Self::Fq) -> Self::Fq;
    /// F_q squaring.
    fn fq_sqr(&mut self, a: &Self::Fq) -> Self::Fq;
    /// F_q small-integer scaling.
    fn fq_muli(&mut self, a: &Self::Fq, k: u64) -> Self::Fq;
    /// F_q × F_p mixed scaling (line coefficients by P's coordinates).
    fn fq_mul_fp(&mut self, a: &Self::Fq, s: &Self::Fp) -> Self::Fq;
    /// F_q Frobenius.
    fn fq_frob(&mut self, a: &Self::Fq, j: usize) -> Self::Fq;

    /// The constant one of F_p^k.
    fn fpk_one(&mut self) -> Self::Fpk;
    /// F_p^k multiplication.
    fn fpk_mul(&mut self, a: &Self::Fpk, b: &Self::Fpk) -> Self::Fpk;
    /// F_p^k squaring.
    fn fpk_sqr(&mut self, a: &Self::Fpk) -> Self::Fpk;
    /// Cyclotomic squaring (only called on cyclotomic-subgroup values).
    fn fpk_cyclo_sqr(&mut self, a: &Self::Fpk) -> Self::Fpk;
    /// Conjugation (p^(k/2) Frobenius).
    fn fpk_conj(&mut self, a: &Self::Fpk) -> Self::Fpk;
    /// Inversion (exactly one per pairing, in the easy part).
    fn fpk_inv(&mut self, a: &Self::Fpk) -> Self::Fpk;
    /// Frobenius.
    fn fpk_frob(&mut self, a: &Self::Fpk, j: usize) -> Self::Fpk;
    /// Assembles a sparse element from `w`-power coefficients.
    fn fpk_sparse(&mut self, coeffs: [Option<Self::Fq>; 6]) -> Self::Fpk;

    /// Multiplies the accumulator by a sparse element (a Miller line).
    ///
    /// The default densifies and multiplies — recording flows keep their
    /// program shape unchanged (the compiler's constant-zero propagation
    /// recovers the sparsity, §4.3). Computing flows override this with a
    /// dedicated sparse kernel that skips the zero coefficients outright.
    fn fpk_mul_sparse(&mut self, a: &Self::Fpk, coeffs: [Option<Self::Fq>; 6]) -> Self::Fpk {
        let l = self.fpk_sparse(coeffs);
        self.fpk_mul(a, &l)
    }
}

/// A G2 point in homogeneous projective twist coordinates inside a flow.
struct ProjPoint<F: PairingFlow + ?Sized> {
    x: F::Fq,
    y: F::Fq,
    z: F::Fq,
}

impl<F: PairingFlow + ?Sized> Clone for ProjPoint<F> {
    fn clone(&self) -> Self {
        ProjPoint {
            x: self.x.clone(),
            y: self.y.clone(),
            z: self.z.clone(),
        }
    }
}

/// Line coefficients `(ly, lx, lt)` produced by a step: the line is
/// `ly·yP + lx·xP·w + lt·w³` (D-twist placement) or the `w³`-scaled
/// M-twist arrangement.
struct LineCoeffs<F: PairingFlow + ?Sized> {
    ly: F::Fq,
    lx: F::Fq,
    lt: F::Fq,
}

/// Emits the full optimal-Ate pairing `e(P, Q)` through a flow:
/// inputs, Miller loop, final exponentiation, output.
pub fn emit_pairing<F: PairingFlow>(curve: &Curve, flow: &mut F) {
    let (px, py) = flow.input_p();
    let (qx, qy) = flow.input_q();
    let f = emit_miller_loop(curve, flow, &px, &py, &qx, &qy);
    let g = emit_final_exponentiation(curve, flow, &f);
    flow.output(&g);
}

/// Emits the Miller loop only (inputs already declared by the caller).
pub fn emit_miller_loop<F: PairingFlow>(
    curve: &Curve,
    flow: &mut F,
    px: &F::Fp,
    py: &F::Fp,
    qx: &F::Fq,
    qy: &F::Fq,
) -> F::Fpk {
    let tower = curve.tower();
    let bt = flow.fq_constant(curve.b_twist(), "b_twist");
    let one = flow.fq_constant(&tower.fq_one(), "fq_one");

    let param = curve.miller_param();
    let negative = param.is_negative();
    let naf = param.magnitude().naf();

    let q = (qx.clone(), qy.clone());
    let q_neg = (qx.clone(), flow.fq_neg(qy));

    let mut t = ProjPoint::<F> {
        x: qx.clone(),
        y: qy.clone(),
        z: one,
    };
    let mut f = flow.fpk_one();

    for i in (0..naf.len().saturating_sub(1)).rev() {
        f = flow.fpk_sqr(&f);
        let line = dbl_step(flow, &mut t, &bt);
        f = apply_line(curve, flow, &f, line, px, py);
        let digit = naf[i];
        if digit != 0 {
            let (ax, ay) = if digit == 1 { &q } else { &q_neg };
            let line = add_step(flow, &mut t, ax, ay);
            f = apply_line(curve, flow, &f, line, px, py);
        }
    }

    if negative {
        // f_{−|u|} ≡ conj(f_{|u|}) modulo final exponentiation; the point
        // accumulator flips sign with it.
        f = flow.fpk_conj(&f);
        t.y = flow.fq_neg(&t.y);
    }

    if curve.family() == Family::Bn {
        // BN tail: lines through Q1 = ψ(Q) and Q2 = −ψ²(Q).
        let (q1x, q1y) = emit_psi(curve, flow, qx, qy);
        let (q2x, q2y_pos) = emit_psi(curve, flow, &q1x, &q1y);
        let q2y = flow.fq_neg(&q2y_pos);
        let line = add_step(flow, &mut t, &q1x, &q1y);
        f = apply_line(curve, flow, &f, line, px, py);
        let line = add_step(flow, &mut t, &q2x, &q2y);
        f = apply_line(curve, flow, &f, line, px, py);
    }

    f
}

/// Runs the Q-side of one Miller loop and records each line's
/// `(ly, lx, lt)` coefficients **in consumption order** — the
/// `G2Prepared` precomputation. The schedule (NAF digits, BN ψ-tail) is
/// static per curve, so the recorded sequence replays against any G1
/// point via [`emit_miller_loop_with_lines`], skipping every
/// `dbl_step`/`add_step` of the ordinary loop. The coefficients are
/// exactly the values the interleaved loop would produce, so the replayed
/// accumulator is bit-identical to [`emit_miller_loop`].
pub fn emit_g2_line_schedule<F: PairingFlow>(
    curve: &Curve,
    flow: &mut F,
    qx: &F::Fq,
    qy: &F::Fq,
) -> Vec<[F::Fq; 3]> {
    let tower = curve.tower();
    let bt = flow.fq_constant(curve.b_twist(), "b_twist");
    let one = flow.fq_constant(&tower.fq_one(), "fq_one");

    let param = curve.miller_param();
    let negative = param.is_negative();
    let naf = param.magnitude().naf();

    let q = (qx.clone(), qy.clone());
    let q_neg = (qx.clone(), flow.fq_neg(qy));

    let mut t = ProjPoint::<F> {
        x: qx.clone(),
        y: qy.clone(),
        z: one,
    };
    let mut lines = Vec::with_capacity(naf.len() * 2);
    for i in (0..naf.len().saturating_sub(1)).rev() {
        let line = dbl_step(flow, &mut t, &bt);
        lines.push([line.ly, line.lx, line.lt]);
        let digit = naf[i];
        if digit != 0 {
            let (ax, ay) = if digit == 1 { &q } else { &q_neg };
            let line = add_step(flow, &mut t, ax, ay);
            lines.push([line.ly, line.lx, line.lt]);
        }
    }

    if negative {
        // The conjugation lives on the accumulator (replay side); only
        // the point accumulator's sign flip matters for the tail lines.
        t.y = flow.fq_neg(&t.y);
    }

    if curve.family() == Family::Bn {
        let (q1x, q1y) = emit_psi(curve, flow, qx, qy);
        let (q2x, q2y_pos) = emit_psi(curve, flow, &q1x, &q1y);
        let q2y = flow.fq_neg(&q2y_pos);
        let line = add_step(flow, &mut t, &q1x, &q1y);
        lines.push([line.ly, line.lx, line.lt]);
        let line = add_step(flow, &mut t, &q2x, &q2y);
        lines.push([line.ly, line.lx, line.lt]);
    }

    lines
}

/// Replays a recorded line schedule (see [`emit_g2_line_schedule`])
/// against a G1 point: the squaring chain, sparse line multiplications,
/// and negative-parameter conjugation of [`emit_miller_loop`], with every
/// Q-side doubling/addition replaced by a recorded coefficient triple.
/// Bit-identical to the interleaved loop on the same inputs.
///
/// # Panics
///
/// Panics if `lines` does not hold exactly the curve's schedule length —
/// a schedule recorded for a different curve is a programmer error, never
/// a data-dependent condition.
pub fn emit_miller_loop_with_lines<F: PairingFlow>(
    curve: &Curve,
    flow: &mut F,
    px: &F::Fp,
    py: &F::Fp,
    lines: &[[F::Fq; 3]],
) -> F::Fpk {
    let param = curve.miller_param();
    let negative = param.is_negative();
    let naf = param.magnitude().naf();

    let mut next = 0usize;
    let mut f = flow.fpk_one();
    for i in (0..naf.len().saturating_sub(1)).rev() {
        f = flow.fpk_sqr(&f);
        f = apply_line_coeffs(curve, flow, &f, &lines[next], px, py);
        next += 1;
        if naf[i] != 0 {
            f = apply_line_coeffs(curve, flow, &f, &lines[next], px, py);
            next += 1;
        }
    }

    if negative {
        f = flow.fpk_conj(&f);
    }

    if curve.family() == Family::Bn {
        f = apply_line_coeffs(curve, flow, &f, &lines[next], px, py);
        next += 1;
        f = apply_line_coeffs(curve, flow, &f, &lines[next], px, py);
        next += 1;
    }

    assert_eq!(
        next,
        lines.len(),
        "line schedule length matches the curve's Miller schedule"
    );
    f
}

/// Applies the untwist–Frobenius endomorphism ψ inside a flow.
fn emit_psi<F: PairingFlow>(curve: &Curve, flow: &mut F, qx: &F::Fq, qy: &F::Fq) -> (F::Fq, F::Fq) {
    let (cx, cy) = curve.psi_constants();
    let gx = flow.fq_constant(cx, "psi_x");
    let gy = flow.fq_constant(cy, "psi_y");
    let fx = flow.fq_frob(qx, 1);
    let fy = flow.fq_frob(qy, 1);
    (flow.fq_mul(&fx, &gx), flow.fq_mul(&fy, &gy))
}

/// Projective doubling with fused tangent-line computation, halving-free
/// (all coordinates uniformly scaled by 4, which is projective-invariant
/// and scales the line by an F_q constant that dies in the final
/// exponentiation).
fn dbl_step<F: PairingFlow>(flow: &mut F, t: &mut ProjPoint<F>, bt: &F::Fq) -> LineCoeffs<F> {
    let xy = flow.fq_mul(&t.x, &t.y);
    let b = flow.fq_sqr(&t.y);
    let c = flow.fq_sqr(&t.z);
    let c3 = flow.fq_muli(&c, 3);
    let e = flow.fq_mul(bt, &c3);
    let f3 = flow.fq_muli(&e, 3);
    let yz = flow.fq_add(&t.y, &t.z);
    let yz2 = flow.fq_sqr(&yz);
    let bc = flow.fq_add(&b, &c);
    let h = flow.fq_sub(&yz2, &bc);
    let i = flow.fq_sub(&e, &b);
    let j = flow.fq_sqr(&t.x);
    let e2 = flow.fq_sqr(&e);

    // X3 = 2·XY·(b − f3)
    let bmf = flow.fq_sub(&b, &f3);
    let xy2 = flow.fq_muli(&xy, 2);
    let x3 = flow.fq_mul(&xy2, &bmf);
    // Y3 = (b + f3)² − 12·e²
    let bpf = flow.fq_add(&b, &f3);
    let bpf2 = flow.fq_sqr(&bpf);
    let e12 = flow.fq_muli(&e2, 12);
    let y3 = flow.fq_sub(&bpf2, &e12);
    // Z3 = 4·b·h
    let bh = flow.fq_mul(&b, &h);
    let z3 = flow.fq_muli(&bh, 4);

    t.x = x3;
    t.y = y3;
    t.z = z3;

    let ly = flow.fq_neg(&h);
    let lx = flow.fq_muli(&j, 3);
    LineCoeffs { ly, lx, lt: i }
}

/// Mixed addition (projective T + affine A) with fused chord-line
/// computation.
fn add_step<F: PairingFlow>(
    flow: &mut F,
    t: &mut ProjPoint<F>,
    ax: &F::Fq,
    ay: &F::Fq,
) -> LineCoeffs<F> {
    let ayz = flow.fq_mul(ay, &t.z);
    let theta = flow.fq_sub(&t.y, &ayz);
    let axz = flow.fq_mul(ax, &t.z);
    let lambda = flow.fq_sub(&t.x, &axz);
    let c = flow.fq_sqr(&theta);
    let d = flow.fq_sqr(&lambda);
    let e = flow.fq_mul(&lambda, &d);
    let ff = flow.fq_mul(&t.z, &c);
    let g = flow.fq_mul(&t.x, &d);
    let g2 = flow.fq_muli(&g, 2);
    let ef = flow.fq_add(&e, &ff);
    let h = flow.fq_sub(&ef, &g2);
    let x3 = flow.fq_mul(&lambda, &h);
    let gmh = flow.fq_sub(&g, &h);
    let tgmh = flow.fq_mul(&theta, &gmh);
    let ey = flow.fq_mul(&e, &t.y);
    let y3 = flow.fq_sub(&tgmh, &ey);
    let z3 = flow.fq_mul(&t.z, &e);
    t.x = x3;
    t.y = y3;
    t.z = z3;

    let tx = flow.fq_mul(&theta, ax);
    let ly2 = flow.fq_mul(&lambda, ay);
    let j = flow.fq_sub(&tx, &ly2);
    let neg_theta = flow.fq_neg(&theta);
    LineCoeffs {
        ly: lambda,
        lx: neg_theta,
        lt: j,
    }
}

/// Multiplies the accumulator by a line, placing coefficients according to
/// twist type (D: w⁰,w¹,w³ — M: w⁰,w²,w³).
fn apply_line<F: PairingFlow>(
    curve: &Curve,
    flow: &mut F,
    f: &F::Fpk,
    line: LineCoeffs<F>,
    px: &F::Fp,
    py: &F::Fp,
) -> F::Fpk {
    apply_line_coeffs(curve, flow, f, &[line.ly, line.lx, line.lt], px, py)
}

/// [`apply_line`] on a recorded `[ly, lx, lt]` triple — shared by the
/// interleaved loop and the prepared-line replay so both paths mix P in
/// with the identical operations.
fn apply_line_coeffs<F: PairingFlow>(
    curve: &Curve,
    flow: &mut F,
    f: &F::Fpk,
    line: &[F::Fq; 3],
    px: &F::Fp,
    py: &F::Fp,
) -> F::Fpk {
    let [ly, lx, lt] = line;
    let cy = flow.fq_mul_fp(ly, py);
    let cx = flow.fq_mul_fp(lx, px);
    match curve.twist() {
        TwistKind::D => {
            flow.fpk_mul_sparse(f, [Some(cy), Some(cx), None, Some(lt.clone()), None, None])
        }
        TwistKind::M => {
            flow.fpk_mul_sparse(f, [Some(lt.clone()), None, Some(cx), Some(cy), None, None])
        }
    }
}

/// Cyclotomic exponentiation by a signed parameter (NAF digits, conjugate
/// for inverses and negative exponents).
fn emit_cyclo_exp<F: PairingFlow>(flow: &mut F, base: &F::Fpk, e: &BigInt) -> F::Fpk {
    if e.is_zero() {
        return flow.fpk_one();
    }
    let naf = e.magnitude().naf();
    let base_inv = flow.fpk_conj(base);
    let mut acc = base.clone(); // leading NAF digit is always 1
    for i in (0..naf.len().saturating_sub(1)).rev() {
        acc = flow.fpk_cyclo_sqr(&acc);
        match naf[i] {
            1 => acc = flow.fpk_mul(&acc, base),
            -1 => acc = flow.fpk_mul(&acc, &base_inv),
            _ => {}
        }
    }
    if e.is_negative() {
        acc = flow.fpk_conj(&acc);
    }
    acc
}

/// Emits the final exponentiation (easy part + family-specific hard part).
///
/// BN uses the Scott et al. vectorial addition chain (exact exponent);
/// BLS12/BLS24 use the Hayashida–Kiyomura–Teruya decomposition, which
/// computes `e(P,Q)^(3·(p^k−1)/r)` — still a bilinear non-degenerate
/// pairing since `gcd(3, r) = 1`; all Finesse components use the same
/// convention (tests cross-check it against cubed oracle values).
pub fn emit_final_exponentiation<F: PairingFlow>(
    curve: &Curve,
    flow: &mut F,
    f: &F::Fpk,
) -> F::Fpk {
    // Easy part: f^((p^(k/2) − 1)(p^(k/6·?) + 1)) projecting into the
    // cyclotomic subgroup: k=12 → (p⁶−1)(p²+1); k=24 → (p¹²−1)(p⁴+1).
    let conj = flow.fpk_conj(f);
    let inv = flow.fpk_inv(f);
    let m = flow.fpk_mul(&conj, &inv);
    let j = match curve.k() {
        12 => 2,
        24 => 4,
        _ => unreachable!("k is 12 or 24"),
    };
    let mf = flow.fpk_frob(&m, j);
    let m = flow.fpk_mul(&mf, &m);

    match curve.family() {
        Family::Bn => emit_bn_hard_part(curve, flow, &m),
        Family::Bls12 => emit_bls12_hard_part(curve, flow, &m),
        Family::Bls24 => emit_bls24_hard_part(curve, flow, &m),
    }
}

/// BN hard part: Scott–Benger–Charlemagne–Perez–Kachisa vectorial
/// addition chain computing `m^((p⁴−p²+1)/r)` exactly.
fn emit_bn_hard_part<F: PairingFlow>(curve: &Curve, flow: &mut F, m: &F::Fpk) -> F::Fpk {
    let x = curve.t();
    let fx = emit_cyclo_exp(flow, m, x);
    let fx2 = emit_cyclo_exp(flow, &fx, x);
    let fx3 = emit_cyclo_exp(flow, &fx2, x);

    let fp1 = flow.fpk_frob(m, 1);
    let fp2 = flow.fpk_frob(m, 2);
    let fp3 = flow.fpk_frob(m, 3);
    let y0 = {
        let t = flow.fpk_mul(&fp1, &fp2);
        flow.fpk_mul(&t, &fp3)
    };
    let y1 = flow.fpk_conj(m);
    let y2 = flow.fpk_frob(&fx2, 2);
    let y3 = {
        let t = flow.fpk_frob(&fx, 1);
        flow.fpk_conj(&t)
    };
    let y4 = {
        let t = flow.fpk_frob(&fx2, 1);
        let t = flow.fpk_mul(&fx, &t);
        flow.fpk_conj(&t)
    };
    let y5 = flow.fpk_conj(&fx2);
    let y6 = {
        let t = flow.fpk_frob(&fx3, 1);
        let t = flow.fpk_mul(&fx3, &t);
        flow.fpk_conj(&t)
    };

    // Olivos chain for y0·y1²·y2⁶·y3¹²·y4¹⁸·y5³⁰·y6³⁶.
    let mut t0 = flow.fpk_cyclo_sqr(&y6);
    t0 = flow.fpk_mul(&t0, &y4);
    t0 = flow.fpk_mul(&t0, &y5);
    let mut t1 = flow.fpk_mul(&y3, &y5);
    t1 = flow.fpk_mul(&t1, &t0);
    t0 = flow.fpk_mul(&t0, &y2);
    t1 = flow.fpk_cyclo_sqr(&t1);
    t1 = flow.fpk_mul(&t1, &t0);
    t1 = flow.fpk_cyclo_sqr(&t1);
    t0 = flow.fpk_mul(&t1, &y1);
    t1 = flow.fpk_mul(&t1, &y0);
    t0 = flow.fpk_cyclo_sqr(&t0);
    flow.fpk_mul(&t0, &t1)
}

/// BLS12 hard part (Hayashida–Kiyomura–Teruya):
/// `3(p⁴−p²+1)/r = (x−1)²(x+p)(x²+p²−1) + 3`.
fn emit_bls12_hard_part<F: PairingFlow>(curve: &Curve, flow: &mut F, m: &F::Fpk) -> F::Fpk {
    let x = curve.t();
    let xm1 = x - &BigInt::one();
    // y = m^((x−1)²)
    let y = emit_cyclo_exp(flow, m, &xm1);
    let y = emit_cyclo_exp(flow, &y, &xm1);
    // y ^= (x + p)
    let yx = emit_cyclo_exp(flow, &y, x);
    let yp = flow.fpk_frob(&y, 1);
    let y = flow.fpk_mul(&yx, &yp);
    // y ^= (x² + p² − 1)
    let yx2 = {
        let t = emit_cyclo_exp(flow, &y, x);
        emit_cyclo_exp(flow, &t, x)
    };
    let yp2 = flow.fpk_frob(&y, 2);
    let yinv = flow.fpk_conj(&y);
    let y = {
        let t = flow.fpk_mul(&yx2, &yp2);
        flow.fpk_mul(&t, &yinv)
    };
    // result = y · m³
    let m2 = flow.fpk_cyclo_sqr(m);
    let m3 = flow.fpk_mul(&m2, m);
    flow.fpk_mul(&y, &m3)
}

/// BLS24 hard part (generalised HKT):
/// `3(p⁸−p⁴+1)/r = (x−1)²(x+p)(x²+p²)(x⁴+p⁴−1) + 3`.
fn emit_bls24_hard_part<F: PairingFlow>(curve: &Curve, flow: &mut F, m: &F::Fpk) -> F::Fpk {
    let x = curve.t();
    let xm1 = x - &BigInt::one();
    let y = emit_cyclo_exp(flow, m, &xm1);
    let y = emit_cyclo_exp(flow, &y, &xm1);
    // y ^= (x + p)
    let yx = emit_cyclo_exp(flow, &y, x);
    let yp = flow.fpk_frob(&y, 1);
    let y = flow.fpk_mul(&yx, &yp);
    // y ^= (x² + p²)
    let yx2 = {
        let t = emit_cyclo_exp(flow, &y, x);
        emit_cyclo_exp(flow, &t, x)
    };
    let yp2 = flow.fpk_frob(&y, 2);
    let y = flow.fpk_mul(&yx2, &yp2);
    // y ^= (x⁴ + p⁴ − 1)
    let yx4 = {
        let t = emit_cyclo_exp(flow, &y, x);
        let t = emit_cyclo_exp(flow, &t, x);
        let t = emit_cyclo_exp(flow, &t, x);
        emit_cyclo_exp(flow, &t, x)
    };
    let yp4 = flow.fpk_frob(&y, 4);
    let yinv = flow.fpk_conj(&y);
    let y = {
        let t = flow.fpk_mul(&yx4, &yp4);
        flow.fpk_mul(&t, &yinv)
    };
    let m2 = flow.fpk_cyclo_sqr(m);
    let m3 = flow.fpk_mul(&m2, m);
    flow.fpk_mul(&y, &m3)
}
