//! # finesse-pairing
//!
//! The optimal-Ate pairing engine of the Finesse framework.
//!
//! The algorithm is written once, against the abstract [`PairingFlow`]
//! evaluator ([`flow`]), and instantiated two ways: on concrete field
//! elements ([`PairingEngine`], the reference library) and — in
//! `finesse-compiler` — as a recorder that turns the very same control
//! skeleton into hierarchical SSA IR for the accelerator. A third,
//! fully independent textbook implementation ([`oracle`]) cross-validates
//! everything.

pub mod accumulate;
pub mod flow;
pub mod oracle;
pub mod prepared;
pub mod transcript;
pub mod value;

pub use accumulate::PairingAccumulator;
pub use flow::{
    emit_final_exponentiation, emit_g2_line_schedule, emit_miller_loop,
    emit_miller_loop_with_lines, emit_pairing, PairingFlow,
};
pub use oracle::oracle_pair;
pub use prepared::G2Prepared;
pub use transcript::{SplitMix64Transcript, Transcript};
pub use value::{PairingEngine, ValueFlow};

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_curves::Curve;
    use finesse_ff::{BigInt, BigUint};

    fn engine(name: &str) -> PairingEngine {
        PairingEngine::new(Curve::by_name(name))
    }

    #[test]
    fn hkt_exponent_identity_bls12() {
        // 3(p⁴−p²+1)/r = (x−1)²(x+p)(x²+p²−1)+3 as plain integers.
        for name in ["BLS12-381", "BLS12-446", "BLS12-638"] {
            let c = Curve::by_name(name);
            let p = BigInt::from_biguint(c.p().clone());
            let x = c.t().clone();
            let xm1 = &x - &BigInt::one();
            let lhs = {
                let three = BigUint::from_u64(3);
                &three * &c.hard_exponent()
            };
            let rhs = {
                let f1 = &xm1 * &xm1;
                let f2 = &x + &p;
                let f3 = &(&(&x * &x) + &(&p * &p)) - &BigInt::one();
                let prod = &(&f1 * &f2) * &f3;
                &prod + &BigInt::from_i64(3)
            };
            assert_eq!(BigInt::from_biguint(lhs), rhs, "{name}");
        }
    }

    #[test]
    fn hkt_exponent_identity_bls24() {
        let c = Curve::by_name("BLS24-509");
        let p = BigInt::from_biguint(c.p().clone());
        let x = c.t().clone();
        let xm1 = &x - &BigInt::one();
        let lhs = &BigInt::from_i64(3) * &BigInt::from_biguint(c.hard_exponent());
        let rhs = {
            let f1 = &xm1 * &xm1;
            let f2 = &x + &p;
            let f3 = &(&x * &x) + &(&p * &p);
            let x2 = &x * &x;
            let x4 = &x2 * &x2;
            let p2 = &p * &p;
            let p4 = &p2 * &p2;
            let f4 = &(&x4 + &p4) - &BigInt::one();
            let prod = &(&(&f1 * &f2) * &f3) * &f4;
            &prod + &BigInt::from_i64(3)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bn_hard_part_matches_generic_exponentiation() {
        let c = Curve::by_name("BN254N");
        let k = c.tower();
        // Random cyclotomic element.
        let a = k.fpk_sample(99);
        let inv = k.fpk_inv(&a);
        let e1 = k.fpk_mul(&k.fpk_conj(&a), &inv);
        let m = k.fpk_mul(&k.fpk_frob(&e1, 2), &e1);

        let g1 = c.g1_generator().clone();
        let g2 = c.g2_generator().clone();
        let mut flow = ValueFlow::new(&c, &g1, &g2);
        let chain = super::flow::emit_final_exponentiation(&c, &mut flow, &a);
        let generic = k.fpk_pow(&m, &c.hard_exponent());
        assert_eq!(chain, generic, "SBCPK chain == m^((p4-p2+1)/r)");
    }

    #[test]
    fn bls12_hard_part_matches_generic_exponentiation() {
        let c = Curve::by_name("BLS12-381");
        let k = c.tower();
        let a = k.fpk_sample(7);
        let inv = k.fpk_inv(&a);
        let e1 = k.fpk_mul(&k.fpk_conj(&a), &inv);
        let m = k.fpk_mul(&k.fpk_frob(&e1, 2), &e1);

        let g1 = c.g1_generator().clone();
        let g2 = c.g2_generator().clone();
        let mut flow = ValueFlow::new(&c, &g1, &g2);
        let chain = super::flow::emit_final_exponentiation(&c, &mut flow, &a);
        let three_hard = {
            let h = c.hard_exponent();
            &(&h + &h) + &h
        };
        let generic = k.fpk_pow(&m, &three_hard);
        assert_eq!(chain, generic, "HKT chain == m^(3(p4-p2+1)/r)");
    }

    #[test]
    fn bilinearity_bn254n() {
        let e = engine("BN254N");
        let c = e.curve().clone();
        let g1 = c.g1_generator();
        let g2 = c.g2_generator();
        let base = e.pair(g1, g2);
        assert!(!e.gt_is_one(&base), "non-degenerate");
        assert!(e.gt_is_one(&e.gt_pow(&base, c.r())), "order divides r");

        let a = BigUint::from_u64(0x5eed);
        let b = BigUint::from_u64(0xc0de);
        let pa = c.g1_mul(g1, &a);
        let qb = c.g2_mul(g2, &b);
        let lhs = e.pair(&pa, &qb);
        let rhs = e.gt_pow(&base, &(&a * &b));
        assert_eq!(lhs, rhs, "e([a]P, [b]Q) = e(P,Q)^(ab)");

        // Additivity in the first argument.
        let p2 = c.g1_mul(g1, &BigUint::from_u64(2));
        let sum = c.g1_add(g1, &p2);
        assert_eq!(
            e.pair(&sum, g2),
            e.gt_mul(&e.pair(g1, g2), &e.pair(&p2, g2))
        );
    }

    #[test]
    fn bilinearity_bls12_381() {
        let e = engine("BLS12-381");
        let c = e.curve().clone();
        let g1 = c.g1_generator();
        let g2 = c.g2_generator();
        let base = e.pair(g1, g2);
        assert!(!e.gt_is_one(&base));
        assert!(e.gt_is_one(&e.gt_pow(&base, c.r())));
        let a = BigUint::from_u64(12345);
        let lhs = e.pair(&c.g1_mul(g1, &a), g2);
        assert_eq!(lhs, e.gt_pow(&base, &a));
        let rhs = e.pair(g1, &c.g2_mul(g2, &a));
        assert_eq!(rhs, e.gt_pow(&base, &a));
    }

    #[test]
    fn engine_matches_oracle_bn254n() {
        let e = engine("BN254N");
        let c = e.curve().clone();
        let p = c.g1_mul(c.g1_generator(), &BigUint::from_u64(31337));
        let q = c.g2_mul(c.g2_generator(), &BigUint::from_u64(271828));
        assert_eq!(e.pair(&p, &q), oracle_pair(&c, &p, &q));
    }

    #[test]
    fn engine_matches_oracle_bls12_381() {
        let e = engine("BLS12-381");
        let c = e.curve().clone();
        let p = c.g1_mul(c.g1_generator(), &BigUint::from_u64(42));
        let q = c.g2_mul(c.g2_generator(), &BigUint::from_u64(1729));
        assert_eq!(e.pair(&p, &q), oracle_pair(&c, &p, &q));
    }

    #[test]
    fn identity_inputs_give_gt_one() {
        let e = engine("BN254N");
        let c = e.curve().clone();
        let inf1 = finesse_curves::Affine::infinity(c.fp().zero());
        assert!(e.gt_is_one(&e.pair(&inf1, c.g2_generator())));
        let inf2 = finesse_curves::Affine::infinity(c.tower().fq_zero());
        assert!(e.gt_is_one(&e.pair(c.g1_generator(), &inf2)));
    }

    #[test]
    fn multi_pairing_matches_product_of_pairings() {
        let e = engine("BN254N");
        let c = e.curve().clone();
        let p1 = c.g1_mul(c.g1_generator(), &BigUint::from_u64(3));
        let q1 = c.g2_mul(c.g2_generator(), &BigUint::from_u64(5));
        let p2 = c.g1_mul(c.g1_generator(), &BigUint::from_u64(7));
        let q2 = c.g2_mul(c.g2_generator(), &BigUint::from_u64(11));
        let product = e.multi_pair(&[(p1.clone(), q1.clone()), (p2.clone(), q2.clone())]);
        let expected = e.gt_mul(&e.pair(&p1, &q1), &e.pair(&p2, &q2));
        assert_eq!(product, expected);
        // Empty and identity-laden products are GT-one.
        assert!(e.gt_is_one(&e.multi_pair(&[])));
        let inf = finesse_curves::Affine::infinity(c.fp().zero());
        assert!(e.gt_is_one(&e.multi_pair(&[(inf, q1)])));
    }

    #[test]
    fn pairing_equation_check_detects_equality() {
        // e([a]P, Q) == e(P, [a]Q) for any a.
        let e = engine("BLS12-381");
        let c = e.curve().clone();
        let a = BigUint::from_u64(123_456_789);
        let pa = c.g1_mul(c.g1_generator(), &a);
        let qa = c.g2_mul(c.g2_generator(), &a);
        assert!(e.pairing_equation_holds(&pa, c.g2_generator(), c.g1_generator(), &qa));
        // And rejects inequality.
        let pb = c.g1_mul(c.g1_generator(), &BigUint::from_u64(999));
        assert!(!e.pairing_equation_holds(&pb, c.g2_generator(), c.g1_generator(), &qa));
    }

    #[test]
    fn miller_plus_final_exp_composes() {
        let e = engine("BN254N");
        let c = e.curve().clone();
        let f = e.miller_loop(c.g1_generator(), c.g2_generator());
        let composed = e.final_exponentiation(&f);
        assert_eq!(composed, e.pair(c.g1_generator(), c.g2_generator()));
    }
}
