//! Fiat–Shamir transcripts over curve points and scalars.
//!
//! The [`Transcript`] trait is the absorb/squeeze surface every
//! challenge-drawing layer in the workspace programs against: the
//! [`PairingAccumulator`](crate::PairingAccumulator) seeds its batch
//! randomizers from one, and `finesse-poly` derives batched-opening
//! challenges through the same interface. Implementors provide only the
//! word-level [`Transcript::absorb_u64`]/[`Transcript::challenge_u64`]
//! pair; bytes, points, scalars, and wide challenges are provided
//! methods built on top, so every implementation absorbs group elements
//! by the same canonical-coordinate keys
//! ([`g1_point_key`]/[`g2_point_key`]) — the challenge stream is a
//! function of the group elements themselves, never of an internal
//! (Montgomery/projective) representation.
//!
//! [`SplitMix64Transcript`] is the workspace's deterministic
//! instantiation: a splitmix64 permutation standing in for an
//! extensible-output hash. It makes batches reproducible for tests and
//! benches; a deployment against adversarial provers substitutes a
//! cryptographic sponge behind the same trait.

use finesse_curves::cache::{g1_point_key, g2_point_key};
use finesse_curves::Affine;
use finesse_ff::{BigUint, Fp, Fq};

/// splitmix64's odd increment (Weyl constant).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64's finalizer: a bijective 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A Fiat–Shamir transcript: absorb the statement, then squeeze
/// challenges that depend on everything absorbed so far.
///
/// Absorbing and squeezing interleave freely; a squeeze advances the
/// state, so two challenges drawn in a row differ. Two transcripts fed
/// the same absorb/squeeze sequence produce the same challenge stream —
/// that is the contract provers and verifiers rely on to re-derive one
/// another's challenges.
pub trait Transcript {
    /// Absorbs one word into the state.
    fn absorb_u64(&mut self, w: u64);

    /// Squeezes one word (advances the state).
    fn challenge_u64(&mut self) -> u64;

    /// Absorbs arbitrary bytes (little-endian words, length-terminated
    /// so `"ab" ‖ "c"` and `"a" ‖ "bc"` absorb differently).
    fn absorb_bytes(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.absorb_u64(u64::from_le_bytes(w));
        }
        self.absorb_u64(bytes.len() as u64);
    }

    /// Absorbs a scalar by its canonical little-endian limbs
    /// (length-terminated like [`Transcript::absorb_bytes`]).
    fn absorb_scalar(&mut self, s: &BigUint) {
        let limbs = s.limbs();
        for w in limbs {
            self.absorb_u64(*w);
        }
        self.absorb_u64(limbs.len() as u64);
    }

    /// Absorbs a G1 point by canonical coordinates.
    fn absorb_g1(&mut self, p: &Affine<Fp>) {
        for w in g1_point_key(p) {
            self.absorb_u64(w);
        }
    }

    /// Absorbs a G2 point by canonical coordinates.
    fn absorb_g2(&mut self, q: &Affine<Fq>) {
        for w in g2_point_key(q) {
            self.absorb_u64(w);
        }
    }

    /// Squeezes a short (~128-bit, never zero) batch randomizer.
    ///
    /// 128 bits is the standard batch-verification width: the cheating
    /// probability is bounded by the inverse challenge-space size
    /// (≤ 2⁻¹²⁷ here), while the MSM scaling the G1 sides runs half the
    /// window iterations a full-width (≥254-bit) scalar would cost.
    fn challenge_short(&mut self) -> BigUint {
        // Low bit pinned so the randomizer can never be zero (a zero
        // weight would drop its check from the batch entirely).
        let lo = self.challenge_u64() | 1;
        let hi = self.challenge_u64();
        BigUint::from_limbs(vec![lo, hi])
    }

    /// Squeezes a full-width challenge in `[0, modulus)`.
    ///
    /// Draws 128 bits beyond the modulus width before reducing, so the
    /// statistical distance from uniform is ≤ 2⁻¹²⁸. A zero modulus (no
    /// residues to draw from) yields zero.
    fn challenge_scalar(&mut self, modulus: &BigUint) -> BigUint {
        if modulus.is_zero() {
            return BigUint::zero();
        }
        let words = (modulus.bits() + 128).div_ceil(64);
        let wide = BigUint::from_limbs((0..words).map(|_| self.challenge_u64()).collect());
        wide.rem(modulus)
    }
}

/// The workspace's deterministic [`Transcript`]: a splitmix64
/// absorb/squeeze permutation over one 64-bit state word.
pub struct SplitMix64Transcript {
    state: u64,
}

impl SplitMix64Transcript {
    /// A transcript bound to a domain-separation label (different
    /// protocols must not share a challenge stream).
    pub fn new(label: &[u8]) -> Self {
        let mut t = SplitMix64Transcript {
            state: 0x746E_7363_7269_7074, // "tnscript"
        };
        t.absorb_bytes(label);
        t
    }
}

impl Transcript for SplitMix64Transcript {
    fn absorb_u64(&mut self, w: u64) {
        self.state = mix(self.state.wrapping_add(GOLDEN) ^ w);
    }

    fn challenge_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_absorptions_same_challenges() {
        let mut a = SplitMix64Transcript::new(b"label");
        let mut b = SplitMix64Transcript::new(b"label");
        a.absorb_bytes(b"statement");
        b.absorb_bytes(b"statement");
        assert_eq!(a.challenge_u64(), b.challenge_u64());
        assert_eq!(a.challenge_short(), b.challenge_short());
    }

    #[test]
    fn labels_and_framing_separate_streams() {
        let mut a = SplitMix64Transcript::new(b"proto-a");
        let mut b = SplitMix64Transcript::new(b"proto-b");
        assert_ne!(a.challenge_u64(), b.challenge_u64());
        // Length framing: "ab"||"c" != "a"||"bc".
        let mut x = SplitMix64Transcript::new(b"l");
        let mut y = SplitMix64Transcript::new(b"l");
        x.absorb_bytes(b"ab");
        x.absorb_bytes(b"c");
        y.absorb_bytes(b"a");
        y.absorb_bytes(b"bc");
        assert_ne!(x.challenge_u64(), y.challenge_u64());
    }

    #[test]
    fn challenge_scalar_is_reduced_and_state_advances() {
        let m = BigUint::from_u64(1_000_003);
        let mut t = SplitMix64Transcript::new(b"scalars");
        let c1 = t.challenge_scalar(&m);
        let c2 = t.challenge_scalar(&m);
        assert!(c1.checked_sub(&m).is_none(), "reduced below the modulus");
        assert_ne!(c1, c2, "squeezing advances the state");
        assert!(t.challenge_scalar(&BigUint::zero()).is_zero());
    }

    #[test]
    fn challenge_short_never_zero() {
        let mut t = SplitMix64Transcript::new(b"short");
        for _ in 0..64 {
            assert!(!t.challenge_short().is_zero());
        }
    }
}
