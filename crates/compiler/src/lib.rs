//! # finesse-compiler
//!
//! The Finesse compilation pipeline (paper §3.5): CodeGen records the
//! optimal-Ate algorithm as hierarchical IR by driving the shared pairing
//! skeleton ([`irflow`]); [`finesse_ir::lower()`](fn@finesse_ir::lower)
//! maps it to F_p code under an operator-variant selection; [`opt`] runs
//! SSA data-flow optimisation (automatic dense×sparse recovery, GVN with
//! field commutativity, DCE); [`schedule()`](fn@schedule) implements
//! Algorithm 2's affinity-driven packing; [`regalloc`] and
//! [`link()`](fn@link) produce the binary image.

pub mod irflow;
pub mod link;
pub mod opt;
pub mod pipeline;
pub mod regalloc;
pub mod schedule;

pub use irflow::IrFlow;
pub use link::{assemble, link};
pub use opt::{optimize, OptStats};
pub use pipeline::{
    compile_pairing, pairing_hir, tower_shape, CompileError, CompileOptions, CompiledPairing,
};
pub use regalloc::{allocate, RegAllocation, RegPressureError};
pub use schedule::{assign_banks, schedule, SchedStrategy, Schedule, ScheduleOptions};
