//! The end-to-end compilation pipeline (paper §3.5):
//! CodeGen → lowering → IROpt → BankAlloc/PackSched → RegAlloc → ASM →
//! Link, in minutes — here milliseconds-to-seconds.
//!
//! [`compile_pairing`] is the single entry point the co-design loop and
//! the experiment harness drive; the per-curve CodeGen recording is
//! cached because the hierarchical IR depends only on the curve, not on
//! variants or hardware.

use crate::irflow::IrFlow;
use crate::link::link;
use crate::opt::{optimize, OptStats};
use crate::regalloc::{allocate, RegAllocation, RegPressureError};
use crate::schedule::{schedule, SchedStrategy, Schedule, ScheduleOptions};
use finesse_curves::Curve;
use finesse_hw::{HwModel, HwModelError};
use finesse_ir::{lower, FpProgram, HirProgram, TowerShape, VariantConfig};
use finesse_isa::{CodecError, ProgramImage};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Compilation options beyond variants and hardware.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Run IROpt (false reproduces the Table 7 "Init." baseline).
    pub optimize: bool,
    /// Scheduling strategy and affinity β.
    pub sched: ScheduleOptions,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            optimize: true,
            sched: ScheduleOptions::default(),
        }
    }
}

impl CompileOptions {
    /// The unoptimised baseline: raw lowering, program-order issue.
    pub fn baseline() -> Self {
        CompileOptions {
            optimize: false,
            sched: ScheduleOptions {
                strategy: SchedStrategy::ProgramOrder,
                affinity_beta: 0.0,
            },
        }
    }
}

/// A fully compiled pairing accelerator program.
#[derive(Clone, Debug)]
pub struct CompiledPairing {
    /// The curve this program computes `e(P, Q)` on.
    pub curve: Arc<Curve>,
    /// The hardware model compiled for.
    pub hw: HwModel,
    /// High-level IR size (instructions) before lowering.
    pub hir_len: usize,
    /// The final F_p program (post-IROpt unless disabled).
    pub fp: FpProgram,
    /// IROpt statistics (before/after executable counts).
    pub opt_stats: OptStats,
    /// The instruction schedule.
    pub schedule: Schedule,
    /// Register allocation (peak pressure drives the DMem area model).
    pub regs: RegAllocation,
    /// The linked binary image.
    pub image: ProgramImage,
    /// Wall-clock compilation time.
    pub compile_time: Duration,
}

impl CompiledPairing {
    /// Executable instruction count (the Table 7 "Instr." metric).
    pub fn instruction_count(&self) -> usize {
        self.fp.stats().executable() + self.fp.inputs.len() + self.fp.outputs.len()
    }
}

/// Compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The hardware model violates an architectural constraint.
    Hw(HwModelError),
    /// Lowering failed (malformed IR or unsupported op/level).
    Lowering(String),
    /// A register bank's quota was exceeded.
    RegPressure(RegPressureError),
    /// Binary encoding failed.
    Codec(CodecError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Hw(e) => write!(f, "hardware model: {e}"),
            CompileError::Lowering(e) => write!(f, "lowering: {e}"),
            CompileError::RegPressure(e) => write!(f, "register allocation: {e}"),
            CompileError::Codec(e) => write!(f, "encoding: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<HwModelError> for CompileError {
    fn from(e: HwModelError) -> Self {
        CompileError::Hw(e)
    }
}

impl From<RegPressureError> for CompileError {
    fn from(e: RegPressureError) -> Self {
        CompileError::RegPressure(e)
    }
}

impl From<CodecError> for CompileError {
    fn from(e: CodecError) -> Self {
        CompileError::Codec(e)
    }
}

/// Cached CodeGen: the recorded pairing HIR per curve.
pub fn pairing_hir(curve: &Arc<Curve>) -> Arc<HirProgram> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<HirProgram>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("hir cache poisoned");
    if let Some(p) = map.get(curve.name()) {
        return Arc::clone(p);
    }
    let prog = Arc::new(IrFlow::record_pairing(curve));
    map.insert(curve.name().to_owned(), Arc::clone(&prog));
    prog
}

/// Cached tower shapes per curve.
pub fn tower_shape(curve: &Arc<Curve>) -> Arc<TowerShape> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<TowerShape>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("shape cache poisoned");
    if let Some(s) = map.get(curve.name()) {
        return Arc::clone(s);
    }
    let shape = Arc::new(TowerShape::for_curve(curve));
    map.insert(curve.name().to_owned(), Arc::clone(&shape));
    shape
}

/// Compiles the optimal-Ate pairing for a curve, variant selection and
/// hardware model.
///
/// # Errors
///
/// Returns a [`CompileError`] for invalid hardware models, lowering
/// failures, register-pressure overflow or encoding overflow.
pub fn compile_pairing(
    curve: &Arc<Curve>,
    variants: &VariantConfig,
    hw: &HwModel,
    opts: &CompileOptions,
) -> Result<CompiledPairing, CompileError> {
    let start = Instant::now();
    hw.validate()?;
    let hw = hw.clone().with_inv_latency_for_bits(curve.p().bits());

    let hir = pairing_hir(curve);
    let shape = tower_shape(curve);
    let lowered = lower(&hir, &shape, variants).map_err(CompileError::Lowering)?;

    let (fp, opt_stats) = if opts.optimize {
        optimize(&lowered, curve.fp())
    } else {
        let n = lowered.stats().executable();
        (
            lowered,
            OptStats {
                before: n,
                after: n,
            },
        )
    };

    let sched = schedule(&fp, &hw, &opts.sched);
    let regs = allocate(&fp, &sched, hw.reg_quota)?;
    let image = link(&fp, &sched, &regs, hw.issue_width)?;

    Ok(CompiledPairing {
        curve: Arc::clone(curve),
        hw,
        hir_len: hir.insts.len(),
        fp,
        opt_stats,
        schedule: sched,
        regs,
        image,
        compile_time: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_curves::Curve;

    #[test]
    fn compiles_bn254n_end_to_end() {
        let curve = Curve::by_name("BN254N");
        let shape = tower_shape(&curve);
        let variants = VariantConfig::all_karatsuba(&shape);
        let hw = HwModel::paper_default();
        let c = compile_pairing(&curve, &variants, &hw, &CompileOptions::default()).unwrap();
        // Ballpark of the paper's Table 7 (BN254N: 55.3k optimised).
        let n = c.instruction_count();
        assert!(n > 20_000 && n < 120_000, "instruction count {n}");
        assert!(
            c.opt_stats.after < c.opt_stats.before,
            "IROpt shrinks the program"
        );
        assert!(c.regs.peak_live > 50, "real register pressure");
        assert!(!c.image.words.is_empty());
        println!(
            "BN254N: hir={} init={} opt={} (-{:.1}%) peak_regs={} imem={}B time={:?}",
            c.hir_len,
            c.opt_stats.before,
            c.opt_stats.after,
            c.opt_stats.reduction_percent(),
            c.regs.peak_live,
            c.image.imem_bytes(),
            c.compile_time
        );
    }

    #[test]
    fn baseline_compilation_keeps_dense_code() {
        let curve = Curve::by_name("BN254N");
        let shape = tower_shape(&curve);
        let variants = VariantConfig::all_karatsuba(&shape);
        let hw = HwModel::paper_default();
        let opt = compile_pairing(&curve, &variants, &hw, &CompileOptions::default()).unwrap();
        let init = compile_pairing(&curve, &variants, &hw, &CompileOptions::baseline()).unwrap();
        assert!(
            init.instruction_count() > opt.instruction_count(),
            "init {} vs opt {}",
            init.instruction_count(),
            opt.instruction_count()
        );
    }
}
