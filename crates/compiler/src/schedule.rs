//! BankAlloc + PackSched: operation packing and scheduling
//! (paper §3.5, Algorithm 2, Figure 7).
//!
//! Values are first assigned to register banks (residual assignment — the
//! paper's effective baseline). Scheduling then walks the dependence DAG
//! top-down, one issue cycle at a time:
//!
//! * candidates are operations whose operands have completed by the
//!   current cycle;
//! * candidate order follows **issue-slot affinity**: each
//!   `(Long − Short)`-cycle window reserves a fraction of slots for Long
//!   instructions proportional to their share of the program (plus the
//!   tunable β), so Long and Short write-backs interleave without port
//!   conflicts (Figure 7); within a class, latency-weighted critical-path
//!   height breaks ties;
//! * a dynamic program over port states packs the largest valid set of
//!   candidates into the slot, respecting per-bank read ports, unit
//!   counts, issue width and — without a write-back FIFO — single
//!   write-back ports at each future completion cycle.
//!
//! The output is an *ordered stream* of (possibly wide) instruction
//! groups; hardware issues them in order, so the cycle-accurate simulator
//! remains the ground truth for the achieved cycle count.

use finesse_hw::HwModel;
use finesse_ir::{FpOp, FpProgram, OpClass};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Scheduling strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedStrategy {
    /// Emit in program order, one op per group (the Table 7 "Init."
    /// baseline).
    ProgramOrder,
    /// Affinity-driven list scheduling with DP packing (Algorithm 2).
    AffinityList,
}

/// Scheduler options.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleOptions {
    /// Strategy.
    pub strategy: SchedStrategy,
    /// Affinity threshold offset β (paper §3.5).
    pub affinity_beta: f64,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            strategy: SchedStrategy::AffinityList,
            affinity_beta: 0.05,
        }
    }
}

/// A scheduled program: ordered issue groups over executable ops.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Issue groups in order; each group holds instruction ids of the
    /// original [`FpProgram`] (≤ issue width, resource-valid).
    pub groups: Vec<Vec<u32>>,
    /// Register-bank assignment per value id.
    pub bank_of: Vec<u8>,
    /// The scheduler's predicted makespan in cycles (the simulator is the
    /// ground truth).
    pub predicted_cycles: u64,
}

/// Residual bank assignment (BankAlloc): executable results and inputs
/// cycle through banks by id; constants co-rotate.
pub fn assign_banks(prog: &FpProgram, hw: &HwModel) -> Vec<u8> {
    let n = hw.n_banks.max(1) as u32;
    prog.insts
        .iter()
        .enumerate()
        .map(|(i, _)| (i as u32 % n) as u8)
        .collect()
}

/// Latency-weighted height of each op (standard list-scheduling
/// priority).
fn heights(prog: &FpProgram, hw: &HwModel) -> Vec<u64> {
    let n = prog.insts.len();
    let mut h = vec![0u64; n];
    for i in (0..n).rev() {
        let lat = op_latency(&prog.insts[i], hw) as u64;
        let base = h[i] + lat;
        for o in prog.insts[i].operands() {
            let cell = &mut h[o as usize];
            if *cell < base {
                *cell = base;
            }
        }
    }
    h
}

fn op_latency(op: &FpOp, hw: &HwModel) -> u32 {
    match op.class() {
        OpClass::Long => hw.long_lat,
        OpClass::Short => hw.short_lat,
        OpClass::Inverse => hw.inv_lat,
        OpClass::Meta => {
            if matches!(op, FpOp::Input(_)) {
                hw.long_lat // ICV conversions run through the mmul
            } else {
                0 // constants are preloaded
            }
        }
    }
}

/// True if the op occupies an issue slot (constants are preloads).
fn is_schedulable(op: &FpOp) -> bool {
    !matches!(op, FpOp::Const(_))
}

/// Schedules a program for a hardware model.
pub fn schedule(prog: &FpProgram, hw: &HwModel, opts: &ScheduleOptions) -> Schedule {
    let bank_of = assign_banks(prog, hw);
    match opts.strategy {
        SchedStrategy::ProgramOrder => schedule_program_order(prog, hw, bank_of),
        SchedStrategy::AffinityList => schedule_affinity(prog, hw, bank_of, opts.affinity_beta),
    }
}

fn schedule_program_order(prog: &FpProgram, hw: &HwModel, bank_of: Vec<u8>) -> Schedule {
    let mut groups = Vec::new();
    let mut completion = vec![0u64; prog.insts.len()];
    let mut t = 0u64;
    for (i, op) in prog.insts.iter().enumerate() {
        if !is_schedulable(op) {
            continue;
        }
        let ready = op
            .operands()
            .iter()
            .map(|&o| completion[o as usize])
            .max()
            .unwrap_or(0);
        t = t.max(ready) + 1;
        completion[i] = t - 1 + op_latency(op, hw) as u64;
        groups.push(vec![i as u32]);
    }
    let predicted = completion.iter().copied().max().unwrap_or(0);
    Schedule {
        groups,
        bank_of,
        predicted_cycles: predicted,
    }
}

/// Candidate pool bound per cycle for the packing DP.
const CAND_LIMIT: usize = 24;

fn schedule_affinity(prog: &FpProgram, hw: &HwModel, bank_of: Vec<u8>, beta: f64) -> Schedule {
    let n = prog.insts.len();
    let h = heights(prog, hw);

    // Long-instruction share drives the affinity threshold.
    let stats = prog.stats();
    let long_frac = if stats.executable() > 0 {
        (stats.mul + stats.sqr) as f64 / stats.executable() as f64
    } else {
        0.5
    };
    let period = hw.affinity_period() as u64;
    let threshold = ((long_frac + beta) * period as f64).ceil() as u64;
    let long_affine = |t: u64| -> bool { (t % period) < threshold };

    // Dependence bookkeeping.
    let mut indegree = vec![0u32; n];
    let mut users: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, op) in prog.insts.iter().enumerate() {
        if !is_schedulable(op) {
            continue;
        }
        for o in op.operands() {
            // Constants are always ready and impose no ordering.
            if is_schedulable(&prog.insts[o as usize]) {
                indegree[i] += 1;
                users[o as usize].push(i as u32);
            }
        }
    }

    let mut completion = vec![0u64; n];
    // pending: ops whose deps issued, keyed by earliest issue cycle.
    let mut pending: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    // ready heaps per class, priority = (height, older id first).
    let mut ready_long: BinaryHeap<(u64, Reverse<u32>)> = BinaryHeap::new();
    let mut ready_short: BinaryHeap<(u64, Reverse<u32>)> = BinaryHeap::new();
    let mut remaining = 0usize;

    let class_of = |i: usize| -> OpClass {
        match &prog.insts[i] {
            FpOp::Input(_) => OpClass::Long, // ICV
            op => op.class(),
        }
    };

    for (i, op) in prog.insts.iter().enumerate() {
        if !is_schedulable(op) {
            continue;
        }
        remaining += 1;
        if indegree[i] == 0 {
            pending.push(Reverse((0, i as u32)));
        }
    }

    // Write-back port reservations (bank → cycles) when no FIFO.
    let mut wb_taken: HashSet<(u8, u64)> = HashSet::new();
    // The iterative inversion unit is not pipelined.
    let mut inv_busy_until = 0u64;

    let mut groups: Vec<Vec<u32>> = Vec::new();
    let mut t = 0u64;
    let mut makespan = 0u64;

    while remaining > 0 {
        // Promote pending ops that become ready at or before t.
        while let Some(&Reverse((rt, id))) = pending.peek() {
            if rt > t {
                break;
            }
            pending.pop();
            match class_of(id as usize) {
                OpClass::Long | OpClass::Inverse | OpClass::Meta => {
                    ready_long.push((h[id as usize], Reverse(id)))
                }
                OpClass::Short => ready_short.push((h[id as usize], Reverse(id))),
            }
        }

        // Draw candidates in affinity order. The draw is class-aware:
        // only one mmul can issue per cycle, so a handful of Long
        // candidates suffices, while the Short pool scales with the
        // number of linear units (otherwise a Long-heavy ready set would
        // starve the linear slots).
        let prefer_long = long_affine(t);
        let mut cands: Vec<u32> = Vec::new();
        {
            let long_quota = 4usize;
            let short_quota = (hw.n_linear_units as usize * 3).min(CAND_LIMIT);
            let mut longs = Vec::new();
            while longs.len() < long_quota {
                match ready_long.pop() {
                    Some(e) => longs.push(e),
                    None => break,
                }
            }
            let mut shorts = Vec::new();
            while shorts.len() < short_quota {
                match ready_short.pop() {
                    Some(e) => shorts.push(e),
                    None => break,
                }
            }
            let (first, second): (&Vec<_>, &Vec<_>) = if prefer_long {
                (&longs, &shorts)
            } else {
                (&shorts, &longs)
            };
            cands.extend(first.iter().map(|&(_, Reverse(id))| id));
            cands.extend(second.iter().map(|&(_, Reverse(id))| id));
            // Return the drawn entries; chosen ones are lazily removed
            // after packing.
            for &(hh, Reverse(id)) in longs.iter().chain(shorts.iter()) {
                match class_of(id as usize) {
                    OpClass::Short => ready_short.push((hh, Reverse(id))),
                    _ => ready_long.push((hh, Reverse(id))),
                }
            }
        }

        // DP packing over port states (Algorithm 2's
        // solveMaxValidInstrPack), processing candidates in affinity
        // order.
        let chosen = pack_group(prog, hw, &bank_of, &cands, t, &wb_taken, inv_busy_until);

        if chosen.is_empty() {
            // Bubble.
            t += 1;
            // Fast-forward across dead time when nothing is in flight.
            if ready_long.is_empty() && ready_short.is_empty() {
                if let Some(&Reverse((rt, _))) = pending.peek() {
                    t = t.max(rt);
                }
            }
            continue;
        }

        // Commit the group.
        let mut group = Vec::with_capacity(chosen.len());
        let mut chosen_set: HashSet<u32> = HashSet::new();
        for &id in &chosen {
            chosen_set.insert(id);
        }
        // Remove chosen ids from the heaps (lazy deletion).
        retain_heap(&mut ready_long, &chosen_set);
        retain_heap(&mut ready_short, &chosen_set);

        for &id in &chosen {
            let i = id as usize;
            let lat = op_latency(&prog.insts[i], hw) as u64;
            completion[i] = t + lat;
            makespan = makespan.max(completion[i]);
            if !hw.wb_fifo {
                wb_taken.insert((bank_of[i], t + lat));
            }
            if class_of(i) == OpClass::Inverse {
                inv_busy_until = t + lat;
            }
            for &u in &users[i] {
                indegree[u as usize] -= 1;
                if indegree[u as usize] == 0 {
                    let rt = prog.insts[u as usize]
                        .operands()
                        .iter()
                        .map(|&o| completion[o as usize])
                        .max()
                        .unwrap_or(0);
                    pending.push(Reverse((rt, u)));
                }
            }
            group.push(id);
        }
        remaining -= chosen.len();
        groups.push(group);
        t += 1;
    }

    Schedule {
        groups,
        bank_of,
        predicted_cycles: makespan,
    }
}

// Lazy-deletion helper: drop entries whose ids were chosen this cycle.
fn retain_heap(heap: &mut BinaryHeap<(u64, Reverse<u32>)>, chosen: &HashSet<u32>) {
    if chosen.is_empty() {
        return;
    }
    let items: Vec<_> = std::mem::take(heap).into_vec();
    for e in items {
        if !chosen.contains(&e.1 .0) {
            heap.push(e);
        }
    }
}

/// Packs the largest valid subset of `cands` (in the given order) into
/// one issue group at cycle `t`.
fn pack_group(
    prog: &FpProgram,
    hw: &HwModel,
    bank_of: &[u8],
    cands: &[u32],
    t: u64,
    wb_taken: &HashSet<(u8, u64)>,
    inv_busy_until: u64,
) -> Vec<u32> {
    #[derive(Clone, Default)]
    struct State {
        count: usize,
        picks: Vec<u32>,
        reads: HashMap<u8, u8>,
        wb: HashSet<(u8, u64)>,
        longs: u8,
        shorts: u8,
        invs: u8,
    }
    let mut best = State::default();
    let mut cur = State::default();
    // Greedy-with-backtracking over the affinity order is equivalent to
    // the DP for these small candidate windows: we take candidates
    // first-fit, which matches processing states in priority order.
    for &id in cands {
        let i = id as usize;
        let op = &prog.insts[i];
        let class = match op {
            FpOp::Input(_) => OpClass::Long,
            o => o.class(),
        };
        if cur.count >= hw.issue_width as usize {
            break;
        }
        // Unit limits.
        match class {
            OpClass::Long | OpClass::Meta => {
                if cur.longs >= hw.n_mul_units {
                    continue;
                }
            }
            OpClass::Short => {
                if cur.shorts >= hw.n_linear_units {
                    continue;
                }
            }
            OpClass::Inverse => {
                if cur.invs >= 1 || t < inv_busy_until {
                    continue;
                }
            }
        }
        // Read ports.
        let mut reads = cur.reads.clone();
        let mut ok = true;
        for o in op.operands() {
            let b = bank_of[o as usize];
            let r = reads.entry(b).or_insert(0);
            *r += 1;
            if *r > hw.reads_per_bank {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        // Write-back port at completion (HW1 only).
        let lat = op_latency(op, hw) as u64;
        let wb_slot = (bank_of[i], t + lat);
        if !hw.wb_fifo && (wb_taken.contains(&wb_slot) || cur.wb.contains(&wb_slot)) {
            continue;
        }
        // Accept.
        cur.reads = reads;
        cur.wb.insert(wb_slot);
        match class {
            OpClass::Long | OpClass::Meta => cur.longs += 1,
            OpClass::Short => cur.shorts += 1,
            OpClass::Inverse => cur.invs += 1,
        }
        cur.count += 1;
        cur.picks.push(id);
        if cur.count > best.count {
            best = cur.clone();
        }
    }
    best.picks
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_ir::FpProgram;

    /// A small synthetic program: a chain of muls with independent adds
    /// that can hide the Long latency.
    fn mix_program(chain: usize, indep: usize) -> FpProgram {
        let mut p = FpProgram {
            inputs: vec!["a".into(), "b".into()],
            ..Default::default()
        };
        let a = p.push(FpOp::Input(0));
        let b = p.push(FpOp::Input(1));
        let mut acc = a;
        for _ in 0..chain {
            acc = p.push(FpOp::Mul(acc, b));
        }
        let mut adds = Vec::new();
        let mut x = b;
        for _ in 0..indep {
            x = p.push(FpOp::Add(x, a));
            adds.push(x);
        }
        p.outputs.push(acc);
        if let Some(&last) = adds.last() {
            p.outputs.push(last);
        }
        p
    }

    fn all_ids(s: &Schedule) -> Vec<u32> {
        let mut v: Vec<u32> = s.groups.iter().flatten().copied().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn both_strategies_schedule_every_op_once() {
        let p = mix_program(10, 20);
        let hw = HwModel::paper_default();
        for strat in [SchedStrategy::ProgramOrder, SchedStrategy::AffinityList] {
            let s = schedule(
                &p,
                &hw,
                &ScheduleOptions {
                    strategy: strat,
                    affinity_beta: 0.05,
                },
            );
            let ids = all_ids(&s);
            let expect: Vec<u32> = p
                .insts
                .iter()
                .enumerate()
                .filter(|(_, op)| is_schedulable(op))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(ids, expect, "{strat:?}");
        }
    }

    #[test]
    fn schedule_respects_dependences() {
        let p = mix_program(6, 6);
        let hw = HwModel::paper_default();
        let s = schedule(&p, &hw, &ScheduleOptions::default());
        let mut pos = HashMap::new();
        for (gi, g) in s.groups.iter().enumerate() {
            for &id in g {
                pos.insert(id, gi);
            }
        }
        for (i, op) in p.insts.iter().enumerate() {
            if !is_schedulable(op) {
                continue;
            }
            for o in op.operands() {
                if is_schedulable(&p.insts[o as usize]) {
                    assert!(pos[&(o)] < pos[&(i as u32)], "dep order");
                }
            }
        }
    }

    #[test]
    fn list_scheduling_beats_program_order_prediction() {
        // Interleaved mul chain + adds: reordering hides Long latency.
        let p = mix_program(40, 200);
        let hw = HwModel::paper_default();
        let naive = schedule(
            &p,
            &hw,
            &ScheduleOptions {
                strategy: SchedStrategy::ProgramOrder,
                affinity_beta: 0.0,
            },
        );
        let smart = schedule(&p, &hw, &ScheduleOptions::default());
        assert!(
            smart.predicted_cycles < naive.predicted_cycles,
            "smart {} vs naive {}",
            smart.predicted_cycles,
            naive.predicted_cycles
        );
    }

    #[test]
    fn vliw_groups_respect_width_and_units() {
        let p = mix_program(8, 40);
        let hw = HwModel::vliw(4, 8, 2);
        let s = schedule(&p, &hw, &ScheduleOptions::default());
        for g in &s.groups {
            assert!(g.len() <= hw.issue_width as usize);
            let longs = g
                .iter()
                .filter(|&&id| {
                    matches!(
                        p.insts[id as usize],
                        FpOp::Mul(..) | FpOp::Sqr(_) | FpOp::Input(_)
                    )
                })
                .count();
            assert!(longs <= 1, "one mmul per cycle");
        }
    }

    #[test]
    fn bank_assignment_is_residual() {
        let p = mix_program(3, 3);
        let hw = HwModel::vliw(2, 8, 2);
        let banks = assign_banks(&p, &hw);
        for (i, &b) in banks.iter().enumerate() {
            assert_eq!(b as usize, i % hw.n_banks as usize);
        }
    }
}
