//! RegAlloc: sequential register allocation within banks, based on
//! liveness over the scheduled order (paper §3.5).
//!
//! Values keep the bank BankAlloc chose; within a bank, indices come from
//! a free list. A value's register frees once its last consumer has
//! *issued* (reads happen at issue; in-order issue plus data dependences
//! make the reuse hazard-free — see the scheduling module). Constants and
//! program outputs are pinned.

use crate::schedule::Schedule;
use finesse_ir::{FpOp, FpProgram};
use finesse_isa::Reg;
use std::collections::HashMap;

/// Allocation result.
#[derive(Clone, Debug)]
pub struct RegAllocation {
    /// Register per value id (meta values included).
    pub reg_of: Vec<Reg>,
    /// Peak simultaneously-live registers per bank.
    pub peak_per_bank: Vec<u32>,
    /// Peak total live registers (drives the DMem area model).
    pub peak_live: u32,
}

/// Error: a bank ran out of registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegPressureError {
    /// The saturated bank.
    pub bank: u8,
    /// The quota that was exceeded.
    pub quota: u16,
}

impl std::fmt::Display for RegPressureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "register bank {} exceeded its quota of {}",
            self.bank, self.quota
        )
    }
}

impl std::error::Error for RegPressureError {}

/// Allocates registers over a schedule.
///
/// # Errors
///
/// Returns [`RegPressureError`] if a bank's quota is exhausted.
pub fn allocate(
    prog: &FpProgram,
    sched: &Schedule,
    quota: u16,
) -> Result<RegAllocation, RegPressureError> {
    let n = prog.insts.len();
    // Linear position of each op in the scheduled stream; constants and
    // (never-scheduled) meta get position 0 (live from the start).
    let mut pos = vec![0usize; n];
    for (gi, g) in sched.groups.iter().enumerate() {
        for &id in g {
            pos[id as usize] = gi + 1;
        }
    }
    // Last read position per value.
    let mut last_use = vec![0usize; n];
    for (i, op) in prog.insts.iter().enumerate() {
        for o in op.operands() {
            let p = pos[i];
            let cell = &mut last_use[o as usize];
            if *cell < p {
                *cell = p;
            }
        }
    }
    // Outputs stay live to the end.
    let end = sched.groups.len() + 2;
    for &o in &prog.outputs {
        last_use[o as usize] = end;
    }
    // Constants are pinned for the whole program.
    for (i, op) in prog.insts.iter().enumerate() {
        if matches!(op, FpOp::Const(_)) {
            last_use[i] = end;
        }
    }

    let n_banks = sched.bank_of.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut free: Vec<Vec<u16>> = vec![Vec::new(); n_banks];
    let mut next_fresh: Vec<u16> = vec![0; n_banks];
    let mut live_now: Vec<u32> = vec![0; n_banks];
    let mut peak: Vec<u32> = vec![0; n_banks];
    let mut reg_of = vec![Reg::default(); n];

    // Events: allocations in schedule order (meta first), frees as we
    // pass their last use.
    let mut order: Vec<u32> = Vec::with_capacity(n);
    for (i, op) in prog.insts.iter().enumerate() {
        if matches!(op, FpOp::Const(_)) {
            order.push(i as u32);
        }
    }
    for g in &sched.groups {
        order.extend_from_slice(g);
    }

    // Frees keyed by position.
    let mut frees_at: HashMap<usize, Vec<u32>> = HashMap::new();
    for (i, &lu) in last_use.iter().enumerate() {
        if lu < end {
            frees_at.entry(lu).or_default().push(i as u32);
        }
    }

    let mut cur_pos = 0usize;
    for &id in &order {
        let i = id as usize;
        let p = pos[i];
        // Release registers whose last use has passed.
        while cur_pos < p {
            cur_pos += 1;
            if let Some(done) = frees_at.remove(&cur_pos) {
                for v in done {
                    let b = sched.bank_of[v as usize] as usize;
                    free[b].push(reg_of[v as usize].index);
                    live_now[b] -= 1;
                }
            }
        }
        let b = sched.bank_of[i] as usize;
        let idx = if let Some(r) = free[b].pop() {
            r
        } else {
            let r = next_fresh[b];
            if r >= quota {
                return Err(RegPressureError {
                    bank: b as u8,
                    quota,
                });
            }
            next_fresh[b] = r + 1;
            r
        };
        reg_of[i] = Reg {
            bank: b as u8,
            index: idx,
        };
        live_now[b] += 1;
        peak[b] = peak[b].max(live_now[b]);
    }

    let peak_live = peak.iter().sum();
    Ok(RegAllocation {
        reg_of,
        peak_per_bank: peak,
        peak_live,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule, ScheduleOptions};
    use finesse_hw::HwModel;

    fn chain_program(len: usize) -> FpProgram {
        let mut p = FpProgram {
            inputs: vec!["a".into()],
            ..Default::default()
        };
        let a = p.push(FpOp::Input(0));
        let mut acc = a;
        for _ in 0..len {
            acc = p.push(FpOp::Sqr(acc));
        }
        p.outputs.push(acc);
        p
    }

    #[test]
    fn chain_reuses_registers() {
        let p = chain_program(100);
        let hw = HwModel::paper_default();
        let s = schedule(&p, &hw, &ScheduleOptions::default());
        let a = allocate(&p, &s, 512).unwrap();
        // A pure chain needs only a handful of registers, not 100.
        assert!(a.peak_live <= 4, "peak {}", a.peak_live);
    }

    #[test]
    fn quota_violation_is_reported() {
        // Many simultaneously-live values (all feed the final sum).
        let mut p = FpProgram {
            inputs: vec!["a".into()],
            ..Default::default()
        };
        let a = p.push(FpOp::Input(0));
        let vals: Vec<_> = (0..40).map(|_| p.push(FpOp::Dbl(a))).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = p.push(FpOp::Add(acc, v));
        }
        p.outputs.push(acc);
        let hw = HwModel::paper_default();
        let s = schedule(&p, &hw, &ScheduleOptions::default());
        let err = allocate(&p, &s, 8).unwrap_err();
        assert_eq!(err.quota, 8);
        assert!(allocate(&p, &s, 64).is_ok());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // pairwise (i, j) scan over parallel index-keyed tables
    fn no_two_live_values_share_a_register() {
        let p = chain_program(30);
        let hw = HwModel::paper_default();
        let s = schedule(&p, &hw, &ScheduleOptions::default());
        let a = allocate(&p, &s, 512).unwrap();
        // Check pairwise: overlapping live ranges ⇒ different registers.
        let mut pos = vec![0usize; p.insts.len()];
        for (gi, g) in s.groups.iter().enumerate() {
            for &id in g {
                pos[id as usize] = gi + 1;
            }
        }
        let mut last_use = vec![0usize; p.insts.len()];
        for (i, op) in p.insts.iter().enumerate() {
            for o in op.operands() {
                last_use[o as usize] = last_use[o as usize].max(pos[i]);
            }
        }
        for i in 0..p.insts.len() {
            for j in (i + 1)..p.insts.len() {
                if a.reg_of[i] == a.reg_of[j] {
                    // i's range must end before j is defined.
                    assert!(
                        last_use[i] <= pos[j],
                        "%{i} and %{j} share {} but overlap",
                        a.reg_of[i]
                    );
                }
            }
        }
    }
}
