//! IROpt: SSA data-flow optimisation on the lowered F_p program
//! (paper §3.5).
//!
//! One forward rewriting pass combines:
//!
//! * **constant propagation** — full compile-time F_p arithmetic on
//!   constant operands (this is what folds Frobenius constant tables and,
//!   crucially, eliminates the zero limbs of dense-assembled Miller lines,
//!   recovering dense×sparse multiplication automatically, §4.3);
//! * **algebraic simplification / strength reduction** — `x+x → DBL`,
//!   `DBL+x → TPL`, `x·1 → x`, `x·0 → 0`, `x−x → 0`, double negation;
//! * **global value numbering** — with commutativity of `+`/`·` over
//!   finite fields (operands sorted before hashing);
//!
//! followed by **dead-code elimination** back from the outputs. Inputs are
//! kept live unconditionally (they are the ABI).

use finesse_ff::{BigUint, Fp, FpCtx};
use finesse_ir::{FpId, FpOp, FpProgram};
use std::collections::HashMap;
use std::sync::Arc;

/// Optimisation statistics (for Table 7's instruction-reduction column).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Executable instructions before optimisation.
    pub before: usize,
    /// Executable instructions after optimisation.
    pub after: usize,
}

impl OptStats {
    /// Percentage reduction.
    pub fn reduction_percent(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            100.0 * (self.before - self.after) as f64 / self.before as f64
        }
    }
}

/// GVN key: opcode tag plus normalised operands.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum GvnKey {
    Add(FpId, FpId),
    Sub(FpId, FpId),
    Neg(FpId),
    Dbl(FpId),
    Tpl(FpId),
    Mul(FpId, FpId),
    Sqr(FpId),
    Inv(FpId),
}

/// Runs the full IROpt pipeline, returning the optimised program and
/// statistics.
pub fn optimize(prog: &FpProgram, ctx: &Arc<FpCtx>) -> (FpProgram, OptStats) {
    let before = prog.stats().executable();
    let folded = fold_pass(prog, ctx);
    let cleaned = dce(&folded);
    let after = cleaned.stats().executable();
    (cleaned, OptStats { before, after })
}

/// Forward pass: constant folding + simplification + GVN.
fn fold_pass(prog: &FpProgram, ctx: &Arc<FpCtx>) -> FpProgram {
    let mut out = FpProgram {
        insts: Vec::with_capacity(prog.insts.len()),
        inputs: prog.inputs.clone(),
        constants: Vec::new(),
        outputs: Vec::new(),
    };
    // Map old id → new id.
    let mut remap: Vec<FpId> = Vec::with_capacity(prog.insts.len());
    // Knowledge about new ids.
    let mut consts: HashMap<FpId, BigUint> = HashMap::new();
    let mut const_ids: HashMap<BigUint, FpId> = HashMap::new();
    let mut gvn: HashMap<GvnKey, FpId> = HashMap::new();

    let p = ctx.modulus().clone();
    let norm = |v: &BigUint| -> BigUint {
        if v < &p {
            v.clone()
        } else {
            v.rem(&p)
        }
    };

    let emit_const = |out: &mut FpProgram,
                      consts: &mut HashMap<FpId, BigUint>,
                      const_ids: &mut HashMap<BigUint, FpId>,
                      v: BigUint|
     -> FpId {
        if let Some(&id) = const_ids.get(&v) {
            return id;
        }
        let idx = out.constants.len() as u32;
        out.constants.push(v.clone());
        let id = out.push(FpOp::Const(idx));
        const_ids.insert(v.clone(), id);
        consts.insert(id, v);
        id
    };

    // Field arithmetic on canonical constants.
    let fp_of = |v: &BigUint| -> Fp { ctx.from_biguint(v) };

    for op in &prog.insts {
        let mapped = op.map_operands(|o| remap[o as usize]);
        let new_id: FpId = match mapped {
            FpOp::Input(s) => {
                // Inputs are emitted once (lowering already caches them).
                out.push(FpOp::Input(s))
            }
            FpOp::Const(c) => {
                let v = norm(&prog.constants[c as usize]);
                emit_const(&mut out, &mut consts, &mut const_ids, v)
            }
            FpOp::Add(a, b) => {
                let (ca, cb) = (consts.get(&a).cloned(), consts.get(&b).cloned());
                match (ca, cb) {
                    (Some(x), Some(y)) => {
                        let v = (&fp_of(&x) + &fp_of(&y)).to_biguint();
                        emit_const(&mut out, &mut consts, &mut const_ids, v)
                    }
                    (Some(x), None) if x.is_zero() => b,
                    (None, Some(y)) if y.is_zero() => a,
                    _ => {
                        // Strength reduction and commutative GVN.
                        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                        let key = if a == b {
                            GvnKey::Dbl(a)
                        } else {
                            GvnKey::Add(lo, hi)
                        };
                        if let Some(&id) = gvn.get(&key) {
                            id
                        } else {
                            let id = if a == b {
                                out.push(FpOp::Dbl(a))
                            } else {
                                out.push(FpOp::Add(a, b))
                            };
                            gvn.insert(key, id);
                            id
                        }
                    }
                }
            }
            FpOp::Sub(a, b) => {
                let (ca, cb) = (consts.get(&a).cloned(), consts.get(&b).cloned());
                if a == b {
                    emit_const(&mut out, &mut consts, &mut const_ids, BigUint::zero())
                } else {
                    match (ca, cb) {
                        (Some(x), Some(y)) => {
                            let v = (&fp_of(&x) - &fp_of(&y)).to_biguint();
                            emit_const(&mut out, &mut consts, &mut const_ids, v)
                        }
                        (None, Some(y)) if y.is_zero() => a,
                        (Some(x), None) if x.is_zero() => {
                            let key = GvnKey::Neg(b);
                            *gvn.entry(key).or_insert_with(|| out.push(FpOp::Neg(b)))
                        }
                        _ => {
                            let key = GvnKey::Sub(a, b);
                            *gvn.entry(key).or_insert_with(|| out.push(FpOp::Sub(a, b)))
                        }
                    }
                }
            }
            FpOp::Neg(a) => {
                if let Some(x) = consts.get(&a).cloned() {
                    let v = (-&fp_of(&x)).to_biguint();
                    emit_const(&mut out, &mut consts, &mut const_ids, v)
                } else {
                    let key = GvnKey::Neg(a);
                    *gvn.entry(key).or_insert_with(|| out.push(FpOp::Neg(a)))
                }
            }
            FpOp::Dbl(a) => {
                if let Some(x) = consts.get(&a).cloned() {
                    let v = fp_of(&x).double().to_biguint();
                    emit_const(&mut out, &mut consts, &mut const_ids, v)
                } else {
                    let key = GvnKey::Dbl(a);
                    *gvn.entry(key).or_insert_with(|| out.push(FpOp::Dbl(a)))
                }
            }
            FpOp::Tpl(a) => {
                if let Some(x) = consts.get(&a).cloned() {
                    let v = fp_of(&x).triple().to_biguint();
                    emit_const(&mut out, &mut consts, &mut const_ids, v)
                } else {
                    let key = GvnKey::Tpl(a);
                    *gvn.entry(key).or_insert_with(|| out.push(FpOp::Tpl(a)))
                }
            }
            FpOp::Mul(a, b) => {
                let (ca, cb) = (consts.get(&a).cloned(), consts.get(&b).cloned());
                match (ca, cb) {
                    (Some(x), Some(y)) => {
                        let v = (&fp_of(&x) * &fp_of(&y)).to_biguint();
                        emit_const(&mut out, &mut consts, &mut const_ids, v)
                    }
                    (Some(x), None) if x.is_zero() => {
                        emit_const(&mut out, &mut consts, &mut const_ids, BigUint::zero())
                    }
                    (None, Some(y)) if y.is_zero() => {
                        emit_const(&mut out, &mut consts, &mut const_ids, BigUint::zero())
                    }
                    (Some(x), None) if x.is_one() => b,
                    (None, Some(y)) if y.is_one() => a,
                    _ => {
                        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                        let key = if a == b {
                            GvnKey::Sqr(a)
                        } else {
                            GvnKey::Mul(lo, hi)
                        };
                        if let Some(&id) = gvn.get(&key) {
                            id
                        } else {
                            let id = if a == b {
                                out.push(FpOp::Sqr(a))
                            } else {
                                out.push(FpOp::Mul(a, b))
                            };
                            gvn.insert(key, id);
                            id
                        }
                    }
                }
            }
            FpOp::Sqr(a) => {
                if let Some(x) = consts.get(&a).cloned() {
                    let v = fp_of(&x).square().to_biguint();
                    emit_const(&mut out, &mut consts, &mut const_ids, v)
                } else {
                    let key = GvnKey::Sqr(a);
                    *gvn.entry(key).or_insert_with(|| out.push(FpOp::Sqr(a)))
                }
            }
            FpOp::Inv(a) => {
                if let Some(x) = consts.get(&a).cloned() {
                    let v = fp_of(&x).invert().to_biguint();
                    emit_const(&mut out, &mut consts, &mut const_ids, v)
                } else {
                    let key = GvnKey::Inv(a);
                    *gvn.entry(key).or_insert_with(|| out.push(FpOp::Inv(a)))
                }
            }
        };
        remap.push(new_id);
    }
    out.outputs = prog.outputs.iter().map(|&o| remap[o as usize]).collect();
    out
}

/// Dead-code elimination from outputs (inputs stay live: they are the
/// accelerator's ABI).
fn dce(prog: &FpProgram) -> FpProgram {
    let n = prog.insts.len();
    let mut live = vec![false; n];
    let mut stack: Vec<FpId> = prog.outputs.clone();
    for (i, op) in prog.insts.iter().enumerate() {
        if matches!(op, FpOp::Input(_)) {
            live[i] = true;
        }
    }
    while let Some(id) = stack.pop() {
        let i = id as usize;
        if live[i] {
            continue;
        }
        live[i] = true;
        stack.extend(prog.insts[i].operands());
    }

    let mut out = FpProgram {
        insts: Vec::new(),
        inputs: prog.inputs.clone(),
        constants: Vec::new(),
        outputs: Vec::new(),
    };
    let mut remap: Vec<Option<FpId>> = vec![None; n];
    let mut const_remap: HashMap<u32, u32> = HashMap::new();
    for (i, op) in prog.insts.iter().enumerate() {
        if !live[i] {
            continue;
        }
        let op = match *op {
            FpOp::Const(c) => {
                let nc = *const_remap.entry(c).or_insert_with(|| {
                    let idx = out.constants.len() as u32;
                    out.constants.push(prog.constants[c as usize].clone());
                    idx
                });
                FpOp::Const(nc)
            }
            other => other.map_operands(|o| remap[o as usize].expect("operand is live")),
        };
        remap[i] = Some(out.push(op));
    }
    out.outputs = prog
        .outputs
        .iter()
        .map(|&o| remap[o as usize].expect("output is live"))
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Arc<FpCtx> {
        FpCtx::new(BigUint::from_u64(1_000_000_007)).unwrap()
    }

    fn prog_with(ops: impl FnOnce(&mut FpProgram)) -> FpProgram {
        let mut p = FpProgram::default();
        ops(&mut p);
        p
    }

    #[test]
    fn folds_mul_by_zero_chain() {
        // Dense × sparse recovery: a·0 + b·0 → 0, then x + 0 → x.
        let c = ctx();
        let p = prog_with(|p| {
            p.inputs = vec!["a".into(), "b".into(), "x".into()];
            let a = p.push(FpOp::Input(0));
            let b = p.push(FpOp::Input(1));
            let x = p.push(FpOp::Input(2));
            p.constants.push(BigUint::zero());
            let z = p.push(FpOp::Const(0));
            let m1 = p.push(FpOp::Mul(a, z));
            let m2 = p.push(FpOp::Mul(b, z));
            let s = p.push(FpOp::Add(m1, m2));
            let r = p.push(FpOp::Add(x, s));
            p.outputs.push(r);
        });
        let (opt, stats) = optimize(&p, &c);
        assert_eq!(opt.stats().executable(), 0, "everything folds to the input");
        assert!(stats.after < stats.before);
        // Semantics preserved.
        let inputs = [c.from_u64(3), c.from_u64(4), c.from_u64(7)];
        assert_eq!(opt.evaluate(&c, &inputs)[0], c.from_u64(7));
    }

    #[test]
    fn gvn_merges_commutative_muls() {
        let c = ctx();
        let p = prog_with(|p| {
            p.inputs = vec!["a".into(), "b".into()];
            let a = p.push(FpOp::Input(0));
            let b = p.push(FpOp::Input(1));
            let m1 = p.push(FpOp::Mul(a, b));
            let m2 = p.push(FpOp::Mul(b, a));
            let s = p.push(FpOp::Add(m1, m2));
            p.outputs.push(s);
        });
        let (opt, _) = optimize(&p, &c);
        // a·b and b·a merge; their sum becomes a DBL.
        let st = opt.stats();
        assert_eq!(st.mul, 1);
        assert_eq!(st.linear, 1);
        let inputs = [c.from_u64(5), c.from_u64(11)];
        assert_eq!(opt.evaluate(&c, &inputs)[0], c.from_u64(110));
    }

    #[test]
    fn constant_arithmetic_folds_completely() {
        let c = ctx();
        let p = prog_with(|p| {
            p.constants = vec![BigUint::from_u64(6), BigUint::from_u64(7)];
            let x = p.push(FpOp::Const(0));
            let y = p.push(FpOp::Const(1));
            let m = p.push(FpOp::Mul(x, y));
            let s = p.push(FpOp::Sqr(m));
            p.outputs.push(s);
        });
        let (opt, _) = optimize(&p, &c);
        assert_eq!(opt.stats().executable(), 0);
        assert_eq!(opt.evaluate(&c, &[])[0], c.from_u64(42 * 42));
    }

    #[test]
    fn x_plus_x_becomes_dbl_and_x_times_x_becomes_sqr() {
        let c = ctx();
        let p = prog_with(|p| {
            p.inputs = vec!["a".into()];
            let a = p.push(FpOp::Input(0));
            let s = p.push(FpOp::Add(a, a));
            let m = p.push(FpOp::Mul(a, a));
            let r = p.push(FpOp::Add(s, m));
            p.outputs.push(r);
        });
        let (opt, _) = optimize(&p, &c);
        assert!(opt.insts.contains(&FpOp::Dbl(0)));
        assert!(opt.insts.iter().any(|o| matches!(o, FpOp::Sqr(_))));
        assert_eq!(opt.evaluate(&c, &[c.from_u64(3)])[0], c.from_u64(15));
    }

    #[test]
    fn sub_self_is_zero_and_zero_minus_x_is_neg() {
        let c = ctx();
        let p = prog_with(|p| {
            p.inputs = vec!["a".into(), "b".into()];
            let a = p.push(FpOp::Input(0));
            let b = p.push(FpOp::Input(1));
            let z = p.push(FpOp::Sub(a, a));
            let n = p.push(FpOp::Sub(z, b));
            p.outputs.push(n);
        });
        let (opt, _) = optimize(&p, &c);
        let st = opt.stats();
        assert_eq!(st.linear, 1, "only the NEG remains");
        assert_eq!(
            opt.evaluate(&c, &[c.from_u64(9), c.from_u64(4)])[0],
            -&c.from_u64(4)
        );
    }

    #[test]
    fn dce_drops_unreachable_work_but_keeps_inputs() {
        let c = ctx();
        let p = prog_with(|p| {
            p.inputs = vec!["a".into(), "unused".into()];
            let a = p.push(FpOp::Input(0));
            let u = p.push(FpOp::Input(1));
            let _dead = p.push(FpOp::Sqr(u));
            let r = p.push(FpOp::Dbl(a));
            p.outputs.push(r);
        });
        let (opt, _) = optimize(&p, &c);
        assert_eq!(opt.stats().executable(), 1);
        assert_eq!(opt.inputs.len(), 2, "ABI preserved");
        assert_eq!(opt.stats().meta, 2, "both inputs kept");
    }
}
