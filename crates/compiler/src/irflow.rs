//! CodeGen: the pairing algorithm recorded as hierarchical IR.
//!
//! [`IrFlow`] implements `finesse_pairing::PairingFlow` with SSA value ids
//! as its handles, so driving the *same* optimal-Ate skeleton that powers
//! the reference library emits the fully unrolled single-basic-block IR of
//! the paper's CodeGen stage (§3.5). Loop bounds (NAF digits, chain
//! structure) are curve constants, so the recording is deterministic.

use finesse_curves::Curve;
use finesse_ir::{HirOp, HirProgram, ValueId};
use finesse_pairing::{emit_pairing, PairingFlow};

/// A [`PairingFlow`] that records hierarchical IR instead of computing.
pub struct IrFlow<'c> {
    curve: &'c Curve,
    prog: HirProgram,
    qdeg: u8,
    k: u8,
}

impl<'c> IrFlow<'c> {
    /// Creates an empty recorder for a curve.
    pub fn new(curve: &'c Curve) -> Self {
        let k = curve.k() as u8;
        IrFlow {
            curve,
            prog: HirProgram::new(),
            qdeg: k / 6,
            k,
        }
    }

    /// Records the complete optimal-Ate pairing program.
    pub fn record_pairing(curve: &'c Curve) -> HirProgram {
        let mut flow = IrFlow::new(curve);
        emit_pairing(curve, &mut flow);
        flow.finish()
    }

    /// The recorded program.
    pub fn finish(self) -> HirProgram {
        self.prog
    }
}

impl PairingFlow for IrFlow<'_> {
    type Fp = ValueId;
    type Fq = ValueId;
    type Fpk = ValueId;

    fn input_p(&mut self) -> (ValueId, ValueId) {
        (
            self.prog.declare_input("P.x", 1),
            self.prog.declare_input("P.y", 1),
        )
    }

    fn input_q(&mut self) -> (ValueId, ValueId) {
        (
            self.prog.declare_input("Q.x", self.qdeg),
            self.prog.declare_input("Q.y", self.qdeg),
        )
    }

    fn output(&mut self, f: &ValueId) {
        self.prog.outputs.push(*f);
    }

    fn fq_constant(&mut self, value: &finesse_ff::Fq, label: &str) -> ValueId {
        self.prog.add_constant(
            label,
            self.qdeg,
            finesse_ir::convert::fq_to_canonical(value),
        )
    }

    fn fq_add(&mut self, a: &ValueId, b: &ValueId) -> ValueId {
        self.prog.push(HirOp::Add(*a, *b), self.qdeg)
    }

    fn fq_sub(&mut self, a: &ValueId, b: &ValueId) -> ValueId {
        self.prog.push(HirOp::Sub(*a, *b), self.qdeg)
    }

    fn fq_neg(&mut self, a: &ValueId) -> ValueId {
        self.prog.push(HirOp::Neg(*a), self.qdeg)
    }

    fn fq_mul(&mut self, a: &ValueId, b: &ValueId) -> ValueId {
        self.prog.push(HirOp::Mul(*a, *b), self.qdeg)
    }

    fn fq_sqr(&mut self, a: &ValueId) -> ValueId {
        self.prog.push(HirOp::Sqr(*a), self.qdeg)
    }

    fn fq_muli(&mut self, a: &ValueId, k: u64) -> ValueId {
        self.prog.push(HirOp::MulI(*a, k), self.qdeg)
    }

    fn fq_mul_fp(&mut self, a: &ValueId, s: &ValueId) -> ValueId {
        self.prog.push(HirOp::Mul(*a, *s), self.qdeg)
    }

    fn fq_frob(&mut self, a: &ValueId, j: usize) -> ValueId {
        self.prog.push(HirOp::Frob(*a, j as u8), self.qdeg)
    }

    fn fpk_one(&mut self) -> ValueId {
        let one = {
            let t = self.curve.tower();
            t.fq_one()
        };
        let one_q = self.fq_constant(&one, "fq_one");
        let zero = self.prog.add_constant(
            "fq_zero",
            self.qdeg,
            vec![finesse_ff::BigUint::zero(); self.qdeg as usize],
        );
        self.prog.push(
            HirOp::Pack {
                parts: vec![one_q, zero, zero, zero, zero, zero],
            },
            self.k,
        )
    }

    fn fpk_mul(&mut self, a: &ValueId, b: &ValueId) -> ValueId {
        self.prog.push(HirOp::Mul(*a, *b), self.k)
    }

    fn fpk_sqr(&mut self, a: &ValueId) -> ValueId {
        self.prog.push(HirOp::Sqr(*a), self.k)
    }

    fn fpk_cyclo_sqr(&mut self, a: &ValueId) -> ValueId {
        self.prog.push(HirOp::CycloSqr(*a), self.k)
    }

    fn fpk_conj(&mut self, a: &ValueId) -> ValueId {
        self.prog.push(HirOp::Conj(*a), self.k)
    }

    fn fpk_inv(&mut self, a: &ValueId) -> ValueId {
        self.prog.push(HirOp::Inv(*a), self.k)
    }

    fn fpk_frob(&mut self, a: &ValueId, j: usize) -> ValueId {
        self.prog.push(HirOp::Frob(*a, j as u8), self.k)
    }

    fn fpk_sparse(&mut self, coeffs: [Option<ValueId>; 6]) -> ValueId {
        let zero = self.prog.add_constant(
            "fq_zero",
            self.qdeg,
            vec![finesse_ff::BigUint::zero(); self.qdeg as usize],
        );
        let parts = coeffs.into_iter().map(|c| c.unwrap_or(zero)).collect();
        self.prog.push(HirOp::Pack { parts }, self.k)
    }

    fn fpk_mul_sparse(&mut self, a: &ValueId, coeffs: [Option<ValueId>; 6]) -> ValueId {
        // Record the line multiplication sparsity-aware (PR 3's 13-mul
        // kernel shape) instead of densifying: the explored design space
        // then prices the Miller loop the shipped software actually runs.
        self.prog.push(
            HirOp::MulSparse {
                a: *a,
                parts: coeffs.to_vec(),
            },
            self.k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorded_program_is_valid_ssa() {
        let curve = Curve::by_name("BN254N");
        let prog = IrFlow::record_pairing(&curve);
        prog.validate().expect("recorded pairing IR is well-formed");
        assert_eq!(prog.outputs.len(), 1);
        assert_eq!(prog.inputs.len(), 4);
        // Fully unrolled: thousands of top-level ops.
        assert!(prog.insts.len() > 1000, "got {}", prog.insts.len());
        // Constant table stays small (paper: fits in a small table).
        assert!(prog.constants.len() < 64, "got {}", prog.constants.len());
    }

    #[test]
    fn recording_is_deterministic() {
        let curve = Curve::by_name("BLS12-381");
        let p1 = IrFlow::record_pairing(&curve);
        let p2 = IrFlow::record_pairing(&curve);
        assert_eq!(p1.insts.len(), p2.insts.len());
        assert_eq!(p1.constants.len(), p2.constants.len());
    }
}
