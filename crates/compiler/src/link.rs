//! ASM + Link: translate scheduled, register-allocated SSA into machine
//! operations, append the I/O conversion epilogue, and emit the binary
//! program image (paper §3.5's final two stages).
//!
//! The optimal-Ate program is a single fully-unrolled basic block, so
//! linking reduces to concatenating the instruction stream, materialising
//! the constant-table preload section, and recording the I/O register
//! map.

use crate::regalloc::RegAllocation;
use crate::schedule::Schedule;
use finesse_ir::{FpOp, FpProgram};
use finesse_isa::{CodecError, EncodingSpec, MachineOp, Opcode, ProgramImage, Reg, WideInst};

/// Translates one SSA op to a machine op under an allocation.
fn to_machine(prog: &FpProgram, alloc: &RegAllocation, id: u32) -> MachineOp {
    let i = id as usize;
    let dst = alloc.reg_of[i];
    let r = |v: u32| alloc.reg_of[v as usize];
    match prog.insts[i] {
        FpOp::Input(s) => MachineOp {
            op: Opcode::Icv,
            dst,
            src1: Reg {
                bank: 0,
                index: s as u16,
            },
            src2: Reg::default(),
        },
        FpOp::Const(_) => unreachable!("constants are preloaded, not emitted"),
        FpOp::Add(a, b) => MachineOp {
            op: Opcode::Add,
            dst,
            src1: r(a),
            src2: r(b),
        },
        FpOp::Sub(a, b) => MachineOp {
            op: Opcode::Sub,
            dst,
            src1: r(a),
            src2: r(b),
        },
        FpOp::Neg(a) => MachineOp {
            op: Opcode::Neg,
            dst,
            src1: r(a),
            src2: Reg::default(),
        },
        FpOp::Dbl(a) => MachineOp {
            op: Opcode::Dbl,
            dst,
            src1: r(a),
            src2: Reg::default(),
        },
        FpOp::Tpl(a) => MachineOp {
            op: Opcode::Tpl,
            dst,
            src1: r(a),
            src2: Reg::default(),
        },
        FpOp::Mul(a, b) => MachineOp {
            op: Opcode::Mul,
            dst,
            src1: r(a),
            src2: r(b),
        },
        FpOp::Sqr(a) => MachineOp {
            op: Opcode::Sqr,
            dst,
            src1: r(a),
            src2: Reg::default(),
        },
        FpOp::Inv(a) => MachineOp {
            op: Opcode::Inv,
            dst,
            src1: r(a),
            src2: Reg::default(),
        },
    }
}

/// Assembles the wide-instruction stream (without the CVT epilogue).
pub fn assemble(prog: &FpProgram, sched: &Schedule, alloc: &RegAllocation) -> Vec<WideInst> {
    sched
        .groups
        .iter()
        .map(|g| WideInst {
            slots: g.iter().map(|&id| to_machine(prog, alloc, id)).collect(),
        })
        .collect()
}

/// Links the full image: instruction stream, CVT epilogue, constant
/// preloads and the I/O register map.
///
/// # Errors
///
/// Propagates encoding failures (register pressure beyond even the wide
/// format would surface here).
pub fn link(
    prog: &FpProgram,
    sched: &Schedule,
    alloc: &RegAllocation,
    issue_width: u8,
) -> Result<ProgramImage, CodecError> {
    let mut insts = assemble(prog, sched, alloc);
    // CVT epilogue: one conversion per output coordinate.
    for (port, &o) in prog.outputs.iter().enumerate() {
        insts.push(WideInst {
            slots: vec![MachineOp {
                op: Opcode::Cvt,
                dst: Reg {
                    bank: 0,
                    index: port as u16,
                },
                src1: alloc.reg_of[o as usize],
                src2: Reg::default(),
            }],
        });
    }

    let n_banks = alloc.peak_per_bank.len().max(1) as u8;
    let max_pressure = alloc.peak_per_bank.iter().copied().max().unwrap_or(0);
    let spec = EncodingSpec::for_pressure(n_banks, issue_width, max_pressure);

    let words = spec.encode(&insts)?;

    let const_preload = prog
        .insts
        .iter()
        .enumerate()
        .filter_map(|(i, op)| match op {
            FpOp::Const(c) => Some((alloc.reg_of[i], prog.constants[*c as usize].clone())),
            _ => None,
        })
        .collect();

    let input_regs = {
        let mut regs = vec![Reg::default(); prog.inputs.len()];
        for (i, op) in prog.insts.iter().enumerate() {
            if let FpOp::Input(s) = op {
                regs[*s as usize] = alloc.reg_of[i];
            }
        }
        regs
    };

    let output_regs = prog
        .outputs
        .iter()
        .map(|&o| alloc.reg_of[o as usize])
        .collect();

    Ok(ProgramImage {
        spec,
        words,
        const_preload,
        input_regs,
        output_regs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regalloc::allocate;
    use crate::schedule::{schedule, ScheduleOptions};
    use finesse_hw::HwModel;

    #[test]
    fn image_roundtrips_through_decoder() {
        let mut p = FpProgram {
            inputs: vec!["a".into(), "b".into()],
            ..Default::default()
        };
        let a = p.push(FpOp::Input(0));
        let b = p.push(FpOp::Input(1));
        p.constants.push(finesse_ff::BigUint::from_u64(7));
        let c = p.push(FpOp::Const(0));
        let m = p.push(FpOp::Mul(a, b));
        let s = p.push(FpOp::Add(m, c));
        p.outputs.push(s);

        let hw = HwModel::paper_default();
        let sch = schedule(&p, &hw, &ScheduleOptions::default());
        let alloc = allocate(&p, &sch, hw.reg_quota).unwrap();
        let image = link(&p, &sch, &alloc, hw.issue_width).unwrap();

        assert_eq!(image.const_preload.len(), 1);
        assert_eq!(image.input_regs.len(), 2);
        assert_eq!(image.output_regs.len(), 1);
        let decoded = image.spec.decode(&image.words).unwrap();
        // 2 ICV + 1 MUL + 1 ADD + 1 CVT
        assert_eq!(decoded.len(), 5);
        assert_eq!(decoded.last().unwrap().slots[0].op, Opcode::Cvt);
        let hex = image.hex_head(3);
        assert_eq!(hex.lines().count(), 3);
    }
}
