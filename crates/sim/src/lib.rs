//! # finesse-sim
//!
//! The two simulators of the paper's validation flow (§3.4):
//!
//! - [`functional`] — a single-cycle functional simulator that executes
//!   linked binaries on real field elements, cross-validated against the
//!   reference pairing library;
//! - [`pipeline`] — a cycle-accurate simulator consistent with the RTL
//!   pipeline model (latencies, dependences, bank ports, write-back
//!   conflicts ± ring buffers), which supplies the cycle counts and IPC
//!   data driving compiler affinity optimisation and design-space
//!   exploration.

pub mod functional;
pub mod pipeline;

pub use functional::{run_image, FuncSimError};
pub use pipeline::{simulate, IssueTrace, SimReport, SlotKind};

#[cfg(test)]
mod integration {
    use super::*;
    use finesse_compiler::{compile_pairing, tower_shape, CompileOptions};
    use finesse_curves::Curve;
    use finesse_ff::BigUint;
    use finesse_hw::HwModel;
    use finesse_ir::convert::{fpk_to_fps, fps_to_fpk, fq_to_fps};
    use finesse_ir::VariantConfig;
    use finesse_pairing::PairingEngine;

    /// The paper's validation flow, end to end: the compiled binary,
    /// functionally simulated, must reproduce the reference pairing.
    #[test]
    fn compiled_binary_computes_the_pairing() {
        let curve = Curve::by_name("BN254N");
        let shape = tower_shape(&curve);
        let variants = VariantConfig::all_karatsuba(&shape);
        let hw = HwModel::paper_default();
        let compiled = compile_pairing(&curve, &variants, &hw, &CompileOptions::default()).unwrap();

        let engine = PairingEngine::new(curve.clone());
        let p = curve.g1_mul(curve.g1_generator(), &BigUint::from_u64(7777));
        let q = curve.g2_mul(curve.g2_generator(), &BigUint::from_u64(31415));
        let expected = engine.pair(&p, &q);

        // Flatten the inputs in the ABI order P.x, P.y, Q.x, Q.y.
        let mut inputs: Vec<BigUint> = vec![p.x.to_biguint(), p.y.to_biguint()];
        inputs.extend(fq_to_fps(&q.x).iter().map(|f| f.to_biguint()));
        inputs.extend(fq_to_fps(&q.y).iter().map(|f| f.to_biguint()));

        let out = run_image(&compiled.image, curve.fp(), &inputs).unwrap();
        let out_fps: Vec<_> = out.iter().map(|v| curve.fp().from_biguint(v)).collect();
        let got = fps_to_fpk(curve.tower(), &out_fps);
        assert_eq!(got, expected, "functional simulation == reference pairing");
        // Sanity: the flat widths agree.
        assert_eq!(out.len(), fpk_to_fps(&expected).len());
    }

    /// The optimised schedule should reach the paper's ~0.85+ IPC band on
    /// the default model, and the unoptimised baseline should crawl.
    #[test]
    fn ipc_band_matches_table7_shape() {
        let curve = Curve::by_name("BN254N");
        let shape = tower_shape(&curve);
        let variants = VariantConfig::all_karatsuba(&shape);
        let hw = HwModel::paper_default();

        let opt = compile_pairing(&curve, &variants, &hw, &CompileOptions::default()).unwrap();
        let insts = opt.image.spec.decode(&opt.image.words).unwrap();
        let report = simulate(&insts, &hw, None);
        let ipc = report.ipc();
        assert!(ipc > 0.70, "optimised IPC {ipc:.3}");

        let init = compile_pairing(&curve, &variants, &hw, &CompileOptions::baseline()).unwrap();
        let insts = init.image.spec.decode(&init.image.words).unwrap();
        let report_init = simulate(&insts, &hw, None);
        let ipc_init = report_init.ipc();
        assert!(ipc_init < 0.45, "baseline IPC {ipc_init:.3}");
        assert!(
            report_init.cycles > report.cycles,
            "scheduling reduces cycles: {} vs {}",
            report_init.cycles,
            report.cycles
        );
        println!(
            "BN254N: opt {} cycles (IPC {:.2}), init {} cycles (IPC {:.2})",
            report.cycles, ipc, report_init.cycles, ipc_init
        );
    }

    /// The write-back FIFO (HW2) must not hurt and usually helps.
    #[test]
    fn fifo_does_not_hurt() {
        let curve = Curve::by_name("BN254N");
        let shape = tower_shape(&curve);
        let variants = VariantConfig::all_karatsuba(&shape);
        let hw1 = HwModel::paper_default();
        let compiled =
            compile_pairing(&curve, &variants, &hw1, &CompileOptions::default()).unwrap();
        let insts = compiled.image.spec.decode(&compiled.image.words).unwrap();
        let r1 = simulate(&insts, &hw1, None);
        let r2 = simulate(&insts, &hw1.clone().with_fifo(), None);
        assert!(r2.cycles <= r1.cycles);
    }
}
