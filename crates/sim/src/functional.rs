//! The single-cycle functional simulator (paper §3.4): executes a linked
//! binary image instruction-by-instruction on real Montgomery field
//! elements, so compiled accelerator programs can be cross-validated
//! against the reference pairing library.
//!
//! Unwritten-register reads are hard errors — this is what catches
//! register-allocation or encoding bugs, exactly the role post-compile
//! trace validation plays in the paper.

use finesse_ff::{BigUint, Fp, FpCtx};
use finesse_isa::{Opcode, ProgramImage, Reg};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Error raised by the functional simulator.
#[derive(Debug)]
pub enum FuncSimError {
    /// The image failed to decode.
    Decode(finesse_isa::CodecError),
    /// An instruction read a register that was never written.
    UnwrittenRegister {
        /// The offending register.
        reg: Reg,
        /// Word index of the instruction.
        at: usize,
    },
    /// An `ICV` referenced an input port beyond the provided inputs.
    MissingInput(u16),
}

impl fmt::Display for FuncSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuncSimError::Decode(e) => write!(f, "image decode: {e}"),
            FuncSimError::UnwrittenRegister { reg, at } => {
                write!(f, "instruction {at} reads unwritten register {reg}")
            }
            FuncSimError::MissingInput(p) => write!(f, "ICV references missing input port {p}"),
        }
    }
}

impl std::error::Error for FuncSimError {}

impl From<finesse_isa::CodecError> for FuncSimError {
    fn from(e: finesse_isa::CodecError) -> Self {
        FuncSimError::Decode(e)
    }
}

/// Executes a program image on canonical inputs, returning canonical
/// outputs (in `CVT` port order).
///
/// # Errors
///
/// Returns a [`FuncSimError`] on decode failures, unwritten-register
/// reads, or missing inputs.
pub fn run_image(
    image: &ProgramImage,
    ctx: &Arc<FpCtx>,
    inputs: &[BigUint],
) -> Result<Vec<BigUint>, FuncSimError> {
    let insts = image.spec.decode(&image.words)?;
    let mut regs: HashMap<Reg, Fp> = HashMap::new();
    for (reg, value) in &image.const_preload {
        regs.insert(*reg, ctx.from_biguint(value));
    }
    let mut outputs: HashMap<u16, BigUint> = HashMap::new();

    let read = |regs: &HashMap<Reg, Fp>, r: Reg, at: usize| -> Result<Fp, FuncSimError> {
        regs.get(&r)
            .cloned()
            .ok_or(FuncSimError::UnwrittenRegister { reg: r, at })
    };

    for (at, wide) in insts.iter().enumerate() {
        // Two-phase execution per wide instruction: hardware reads all
        // operands at issue, and write-backs land later — so every slot
        // must observe the register file as it was *before* this word.
        let mut writes: Vec<(Reg, Fp)> = Vec::with_capacity(wide.slots.len());
        for slot in &wide.slots {
            match slot.op {
                Opcode::Nop => {}
                Opcode::Icv => {
                    let port = slot.src1.index;
                    let v = inputs
                        .get(port as usize)
                        .ok_or(FuncSimError::MissingInput(port))?;
                    writes.push((slot.dst, ctx.from_biguint(v)));
                }
                Opcode::Cvt => {
                    let v = read(&regs, slot.src1, at)?;
                    outputs.insert(slot.dst.index, v.to_biguint());
                }
                Opcode::Add => {
                    let (a, b) = (read(&regs, slot.src1, at)?, read(&regs, slot.src2, at)?);
                    writes.push((slot.dst, &a + &b));
                }
                Opcode::Sub => {
                    let (a, b) = (read(&regs, slot.src1, at)?, read(&regs, slot.src2, at)?);
                    writes.push((slot.dst, &a - &b));
                }
                Opcode::Neg => {
                    let a = read(&regs, slot.src1, at)?;
                    writes.push((slot.dst, -&a));
                }
                Opcode::Dbl => {
                    let a = read(&regs, slot.src1, at)?;
                    writes.push((slot.dst, a.double()));
                }
                Opcode::Tpl => {
                    let a = read(&regs, slot.src1, at)?;
                    writes.push((slot.dst, a.triple()));
                }
                Opcode::Mul => {
                    let (a, b) = (read(&regs, slot.src1, at)?, read(&regs, slot.src2, at)?);
                    writes.push((slot.dst, &a * &b));
                }
                Opcode::Sqr => {
                    let a = read(&regs, slot.src1, at)?;
                    writes.push((slot.dst, a.square()));
                }
                Opcode::Inv => {
                    let a = read(&regs, slot.src1, at)?;
                    writes.push((slot.dst, a.invert()));
                }
            }
        }
        for (r, v) in writes {
            regs.insert(r, v);
        }
    }

    let mut ports: Vec<(u16, _)> = outputs.into_iter().collect();
    ports.sort_unstable_by_key(|(p, _)| *p);
    Ok(ports.into_iter().map(|(_, v)| v).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_compiler::{allocate, link, schedule, ScheduleOptions};
    use finesse_hw::HwModel;
    use finesse_ir::{FpOp, FpProgram};

    #[test]
    fn runs_a_compiled_expression() {
        // out = (a + b)·c − a²
        let mut p = FpProgram {
            inputs: vec!["a".into(), "b".into(), "c".into()],
            ..Default::default()
        };
        let a = p.push(FpOp::Input(0));
        let b = p.push(FpOp::Input(1));
        let c = p.push(FpOp::Input(2));
        let s = p.push(FpOp::Add(a, b));
        let m = p.push(FpOp::Mul(s, c));
        let sq = p.push(FpOp::Sqr(a));
        let r = p.push(FpOp::Sub(m, sq));
        p.outputs.push(r);

        let hw = HwModel::paper_default();
        let sch = schedule(&p, &hw, &ScheduleOptions::default());
        let alloc = allocate(&p, &sch, hw.reg_quota).unwrap();
        let image = link(&p, &sch, &alloc, hw.issue_width).unwrap();

        let ctx = finesse_ff::FpCtx::new(BigUint::from_u64(1_000_000_007)).unwrap();
        let out = run_image(
            &image,
            &ctx,
            &[
                BigUint::from_u64(3),
                BigUint::from_u64(4),
                BigUint::from_u64(10),
            ],
        )
        .unwrap();
        assert_eq!(out, vec![BigUint::from_u64(61)]); // 7·10 − 9
    }

    #[test]
    fn missing_input_is_detected() {
        let mut p = FpProgram {
            inputs: vec!["a".into()],
            ..Default::default()
        };
        let a = p.push(FpOp::Input(0));
        p.outputs.push(a);
        let hw = HwModel::paper_default();
        let sch = schedule(&p, &hw, &ScheduleOptions::default());
        let alloc = allocate(&p, &sch, hw.reg_quota).unwrap();
        let image = link(&p, &sch, &alloc, hw.issue_width).unwrap();
        let ctx = finesse_ff::FpCtx::new(BigUint::from_u64(1_000_000_007)).unwrap();
        assert!(matches!(
            run_image(&image, &ctx, &[]),
            Err(FuncSimError::MissingInput(0))
        ));
    }
}
