//! The cycle-accurate pipeline simulator (paper §3.4): consistent with
//! the RTL pipeline model — in-order issue, operand scoreboarding against
//! unit latencies, register-bank read ports, single write-back ports per
//! bank (with conflicts either stalling issue or absorbed by the
//! write-back ring buffers — the HW1/HW2 pair of Table 7), and the
//! non-pipelined iterative inversion unit.
//!
//! This simulator is the experimental infrastructure the compiler's
//! affinity optimisation and the DSE loop read their cycle counts from,
//! and it produces the issue-queue occupancy traces of Figure 9.

use finesse_hw::HwModel;
use finesse_isa::{Opcode, Reg, WideInst};
use std::collections::{HashMap, HashSet};

/// What occupied an issue slot in a given cycle (Figure 9 waterfall).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotKind {
    /// A Long (multiplicative / conversion) instruction issued.
    Long,
    /// A Short (linear) instruction issued.
    Short,
    /// The iterative inversion issued.
    Inverse,
    /// Bubble.
    Empty,
}

/// Per-cycle issue trace over a window.
#[derive(Clone, Debug, Default)]
pub struct IssueTrace {
    /// First recorded cycle.
    pub start: u64,
    /// One entry per cycle per slot.
    pub slots: Vec<Vec<SlotKind>>,
}

impl IssueTrace {
    /// Fraction of recorded slots that are bubbles.
    pub fn bubble_fraction(&self) -> f64 {
        let total: usize = self.slots.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let empty: usize = self
            .slots
            .iter()
            .flatten()
            .filter(|s| **s == SlotKind::Empty)
            .count();
        empty as f64 / total as f64
    }

    /// Compact one-character-per-slot rendering (`M` Long, `a` Short,
    /// `I` inverse, `.` bubble), one line per cycle.
    pub fn render(&self) -> String {
        self.slots
            .iter()
            .map(|cycle| {
                cycle
                    .iter()
                    .map(|s| match s {
                        SlotKind::Long => 'M',
                        SlotKind::Short => 'a',
                        SlotKind::Inverse => 'I',
                        SlotKind::Empty => '.',
                    })
                    .collect::<String>()
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Simulation result.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Total cycles until the last write-back completes.
    pub cycles: u64,
    /// Executed operations (non-NOP slots).
    pub instructions: u64,
    /// Issue stalls (cycles where the next word could not issue).
    pub stall_cycles: u64,
    /// Write-back port conflicts encountered (absorbed when the FIFO is
    /// present, stalling otherwise).
    pub wb_conflicts: u64,
    /// Optional issue trace for a cycle window.
    pub trace: Option<IssueTrace>,
}

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

fn kind_of(op: Opcode) -> SlotKind {
    match op {
        Opcode::Mul | Opcode::Sqr | Opcode::Cvt | Opcode::Icv => SlotKind::Long,
        Opcode::Inv => SlotKind::Inverse,
        Opcode::Nop => SlotKind::Empty,
        _ => SlotKind::Short,
    }
}

/// Simulates an instruction stream on a hardware model.
///
/// `trace_window` records the issue pattern for cycles in
/// `[window.0, window.1)`.
pub fn simulate(insts: &[WideInst], hw: &HwModel, trace_window: Option<(u64, u64)>) -> SimReport {
    let mut reg_ready: HashMap<Reg, u64> = HashMap::new();
    let mut wb_taken: HashSet<(u8, u64)> = HashSet::new();
    let mut inv_busy_until = 0u64;
    let mut t = 0u64;
    let mut last_completion = 0u64;
    let mut instructions = 0u64;
    let mut stalls = 0u64;
    let mut wb_conflicts = 0u64;
    let mut trace = trace_window.map(|(s, _)| IssueTrace {
        start: s,
        slots: Vec::new(),
    });

    for wide in insts {
        // Find the earliest cycle >= t at which this word can issue.
        loop {
            let mut ok = true;
            let mut conflict_here = false;
            let mut reads: HashMap<u8, u8> = HashMap::new();
            for slot in &wide.slots {
                if slot.op == Opcode::Nop {
                    continue;
                }
                // Operand readiness.
                let mut srcs: Vec<Reg> = Vec::new();
                match slot.op {
                    Opcode::Icv => {}
                    Opcode::Cvt
                    | Opcode::Neg
                    | Opcode::Dbl
                    | Opcode::Tpl
                    | Opcode::Sqr
                    | Opcode::Inv => srcs.push(slot.src1),
                    Opcode::Add | Opcode::Sub | Opcode::Mul => {
                        srcs.push(slot.src1);
                        srcs.push(slot.src2);
                    }
                    Opcode::Nop => {}
                }
                for s in &srcs {
                    if reg_ready.get(s).copied().unwrap_or(0) > t {
                        ok = false;
                    }
                    let r = reads.entry(s.bank).or_insert(0);
                    *r += 1;
                    if *r > hw.reads_per_bank {
                        ok = false;
                    }
                }
                // Inversion unit is not pipelined.
                if slot.op == Opcode::Inv && t < inv_busy_until {
                    ok = false;
                }
                // Write-back port at completion (CVT writes the I/O
                // interface, not a bank).
                if slot.op != Opcode::Cvt {
                    let lat = hw.latency_of(slot.op) as u64;
                    let key = (slot.dst.bank, t + lat);
                    if wb_taken.contains(&key) {
                        conflict_here = true;
                        if !hw.wb_fifo {
                            ok = false;
                        }
                    }
                }
            }
            if ok {
                if conflict_here {
                    wb_conflicts += 1;
                }
                break;
            }
            if !hw.wb_fifo && conflict_here {
                wb_conflicts += 1;
            }
            // Stall one cycle.
            if let (Some(tr), Some((ws, we))) = (trace.as_mut(), trace_window) {
                if t >= ws && t < we {
                    tr.slots
                        .push(vec![SlotKind::Empty; hw.issue_width as usize]);
                }
            }
            stalls += 1;
            t += 1;
        }

        // Issue at t.
        if let (Some(tr), Some((ws, we))) = (trace.as_mut(), trace_window) {
            if t >= ws && t < we {
                let mut row = Vec::with_capacity(hw.issue_width as usize);
                for i in 0..hw.issue_width as usize {
                    row.push(
                        wide.slots
                            .get(i)
                            .map(|s| kind_of(s.op))
                            .unwrap_or(SlotKind::Empty),
                    );
                }
                tr.slots.push(row);
            }
        }
        for slot in &wide.slots {
            if slot.op == Opcode::Nop {
                continue;
            }
            instructions += 1;
            let lat = hw.latency_of(slot.op) as u64;
            let done = t + lat;
            last_completion = last_completion.max(done);
            if slot.op == Opcode::Inv {
                inv_busy_until = done;
            }
            if slot.op != Opcode::Cvt {
                reg_ready.insert(slot.dst, done);
                if !hw.wb_fifo {
                    wb_taken.insert((slot.dst.bank, done));
                }
            }
        }
        t += 1;
    }

    SimReport {
        cycles: last_completion,
        instructions,
        stall_cycles: stalls,
        wb_conflicts,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_isa::MachineOp;

    fn op(o: Opcode, d: u16, s1: u16, s2: u16) -> MachineOp {
        MachineOp {
            op: o,
            dst: Reg { bank: 0, index: d },
            src1: Reg { bank: 0, index: s1 },
            src2: Reg { bank: 0, index: s2 },
        }
    }

    fn single(ops: Vec<MachineOp>) -> Vec<WideInst> {
        ops.into_iter()
            .map(|o| WideInst { slots: vec![o] })
            .collect()
    }

    #[test]
    fn dependent_chain_stalls_for_latency() {
        let hw = HwModel::paper_default();
        // ICV r0; MUL r1 = r0·r0; MUL r2 = r1·r1 — each MUL waits 38.
        let prog = single(vec![
            op(Opcode::Icv, 0, 0, 0),
            op(Opcode::Mul, 1, 0, 0),
            op(Opcode::Mul, 2, 1, 1),
        ]);
        let r = simulate(&prog, &hw, None);
        // ICV at 0 (done 38), MUL at 38 (done 76), MUL at 76 (done 114).
        assert_eq!(r.cycles, 114);
        assert_eq!(r.instructions, 3);
        assert!(r.stall_cycles > 70);
    }

    #[test]
    fn independent_ops_pipeline_fully() {
        let hw = HwModel::paper_default();
        // One ICV then many independent squarings of r0.
        let mut ops = vec![op(Opcode::Icv, 0, 0, 0)];
        for i in 1..=20 {
            ops.push(op(Opcode::Sqr, i, 0, 0));
        }
        let r = simulate(&single(ops), &hw, None);
        // After the ICV completes at 38, SQRs issue back-to-back.
        assert_eq!(r.cycles, 38 + 20 + 37);
        assert!(r.ipc() > 0.2);
    }

    #[test]
    fn writeback_conflict_stalls_without_fifo() {
        let hw = HwModel::paper_default();
        // MUL at t, Short at t+30 would complete together at t+38 on the
        // same bank (Long 38, Short 8 → collision when issued 30 apart).
        let mut ops = vec![op(Opcode::Icv, 0, 0, 0)];
        ops.push(op(Opcode::Mul, 1, 0, 0)); // issues at 38, done 76
                                            // 29 independent shorts to advance time to 67...
        for i in 0..29 {
            ops.push(op(Opcode::Dbl, 10 + i, 0, 0));
        }
        // This short issues at cycle 68, completing at 76 → conflict.
        ops.push(op(Opcode::Dbl, 60, 0, 0));
        let r1 = simulate(&single(ops.clone()), &hw, None);
        assert!(r1.wb_conflicts > 0, "conflict detected");

        let hw2 = HwModel::paper_default().with_fifo();
        let r2 = simulate(&single(ops), &hw2, None);
        assert!(r2.cycles <= r1.cycles, "fifo absorbs the conflict");
    }

    #[test]
    fn inversion_unit_is_exclusive() {
        let hw = HwModel::paper_default();
        let prog = single(vec![
            op(Opcode::Icv, 0, 0, 0),
            op(Opcode::Inv, 1, 0, 0),
            op(Opcode::Inv, 2, 0, 0),
        ]);
        let r = simulate(&prog, &hw, None);
        // Second INV waits for the first (inv_lat = 560 each).
        assert!(r.cycles >= 38 + 2 * 560);
    }

    #[test]
    fn trace_window_records_issue_pattern() {
        let hw = HwModel::paper_default();
        let mut ops = vec![op(Opcode::Icv, 0, 0, 0)];
        for i in 1..=5 {
            ops.push(op(Opcode::Sqr, i, 0, 0));
        }
        let r = simulate(&single(ops), &hw, Some((0, 50)));
        let tr = r.trace.unwrap();
        // ICV at cycle 0, stalls for cycles 1..=37, SQRs at 38..=42.
        assert_eq!(tr.slots.len(), 43);
        assert!(
            tr.bubble_fraction() > 0.5,
            "leading ICV latency shows as bubbles"
        );
        assert!(tr.render().contains('M'));
    }
}
