//! Operator variants — the algorithm-side axis of the co-design space
//! (paper Table 5, Figures 2 and 10).
//!
//! Each extension level independently chooses its multiplication and
//! squaring decomposition; the cyclotomic squaring used in the final
//! exponentiation is a separate top-level choice. "Disabling Karatsuba at
//! level d" (Figure 2) is simply `mul[d] = Schoolbook`.

use crate::shape::TowerShape;
use std::collections::BTreeMap;
use std::fmt;

/// Multiplication decomposition at one level.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum MulVariant {
    /// Karatsuba: 3 (quadratic) or 6 (cubic) sub-multiplications, extra
    /// linear operations.
    Karatsuba,
    /// Schoolbook: 4 (quadratic) or 9 (cubic) sub-multiplications, fewer
    /// linear operations.
    Schoolbook,
}

/// Squaring decomposition at one level.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SqrVariant {
    /// Quadratic levels: complex squaring (2 sub-multiplications).
    Complex,
    /// Direct expansion (quadratic: 2 squarings + 1 mul; cubic:
    /// 3 squarings + 3 muls).
    Schoolbook,
    /// Lower squaring as a self-multiplication with the level's
    /// [`MulVariant`].
    ViaMul,
    /// Cubic levels: Chung–Hasan SQR2 (6 sub-squarings).
    ChSqr2,
    /// Cubic levels: Chung–Hasan SQR3 (3 squarings + 2 muls).
    ChSqr3,
}

/// Cyclotomic squaring choice for the final exponentiation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CycloVariant {
    /// Granger–Scott squaring over the degree-6 structure (9 F_q
    /// multiplications instead of 18).
    GrangerScott,
    /// Fall back to a plain full squaring.
    PlainSqr,
}

/// A full variant selection: one choice per level plus the cyclotomic
/// choice. This is one point on the algorithmic axis of the design space.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VariantConfig {
    mul: BTreeMap<u8, MulVariant>,
    sqr: BTreeMap<u8, SqrVariant>,
    /// Cyclotomic squaring choice.
    pub cyclo: CycloVariant,
}

impl VariantConfig {
    /// Karatsuba multiplication and the cheapest squarings everywhere
    /// (the "All karat." point of Figure 10).
    pub fn all_karatsuba(shape: &TowerShape) -> Self {
        let mut cfg = VariantConfig {
            mul: BTreeMap::new(),
            sqr: BTreeMap::new(),
            cyclo: CycloVariant::GrangerScott,
        };
        for l in &shape.levels {
            cfg.mul.insert(l.degree, MulVariant::Karatsuba);
            cfg.sqr.insert(
                l.degree,
                if l.arity == 2 {
                    SqrVariant::Complex
                } else {
                    SqrVariant::ChSqr3
                },
            );
        }
        cfg
    }

    /// Schoolbook everywhere (the "All sch." point of Figure 10).
    pub fn all_schoolbook(shape: &TowerShape) -> Self {
        let mut cfg = VariantConfig {
            mul: BTreeMap::new(),
            sqr: BTreeMap::new(),
            cyclo: CycloVariant::PlainSqr,
        };
        for l in &shape.levels {
            cfg.mul.insert(l.degree, MulVariant::Schoolbook);
            cfg.sqr.insert(l.degree, SqrVariant::Schoolbook);
        }
        cfg
    }

    /// A hand-tuned single-issue heuristic (the "Manual" point of
    /// Figure 10): schoolbook at the quadratic base levels — where
    /// Karatsuba's extra linear ops outnumber the multiplications saved on
    /// a single-issue pipeline (§2.2) — Karatsuba above, cheap squarings.
    pub fn manual(shape: &TowerShape) -> Self {
        let mut cfg = Self::all_karatsuba(shape);
        cfg.mul.insert(2, MulVariant::Schoolbook);
        if shape.degrees().contains(&4) {
            cfg.mul.insert(4, MulVariant::Schoolbook);
        }
        cfg
    }

    /// Overrides the multiplication variant at one level.
    pub fn with_mul(mut self, degree: u8, v: MulVariant) -> Self {
        self.mul.insert(degree, v);
        self
    }

    /// Overrides the squaring variant at one level.
    pub fn with_sqr(mut self, degree: u8, v: SqrVariant) -> Self {
        self.sqr.insert(degree, v);
        self
    }

    /// Overrides the cyclotomic variant.
    pub fn with_cyclo(mut self, v: CycloVariant) -> Self {
        self.cyclo = v;
        self
    }

    /// The multiplication variant at a level.
    pub fn mul_at(&self, degree: u8) -> MulVariant {
        *self.mul.get(&degree).unwrap_or(&MulVariant::Karatsuba)
    }

    /// The squaring variant at a level.
    pub fn sqr_at(&self, degree: u8) -> SqrVariant {
        *self.sqr.get(&degree).unwrap_or(&SqrVariant::ViaMul)
    }

    /// Enumerates the multiplication-variant lattice (2^levels points),
    /// with squarings fixed to the per-arity defaults and both cyclotomic
    /// choices — the exhaustive search space of the paper's Figure 10.
    pub fn enumerate_mul_space(shape: &TowerShape) -> Vec<VariantConfig> {
        let degrees = shape.degrees();
        let n = degrees.len();
        let mut out = Vec::new();
        for mask in 0..(1u32 << n) {
            for cyclo in [CycloVariant::GrangerScott, CycloVariant::PlainSqr] {
                let mut cfg = VariantConfig::all_karatsuba(shape).with_cyclo(cyclo);
                for (i, &d) in degrees.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        cfg.mul.insert(d, MulVariant::Schoolbook);
                    }
                }
                out.push(cfg);
            }
        }
        out
    }

    /// Enumerates the full variant space (mul × sqr per level × cyclo);
    /// large — used with sampling or filters.
    pub fn enumerate_full_space(shape: &TowerShape) -> Vec<VariantConfig> {
        let mut out = vec![VariantConfig::all_karatsuba(shape)];
        for l in &shape.levels {
            let muls = [MulVariant::Karatsuba, MulVariant::Schoolbook];
            let sqrs: &[SqrVariant] = if l.arity == 2 {
                &[
                    SqrVariant::Complex,
                    SqrVariant::Schoolbook,
                    SqrVariant::ViaMul,
                ]
            } else {
                &[
                    SqrVariant::ChSqr2,
                    SqrVariant::ChSqr3,
                    SqrVariant::Schoolbook,
                ]
            };
            let mut next = Vec::with_capacity(out.len() * muls.len() * sqrs.len());
            for cfg in &out {
                for &m in &muls {
                    for &s in sqrs {
                        next.push(cfg.clone().with_mul(l.degree, m).with_sqr(l.degree, s));
                    }
                }
            }
            out = next;
        }
        let mut full = Vec::with_capacity(out.len() * 2);
        for cfg in out {
            full.push(cfg.clone().with_cyclo(CycloVariant::GrangerScott));
            full.push(cfg.with_cyclo(CycloVariant::PlainSqr));
        }
        full
    }

    /// A short human-readable tag (for experiment tables).
    pub fn tag(&self) -> String {
        let mut s = String::new();
        for (d, m) in &self.mul {
            s.push_str(&format!(
                "M{}{}",
                d,
                match m {
                    MulVariant::Karatsuba => "k",
                    MulVariant::Schoolbook => "s",
                }
            ));
        }
        s.push_str(match self.cyclo {
            CycloVariant::GrangerScott => "-gs",
            CycloVariant::PlainSqr => "-pl",
        });
        s
    }
}

impl fmt::Display for VariantConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finesse_curves::Curve;

    #[test]
    fn preset_shapes() {
        let c = Curve::by_name("BLS12-381");
        let shape = TowerShape::for_curve(&c);
        let k = VariantConfig::all_karatsuba(&shape);
        assert_eq!(k.mul_at(12), MulVariant::Karatsuba);
        let s = VariantConfig::all_schoolbook(&shape);
        assert_eq!(s.mul_at(2), MulVariant::Schoolbook);
        assert_eq!(s.cyclo, CycloVariant::PlainSqr);
        let m = VariantConfig::manual(&shape);
        assert_eq!(m.mul_at(2), MulVariant::Schoolbook);
        assert_eq!(m.mul_at(12), MulVariant::Karatsuba);
    }

    #[test]
    fn mul_space_size() {
        let c = Curve::by_name("BLS12-381");
        let shape = TowerShape::for_curve(&c);
        // 3 levels → 2³ mul masks × 2 cyclo = 16.
        assert_eq!(VariantConfig::enumerate_mul_space(&shape).len(), 16);
    }

    #[test]
    fn tags_distinguish_configs() {
        let c = Curve::by_name("BLS12-381");
        let shape = TowerShape::for_curve(&c);
        let a = VariantConfig::all_karatsuba(&shape);
        let b = VariantConfig::all_schoolbook(&shape);
        assert_ne!(a.tag(), b.tag());
    }
}
