//! The F_p-level program: fully lowered straight-line SSA whose operations
//! map 1:1 onto the accelerator ISA (`ADD SUB NEG DBL TPL MUL SQR INV`),
//! plus the `Input`/`Const` value sources that become `ICV` conversions
//! and the preloaded constant table in hardware.
//!
//! [`FpProgram::evaluate`] is the arithmetic core of the paper's
//! single-cycle functional simulator: it executes the SSA stream on real
//! Montgomery field elements so compiled programs can be cross-checked
//! against the reference pairing library.

use finesse_ff::{BigUint, Fp, FpCtx};
use std::fmt;
use std::sync::Arc;

/// SSA value id in an [`FpProgram`] (index of defining instruction).
pub type FpId = u32;

/// An F_p-level operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FpOp {
    /// External input (slot index).
    Input(u32),
    /// Constant-table load (table index).
    Const(u32),
    /// Addition.
    Add(FpId, FpId),
    /// Subtraction.
    Sub(FpId, FpId),
    /// Negation.
    Neg(FpId),
    /// Doubling.
    Dbl(FpId),
    /// Tripling.
    Tpl(FpId),
    /// Multiplication.
    Mul(FpId, FpId),
    /// Squaring.
    Sqr(FpId),
    /// Inversion.
    Inv(FpId),
}

/// Pipeline class of an operation (paper §3.3: `mmul` is the Long unit,
/// linear ops are Short units, `minv` is iterative).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OpClass {
    /// Executes on a Short (linear) unit.
    Short,
    /// Executes on the Long (modular multiplier) unit.
    Long,
    /// Executes on the iterative inversion unit.
    Inverse,
    /// No execution resource (register preload / I/O conversion).
    Meta,
}

impl FpOp {
    /// Operand ids read by the op.
    pub fn operands(&self) -> Vec<FpId> {
        match *self {
            FpOp::Input(_) | FpOp::Const(_) => Vec::new(),
            FpOp::Add(a, b) | FpOp::Sub(a, b) | FpOp::Mul(a, b) => vec![a, b],
            FpOp::Neg(a) | FpOp::Dbl(a) | FpOp::Tpl(a) | FpOp::Sqr(a) | FpOp::Inv(a) => vec![a],
        }
    }

    /// Rewrites operand ids through a mapping (pass plumbing).
    pub fn map_operands(&self, f: impl Fn(FpId) -> FpId) -> FpOp {
        match *self {
            FpOp::Input(s) => FpOp::Input(s),
            FpOp::Const(c) => FpOp::Const(c),
            FpOp::Add(a, b) => FpOp::Add(f(a), f(b)),
            FpOp::Sub(a, b) => FpOp::Sub(f(a), f(b)),
            FpOp::Neg(a) => FpOp::Neg(f(a)),
            FpOp::Dbl(a) => FpOp::Dbl(f(a)),
            FpOp::Tpl(a) => FpOp::Tpl(f(a)),
            FpOp::Mul(a, b) => FpOp::Mul(f(a), f(b)),
            FpOp::Sqr(a) => FpOp::Sqr(f(a)),
            FpOp::Inv(a) => FpOp::Inv(f(a)),
        }
    }

    /// The pipeline class.
    pub fn class(&self) -> OpClass {
        match self {
            FpOp::Input(_) | FpOp::Const(_) => OpClass::Meta,
            FpOp::Add(..) | FpOp::Sub(..) | FpOp::Neg(_) | FpOp::Dbl(_) | FpOp::Tpl(_) => {
                OpClass::Short
            }
            FpOp::Mul(..) | FpOp::Sqr(_) => OpClass::Long,
            FpOp::Inv(_) => OpClass::Inverse,
        }
    }
}

/// Instruction-count statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FpStats {
    /// Multiplications.
    pub mul: usize,
    /// Squarings.
    pub sqr: usize,
    /// Linear ops (add/sub/neg/dbl/tpl).
    pub linear: usize,
    /// Inversions.
    pub inv: usize,
    /// Meta ops (inputs + constant loads).
    pub meta: usize,
}

impl FpStats {
    /// Total executable (non-meta) instructions.
    pub fn executable(&self) -> usize {
        self.mul + self.sqr + self.linear + self.inv
    }
}

impl fmt::Display for FpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instr (M {}, S {}, lin {}, inv {})",
            self.executable(),
            self.mul,
            self.sqr,
            self.linear,
            self.inv
        )
    }
}

/// A fully lowered F_p-level SSA program.
#[derive(Clone, Debug, Default)]
pub struct FpProgram {
    /// Instructions; id `i` is defined by `insts[i]`.
    pub insts: Vec<FpOp>,
    /// Input slot names (flattened coordinates, e.g. `"P.x"`, `"Q.x[1]"`).
    pub inputs: Vec<String>,
    /// Constant table (canonical values).
    pub constants: Vec<BigUint>,
    /// Output value ids.
    pub outputs: Vec<FpId>,
}

impl FpProgram {
    /// Appends an instruction.
    pub fn push(&mut self, op: FpOp) -> FpId {
        let id = self.insts.len() as FpId;
        self.insts.push(op);
        id
    }

    /// Instruction-count statistics.
    pub fn stats(&self) -> FpStats {
        let mut s = FpStats::default();
        for op in &self.insts {
            match op.class() {
                OpClass::Long => {
                    if matches!(op, FpOp::Sqr(_)) {
                        s.sqr += 1;
                    } else {
                        s.mul += 1;
                    }
                }
                OpClass::Short => s.linear += 1,
                OpClass::Inverse => s.inv += 1,
                OpClass::Meta => s.meta += 1,
            }
        }
        s
    }

    /// Validates SSA ordering and slot references.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed instruction.
    pub fn validate(&self) -> Result<(), String> {
        for (i, op) in self.insts.iter().enumerate() {
            for o in op.operands() {
                if o as usize >= i {
                    return Err(format!("instruction {i} uses undefined value %{o}"));
                }
            }
            match op {
                FpOp::Input(s) if *s as usize >= self.inputs.len() => {
                    return Err(format!("instruction {i}: bad input slot {s}"));
                }
                FpOp::Const(c) if *c as usize >= self.constants.len() => {
                    return Err(format!("instruction {i}: bad constant index {c}"));
                }
                _ => {}
            }
        }
        for o in &self.outputs {
            if *o as usize >= self.insts.len() {
                return Err(format!("output references undefined value %{o}"));
            }
        }
        Ok(())
    }

    /// Executes the program on concrete field elements (the functional
    /// simulator's arithmetic core).
    ///
    /// # Panics
    ///
    /// Panics if the program is malformed or `inputs` has the wrong
    /// length; run [`FpProgram::validate`] first for a graceful error.
    pub fn evaluate(&self, ctx: &Arc<FpCtx>, inputs: &[Fp]) -> Vec<Fp> {
        assert_eq!(inputs.len(), self.inputs.len(), "input count mismatch");
        let consts: Vec<Fp> = self.constants.iter().map(|c| ctx.from_biguint(c)).collect();
        let mut vals: Vec<Fp> = Vec::with_capacity(self.insts.len());
        for op in &self.insts {
            let v = match *op {
                FpOp::Input(s) => inputs[s as usize].clone(),
                FpOp::Const(c) => consts[c as usize].clone(),
                FpOp::Add(a, b) => &vals[a as usize] + &vals[b as usize],
                FpOp::Sub(a, b) => &vals[a as usize] - &vals[b as usize],
                FpOp::Neg(a) => -&vals[a as usize],
                FpOp::Dbl(a) => vals[a as usize].double(),
                FpOp::Tpl(a) => vals[a as usize].triple(),
                FpOp::Mul(a, b) => &vals[a as usize] * &vals[b as usize],
                FpOp::Sqr(a) => vals[a as usize].square(),
                FpOp::Inv(a) => vals[a as usize].invert(),
            };
            vals.push(v);
        }
        self.outputs
            .iter()
            .map(|&o| vals[o as usize].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Arc<FpCtx> {
        FpCtx::new(BigUint::from_u64(1_000_000_007)).unwrap()
    }

    #[test]
    fn evaluate_small_program() {
        // out = (a + b)² − a·b
        let mut p = FpProgram {
            inputs: vec!["a".into(), "b".into()],
            ..Default::default()
        };
        let a = p.push(FpOp::Input(0));
        let b = p.push(FpOp::Input(1));
        let s = p.push(FpOp::Add(a, b));
        let sq = p.push(FpOp::Sqr(s));
        let ab = p.push(FpOp::Mul(a, b));
        let out = p.push(FpOp::Sub(sq, ab));
        p.outputs.push(out);
        assert!(p.validate().is_ok());
        let c = ctx();
        let r = p.evaluate(&c, &[c.from_u64(3), c.from_u64(5)]);
        assert_eq!(r[0], c.from_u64(49)); // 64 − 15
        let st = p.stats();
        assert_eq!((st.mul, st.sqr, st.linear, st.meta), (1, 1, 2, 2));
    }

    #[test]
    fn validate_catches_use_before_def() {
        let mut p = FpProgram::default();
        p.push(FpOp::Add(5, 6));
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_slots() {
        let mut p = FpProgram::default();
        p.push(FpOp::Input(3));
        assert!(p.validate().is_err());
    }
}
