//! Variant-driven lowering: hierarchical IR → F_p-level SSA.
//!
//! This is the `map_lowering` of the paper's Figure 4, implemented as a
//! recursive expander over the tower lattice. Every op at level d expands
//! into ops at the parent level according to the selected
//! [`VariantConfig`] (Karatsuba vs schoolbook multiplication, complex vs
//! Chung–Hasan squarings, Granger–Scott vs plain cyclotomic squaring),
//! bottoming out at F_p instructions that map 1:1 onto the ISA.
//!
//! Multiplications by non-residues strength-reduce according to their
//! [`NonresForm`] (e.g. ξ = 1 + u costs one add and one sub), Frobenius
//! maps lower to conjugations and small constant tables, and the
//! structural `pack` op disappears entirely — the "zero-cost abstraction"
//! property of §3.2.

use crate::fpir::{FpId, FpOp, FpProgram};
use crate::hir::{HirOp, HirProgram};
use crate::shape::{LevelDesc, NonresForm, TowerShape, MAX_FROB};
use crate::variants::{CycloVariant, MulVariant, SqrVariant, VariantConfig};
use finesse_ff::BigUint;
use std::collections::HashMap;

/// Lowers a hierarchical program to F_p-level SSA under a variant
/// selection.
///
/// # Errors
///
/// Returns a message if the input program is malformed or uses an op at a
/// level where it is undefined (e.g. `conj` on a cubic-arity level).
pub fn lower(
    hir: &HirProgram,
    shape: &TowerShape,
    cfg: &VariantConfig,
) -> Result<FpProgram, String> {
    hir.validate().map_err(|e| e.to_string())?;
    let mut ex = Expander {
        shape,
        cfg,
        prog: FpProgram::default(),
        const_cache: HashMap::new(),
        input_cache: HashMap::new(),
    };

    // Flatten declared inputs into per-coordinate slots.
    let mut flat_slot = Vec::new();
    for input in &hir.inputs {
        let start = ex.prog.inputs.len() as u32;
        if input.level == 1 {
            ex.prog.inputs.push(input.name.clone());
        } else {
            for i in 0..input.level {
                ex.prog.inputs.push(format!("{}[{}]", input.name, i));
            }
        }
        flat_slot.push((start, input.level as u32));
    }

    let mut map: Vec<Vec<FpId>> = Vec::with_capacity(hir.insts.len());
    for inst in &hir.insts {
        let d = inst.level;
        let val = match &inst.op {
            HirOp::Input { slot } => {
                let (start, len) = flat_slot[*slot as usize];
                (start..start + len).map(|s| ex.input(s)).collect()
            }
            HirOp::Const { idx } => {
                let c = &hir.constants[*idx as usize];
                c.coeffs.iter().map(|v| ex.konst(v)).collect()
            }
            HirOp::Pack { parts } => {
                // w-power order → internal (even ‖ odd) order.
                let p: Vec<&Vec<FpId>> = parts.iter().map(|v| &map[v.0 as usize]).collect();
                let mut out = Vec::with_capacity(d as usize);
                for m in [0usize, 2, 4, 1, 3, 5] {
                    out.extend_from_slice(p[m]);
                }
                out
            }
            HirOp::Add(a, b) => ex.add(&map[a.0 as usize].clone(), &map[b.0 as usize].clone()),
            HirOp::Sub(a, b) => ex.sub(&map[a.0 as usize].clone(), &map[b.0 as usize].clone()),
            HirOp::Neg(a) => ex.neg(&map[a.0 as usize].clone()),
            HirOp::MulI(a, k) => ex.muli(&map[a.0 as usize].clone(), *k),
            HirOp::Mul(a, b) => {
                let av = map[a.0 as usize].clone();
                let bv = map[b.0 as usize].clone();
                if av.len() == bv.len() {
                    ex.mul(d, &av, &bv)
                } else {
                    let (big, small) = if av.len() > bv.len() {
                        (av, bv)
                    } else {
                        (bv, av)
                    };
                    if small.len() != 1 {
                        return Err(format!(
                            "mixed-level mul only supports an F_p scalar (got {} × {})",
                            big.len(),
                            small.len()
                        ));
                    }
                    big.iter()
                        .map(|&x| ex.emit(FpOp::Mul(x, small[0])))
                        .collect()
                }
            }
            HirOp::MulSparse { a, parts } => {
                let av = map[a.0 as usize].clone();
                let pv: Vec<Option<Vec<FpId>>> = parts
                    .iter()
                    .map(|p| p.map(|v| map[v.0 as usize].clone()))
                    .collect();
                ex.mul_sparse(d, &av, &pv)
            }
            HirOp::Sqr(a) => ex.sqr(d, &map[a.0 as usize].clone()),
            HirOp::CycloSqr(a) => ex.cyclo_sqr(d, &map[a.0 as usize].clone())?,
            HirOp::Adj(a) => ex.adj(d, &map[a.0 as usize].clone()),
            HirOp::Conj(a) => ex.conj(d, &map[a.0 as usize].clone())?,
            HirOp::Frob(a, j) => {
                if *j as usize > MAX_FROB {
                    return Err(format!("frobenius power {j} exceeds constant tables"));
                }
                ex.frob(d, &map[a.0 as usize].clone(), *j as usize)
            }
            HirOp::Inv(a) => ex.inv(d, &map[a.0 as usize].clone()),
        };
        debug_assert_eq!(val.len(), d as usize, "lowered width matches level");
        map.push(val);
    }

    for out in &hir.outputs {
        let flat = &map[out.0 as usize];
        ex.prog.outputs.extend_from_slice(flat);
    }
    debug_assert!(ex.prog.validate().is_ok());
    Ok(ex.prog)
}

struct Expander<'a> {
    shape: &'a TowerShape,
    cfg: &'a VariantConfig,
    prog: FpProgram,
    const_cache: HashMap<BigUint, FpId>,
    input_cache: HashMap<u32, FpId>,
}

impl Expander<'_> {
    fn emit(&mut self, op: FpOp) -> FpId {
        self.prog.push(op)
    }

    fn input(&mut self, slot: u32) -> FpId {
        if let Some(&id) = self.input_cache.get(&slot) {
            return id;
        }
        let id = self.emit(FpOp::Input(slot));
        self.input_cache.insert(slot, id);
        id
    }

    fn konst(&mut self, v: &BigUint) -> FpId {
        if let Some(&id) = self.const_cache.get(v) {
            return id;
        }
        let idx = self.prog.constants.len() as u32;
        self.prog.constants.push(v.clone());
        let id = self.emit(FpOp::Const(idx));
        self.const_cache.insert(v.clone(), id);
        id
    }

    fn zero(&mut self) -> FpId {
        self.konst(&BigUint::zero())
    }

    // -- componentwise linear helpers -----------------------------------

    fn add(&mut self, a: &[FpId], b: &[FpId]) -> Vec<FpId> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.emit(FpOp::Add(x, y)))
            .collect()
    }

    fn sub(&mut self, a: &[FpId], b: &[FpId]) -> Vec<FpId> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.emit(FpOp::Sub(x, y)))
            .collect()
    }

    fn neg(&mut self, a: &[FpId]) -> Vec<FpId> {
        a.iter().map(|&x| self.emit(FpOp::Neg(x))).collect()
    }

    fn muli_fp(&mut self, a: FpId, k: u64) -> FpId {
        match k {
            0 => self.zero(),
            1 => a,
            2 => self.emit(FpOp::Dbl(a)),
            3 => self.emit(FpOp::Tpl(a)),
            _ => {
                if k.is_multiple_of(2) {
                    let h = self.muli_fp(a, k / 2);
                    self.emit(FpOp::Dbl(h))
                } else if k.is_multiple_of(3) {
                    let t = self.muli_fp(a, k / 3);
                    self.emit(FpOp::Tpl(t))
                } else {
                    let m = self.muli_fp(a, k - 1);
                    self.emit(FpOp::Add(m, a))
                }
            }
        }
    }

    fn muli(&mut self, a: &[FpId], k: u64) -> Vec<FpId> {
        a.iter().map(|&x| self.muli_fp(x, k)).collect()
    }

    fn muli_signed(&mut self, a: &[FpId], c: i64) -> Vec<FpId> {
        let m = self.muli(a, c.unsigned_abs());
        if c < 0 {
            self.neg(&m)
        } else {
            m
        }
    }

    // -- non-residue multiplication (the `B`/adjunction cost) ------------

    /// Multiplies a parent-level value by `level`'s non-residue.
    fn mul_nonres(&mut self, level: &LevelDesc, x: &[FpId]) -> Vec<FpId> {
        debug_assert_eq!(x.len(), level.parent as usize);
        match &level.nonres {
            NonresForm::SmallFp(c) => {
                if *c == -1 {
                    self.neg(x)
                } else {
                    self.muli_signed(x, *c)
                }
            }
            NonresForm::SimpleQuad { c0, c1 } => {
                // Parent is a quadratic level with generator u:
                // (x0 + x1·u)(c0 + c1·u) = (c0·x0 + c1·β·x1) + (c1·x0 + c0·x1)·u
                let lp = self.shape.level(level.parent);
                debug_assert_eq!(lp.arity, 2);
                let gp = lp.parent as usize;
                let (x0, x1) = x.split_at(gp);
                let (x0, x1) = (x0.to_vec(), x1.to_vec());
                let bx1 = self.mul_nonres(lp, &x1);
                let t0 = self.muli_signed(&x0, *c0);
                let t1 = self.muli_signed(&bx1, *c1);
                let r0 = self.add(&t0, &t1);
                let t2 = self.muli_signed(&x0, *c1);
                let t3 = self.muli_signed(&x1, *c0);
                let r1 = self.add(&t2, &t3);
                [r0, r1].concat()
            }
            NonresForm::ParentGenerator => {
                // Multiply by the parent's adjoined generator = parent adj.
                self.adj(level.parent, x)
            }
            NonresForm::Generic(coeffs) => {
                let c: Vec<FpId> = coeffs.iter().map(|v| self.konst(v)).collect();
                self.mul(level.parent, x, &c)
            }
        }
    }

    /// Multiplies a level-d value by its own adjoined generator.
    fn adj(&mut self, d: u8, a: &[FpId]) -> Vec<FpId> {
        if d == 1 {
            // F_p has no adjunction; treated as identity (defensive).
            return a.to_vec();
        }
        let ld = self.shape.level(d);
        let dp = ld.parent as usize;
        match ld.arity {
            2 => {
                let (a0, a1) = a.split_at(dp);
                let (a0, a1) = (a0.to_vec(), a1.to_vec());
                let r0 = self.mul_nonres(ld, &a1);
                [r0, a0].concat()
            }
            3 => {
                let (a0, rest) = a.split_at(dp);
                let (a1, a2) = rest.split_at(dp);
                let (a0, a1, a2) = (a0.to_vec(), a1.to_vec(), a2.to_vec());
                let r0 = self.mul_nonres(ld, &a2);
                [r0, a0, a1].concat()
            }
            _ => unreachable!("arity is 2 or 3"),
        }
    }

    // -- multiplication ---------------------------------------------------

    fn mul(&mut self, d: u8, a: &[FpId], b: &[FpId]) -> Vec<FpId> {
        if d == 1 {
            return vec![self.emit(FpOp::Mul(a[0], b[0]))];
        }
        let ld = self.shape.level(d).clone();
        let dp = ld.parent;
        match ld.arity {
            2 => {
                let (a0, a1) = split2(a);
                let (b0, b1) = split2(b);
                match self.cfg.mul_at(d) {
                    MulVariant::Karatsuba => {
                        let v0 = self.mul(dp, &a0, &b0);
                        let v1 = self.mul(dp, &a1, &b1);
                        let sa = self.add(&a0, &a1);
                        let sb = self.add(&b0, &b1);
                        let m = self.mul(dp, &sa, &sb);
                        let t = self.sub(&m, &v0);
                        let cross = self.sub(&t, &v1);
                        let nr = self.mul_nonres(&ld, &v1);
                        let c0 = self.add(&v0, &nr);
                        [c0, cross].concat()
                    }
                    MulVariant::Schoolbook => {
                        let v0 = self.mul(dp, &a0, &b0);
                        let v1 = self.mul(dp, &a1, &b1);
                        let nr = self.mul_nonres(&ld, &v1);
                        let c0 = self.add(&v0, &nr);
                        let m01 = self.mul(dp, &a0, &b1);
                        let m10 = self.mul(dp, &a1, &b0);
                        let c1 = self.add(&m01, &m10);
                        [c0, c1].concat()
                    }
                }
            }
            3 => {
                let (a0, a1, a2) = split3(a);
                let (b0, b1, b2) = split3(b);
                match self.cfg.mul_at(d) {
                    MulVariant::Karatsuba => {
                        let v0 = self.mul(dp, &a0, &b0);
                        let v1 = self.mul(dp, &a1, &b1);
                        let v2 = self.mul(dp, &a2, &b2);
                        let t01 = {
                            let sa = self.add(&a0, &a1);
                            let sb = self.add(&b0, &b1);
                            let m = self.mul(dp, &sa, &sb);
                            let s = self.add(&v0, &v1);
                            self.sub(&m, &s)
                        };
                        let t02 = {
                            let sa = self.add(&a0, &a2);
                            let sb = self.add(&b0, &b2);
                            let m = self.mul(dp, &sa, &sb);
                            let s = self.add(&v0, &v2);
                            self.sub(&m, &s)
                        };
                        let t12 = {
                            let sa = self.add(&a1, &a2);
                            let sb = self.add(&b1, &b2);
                            let m = self.mul(dp, &sa, &sb);
                            let s = self.add(&v1, &v2);
                            self.sub(&m, &s)
                        };
                        let n12 = self.mul_nonres(&ld, &t12);
                        let c0 = self.add(&v0, &n12);
                        let nv2 = self.mul_nonres(&ld, &v2);
                        let c1 = self.add(&t01, &nv2);
                        let c2 = self.add(&t02, &v1);
                        [c0, c1, c2].concat()
                    }
                    MulVariant::Schoolbook => {
                        let m00 = self.mul(dp, &a0, &b0);
                        let m01 = self.mul(dp, &a0, &b1);
                        let m02 = self.mul(dp, &a0, &b2);
                        let m10 = self.mul(dp, &a1, &b0);
                        let m11 = self.mul(dp, &a1, &b1);
                        let m12 = self.mul(dp, &a1, &b2);
                        let m20 = self.mul(dp, &a2, &b0);
                        let m21 = self.mul(dp, &a2, &b1);
                        let m22 = self.mul(dp, &a2, &b2);
                        let s12 = self.add(&m12, &m21);
                        let n12 = self.mul_nonres(&ld, &s12);
                        let c0 = self.add(&m00, &n12);
                        let n22 = self.mul_nonres(&ld, &m22);
                        let s01 = self.add(&m01, &m10);
                        let c1 = self.add(&s01, &n22);
                        let s02 = self.add(&m02, &m20);
                        let c2 = self.add(&s02, &m11);
                        [c0, c1, c2].concat()
                    }
                }
            }
            _ => unreachable!("arity is 2 or 3"),
        }
    }

    // -- sparse line multiplication (§4.3) --------------------------------

    /// Multiplies a dense level-d value by a sparse one given as optional
    /// `w`-power coefficients of width d/6.
    ///
    /// For the two Miller-line sparsity patterns (D-twist `c0,c1,_,c3,_,_`
    /// and M-twist `c0,_,c2,c3,_,_`) this emits the dedicated 13-mul
    /// schedule mirrored from `TowerCtx::fpk_mul_sparse`; any other pattern
    /// densifies with structural zeros and multiplies normally.
    fn mul_sparse(&mut self, d: u8, a: &[FpId], parts: &[Option<Vec<FpId>>]) -> Vec<FpId> {
        let qd = d / 6;
        let qw = qd as usize;
        let ld = self.shape.level(d).clone();
        let fast = d == self.shape.k
            && ld.arity == 2
            && ld.parent == 3 * qd
            && self.shape.level(3 * qd).arity == 3;
        let present: Vec<bool> = parts.iter().map(|p| p.is_some()).collect();
        if fast && present == [true, true, false, true, false, false] {
            // D-twist line c0 + c1·w + c3·w³: even = (c0,0,0), odd = (c1,c3,0).
            let cubic = self.shape.level(3 * qd).clone();
            let (c0, c1, c3) = (
                parts[0].clone().expect("c0"),
                parts[1].clone().expect("c1"),
                parts[3].clone().expect("c3"),
            );
            let (a0, a1) = split2(a);
            let t0 = self.c_mul_sparse0(qd, &a0, &c0);
            let t1 = self.c_mul_sparse01(qd, &cubic, &a1, &c1, &c3);
            let sum_a = self.add(&a0, &a1);
            let l0 = self.add(&c0, &c1);
            let m = self.c_mul_sparse01(qd, &cubic, &sum_a, &l0, &c3);
            let t01 = self.add(&t0, &t1);
            let cross = self.sub(&m, &t01);
            let s_t1 = self.adj(3 * qd, &t1);
            let even = self.add(&t0, &s_t1);
            [even, cross].concat()
        } else if fast && present == [true, false, true, true, false, false] {
            // M-twist line c0 + c2·w² + c3·w³: even = (c0,c2,0), odd = (0,c3,0).
            let cubic = self.shape.level(3 * qd).clone();
            let (c0, c2, c3) = (
                parts[0].clone().expect("c0"),
                parts[2].clone().expect("c2"),
                parts[3].clone().expect("c3"),
            );
            let (a0, a1) = split2(a);
            let t0 = self.c_mul_sparse01(qd, &cubic, &a0, &c0, &c2);
            let t1 = self.c_mul_sparse1(qd, &cubic, &a1, &c3);
            let sum_a = self.add(&a0, &a1);
            let l1 = self.add(&c2, &c3);
            let m = self.c_mul_sparse01(qd, &cubic, &sum_a, &c0, &l1);
            let t01 = self.add(&t0, &t1);
            let cross = self.sub(&m, &t01);
            let s_t1 = self.adj(3 * qd, &t1);
            let even = self.add(&t0, &s_t1);
            [even, cross].concat()
        } else {
            // Densify: w-power order → internal (even ‖ odd) order, then a
            // dense top-level multiplication.
            let mut flat: Vec<Vec<FpId>> = Vec::with_capacity(6);
            for p in parts {
                flat.push(match p {
                    Some(v) => v.clone(),
                    None => (0..qw).map(|_| self.zero()).collect(),
                });
            }
            let mut b = Vec::with_capacity(d as usize);
            for m in [0usize, 2, 4, 1, 3, 5] {
                b.extend_from_slice(&flat[m]);
            }
            self.mul(d, a, &b)
        }
    }

    /// `a · (b0, 0, 0)` at the cubic level: 3 width-q multiplications.
    fn c_mul_sparse0(&mut self, qd: u8, a: &[FpId], b0: &[FpId]) -> Vec<FpId> {
        let (a0, a1, a2) = split3(a);
        let r0 = self.mul(qd, &a0, b0);
        let r1 = self.mul(qd, &a1, b0);
        let r2 = self.mul(qd, &a2, b0);
        [r0, r1, r2].concat()
    }

    /// `a · (0, b1, 0)` at the cubic level: 3 width-q multiplications
    /// plus one ξ reduction.
    fn c_mul_sparse1(&mut self, qd: u8, cubic: &LevelDesc, a: &[FpId], b1: &[FpId]) -> Vec<FpId> {
        let (a0, a1, a2) = split3(a);
        let m2 = self.mul(qd, &a2, b1);
        let r0 = self.mul_nonres(cubic, &m2);
        let r1 = self.mul(qd, &a0, b1);
        let r2 = self.mul(qd, &a1, b1);
        [r0, r1, r2].concat()
    }

    /// `a · (b0, b1, 0)` at the cubic level: 5 width-q multiplications
    /// (Karatsuba on the 0/1 pair).
    fn c_mul_sparse01(
        &mut self,
        qd: u8,
        cubic: &LevelDesc,
        a: &[FpId],
        b0: &[FpId],
        b1: &[FpId],
    ) -> Vec<FpId> {
        let (a0, a1, a2) = split3(a);
        let v0 = self.mul(qd, &a0, b0);
        let v1 = self.mul(qd, &a1, b1);
        let sa = self.add(&a0, &a1);
        let sb = self.add(b0, b1);
        let m = self.mul(qd, &sa, &sb);
        let t = self.sub(&m, &v0);
        let t01 = self.sub(&t, &v1);
        let t12 = self.mul(qd, &a2, b1);
        let t02 = self.mul(qd, &a2, b0);
        let n12 = self.mul_nonres(cubic, &t12);
        let c0 = self.add(&v0, &n12);
        let c2 = self.add(&t02, &v1);
        [c0, t01, c2].concat()
    }

    // -- squaring ----------------------------------------------------------

    fn sqr(&mut self, d: u8, a: &[FpId]) -> Vec<FpId> {
        if d == 1 {
            return vec![self.emit(FpOp::Sqr(a[0]))];
        }
        let ld = self.shape.level(d).clone();
        let dp = ld.parent;
        let variant = self.cfg.sqr_at(d);
        if variant == SqrVariant::ViaMul {
            return self.mul(d, a, a);
        }
        match ld.arity {
            2 => {
                let (a0, a1) = split2(a);
                match variant {
                    SqrVariant::Complex => {
                        // (a0+a1u)² = (a0+a1)(a0+βa1) − v − βv + 2v·u,
                        // v = a0·a1.
                        let v = self.mul(dp, &a0, &a1);
                        let s1 = self.add(&a0, &a1);
                        let nb = self.mul_nonres(&ld, &a1);
                        let s2 = self.add(&a0, &nb);
                        let t = self.mul(dp, &s1, &s2);
                        let nv = self.mul_nonres(&ld, &v);
                        let u = self.sub(&t, &v);
                        let c0 = self.sub(&u, &nv);
                        let c1 = self.muli(&v, 2);
                        [c0, c1].concat()
                    }
                    _ => {
                        // Schoolbook: a0² + β·a1² ; 2·a0·a1.
                        let s0 = self.sqr(dp, &a0);
                        let s1 = self.sqr(dp, &a1);
                        let nb = self.mul_nonres(&ld, &s1);
                        let c0 = self.add(&s0, &nb);
                        let m = self.mul(dp, &a0, &a1);
                        let c1 = self.muli(&m, 2);
                        [c0, c1].concat()
                    }
                }
            }
            3 => {
                let (a0, a1, a2) = split3(a);
                match variant {
                    SqrVariant::ChSqr3 => {
                        // 3S + 2M (Chung–Hasan SQR3).
                        let s0 = self.sqr(dp, &a0);
                        let m01 = self.mul(dp, &a0, &a1);
                        let s1 = self.muli(&m01, 2);
                        let t = {
                            let u = self.sub(&a0, &a1);
                            self.add(&u, &a2)
                        };
                        let s2 = self.sqr(dp, &t);
                        let m12 = self.mul(dp, &a1, &a2);
                        let s3 = self.muli(&m12, 2);
                        let s4 = self.sqr(dp, &a2);
                        // c2 = s1 + s3 + s2 − s0 − s4
                        let t1 = self.add(&s1, &s3);
                        let t2 = self.add(&t1, &s2);
                        let t3 = self.sub(&t2, &s0);
                        let c2 = self.sub(&t3, &s4);
                        let n3 = self.mul_nonres(&ld, &s3);
                        let c0 = self.add(&s0, &n3);
                        let n4 = self.mul_nonres(&ld, &s4);
                        let c1 = self.add(&s1, &n4);
                        [c0, c1, c2].concat()
                    }
                    SqrVariant::ChSqr2 => {
                        // Symmetric 6-squaring form (Chung–Hasan SQR2
                        // family): pairwise sums squared.
                        let v0 = self.sqr(dp, &a0);
                        let v1 = self.sqr(dp, &a1);
                        let v2 = self.sqr(dp, &a2);
                        let t01 = {
                            let s = self.add(&a0, &a1);
                            let sq = self.sqr(dp, &s);
                            let u = self.add(&v0, &v1);
                            self.sub(&sq, &u)
                        };
                        let t02 = {
                            let s = self.add(&a0, &a2);
                            let sq = self.sqr(dp, &s);
                            let u = self.add(&v0, &v2);
                            self.sub(&sq, &u)
                        };
                        let t12 = {
                            let s = self.add(&a1, &a2);
                            let sq = self.sqr(dp, &s);
                            let u = self.add(&v1, &v2);
                            self.sub(&sq, &u)
                        };
                        let n12 = self.mul_nonres(&ld, &t12);
                        let c0 = self.add(&v0, &n12);
                        let nv2 = self.mul_nonres(&ld, &v2);
                        let c1 = self.add(&t01, &nv2);
                        let c2 = self.add(&t02, &v1);
                        [c0, c1, c2].concat()
                    }
                    _ => {
                        // Schoolbook: 3S + 3M.
                        let s0 = self.sqr(dp, &a0);
                        let s1 = self.sqr(dp, &a1);
                        let s2 = self.sqr(dp, &a2);
                        let m12 = self.mul(dp, &a1, &a2);
                        let d12 = self.muli(&m12, 2);
                        let n12 = self.mul_nonres(&ld, &d12);
                        let c0 = self.add(&s0, &n12);
                        let m01 = self.mul(dp, &a0, &a1);
                        let d01 = self.muli(&m01, 2);
                        let n22 = self.mul_nonres(&ld, &s2);
                        let c1 = self.add(&d01, &n22);
                        let m02 = self.mul(dp, &a0, &a2);
                        let d02 = self.muli(&m02, 2);
                        let c2 = self.add(&s1, &d02);
                        [c0, c1, c2].concat()
                    }
                }
            }
            _ => unreachable!("arity is 2 or 3"),
        }
    }

    // -- conjugation / frobenius / inversion -------------------------------

    fn conj(&mut self, d: u8, a: &[FpId]) -> Result<Vec<FpId>, String> {
        if d == 1 {
            return Ok(a.to_vec());
        }
        let ld = self.shape.level(d);
        if ld.arity != 2 {
            return Err("conj is defined only at quadratic-arity levels".into());
        }
        let dp = ld.parent as usize;
        let (a0, a1) = a.split_at(dp);
        let a1 = a1.to_vec();
        let n = self.neg(&a1);
        Ok([a0.to_vec(), n].concat())
    }

    fn frob(&mut self, d: u8, a: &[FpId], j: usize) -> Vec<FpId> {
        if d == 1 || j == 0 {
            return a.to_vec();
        }
        let ld = self.shape.level(d).clone();
        let dp = ld.parent;
        match ld.arity {
            2 => {
                let (a0, a1) = split2(a);
                let r0 = self.frob(dp, &a0, j);
                let f1 = self.frob(dp, &a1, j);
                let c: Vec<FpId> = ld.frob[j].clone().iter().map(|v| self.konst(v)).collect();
                let r1 = self.mul(dp, &f1, &c);
                [r0, r1].concat()
            }
            3 => {
                let (a0, a1, a2) = split3(a);
                let r0 = self.frob(dp, &a0, j);
                let f1 = self.frob(dp, &a1, j);
                let c1: Vec<FpId> = ld.frob[j].clone().iter().map(|v| self.konst(v)).collect();
                let r1 = self.mul(dp, &f1, &c1);
                let f2 = self.frob(dp, &a2, j);
                let c2: Vec<FpId> = ld.frob_sq[j]
                    .clone()
                    .iter()
                    .map(|v| self.konst(v))
                    .collect();
                let r2 = self.mul(dp, &f2, &c2);
                [r0, r1, r2].concat()
            }
            _ => unreachable!("arity is 2 or 3"),
        }
    }

    fn inv(&mut self, d: u8, a: &[FpId]) -> Vec<FpId> {
        if d == 1 {
            return vec![self.emit(FpOp::Inv(a[0]))];
        }
        let ld = self.shape.level(d).clone();
        let dp = ld.parent;
        match ld.arity {
            2 => {
                let (a0, a1) = split2(a);
                let s0 = self.sqr(dp, &a0);
                let s1 = self.sqr(dp, &a1);
                let ns1 = self.mul_nonres(&ld, &s1);
                let norm = self.sub(&s0, &ns1);
                let i = self.inv(dp, &norm);
                let r0 = self.mul(dp, &a0, &i);
                let m1 = self.mul(dp, &a1, &i);
                let r1 = self.neg(&m1);
                [r0, r1].concat()
            }
            3 => {
                let (a0, a1, a2) = split3(a);
                // Adjugate inversion.
                let m12 = self.mul(dp, &a1, &a2);
                let nm12 = self.mul_nonres(&ld, &m12);
                let s0 = self.sqr(dp, &a0);
                let c0 = self.sub(&s0, &nm12);
                let s2 = self.sqr(dp, &a2);
                let ns2 = self.mul_nonres(&ld, &s2);
                let m01 = self.mul(dp, &a0, &a1);
                let c1 = self.sub(&ns2, &m01);
                let s1 = self.sqr(dp, &a1);
                let m02 = self.mul(dp, &a0, &a2);
                let c2 = self.sub(&s1, &m02);
                let t0 = self.mul(dp, &a0, &c0);
                let t1 = self.mul(dp, &a2, &c1);
                let t2 = self.mul(dp, &a1, &c2);
                let t12 = self.add(&t1, &t2);
                let nt = self.mul_nonres(&ld, &t12);
                let norm = self.add(&t0, &nt);
                let i = self.inv(dp, &norm);
                let r0 = self.mul(dp, &c0, &i);
                let r1 = self.mul(dp, &c1, &i);
                let r2 = self.mul(dp, &c2, &i);
                [r0, r1, r2].concat()
            }
            _ => unreachable!("arity is 2 or 3"),
        }
    }

    // -- cyclotomic squaring -----------------------------------------------

    fn cyclo_sqr(&mut self, d: u8, a: &[FpId]) -> Result<Vec<FpId>, String> {
        if d != self.shape.k {
            return Err("cyclo_sqr is defined at the top level only".into());
        }
        if self.cfg.cyclo == CycloVariant::PlainSqr {
            return Ok(self.sqr(d, a));
        }
        let qd = self.shape.k / 6;
        let qw = qd as usize;
        // Internal order: [E0, E1, E2, O0, O1, O2], each of width k/6.
        let chunk = |i: usize| a[i * qw..(i + 1) * qw].to_vec();
        let e0 = chunk(0);
        let e1 = chunk(1);
        let e2 = chunk(2);
        let o0 = chunk(3);
        let o1 = chunk(4);
        let o2 = chunk(5);
        // w-power pairs: (w0,w3)=(E0,O1), (w1,w4)=(O0,E2), (w2,w5)=(E1,O2).
        let cubic = self
            .shape
            .levels
            .iter()
            .find(|l| l.arity == 3)
            .expect("towers have one cubic level")
            .clone();

        let (t00, t01) = self.fq4_sq(qd, &cubic, &e0, &o1);
        let (t10, t11) = self.fq4_sq(qd, &cubic, &o0, &e2);
        let (t20, t21) = self.fq4_sq(qd, &cubic, &e1, &o2);

        let c_w0 = self.three_minus_two(&t00, &e0);
        let c_w3 = self.three_plus_two(&t01, &o1);
        let c_w2 = self.three_minus_two(&t10, &e1);
        let c_w5 = self.three_plus_two(&t11, &o2);
        let xi_t21 = self.mul_nonres(&cubic, &t21);
        let c_w1 = self.three_plus_two(&xi_t21, &o0);
        let c_w4 = self.three_minus_two(&t20, &e2);

        Ok([c_w0, c_w2, c_w4, c_w1, c_w3, c_w5].concat())
    }

    /// `(a² + ξ·b², (a+b)² − a² − b²)` at level q.
    fn fq4_sq(
        &mut self,
        q: u8,
        cubic: &LevelDesc,
        a: &[FpId],
        b: &[FpId],
    ) -> (Vec<FpId>, Vec<FpId>) {
        let sa = self.sqr(q, a);
        let sb = self.sqr(q, b);
        let nsb = self.mul_nonres(cubic, &sb);
        let t0 = self.add(&sa, &nsb);
        let s = self.add(a, b);
        let ss = self.sqr(q, &s);
        let sum = self.add(&sa, &sb);
        let t1 = self.sub(&ss, &sum);
        (t0, t1)
    }

    fn three_minus_two(&mut self, t: &[FpId], z: &[FpId]) -> Vec<FpId> {
        let t3 = self.muli(t, 3);
        let z2 = self.muli(z, 2);
        self.sub(&t3, &z2)
    }

    fn three_plus_two(&mut self, t: &[FpId], z: &[FpId]) -> Vec<FpId> {
        let t3 = self.muli(t, 3);
        let z2 = self.muli(z, 2);
        self.add(&t3, &z2)
    }
}

fn split2(a: &[FpId]) -> (Vec<FpId>, Vec<FpId>) {
    let half = a.len() / 2;
    (a[..half].to_vec(), a[half..].to_vec())
}

fn split3(a: &[FpId]) -> (Vec<FpId>, Vec<FpId>, Vec<FpId>) {
    let third = a.len() / 3;
    (
        a[..third].to_vec(),
        a[third..2 * third].to_vec(),
        a[2 * third..].to_vec(),
    )
}
